package gnutella

import (
	"repro/internal/overlay"
	"repro/internal/rng"
)

// RepairCrashed repairs the holes left by crash-stop deaths: for every
// unpurged corpse, the survivors that still referenced it first evict their
// other stale links, then are rewired with the same ring + degree-top-up
// rule a graceful Leave applies, and the corpse is purged. It returns the
// number of corpses repaired. (The crash itself is just
// overlay.Overlay.CrashSlot — Gnutella has no per-node state beyond the
// overlay.)
func RepairCrashed(o *overlay.Overlay, cfg Config, r *rng.Rand) (int, error) {
	crashed := o.CrashedSlots()
	for _, c := range crashed {
		former := o.Neighbors(c)
		if err := o.PurgeCrashed(c); err != nil {
			return 0, err
		}
		live := make([]int, 0, len(former))
		for _, f := range former {
			if o.Alive(f) {
				live = append(live, f)
			}
		}
		// Ring over the survivors keeps them mutually connected.
		for i := 0; i+1 < len(live); i++ {
			o.AddEdge(live[i], live[i+1])
		}
		alive := o.AliveSlots()
		if len(alive) < 2 {
			continue
		}
		for _, f := range live {
			// Degree must count live links only — evict other corpses first.
			o.EvictDeadNeighbors(f)
			for o.Degree(f) < cfg.LinksPerJoin {
				cand := alive[r.Intn(len(alive))]
				if cand == f || o.Logical.HasEdge(f, cand) {
					if o.Degree(f) >= len(alive)-1 {
						break
					}
					continue
				}
				o.AddEdge(f, cand)
			}
		}
	}
	return len(crashed), nil
}
