package gnutella

import (
	"repro/internal/overlay"
)

// FloodStats describes one TTL-limited Gnutella query flood.
type FloodStats struct {
	// Messages is the number of query messages sent (every forwarding to a
	// neighbor other than the sender counts, duplicates included — exactly
	// the traffic Gnutella puts on the wire).
	Messages int
	// Reached is the number of distinct peers the query visited, including
	// the source.
	Reached int
	// TrafficMS is the latency-weighted traffic: the sum over messages of
	// the physical latency of the logical link crossed. This is the
	// "unnecessary traffic" cost that location-aware matching (LTM, and the
	// paper's §1 motivation) targets: the same message count costs less
	// when logical links are physically short.
	TrafficMS float64
}

// Flood simulates one TTL-limited flood from src over the live overlay:
// the source sends to all neighbors; every peer that receives the query
// with remaining TTL forwards it to all neighbors except the one it came
// from; peers process a query once but still receive (and count) duplicate
// copies. It panics if src is dead (caller bug).
func Flood(o *overlay.Overlay, src, ttl int) FloodStats {
	if !o.Alive(src) {
		panic("gnutella: Flood from dead slot")
	}
	stats := FloodStats{Reached: 1}
	if ttl < 1 {
		return stats
	}
	type hop struct {
		slot int
		from int // sender, -1 for the source
		ttl  int
	}
	seen := map[int]bool{src: true}
	frontier := []hop{{slot: src, from: -1, ttl: ttl}}
	for len(frontier) > 0 {
		var next []hop
		for _, h := range frontier {
			for _, nb := range o.Neighbors(h.slot) {
				if nb == h.from || !o.Alive(nb) {
					continue
				}
				stats.Messages++
				stats.TrafficMS += o.Dist(h.slot, nb)
				if seen[nb] {
					continue // duplicate: counted on the wire, not re-forwarded
				}
				seen[nb] = true
				stats.Reached++
				if h.ttl > 1 {
					next = append(next, hop{slot: nb, from: h.slot, ttl: h.ttl - 1})
				}
			}
		}
		frontier = next
	}
	return stats
}

// MeanFloodStats averages Flood over the given sources.
func MeanFloodStats(o *overlay.Overlay, sources []int, ttl int) FloodStats {
	if len(sources) == 0 {
		return FloodStats{}
	}
	var total FloodStats
	for _, s := range sources {
		st := Flood(o, s, ttl)
		total.Messages += st.Messages
		total.Reached += st.Reached
		total.TrafficMS += st.TrafficMS
	}
	n := float64(len(sources))
	return FloodStats{
		Messages:  int(float64(total.Messages)/n + 0.5),
		Reached:   int(float64(total.Reached)/n + 0.5),
		TrafficMS: total.TrafficMS / n,
	}
}
