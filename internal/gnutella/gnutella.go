// Package gnutella builds the unstructured, Gnutella-like overlays of the
// paper's evaluation.
//
// The paper relies on two structural facts about Gnutella-style overlays:
// they have "Power-law-like" degree distributions ("powerful nodes own more
// connections", citing Ripeanu et al.), and the minimum degree is small
// (the PROP-O experiments sweep m up to "the minimum average degree", 4).
// Preferential attachment with m = 4 links per joiner reproduces exactly
// that: minimum degree 4 and a heavy-tailed degree distribution in which
// the earliest joiners are the best-connected. The Fig. 7 heterogeneity
// experiment additionally exploits that correlation by declaring the
// highest-degree peers "fast".
//
// Entry points: Build, Join, Leave, and the TTL flood-traffic accounting
// (FloodStats). See DESIGN.md §1.
package gnutella

import (
	"fmt"
	"sort"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// Config parameterizes overlay construction.
type Config struct {
	// LinksPerJoin is the number of connections each joining peer opens
	// (the preferential-attachment m; the overlay's minimum degree).
	LinksPerJoin int
}

// DefaultConfig matches the paper's setting (minimum degree 4).
func DefaultConfig() Config { return Config{LinksPerJoin: 4} }

// Build constructs a Gnutella-like overlay over the given physical hosts.
// Peers join one at a time; each joiner attaches LinksPerJoin links to
// distinct existing peers chosen with probability proportional to
// (degree+1) — plain Barabási-Albert attachment with additive smoothing so
// the bootstrap peers are reachable. The result is always connected.
func Build(hosts []int, cfg Config, lat overlay.LatencyFunc, r *rng.Rand) (*overlay.Overlay, error) {
	if cfg.LinksPerJoin < 1 {
		return nil, fmt.Errorf("gnutella: LinksPerJoin = %d, want >= 1", cfg.LinksPerJoin)
	}
	if len(hosts) < 2 {
		return nil, fmt.Errorf("gnutella: need at least 2 peers, got %d", len(hosts))
	}
	o, err := overlay.New(hosts, lat)
	if err != nil {
		return nil, err
	}
	// repeated holds each slot once per (degree+1): sampling uniformly from
	// it is preferential attachment in O(1).
	repeated := make([]int, 0, 4*len(hosts)*cfg.LinksPerJoin)
	repeated = append(repeated, 0) // slot 0 with degree 0 (+1 smoothing)
	for slot := 1; slot < len(hosts); slot++ {
		k := cfg.LinksPerJoin
		if slot < cfg.LinksPerJoin {
			k = slot // early peers cannot reach full fan-out
		}
		chosen := map[int]bool{}
		for len(chosen) < k {
			cand := repeated[r.Intn(len(repeated))]
			if cand == slot || chosen[cand] {
				continue
			}
			chosen[cand] = true
		}
		// Sort for determinism: map iteration order would otherwise leak
		// into the sampling array and de-seed the generator's effect.
		nbs := make([]int, 0, len(chosen))
		for nb := range chosen {
			nbs = append(nbs, nb)
		}
		sort.Ints(nbs)
		for _, nb := range nbs {
			if err := o.AddEdge(slot, nb); err != nil {
				return nil, err
			}
			repeated = append(repeated, nb)
		}
		repeated = append(repeated, slot)
		for i := 0; i < k; i++ {
			repeated = append(repeated, slot)
		}
	}
	return o, nil
}

// Join attaches a new peer on host to an existing overlay using the same
// preferential rule, and returns its slot. Used by the churn experiments.
func Join(o *overlay.Overlay, host int, cfg Config, r *rng.Rand) (int, error) {
	if cfg.LinksPerJoin < 1 {
		return -1, fmt.Errorf("gnutella: LinksPerJoin = %d, want >= 1", cfg.LinksPerJoin)
	}
	alive := o.AliveSlots()
	if len(alive) == 0 {
		return -1, fmt.Errorf("gnutella: cannot join an empty overlay")
	}
	slot, err := o.AddSlot(host)
	if err != nil {
		return -1, err
	}
	k := cfg.LinksPerJoin
	if k > len(alive) {
		k = len(alive)
	}
	weights := make([]float64, len(alive))
	for i, s := range alive {
		weights[i] = float64(o.Degree(s) + 1)
	}
	chosen := map[int]bool{}
	for len(chosen) < k {
		cand := alive[r.Pick(weights)]
		if chosen[cand] {
			continue
		}
		chosen[cand] = true
	}
	for nb := range chosen {
		if err := o.AddEdge(slot, nb); err != nil {
			return -1, err
		}
	}
	return slot, nil
}

// Leave removes the peer at slot and repairs the hole: every pair of its
// former neighbors that is left under the minimum degree gets patched to a
// random live peer, and the former neighbors are rewired to each other with
// a ring so the departure cannot partition the overlay — the standard
// Gnutella "neighbor handoff" behavior.
func Leave(o *overlay.Overlay, slot int, cfg Config, r *rng.Rand) error {
	if !o.Alive(slot) {
		return fmt.Errorf("gnutella: Leave(%d) on dead slot", slot)
	}
	former := o.Neighbors(slot)
	if err := o.RemoveSlot(slot); err != nil {
		return err
	}
	live := make([]int, 0, len(former))
	for _, f := range former {
		if o.Alive(f) {
			live = append(live, f)
		}
	}
	// Ring over the former neighbors keeps them mutually connected.
	for i := 0; i+1 < len(live); i++ {
		o.AddEdge(live[i], live[i+1]) // duplicate edges are fine (no-op error ignored via existing edge semantics)
	}
	// Top up anyone now under the minimum degree.
	alive := o.AliveSlots()
	if len(alive) < 2 {
		return nil
	}
	for _, f := range live {
		for o.Degree(f) < cfg.LinksPerJoin {
			cand := alive[r.Intn(len(alive))]
			if cand == f || o.Logical.HasEdge(f, cand) {
				// Degenerate small overlays may not admit more edges.
				if o.Degree(f) >= len(alive)-1 {
					break
				}
				continue
			}
			o.AddEdge(f, cand)
		}
	}
	return nil
}
