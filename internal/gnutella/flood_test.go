package gnutella

import (
	"testing"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// starOverlay builds a hub with k spokes at unit distance.
func starOverlay(t *testing.T, k int) *overlay.Overlay {
	t.Helper()
	hosts := make([]int, k+1)
	for i := range hosts {
		hosts[i] = i
	}
	o, err := overlay.New(hosts, func(a, b int) float64 {
		if a == b {
			return 0
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= k; i++ {
		if err := o.AddEdge(0, i); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestFloodStarFromHub(t *testing.T) {
	o := starOverlay(t, 5)
	st := Flood(o, 0, 1)
	if st.Messages != 5 || st.Reached != 6 || st.TrafficMS != 5 {
		t.Fatalf("hub flood ttl=1: %+v", st)
	}
	// TTL 2: spokes have no other neighbors to forward to.
	st2 := Flood(o, 0, 2)
	if st2.Messages != 5 || st2.Reached != 6 {
		t.Fatalf("hub flood ttl=2: %+v", st2)
	}
}

func TestFloodStarFromSpoke(t *testing.T) {
	o := starOverlay(t, 5)
	// TTL 1: spoke reaches only the hub.
	st := Flood(o, 1, 1)
	if st.Messages != 1 || st.Reached != 2 {
		t.Fatalf("spoke flood ttl=1: %+v", st)
	}
	// TTL 2: hub forwards to the other 4 spokes.
	st2 := Flood(o, 1, 2)
	if st2.Messages != 1+4 || st2.Reached != 6 {
		t.Fatalf("spoke flood ttl=2: %+v", st2)
	}
}

func TestFloodCountsDuplicates(t *testing.T) {
	// Triangle: flooding from any vertex with TTL 2 delivers duplicates.
	hosts := []int{0, 1, 2}
	o, err := overlay.New(hosts, func(a, b int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	o.AddEdge(0, 1)
	o.AddEdge(1, 2)
	o.AddEdge(0, 2)
	st := Flood(o, 0, 2)
	// src sends 2 (to 1 and 2); 1 forwards to 2 (dup), 2 forwards to 1
	// (dup): 4 messages, 3 reached.
	if st.Messages != 4 || st.Reached != 3 {
		t.Fatalf("triangle flood: %+v", st)
	}
}

func TestFloodZeroTTL(t *testing.T) {
	o := starOverlay(t, 3)
	st := Flood(o, 0, 0)
	if st.Messages != 0 || st.Reached != 1 {
		t.Fatalf("zero TTL: %+v", st)
	}
}

func TestFloodDeadSourcePanics(t *testing.T) {
	o := starOverlay(t, 3)
	o.RemoveSlot(2)
	defer func() {
		if recover() == nil {
			t.Fatal("flood from dead slot did not panic")
		}
	}()
	Flood(o, 2, 2)
}

func TestFloodSkipsDeadPeers(t *testing.T) {
	o := starOverlay(t, 4)
	o.RemoveSlot(3)
	st := Flood(o, 0, 2)
	if st.Reached != 4 { // hub + 3 live spokes
		t.Fatalf("flood visited dead peer: %+v", st)
	}
}

func TestMessageCountInvariantUnderHostSwap(t *testing.T) {
	// PROP-G swaps hosts; the flood message count depends only on the
	// logical graph and must be identical, while the latency-weighted
	// traffic changes.
	r := rng.New(5)
	hosts := r.Perm(1000)[:200]
	o, err := Build(hosts, DefaultConfig(), lat, r)
	if err != nil {
		t.Fatal(err)
	}
	before := Flood(o, 0, 4)
	for i := 0; i < 50; i++ {
		u, v := r.Intn(200), r.Intn(200)
		if u != v {
			o.SwapHosts(u, v)
		}
	}
	after := Flood(o, 0, 4)
	if before.Messages != after.Messages || before.Reached != after.Reached {
		t.Fatalf("message count changed under host swaps: %+v vs %+v", before, after)
	}
}

func TestMeanFloodStats(t *testing.T) {
	o := starOverlay(t, 5)
	m := MeanFloodStats(o, []int{0, 1}, 2)
	// hub: 5 msgs/6 reached; spoke: 5 msgs/6 reached.
	if m.Messages != 5 || m.Reached != 6 {
		t.Fatalf("mean flood: %+v", m)
	}
	if z := MeanFloodStats(o, nil, 2); z.Messages != 0 {
		t.Fatalf("empty sources: %+v", z)
	}
}
