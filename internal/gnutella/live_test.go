package gnutella_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/dhttest"
	"repro/internal/faults"
	"repro/internal/gnutella"
	"repro/internal/overlay"
	"repro/internal/rng"
)

// Gnutella is unstructured — no lookup contract, so no dhttest.DHT adapter —
// but the live-runtime requirement is the same as for the DHTs: churn and
// crash-stop recovery must hold the audit invariants when every latency the
// protocol consumes is measured over the transport instead of read from an
// oracle. This file is the unstructured counterpart of the dhttest live
// backend.

func liveLine(a, b int) float64 { return math.Abs(float64(a-b)) + 1 }

func liveHalf(a, b int) float64 { return liveLine(a, b) / 2 }

// runLiveChurn drives one seeded churn+crash scenario over a LiveLatency
// plane and returns the fault schedule it induced.
func runLiveChurn(t *testing.T, inj *faults.Injector) []struct {
	Src, Dst int
	Seq      uint64
} {
	t.Helper()
	live := dhttest.NewLiveLatency(dhttest.LiveConfig{
		DelayMS: liveHalf,
		Faults:  inj,
		Timeout: 20 * time.Millisecond,
		Retries: 10,
	})
	defer live.Close()

	hosts := make([]int, 48)
	for i := range hosts {
		hosts[i] = i * 3
	}
	cfg := gnutella.DefaultConfig()
	r := rng.New(404)
	var lat overlay.LatencyFunc = live.Lat
	o, err := gnutella.Build(hosts, cfg, lat, r)
	if err != nil {
		t.Fatalf("live build: %v", err)
	}

	a := audit.New(1, 64)
	a.Register(audit.OverlayBijection(o), audit.OverlayConnected(o))

	nextHost := 3_000_000
	for op := 0; op < 30; op++ {
		switch {
		case op%5 == 4 && o.NumAlive() > 10:
			// Crash-stop: abrupt death, then the failure-recovery round.
			alive := o.AliveSlots()
			victim := alive[r.Intn(len(alive))]
			if err := o.CrashSlot(victim); err != nil {
				t.Fatalf("op %d: crash(%d): %v", op, victim, err)
			}
			if _, err := gnutella.RepairCrashed(o, cfg, r); err != nil {
				t.Fatalf("op %d: repair: %v", op, err)
			}
			a.Observe(audit.Record{Kind: audit.KindLeave, A: victim})
		case r.Bool(0.5) && o.NumAlive() > 10:
			alive := o.AliveSlots()
			victim := alive[r.Intn(len(alive))]
			if err := gnutella.Leave(o, victim, cfg, r); err != nil {
				t.Fatalf("op %d: leave(%d): %v", op, victim, err)
			}
			a.Observe(audit.Record{Kind: audit.KindLeave, A: victim})
		default:
			slot, err := gnutella.Join(o, nextHost, cfg, r)
			if err != nil {
				t.Fatalf("op %d: join(host %d): %v", op, nextHost, err)
			}
			a.Observe(audit.Record{Kind: audit.KindJoin, A: slot, B: nextHost})
			nextHost++
		}
		// Consume the topology's latencies the way the optimizer would —
		// every link cost below flows through a live RTT measurement.
		if m := o.MeanLinkLatency(); m <= 0 {
			t.Fatalf("op %d: mean link latency %v", op, m)
		}
	}
	if err := a.Err(); err != nil {
		t.Fatalf("live churn audit failed (%s): %v", a.Summary(), err)
	}
	if a.Checks() == 0 {
		t.Fatal("live churn audited nothing")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatalf("overlay invariants after live churn: %v", err)
	}
	if live.Stats().Sent == 0 {
		t.Fatal("no transport traffic; latency plane was never consulted")
	}

	drops := live.Drops()
	sched := make([]struct {
		Src, Dst int
		Seq      uint64
	}, len(drops))
	for i, d := range drops {
		sched[i] = struct {
			Src, Dst int
			Seq      uint64
		}{d.Src, d.Dst, d.Seq}
	}
	return sched
}

func TestLiveChurnAuditClean(t *testing.T) {
	if got := runLiveChurn(t, nil); len(got) != 0 {
		t.Fatalf("fault-free run recorded %d drops", len(got))
	}
}

func TestLiveChurnFaultScheduleDeterministic(t *testing.T) {
	mk := func() *faults.Injector {
		inj, err := faults.NewInjector(faults.Config{Seed: 0xBEEF, LossProb: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	s1 := runLiveChurn(t, mk())
	s2 := runLiveChurn(t, mk())
	if len(s1) == 0 {
		t.Fatal("no losses at 5% over a full churn scenario; fault gate inert")
	}
	if len(s1) != len(s2) {
		t.Fatalf("fault schedules differ in length: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("fault schedules diverge at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}
