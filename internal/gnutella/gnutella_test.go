package gnutella

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func lat(a, b int) float64 { return math.Abs(float64(a - b)) }

func hostsN(n int) []int {
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i * 2
	}
	return hosts
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(hostsN(10), Config{LinksPerJoin: 0}, lat, rng.New(1)); err == nil {
		t.Error("zero LinksPerJoin accepted")
	}
	if _, err := Build(hostsN(1), DefaultConfig(), lat, rng.New(1)); err == nil {
		t.Error("single-peer overlay accepted")
	}
}

func TestBuildConnectedAndMinDegree(t *testing.T) {
	o, err := Build(hostsN(500), DefaultConfig(), lat, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if !o.Connected() {
		t.Fatal("overlay not connected")
	}
	if md := o.Logical.MinDegree(); md < 4 {
		t.Fatalf("min degree = %d, want >= 4", md)
	}
}

func TestBuildHeavyTail(t *testing.T) {
	o, err := Build(hostsN(2000), DefaultConfig(), lat, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	degs := o.Logical.DegreeSequence() // ascending
	maxDeg := degs[len(degs)-1]
	medDeg := degs[len(degs)/2]
	// Preferential attachment: the hub degree should dwarf the median.
	if maxDeg < 4*medDeg {
		t.Fatalf("no heavy tail: max degree %d, median %d", maxDeg, medDeg)
	}
	// Early joiners should be the hubs (Fig. 7 relies on this).
	topSlots := make([]int, 0, 20)
	type sd struct{ slot, deg int }
	var all []sd
	for s := 0; s < o.NumSlots(); s++ {
		all = append(all, sd{s, o.Degree(s)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].deg > all[j].deg })
	early := 0
	for _, x := range all[:20] {
		topSlots = append(topSlots, x.slot)
		if x.slot < 200 {
			early++
		}
	}
	if early < 10 {
		t.Fatalf("only %d of top-20 hubs are early joiners: %v", early, topSlots)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, _ := Build(hostsN(300), DefaultConfig(), lat, rng.New(3))
	b, _ := Build(hostsN(300), DefaultConfig(), lat, rng.New(3))
	ea, eb := a.Logical.Edges(), b.Logical.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestBuildEdgeCountProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(200)
		k := 1 + r.Intn(5)
		o, err := Build(hostsN(n), Config{LinksPerJoin: k}, lat, r)
		if err != nil {
			return false
		}
		// Each joiner i adds min(i, k) edges.
		want := 0
		for i := 1; i < n; i++ {
			if i < k {
				want += i
			} else {
				want += k
			}
		}
		return o.Logical.NumEdges() == want && o.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestJoin(t *testing.T) {
	r := rng.New(9)
	o, err := Build(hostsN(50), DefaultConfig(), lat, r)
	if err != nil {
		t.Fatal(err)
	}
	slot, err := Join(o, 9999, DefaultConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	if o.Degree(slot) != 4 {
		t.Fatalf("joiner degree = %d, want 4", o.Degree(slot))
	}
	if !o.Connected() {
		t.Fatal("join broke connectivity")
	}
	if _, err := Join(o, 9999, DefaultConfig(), r); err == nil {
		t.Error("duplicate host join accepted")
	}
	if _, err := Join(o, 1234, Config{LinksPerJoin: 0}, r); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestLeaveKeepsConnectivity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(80)
		o, err := Build(hostsN(n), DefaultConfig(), lat, r)
		if err != nil {
			return false
		}
		// Kill a quarter of the peers one at a time.
		for i := 0; i < n/4; i++ {
			alive := o.AliveSlots()
			victim := alive[r.Intn(len(alive))]
			if err := Leave(o, victim, DefaultConfig(), r); err != nil {
				return false
			}
			if !o.Connected() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveErrors(t *testing.T) {
	r := rng.New(1)
	o, _ := Build(hostsN(10), DefaultConfig(), lat, r)
	if err := Leave(o, 99, DefaultConfig(), r); err == nil {
		t.Error("leave of unknown slot accepted")
	}
	if err := Leave(o, 3, DefaultConfig(), r); err != nil {
		t.Fatal(err)
	}
	if err := Leave(o, 3, DefaultConfig(), r); err == nil {
		t.Error("double leave accepted")
	}
}

func TestLeaveRestoresMinDegree(t *testing.T) {
	r := rng.New(5)
	o, _ := Build(hostsN(100), DefaultConfig(), lat, r)
	for i := 0; i < 20; i++ {
		alive := o.AliveSlots()
		if err := Leave(o, alive[r.Intn(len(alive))], DefaultConfig(), r); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range o.AliveSlots() {
		if o.Degree(s) < 4 {
			t.Fatalf("slot %d degree %d after churn, want >= 4", s, o.Degree(s))
		}
	}
}

func BenchmarkBuild1000(b *testing.B) {
	hosts := hostsN(1000)
	for i := 0; i < b.N; i++ {
		if _, err := Build(hosts, DefaultConfig(), lat, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
