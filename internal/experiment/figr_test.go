package experiment

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// runFigRWithMetrics runs one figR experiment with an attached registry and
// returns the rendered table plus the full JSONL metrics stream.
func runFigRWithMetrics(t *testing.T, id string, opt Options) (string, []byte) {
	t.Helper()
	reg := obs.New(obs.NewManifest(id, opt.Seed, opt.Trials, opt.Scale))
	opt.Metrics = reg
	table := renderOf(t, id, opt)
	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf); err != nil {
		t.Fatalf("%s: WriteJSONL: %v", id, err)
	}
	return table, buf.Bytes()
}

// TestFigRMetricsByteDeterminism is the fault-schedule determinism
// regression: the figR metrics streams — which embed every retry, timeout,
// and injector tally the fault schedule produced — must be byte-identical
// across runs with the same seed, and must change with the seed.
func TestFigRMetricsByteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("figR determinism sweep in -short mode")
	}
	// Collapse each sweep to two points to keep the regression fast; each
	// experiment gets only the override it consumes (Run rejects the rest).
	overrides := map[string]Options{
		"figRa": {FaultLoss: 0.05},
		"figRb": {FaultCrash: 0.10},
		"figRc": {FaultPartitionMS: 300000},
	}
	for _, id := range []string{"figRa", "figRb", "figRc"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			opt := Options{Seed: 5, Trials: 2, Scale: 0.1}
			opt.FaultLoss = overrides[id].FaultLoss
			opt.FaultCrash = overrides[id].FaultCrash
			opt.FaultPartitionMS = overrides[id].FaultPartitionMS
			table1, jsonl1 := runFigRWithMetrics(t, id, opt)
			table2, jsonl2 := runFigRWithMetrics(t, id, opt)
			if table1 != table2 {
				t.Fatalf("same seed rendered different tables:\n--- first ---\n%s\n--- second ---\n%s", table1, table2)
			}
			if !bytes.Equal(jsonl1, jsonl2) {
				t.Fatalf("same seed produced different metrics streams (%d vs %d bytes)", len(jsonl1), len(jsonl2))
			}
			other := opt
			other.Seed = 6
			_, jsonl3 := runFigRWithMetrics(t, id, other)
			if bytes.Equal(jsonl1, jsonl3) {
				t.Errorf("seeds 5 and 6 produced identical metrics streams — the fault schedule is not seeded")
			}
		})
	}
}

// TestFigRaConvergesUnderLoss pins the acceptance property: at 5%% message
// loss both PROP policies still end well below the unoptimized overlay.
func TestFigRaConvergesUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("figRa convergence run in -short mode")
	}
	res, err := Run("figRa", Options{Seed: 5, Trials: 1, Scale: 0.1, FaultLoss: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var unopt float64
	for _, s := range res.Series {
		if s.Label == "unoptimized" {
			unopt = s.YAt(5)
		}
	}
	if unopt <= 0 {
		t.Fatalf("missing unoptimized baseline in %+v", res.Series)
	}
	for _, s := range res.Series {
		if s.Label == "unoptimized" {
			continue
		}
		if got := s.YAt(5); got >= unopt {
			t.Errorf("%s at 5%% loss: stretch %v did not improve on unoptimized %v", s.Label, got, unopt)
		}
	}
}

// TestFigRbRepairsCrashes pins the crash-stop acceptance property: with 10%%
// of the peers crashing, the repair rounds actually run (corpses repaired)
// and the per-round audit — which would have failed the run — stayed green.
func TestFigRbRepairsCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("figRb crash run in -short mode")
	}
	res, err := Run("figRb", Options{Seed: 5, Trials: 1, Scale: 0.1, FaultCrash: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.Label != "corpses repaired" {
			continue
		}
		if got := s.YAt(10); got <= 0 {
			t.Errorf("corpses repaired at crash=10%%: %v, want > 0", got)
		}
		return
	}
	t.Fatalf("missing 'corpses repaired' series in %+v", res.Series)
}
