package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
)

// metricsStreamOf runs one experiment with a fresh registry and returns the
// JSONL metrics stream it emits.
func metricsStreamOf(t *testing.T, id string, opt Options) []byte {
	t.Helper()
	reg := obs.New(obs.NewManifest(id, opt.Seed, opt.Trials, opt.Scale))
	opt.Metrics = reg
	if _, err := Run(id, opt); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf); err != nil {
		t.Fatalf("%s: WriteJSONL: %v", id, err)
	}
	return buf.Bytes()
}

// TestMetricsStreamDeterministic is the observability half of the
// determinism regression: the full JSONL metrics stream — counters
// (including the oracle cache counters), gauges, histograms, series
// samples, and sim-clock spans — must be a pure function of the seed.
// Trials run in parallel goroutines and the lookup evaluators fan out
// across cores, so this guards the whole instrumentation path against
// scheduling- and map-iteration-order leaks (DESIGN.md §8).
func TestMetricsStreamDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("metrics determinism sweep in -short mode")
	}
	for _, id := range []string{"fig5a", "fig6a", "fig7", "churn"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			opt := Options{Seed: 5, Trials: 2, Scale: 0.1}
			first := metricsStreamOf(t, id, opt)
			second := metricsStreamOf(t, id, opt)
			if !bytes.Equal(first, second) {
				t.Fatalf("same options emitted different metrics streams:\n%s", firstDiffLine(first, second))
			}
			if !bytes.Contains(first, []byte(`"kind":"sample"`)) {
				t.Errorf("%s stream has no series samples — instrumentation not wired", id)
			}
			if !bytes.Contains(first, []byte(`"kind":"span"`)) {
				t.Errorf("%s stream has no phase spans — instrumentation not wired", id)
			}
		})
	}
}

// TestMetricsStreamSchema spot-checks the JSONL schema documented in
// EXPERIMENTS.md: every line is a JSON object with a known kind, the first
// line is the manifest, and no wall-clock field leaks into a stream whose
// registry never opted into wall time.
func TestMetricsStreamSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full instrumented experiment")
	}
	stream := metricsStreamOf(t, "fig5a", Options{Seed: 1, Trials: 1, Scale: 0.1})
	lines := strings.Split(strings.TrimRight(string(stream), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("suspiciously short stream: %d lines", len(lines))
	}
	known := map[string]bool{"manifest": true, "counter": true, "gauge": true, "histogram": true, "sample": true, "span": true}
	for i, line := range lines {
		var rec map[string]interface{}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", i+1, err)
		}
		kind, _ := rec["kind"].(string)
		if !known[kind] {
			t.Fatalf("line %d has unknown kind %q", i+1, kind)
		}
		if i == 0 && kind != "manifest" {
			t.Fatalf("first record kind = %q, want manifest", kind)
		}
		if _, ok := rec["wall_ms"]; ok {
			t.Fatalf("line %d leaks wall_ms without EnableWallClock", i+1)
		}
		if _, ok := rec["unix_time"]; ok {
			t.Fatalf("line %d leaks unix_time without EnableWallClock", i+1)
		}
	}
	var man obs.Manifest
	if err := json.Unmarshal([]byte(lines[0]), &man); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if man.Schema != obs.SchemaVersion {
		t.Errorf("manifest schema = %q, want %q", man.Schema, obs.SchemaVersion)
	}
	if man.Experiment != "fig5a" || man.Seed != 1 {
		t.Errorf("manifest identity = %q/%d, want fig5a/1", man.Experiment, man.Seed)
	}
}

// firstDiffLine locates the first differing line of two streams for a
// readable failure message.
func firstDiffLine(a, b []byte) string {
	la := strings.Split(string(a), "\n")
	lb := strings.Split(string(b), "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  first:  %s\n  second: %s", i+1, la[i], lb[i])
		}
	}
	return "streams differ in length"
}
