package experiment

import (
	"fmt"

	"repro/internal/chord"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/netsim"
	"repro/internal/stats"
)

// The chordchurn experiment extends the §3.2/§4.3 dynamics story to the
// structured substrate: a Chord ring under Poisson membership churn while
// PROP-G keeps optimizing. It verifies the same two claims — probe
// frequency spikes and decays, quality recovers — plus the structured
// system's own invariant: every sampled lookup reaches the true owner
// throughout the churn window.

func init() {
	registry["chordchurn"] = runner{
		describe: "extension: PROP-G on Chord under membership churn (probe rate, stretch, lookup correctness)",
		run:      runChordChurn,
	}
}

func runChordChurn(opt Options) (*Result, error) {
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		return oneChordChurnTrial(opt, trialSeed(opt.Seed, trial))
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "chordchurn",
		Title:  "PROP-G on Chord under churn: probe rate, routing stretch, lookup correctness",
		XLabel: "time (min)",
		YLabel: "probes/node/min | stretch | correct fraction",
		Series: mergeTrials(perTrial),
		Notes: []string{
			fmt.Sprintf("churn window: minutes %d-%d (Poisson joins and leaves, ~25%% of peers)", churnStartMS/60000, churnStopMS/60000),
			"expected: probe spike in the window with decay after; stretch bump and recovery; correctness pinned at 1.0",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}

func oneChordChurnTrial(opt Options, seed uint64) ([]stats.Series, error) {
	e, err := newEnv(opt, netsim.TSLarge(), seed)
	if err != nil {
		return nil, err
	}
	n := scaled(1000, opt.Scale, 100)
	hosts := e.pickHosts(len(e.net.StubHosts))
	if n > len(hosts) {
		n = len(hosts)
	}
	active := hosts[:n]
	pool := append([]int(nil), hosts[n:]...)
	ring, err := chord.Build(active, chord.DefaultConfig(), e.oracle.Latency, e.r)
	if err != nil {
		return nil, err
	}
	p, err := core.New(ring.O, core.DefaultConfig(core.PROPG), e.r.Split())
	if err != nil {
		return nil, err
	}
	eng := event.New()
	p.Start(eng)

	churnEvents := n / 4
	if churnEvents < 1 {
		churnEvents = 1
	}
	meanInterval := float64(churnStopMS-churnStartMS) / float64(churnEvents)
	cr := e.r.Split()
	runner, err := churn.NewRunner(churn.Config{
		StartMS:             churnStartMS,
		StopMS:              churnStopMS,
		MeanJoinIntervalMS:  meanInterval,
		MeanLeaveIntervalMS: meanInterval,
	}, cr)
	if err != nil {
		return nil, err
	}
	runner.OnJoin = func(en *event.Engine) error {
		if len(pool) == 0 {
			return fmt.Errorf("no spare hosts")
		}
		host := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		slot, err := ring.Join(host, e.oracle.Latency, cr)
		if err != nil {
			return err
		}
		return p.AddNode(en, slot)
	}
	runner.OnLeave = func(en *event.Engine) error {
		alive := ring.O.AliveSlots()
		if len(alive) < 10 {
			return fmt.Errorf("ring too small to shrink")
		}
		victim := alive[cr.Intn(len(alive))]
		host := ring.O.HostOf(victim)
		former := ring.O.Neighbors(victim)
		if err := ring.Leave(victim, e.oracle.Latency); err != nil {
			return err
		}
		p.RemoveNode(en, victim, former)
		pool = append(pool, host)
		return nil
	}
	runner.Start(eng)

	lookupsPerSample := scaled(200, opt.Scale, 50)
	lr := e.r.Split()
	probeSeries := stats.Series{Label: "probes/node/min"}
	stretchSeries := stats.Series{Label: "stretch"}
	correctSeries := stats.Series{Label: "correct fraction"}
	lastProbes := uint64(0)
	const sampleStep = 60000.0
	for t := 0.0; t <= churnHorizonMS; t += sampleStep {
		eng.RunUntil(event.Time(t))
		dp := p.Counters.Probes - lastProbes
		lastProbes = p.Counters.Probes
		nodes := ring.O.NumAlive()
		if nodes == 0 {
			nodes = 1
		}
		probeSeries.Add(t/60000, float64(dp)/float64(nodes))

		// Routing stretch and correctness over a fresh random workload.
		alive := ring.O.AliveSlots()
		sum, okCount, correct := 0.0, 0, 0
		for i := 0; i < lookupsPerSample; i++ {
			src := alive[lr.Intn(len(alive))]
			key := chord.RandomKey(lr)
			res, err := ring.Lookup(src, key, nil)
			if err != nil {
				continue
			}
			if res.Owner == ring.Owner(key) {
				correct++
			}
			if res.Owner == src {
				continue
			}
			direct := e.oracle.Latency(ring.O.HostOf(src), ring.O.HostOf(res.Owner))
			if direct <= 0 {
				continue
			}
			sum += res.Latency / direct
			okCount++
		}
		if okCount > 0 {
			stretchSeries.Add(t/60000, sum/float64(okCount))
		} else {
			stretchSeries.Add(t/60000, 0)
		}
		correctSeries.Add(t/60000, float64(correct)/float64(lookupsPerSample))
	}
	if !ring.O.Connected() {
		return nil, fmt.Errorf("chord churn disconnected the overlay")
	}
	return []stats.Series{probeSeries, stretchSeries, correctSeries}, nil
}
