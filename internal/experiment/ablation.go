package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Ablation experiments for the design choices §3.2 and §5.1 fix by fiat:
// the warm-up length MAX_INIT_TRIAL ("simulations in a later section shows
// this number to be less than ten") and the exchange threshold MIN_VAR
// (§4.2 argues for 0). Each ablation sweeps the parameter and reports the
// end-state quality plus the protocol cost, so the choice is visible in
// data rather than asserted.

func init() {
	registry["warmup"] = runner{
		describe: "ablation: MAX_INIT_TRIAL sweep — why the warm-up is ~10 probes",
		run:      runWarmupAblation,
	}
	registry["minvar"] = runner{
		describe: "ablation: MIN_VAR threshold sweep — why the exchange gate is 0",
		run:      runMinVarAblation,
	}
}

// runWarmupAblation sweeps the warm-up length. Short warm-ups hand control
// to the back-off timer before the overlay has converged (fewer probes →
// less improvement); warm-ups beyond ~10 buy almost nothing but keep
// probing at full rate. Both effects are visible in the two series.
func runWarmupAblation(opt Options) (*Result, error) {
	trialLens := []int{1, 2, 5, 10, 20, 40}
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		e, err := newEnv(opt, netsim.TSLarge(), trialSeed(opt.Seed, trial))
		if err != nil {
			return nil, err
		}
		n := scaled(1000, opt.Scale, 100)
		base, err := e.buildGnutella(n)
		if err != nil {
			return nil, err
		}
		latency := stats.Series{Label: "final mean link latency (ms)"}
		probes := stats.Series{Label: "probes per node"}
		for vi, w := range trialLens {
			oc := base.Clone()
			cfg := core.DefaultConfig(core.PROPG)
			cfg.MaxInitTrials = w
			p, err := core.New(oc, cfg, rng.New(trialSeed(opt.Seed, 2000+trial*100+vi)))
			if err != nil {
				return nil, err
			}
			eng := event.New()
			p.Start(eng)
			eng.RunUntil(2 * horizonMS) // 60 min: long enough for back-off to matter
			latency.Add(float64(w), oc.MeanLinkLatency())
			probes.Add(float64(w), float64(p.Counters.Probes)/float64(n))
		}
		return []stats.Series{latency, probes}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "warmup",
		Title:  "Ablation: warm-up length MAX_INIT_TRIAL vs final quality and probe cost",
		XLabel: "MAX_INIT_TRIAL",
		YLabel: "mean link latency (ms) | probes per node",
		Series: mergeTrials(perTrial),
		Notes: []string{
			"expected: latency improves sharply up to ~10 trials, then flattens while probe cost keeps rising",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}

// runMinVarAblation sweeps the exchange threshold. §4.2: any Var > 0
// exchange reduces the accumulated latency, so MIN_VAR = 0 harvests all
// gains; raising the bar skips small-but-real improvements and the
// end-state degrades monotonically, while the number of exchanges falls.
func runMinVarAblation(opt Options) (*Result, error) {
	thresholds := []float64{0, 25, 50, 100, 200, 400}
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		e, err := newEnv(opt, netsim.TSLarge(), trialSeed(opt.Seed, trial))
		if err != nil {
			return nil, err
		}
		n := scaled(1000, opt.Scale, 100)
		base, err := e.buildGnutella(n)
		if err != nil {
			return nil, err
		}
		latency := stats.Series{Label: "final mean link latency (ms)"}
		exchanges := stats.Series{Label: "exchanges executed"}
		for vi, th := range thresholds {
			oc := base.Clone()
			cfg := core.DefaultConfig(core.PROPG)
			cfg.MinVar = th
			p, err := core.New(oc, cfg, rng.New(trialSeed(opt.Seed, 3000+trial*100+vi)))
			if err != nil {
				return nil, err
			}
			eng := event.New()
			p.Start(eng)
			eng.RunUntil(horizonMS)
			latency.Add(th, oc.MeanLinkLatency())
			exchanges.Add(th, float64(p.Counters.Exchanges))
		}
		return []stats.Series{latency, exchanges}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "minvar",
		Title:  "Ablation: MIN_VAR exchange threshold vs final quality and exchange count",
		XLabel: "MIN_VAR (ms)",
		YLabel: "mean link latency (ms) | exchanges",
		Series: mergeTrials(perTrial),
		Notes: []string{
			"expected: latency is best at MIN_VAR=0 and degrades as the gate rises; exchanges fall monotonically",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}
