package experiment

import (
	"fmt"

	"repro/internal/can"
	"repro/internal/chord"
	"repro/internal/gnutella"
	"repro/internal/netsim"
	"repro/internal/overlay"
	"repro/internal/rng"
)

// env bundles one trial's physical world: a generated transit-stub network,
// its latency oracle, and the trial RNG.
type env struct {
	net    *netsim.Network
	oracle *netsim.Oracle
	oopt   netsim.OracleOptions
	r      *rng.Rand
}

// newEnv generates the physical substrate for one trial. The experiment
// options select the oracle's memory mode (Options.OracleRowBudget /
// Options.OracleFloat32); the defaults reproduce the historical
// full-precision unbounded cache bit for bit.
func newEnv(opt Options, preset netsim.Config, seed uint64) (*env, error) {
	r := rng.New(seed)
	net, err := netsim.Generate(preset, r)
	if err != nil {
		return nil, err
	}
	oopt := netsim.OracleOptions{Float32: opt.OracleFloat32, RowBudget: opt.OracleRowBudget}
	return &env{net: net, oracle: netsim.NewOracleWith(net, oopt), oopt: oopt, r: r}, nil
}

// pickHosts selects n distinct stub hosts uniformly at random; n is capped
// at the number of stub hosts ("PROP-G is still effective even when almost
// all physical nodes are chosen"). The picked hosts' oracle rows are warmed
// in bulk — every overlay build and metric sample queries exactly these
// sources, so one Precompute here replaces thousands of lazy cold-row
// misses on the measurement path (capped at the row budget in bounded mode
// to avoid pointless eviction churn).
func (e *env) pickHosts(n int) []int {
	hosts := append([]int(nil), e.net.StubHosts...)
	e.r.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	if n > len(hosts) {
		n = len(hosts)
	}
	picked := hosts[:n]
	warm := picked
	if b := e.oopt.RowBudget; b > 0 && len(warm) > b {
		warm = warm[:b]
	}
	e.oracle.Precompute(warm)
	return picked
}

// buildGnutella constructs an n-peer unstructured overlay on this network.
func (e *env) buildGnutella(n int) (*overlay.Overlay, error) {
	if n < 2 {
		return nil, fmt.Errorf("experiment: overlay size %d too small", n)
	}
	return gnutella.Build(e.pickHosts(n), gnutella.DefaultConfig(), e.oracle.Latency, e.r)
}

// buildChord constructs an n-node Chord ring, optionally with PNS fingers.
func (e *env) buildChord(n int, pns bool) (*chord.Ring, error) {
	cfg := chord.DefaultConfig()
	cfg.PNS = pns
	return chord.Build(e.pickHosts(n), cfg, e.oracle.Latency, e.r)
}

// buildCAN constructs an n-node CAN, optionally with PIS landmark binning.
// PIS uses three landmarks drawn from distinct transit domains.
func (e *env) buildCAN(n int, pis bool) (*can.Space, error) {
	cfg := can.Config{}
	if pis {
		cfg.Landmarks = e.pickLandmarks(3)
	}
	return can.Build(e.pickHosts(n), cfg, e.oracle.Latency, e.r)
}

// pickLandmarks returns k transit routers spread across domains.
func (e *env) pickLandmarks(k int) []int {
	var lms []int
	seen := map[int]bool{}
	for id, tier := range e.net.Tiers {
		if tier != netsim.TierTransit {
			continue
		}
		d := e.net.Domain[id]
		if !seen[d] {
			seen[d] = true
			lms = append(lms, id)
			if len(lms) == k {
				break
			}
		}
	}
	// Fewer domains than k: pad with any transit routers.
	for id, tier := range e.net.Tiers {
		if len(lms) == k {
			break
		}
		if tier == netsim.TierTransit && !contains(lms, id) {
			lms = append(lms, id)
		}
	}
	return lms
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// meanPhysLink returns the stretch denominator for this network.
func (e *env) meanPhysLink() float64 { return e.net.MeanLinkLatency() }
