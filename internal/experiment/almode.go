package experiment

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/rng"
)

// AL-mode names accepted by Options.ALMode / propsim -al-mode.
const (
	// ALModeOff (the default) skips the AL series entirely, keeping every
	// experiment's output byte-identical to the pre-AL-series builds.
	ALModeOff = ""
	// ALModeExact refloods the whole overlay at every sample point — the
	// eq. (3) reference value, partition-tolerant (a metrics.ALTracker with
	// a negative drift budget, so every update is a forced full reflood).
	ALModeExact = "exact"
	// ALModeIncremental maintains the value between sample points with a
	// drift-bounded metrics.ALTracker: only flood rows touched by the batch
	// of topology mutations are repaired.
	ALModeIncremental = "incremental"
	// ALModeSampled estimates from random ordered pairs at each sample
	// point; unreachable pairs are redrawn or skipped (and counted), never
	// fatal.
	ALModeSampled = "sampled"
	// ALModeSketch estimates from k full source rows with a
	// metrics.ALEstimator (unbiased, O(k·Dijkstra) per sample — the scale
	// tier of the AL ladder, see SCALING.md). Alongside al_ms it records the
	// sketch's standard error as al_stderr_ms.
	ALModeSketch = "sketch"
)

// alProbe evaluates the paper's eq. (3) average latency at experiment
// sample points under the configured Options.ALMode. A nil probe (mode off)
// is a valid no-op receiver for every method.
type alProbe struct {
	mode    string
	tracker *metrics.ALTracker // exact + incremental modes
	o       *overlay.Overlay
	sample  int                  // sampled mode: pairs per estimate
	r       *rng.Rand            // sampled/sketch modes: dedicated deterministic stream
	est     *metrics.ALEstimator // sketch mode
}

// newALProbe builds the probe for opt.ALMode over o, or nil when the mode
// is off. seed derives the sampled mode's private generator, so attaching
// the probe never perturbs the experiment's own RNG streams. sample is the
// pair count of one sampled estimate.
func newALProbe(opt Options, o *overlay.Overlay, seed uint64, sample int) (*alProbe, error) {
	switch opt.ALMode {
	case ALModeOff:
		return nil, nil
	case ALModeExact:
		tr, err := metrics.NewALTracker(o, nil, metrics.ALTrackerOptions{DriftBudget: -1})
		if err != nil {
			return nil, err
		}
		return &alProbe{mode: opt.ALMode, tracker: tr, o: o}, nil
	case ALModeIncremental:
		tr, err := metrics.NewALTracker(o, nil, metrics.ALTrackerOptions{})
		if err != nil {
			return nil, err
		}
		return &alProbe{mode: opt.ALMode, tracker: tr, o: o}, nil
	case ALModeSampled:
		return &alProbe{
			mode:   opt.ALMode,
			o:      o,
			sample: sample,
			r:      rng.New(seed ^ 0xa17ec0de5eed),
		}, nil
	case ALModeSketch:
		est, err := metrics.NewALEstimator(metrics.OverlayFloodSource(o, nil),
			metrics.ALEstimatorOptions{}, rng.New(seed^0xa17e57e57))
		if err != nil {
			return nil, err
		}
		return &alProbe{mode: opt.ALMode, o: o, est: est}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown AL mode %q (want %q, %q, %q or %q)",
			opt.ALMode, ALModeExact, ALModeIncremental, ALModeSampled, ALModeSketch)
	}
}

// measure evaluates AL at simulated time t and records it (plus the
// sampled-mode skip counter) on the trial's metrics stream.
func (p *alProbe) measure(tr *obs.Trial, prefix string, t float64) (float64, error) {
	if p == nil {
		return 0, nil
	}
	var al float64
	switch p.mode {
	case ALModeSketch:
		sk, err := p.est.Estimate()
		if err != nil {
			return 0, fmt.Errorf("experiment: sketch AL at t=%v: %w", t, err)
		}
		if tr != nil {
			tr.Series(prefix+"al_stderr_ms").Sample(t, sk.StdErr)
		}
		al = sk.AL
	case ALModeSampled:
		v, skipped, err := metrics.AverageLatencySampled(p.o, nil, p.sample, p.r)
		if err != nil {
			return 0, fmt.Errorf("experiment: sampled AL at t=%v: %w", t, err)
		}
		if skipped > 0 && tr != nil {
			tr.Counter(prefix + "al.sample_skips").Add(uint64(skipped))
		}
		al = v
	default: // exact and incremental share the tracker path
		p.tracker.Update()
		al = p.tracker.Value()
	}
	if tr != nil {
		tr.Series(prefix+"al_ms").Sample(t, al)
	}
	return al, nil
}

// update absorbs pending topology mutations immediately (incremental mode
// only — keeping each repair batch small). Experiments attach this to
// churn.Runner.AfterEvent; in the other modes nothing is maintained
// between sample points, so it is a no-op.
func (p *alProbe) update() {
	if p != nil && p.mode == ALModeIncremental {
		p.tracker.Update()
	}
}

// close detaches the tracker's overlay hook and mutation journal. Safe on
// nil and sampled-mode probes.
func (p *alProbe) close() {
	if p != nil && p.tracker != nil {
		p.tracker.Detach()
	}
}
