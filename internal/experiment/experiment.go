// Package experiment defines one runnable reproduction per figure of the
// paper's evaluation (§5), plus the overhead and churn analyses promised in
// §4.3 and a combination study (§1, §6: "combining them with other recent
// mechanisms will further improve their performance").
//
// Every experiment is deterministic in (Seed, Trials, Scale) and returns a
// Result holding the same series the paper plots. Trials run in parallel —
// each on its own physical network, overlay, and RNG stream — and are
// averaged point-wise.
//
// Key types: Options — seed, trials, scale, oracle memory modes, and the
// optional obs.Registry for the DESIGN.md §8 metrics stream — and Result.
// The per-figure index is DESIGN.md §2; measured outcomes are in
// EXPERIMENTS.md.
package experiment

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Options controls an experiment run.
type Options struct {
	// Seed selects the deterministic RNG universe. Default 1.
	Seed uint64
	// Trials is the number of independent repetitions averaged. Default 3.
	Trials int
	// Scale in (0,1] shrinks node counts and workload sizes for quick runs
	// (benchmarks, -short tests). 1.0 reproduces the paper's scale.
	Scale float64
	// Audit attaches the online invariant auditor (internal/audit) to every
	// simulated run of the experiments that support it (fig5*, fig6*):
	// overlay bijection/connectivity, PROP-G topology freezing, and DHT
	// well-formedness are checked on the sampled protocol event stream
	// (every event under -tags auditstrict). One summary line per trial is
	// appended to Result.Notes; any violation fails the run.
	Audit bool
	// OracleRowBudget caps the number of distance rows each trial's latency
	// oracle keeps cached (0 = unbounded). Bounding the cache lets
	// full-scale runs trade recomputation for memory: a ts-large trial with
	// an unbounded cache holds an O(sources·N) float64 matrix. Values are
	// unaffected — evicted rows are recomputed exactly.
	OracleRowBudget int
	// OracleFloat32 stores oracle rows as float32, halving cache memory.
	// Latencies round once on store (sub-ppm error at millisecond scale),
	// so outputs may differ in the last digits from the float64 default.
	OracleFloat32 bool
	// FaultLoss, FaultCrash, and FaultPartitionMS parameterize the
	// fault-aware experiments (cmd/propsim -loss/-crash/-partition). Zero
	// keeps each experiment's default: a non-zero FaultLoss or FaultCrash
	// collapses the figRa/figRb/figR-scale sweeps to {0, value} and attaches
	// the corresponding fault schedule to fig5a-scale; a non-zero
	// FaultPartitionMS sets the partition-window length (figRc, figR-scale,
	// fig5a-scale). Run rejects a non-zero override for any experiment that
	// does not consume it — a set fault knob is never silently ignored.
	FaultLoss        float64
	FaultCrash       float64
	FaultPartitionMS float64
	// ALMode adds the paper's eq. (3) average-latency series ("al_ms") to
	// the metrics stream of the experiments that maintain a live overlay
	// (fig5*, churn): ALModeExact refloods at every sample point,
	// ALModeIncremental delta-maintains the value with a metrics.ALTracker,
	// ALModeSampled estimates from random pairs (skipping unreachable ones
	// and counting them in "al.sample_skips"). Empty — the default — keeps
	// the AL machinery detached and every output byte-identical to before.
	ALMode string
	// ScaleMaxN caps the fig5a-scale peer ladder (cmd/propsim -scale-n):
	// rungs above it are dropped and the top rung becomes exactly this value
	// (further shrunk by Scale). 0 means the full ladder to 10^6. The other
	// experiments ignore it.
	ScaleMaxN int
	// Shards sets the sharded engine's parallel engine count for fig5a-scale
	// (cmd/propsim -shards); 0 means one engine per transit domain. The
	// metrics stream is byte-identical for every admissible value (the
	// internal/shard determinism contract), so this is purely a wall-clock
	// knob. The other experiments ignore it.
	Shards int
	// Metrics, when non-nil, switches the observability layer on: the
	// instrumented experiments (fig5*, fig6*, fig7, churn) record per-trial
	// phase spans, sim-clock time series of the protocol/overlay/back-off
	// state, exchange histograms, and oracle cache counters into this
	// registry (DESIGN.md §8). Nil — the default — keeps every
	// instrumentation site on its no-op path.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Trials <= 0 {
		o.Trials = 3
	}
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	return o
}

// scaled shrinks n by the scale factor with a floor.
func scaled(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		v = min
	}
	return v
}

// Result is the reproduced figure or table.
type Result struct {
	// ID is the experiment identifier (e.g. "fig5a").
	ID string
	// Title restates the paper artifact.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds one curve per line of the figure.
	Series []stats.Series
	// Notes carries reproduction commentary (scale, substitutions, the
	// qualitative checks that passed).
	Notes []string
}

// Render writes the result as a fixed-width table: one row per x value, one
// column per series.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Series) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	// Collect the union of x values.
	xset := map[float64]bool{}
	for _, s := range r.Series {
		for _, x := range s.X {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	header := fmt.Sprintf("%12s", r.XLabel)
	for _, s := range r.Series {
		header += fmt.Sprintf("  %18s", s.Label)
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, x := range xs {
		row := fmt.Sprintf("%12.3g", x)
		for _, s := range r.Series {
			y := s.YAt(x)
			if math.IsNaN(y) {
				row += fmt.Sprintf("  %18s", "-")
			} else {
				row += fmt.Sprintf("  %18.3f", y)
			}
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintf(w, "(y axis: %s)\n", r.YLabel)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// runner executes one experiment.
type runner struct {
	describe string
	run      func(Options) (*Result, error)
	// faults declares which fault overrides the experiment consumes; Run
	// rejects any set override outside this set instead of silently
	// dropping it.
	faults faultFlagSet
}

// faultFlagSet declares which of the fault-override options an experiment
// consumes (Options.FaultLoss, FaultCrash, FaultPartitionMS — the propsim
// -loss/-crash/-partition flags).
type faultFlagSet uint8

const (
	consumesLoss faultFlagSet = 1 << iota
	consumesCrash
	consumesPartition

	consumesAllFaults = consumesLoss | consumesCrash | consumesPartition
)

// checkFaultFlags rejects fault overrides the experiment would silently
// ignore. Before this guard, `propsim -exp fig5b -loss 0.05` ran the
// fault-free experiment and reported clean results as if the faults had
// been applied.
func checkFaultFlags(id string, accepts faultFlagSet, opt Options) error {
	var ignored []string
	if opt.FaultLoss != 0 && accepts&consumesLoss == 0 {
		ignored = append(ignored, "-loss")
	}
	if opt.FaultCrash != 0 && accepts&consumesCrash == 0 {
		ignored = append(ignored, "-crash")
	}
	if opt.FaultPartitionMS != 0 && accepts&consumesPartition == 0 {
		ignored = append(ignored, "-partition")
	}
	if len(ignored) == 0 {
		return nil
	}
	return fmt.Errorf("experiment: %s does not consume %s (fault overrides apply to: %s)",
		id, strings.Join(ignored, "/"), strings.Join(faultAwareIDs(), ", "))
}

// faultAwareIDs lists the experiments consuming at least one fault
// override, sorted.
func faultAwareIDs() []string {
	var ids []string
	for id, r := range registry {
		if r.faults != 0 {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

var registry = map[string]runner{
	"fig5a":       {describe: "Fig. 5(a): PROP-G in Gnutella, lookup latency vs time, varying TTL", run: runFig5a},
	"fig5a-scale": {describe: "Fig. 5(a) at scale: domain-sharded engine, estimated AL vs time, n up to 10^6", run: runFig5aScale, faults: consumesAllFaults},
	"fig5b":       {describe: "Fig. 5(b): PROP-G in Gnutella, varying system size", run: runFig5b},
	"fig5c":       {describe: "Fig. 5(c): PROP-G in Gnutella, varying physical topology", run: runFig5c},
	"fig6a":       {describe: "Fig. 6(a): PROP-G in Chord, stretch vs time, varying TTL", run: runFig6a},
	"fig6b":       {describe: "Fig. 6(b): PROP-G in Chord, varying system size", run: runFig6b},
	"fig6c":       {describe: "Fig. 6(c): PROP-G in Chord, varying physical topology", run: runFig6c},
	"fig7":        {describe: "Fig. 7: PROP-O vs PROP-G vs LTM under bimodal processing delay", run: runFig7},
	"overhead":    {describe: "§4.3: messages per adjustment, measured vs model", run: runOverhead},
	"churn":       {describe: "§3.2/§4.3: probe frequency and stretch under churn", run: runChurn},
	"combo":       {describe: "§1/§6: PROP-G combined with PNS (Chord) and PIS (CAN)", run: runCombo},
}

// IDs lists all experiment identifiers in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description of an experiment, or "".
func Describe(id string) string { return registry[id].describe }

// Run executes the experiment with the given options.
func Run(id string, opt Options) (*Result, error) {
	entry, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	if err := checkFaultFlags(id, entry.faults, opt); err != nil {
		return nil, err
	}
	return entry.run(opt.withDefaults())
}

// forEachTrial runs body for every trial index on a GOMAXPROCS-bounded
// worker pool and returns the per-trial outputs in index order. body must
// be self-contained (own RNG, own network). The lowest-indexed error wins,
// exactly as when each trial had its own goroutine. Bounding the pool keeps
// a 100-trial sweep from spawning 100 simulations at once; each trial's
// internal parallelism (Oracle.Precompute, metric evaluators) draws from a
// process-wide worker budget, so the layers compose without oversubscribing
// the CPUs.
func forEachTrial(trials int, body func(trial int) ([]stats.Series, error)) ([][]stats.Series, error) {
	out := make([][]stats.Series, trials)
	errs := make([]error, trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	ch := make(chan int, trials)
	for t := 0; t < trials; t++ {
		ch <- t
	}
	close(ch)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for t := range ch {
				out[t], errs[t] = body(t)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mergeTrials averages the i-th series across trials for every i.
func mergeTrials(perTrial [][]stats.Series) []stats.Series {
	if len(perTrial) == 0 {
		return nil
	}
	nSeries := len(perTrial[0])
	out := make([]stats.Series, nSeries)
	for i := 0; i < nSeries; i++ {
		group := make([]stats.Series, 0, len(perTrial))
		for _, trial := range perTrial {
			group = append(group, trial[i])
		}
		out[i] = stats.MergeMean(perTrial[0][i].Label, group)
	}
	return out
}

// trialSeed derives a distinct deterministic seed per (experiment seed,
// trial index) pair.
func trialSeed(base uint64, trial int) uint64 {
	x := base ^ (uint64(trial)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}
