package experiment

import (
	"fmt"

	"repro/internal/can"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gnutella"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stats"
)

// runOverhead reproduces §4.3's cost analysis: one step of adjustment costs
// about nhops+2c messages under PROP-G and nhops+2m under PROP-O. We run
// each policy and compare the measured messages-per-adjustment against the
// model.
func runOverhead(opt Options) (*Result, error) {
	type variant struct {
		label  string
		policy core.Policy
		m      int
	}
	variants := []variant{
		{"PROP-G", core.PROPG, 0},
		{"PROP-O m=1", core.PROPO, 1},
		{"PROP-O m=2", core.PROPO, 2},
		{"PROP-O m=4", core.PROPO, 4},
	}
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		e, err := newEnv(opt, netsim.TSLarge(), trialSeed(opt.Seed, trial))
		if err != nil {
			return nil, err
		}
		n := scaled(1000, opt.Scale, 100)
		base, err := e.buildGnutella(n)
		if err != nil {
			return nil, err
		}
		measured := stats.Series{Label: "measured msgs/adjustment"}
		model := stats.Series{Label: "model nhops+2c | nhops+2m"}
		for vi, v := range variants {
			oc := base.Clone()
			cfg := core.DefaultConfig(v.policy)
			cfg.M = v.m
			p, err := core.New(oc, cfg, e.r.Split())
			if err != nil {
				return nil, err
			}
			eng := event.New()
			p.Start(eng)
			eng.RunUntil(horizonMS)
			measured.Add(float64(vi), p.Counters.MessagesPerAdjustment())
			if v.policy == core.PROPG {
				model.Add(float64(vi), float64(cfg.NHops)+2*oc.Logical.AverageDegree())
			} else {
				model.Add(float64(vi), float64(cfg.NHops)+2*float64(v.m))
			}
		}
		return []stats.Series{measured, model}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "overhead",
		Title:  "Message overhead per adjustment step: measured vs analytical model",
		XLabel: "variant",
		YLabel: "messages per probe cycle",
		Series: mergeTrials(perTrial),
		Notes: []string{
			"variant index: 0=PROP-G, 1=PROP-O m=1, 2=PROP-O m=2, 3=PROP-O m=4",
			"expected shape: PROP-O far cheaper than PROP-G because c >> m",
			"PROP-G measured exceeds nhops+2c: walk partners are degree-biased, and the degree-biased mean degree exceeds c in a power-law overlay",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}

// Churn experiment time structure: steady state, then a churn window, then
// recovery, sampling probe frequency and stretch each minute.
const (
	churnHorizonMS = 60 * 60000
	churnStartMS   = 20 * 60000
	churnStopMS    = 35 * 60000
)

// runChurn reproduces the dynamics claim: probe frequency spikes when churn
// begins (timers reset, fresh neighbors probed early) and decays
// exponentially after churn stops, while stretch recovers.
func runChurn(opt Options) (*Result, error) {
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		return oneChurnTrial(opt, opt.Metrics.Trial(trial), trialSeed(opt.Seed, trial))
	})
	if err != nil {
		return nil, err
	}
	notes := []string{
		fmt.Sprintf("churn window: minutes %d-%d (Poisson joins and leaves, ~25%% of peers)", churnStartMS/60000, churnStopMS/60000),
		"expected shape: probe rate spikes inside the window, decays after; stretch bumps then recovers",
		fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
	}
	if opt.ALMode != ALModeOff {
		notes = append(notes, fmt.Sprintf("al-mode=%s: eq. (3) AL series recorded as churn/al_ms in the metrics stream", opt.ALMode))
	}
	return &Result{
		ID:     "churn",
		Title:  "PROP-G under churn: probe frequency and stretch over time",
		XLabel: "time (min)",
		YLabel: "probes per node per minute | stretch",
		Series: mergeTrials(perTrial),
		Notes:  notes,
	}, nil
}

func oneChurnTrial(opt Options, tr *obs.Trial, seed uint64) ([]stats.Series, error) {
	const prefix = "churn/"
	e, err := newEnv(opt, netsim.TSLarge(), seed)
	if err != nil {
		return nil, err
	}
	e.instrumentOracle(tr, prefix)
	n := scaled(1000, opt.Scale, 100)
	hosts := e.pickHosts(len(e.net.StubHosts)) // all hosts, shuffled
	if n > len(hosts) {
		n = len(hosts)
	}
	active := hosts[:n]
	pool := append([]int(nil), hosts[n:]...) // joiners draw from here
	o, err := gnutella.Build(active, gnutella.DefaultConfig(), e.oracle.Latency, e.r)
	if err != nil {
		return nil, err
	}
	p, err := core.New(o, core.DefaultConfig(core.PROPG), e.r.Split())
	if err != nil {
		return nil, err
	}
	eng := event.New()
	p.Start(eng)

	// ~25% of peers join and ~25% leave during the window.
	churnEvents := n / 4
	if churnEvents < 1 {
		churnEvents = 1
	}
	meanInterval := float64(churnStopMS-churnStartMS) / float64(churnEvents)
	cr := e.r.Split()
	runner, err := churn.NewRunner(churn.Config{
		StartMS:             churnStartMS,
		StopMS:              churnStopMS,
		MeanJoinIntervalMS:  meanInterval,
		MeanLeaveIntervalMS: meanInterval,
	}, cr)
	if err != nil {
		return nil, err
	}
	runner.OnJoin = func(en *event.Engine) error {
		if len(pool) == 0 {
			return fmt.Errorf("no spare hosts")
		}
		host := pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		slot, err := gnutella.Join(o, host, gnutella.DefaultConfig(), cr)
		if err != nil {
			return err
		}
		return p.AddNode(en, slot)
	}
	runner.OnLeave = func(en *event.Engine) error {
		alive := o.AliveSlots()
		if len(alive) < 10 {
			return fmt.Errorf("overlay too small to shrink")
		}
		victim := alive[cr.Intn(len(alive))]
		host := o.HostOf(victim)
		former := o.Neighbors(victim)
		if err := gnutella.Leave(o, victim, gnutella.DefaultConfig(), cr); err != nil {
			return err
		}
		p.RemoveNode(en, victim, former)
		pool = append(pool, host)
		return nil
	}
	al, err := newALProbe(opt, o, seed, scaled(paperLookups, opt.Scale, 100))
	if err != nil {
		return nil, err
	}
	defer al.close()
	// Incremental mode absorbs each churn event as it fires, so no repair
	// batch ever spans more than one join/leave (a no-op in other modes).
	runner.AfterEvent = func(*event.Engine) { al.update() }
	hookExchangeTrace(tr, prefix, p)
	runner.Start(eng)

	phys := e.meanPhysLink()
	spSim := tr.StartSpan(prefix+"simulate", 0)
	probeSeries := stats.Series{Label: "probes/node/min"}
	stretchSeries := stats.Series{Label: "stretch"}
	lastProbes := uint64(0)
	const sampleStep = 60000.0
	for t := 0.0; t <= churnHorizonMS; t += sampleStep {
		eng.RunUntil(event.Time(t))
		dp := p.Counters.Probes - lastProbes
		lastProbes = p.Counters.Probes
		nodes := o.NumAlive()
		if nodes == 0 {
			nodes = 1
		}
		probeSeries.Add(t/60000, float64(dp)/float64(nodes))
		stretchSeries.Add(t/60000, o.Stretch(phys))
		if _, err := al.measure(tr, prefix, t); err != nil {
			return nil, err
		}
		if tr != nil {
			tr.Series(prefix+"probe_rate").Sample(t, float64(dp)/float64(nodes))
			tr.Series(prefix+"stretch").Sample(t, o.Stretch(phys))
			tr.Series(prefix+"alive_nodes").Sample(t, float64(o.NumAlive()))
			sampleProtocol(tr, prefix, t, p, o)
		}
	}
	spSim.End(churnHorizonMS)
	recordCounterTotals(tr, prefix+"prop.", p.Counters)
	if !o.Connected() {
		return nil, fmt.Errorf("churn disconnected the overlay")
	}
	return []stats.Series{probeSeries, stretchSeries}, nil
}

// runCombo reproduces the combination claim: PROP-G stacks with proximity
// mechanisms (PNS on Chord, PIS on CAN) for further improvement.
func runCombo(opt Options) (*Result, error) {
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		return oneComboTrial(opt, trialSeed(opt.Seed, trial))
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "combo",
		Title:  "PROP-G combined with recent proximity approaches (final stretch after optimization)",
		XLabel: "method",
		YLabel: "stretch",
		Series: mergeTrials(perTrial),
		Notes: []string{
			"method index: 0=plain, 1=PNS/PIS only, 2=PROP-G only, 3=PNS/PIS + PROP-G",
			"expected shape: combination (3) beats either alone (1, 2); all beat plain (0)",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}

func oneComboTrial(opt Options, seed uint64) ([]stats.Series, error) {
	e, err := newEnv(opt, netsim.TSLarge(), seed)
	if err != nil {
		return nil, err
	}
	n := scaled(1000, opt.Scale, 100)
	nLookups := scaled(paperLookups, opt.Scale, 100)

	runPROPG := func(ov *core.Protocol) {
		eng := event.New()
		ov.Start(eng)
		eng.RunUntil(horizonMS)
	}

	chordSeries := stats.Series{Label: "Chord"}
	for idx, variant := range []struct {
		pns  bool
		prop bool
	}{{false, false}, {true, false}, {false, true}, {true, true}} {
		ring, err := e.buildChord(n, variant.pns)
		if err != nil {
			return nil, err
		}
		if variant.prop {
			p, err := core.New(ring.O, core.DefaultConfig(core.PROPG), e.r.Split())
			if err != nil {
				return nil, err
			}
			runPROPG(p)
			// Chord stabilization after the exchanges: PNS re-picks its
			// finger candidates against the new host mapping.
			ring.Refresh(e.oracle.Latency)
		}
		lookups := makeChordWorkload(ring, nLookups, e.r.Split())
		chordSeries.Add(float64(idx), routingStretch(ring, e, lookups))
	}

	canSeries := stats.Series{Label: "CAN"}
	for idx, variant := range []struct {
		pis  bool
		prop bool
	}{{false, false}, {true, false}, {false, true}, {true, true}} {
		sp, err := e.buildCAN(n, variant.pis)
		if err != nil {
			return nil, err
		}
		if variant.prop {
			p, err := core.New(sp.O, core.DefaultConfig(core.PROPG), e.r.Split())
			if err != nil {
				return nil, err
			}
			runPROPG(p)
		}
		canSeries.Add(float64(idx), canRoutingStretch(sp, e, nLookups))
	}

	return []stats.Series{chordSeries, canSeries}, nil
}

// canRoutingStretch is the CAN analog of routingStretch: the mean ratio of
// greedy-routed latency to the direct source→owner latency over a random
// point workload.
func canRoutingStretch(sp *can.Space, e *env, count int) float64 {
	r := e.r.Split()
	slots := sp.O.AliveSlots()
	sum, n := 0.0, 0
	for i := 0; i < count; i++ {
		src := slots[r.Intn(len(slots))]
		target := can.RandomPoint(r)
		res, err := sp.Route(src, target, nil)
		if err != nil || res.Owner == src {
			continue
		}
		direct := e.oracle.Latency(sp.O.HostOf(src), sp.O.HostOf(res.Owner))
		if direct <= 0 {
			continue
		}
		sum += res.Latency / direct
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
