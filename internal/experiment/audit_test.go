package experiment

import (
	"strings"
	"testing"
)

// TestAuditedRunsClean runs one Gnutella panel and one Chord panel at
// miniature scale with the online auditor attached and verifies (a) the run
// is violation-free — finishAudit turns any violation into an error — and
// (b) the per-trial audit summaries land in Result.Notes. This test is NOT
// skipped in -short mode so that `go test -tags auditstrict -short ./...`
// evaluates every registered invariant on every protocol event.
func TestAuditedRunsClean(t *testing.T) {
	for _, id := range []string{"fig5c", "fig6c"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res, err := Run(id, Options{Seed: 3, Trials: 2, Scale: 0.05, Audit: true})
			if err != nil {
				t.Fatalf("audited %s: %v", id, err)
			}
			auditNotes := 0
			for _, n := range res.Notes {
				if strings.HasPrefix(n, "audit trial ") {
					auditNotes++
					if !strings.Contains(n, "0 violations") {
						t.Fatalf("audit note reports violations: %q", n)
					}
				}
			}
			// Both panels have 2 variants and we ask for 2 trials: one
			// summary per audited run.
			if auditNotes != 4 {
				t.Fatalf("got %d audit notes, want one per trial and variant (4): %q", auditNotes, res.Notes)
			}
		})
	}
}

// TestAuditOffLeavesNotesClean verifies the auditor is pay-for-play: without
// Options.Audit no audit notes appear.
func TestAuditOffLeavesNotesClean(t *testing.T) {
	res, err := Run("fig5c", Options{Seed: 3, Trials: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Notes {
		if strings.HasPrefix(n, "audit trial ") {
			t.Fatalf("unexpected audit note without Options.Audit: %q", n)
		}
	}
}
