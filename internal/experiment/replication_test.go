package experiment

import (
	"testing"

	"repro/internal/stats"
)

func TestReplicationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("replication experiment in -short mode")
	}
	res, err := Run("replication", Options{Seed: 6, Trials: 2, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var plain, prop, ratio stats.Series
	for _, s := range res.Series {
		switch s.Label {
		case "unoptimized (ms)":
			plain = s
		case "PROP-G (ms)":
			prop = s
		case "PROP-G/unoptimized":
			ratio = s
		}
	}
	if plain.Len() != 5 || prop.Len() != 5 || ratio.Len() != 5 {
		t.Fatalf("series shapes: %d/%d/%d", plain.Len(), prop.Len(), ratio.Len())
	}
	// More replicas ⇒ cheaper search, end to end, on both overlays.
	if plain.Final() >= plain.Y[0] {
		t.Errorf("unoptimized search not improving with replication: %v", plain.Y)
	}
	if prop.Final() >= prop.Y[0] {
		t.Errorf("PROP-G search not improving with replication: %v", prop.Y)
	}
	// PROP-G helps at every replication factor.
	for i := range ratio.Y {
		if ratio.Y[i] >= 1 {
			t.Errorf("PROP-G not helping at %v replicas: ratio %.3f", ratio.X[i], ratio.Y[i])
		}
	}
}
