package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gnutella"
	"repro/internal/ltm"
	"repro/internal/netsim"
	"repro/internal/overlay"
	"repro/internal/stats"
)

// The traffic experiment quantifies the paper's §1 motivation directly:
// "a well-routed message path … may result in a long delay and EXCESSIVE
// TRAFFIC due to the mismatch between logical and physical networks."
// We flood TTL-limited queries and measure, per query: messages on the
// wire, peers reached, and latency-weighted traffic (ms of link latency
// crossed). PROP never changes the message count — PROP-G keeps the graph,
// PROP-O keeps the degrees — it only makes each message cheaper; LTM also
// rewires the message count itself.

func init() {
	registry["traffic"] = runner{
		describe: "extension: TTL-flood traffic cost before/after PROP-G, PROP-O, LTM",
		run:      runTraffic,
	}
}

// floodTTL is the Gnutella query TTL (the classic default is 7; 4 keeps
// duplicate storms bounded at simulation scale while still covering the
// overlay).
const floodTTL = 4

func runTraffic(opt Options) (*Result, error) {
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		e, err := newEnv(opt, netsim.TSLarge(), trialSeed(opt.Seed, trial))
		if err != nil {
			return nil, err
		}
		n := scaled(1000, opt.Scale, 100)
		base, err := e.buildGnutella(n)
		if err != nil {
			return nil, err
		}
		// Sources for the flood sample.
		srcCount := scaled(100, opt.Scale, 20)
		slots := base.AliveSlots()
		sources := make([]int, 0, srcCount)
		sr := e.r.Split()
		for i := 0; i < srcCount; i++ {
			sources = append(sources, slots[sr.Intn(len(slots))])
		}

		msgs := stats.Series{Label: "messages per query"}
		traffic := stats.Series{Label: "traffic (ms per query)"}
		reached := stats.Series{Label: "peers reached"}

		record := func(idx int, o *overlay.Overlay) {
			st := gnutella.MeanFloodStats(o, sources, floodTTL)
			msgs.Add(float64(idx), float64(st.Messages))
			traffic.Add(float64(idx), st.TrafficMS)
			reached.Add(float64(idx), float64(st.Reached))
		}

		// 0: unoptimized.
		record(0, base)

		// 1: PROP-G.
		{
			oc := base.Clone()
			p, err := core.New(oc, core.DefaultConfig(core.PROPG), e.r.Split())
			if err != nil {
				return nil, err
			}
			eng := event.New()
			p.Start(eng)
			eng.RunUntil(horizonMS)
			record(1, oc)
		}
		// 2: PROP-O.
		{
			oc := base.Clone()
			p, err := core.New(oc, core.DefaultConfig(core.PROPO), e.r.Split())
			if err != nil {
				return nil, err
			}
			eng := event.New()
			p.Start(eng)
			eng.RunUntil(horizonMS)
			record(2, oc)
		}
		// 3: LTM.
		{
			oc := base.Clone()
			p, err := ltm.New(oc, ltm.DefaultConfig(), e.r.Split())
			if err != nil {
				return nil, err
			}
			eng := event.New()
			p.Start(eng)
			eng.RunUntil(horizonMS)
			record(3, oc)
		}
		return []stats.Series{msgs, traffic, reached}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "traffic",
		Title:  "TTL-flood traffic per query: unoptimized vs PROP-G vs PROP-O vs LTM",
		XLabel: "variant",
		YLabel: "messages | ms traffic | peers reached",
		Series: mergeTrials(perTrial),
		Notes: []string{
			"variant index: 0=unoptimized, 1=PROP-G, 2=PROP-O, 3=LTM",
			fmt.Sprintf("flood TTL = %d", floodTTL),
			"expected: PROP-G leaves the message count untouched (identical graph) while cutting ms-traffic; PROP-O leaves degrees (≈message count) while cutting ms-traffic; LTM changes the message count itself",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}
