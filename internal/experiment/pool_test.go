package experiment

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/stats"
)

// TestForEachTrialOrderAndErrors: the bounded pool must keep the exact
// semantics of the old one-goroutine-per-trial version — outputs land at
// their trial index and the lowest-indexed error wins.
func TestForEachTrialOrderAndErrors(t *testing.T) {
	const trials = 17
	out, err := forEachTrial(trials, func(trial int) ([]stats.Series, error) {
		return []stats.Series{{Label: fmt.Sprintf("trial-%d", trial)}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != trials {
		t.Fatalf("got %d outputs, want %d", len(out), trials)
	}
	for i, series := range out {
		if want := fmt.Sprintf("trial-%d", i); series[0].Label != want {
			t.Fatalf("out[%d] holds %q, want %q", i, series[0].Label, want)
		}
	}

	_, err = forEachTrial(trials, func(trial int) ([]stats.Series, error) {
		if trial == 3 || trial == 11 {
			return nil, fmt.Errorf("boom %d", trial)
		}
		return nil, nil
	})
	if err == nil || err.Error() != "boom 3" {
		t.Fatalf("got error %v, want the lowest-indexed failure (boom 3)", err)
	}
}

// TestForEachTrialBoundedConcurrency: no more than GOMAXPROCS trial bodies
// run at once, and every trial still runs exactly once.
func TestForEachTrialBoundedConcurrency(t *testing.T) {
	const trials = 64
	var inFlight, peak, ran atomic.Int64
	_, err := forEachTrial(trials, func(trial int) ([]stats.Series, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
		ran.Add(1)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != trials {
		t.Fatalf("%d trials ran, want %d", got, trials)
	}
	if max := int64(runtime.GOMAXPROCS(0)); peak.Load() > max {
		t.Fatalf("observed %d concurrent trials, cap is %d", peak.Load(), max)
	}
}
