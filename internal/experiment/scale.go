package experiment

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/stats"
)

// fig5a-scale is the scaling companion of fig5a (SCALING.md): the same
// question — how much does PROP-G-style swapping improve average latency
// over time — asked at 10⁴–10⁶ peers, where the sequential engine and the
// exact AL evaluation are both unaffordable. Each rung of the ladder runs
// the domain-sharded engine (internal/shard) on a ScaleTS world and
// samples the landmark-estimated average latency; the smallest rung keeps
// the exact eq. (3) reference alongside, so the estimator's in-stream
// error is continuously visible at the size where it can still be checked.

const (
	// scaleMinPeers is the smallest rung: one ScaleTS stub layer (16
	// domains × 8 routers × 32 hosts), also the largest size where the
	// exact AL reference is computed alongside the estimate.
	scaleMinPeers = 4096
	// scaleMaxPeers is the top of the default ladder.
	scaleMaxPeers = 1_000_000
	// scaleHorizonMS and scaleMinHorizonMS bound the simulated optimization
	// window: ten minutes at full Scale, shrunk proportionally (with a
	// floor that keeps at least three samples) for quick runs.
	scaleHorizonMS    = 10 * 60000
	scaleMinHorizonMS = 4 * 60000
)

// scaleRungs returns the peer-count ladder: geometric steps up to the
// effective maximum (Options.ScaleMaxN, default 10⁶, shrunk by
// Options.Scale), always ending exactly at that maximum.
func scaleRungs(opt Options) []int {
	maxN := opt.ScaleMaxN
	if maxN <= 0 {
		maxN = scaleMaxPeers
	}
	maxN = scaled(maxN, opt.Scale, scaleMinPeers)
	var rungs []int
	for _, r := range []int{scaleMinPeers, 32768, 262144} {
		if r < maxN {
			rungs = append(rungs, r)
		}
	}
	return append(rungs, maxN)
}

func runFig5aScale(opt Options) (*Result, error) {
	rungs := scaleRungs(opt)
	horizon := float64(scaled(scaleHorizonMS, opt.Scale, scaleMinHorizonMS))
	// The -loss/-crash/-partition overrides attach one fault schedule to
	// every rung (figR-scale sweeps them instead); nil when all are zero,
	// keeping the historical byte-identical stream.
	faults := scaleFaults(opt, horizon)
	// The sharded engine samples its own stream, so the experiment needs a
	// registry even when the caller didn't ask for one.
	reg := opt.Metrics
	if reg == nil {
		reg = obs.New(obs.NewManifest("fig5a-scale", opt.Seed, len(rungs), opt.Scale))
	}

	// The exact eq. (3) reference (O(n·Dijkstra) per sample) rides along on
	// the smallest rung, and only at full Scale: it is the fidelity check of
	// a real run, not something the quick-sweep tests should pay for.
	exactRung := opt.Scale >= 1
	series := make([]stats.Series, len(rungs))
	notes := []string{
		fmt.Sprintf("sharded engine: %d rung(s), horizon %.0f sim-min, seed=%d scale=%.2f", len(rungs), horizon/60000, opt.Seed, opt.Scale),
		fmt.Sprintf("al series are %d-source sketches (metrics.ALEstimator); exact reference + al_err_pct on the n=%d rung at full scale: %v", 16, scaleMinPeers, exactRung),
	}
	if faults != nil {
		notes = append(notes, fmt.Sprintf(
			"fault schedule on every rung: loss=%g dup=%g jitter=%gms crash=%g partition=[%.0f,%.0f)ms; the crash/churn series ride the stream",
			faults.LossProb, faults.DupProb, faults.JitterMS, faults.CrashFrac, faults.PartitionStartMS, faults.PartitionStopMS))
	}
	for i, n := range rungs {
		cfg := shard.Config{
			Peers:     n,
			Shards:    opt.Shards,
			Seed:      trialSeed(opt.Seed, i),
			HorizonMS: horizon,
			ExactAL:   exactRung && n <= scaleMinPeers,
			Faults:    faults,
		}
		tr := reg.Trial(i)
		wallStart := time.Now()
		sp := tr.StartSpan("gen-world", 0)
		e, err := shard.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig5a-scale n=%d: %w", n, err)
		}
		sp.End(0)
		prefix := fmt.Sprintf("n=%d/", e.Peers())
		sp = tr.StartSpan(prefix+"simulate", 0)
		if err := e.Run(tr, prefix); err != nil {
			return nil, fmt.Errorf("fig5a-scale n=%d: %w", n, err)
		}
		sp.End(horizon)
		st := e.Stats()
		notes = append(notes, fmt.Sprintf(
			"n=%d: %d peers, %d shards, lookahead %.0f ms, %d epochs, %d exchanges, %d cross-shard msgs, %d snapshot conflicts",
			n, st.Peers, st.Shards, st.LookaheadMS, st.Epochs, st.Exchanges, st.CrossShard, st.SnapshotConflicts))
		// Wall time and memory ride the obs stream only when the registry
		// has opted into wall-clock fields (propsim -metrics-wall) — they
		// are inherently nondeterministic, and the default stream stays
		// byte-identical across runs.
		if reg.WallClock() {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			tr.Series(prefix+"walltime_s").Sample(horizon, time.Since(wallStart).Seconds())
			tr.Series(prefix+"heap_alloc_mb").Sample(horizon, float64(ms.HeapAlloc)/(1<<20))
		}

		ts, vs := tr.Series(prefix + "al_est_ms").Points()
		s := stats.Series{Label: fmt.Sprintf("n=%d", e.Peers())}
		for j := range ts {
			s.Add(ts[j]/60000, vs[j])
		}
		series[i] = s
	}
	return &Result{
		ID:     "fig5a-scale",
		Title:  "PROP-G at scale: sharded engine, estimated AL vs time, varying the system size",
		XLabel: "time (min)",
		YLabel: "estimated average latency (ms)",
		Series: series,
		Notes: append(notes,
			"expected shape: every rung's estimated AL decreases over the run; larger n converges slower in wall terms, not in sim time"),
	}, nil
}
