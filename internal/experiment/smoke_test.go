package experiment

import (
	"math"
	"testing"
)

// TestAllExperimentsSmoke runs every registered experiment at miniature
// scale and verifies the structural contract: no error, at least one
// series, every series non-empty, and no NaN/Inf values. Individual shape
// tests live next to each experiment; this one guarantees nothing in the
// registry can rot unnoticed.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke sweep in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res, err := Run(id, Options{Seed: 11, Trials: 1, Scale: 0.12})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res.ID != id {
				t.Fatalf("result ID %q != %q", res.ID, id)
			}
			if len(res.Series) == 0 {
				t.Fatal("no series")
			}
			for _, s := range res.Series {
				if s.Len() == 0 {
					t.Fatalf("series %q empty", s.Label)
				}
				if len(s.X) != len(s.Y) {
					t.Fatalf("series %q ragged: %d x, %d y", s.Label, len(s.X), len(s.Y))
				}
				for i, y := range s.Y {
					if math.IsNaN(y) || math.IsInf(y, 0) {
						t.Fatalf("series %q has non-finite y at x=%v", s.Label, s.X[i])
					}
				}
			}
			if len(res.Notes) == 0 {
				t.Fatal("no notes — every experiment documents its setup")
			}
		})
	}
}
