package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// figRScaleTestOpt keeps figR-scale tests on the smallest rung with
// collapsed sweeps: three sharded runs (fault-free, one loss point, one
// crash point) over a single 4096-peer world.
func figRScaleTestOpt(seed uint64) Options {
	return Options{
		Seed: seed, Trials: 1, Scale: 0.5, ScaleMaxN: scaleMinPeers,
		FaultLoss: 0.05, FaultCrash: 0.10,
	}
}

// TestFigRScaleSmoke runs the full default sweeps on the smallest rung and
// checks the result shape: one loss and one crash series, each anchored at
// the shared fault-free point, plus the per-point fault tallies in the
// notes.
func TestFigRScaleSmoke(t *testing.T) {
	res, err := Run("figR-scale", Options{Seed: 4, Trials: 1, Scale: 0.5, ScaleMaxN: scaleMinPeers})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("%d series, want 2 (loss + crash for one rung)", len(res.Series))
	}
	loss, crash := res.Series[0], res.Series[1]
	if loss.Label != "n=4096 loss" || crash.Label != "n=4096 crash" {
		t.Fatalf("series labels %q, %q", loss.Label, crash.Label)
	}
	if loss.Len() != len(figRLossGrid) || crash.Len() != len(figRCrashGrid) {
		t.Fatalf("sweep sizes %d/%d, want %d/%d", loss.Len(), crash.Len(), len(figRLossGrid), len(figRCrashGrid))
	}
	if loss.X[0] != 0 || crash.X[0] != 0 || loss.Y[0] != crash.Y[0] {
		t.Errorf("sweeps not anchored at the shared fault-free point: loss(%v)=%v crash(%v)=%v",
			loss.X[0], loss.Y[0], crash.X[0], crash.Y[0])
	}
	var tallies bool
	for _, n := range res.Notes {
		if strings.Contains(n, "crash20: ") && strings.Contains(n, "crashes") {
			tallies = true
		}
	}
	if !tallies {
		t.Errorf("notes missing per-point fault tallies: %q", res.Notes)
	}
}

// TestFigRScaleSweepCollapse: the -loss/-crash overrides collapse each
// sweep to {0, value}, exactly like figRa/figRb.
func TestFigRScaleSweepCollapse(t *testing.T) {
	res, err := Run("figR-scale", figRScaleTestOpt(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.Len() != 2 {
			t.Errorf("series %q has %d points, want 2 (collapsed sweep)", s.Label, s.Len())
		}
	}
	if got := res.Series[0].X[1]; got != 5 {
		t.Errorf("collapsed loss sweep at %v%%, want 5%%", got)
	}
	if got := res.Series[1].X[1]; got != 10 {
		t.Errorf("collapsed crash sweep at %v%%, want 10%%", got)
	}
}

// TestFigRScaleStreamShardInvariance is the experiment-layer restatement of
// the tentpole contract on the full-size world: with loss, duplication,
// jitter, and crash-stop churn enabled, the metrics stream is byte-identical
// for 1 and 16 shards (16 = one engine per ScaleTS transit domain, the
// widest admissible split).
func TestFigRScaleStreamShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded stream sweep in -short mode")
	}
	base := metricsStreamOf(t, "figR-scale", figRScaleTestOpt(9))
	for _, shards := range []int{1, 16} {
		opt := figRScaleTestOpt(9)
		opt.Shards = shards
		if got := metricsStreamOf(t, "figR-scale", opt); !bytes.Equal(got, base) {
			t.Fatalf("shards=%d faulty stream differs from default:\n%s", shards, firstDiffLine(got, base))
		}
	}
	if other := metricsStreamOf(t, "figR-scale", figRScaleTestOpt(10)); bytes.Equal(base, other) {
		t.Fatal("different seeds emitted identical faulty streams")
	}
	for _, name := range []string{`"n=4096/base/al_est_ms"`, `"n=4096/loss5/crashed"`, `"n=4096/crash10/evictions"`} {
		if !bytes.Contains(base, []byte(name)) {
			t.Errorf("stream missing series %s", name)
		}
	}
	if bytes.Contains(base, []byte(`"n=4096/base/crashed"`)) {
		t.Error("fault-free point grew a churn series")
	}
}

// TestFaultFlagRejection pins the bugfix: a fault override an experiment
// would silently ignore is now an error naming the flag, while the
// fault-aware experiments accept their own overrides.
func TestFaultFlagRejection(t *testing.T) {
	reject := []struct {
		id  string
		opt Options
		fla string
	}{
		{"fig5b", Options{FaultLoss: 0.05}, "-loss"},
		{"fig5a", Options{FaultCrash: 0.1}, "-crash"},
		{"churn", Options{FaultPartitionMS: 60000}, "-partition"},
		{"figRa", Options{FaultCrash: 0.1}, "-crash"},
		{"figRb", Options{FaultLoss: 0.05}, "-loss"},
		{"figRc", Options{FaultLoss: 0.05, FaultCrash: 0.1}, "-loss/-crash"},
	}
	for _, c := range reject {
		_, err := Run(c.id, c.opt)
		if err == nil {
			t.Errorf("%s silently accepted a fault override it does not consume (%+v)", c.id, c.opt)
			continue
		}
		if !strings.Contains(err.Error(), c.fla) || !strings.Contains(err.Error(), "figR-scale") {
			t.Errorf("%s: error %q does not name %s and the fault-aware set", c.id, err, c.fla)
		}
	}
	// fig5a-scale consumes all three: the same overrides must run clean and
	// put the churn series on the stream.
	opt := Options{
		Seed: 3, Trials: 1, Scale: 0.5, ScaleMaxN: scaleMinPeers,
		FaultLoss: 0.05, FaultCrash: 0.10, FaultPartitionMS: 60000,
	}
	stream := metricsStreamOf(t, "fig5a-scale", opt)
	if !bytes.Contains(stream, []byte(`"n=4096/crashed"`)) {
		t.Error("fig5a-scale with fault overrides missing the churn series")
	}
}
