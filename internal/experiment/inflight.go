package experiment

import (
	"fmt"

	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/livesim"
	"repro/internal/netsim"
	"repro/internal/stats"
)

// The inflight experiment verifies §3.2's correctness mechanism at message
// granularity: lookups route hop-by-hop on the simulated clock while PROP-G
// exchanges fire between (and during) hops. The counterpart cache written
// at exchange time redirects stale arrivals; re-resolution via notified
// routing entries covers the double-exchange race. The paper asserts this
// works; here it is measured.

func init() {
	registry["inflight"] = runner{
		describe: "§3.2: lookups in flight during peer-exchanges — counterpart-cache correctness",
		run:      runInflight,
	}
}

func runInflight(opt Options) (*Result, error) {
	// Exchange pressure rises as the probe timer shrinks.
	timers := []struct {
		label   string
		timerMS float64
	}{
		{"quiet (no exchanges)", 1e12},
		{"paper pace (60 s)", 60000},
		{"aggressive (1 s)", 1000},
		{"hostile (50 ms)", 50},
	}
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		e, err := newEnv(opt, netsim.TSLarge(), trialSeed(opt.Seed, trial))
		if err != nil {
			return nil, err
		}
		n := scaled(1000, opt.Scale, 100)
		nLookups := scaled(2000, opt.Scale, 200)

		correct := stats.Series{Label: "correct fraction"}
		stale := stats.Series{Label: "stale arrivals per 1000 lookups"}
		exchanges := stats.Series{Label: "exchanges during run"}
		for vi, v := range timers {
			ring, err := e.buildChord(n, false)
			if err != nil {
				return nil, err
			}
			cfg := core.DefaultConfig(core.PROPG)
			cfg.InitTimerMS = v.timerMS
			p, err := core.New(ring.O, cfg, e.r.Split())
			if err != nil {
				return nil, err
			}
			sim, err := livesim.New(ring, p)
			if err != nil {
				return nil, err
			}
			eng := event.New()
			p.Start(eng)
			lr := e.r.Split()
			slots := ring.O.AliveSlots()
			horizon := 120000.0
			for i := 0; i < nLookups; i++ {
				at := event.Time(lr.Float64() * horizon * 0.8)
				sim.IssueLookup(eng, at, slots[lr.Intn(len(slots))], chord.RandomKey(lr))
			}
			eng.RunUntil(event.Time(horizon))
			sum := sim.Summarize()
			if sum.Lookups != nLookups {
				return nil, fmt.Errorf("inflight %s: %d of %d lookups finished",
					v.label, sum.Lookups, nLookups)
			}
			correct.Add(float64(vi), float64(sum.Correct)/float64(sum.Lookups))
			stale.Add(float64(vi), float64(sum.Redirects+sum.Reresolves)/float64(sum.Lookups)*1000)
			exchanges.Add(float64(vi), float64(p.Counters.Exchanges))
		}
		return []stats.Series{correct, stale, exchanges}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "inflight",
		Title:  "Lookups concurrent with peer-exchanges: counterpart-cache correctness",
		XLabel: "variant",
		YLabel: "correct fraction | stale/1000 | exchanges",
		Series: mergeTrials(perTrial),
		Notes: []string{
			"variant index: 0=quiet, 1=paper pace (60s timer), 2=aggressive (1s), 3=hostile (50ms)",
			"expected: correct fraction 1.0 in every variant; stale arrivals grow with exchange pressure and are absorbed by the cache",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}
