package experiment

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

// alSeriesOf extracts the (t_ms, value) points of one trial-0 series from a
// JSONL metrics stream.
func alSeriesOf(t *testing.T, stream []byte, name string) (ts, vs []float64) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(string(stream), "\n"), "\n") {
		var rec struct {
			Kind  string  `json:"kind"`
			Trial int     `json:"trial"`
			Name  string  `json:"name"`
			TMS   float64 `json:"t_ms"`
			Value float64 `json:"value"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		if rec.Kind == "sample" && rec.Trial == 0 && rec.Name == name {
			ts = append(ts, rec.TMS)
			vs = append(vs, rec.Value)
		}
	}
	return ts, vs
}

// TestALModeUnknown: a bogus mode fails the run instead of being silently
// ignored.
func TestALModeUnknown(t *testing.T) {
	if _, err := Run("churn", Options{Seed: 1, Trials: 1, Scale: 0.1, ALMode: "bogus"}); err == nil {
		t.Fatal("unknown AL mode accepted")
	}
}

// TestALModeChurnStreams runs the churn experiment once per AL mode and
// checks that (a) every mode emits the al_ms series, (b) the incremental
// tracker agrees with the exact per-sample reflood at every sample point,
// and (c) the default (off) mode emits no AL series at all.
func TestALModeChurnStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full instrumented churn trials")
	}
	opt := Options{Seed: 3, Trials: 1, Scale: 0.1}
	off := metricsStreamOf(t, "churn", opt)
	if ts, _ := alSeriesOf(t, off, "churn/al_ms"); len(ts) != 0 {
		t.Fatalf("AL mode off emitted %d al_ms samples", len(ts))
	}

	streams := map[string][]byte{}
	for _, mode := range []string{ALModeExact, ALModeIncremental, ALModeSampled} {
		o := opt
		o.ALMode = mode
		streams[mode] = metricsStreamOf(t, "churn", o)
	}
	var exactT, exactV, incT, incV []float64
	exactT, exactV = alSeriesOf(t, streams[ALModeExact], "churn/al_ms")
	incT, incV = alSeriesOf(t, streams[ALModeIncremental], "churn/al_ms")
	sampT, sampV := alSeriesOf(t, streams[ALModeSampled], "churn/al_ms")
	if len(exactT) == 0 || len(incT) == 0 || len(sampT) == 0 {
		t.Fatalf("missing al_ms series: exact=%d incremental=%d sampled=%d points",
			len(exactT), len(incT), len(sampT))
	}
	if len(incT) != len(exactT) {
		t.Fatalf("incremental emitted %d points, exact %d", len(incT), len(exactT))
	}
	for i := range exactT {
		if incT[i] != exactT[i] {
			t.Fatalf("sample %d at t=%v (incremental) vs t=%v (exact)", i, incT[i], exactT[i])
		}
		// The tracker guarantees agreement within its drift budget (default
		// 1e-6 ms) plus a whisker for the reference's own rounding.
		if diff := math.Abs(incV[i] - exactV[i]); diff > 1e-6+1e-9*math.Abs(exactV[i]) {
			t.Fatalf("t=%v: incremental AL %v vs exact %v (diff %v)", exactT[i], incV[i], exactV[i], diff)
		}
	}
	// The sampled estimate is noisy but must stay in the right ballpark.
	for i := range sampT {
		if sampV[i] <= 0 || sampV[i] > 10*exactV[0] {
			t.Fatalf("t=%v: sampled AL %v implausible (exact starts at %v)", sampT[i], sampV[i], exactV[0])
		}
	}
}

// TestALModeFig5Stream: the fig5 harness emits the per-variant al_ms series
// and the result notes mention the mode.
func TestALModeFig5Stream(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full instrumented fig5 panel")
	}
	reg := obs.New(obs.NewManifest("fig5c", 2, 1, 0.1))
	res, err := Run("fig5c", Options{Seed: 2, Trials: 1, Scale: 0.1, ALMode: ALModeIncremental, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "al-mode=incremental") {
			found = true
		}
	}
	if !found {
		t.Fatalf("notes missing al-mode marker: %v", res.Notes)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()
	if ts, _ := alSeriesOf(t, stream, "ts-large/al_ms"); len(ts) == 0 {
		t.Fatal("fig5c emitted no ts-large/al_ms samples")
	}
	if ts, _ := alSeriesOf(t, stream, "ts-small/al_ms"); len(ts) == 0 {
		t.Fatal("fig5c emitted no ts-small/al_ms samples")
	}
}
