package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/netsim"
	"repro/internal/pastry"
	"repro/internal/stats"
)

// The Pastry experiment extends the combination study to a third DHT
// geometry (prefix routing + leaf sets). Pastry natively implements
// proximity neighbor selection, so it is the sharpest test of the paper's
// claim that PROP-G composes with — rather than replaces — protocol-
// specific proximity methods.

func init() {
	registry["pastry"] = runner{
		describe: "extension: PROP-G on Pastry, alone and with native proximity tables",
		run:      runPastry,
	}
}

func runPastry(opt Options) (*Result, error) {
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		return onePastryTrial(opt, trialSeed(opt.Seed, trial))
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "pastry",
		Title:  "PROP-G on Pastry (final routing stretch after optimization)",
		XLabel: "method",
		YLabel: "stretch",
		Series: mergeTrials(perTrial),
		Notes: []string{
			"method index: 0=plain, 1=proximity tables only, 2=PROP-G only, 3=proximity + PROP-G",
			"expected shape: all optimized variants beat plain; the combination is at least as good as either alone",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}

func onePastryTrial(opt Options, seed uint64) ([]stats.Series, error) {
	e, err := newEnv(opt, netsim.TSLarge(), seed)
	if err != nil {
		return nil, err
	}
	n := scaled(1000, opt.Scale, 100)
	nLookups := scaled(paperLookups, opt.Scale, 100)

	series := stats.Series{Label: "Pastry"}
	for idx, variant := range []struct {
		prox bool
		prop bool
	}{{false, false}, {true, false}, {false, true}, {true, true}} {
		cfg := pastry.DefaultConfig()
		cfg.Proximity = variant.prox
		mesh, err := pastry.Build(e.pickHosts(n), cfg, e.oracle.Latency, e.r)
		if err != nil {
			return nil, err
		}
		if variant.prop {
			p, err := core.New(mesh.O, core.DefaultConfig(core.PROPG), e.r.Split())
			if err != nil {
				return nil, err
			}
			eng := event.New()
			p.Start(eng)
			eng.RunUntil(horizonMS)
			// Table maintenance after the exchanges (re-picks proximity
			// candidates; a no-op for plain tables).
			mesh.Refresh(e.oracle.Latency)
		}
		series.Add(float64(idx), pastryRoutingStretch(mesh, e, nLookups))
	}
	return []stats.Series{series}, nil
}

// pastryRoutingStretch mirrors routingStretch for the Pastry mesh.
func pastryRoutingStretch(mesh *pastry.Mesh, e *env, count int) float64 {
	r := e.r.Split()
	slots := mesh.O.AliveSlots()
	sum, n := 0.0, 0
	for i := 0; i < count; i++ {
		src := slots[r.Intn(len(slots))]
		key := pastry.RandomKey(r)
		res, err := mesh.Lookup(src, key, nil)
		if err != nil || res.Owner == src {
			continue
		}
		direct := e.oracle.Latency(mesh.O.HostOf(src), mesh.O.HostOf(res.Owner))
		if direct <= 0 {
			continue
		}
		sum += res.Latency / direct
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
