package experiment

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/overlay"
)

// This file is the experiment harness's hookup into the observability layer
// (internal/obs, DESIGN.md §8). Every helper is a no-op on a nil *obs.Trial,
// so call sites read identically whether -metrics is on or off.
//
// Metric name convention: "<variant label>/<subsystem>.<quantity>". The
// variant label is the same string the figure's series carries, so a JSONL
// consumer can join the metrics stream against the rendered result.

// instrumentOracle attaches cache-activity counters to this environment's
// latency oracle under the given name prefix.
func (e *env) instrumentOracle(tr *obs.Trial, prefix string) {
	if tr == nil {
		return
	}
	e.oracle.SetInstruments(
		tr.Counter(prefix+"oracle.queries"),
		tr.Counter(prefix+"oracle.hits"),
		tr.Counter(prefix+"oracle.computes"),
		tr.Counter(prefix+"oracle.evictions"),
	)
}

// sampleProtocol snapshots the protocol's deterministic run state into
// sim-clock time series at one measurement tick: the §4.3 message counters,
// the Markov back-off state, and the overlay's accept/reject tallies.
func sampleProtocol(tr *obs.Trial, prefix string, tMS float64, p *core.Protocol, o *overlay.Overlay) {
	if tr == nil {
		return
	}
	sampleMessageCounters(tr, prefix+"prop.", tMS, p.Counters)
	bs := p.BackoffSnapshot()
	tr.Series(prefix+"backoff.mean_factor").Sample(tMS, bs.MeanFactor())
	tr.Series(prefix+"backoff.backed_off").Sample(tMS, float64(bs.BackedOff))
	tr.Series(prefix+"backoff.at_max").Sample(tMS, float64(bs.AtMax))
	sampleOverlayStats(tr, prefix, tMS, o)
}

// sampleMessageCounters writes one tick of a metrics.Counters snapshot
// (PROP or LTM alike) as cumulative series.
func sampleMessageCounters(tr *obs.Trial, prefix string, tMS float64, c metrics.Counters) {
	if tr == nil {
		return
	}
	tr.Series(prefix+"probes").Sample(tMS, float64(c.Probes))
	tr.Series(prefix+"exchanges").Sample(tMS, float64(c.Exchanges))
	tr.Series(prefix+"rejected").Sample(tMS, float64(c.Rejected))
	tr.Series(prefix+"messages").Sample(tMS, float64(c.Messages()))
	tr.Series(prefix+"walk_failures").Sample(tMS, float64(c.WalkFailures))
}

// sampleOverlayStats writes one tick of the overlay's mutation tallies.
func sampleOverlayStats(tr *obs.Trial, prefix string, tMS float64, o *overlay.Overlay) {
	if tr == nil {
		return
	}
	s := o.Stats
	tr.Series(prefix+"overlay.swaps").Sample(tMS, float64(s.Swaps))
	tr.Series(prefix+"overlay.neighbor_exchanges").Sample(tMS, float64(s.NeighborExchanges))
	tr.Series(prefix+"overlay.edges_rewired").Sample(tMS, float64(s.EdgesRewired))
	tr.Series(prefix+"overlay.rejected").Sample(tMS, float64(s.SwapsRejected+s.ExchangesRejected))
}

// recordCounterTotals stores end-of-run totals of a metrics.Counters as obs
// counters, so a consumer that only wants aggregates need not walk series.
func recordCounterTotals(tr *obs.Trial, prefix string, c metrics.Counters) {
	if tr == nil {
		return
	}
	tr.Counter(prefix + "probes").Add(c.Probes)
	tr.Counter(prefix + "walk_messages").Add(c.WalkMessages)
	tr.Counter(prefix + "measure_messages").Add(c.MeasureMessages)
	tr.Counter(prefix + "notify_messages").Add(c.NotifyMessages)
	tr.Counter(prefix + "exchanges").Add(c.Exchanges)
	tr.Counter(prefix + "rejected").Add(c.Rejected)
	tr.Counter(prefix + "walk_failures").Add(c.WalkFailures)
}

// hookExchangeTrace chains a histogram observer onto the protocol's Trace
// hook so every executed exchange records its Var gain and moved-neighbor
// count. The Trace hook runs on the single-threaded engine, keeping the
// histogram deterministic. Chain before or after other Trace consumers
// (auditor, livesim) — all of them chain rather than replace.
func hookExchangeTrace(tr *obs.Trial, prefix string, p *core.Protocol) {
	if tr == nil {
		return
	}
	varHist := tr.Histogram(prefix+"prop.exchange_var_ms", obs.DefaultLatencyBuckets)
	movedHist := tr.Histogram(prefix+"prop.exchange_moved", []float64{1, 2, 4, 8, 16, 32, 64})
	prev := p.Trace
	p.Trace = func(ev core.ExchangeEvent) {
		varHist.Observe(ev.Var)
		movedHist.Observe(float64(ev.Moved))
		if prev != nil {
			prev(ev)
		}
	}
}
