package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WriteCSV emits the result as one CSV table: the first column is the x
// value, one column per series (empty cell where a series has no point).
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{r.XLabel}
	for _, s := range r.Series {
		header = append(header, s.Label)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, x := range r.xUnion() {
		row := []string{formatFloat(x)}
		for _, s := range r.Series {
			y := s.YAt(x)
			if math.IsNaN(y) {
				row = append(row, "")
			} else {
				row = append(row, formatFloat(y))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the full result (metadata, series, notes) as indented
// JSON, one document.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// xUnion returns the sorted union of the x values of all series.
func (r *Result) xUnion() []float64 {
	set := map[float64]bool{}
	for _, s := range r.Series {
		for _, x := range s.X {
			set[x] = true
		}
	}
	xs := make([]float64, 0, len(set))
	for x := range set {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	return xs
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// WriteMarkdown emits the result as a Markdown section: a heading, the
// series as a table, and the notes as a bullet list. cmd/propreport strings
// these together into a full reproduction report.
func (r *Result) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## `%s` — %s\n\n", r.ID, r.Title); err != nil {
		return err
	}
	if len(r.Series) == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	header := "| " + r.XLabel + " |"
	sep := "|---|"
	for _, s := range r.Series {
		header += " " + s.Label + " |"
		sep += "---|"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, sep); err != nil {
		return err
	}
	for _, x := range r.xUnion() {
		row := "| " + formatFloat(x) + " |"
		for _, s := range r.Series {
			y := s.YAt(x)
			if math.IsNaN(y) {
				row += " — |"
			} else {
				row += " " + strconv.FormatFloat(y, 'f', 3, 64) + " |"
			}
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "- %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Plot renders the result as an ASCII line chart: one glyph per series,
// a y-axis with min/max labels, and a legend. width and height are the
// plot-area dimensions in characters (sane floors apply).
func (r *Result) Plot(w io.Writer, width, height int) {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&', '$', '~'}
	xs := r.xUnion()
	if len(xs) == 0 {
		fmt.Fprintln(w, "(no data to plot)")
		return
	}
	xmin, xmax := xs[0], xs[len(xs)-1]
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range r.Series {
		for _, y := range s.Y {
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
		}
	}
	if math.IsInf(ymin, 1) {
		fmt.Fprintln(w, "(no data to plot)")
		return
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = make([]byte, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	col := func(x float64) int {
		c := int((x - xmin) / (xmax - xmin) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		rr := int((ymax - y) / (ymax - ymin) * float64(height-1))
		if rr < 0 {
			rr = 0
		}
		if rr >= height {
			rr = height - 1
		}
		return rr
	}
	for si, s := range r.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			grid[row(s.Y[i])][col(s.X[i])] = g
		}
	}

	fmt.Fprintf(w, "%s — %s\n", r.ID, r.Title)
	yTop := fmt.Sprintf("%.3g", ymax)
	yBot := fmt.Sprintf("%.3g", ymin)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for i, line := range grid {
		label := ""
		switch i {
		case 0:
			label = yTop
		case height - 1:
			label = yBot
		}
		fmt.Fprintf(w, "%*s |%s\n", pad, label, string(line))
	}
	fmt.Fprintf(w, "%*s +%s\n", pad, "", dashes(width))
	fmt.Fprintf(w, "%*s  %-*.3g%*.3g\n", pad, "", width/2, xmin, width-width/2, xmax)
	fmt.Fprintf(w, "x: %s, y: %s\n", r.XLabel, r.YLabel)
	for si, s := range r.Series {
		fmt.Fprintf(w, "  %c  %s\n", glyphs[si%len(glyphs)], s.Label)
	}
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}
