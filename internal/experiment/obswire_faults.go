package experiment

import (
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Fault-layer observability hookups for the figR* robustness family. They
// live apart from obswire.go's shared helpers on purpose: the fault-free
// experiments must keep emitting byte-identical metrics streams, so none of
// their sampling paths may gain (or even conditionally skip) the fault
// series below.

// sampleFaultCounters writes one tick of the protocol's fault-handling
// counters — timeouts, retries, liveness evictions, duplicate drops, and
// absorbed stale timers — as cumulative sim-clock series.
func sampleFaultCounters(tr *obs.Trial, prefix string, tMS float64, c metrics.Counters) {
	if tr == nil {
		return
	}
	tr.Series(prefix+"faults.timeouts").Sample(tMS, float64(c.Timeouts))
	tr.Series(prefix+"faults.retries").Sample(tMS, float64(c.Retries))
	tr.Series(prefix+"faults.evictions").Sample(tMS, float64(c.Evictions))
	tr.Series(prefix+"faults.dups_dropped").Sample(tMS, float64(c.DupsDropped))
	tr.Series(prefix+"faults.stale_timers").Sample(tMS, float64(c.StaleTimers))
}

// recordFaultTotals stores the end-of-run fault manifest: the protocol's
// recovery totals plus what the injector actually did to the traffic
// (messages seen, losses, duplicates, link-outage and partition drops). A
// nil trial or nil injector records nothing.
func recordFaultTotals(tr *obs.Trial, prefix string, c metrics.Counters, inj *faults.Injector) {
	if tr == nil {
		return
	}
	tr.Counter(prefix + "faults.timeouts").Add(c.Timeouts)
	tr.Counter(prefix + "faults.retries").Add(c.Retries)
	tr.Counter(prefix + "faults.evictions").Add(c.Evictions)
	tr.Counter(prefix + "faults.dups_dropped").Add(c.DupsDropped)
	tr.Counter(prefix + "faults.stale_timers").Add(c.StaleTimers)
	if !inj.Enabled() {
		return
	}
	s := inj.Stats()
	tr.Counter(prefix + "faults.injected_messages").Add(s.Messages)
	tr.Counter(prefix + "faults.injected_lost").Add(s.Lost)
	tr.Counter(prefix + "faults.injected_dups").Add(s.Dups)
	tr.Counter(prefix + "faults.linkdown_drops").Add(s.LinkDownDrops)
	tr.Counter(prefix + "faults.partition_drops").Add(s.PartitionDrops)
}
