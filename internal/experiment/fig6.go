package experiment

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
)

// chordLookup is one fixed query of the stretch workload.
type chordLookup struct {
	src int
	key uint32
}

// makeChordWorkload draws a fixed set of lookups for stretch sampling.
func makeChordWorkload(ring *chord.Ring, count int, r *rng.Rand) []chordLookup {
	slots := ring.O.AliveSlots()
	out := make([]chordLookup, count)
	for i := range out {
		out[i] = chordLookup{src: slots[r.Intn(len(slots))], key: chord.RandomKey(r)}
	}
	return out
}

// routingStretch returns the mean ratio of routed lookup latency to direct
// source→owner latency — the standard DHT stretch (cf. Gummadi et al.),
// which is what makes Fig. 6's 2.5–4.5 range reproducible. Lookups whose
// owner is the source are skipped (ratio undefined).
func routingStretch(ring *chord.Ring, e *env, lookups []chordLookup) float64 {
	sum, n := 0.0, 0
	for _, l := range lookups {
		res, err := ring.Lookup(l.src, l.key, nil)
		if err != nil || res.Owner == l.src {
			continue
		}
		direct := e.oracle.Latency(ring.O.HostOf(l.src), ring.O.HostOf(res.Owner))
		if direct <= 0 {
			continue
		}
		sum += res.Latency / direct
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// chordVariant is one curve of a Fig. 6 panel.
type chordVariant struct {
	label  string
	n      int
	nhops  int
	random bool
	preset netsim.Config
}

// runChordSeries produces the stretch-vs-time curve of each variant,
// averaged over opt.Trials. When opt.Audit is set it also returns one
// audit-summary note per trial.
func runChordSeries(opt Options, variants []chordVariant) ([]stats.Series, []string, error) {
	alog := newAuditLog(opt.Audit)
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		tr := opt.Metrics.Trial(trial)
		out := make([]stats.Series, len(variants))
		for vi, v := range variants {
			// Shared environment seed per trial: identically parameterized
			// variants start from the identical ring (see fig5.go).
			s, summary, err := oneChordRun(opt, v, tr,
				trialSeed(opt.Seed, trial), trialSeed(opt.Seed, 1000+trial*100+vi))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", v.label, err)
			}
			alog.add(trial, summary)
			out[vi] = s
		}
		return out, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return mergeTrials(perTrial), alog.notes(opt.Trials), nil
}

// oneChordRun simulates PROP-G over a Chord ring and samples routing
// stretch. envSeed fixes the world, ring, and workload; runSeed drives the
// protocol. The returned string is the audit summary ("" unless opt.Audit).
func oneChordRun(opt Options, v chordVariant, tr *obs.Trial, envSeed, runSeed uint64) (stats.Series, string, error) {
	prefix := v.label + "/"
	spGen := tr.StartSpan(prefix+"gen-network", 0)
	e, err := newEnv(opt, v.preset, envSeed)
	if err != nil {
		return stats.Series{}, "", err
	}
	e.instrumentOracle(tr, prefix)
	spGen.End(0)
	spBuild := tr.StartSpan(prefix+"build-overlay", 0)
	n := scaled(v.n, opt.Scale, 50)
	ring, err := e.buildChord(n, false)
	if err != nil {
		return stats.Series{}, "", err
	}
	spBuild.End(0)

	cfg := core.DefaultConfig(core.PROPG)
	cfg.NHops = v.nhops
	cfg.RandomProbe = v.random
	if v.random {
		cfg.NHops = 0
	}
	p, err := core.New(ring.O, cfg, rng.New(runSeed))
	if err != nil {
		return stats.Series{}, "", err
	}
	eng := event.New()
	var a *audit.Auditor
	if opt.Audit {
		a = newRunAuditor(ring.O, p, eng,
			audit.Check("chord-wellformed", ring.CheckInvariants))
	}
	hookExchangeTrace(tr, prefix, p)
	p.Start(eng)

	lookups := makeChordWorkload(ring, scaled(paperLookups, opt.Scale, 100), e.r.Split())
	spSim := tr.StartSpan(prefix+"simulate", 0)
	series := stats.Series{Label: v.label}
	for t := 0.0; t <= horizonMS; t += stepMS {
		eng.RunUntil(event.Time(t))
		stretch := routingStretch(ring, e, lookups)
		series.Add(t/60000, stretch)
		if tr != nil {
			tr.Series(prefix+"stretch").Sample(t, stretch)
			sampleProtocol(tr, prefix, t, p, ring.O)
		}
	}
	spSim.End(horizonMS)
	recordCounterTotals(tr, prefix+"prop.", p.Counters)
	summary, err := finishAudit(a, v.label)
	if err != nil {
		return stats.Series{}, "", err
	}
	return series, summary, nil
}

func runFig6a(opt Options) (*Result, error) {
	n := 1000
	variants := []chordVariant{
		{label: "n=1000, nhops=1", n: n, nhops: 1, preset: netsim.TSLarge()},
		{label: "n=1000, nhops=2", n: n, nhops: 2, preset: netsim.TSLarge()},
		{label: "n=1000, nhops=4", n: n, nhops: 4, preset: netsim.TSLarge()},
		{label: "n=1000, random", n: n, random: true, preset: netsim.TSLarge()},
	}
	series, auditNotes, err := runChordSeries(opt, variants)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig6a",
		Title:  "Effectiveness of PROP-G in Chord environment, varying the TTL scale",
		XLabel: "time (min)",
		YLabel: "stretch",
		Series: series,
		Notes: append([]string{
			"expected shape: nhops=1 reduces stretch least; nhops∈{2,4} ≈ random",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		}, auditNotes...),
	}, nil
}

func runFig6b(opt Options) (*Result, error) {
	sizes := []int{300, 500, 1000, 2400}
	variants := make([]chordVariant, len(sizes))
	for i, n := range sizes {
		variants[i] = chordVariant{
			label:  fmt.Sprintf("n=%d, nhops=2", n),
			n:      n,
			nhops:  2,
			preset: netsim.TSLarge(),
		}
	}
	series, auditNotes, err := runChordSeries(opt, variants)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig6b",
		Title:  "Effectiveness of PROP-G in Chord environment, varying the system size",
		XLabel: "time (min)",
		YLabel: "stretch",
		Series: series,
		Notes: append([]string{
			"expected shape: larger systems improve relatively less",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		}, auditNotes...),
	}, nil
}

func runFig6c(opt Options) (*Result, error) {
	variants := []chordVariant{
		{label: "ts-large", n: 1000, nhops: 2, preset: netsim.TSLarge()},
		{label: "ts-small", n: 1000, nhops: 2, preset: netsim.TSSmall()},
	}
	series, auditNotes, err := runChordSeries(opt, variants)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig6c",
		Title:  "Effectiveness of PROP-G in Chord environment, varying the physical topology",
		XLabel: "time (min)",
		YLabel: "stretch",
		Series: series,
		Notes: append([]string{
			"expected shape: ts-large improves more than ts-small",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		}, auditNotes...),
	}, nil
}
