package experiment

import (
	"fmt"
	"sort"

	"repro/internal/audit"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/faults"
	"repro/internal/gnutella"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stats"
)

// The figR* family is the robustness extension of the paper's evaluation:
// the same PROP protocols, but run over the internal/faults layer instead of
// a perfectly reliable network. Three experiments cover the three fault
// dimensions the paper leaves out:
//
//	figRa — i.i.d. message loss (plus proportional duplication and jitter):
//	        how much of the PROP-G/PROP-O latency gain survives as the loss
//	        rate grows.
//	figRb — crash-stop churn: peers die without deregistering, survivors
//	        evict the corpses and a periodic repair round rewires the
//	        overlay; the audit invariant suite must hold after every repair.
//	figRc — a transient network partition isolating one transit domain:
//	        optimization stalls across the cut and recovers after healing.
//
// All three are deterministic in (Seed, Trials, Scale) like every other
// experiment; the fault schedules derive from the trial seed, so the metrics
// streams are byte-reproducible (see TestFigRMetricsByteDeterminism).

// Default fault intensities of the family. figRa sweeps figRLossGrid; figRb
// sweeps figRCrashGrid under a fixed background loss; figRc holds the same
// background loss and adds the partition window.
var (
	figRLossGrid  = []float64{0, 0.01, 0.02, 0.05, 0.10}
	figRCrashGrid = []float64{0, 0.05, 0.10, 0.20}
)

const (
	// figRDupFraction couples the duplication probability to the swept loss
	// rate (a quarter of the loss rate), so one knob moves both.
	figRDupFraction = 0.25
	// figRJitterMS is the per-message queueing-jitter bound.
	figRJitterMS = 5
	// figRBackgroundLoss is the fixed loss rate of figRb and figRc, chosen
	// inside the "still converges" regime established by figRa.
	figRBackgroundLoss = 0.02
)

func init() {
	registry["figRa"] = runner{
		describe: "robustness: PROP-G/PROP-O final stretch vs message-loss rate",
		run:      runFigRa,
		faults:   consumesLoss,
	}
	registry["figRb"] = runner{
		describe: "robustness: PROP-G under crash-stop churn with repair rounds and audit",
		run:      runFigRb,
		faults:   consumesCrash,
	}
	registry["figRc"] = runner{
		describe: "robustness: PROP-G through a transient network partition",
		run:      runFigRc,
		faults:   consumesPartition,
	}
}

// faultSweep returns the swept grid, collapsed to {0, override} when the
// caller pinned a single fault intensity (cmd/propsim -loss / -crash).
func faultSweep(grid []float64, override float64) []float64 {
	if override <= 0 {
		return grid
	}
	return []float64{0, override}
}

// runFigRa sweeps the i.i.d. message-loss rate and reports the final stretch
// of PROP-G and PROP-O next to the unoptimized overlay. Lost probes cost
// retransmissions and timeouts, so convergence slows — but with bounded
// retry and measurement poisoning the latency gain should survive every
// swept rate, degrading smoothly instead of wedging.
func runFigRa(opt Options) (*Result, error) {
	grid := faultSweep(figRLossGrid, opt.FaultLoss)
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		return oneFigRaTrial(opt, grid, opt.Metrics.Trial(trial), trialSeed(opt.Seed, trial))
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "figRa",
		Title:  "Robustness to message loss: final stretch after optimization vs loss rate",
		XLabel: "loss rate (%)",
		YLabel: "stretch",
		Series: mergeTrials(perTrial),
		Notes: []string{
			fmt.Sprintf("per message: loss as swept, duplication = loss/%g, jitter U[0,%dms)", 1/figRDupFraction, figRJitterMS),
			"expected shape: both policies stay well below the unoptimized line across the sweep, rising gently with loss",
			"timeout/retry/eviction totals are in the metrics stream under figRa/<policy>/loss<pct>/faults.*",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}

func oneFigRaTrial(opt Options, grid []float64, tr *obs.Trial, seed uint64) ([]stats.Series, error) {
	e, err := newEnv(opt, netsim.TSLarge(), seed)
	if err != nil {
		return nil, err
	}
	e.instrumentOracle(tr, "figRa/")
	n := scaled(1000, opt.Scale, 100)
	base, err := e.buildGnutella(n)
	if err != nil {
		return nil, err
	}
	phys := e.meanPhysLink()
	unopt := base.Stretch(phys)

	policies := []struct {
		label  string
		policy core.Policy
		m      int
	}{
		{"PROP-G", core.PROPG, 0},
		{"PROP-O (m=2)", core.PROPO, 2},
	}
	out := make([]stats.Series, len(policies)+1)
	for pi, pol := range policies {
		out[pi] = stats.Series{Label: pol.label}
	}
	out[len(policies)] = stats.Series{Label: "unoptimized"}

	for gi, loss := range grid {
		for pi, pol := range policies {
			oc := base.Clone()
			cfg := core.DefaultConfig(pol.policy)
			cfg.M = pol.m
			p, err := core.New(oc, cfg, e.r.Split())
			if err != nil {
				return nil, err
			}
			var inj *faults.Injector
			if loss > 0 {
				inj, err = faults.NewInjector(faults.Config{
					Seed:     trialSeed(seed, 100+gi*8+pi),
					LossProb: loss,
					DupProb:  loss * figRDupFraction,
					JitterMS: figRJitterMS,
				})
				if err != nil {
					return nil, err
				}
				p.AttachFaults(inj)
			}
			eng := event.New()
			p.Start(eng)
			prefix := fmt.Sprintf("figRa/%s/loss%g/", pol.label, loss*100)
			sp := tr.StartSpan(prefix+"optimize", 0)
			const sampleStep = 60000.0
			for t := 0.0; t <= horizonMS; t += sampleStep {
				eng.RunUntil(event.Time(t))
				if tr != nil {
					tr.Series(prefix+"stretch").Sample(t, oc.Stretch(phys))
					sampleFaultCounters(tr, prefix, t, p.Counters)
				}
			}
			sp.End(horizonMS)
			recordCounterTotals(tr, prefix+"prop.", p.Counters)
			recordFaultTotals(tr, prefix, p.Counters, inj)
			out[pi].Add(loss*100, oc.Stretch(phys))
		}
		out[len(policies)].Add(loss*100, unopt)
	}
	return out, nil
}

// runFigRb sweeps the crash-stop fraction: during the churn window a share
// of the peers dies without deregistering, under a fixed background loss
// rate. Survivors drop the stale references through liveness eviction, and a
// once-per-minute repair round purges the corpses and rewires the survivors.
// The audit invariant suite — slot↔host bijection at every sample tick,
// connectivity and overlay well-formedness after every repair round — turns
// any repair bug into a run failure.
func runFigRb(opt Options) (*Result, error) {
	grid := faultSweep(figRCrashGrid, opt.FaultCrash)
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		return oneFigRbTrial(opt, grid, opt.Metrics.Trial(trial), trialSeed(opt.Seed, trial))
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "figRb",
		Title:  "Robustness to crash-stop churn: final stretch vs crashed fraction (with repair)",
		XLabel: "crashed peers (%)",
		YLabel: "stretch | corpses repaired",
		Series: mergeTrials(perTrial),
		Notes: []string{
			fmt.Sprintf("background faults: loss=%g, duplication=%g, jitter U[0,%dms); crashes Poisson inside minutes %d-%d",
				figRBackgroundLoss, figRBackgroundLoss*figRDupFraction, figRJitterMS, churnStartMS/60000, churnStopMS/60000),
			"repair: once per minute, gnutella.RepairCrashed purges corpses and rewires survivors; audit (bijection, connectivity, overlay invariants) runs after every repair round and fails the run on violation",
			"expected shape: stretch rises mildly with the crashed fraction but stays below the unoptimized overlay",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}

func oneFigRbTrial(opt Options, grid []float64, tr *obs.Trial, seed uint64) ([]stats.Series, error) {
	e, err := newEnv(opt, netsim.TSLarge(), seed)
	if err != nil {
		return nil, err
	}
	e.instrumentOracle(tr, "figRb/")
	n := scaled(1000, opt.Scale, 100)
	base, err := e.buildGnutella(n)
	if err != nil {
		return nil, err
	}
	phys := e.meanPhysLink()

	stretchSeries := stats.Series{Label: "PROP-G stretch"}
	repairSeries := stats.Series{Label: "corpses repaired"}
	for gi, frac := range grid {
		oc := base.Clone()
		p, err := core.New(oc, core.DefaultConfig(core.PROPG), e.r.Split())
		if err != nil {
			return nil, err
		}
		inj, err := faults.NewInjector(faults.Config{
			Seed:     trialSeed(seed, 900+gi),
			LossProb: figRBackgroundLoss,
			DupProb:  figRBackgroundLoss * figRDupFraction,
			JitterMS: figRJitterMS,
		})
		if err != nil {
			return nil, err
		}
		p.AttachFaults(inj)
		eng := event.New()
		p.Start(eng)

		// The bijection must hold at every sample tick, even with corpses
		// pending repair; connectivity and full overlay well-formedness are
		// post-repair properties (a corpse may be a cut vertex until the
		// repair round rewires around it).
		always := audit.New(1, 16)
		always.Register(audit.OverlayBijection(oc))
		postRepair := audit.New(1, 16)
		postRepair.Register(
			audit.OverlayBijection(oc),
			audit.OverlayConnected(oc),
			audit.Check("overlay-invariants", oc.CheckInvariants),
		)

		cr := e.r.Split()
		crashBudget := int(frac * float64(n))
		if crashBudget > 0 {
			mean := float64(churnStopMS-churnStartMS) / float64(crashBudget)
			ru, err := churn.NewRunner(churn.Config{
				StartMS: churnStartMS, StopMS: churnStopMS, MeanCrashIntervalMS: mean,
			}, cr)
			if err != nil {
				return nil, err
			}
			ru.OnCrash = func(en *event.Engine) error {
				alive := oc.AliveSlots()
				if len(alive) <= 10 {
					return fmt.Errorf("overlay too small to crash")
				}
				victim := alive[cr.Intn(len(alive))]
				if err := oc.CrashSlot(victim); err != nil {
					return err
				}
				p.CrashNode(victim)
				return nil
			}
			ru.Start(eng)
		}

		prefix := fmt.Sprintf("figRb/crash%g/", frac*100)
		repaired := 0
		sp := tr.StartSpan(prefix+"simulate", 0)
		const sampleStep = 60000.0
		for t := 0.0; t <= churnHorizonMS; t += sampleStep {
			eng.RunUntil(event.Time(t))
			if corpses := oc.CrashedSlots(); len(corpses) > 0 {
				// Survivors whose neighbor sets the repair is about to touch:
				// the corpses' (stale) neighbors. Notify them afterwards so
				// their probe state reconciles against the rewired edges.
				touched := map[int]bool{}
				for _, c := range corpses {
					for _, nb := range oc.Neighbors(c) {
						if oc.Alive(nb) {
							touched[nb] = true
						}
					}
				}
				nrep, err := gnutella.RepairCrashed(oc, gnutella.DefaultConfig(), cr)
				if err != nil {
					return nil, err
				}
				repaired += nrep
				slots := make([]int, 0, len(touched))
				for s := range touched {
					slots = append(slots, s)
				}
				sort.Ints(slots)
				p.NeighborsChanged(eng, slots...)
				postRepair.CheckNow()
				if err := postRepair.Err(); err != nil {
					return nil, fmt.Errorf("figRb crash=%g post-repair audit: %w", frac, err)
				}
			}
			always.CheckNow()
			if err := always.Err(); err != nil {
				return nil, fmt.Errorf("figRb crash=%g audit: %w", frac, err)
			}
			if tr != nil {
				tr.Series(prefix+"stretch").Sample(t, oc.Stretch(phys))
				tr.Series(prefix+"alive_nodes").Sample(t, float64(oc.NumAlive()))
				tr.Series(prefix+"repaired").Sample(t, float64(repaired))
				sampleFaultCounters(tr, prefix, t, p.Counters)
			}
		}
		sp.End(churnHorizonMS)
		recordCounterTotals(tr, prefix+"prop.", p.Counters)
		recordFaultTotals(tr, prefix, p.Counters, inj)
		if !oc.Connected() {
			return nil, fmt.Errorf("figRb crash=%g left the overlay disconnected", frac)
		}
		stretchSeries.Add(frac*100, oc.Stretch(phys))
		repairSeries.Add(frac*100, float64(repaired))
	}
	return []stats.Series{stretchSeries, repairSeries}, nil
}

// runFigRc runs PROP-G through a transient network partition: at minute 20
// every node of transit domain 0 is cut off from the rest of the backbone
// for the partition window (default: 15 minutes, override with
// cmd/propsim -partition). Probes crossing the cut time out, retries back
// off, and optimization across the cut stalls; after healing the stretch
// recovers. The logical overlay never loses edges — the partition afflicts
// message delivery, not membership.
func runFigRc(opt Options) (*Result, error) {
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		return oneFigRcTrial(opt, opt.Metrics.Trial(trial), trialSeed(opt.Seed, trial))
	})
	if err != nil {
		return nil, err
	}
	partLen := opt.FaultPartitionMS
	if partLen <= 0 {
		partLen = churnStopMS - churnStartMS
	}
	return &Result{
		ID:     "figRc",
		Title:  "Robustness to a transient partition: stretch and fault activity over time",
		XLabel: "time (min)",
		YLabel: "stretch | probes/node/min | timeouts/node/min",
		Series: mergeTrials(perTrial),
		Notes: []string{
			fmt.Sprintf("partition: transit domain 0 isolated during minutes %g-%g; background loss=%g",
				churnStartMS/60000.0, (churnStartMS+partLen)/60000.0, figRBackgroundLoss),
			"expected shape: timeout rate spikes inside the window and collapses after healing; stretch keeps improving (intra-side exchanges continue) and converges once the cut heals",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}

func oneFigRcTrial(opt Options, tr *obs.Trial, seed uint64) ([]stats.Series, error) {
	const prefix = "figRc/"
	e, err := newEnv(opt, netsim.TSLarge(), seed)
	if err != nil {
		return nil, err
	}
	e.instrumentOracle(tr, prefix)
	n := scaled(1000, opt.Scale, 100)
	o, err := e.buildGnutella(n)
	if err != nil {
		return nil, err
	}
	phys := e.meanPhysLink()
	p, err := core.New(o, core.DefaultConfig(core.PROPG), e.r.Split())
	if err != nil {
		return nil, err
	}
	partLen := opt.FaultPartitionMS
	if partLen <= 0 {
		partLen = churnStopMS - churnStartMS
	}
	inj, err := faults.NewInjector(faults.Config{
		Seed:             trialSeed(seed, 9100),
		LossProb:         figRBackgroundLoss,
		DupProb:          figRBackgroundLoss * figRDupFraction,
		JitterMS:         figRJitterMS,
		PartitionStartMS: churnStartMS,
		PartitionStopMS:  churnStartMS + partLen,
		Isolated:         e.net.PartitionByDomain(0),
	})
	if err != nil {
		return nil, err
	}
	p.AttachFaults(inj)
	eng := event.New()
	p.Start(eng)

	stretchSeries := stats.Series{Label: "stretch"}
	probeSeries := stats.Series{Label: "probes/node/min"}
	timeoutSeries := stats.Series{Label: "timeouts/node/min"}
	lastProbes, lastTimeouts := uint64(0), uint64(0)
	sp := tr.StartSpan(prefix+"simulate", 0)
	const sampleStep = 60000.0
	for t := 0.0; t <= churnHorizonMS; t += sampleStep {
		eng.RunUntil(event.Time(t))
		nodes := float64(o.NumAlive())
		if nodes == 0 {
			nodes = 1
		}
		dp := p.Counters.Probes - lastProbes
		dt := p.Counters.Timeouts - lastTimeouts
		lastProbes, lastTimeouts = p.Counters.Probes, p.Counters.Timeouts
		stretchSeries.Add(t/60000, o.Stretch(phys))
		probeSeries.Add(t/60000, float64(dp)/nodes)
		timeoutSeries.Add(t/60000, float64(dt)/nodes)
		if tr != nil {
			tr.Series(prefix+"stretch").Sample(t, o.Stretch(phys))
			tr.Series(prefix+"partition_drops").Sample(t, float64(inj.Stats().PartitionDrops))
			sampleFaultCounters(tr, prefix, t, p.Counters)
			sampleProtocol(tr, prefix, t, p, o)
		}
	}
	sp.End(churnHorizonMS)
	recordCounterTotals(tr, prefix+"prop.", p.Counters)
	recordFaultTotals(tr, prefix, p.Counters, inj)
	return []stats.Series{stretchSeries, probeSeries, timeoutSeries}, nil
}
