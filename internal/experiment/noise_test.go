package experiment

import (
	"testing"

	"repro/internal/stats"
)

func TestNoiseShape(t *testing.T) {
	if testing.Short() {
		t.Skip("noise experiment in -short mode")
	}
	res, err := Run("noise", Options{Seed: 8, Trials: 2, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var latency, harmful stats.Series
	for _, s := range res.Series {
		switch s.Label {
		case "final mean link latency (ms)":
			latency = s
		case "harmful exchange fraction":
			harmful = s
		}
	}
	if latency.Len() != 6 || harmful.Len() != 6 {
		t.Fatalf("series shapes: %d/%d", latency.Len(), harmful.Len())
	}
	// No noise ⇒ no harmful exchanges (Var is exact and the gate is > 0).
	if harmful.YAt(0) != 0 {
		t.Errorf("harmful fraction %.3f at σ=0", harmful.YAt(0))
	}
	// Extreme noise must be worse than exact measurements…
	if latency.YAt(2.0) <= latency.YAt(0) {
		t.Errorf("σ=2 latency %.1f not above σ=0 %.1f", latency.YAt(2.0), latency.YAt(0))
	}
	// …but moderate noise must stay close to exact: the averaging in Var is
	// the robustness mechanism under test.
	if latency.YAt(0.1) > latency.YAt(0)*1.10 {
		t.Errorf("σ=0.1 latency %.1f degraded >10%% vs exact %.1f", latency.YAt(0.1), latency.YAt(0))
	}
	// Harmful fraction grows with noise.
	if harmful.YAt(1.0) <= harmful.YAt(0.1) {
		t.Errorf("harmful fraction not growing: %v", harmful.Y)
	}
}
