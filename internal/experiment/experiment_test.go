package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

// quickOpt shrinks everything so integration tests finish fast while still
// exercising the full pipeline.
func quickOpt() Options { return Options{Seed: 7, Trials: 1, Scale: 0.2} }

func TestRegistry(t *testing.T) {
	ids := IDs()
	want := []string{
		"chordchurn", "churn", "combo", "fig5a", "fig5a-scale", "fig5b", "fig5c", "fig6a", "fig6b",
		"fig6c", "fig7", "figR-scale", "figRa", "figRb", "figRc", "inflight", "kademlia", "minvar",
		"noise", "overhead", "pastry", "replication", "satmatch", "traffic", "warmup",
	}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
	for _, id := range ids {
		if Describe(id) == "" {
			t.Errorf("no description for %s", id)
		}
	}
	if _, err := Run("nope", quickOpt()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	d := Options{}.withDefaults()
	if d.Seed != 1 || d.Trials != 3 || d.Scale != 1 {
		t.Fatalf("defaults = %+v", d)
	}
	kept := Options{Seed: 9, Trials: 2, Scale: 0.5}.withDefaults()
	if kept.Seed != 9 || kept.Trials != 2 || kept.Scale != 0.5 {
		t.Fatalf("explicit options clobbered: %+v", kept)
	}
	if bad := (Options{Scale: 7}).withDefaults(); bad.Scale != 1 {
		t.Fatalf("out-of-range scale not clamped: %v", bad.Scale)
	}
}

func TestScaled(t *testing.T) {
	if scaled(1000, 0.5, 50) != 500 {
		t.Fatal("scaled wrong")
	}
	if scaled(1000, 0.01, 50) != 50 {
		t.Fatal("floor not applied")
	}
}

func TestTrialSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		s := trialSeed(1, i)
		if seen[s] {
			t.Fatalf("duplicate trial seed at %d", i)
		}
		seen[s] = true
	}
}

// decreasing reports whether the series ends at most frac of its start.
func improvedBy(s stats.Series, frac float64) bool {
	if s.Len() < 2 {
		return false
	}
	return s.Final() <= s.Y[0]*frac
}

func TestFig5aShape(t *testing.T) {
	res, err := Run("fig5a", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series count = %d", len(res.Series))
	}
	byLabel := map[string]stats.Series{}
	for _, s := range res.Series {
		byLabel[s.Label] = s
	}
	h1 := byLabel["n=1000, nhops=1"]
	h2 := byLabel["n=1000, nhops=2"]
	h4 := byLabel["n=1000, nhops=4"]
	rnd := byLabel["n=1000, random"]
	// nhops >= 2 and random must improve latency substantially.
	for _, s := range []stats.Series{h2, h4, rnd} {
		if !improvedBy(s, 0.9) {
			t.Errorf("%s did not improve enough: %.1f -> %.1f", s.Label, s.Y[0], s.Final())
		}
	}
	// nhops=1 must improve less than nhops=2.
	drop1 := h1.Y[0] - h1.Final()
	drop2 := h2.Y[0] - h2.Final()
	if drop1 >= drop2 {
		t.Errorf("nhops=1 drop %.1f >= nhops=2 drop %.1f", drop1, drop2)
	}
}

func TestFig5cShape(t *testing.T) {
	res, err := Run("fig5c", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series count = %d", len(res.Series))
	}
	var tsLarge, tsSmall stats.Series
	for _, s := range res.Series {
		switch s.Label {
		case "ts-large":
			tsLarge = s
		case "ts-small":
			tsSmall = s
		}
	}
	// "The ts-large topology has much better performance": its latency drop
	// is larger. (ts-small starts far lower — its backbone is one hop — so
	// a relative comparison would be measuring the starting point, not the
	// protocol.)
	dropLarge := tsLarge.Y[0] - tsLarge.Final()
	dropSmall := tsSmall.Y[0] - tsSmall.Final()
	if dropLarge <= dropSmall {
		t.Errorf("ts-large drop %.1f not above ts-small drop %.1f", dropLarge, dropSmall)
	}
}

func TestFig6aShape(t *testing.T) {
	res, err := Run("fig6a", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.Label == "n=1000, nhops=2" {
			if !improvedBy(s, 0.95) {
				t.Errorf("chord stretch did not improve: %.2f -> %.2f", s.Y[0], s.Final())
			}
			if s.Y[0] < 1 {
				t.Errorf("initial stretch %.2f below 1 is implausible", s.Y[0])
			}
		}
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 in -short mode")
	}
	opt := Options{Seed: 3, Trials: 2, Scale: 0.4}
	res, err := Run("fig7", opt)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]stats.Series{}
	for _, s := range res.Series {
		byLabel[s.Label] = s
	}
	ltmS := byLabel["LTM"]
	propG := byLabel["PROP-G"]
	propO := []stats.Series{byLabel["PROP-O (m=1)"], byLabel["PROP-O (m=2)"], byLabel["PROP-O (m=4)"]}
	// "When all queries are directed to slow nodes, LTM shows best routing
	// performance": LTM is the minimum at x=0.
	for _, s := range res.Series {
		if s.Label != "LTM" && s.Y[0] <= ltmS.Y[0] {
			t.Errorf("at x=0, %s (%.3f) not above LTM (%.3f)", s.Label, s.Y[0], ltmS.Y[0])
		}
	}
	// "The delay of both PROP-G and LTM increase" toward x=1.
	if propG.Final() <= propG.Y[0] {
		t.Errorf("PROP-G not worsening toward fast lookups: %v", propG.Y)
	}
	// "The delay for PROP-O keeps decreasing."
	for _, s := range propO {
		if s.Final() >= s.Y[0] {
			t.Errorf("%s not improving toward fast lookups: %v", s.Label, s.Y)
		}
	}
	// The crossover: by x=1 the best PROP-O variant beats LTM.
	bestO := math.Inf(1)
	for _, s := range propO {
		if f := s.Final(); f < bestO {
			bestO = f
		}
	}
	if bestO >= ltmS.Final() {
		t.Errorf("at x=1 best PROP-O (%.3f) not better than LTM (%.3f)", bestO, ltmS.Final())
	}
}

func TestOverheadShape(t *testing.T) {
	res, err := Run("overhead", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	var measured, model stats.Series
	for _, s := range res.Series {
		if strings.HasPrefix(s.Label, "measured") {
			measured = s
		} else {
			model = s
		}
	}
	if measured.Len() != 4 || model.Len() != 4 {
		t.Fatalf("series lengths: %d, %d", measured.Len(), model.Len())
	}
	// PROP-G (index 0) must cost more than every PROP-O variant.
	for i := 1; i < 4; i++ {
		if measured.Y[0] <= measured.Y[i] {
			t.Errorf("PROP-G measured %.1f not above PROP-O[%d] %.1f", measured.Y[0], i, measured.Y[i])
		}
	}
	// Measured must track the model. PROP-G can exceed nhops+2c noticeably:
	// random walks land on partners with degree-proportional probability,
	// and in a heavy-tailed overlay the degree-biased mean exceeds c.
	// PROP-O's 2m term has no such bias.
	for i := 0; i < 4; i++ {
		if measured.Y[i] > model.Y[i]*1.6 {
			t.Errorf("variant %d: measured %.1f far above model %.1f", i, measured.Y[i], model.Y[i])
		}
	}
}

func TestChurnShape(t *testing.T) {
	if testing.Short() {
		t.Skip("churn in -short mode")
	}
	res, err := Run("churn", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	var probes stats.Series
	for _, s := range res.Series {
		if s.Label == "probes/node/min" {
			probes = s
		}
	}
	if probes.Len() == 0 {
		t.Fatal("missing probe series")
	}
	// Probe rate inside the churn window must exceed the quiet period
	// right before it (timers reset on churn).
	pre := probes.YAt(19)
	peak := 0.0
	for i, x := range probes.X {
		if x > 20 && x <= 36 {
			if probes.Y[i] > peak {
				peak = probes.Y[i]
			}
		}
	}
	if peak <= pre {
		t.Errorf("no churn spike: pre=%.3f peak=%.3f", pre, peak)
	}
	// Rate must decay again after the window.
	tail := probes.Final()
	if tail >= peak {
		t.Errorf("probe rate did not decay after churn: peak=%.3f tail=%.3f", peak, tail)
	}
}

func TestComboShape(t *testing.T) {
	if testing.Short() {
		t.Skip("combo in -short mode")
	}
	res, err := Run("combo", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.Len() != 4 {
			t.Fatalf("%s has %d points", s.Label, s.Len())
		}
		plain, combined := s.Y[0], s.Y[3]
		if combined >= plain {
			t.Errorf("%s: combined %.2f not better than plain %.2f", s.Label, combined, plain)
		}
		// PROP-G alone must also beat plain.
		if s.Y[2] >= plain {
			t.Errorf("%s: PROP-G alone %.2f not better than plain %.2f", s.Label, s.Y[2], plain)
		}
	}
}

func TestRender(t *testing.T) {
	res := &Result{
		ID: "demo", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []stats.Series{
			{Label: "a", X: []float64{0, 1}, Y: []float64{1, 2}},
			{Label: "b", X: []float64{0, 2}, Y: []float64{3, 4}},
		},
		Notes: []string{"hello"},
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a", "b", "hello", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	empty := &Result{ID: "e", Title: "e"}
	buf.Reset()
	empty.Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty render missing placeholder")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run("fig6c", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig6c", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		for j := range a.Series[i].Y {
			if a.Series[i].Y[j] != b.Series[i].Y[j] {
				t.Fatalf("nondeterministic: series %d point %d: %v vs %v",
					i, j, a.Series[i].Y[j], b.Series[i].Y[j])
			}
		}
	}
}

func TestMergeTrialsAverages(t *testing.T) {
	perTrial := [][]stats.Series{
		{{Label: "s", X: []float64{0}, Y: []float64{2}}},
		{{Label: "s", X: []float64{0}, Y: []float64{4}}},
	}
	merged := mergeTrials(perTrial)
	if len(merged) != 1 || math.Abs(merged[0].Y[0]-3) > 1e-12 {
		t.Fatalf("merge = %+v", merged)
	}
	if mergeTrials(nil) != nil {
		t.Fatal("empty merge should be nil")
	}
}
