package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/kademlia"
	"repro/internal/netsim"
	"repro/internal/stats"
)

// The kademlia experiment closes the DHT-geometry sweep: ring (Chord),
// torus (CAN), prefix tree (Pastry), and now the XOR metric. Kademlia's
// k-buckets give the proximity baseline maximal freedom — any k contacts
// per XOR subtree qualify — making it the strongest "protocol-specific
// method" PROP-G is compared against and combined with.

func init() {
	registry["kademlia"] = runner{
		describe: "extension: PROP-G on Kademlia, alone and with proximity k-buckets",
		run:      runKademlia,
	}
}

func runKademlia(opt Options) (*Result, error) {
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		return oneKademliaTrial(opt, trialSeed(opt.Seed, trial))
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "kademlia",
		Title:  "PROP-G on Kademlia (final routing stretch after optimization)",
		XLabel: "method",
		YLabel: "stretch",
		Series: mergeTrials(perTrial),
		Notes: []string{
			"method index: 0=plain, 1=proximity k-buckets only, 2=PROP-G only, 3=proximity + PROP-G",
			"expected shape: all optimized variants beat plain; the combination is at least as good as either alone",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}

func oneKademliaTrial(opt Options, seed uint64) ([]stats.Series, error) {
	e, err := newEnv(opt, netsim.TSLarge(), seed)
	if err != nil {
		return nil, err
	}
	n := scaled(1000, opt.Scale, 100)
	nLookups := scaled(paperLookups, opt.Scale, 100)

	series := stats.Series{Label: "Kademlia"}
	for idx, variant := range []struct {
		prox bool
		prop bool
	}{{false, false}, {true, false}, {false, true}, {true, true}} {
		cfg := kademlia.DefaultConfig()
		cfg.Proximity = variant.prox
		net, err := kademlia.Build(e.pickHosts(n), cfg, e.oracle.Latency, e.r)
		if err != nil {
			return nil, err
		}
		if variant.prop {
			p, err := core.New(net.O, core.DefaultConfig(core.PROPG), e.r.Split())
			if err != nil {
				return nil, err
			}
			eng := event.New()
			p.Start(eng)
			eng.RunUntil(horizonMS)
			net.Refresh(e.oracle.Latency)
		}
		series.Add(float64(idx), kademliaRoutingStretch(net, e, nLookups))
	}
	return []stats.Series{series}, nil
}

// kademliaRoutingStretch mirrors routingStretch for the XOR network.
func kademliaRoutingStretch(net *kademlia.Net, e *env, count int) float64 {
	r := e.r.Split()
	slots := net.O.AliveSlots()
	sum, n := 0.0, 0
	for i := 0; i < count; i++ {
		src := slots[r.Intn(len(slots))]
		key := kademlia.RandomKey(r)
		res, err := net.Lookup(src, key, nil)
		if err != nil || res.Owner == src {
			continue
		}
		direct := e.oracle.Latency(net.O.HostOf(src), net.O.HostOf(res.Owner))
		if direct <= 0 {
			continue
		}
		sum += res.Latency / direct
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
