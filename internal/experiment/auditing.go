package experiment

import (
	"fmt"
	"sync"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/overlay"
)

// newRunAuditor attaches the online invariant auditor to one simulated run:
// overlay bijection/connectivity and PROP-G topology freezing are registered,
// the engine's clock/FIFO invariants are hooked, and the protocol's probe and
// exchange hooks feed the auditor's sampled event stream (every event under
// -tags auditstrict). Existing Trace/Probe hooks are chained, not replaced.
func newRunAuditor(o *overlay.Overlay, p *core.Protocol, eng *event.Engine, extra ...audit.Invariant) *audit.Auditor {
	a := audit.New(audit.DefaultInterval, 0)
	a.Register(
		audit.OverlayBijection(o),
		audit.OverlayConnected(o),
		audit.TopologyFrozen(o),
	)
	a.Register(extra...)
	a.AttachEngine(eng)

	prevTrace := p.Trace
	p.Trace = func(ev core.ExchangeEvent) {
		if prevTrace != nil {
			prevTrace(ev)
		}
		a.Observe(audit.Record{
			At: float64(ev.At), Kind: audit.KindExchange,
			A: ev.U, B: ev.V, Aux: []int{ev.Moved}, Val: ev.Var,
		})
	}
	prevProbe := p.Probe
	p.Probe = func(ev core.ProbeEvent) {
		if prevProbe != nil {
			prevProbe(ev)
		}
		v := 0.0
		if ev.Exchanged {
			v = 1
		}
		a.Observe(audit.Record{
			At: float64(ev.At), Kind: audit.KindProbe,
			A: ev.U, B: ev.Partner, Val: v,
		})
	}
	return a
}

// finishAudit runs the final full invariant check and renders the per-run
// summary line; an audit violation fails the run.
func finishAudit(a *audit.Auditor, label string) (string, error) {
	if a == nil {
		return "", nil
	}
	a.CheckNow()
	if err := a.Err(); err != nil {
		return "", fmt.Errorf("audit %s: %w", label, err)
	}
	return fmt.Sprintf("%s: %s", label, a.Summary()), nil
}

// auditLog collects per-trial audit summaries from parallel trials and
// renders them as Result notes in trial order.
type auditLog struct {
	mu    sync.Mutex
	lines map[int][]string
}

func newAuditLog(enabled bool) *auditLog {
	if !enabled {
		return nil
	}
	return &auditLog{lines: map[int][]string{}}
}

func (l *auditLog) add(trial int, line string) {
	if l == nil || line == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines[trial] = append(l.lines[trial], line)
}

func (l *auditLog) notes(trials int) []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for t := 0; t < trials; t++ {
		for _, line := range l.lines[t] {
			out = append(out, fmt.Sprintf("audit trial %d: %s", t, line))
		}
	}
	return out
}
