package experiment

import (
	"bytes"
	"testing"
)

// scaleTestOpt keeps fig5a-scale tests on the smallest rung with a short
// horizon: one 4096-peer world, no exact reference.
func scaleTestOpt(seed uint64) Options {
	return Options{Seed: seed, Trials: 1, Scale: 0.5, ScaleMaxN: scaleMinPeers}
}

// TestFig5aScaleLadder pins the rung arithmetic: defaults reach 10^6, the
// cap truncates and becomes the top rung, Scale shrinks the cap, and the
// floor is one stub layer.
func TestFig5aScaleLadder(t *testing.T) {
	cases := []struct {
		opt  Options
		want []int
	}{
		{Options{Scale: 1}, []int{4096, 32768, 262144, 1000000}},
		{Options{Scale: 1, ScaleMaxN: 100000}, []int{4096, 32768, 100000}},
		{Options{Scale: 1, ScaleMaxN: 4096}, []int{4096}},
		{Options{Scale: 1, ScaleMaxN: 40000}, []int{4096, 32768, 40000}},
		{Options{Scale: 0.1}, []int{4096, 32768, 100000}},
		{Options{Scale: 0.001}, []int{4096}},
	}
	for _, c := range cases {
		got := scaleRungs(c.opt.withDefaults())
		if len(got) != len(c.want) {
			t.Errorf("rungs(%+v) = %v, want %v", c.opt, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("rungs(%+v) = %v, want %v", c.opt, got, c.want)
				break
			}
		}
	}
}

// TestFig5aScaleSmoke runs the smallest rung end to end and checks the
// result shape: a decreasing AL trend and the setup notes.
func TestFig5aScaleSmoke(t *testing.T) {
	res, err := Run("fig5a-scale", scaleTestOpt(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 {
		t.Fatalf("%d series, want 1", len(res.Series))
	}
	s := res.Series[0]
	if s.Label != "n=4096" || s.Len() < 3 {
		t.Fatalf("series %q with %d points", s.Label, s.Len())
	}
	if last := s.Y[s.Len()-1]; last >= s.Y[0] {
		t.Errorf("estimated AL did not improve: %.1f -> %.1f ms", s.Y[0], last)
	}
}

// TestFig5aScaleStreamDeterministic: the metrics stream of a sharded run is
// a pure function of the options — including across different shard
// counts, which is the cross-layer restatement of the internal/shard
// invariance test.
func TestFig5aScaleStreamDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded stream sweep in -short mode")
	}
	base := metricsStreamOf(t, "fig5a-scale", scaleTestOpt(9))
	again := metricsStreamOf(t, "fig5a-scale", scaleTestOpt(9))
	if !bytes.Equal(base, again) {
		t.Fatalf("same options emitted different streams:\n%s", firstDiffLine(base, again))
	}
	for _, shards := range []int{1, 4} {
		opt := scaleTestOpt(9)
		opt.Shards = shards
		if got := metricsStreamOf(t, "fig5a-scale", opt); !bytes.Equal(got, base) {
			t.Fatalf("shards=%d stream differs from default:\n%s", shards, firstDiffLine(got, base))
		}
	}
	other := metricsStreamOf(t, "fig5a-scale", scaleTestOpt(10))
	if bytes.Equal(base, other) {
		t.Fatal("different seeds emitted identical streams")
	}
	for _, name := range []string{`"n=4096/al_est_ms"`, `"n=4096/al_stderr_ms"`, `"n=4096/exchanges"`, `"n=4096/messages"`} {
		if !bytes.Contains(base, []byte(name)) {
			t.Errorf("stream missing series %s", name)
		}
	}
	if bytes.Contains(base, []byte("walltime_s")) || bytes.Contains(base, []byte("heap_alloc_mb")) {
		t.Error("wall-gated series leaked into a deterministic stream")
	}
}
