package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/hetero"
	"repro/internal/ltm"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// fig7Fractions is the x axis: the fraction of lookups destined for fast
// machines.
var fig7Fractions = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}

// fig7HorizonMS is the optimization time before the Fig. 7 measurement.
// It is shorter than the Fig. 5/6 horizon: LTM converges within a few
// detector rounds while PROP is still in its warm-up, which is exactly the
// regime the paper measures (LTM ahead at x=0, and the PROP-O exchange
// size m still mattering — given unlimited time even m=1 converges).
const fig7HorizonMS = 15 * 60000

// fig7Policy names one curve.
type fig7Policy struct {
	label string
	// optimize runs the policy over the overlay for the standard horizon,
	// recording its loop activity into tr (nil = instrumentation off) under
	// the given label prefix.
	optimize func(o *overlay.Overlay, r *rng.Rand, tr *obs.Trial, label string) error
}

// fig7SampleStepMS is the metric-sampling cadence of the optimization
// phase; sampling only happens when instrumentation is on, and running the
// engine to the horizon in steps executes the identical event sequence.
const fig7SampleStepMS = 60000

func propPolicy(policy core.Policy, m int) func(*overlay.Overlay, *rng.Rand, *obs.Trial, string) error {
	return func(o *overlay.Overlay, r *rng.Rand, tr *obs.Trial, label string) error {
		cfg := core.DefaultConfig(policy)
		cfg.M = m
		p, err := core.New(o, cfg, r)
		if err != nil {
			return err
		}
		prefix := label + "/"
		hookExchangeTrace(tr, prefix, p)
		e := event.New()
		p.Start(e)
		sp := tr.StartSpan(prefix+"optimize", 0)
		for t := 0.0; t <= fig7HorizonMS; t += fig7SampleStepMS {
			e.RunUntil(event.Time(t))
			sampleProtocol(tr, prefix, t, p, o)
		}
		sp.End(fig7HorizonMS)
		recordCounterTotals(tr, prefix+"prop.", p.Counters)
		return nil
	}
}

func ltmPolicy() func(*overlay.Overlay, *rng.Rand, *obs.Trial, string) error {
	return func(o *overlay.Overlay, r *rng.Rand, tr *obs.Trial, label string) error {
		p, err := ltm.New(o, ltm.DefaultConfig(), r)
		if err != nil {
			return err
		}
		prefix := label + "/"
		e := event.New()
		p.Start(e)
		sp := tr.StartSpan(prefix+"optimize", 0)
		for t := 0.0; t <= fig7HorizonMS; t += fig7SampleStepMS {
			e.RunUntil(event.Time(t))
			if tr != nil {
				sampleMessageCounters(tr, prefix+"ltm.", t, p.Counters)
				sampleOverlayStats(tr, prefix, t, o)
			}
		}
		sp.End(fig7HorizonMS)
		recordCounterTotals(tr, prefix+"ltm.", p.Counters)
		return nil
	}
}

// runFig7 reproduces the bimodal-processing-delay comparison. For every
// policy the optimized overlay is evaluated against the same host-level
// workload; the reported value is the ratio of the policy's average lookup
// delay to the unoptimized overlay's (the paper likewise reports "a
// normalized value instead of real lookup delay").
func runFig7(opt Options) (*Result, error) {
	policies := []fig7Policy{
		{label: "PROP-O (m=1)", optimize: propPolicy(core.PROPO, 1)},
		{label: "PROP-O (m=2)", optimize: propPolicy(core.PROPO, 2)},
		{label: "PROP-O (m=4)", optimize: propPolicy(core.PROPO, 4)},
		{label: "PROP-G", optimize: propPolicy(core.PROPG, 0)},
		{label: "LTM", optimize: ltmPolicy()},
	}

	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		return oneFig7Trial(opt, policies, opt.Metrics.Trial(trial), trialSeed(opt.Seed, trial))
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig7",
		Title:  "Average lookup latency for bimodal processing delay, varying the fraction of fast-node lookups",
		XLabel: "fraction of fast lookups",
		YLabel: "average lookup delay (ratio vs unoptimized overlay)",
		Series: mergeTrials(perTrial),
		Notes: []string{
			"bimodal model: fast=1ms, slow=100ms, 20% fast machines (the overlay hubs)",
			"expected shape: LTM best at x=0; PROP-O decreases with x; PROP-G and LTM worsen as x→1",
			"the PROP-O/LTM crossover at x=1 reproduces at n<=500 (scale<=0.5); at n=1000 the two converge within ~2% — PROP-O matching LTM at a fraction of the message cost while preserving degrees (see EXPERIMENTS.md)",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}

func oneFig7Trial(opt Options, policies []fig7Policy, tr *obs.Trial, seed uint64) ([]stats.Series, error) {
	e, err := newEnv(opt, netsim.TSLarge(), seed)
	if err != nil {
		return nil, err
	}
	e.instrumentOracle(tr, "fig7/")
	n := scaled(1000, opt.Scale, 100)
	base, err := e.buildGnutella(n)
	if err != nil {
		return nil, err
	}
	baseModel, err := hetero.AssignByDegree(base, hetero.DefaultConfig())
	if err != nil {
		return nil, err
	}
	fastHosts := baseModel.FastHosts()
	fastSet := make(map[int]bool, len(fastHosts))
	for _, h := range fastHosts {
		fastSet[h] = true
	}
	allHosts := base.Hosts()
	var slowHosts []int
	for _, h := range allHosts {
		if !fastSet[h] {
			slowHosts = append(slowHosts, h)
		}
	}

	// Host-level workloads, one per fraction, shared by every policy so the
	// curves are directly comparable.
	nLookups := scaled(paperLookups, opt.Scale, 100)
	wr := e.r.Split()
	hostLookups := make([][]workload.Lookup, len(fig7Fractions))
	for i, frac := range fig7Fractions {
		ls, err := workload.Skewed(allHosts, fastHosts, slowHosts, frac, nLookups, wr)
		if err != nil {
			return nil, err
		}
		hostLookups[i] = ls
	}

	// Baseline: the unoptimized overlay's delay at each fraction.
	baseline := make([]float64, len(fig7Fractions))
	for i := range fig7Fractions {
		baseline[i] = evalHostWorkload(base, baseModel, hostLookups[i])
		if baseline[i] <= 0 {
			return nil, fmt.Errorf("fig7: degenerate baseline %v at fraction %v", baseline[i], fig7Fractions[i])
		}
	}

	out := make([]stats.Series, len(policies))
	for pi, pol := range policies {
		oc := base.Clone()
		model, err := hetero.AssignByDegree(oc, hetero.DefaultConfig())
		if err != nil {
			return nil, err
		}
		if err := pol.optimize(oc, e.r.Split(), tr, pol.label); err != nil {
			return nil, fmt.Errorf("%s: %w", pol.label, err)
		}
		s := stats.Series{Label: pol.label}
		for i, frac := range fig7Fractions {
			mean := evalHostWorkload(oc, model, hostLookups[i])
			s.Add(frac, mean/baseline[i])
		}
		out[pi] = s
	}
	return out, nil
}

// evalHostWorkload maps a host-level workload onto the overlay's current
// slot assignment and returns the mean flooding lookup delay including
// processing delays.
func evalHostWorkload(o *overlay.Overlay, model *hetero.Model, hostLookups []workload.Lookup) float64 {
	slotLookups := make([]workload.Lookup, 0, len(hostLookups))
	for _, hl := range hostLookups {
		src, dst := o.SlotOfHost(hl.Src), o.SlotOfHost(hl.Dst)
		if src < 0 || dst < 0 || src == dst {
			continue
		}
		slotLookups = append(slotLookups, workload.Lookup{Src: src, Dst: dst})
	}
	mean, _ := metrics.MeanLookupLatency(slotLookups, metrics.FloodEval(o, model.Delay))
	return mean
}
