package experiment

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/stats"
)

func sampleResult() *Result {
	return &Result{
		ID: "demo", Title: "Demo", XLabel: "x", YLabel: "y",
		Series: []stats.Series{
			{Label: "a", X: []float64{0, 1, 2}, Y: []float64{1, 4, 9}},
			{Label: "b", X: []float64{0, 2}, Y: []float64{2, 3}},
		},
		Notes: []string{"note1"},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 { // header + 3 x values
		t.Fatalf("records = %v", records)
	}
	if records[0][0] != "x" || records[0][1] != "a" || records[0][2] != "b" {
		t.Fatalf("header = %v", records[0])
	}
	// x=1 has no value for series b: empty cell.
	if records[2][0] != "1" || records[2][1] != "4" || records[2][2] != "" {
		t.Fatalf("row for x=1 = %v", records[2])
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "demo" || len(back.Series) != 2 || back.Series[0].Y[2] != 9 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if len(back.Notes) != 1 {
		t.Fatalf("notes lost: %+v", back.Notes)
	}
}

func TestPlot(t *testing.T) {
	var buf bytes.Buffer
	sampleResult().Plot(&buf, 40, 10)
	out := buf.String()
	for _, want := range []string{"demo", "*", "+", "a", "b", "x: x, y: y"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Max y label appears on the top row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "9") {
		t.Errorf("top row missing ymax label: %q", lines[1])
	}
}

func TestPlotDegenerate(t *testing.T) {
	var buf bytes.Buffer
	(&Result{ID: "e"}).Plot(&buf, 10, 3)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty plot missing placeholder")
	}
	// Constant series must not divide by zero.
	flat := &Result{
		ID: "flat", Series: []stats.Series{{Label: "c", X: []float64{0, 1}, Y: []float64{5, 5}}},
	}
	buf.Reset()
	flat.Plot(&buf, 30, 6)
	if !strings.Contains(buf.String(), "c") {
		t.Error("flat plot missing series")
	}
	// Single point.
	single := &Result{
		ID: "one", Series: []stats.Series{{Label: "s", X: []float64{3}, Y: []float64{7}}},
	}
	buf.Reset()
	single.Plot(&buf, 30, 6)
	if !strings.Contains(buf.String(), "s") {
		t.Error("single-point plot missing series")
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## `demo`", "| x |", "| a |", "— |", "- note1"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := (&Result{ID: "e"}).WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty markdown missing placeholder")
	}
}
