package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/stats"
)

// The noise experiment probes a deployment concern the paper leaves
// implicit: PROP decides exchanges from measured RTTs, and real RTT
// measurements are noisy. We perturb every probe measurement by a
// multiplicative Gaussian (the exchange itself still changes ground truth)
// and sweep the noise level. The Var > 0 gate averages 2c (or 2m)
// measurements per decision, so moderate noise should wash out; at high
// noise the protocol starts executing harmful exchanges and the end state
// degrades gracefully toward no-op.

func init() {
	registry["noise"] = runner{
		describe: "robustness: PROP-G under multiplicative probe-RTT measurement noise",
		run:      runNoise,
	}
}

func runNoise(opt Options) (*Result, error) {
	levels := []float64{0, 0.1, 0.25, 0.5, 1.0, 2.0}
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		e, err := newEnv(opt, netsim.TSLarge(), trialSeed(opt.Seed, trial))
		if err != nil {
			return nil, err
		}
		n := scaled(1000, opt.Scale, 100)
		base, err := e.buildGnutella(n)
		if err != nil {
			return nil, err
		}
		latency := stats.Series{Label: "final mean link latency (ms)"}
		harmful := stats.Series{Label: "harmful exchange fraction"}
		for vi, sigma := range levels {
			oc := base.Clone()
			cfg := core.DefaultConfig(core.PROPG)
			cfg.MeasurementNoise = sigma
			p, err := core.New(oc, cfg, rng.New(trialSeed(opt.Seed, 4000+trial*100+vi)))
			if err != nil {
				return nil, err
			}
			// Count exchanges whose TRUE gain was negative.
			bad, total := 0, 0
			last := totalNeighborLatency(oc)
			p.Trace = func(core.ExchangeEvent) {
				now := totalNeighborLatency(oc)
				total++
				if now > last {
					bad++
				}
				last = now
			}
			eng := event.New()
			p.Start(eng)
			eng.RunUntil(horizonMS)
			latency.Add(sigma, oc.MeanLinkLatency())
			if total > 0 {
				harmful.Add(sigma, float64(bad)/float64(total))
			} else {
				harmful.Add(sigma, 0)
			}
		}
		return []stats.Series{latency, harmful}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "noise",
		Title:  "Robustness: PROP-G under probe measurement noise",
		XLabel: "noise σ (fraction of true RTT)",
		YLabel: "final mean link latency (ms) | harmful exchange fraction",
		Series: mergeTrials(perTrial),
		Notes: []string{
			"noise perturbs the Var decision only; topology changes always apply to ground truth",
			"expected: near-flat latency at σ≈0.1 (Var averages many measurements), graceful degradation beyond; harmful-exchange fraction grows with σ but individual harms stay small",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}

// totalNeighborLatency sums every node's true neighbor-latency total.
func totalNeighborLatency(o interface {
	AliveSlots() []int
	NeighborLatencySum(int) float64
}) float64 {
	s := 0.0
	for _, slot := range o.AliveSlots() {
		s += o.NeighborLatencySum(slot)
	}
	return s
}
