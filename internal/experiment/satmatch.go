package experiment

import (
	"fmt"

	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/satmatch"
	"repro/internal/stats"
)

// The satmatch experiment compares the paper's protocol against the §2
// structured-system alternative, SAT-Match: relocation by re-joining with a
// fresh identifier near a physically close peer. Both are run over the
// identical Chord ring; the series track routing stretch over time, and the
// notes quantify the cost dimension the paper argues about — SAT-Match
// mints new identifiers (ownership churn and the loss of the old-IDs-only
// anonymity property), PROP-G never does.

func init() {
	registry["satmatch"] = runner{
		describe: "baseline: SAT-Match (relocation jumps) vs PROP-G on Chord",
		run:      runSATMatch,
	}
}

func runSATMatch(opt Options) (*Result, error) {
	type trialExtra struct {
		satRelocations int
	}
	extras := make([]trialExtra, opt.withDefaults().Trials)
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		n := scaled(1000, opt.Scale, 100)
		nLookups := scaled(paperLookups, opt.Scale, 100)

		series := make([]stats.Series, 3)
		labels := []string{"no optimization", "SAT-Match", "PROP-G"}
		for vi, label := range labels {
			// Identical world and ring per variant (same env seed); only
			// the optimizer differs, so the curves share their start.
			e, err := newEnv(opt, netsim.TSLarge(), trialSeed(opt.Seed, trial))
			if err != nil {
				return nil, err
			}
			ring, err := e.buildChord(n, false)
			if err != nil {
				return nil, err
			}
			eng := event.New()
			var satProto *satmatch.Protocol
			protoRNG := rng.New(trialSeed(opt.Seed, 5000+trial*100+vi))
			switch vi {
			case 1:
				p, err := satmatch.New(ring, satmatch.DefaultConfig(), e.oracle.Latency, protoRNG)
				if err != nil {
					return nil, err
				}
				p.Start(eng)
				satProto = p
			case 2:
				p, err := core.New(ring.O, core.DefaultConfig(core.PROPG), protoRNG)
				if err != nil {
					return nil, err
				}
				p.Start(eng)
			}
			// Same workload for every variant of this trial. The workload is
			// host-addressed: SAT-Match relocations kill and recreate slots,
			// so a slot-addressed workload would silently drop every peer
			// that ever jumped and bias the sample toward non-jumpers.
			wr := rng.New(trialSeed(opt.Seed, 7000+trial))
			hosts := ring.O.Hosts()
			type hostLookup struct {
				host int
				key  uint32
			}
			lookups := make([]hostLookup, nLookups)
			for i := range lookups {
				lookups[i] = hostLookup{host: hosts[wr.Intn(len(hosts))], key: chord.RandomKey(wr)}
			}
			measure := func() float64 {
				sum, count := 0.0, 0
				for _, hl := range lookups {
					src := ring.O.SlotOfHost(hl.host)
					if src < 0 {
						continue
					}
					res, err := ring.Lookup(src, hl.key, nil)
					if err != nil || res.Owner == src {
						continue
					}
					direct := e.oracle.Latency(ring.O.HostOf(src), ring.O.HostOf(res.Owner))
					if direct <= 0 {
						continue
					}
					sum += res.Latency / direct
					count++
				}
				if count == 0 {
					return 0
				}
				return sum / float64(count)
			}
			s := stats.Series{Label: label}
			for t := 0.0; t <= horizonMS; t += stepMS {
				eng.RunUntil(event.Time(t))
				s.Add(t/60000, measure())
			}
			if satProto != nil {
				extras[trial].satRelocations = satProto.Relocations
			}
			series[vi] = s
		}
		return series, nil
	})
	if err != nil {
		return nil, err
	}
	totalRelocations := 0
	for _, x := range extras {
		totalRelocations += x.satRelocations
	}
	return &Result{
		ID:     "satmatch",
		Title:  "SAT-Match relocation jumps vs PROP-G exchanges on Chord (routing stretch over time)",
		XLabel: "time (min)",
		YLabel: "stretch",
		Series: mergeTrials(perTrial),
		Notes: []string{
			fmt.Sprintf("SAT-Match minted %d fresh identifiers across %d trials; PROP-G minted 0 (it only permutes existing IDs — §4.1's anonymity argument)",
				totalRelocations, opt.withDefaults().Trials),
			"each SAT-Match relocation also re-assigns keyspace ownership (data movement); a PROP-G swap moves only the two peers' stored keys",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}
