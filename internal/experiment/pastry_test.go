package experiment

import "testing"

func TestPastryExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("pastry experiment in -short mode")
	}
	res, err := Run("pastry", Options{Seed: 5, Trials: 2, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || res.Series[0].Len() != 4 {
		t.Fatalf("series shape wrong: %+v", res.Series)
	}
	s := res.Series[0]
	plain, prox, propg, combined := s.Y[0], s.Y[1], s.Y[2], s.Y[3]
	if prox >= plain {
		t.Errorf("proximity %.2f not below plain %.2f", prox, plain)
	}
	if propg >= plain {
		t.Errorf("PROP-G %.2f not below plain %.2f", propg, plain)
	}
	// Combination must not be materially worse than proximity alone (it
	// re-picks the same tables after exchanges).
	if combined > prox*1.1 {
		t.Errorf("combined %.2f materially worse than proximity %.2f", combined, prox)
	}
}
