package experiment

import (
	"fmt"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/stats"
)

// The replication experiment grounds the paper's file-sharing motivation:
// Gnutella queries are satisfied by ANY replica of an item, so the benefit
// of location-aware topology should interact with replication — when
// popular items are everywhere, a nearby copy exists regardless of the
// overlay layout, and the optimizer's headroom shrinks. We sweep the
// replication factor and measure first-replica flooding latency on the
// same catalog before and after PROP-G.

func init() {
	registry["replication"] = runner{
		describe: "extension: first-replica search latency vs replication factor, before/after PROP-G",
		run:      runReplication,
	}
}

var replicationFactors = []int{1, 2, 4, 8, 16}

func runReplication(opt Options) (*Result, error) {
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		e, err := newEnv(opt, netsim.TSLarge(), trialSeed(opt.Seed, trial))
		if err != nil {
			return nil, err
		}
		n := scaled(1000, opt.Scale, 100)
		base, err := e.buildGnutella(n)
		if err != nil {
			return nil, err
		}
		// Optimize a clone once; catalogs are host-addressed so the same
		// placement serves both overlays.
		optimized := base.Clone()
		p, err := core.New(optimized, core.DefaultConfig(core.PROPG), e.r.Split())
		if err != nil {
			return nil, err
		}
		eng := event.New()
		p.Start(eng)
		eng.RunUntil(horizonMS)

		queries := scaled(paperLookups, opt.Scale, 100)
		plain := stats.Series{Label: "unoptimized (ms)"}
		prop := stats.Series{Label: "PROP-G (ms)"}
		ratio := stats.Series{Label: "PROP-G/unoptimized"}
		for vi, reps := range replicationFactors {
			cfg := content.DefaultConfig()
			cfg.Replicas = reps
			cfg.Items = scaled(500, opt.Scale, 50)
			catalog, err := content.Place(base, cfg, rng.New(trialSeed(opt.Seed, 8000+trial*100+vi)))
			if err != nil {
				return nil, err
			}
			qr := rng.New(trialSeed(opt.Seed, 9000+trial*100+vi))
			mBase, f1 := catalog.MeanSearchLatency(base, queries, nil, qr)
			qr2 := rng.New(trialSeed(opt.Seed, 9000+trial*100+vi))
			mProp, f2 := catalog.MeanSearchLatency(optimized, queries, nil, qr2)
			if f1 > 0 || f2 > 0 {
				return nil, fmt.Errorf("replication: %d/%d failed searches", f1, f2)
			}
			x := float64(reps)
			plain.Add(x, mBase)
			prop.Add(x, mProp)
			ratio.Add(x, mProp/mBase)
		}
		return []stats.Series{plain, prop, ratio}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "replication",
		Title:  "First-replica flooding search latency vs replication factor",
		XLabel: "replicas per item",
		YLabel: "mean search latency (ms) | PROP-G ratio",
		Series: mergeTrials(perTrial),
		Notes: []string{
			"items live on machines (Zipf s=0.8 popularity); any replica satisfies a query",
			"expected: latency falls with replication for both overlays; PROP-G's ~30% relative gain holds across the sweep — location-awareness composes with replication rather than being replaced by it",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		},
	}, nil
}
