package experiment_test

import (
	"fmt"
	"io"

	"repro/internal/experiment"
)

// Example runs one reproduction experiment at miniature scale and exports
// it — the programmatic equivalent of `propsim -exp minvar -format csv`.
func Example() {
	res, err := experiment.Run("minvar", experiment.Options{Seed: 1, Trials: 1, Scale: 0.12})
	if err != nil {
		panic(err)
	}
	if err := res.WriteCSV(io.Discard); err != nil {
		panic(err)
	}
	fmt.Println(res.ID, len(res.Series) > 0)
	// Output:
	// minvar true
}

// ExampleIDs lists the experiment registry.
func ExampleIDs() {
	fmt.Println(len(experiment.IDs()) >= 18)
	fmt.Println(experiment.Describe("fig7") != "")
	// Output:
	// true
	// true
}
