package experiment

import (
	"math"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/faults"
	"repro/internal/gnutella"
	"repro/internal/netsim"
	"repro/internal/rng"
)

// FuzzFaultScheduleInvariants throws random fault schedules — loss,
// duplication, jitter, transient link outages, and crash-stop deaths — at a
// small PROP-G overlay with periodic repair rounds, and requires the audit
// invariant suite to hold after every repair. Whatever the schedule, the
// hardened protocol must never corrupt the slot↔host bijection, disconnect
// the repaired overlay, or leave an unflagged corpse behind.
func FuzzFaultScheduleInvariants(f *testing.F) {
	f.Add(uint64(1), 0.05, 0.02, 10.0, 0.0, uint8(3))
	f.Add(uint64(42), 0.5, 0.2, 0.0, 0.1, uint8(7))
	f.Add(uint64(99), 1.0, 0.0, 50.0, 0.5, uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, loss, dup, jitter, linkFail float64, crashes uint8) {
		clamp01 := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(math.Abs(v), 1)
		}
		cfg := faults.Config{
			Seed:         seed,
			LossProb:     clamp01(loss),
			DupProb:      clamp01(dup),
			JitterMS:     clamp01(jitter) * 50,
			LinkFailProb: clamp01(linkFail),
		}
		inj, err := faults.NewInjector(cfg)
		if err != nil {
			t.Fatalf("clamped config rejected: %v", err)
		}

		r := rng.New(seed | 1)
		net, err := netsim.Generate(netsim.TSSmall(), r)
		if err != nil {
			t.Fatal(err)
		}
		oracle := netsim.NewOracle(net)
		hosts := append([]int(nil), net.StubHosts...)
		if len(hosts) > 32 {
			hosts = hosts[:32]
		}
		o, err := gnutella.Build(hosts, gnutella.DefaultConfig(), oracle.Latency, r)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.New(o, core.DefaultConfig(core.PROPG), r.Split())
		if err != nil {
			t.Fatal(err)
		}
		p.AttachFaults(inj)
		eng := event.New()
		p.Start(eng)

		postRepair := audit.New(1, 16)
		postRepair.Register(
			audit.OverlayBijection(o),
			audit.OverlayConnected(o),
			audit.Check("overlay-invariants", o.CheckInvariants),
		)

		budget := int(crashes % 12)
		for minute := 1; minute <= 10; minute++ {
			eng.RunUntil(event.Time(minute) * 60000)
			if budget > 0 {
				alive := o.AliveSlots()
				if len(alive) > 8 {
					victim := alive[r.Intn(len(alive))]
					if err := o.CrashSlot(victim); err != nil {
						t.Fatalf("crash: %v", err)
					}
					p.CrashNode(victim)
					budget--
				}
			}
			if len(o.CrashedSlots()) > 0 {
				if _, err := gnutella.RepairCrashed(o, gnutella.DefaultConfig(), r); err != nil {
					t.Fatalf("repair: %v", err)
				}
			}
			postRepair.CheckNow()
			if err := postRepair.Err(); err != nil {
				t.Fatalf("schedule %+v crashes=%d: audit violation: %v", cfg, crashes%12, err)
			}
		}
	})
}
