package experiment

import (
	"testing"

	"repro/internal/stats"
)

func TestTrafficShape(t *testing.T) {
	if testing.Short() {
		t.Skip("traffic experiment in -short mode")
	}
	res, err := Run("traffic", Options{Seed: 9, Trials: 2, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var msgs, traffic stats.Series
	for _, s := range res.Series {
		switch s.Label {
		case "messages per query":
			msgs = s
		case "traffic (ms per query)":
			traffic = s
		}
	}
	if msgs.Len() != 4 || traffic.Len() != 4 {
		t.Fatalf("series shapes: %d/%d", msgs.Len(), traffic.Len())
	}
	// PROP-G leaves the logical graph untouched: message count identical.
	if msgs.YAt(1) != msgs.YAt(0) {
		t.Errorf("PROP-G changed the flood message count: %.1f vs %.1f", msgs.YAt(1), msgs.YAt(0))
	}
	// PROP-O preserves degrees: message count within 5%.
	if d := msgs.YAt(2) / msgs.YAt(0); d < 0.95 || d > 1.05 {
		t.Errorf("PROP-O message count drifted: ratio %.3f", d)
	}
	// Both PROP variants must cut the latency-weighted traffic.
	for _, idx := range []float64{1, 2} {
		if traffic.YAt(idx) >= traffic.YAt(0) {
			t.Errorf("variant %v did not reduce ms-traffic: %.0f vs %.0f",
				idx, traffic.YAt(idx), traffic.YAt(0))
		}
	}
}
