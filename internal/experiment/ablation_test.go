package experiment

import (
	"testing"

	"repro/internal/stats"
)

func TestAblationsRegistered(t *testing.T) {
	for _, id := range []string{"warmup", "minvar"} {
		if Describe(id) == "" {
			t.Errorf("%s not registered", id)
		}
	}
}

func TestWarmupAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	res, err := Run("warmup", Options{Seed: 5, Trials: 2, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var latency, probes stats.Series
	for _, s := range res.Series {
		switch s.Label {
		case "final mean link latency (ms)":
			latency = s
		case "probes per node":
			probes = s
		}
	}
	if latency.Len() != 6 || probes.Len() != 6 {
		t.Fatalf("series lengths %d/%d", latency.Len(), probes.Len())
	}
	// A 1-probe warm-up must end worse than the 10-probe default.
	if latency.YAt(1) <= latency.YAt(10) {
		t.Errorf("warm-up=1 latency %.1f not above warm-up=10 %.1f", latency.YAt(1), latency.YAt(10))
	}
	// Longer warm-ups cost strictly more probes.
	if probes.YAt(40) <= probes.YAt(10) || probes.YAt(10) <= probes.YAt(1) {
		t.Errorf("probe cost not increasing in warm-up length: %v", probes.Y)
	}
	// Diminishing returns per added warm-up probe: the 1→10 stretch must
	// buy more latency per probe than the 10→40 stretch.
	perProbeEarly := (latency.YAt(1) - latency.YAt(10)) / 9
	perProbeLate := (latency.YAt(10) - latency.YAt(40)) / 30
	if perProbeLate >= perProbeEarly {
		t.Errorf("no diminishing returns: early %.2f ms/probe, late %.2f ms/probe",
			perProbeEarly, perProbeLate)
	}
}

func TestMinVarAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	res, err := Run("minvar", Options{Seed: 5, Trials: 2, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var latency, exchanges stats.Series
	for _, s := range res.Series {
		switch s.Label {
		case "final mean link latency (ms)":
			latency = s
		case "exchanges executed":
			exchanges = s
		}
	}
	// Zero threshold must beat the largest threshold.
	if latency.YAt(0) >= latency.YAt(400) {
		t.Errorf("MIN_VAR=0 latency %.1f not below MIN_VAR=400 %.1f", latency.YAt(0), latency.YAt(400))
	}
	// Exchange counts must fall as the gate rises (weakly, allowing noise
	// between adjacent points but strictly end to end).
	if exchanges.YAt(0) <= exchanges.YAt(400) {
		t.Errorf("exchanges not decreasing: %v", exchanges.Y)
	}
}
