package experiment

import (
	"testing"

	"repro/internal/stats"
)

func TestChordChurnShape(t *testing.T) {
	if testing.Short() {
		t.Skip("chordchurn in -short mode")
	}
	res, err := Run("chordchurn", Options{Seed: 6, Trials: 1, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var probes, correct stats.Series
	for _, s := range res.Series {
		switch s.Label {
		case "probes/node/min":
			probes = s
		case "correct fraction":
			correct = s
		}
	}
	if probes.Len() == 0 || correct.Len() == 0 {
		t.Fatalf("missing series: %+v", res.Series)
	}
	// The structured invariant: every sampled lookup reaches the true
	// owner at every minute, churn or not.
	for i, y := range correct.Y {
		if y != 1.0 {
			t.Errorf("minute %v: correct fraction %.4f", correct.X[i], y)
		}
	}
	// Probe spike inside the window vs the trough just before it.
	pre := probes.YAt(19)
	peak := 0.0
	for i, x := range probes.X {
		if x > 20 && x <= 36 && probes.Y[i] > peak {
			peak = probes.Y[i]
		}
	}
	if peak <= pre {
		t.Errorf("no churn spike: pre=%.3f peak=%.3f", pre, peak)
	}
	if tail := probes.Final(); tail >= peak {
		t.Errorf("probe rate did not decay: peak=%.3f tail=%.3f", peak, tail)
	}
}
