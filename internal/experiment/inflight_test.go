package experiment

import (
	"testing"

	"repro/internal/stats"
)

func TestInflightShape(t *testing.T) {
	if testing.Short() {
		t.Skip("inflight experiment in -short mode")
	}
	res, err := Run("inflight", Options{Seed: 4, Trials: 1, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var correct, stale, exchanges stats.Series
	for _, s := range res.Series {
		switch s.Label {
		case "correct fraction":
			correct = s
		case "stale arrivals per 1000 lookups":
			stale = s
		case "exchanges during run":
			exchanges = s
		}
	}
	if correct.Len() != 4 {
		t.Fatalf("series shape: %+v", res.Series)
	}
	// The paper's mechanism: correctness never degrades, at any pressure.
	for i, y := range correct.Y {
		if y != 1.0 {
			t.Errorf("variant %d: correct fraction %.4f", i, y)
		}
	}
	// Quiet baseline has no stale arrivals and no exchanges.
	if stale.Y[0] != 0 || exchanges.Y[0] != 0 {
		t.Errorf("quiet variant not quiet: stale=%v exchanges=%v", stale.Y[0], exchanges.Y[0])
	}
	// Pressure must rise monotonically across the variants and actually
	// exercise the cache at the hostile setting.
	if exchanges.Y[3] <= exchanges.Y[1] {
		t.Errorf("exchange pressure not rising: %v", exchanges.Y)
	}
	if stale.Y[3] == 0 {
		t.Error("hostile variant produced no stale arrivals — cache untested")
	}
}
