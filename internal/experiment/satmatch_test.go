package experiment

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestSATMatchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("satmatch experiment in -short mode")
	}
	res, err := Run("satmatch", Options{Seed: 4, Trials: 1, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]stats.Series{}
	for _, s := range res.Series {
		byLabel[s.Label] = s
	}
	plain := byLabel["no optimization"]
	sat := byLabel["SAT-Match"]
	prop := byLabel["PROP-G"]
	if plain.Len() == 0 || sat.Len() == 0 || prop.Len() == 0 {
		t.Fatalf("missing series: %+v", res.Series)
	}
	// All variants share the identical starting ring.
	if plain.Y[0] != sat.Y[0] || plain.Y[0] != prop.Y[0] {
		t.Fatalf("variants start apart: %.3f/%.3f/%.3f", plain.Y[0], sat.Y[0], prop.Y[0])
	}
	// The unoptimized ring is flat; both optimizers end below it.
	if plain.Final() != plain.Y[0] {
		t.Errorf("unoptimized ring drifted: %.3f -> %.3f", plain.Y[0], plain.Final())
	}
	if sat.Final() >= plain.Final() {
		t.Errorf("SAT-Match %.3f not below plain %.3f", sat.Final(), plain.Final())
	}
	if prop.Final() >= plain.Final() {
		t.Errorf("PROP-G %.3f not below plain %.3f", prop.Final(), plain.Final())
	}
	// The cost contrast must be reported: SAT-Match mints IDs, PROP-G none.
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "minted") && strings.Contains(n, "PROP-G minted 0") {
			found = true
		}
	}
	if !found {
		t.Errorf("notes missing the minted-identifier contrast: %v", res.Notes)
	}
}
