package experiment

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/stats"
)

// figR-scale is the scaling companion of the figR* robustness family
// (SCALING.md "Faults at scale"): the question figRa/figRb answer at 10³
// peers — how much of the optimization gain survives message loss and
// crash-stop churn — asked on the fig5a-scale peer ladder, where only the
// domain-sharded engine (internal/shard) is affordable. Every run uses the
// engine's stateless fault schedule (shard.FaultConfig), so the metrics
// streams stay byte-identical across shard counts with faults enabled —
// the tentpole determinism contract.
//
// The smallest rung sweeps the full loss and crash grids; higher rungs run
// only each sweep's endpoints (fault-free and the largest rate), because a
// full grid at 10⁶ peers costs an hour where the endpoints already show
// whether the degradation trend survives the scale jump.

func init() {
	registry["figR-scale"] = runner{
		describe: "robustness at scale: sharded engine, final estimated AL vs loss/crash rate per ladder rung",
		run:      runFigRScale,
		faults:   consumesAllFaults,
	}
}

// scaleFaults translates the propsim fault overrides into one sharded-
// engine schedule, for fig5a-scale: loss brings proportional duplication
// and jitter (the figRa coupling), crash uses the engine's default window
// (the middle third of the horizon), and a partition isolates transit
// domain 0 for the requested length starting at one third of the horizon.
// All overrides zero returns nil — the byte-identical fault-free path.
func scaleFaults(opt Options, horizon float64) *shard.FaultConfig {
	if opt.FaultLoss <= 0 && opt.FaultCrash <= 0 && opt.FaultPartitionMS <= 0 {
		return nil
	}
	fc := &shard.FaultConfig{}
	if opt.FaultLoss > 0 {
		fc.LossProb = opt.FaultLoss
		fc.DupProb = opt.FaultLoss * figRDupFraction
		fc.JitterMS = figRJitterMS
	}
	if opt.FaultCrash > 0 {
		fc.CrashFrac = opt.FaultCrash
	}
	addScalePartition(fc, opt, horizon)
	return fc
}

// addScalePartition applies the -partition override to a sharded schedule:
// transit domain 0 isolated for PartitionMS starting at horizon/3 (the
// figRc shape, restated in engine terms).
func addScalePartition(fc *shard.FaultConfig, opt Options, horizon float64) {
	if opt.FaultPartitionMS <= 0 {
		return
	}
	fc.PartitionDomain = 0
	fc.PartitionStartMS = horizon / 3
	fc.PartitionStopMS = horizon/3 + opt.FaultPartitionMS
}

// figRScaleFaultCfg builds the schedule of one figR-scale point. kind is
// "loss" (swept loss with coupled duplication and jitter) or "crash"
// (swept crash fraction under the figRb background loss); the partition
// override, when set, afflicts every faulty point.
func figRScaleFaultCfg(kind string, rate float64, opt Options, horizon float64) *shard.FaultConfig {
	fc := &shard.FaultConfig{JitterMS: figRJitterMS}
	switch kind {
	case "loss":
		fc.LossProb = rate
		fc.DupProb = rate * figRDupFraction
	case "crash":
		fc.CrashFrac = rate
		fc.LossProb = figRBackgroundLoss
		fc.DupProb = figRBackgroundLoss * figRDupFraction
	}
	addScalePartition(fc, opt, horizon)
	return fc
}

// sweepEndpoints trims a sweep to its first and last points — the
// fault-free reference and the harshest rate.
func sweepEndpoints(grid []float64) []float64 {
	if len(grid) <= 2 {
		return grid
	}
	return []float64{grid[0], grid[len(grid)-1]}
}

func runFigRScale(opt Options) (*Result, error) {
	rungs := scaleRungs(opt)
	horizon := float64(scaled(scaleHorizonMS, opt.Scale, scaleMinHorizonMS))
	reg := opt.Metrics
	if reg == nil {
		reg = obs.New(obs.NewManifest("figR-scale", opt.Seed, len(rungs), opt.Scale))
	}
	lossGrid := faultSweep(figRLossGrid, opt.FaultLoss)
	crashGrid := faultSweep(figRCrashGrid, opt.FaultCrash)

	notes := []string{
		fmt.Sprintf("sharded engine: %d rung(s), horizon %.0f sim-min, seed=%d scale=%.2f", len(rungs), horizon/60000, opt.Seed, opt.Scale),
		fmt.Sprintf("loss points carry duplication = loss/%g and jitter U[0,%dms); crash points add the figRb background loss %g", 1/figRDupFraction, figRJitterMS, figRBackgroundLoss),
		"rungs above the smallest run only each sweep's endpoints (fault-free + harshest rate)",
		"expected shape: final AL rises gently with either fault rate and stays below the unoptimized start at every rung",
	}
	if opt.FaultPartitionMS > 0 {
		notes = append(notes, fmt.Sprintf("every faulty point additionally isolates transit domain 0 for %.0f sim-min starting at minute %.0f", opt.FaultPartitionMS/60000, horizon/3/60000))
	}

	var series []stats.Series
	for i, n := range rungs {
		lg, cg := lossGrid, crashGrid
		if i > 0 {
			lg, cg = sweepEndpoints(lossGrid), sweepEndpoints(crashGrid)
		}
		// One point per (kind, rate); the shared fault-free reference runs
		// once and anchors both sweeps at x=0.
		type point struct {
			kind string
			rate float64
		}
		points := []point{{kind: "base"}}
		for _, l := range lg {
			if l > 0 {
				points = append(points, point{"loss", l})
			}
		}
		for _, c := range cg {
			if c > 0 {
				points = append(points, point{"crash", c})
			}
		}

		tr := reg.Trial(i)
		var lossS, crashS stats.Series
		for _, pt := range points {
			var fc *shard.FaultConfig
			label := "base"
			if pt.kind != "base" {
				fc = figRScaleFaultCfg(pt.kind, pt.rate, opt, horizon)
				label = fmt.Sprintf("%s%g", pt.kind, pt.rate*100)
			}
			cfg := shard.Config{
				Peers:  n,
				Shards: opt.Shards,
				// Same world seed for every point of a rung, so the curves
				// isolate the fault effect on one placement problem.
				Seed:      trialSeed(opt.Seed, i),
				HorizonMS: horizon,
				Faults:    fc,
			}
			sp := tr.StartSpan(fmt.Sprintf("n=%d/%s/gen-world", n, label), 0)
			e, err := shard.New(cfg)
			if err != nil {
				return nil, fmt.Errorf("figR-scale n=%d %s: %w", n, label, err)
			}
			sp.End(0)
			prefix := fmt.Sprintf("n=%d/%s/", e.Peers(), label)
			sp = tr.StartSpan(prefix+"simulate", 0)
			if err := e.Run(tr, prefix); err != nil {
				return nil, fmt.Errorf("figR-scale n=%d %s: %w", n, label, err)
			}
			sp.End(horizon)
			st := e.Stats()
			if pt.kind == "base" {
				lossS = stats.Series{Label: fmt.Sprintf("n=%d loss", e.Peers())}
				crashS = stats.Series{Label: fmt.Sprintf("n=%d crash", e.Peers())}
			} else {
				notes = append(notes, fmt.Sprintf(
					"n=%d %s: %d exchanges, %d lost, %d crashes, %d timeouts, %d evictions",
					st.Peers, label, st.Exchanges,
					st.Lost+st.LinkDownDrops+st.PartitionDrops, st.Crashes,
					st.ProbeTimeouts+st.CommitTimeouts, st.Evictions))
			}
			_, vs := tr.Series(prefix + "al_est_ms").Points()
			final := vs[len(vs)-1]
			switch pt.kind {
			case "base":
				lossS.Add(0, final)
				crashS.Add(0, final)
			case "loss":
				lossS.Add(pt.rate*100, final)
			case "crash":
				crashS.Add(pt.rate*100, final)
			}
		}
		series = append(series, lossS, crashS)
	}
	return &Result{
		ID:     "figR-scale",
		Title:  "Robustness at scale: final estimated AL vs fault intensity on the peer ladder",
		XLabel: "fault rate (%)",
		YLabel: "final estimated average latency (ms)",
		Series: series,
		Notes:  notes,
	}, nil
}
