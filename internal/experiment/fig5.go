package experiment

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Experiment time structure shared by the Fig. 5/6 time-series panels:
// the paper plots metrics "varied according to time" over the optimization
// run; we sample every 2 simulated minutes for 30 minutes (warm-up is
// MAX_INIT_TRIAL = 10 one-minute probes, so the horizon covers warm-up and
// the start of maintenance).
const (
	horizonMS = 30 * 60000
	stepMS    = 2 * 60000
)

// paperLookups is the per-sample lookup count ("the average lookup latency
// derived from 1,000 lookup operations").
const paperLookups = 1000

// gnutellaVariant is one curve of a Fig. 5 panel.
type gnutellaVariant struct {
	label  string
	n      int
	nhops  int
	random bool
	preset netsim.Config
}

// runGnutellaSeries produces the lookup-latency-vs-time curve of each
// variant, averaged over opt.Trials. When opt.Audit is set it also returns
// one audit-summary note per trial.
func runGnutellaSeries(opt Options, variants []gnutellaVariant) ([]stats.Series, []string, error) {
	alog := newAuditLog(opt.Audit)
	perTrial, err := forEachTrial(opt.Trials, func(trial int) ([]stats.Series, error) {
		tr := opt.Metrics.Trial(trial)
		out := make([]stats.Series, len(variants))
		for vi, v := range variants {
			// The environment seed is shared across a trial's variants:
			// panels that differ only in protocol parameters then start
			// from the identical world and overlay, as in the paper's
			// figures, while the protocol itself gets a per-variant stream.
			s, summary, err := oneGnutellaRun(opt, v, tr,
				trialSeed(opt.Seed, trial), trialSeed(opt.Seed, 1000+trial*100+vi))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", v.label, err)
			}
			alog.add(trial, summary)
			out[vi] = s
		}
		return out, nil
	})
	if err != nil {
		return nil, nil, err
	}
	notes := alog.notes(opt.Trials)
	if opt.ALMode != ALModeOff {
		notes = append(notes, fmt.Sprintf("al-mode=%s: eq. (3) AL series recorded as <variant>/al_ms in the metrics stream", opt.ALMode))
	}
	return mergeTrials(perTrial), notes, nil
}

// oneGnutellaRun simulates one variant and samples the average lookup
// latency over time. envSeed determines the physical world, overlay, and
// workload; runSeed drives only the protocol's randomness. The returned
// string is the audit summary ("" unless opt.Audit).
func oneGnutellaRun(opt Options, v gnutellaVariant, tr *obs.Trial, envSeed, runSeed uint64) (stats.Series, string, error) {
	prefix := v.label + "/"
	spGen := tr.StartSpan(prefix+"gen-network", 0)
	e, err := newEnv(opt, v.preset, envSeed)
	if err != nil {
		return stats.Series{}, "", err
	}
	e.instrumentOracle(tr, prefix)
	spGen.End(0)
	spBuild := tr.StartSpan(prefix+"build-overlay", 0)
	n := scaled(v.n, opt.Scale, 50)
	o, err := e.buildGnutella(n)
	if err != nil {
		return stats.Series{}, "", err
	}
	nLookups := scaled(paperLookups, opt.Scale, 100)
	lookups, err := workload.Uniform(o.AliveSlots(), nLookups, e.r.Split())
	if err != nil {
		return stats.Series{}, "", err
	}
	al, err := newALProbe(opt, o, runSeed, nLookups)
	if err != nil {
		return stats.Series{}, "", err
	}
	defer al.close()
	spBuild.End(0)

	cfg := core.DefaultConfig(core.PROPG)
	cfg.NHops = v.nhops
	cfg.RandomProbe = v.random
	if v.random {
		cfg.NHops = 0
	}
	p, err := core.New(o, cfg, rng.New(runSeed))
	if err != nil {
		return stats.Series{}, "", err
	}
	eng := event.New()
	var a *audit.Auditor
	if opt.Audit {
		a = newRunAuditor(o, p, eng)
	}
	hookExchangeTrace(tr, prefix, p)
	p.Start(eng)

	spSim := tr.StartSpan(prefix+"simulate", 0)
	series := stats.Series{Label: v.label}
	for t := 0.0; t <= horizonMS; t += stepMS {
		eng.RunUntil(event.Time(t))
		mean, _ := metrics.MeanLookupLatency(lookups, metrics.FloodEval(o, nil))
		series.Add(t/60000, mean)
		if _, err := al.measure(tr, prefix, t); err != nil {
			return stats.Series{}, "", err
		}
		if tr != nil {
			tr.Series(prefix+"lookup_latency_ms").Sample(t, mean)
			sampleProtocol(tr, prefix, t, p, o)
		}
	}
	spSim.End(horizonMS)
	recordCounterTotals(tr, prefix+"prop.", p.Counters)
	summary, err := finishAudit(a, v.label)
	if err != nil {
		return stats.Series{}, "", err
	}
	return series, summary, nil
}

func runFig5a(opt Options) (*Result, error) {
	n := 1000
	variants := []gnutellaVariant{
		{label: "n=1000, nhops=1", n: n, nhops: 1, preset: netsim.TSLarge()},
		{label: "n=1000, nhops=2", n: n, nhops: 2, preset: netsim.TSLarge()},
		{label: "n=1000, nhops=4", n: n, nhops: 4, preset: netsim.TSLarge()},
		{label: "n=1000, random", n: n, random: true, preset: netsim.TSLarge()},
	}
	series, auditNotes, err := runGnutellaSeries(opt, variants)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig5a",
		Title:  "Effectiveness of PROP-G in Gnutella-like environment, varying the TTL scale",
		XLabel: "time (min)",
		YLabel: "average lookup latency (ms)",
		Series: series,
		Notes: append([]string{
			"expected shape: nhops=1 improves least; nhops∈{2,4} and random nearly coincide",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		}, auditNotes...),
	}, nil
}

func runFig5b(opt Options) (*Result, error) {
	// ts-large has ~2400 stub hosts; the paper's largest size uses "almost
	// all physical nodes", so the sweep tops out at the full host set.
	sizes := []int{300, 500, 1000, 2400}
	variants := make([]gnutellaVariant, len(sizes))
	for i, n := range sizes {
		variants[i] = gnutellaVariant{
			label:  fmt.Sprintf("n=%d, nhops=2", n),
			n:      n,
			nhops:  2,
			preset: netsim.TSLarge(),
		}
	}
	series, auditNotes, err := runGnutellaSeries(opt, variants)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig5b",
		Title:  "Effectiveness of PROP-G in Gnutella-like environment, varying the system size",
		XLabel: "time (min)",
		YLabel: "average lookup latency (ms)",
		Series: series,
		Notes: append([]string{
			"expected shape: relative improvement shrinks slightly as n grows",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		}, auditNotes...),
	}, nil
}

func runFig5c(opt Options) (*Result, error) {
	variants := []gnutellaVariant{
		{label: "ts-large", n: 1000, nhops: 2, preset: netsim.TSLarge()},
		{label: "ts-small", n: 1000, nhops: 2, preset: netsim.TSSmall()},
	}
	series, auditNotes, err := runGnutellaSeries(opt, variants)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig5c",
		Title:  "Effectiveness of PROP-G in Gnutella-like environment, varying the physical topology",
		XLabel: "time (min)",
		YLabel: "average lookup latency (ms)",
		Series: series,
		Notes: append([]string{
			"expected shape: ts-large (Internet-like backbone) improves more than ts-small",
			fmt.Sprintf("scale=%.2f seed=%d trials=%d", opt.Scale, opt.Seed, opt.Trials),
		}, auditNotes...),
	}, nil
}
