package experiment

import (
	"strings"
	"testing"
)

// renderOf runs one experiment and returns its rendered table — the exact
// bytes a user of cmd/propsim would see, so byte-equality here is the
// strongest reproducibility statement the package makes.
func renderOf(t *testing.T, id string, opt Options) string {
	t.Helper()
	res, err := Run(id, opt)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var sb strings.Builder
	res.Render(&sb)
	return sb.String()
}

// TestExperimentsDeterministic is the determinism regression: every
// registered experiment, run twice with identical options, must render
// byte-identical output (trials run in parallel goroutines, so this also
// guards against scheduling-order leaks into results), while a different
// seed must change the output.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism sweep in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			opt := Options{Seed: 5, Trials: 2, Scale: 0.1}
			first := renderOf(t, id, opt)
			second := renderOf(t, id, opt)
			if first != second {
				t.Fatalf("same options rendered differently:\n--- first ---\n%s\n--- second ---\n%s", first, second)
			}
			other := renderOf(t, id, Options{Seed: 6, Trials: 2, Scale: 0.1})
			if first == other {
				t.Errorf("seeds 5 and 6 rendered identically — seed is not reaching the run")
			}
		})
	}
}
