//go:build !auditstrict

package audit

// Strict reports whether the auditstrict build tag is set. Without it,
// auditors constructed with interval <= 0 sample every DefaultInterval
// events, keeping full-scale runs fast.
const Strict = false

// DefaultInterval is the sampling interval used when Strict is off.
const DefaultInterval = 64
