// Package audit implements the online invariant auditor and the structured
// trace/replay subsystem of the PROP reproduction.
//
// The paper's correctness argument rests on invariants the protocols must
// maintain at every step: PROP-G exchanges leave the logical topology
// isomorphic (Theorem 2) and the slot↔host mapping a bijection; PROP-O
// preserves the degree sequence and connectivity (Theorem 1); every DHT
// lookup terminates at the key's owner; the event engine's clock is
// monotonic with FIFO tie-breaking. Example-based tests spot-check these;
// the auditor checks them *during* runs — continuously under the
// `auditstrict` build tag (or experiment.Options.Audit), or at a sampling
// interval so full-scale runs stay fast.
//
// Every observed event is also appended to a trace Recorder. When an
// invariant fails, the resulting Violation carries the recent trace window,
// and — because sessions are deterministic in their SessionConfig — the
// whole run can be replayed and shrunk to a minimal reproducer (see
// session.go and `proptrace record`/`replay`).
//
// The entry points are Auditor (online invariant evaluation over the
// event stream) and the trace artifacts (Record, ReadTrace, Replay,
// Shrink). DESIGN.md §6 lays out the testing strategy this implements;
// EXPERIMENTS.md ("Auditing & replay") shows the workflows.
package audit

import (
	"fmt"
	"strings"

	"repro/internal/event"
)

// Invariant is one named predicate over live system state. Check returns
// nil while the invariant holds.
type Invariant struct {
	Name  string
	Check func() error
}

// Check wraps a name and predicate as an Invariant — the adapter for the
// per-overlay CheckInvariants methods.
func Check(name string, f func() error) Invariant {
	return Invariant{Name: name, Check: f}
}

// Violation is one detected invariant failure, with enough trace context to
// reproduce it.
type Violation struct {
	// Name is the failing invariant.
	Name string
	// Err describes the failure.
	Err string
	// Seq is the trace sequence number at detection (the last observed
	// record).
	Seq uint64
	// Step is the engine step count at detection (0 if no engine attached).
	Step uint64
	// At is the simulated time of the last observed record.
	At float64
	// Window is the recent trace leading up to the failure.
	Window []Record
}

func (v Violation) String() string {
	return fmt.Sprintf("invariant %q violated at t=%.1fms (event %d, step %d): %s",
		v.Name, v.At, v.Seq, v.Step, v.Err)
}

// Auditor evaluates registered invariants against observed events and
// records the trace.
type Auditor struct {
	// MaxViolations bounds how many violations are retained (each carries a
	// trace window); further failures only increment Dropped. Default 16.
	MaxViolations int

	interval   int
	rec        *Recorder
	invs       []Invariant
	violations []Violation
	dropped    int
	checks     uint64
	lastAt     float64

	// Engine observation state.
	engSteps uint64
	engAt    event.Time
	engSeq   uint64
	engSeen  bool
}

// New returns an auditor evaluating invariants every interval observed
// events. interval <= 0 selects the build default: 1 (every event) under
// the auditstrict tag, DefaultInterval otherwise. window sizes the trace
// ring (<= 0 for DefaultWindow).
func New(interval, window int) *Auditor {
	if interval <= 0 {
		if Strict {
			interval = 1
		} else {
			interval = DefaultInterval
		}
	}
	return &Auditor{MaxViolations: 16, interval: interval, rec: NewRecorder(window)}
}

// Interval reports the effective sampling interval.
func (a *Auditor) Interval() int { return a.interval }

// Recorder exposes the trace recorder (e.g. to attach a Sink).
func (a *Auditor) Recorder() *Recorder { return a.rec }

// Register adds invariants to the evaluation set.
func (a *Auditor) Register(invs ...Invariant) {
	a.invs = append(a.invs, invs...)
}

// Observe appends rec to the trace and, on every interval-th event,
// evaluates all registered invariants. It returns the stamped record.
func (a *Auditor) Observe(rec Record) Record {
	stamped := a.rec.Append(rec)
	a.lastAt = stamped.At
	if a.rec.Total()%uint64(a.interval) == 0 {
		a.CheckNow()
	}
	return stamped
}

// CheckNow evaluates every registered invariant immediately, recording
// violations.
func (a *Auditor) CheckNow() {
	for _, inv := range a.invs {
		a.checks++
		if err := inv.Check(); err != nil {
			a.fail(inv.Name, err)
		}
	}
}

// Fail records an externally detected violation (e.g. a livesim lookup that
// terminated at the wrong owner) with the current trace window.
func (a *Auditor) Fail(name string, err error) {
	a.fail(name, err)
}

func (a *Auditor) fail(name string, err error) {
	if len(a.violations) >= a.MaxViolations {
		a.dropped++
		return
	}
	a.violations = append(a.violations, Violation{
		Name:   name,
		Err:    err.Error(),
		Seq:    a.rec.Total(),
		Step:   a.engSteps,
		At:     a.lastAt,
		Window: a.rec.Window(),
	})
}

// AttachEngine hooks the auditor into an event engine, verifying the
// engine's own invariants on every executed event: the clock never moves
// backwards, and equal-time events run in FIFO (scheduling) order. An
// existing observer is chained, not replaced.
func (a *Auditor) AttachEngine(e *event.Engine) {
	prev := e.Observer
	e.Observer = func(at event.Time, seq uint64) {
		a.engSteps++
		if a.engSeen {
			if at < a.engAt {
				a.fail("event-monotonic-clock",
					fmt.Errorf("event at t=%v executed after t=%v", at, a.engAt))
			} else if at == a.engAt && seq <= a.engSeq {
				a.fail("event-fifo-order",
					fmt.Errorf("equal-time events out of FIFO order: seq %d after %d at t=%v",
						seq, a.engSeq, at))
			}
		}
		a.engSeen = true
		a.engAt, a.engSeq = at, seq
		if prev != nil {
			prev(at, seq)
		}
	}
}

// Violations returns the recorded violations.
func (a *Auditor) Violations() []Violation { return a.violations }

// Dropped reports violations discarded beyond MaxViolations.
func (a *Auditor) Dropped() int { return a.dropped }

// Events reports how many records have been observed.
func (a *Auditor) Events() uint64 { return a.rec.Total() }

// Checks reports how many invariant evaluations have run.
func (a *Auditor) Checks() uint64 { return a.checks }

// EngineSteps reports how many engine events have been observed.
func (a *Auditor) EngineSteps() uint64 { return a.engSteps }

// Err returns the first violation as an error, or nil.
func (a *Auditor) Err() error {
	if len(a.violations) == 0 {
		return nil
	}
	return fmt.Errorf("audit: %s", a.violations[0])
}

// Summary renders a one-line audit report: event/check counts and the
// violation tally — the string experiments attach to Result.Notes.
func (a *Auditor) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d events, %d engine steps, %d checks (interval %d), %d invariants",
		a.Events(), a.engSteps, a.checks, a.interval, len(a.invs))
	if n := len(a.violations) + a.dropped; n > 0 {
		fmt.Fprintf(&b, ", %d VIOLATIONS (first: %s)", n, a.violations[0].String())
	} else {
		b.WriteString(", 0 violations")
	}
	return b.String()
}
