//go:build auditstrict

package audit

// Strict reports whether the auditstrict build tag is set. With it, every
// auditor constructed with interval <= 0 evaluates every registered
// invariant on every observed event:
//
//	go test -tags auditstrict -short ./...
const Strict = true

// DefaultInterval is unused when Strict is on (interval resolves to 1);
// kept so both build variants export the same surface.
const DefaultInterval = 1
