package audit

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/event"
)

func TestRecorderWindowAndSeq(t *testing.T) {
	rc := NewRecorder(4)
	for i := 0; i < 10; i++ {
		rec := rc.Append(Record{Kind: KindProbe, A: i})
		if rec.Seq != uint64(i) {
			t.Fatalf("record %d stamped seq %d", i, rec.Seq)
		}
	}
	if rc.Total() != 10 {
		t.Fatalf("Total = %d, want 10", rc.Total())
	}
	w := rc.Window()
	if len(w) != 4 {
		t.Fatalf("window size %d, want 4", len(w))
	}
	for i, rec := range w {
		if want := uint64(6 + i); rec.Seq != want {
			t.Fatalf("window[%d].Seq = %d, want %d (chronological order)", i, rec.Seq, want)
		}
	}
}

func TestSinkRoundTrip(t *testing.T) {
	cfg := SessionConfig{Seed: 7, Nodes: 10, Policy: "PROP-O", Minutes: 5, Preset: "small"}
	var buf bytes.Buffer
	sink := NewSink(&buf, cfg)
	recs := []Record{
		{Seq: 0, At: 1.5, Kind: KindProbe, A: 3, B: -1},
		{Seq: 1, At: 2.5, Kind: KindExchange, A: 3, B: 9, Aux: []int{2}, Val: 12.25},
		{Seq: 2, At: 3.5, Kind: KindLookup, A: 1, B: 4, Aux: []int{3, 4}, Val: 40},
	}
	for _, r := range recs {
		sink.Emit(r)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	hdr, got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if hdr.Format != TraceFormat || hdr.Version != TraceVersion {
		t.Fatalf("header = %+v", hdr)
	}
	if hdr.Config != cfg {
		t.Fatalf("config round-trip: got %+v, want %+v", hdr.Config, cfg)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !got[i].equal(recs[i]) {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestReadTraceRejectsForeignFormat(t *testing.T) {
	if _, _, err := ReadTrace(strings.NewReader(`{"format":"something-else","version":1}`)); err == nil {
		t.Fatal("foreign format accepted")
	}
	if _, _, err := ReadTrace(strings.NewReader(`{"format":"prop-audit-trace","version":99}`)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindProbe: "probe", KindExchange: "exchange",
		KindLookup: "lookup", KindJoin: "join", KindLeave: "leave", KindRewire: "rewire"} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestAuditorSamplingInterval(t *testing.T) {
	a := New(3, 0)
	n := 0
	a.Register(Check("counter", func() error { n++; return nil }))
	for i := 0; i < 9; i++ {
		a.Observe(Record{Kind: KindProbe, A: i})
	}
	if n != 3 {
		t.Fatalf("invariant ran %d times over 9 events at interval 3, want 3", n)
	}
	if a.Err() != nil {
		t.Fatalf("clean auditor reports %v", a.Err())
	}
}

func TestAuditorRecordsViolationWithWindow(t *testing.T) {
	a := New(1, 8)
	fail := false
	a.Register(Check("flaky", func() error {
		if fail {
			return fmt.Errorf("boom")
		}
		return nil
	}))
	for i := 0; i < 5; i++ {
		a.Observe(Record{At: float64(i), Kind: KindProbe, A: i})
	}
	fail = true
	a.Observe(Record{At: 5, Kind: KindExchange, A: 1, B: 2})
	vs := a.Violations()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}
	v := vs[0]
	if v.Name != "flaky" || v.Seq != 6 || v.At != 5 {
		t.Fatalf("violation = %+v", v)
	}
	if len(v.Window) != 6 {
		t.Fatalf("window carries %d records, want 6", len(v.Window))
	}
	if last := v.Window[len(v.Window)-1]; last.Kind != KindExchange {
		t.Fatalf("window tail = %+v, want the triggering exchange", last)
	}
	if !strings.Contains(a.Summary(), "VIOLATIONS") {
		t.Fatalf("Summary does not flag violations: %s", a.Summary())
	}
}

func TestAuditorMaxViolations(t *testing.T) {
	a := New(1, 0)
	a.MaxViolations = 2
	a.Register(Check("always", func() error { return fmt.Errorf("no") }))
	for i := 0; i < 5; i++ {
		a.Observe(Record{Kind: KindProbe})
	}
	if len(a.Violations()) != 2 || a.Dropped() != 3 {
		t.Fatalf("retained %d, dropped %d; want 2 and 3", len(a.Violations()), a.Dropped())
	}
}

func TestEngineInvariantsOnRealEngine(t *testing.T) {
	a := New(1, 0)
	eng := event.New()
	a.AttachEngine(eng)
	for i := 0; i < 10; i++ {
		d := event.Time(10 - i) // schedule in reverse time order
		eng.After(d, func(*event.Engine) {})
		eng.After(d, func(*event.Engine) {}) // equal-time pair exercises FIFO
	}
	eng.Run(0)
	if a.EngineSteps() != 20 {
		t.Fatalf("observed %d engine steps, want 20", a.EngineSteps())
	}
	if err := a.Err(); err != nil {
		t.Fatalf("correct engine flagged: %v", err)
	}
}

func TestEngineInvariantsCatchMisbehavior(t *testing.T) {
	a := New(1, 0)
	eng := event.New()
	a.AttachEngine(eng)
	// Drive the observer directly with a stream a broken engine would
	// produce: time going backwards, then FIFO order inverted.
	eng.Observer(event.Time(5), 1)
	eng.Observer(event.Time(3), 2)
	eng.Observer(event.Time(3), 7)
	eng.Observer(event.Time(3), 6)
	names := map[string]bool{}
	for _, v := range a.Violations() {
		names[v.Name] = true
	}
	if !names["event-monotonic-clock"] {
		t.Fatalf("backwards clock not caught; violations: %v", a.Violations())
	}
	if !names["event-fifo-order"] {
		t.Fatalf("FIFO inversion not caught; violations: %v", a.Violations())
	}
}

func TestObserverChaining(t *testing.T) {
	eng := event.New()
	var chained int
	eng.Observer = func(event.Time, uint64) { chained++ }
	a := New(1, 0)
	a.AttachEngine(eng)
	eng.After(1, func(*event.Engine) {})
	eng.Run(0)
	if chained != 1 {
		t.Fatalf("pre-existing observer called %d times, want 1", chained)
	}
}

func TestLookupTerminationInvariant(t *testing.T) {
	owner := func(key uint32) int { return int(key % 4) }
	good := func(src int, key uint32) (int, int, error) { return int(key % 4), 2, nil }
	inv := LookupTermination("dht-lookup", owner, good, []int{0, 1}, []uint32{5, 6}, 3)
	if err := inv.Check(); err != nil {
		t.Fatalf("correct lookup flagged: %v", err)
	}
	wrong := func(src int, key uint32) (int, int, error) { return 0, 2, nil }
	if err := LookupTermination("dht-lookup", owner, wrong, []int{0}, []uint32{5}, 3).Check(); err == nil {
		t.Fatal("wrong-owner lookup not caught")
	}
	slow := func(src int, key uint32) (int, int, error) { return int(key % 4), 99, nil }
	if err := LookupTermination("dht-lookup", owner, slow, []int{0}, []uint32{5}, 3).Check(); err == nil {
		t.Fatal("hop-bound overrun not caught")
	}
}

func TestSessionConfigValidation(t *testing.T) {
	if _, err := RunSession(SessionConfig{Policy: "PROP-X"}, nil); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := RunSession(SessionConfig{Preset: "huge"}, nil); err == nil {
		t.Fatal("bad preset accepted")
	}
}

// cleanSession is a small session every invariant should hold on.
func cleanSession(policy string) SessionConfig {
	return SessionConfig{Seed: 11, Nodes: 24, Policy: policy, Minutes: 8, Interval: 1}
}

func TestCleanSessionsPassStrictAudit(t *testing.T) {
	for _, policy := range []string{"PROP-G", "PROP-O"} {
		t.Run(policy, func(t *testing.T) {
			a, err := RunSession(cleanSession(policy), nil)
			if err != nil {
				t.Fatalf("RunSession: %v", err)
			}
			if err := a.Err(); err != nil {
				t.Fatalf("clean %s session violates invariants: %v", policy, err)
			}
			if a.Events() == 0 || a.Checks() == 0 || a.EngineSteps() == 0 {
				t.Fatalf("audit saw nothing: %s", a.Summary())
			}
		})
	}
}

// TestMutationIsCaughtWithReplayableTrace is the acceptance test for the
// whole subsystem: a deliberately broken PROP-G exchange (a ghost logical
// edge added behind the protocol's back) must be caught by the auditor, the
// recorded trace must replay deterministically, and the failure must shrink
// to a bounded-event reproducer.
func TestMutationIsCaughtWithReplayableTrace(t *testing.T) {
	cfg := cleanSession("PROP-G")
	cfg.Fault = "ghost-edge"

	var buf bytes.Buffer
	sink := NewSink(&buf, cfg)
	a, err := RunSession(cfg, sink.Emit)
	if err != nil {
		t.Fatalf("RunSession: %v", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("sink: %v", err)
	}

	v := findViolation(a.Violations(), "topology-frozen")
	if v == nil {
		t.Fatalf("ghost edge not caught by topology-frozen; summary: %s", a.Summary())
	}
	if findViolation(a.Violations(), "degree-sequence") == nil {
		t.Fatalf("ghost edge not caught by degree-sequence; summary: %s", a.Summary())
	}
	if len(v.Window) == 0 {
		t.Fatal("violation carries no trace window")
	}

	// The trace file must replay bit-for-bit.
	hdr, recs, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if hdr.Config != cfg {
		t.Fatalf("trace header config %+v, want %+v", hdr.Config, cfg)
	}
	if uint64(len(recs)) != a.Events() {
		t.Fatalf("trace holds %d records, auditor observed %d", len(recs), a.Events())
	}
	if err := Replay(hdr.Config, recs); err != nil {
		t.Fatalf("replay of recorded trace diverged: %v", err)
	}

	// And the failure must shrink to a bounded-event reproducer.
	shrunk, sv, err := Shrink(cfg, "topology-frozen")
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if sv.Name != "topology-frozen" {
		t.Fatalf("shrunk violation is %q", sv.Name)
	}
	if shrunk.MaxEvents == 0 || shrunk.MaxEvents > a.EngineSteps() {
		t.Fatalf("shrunk bound %d not in (0, %d]", shrunk.MaxEvents, a.EngineSteps())
	}
	// The shrunk config must still reproduce on a fresh run.
	ra, err := RunSession(shrunk, nil)
	if err != nil {
		t.Fatalf("shrunk rerun: %v", err)
	}
	if findViolation(ra.Violations(), "topology-frozen") == nil {
		t.Fatalf("shrunk config does not reproduce; summary: %s", ra.Summary())
	}
}

func TestDropEdgeFaultCaught(t *testing.T) {
	cfg := cleanSession("PROP-O")
	cfg.Fault = "drop-edge"
	a, err := RunSession(cfg, nil)
	if err != nil {
		t.Fatalf("RunSession: %v", err)
	}
	if findViolation(a.Violations(), "degree-sequence") == nil {
		t.Fatalf("dropped edge not caught; summary: %s", a.Summary())
	}
}

func TestReplayDetectsTamperedTrace(t *testing.T) {
	cfg := cleanSession("PROP-G")
	var recs []Record
	if _, err := RunSession(cfg, func(r Record) { recs = append(recs, r) }); err != nil {
		t.Fatalf("RunSession: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("session produced no records")
	}
	if err := Replay(cfg, recs); err != nil {
		t.Fatalf("identical replay diverged: %v", err)
	}
	tampered := append([]Record(nil), recs...)
	tampered[len(tampered)/2].A ^= 1
	if err := Replay(cfg, tampered); err == nil {
		t.Fatal("tampered trace replayed cleanly")
	}
	if err := Replay(cfg, recs[:len(recs)-1]); err == nil {
		t.Fatal("truncated trace replayed cleanly")
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	run := func(seed uint64) []Record {
		cfg := cleanSession("PROP-G")
		cfg.Seed = seed
		var recs []Record
		if _, err := RunSession(cfg, func(r Record) { recs = append(recs, r) }); err != nil {
			t.Fatalf("RunSession: %v", err)
		}
		return recs
	}
	a, b := run(1), run(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if !a[i].equal(b[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}
