// Structured trace recording. Every protocol-level event — probe, exchange,
// lookup, churn, rewire — is captured as one compact Record. The Recorder
// keeps a bounded in-memory window (enough context to explain a violation)
// and optionally streams the full sequence to a sink, which is how
// `proptrace record` produces a replayable trace file.
package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Kind classifies a trace record.
type Kind uint8

const (
	// KindProbe is one PROP timer firing (core.ProbeEvent).
	KindProbe Kind = iota
	// KindExchange is one executed PROP peer-exchange (core.ExchangeEvent).
	KindExchange
	// KindLookup is one completed DHT lookup.
	KindLookup
	// KindJoin is one churn arrival.
	KindJoin
	// KindLeave is one churn departure.
	KindLeave
	// KindRewire is one LTM link cut or add.
	KindRewire
)

var kindNames = [...]string{"probe", "exchange", "lookup", "join", "leave", "rewire"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Record is one traced event. The field meaning depends on Kind:
//
//	probe:    A = prober slot, B = walk partner (-1 on walk failure),
//	          Val = 1 if the probe ended in an exchange
//	exchange: A, B = exchanged slots, Val = Var, Aux = [moved]
//	lookup:   A = source slot, B = terminal slot, Aux = [hops, wantOwner],
//	          Val = latency
//	join:     A = new slot, B = host
//	leave:    A = departed slot, B = released host
//	rewire:   A, B = link endpoints, Val = 1 for add, 0 for cut
type Record struct {
	// Seq is the record's position in the trace, assigned by the Recorder.
	Seq uint64 `json:"q"`
	// At is the simulated time in milliseconds.
	At float64 `json:"t"`
	// Kind classifies the event.
	Kind Kind `json:"k"`
	// A and B are the participant IDs (see Kind docs).
	A int `json:"a"`
	B int `json:"b"`
	// Aux carries kind-specific integer payload.
	Aux []int `json:"x,omitempty"`
	// Val carries kind-specific scalar payload (Var, latency, ...).
	Val float64 `json:"v,omitempty"`
}

// equal reports whether two records describe the identical event.
func (r Record) equal(o Record) bool {
	if r.Seq != o.Seq || r.At != o.At || r.Kind != o.Kind ||
		r.A != o.A || r.B != o.B || r.Val != o.Val || len(r.Aux) != len(o.Aux) {
		return false
	}
	for i := range r.Aux {
		if r.Aux[i] != o.Aux[i] {
			return false
		}
	}
	return true
}

// DefaultWindow is the Recorder's default in-memory window size.
const DefaultWindow = 256

// Recorder accumulates trace records: a bounded ring of the most recent
// ones, a running total, and an optional Emit callback that observes the
// full stream (used to write trace files).
type Recorder struct {
	// Emit, if non-nil, receives every appended record.
	Emit func(Record)

	capacity int
	buf      []Record
	start    int
	total    uint64
}

// NewRecorder returns a recorder keeping the last capacity records
// (DefaultWindow if capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultWindow
	}
	return &Recorder{capacity: capacity}
}

// Append stamps rec with the next sequence number, stores it in the window,
// and forwards it to Emit. It returns the stamped record.
func (rc *Recorder) Append(rec Record) Record {
	rec.Seq = rc.total
	rc.total++
	if len(rc.buf) < rc.capacity {
		rc.buf = append(rc.buf, rec)
	} else {
		rc.buf[rc.start] = rec
		rc.start = (rc.start + 1) % rc.capacity
	}
	if rc.Emit != nil {
		rc.Emit(rec)
	}
	return rec
}

// Window returns the retained records in chronological order (a copy).
func (rc *Recorder) Window() []Record {
	out := make([]Record, 0, len(rc.buf))
	for i := 0; i < len(rc.buf); i++ {
		out = append(out, rc.buf[(rc.start+i)%len(rc.buf)])
	}
	return out
}

// Total reports how many records have been appended overall.
func (rc *Recorder) Total() uint64 { return rc.total }

// TraceFormat identifies the trace file format.
const TraceFormat = "prop-audit-trace"

// TraceVersion is the current trace file version.
const TraceVersion = 1

// Header is the first line of a trace file: it carries the full session
// configuration, which is what makes the trace deterministically replayable.
type Header struct {
	Format  string        `json:"format"`
	Version int           `json:"version"`
	Config  SessionConfig `json:"config"`
}

// Sink streams a trace (header + records) as JSON lines.
type Sink struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewSink writes the header line for cfg and returns a sink whose Emit
// method appends records.
func NewSink(w io.Writer, cfg SessionConfig) *Sink {
	bw := bufio.NewWriter(w)
	s := &Sink{w: bw, enc: json.NewEncoder(bw)}
	s.err = s.enc.Encode(Header{Format: TraceFormat, Version: TraceVersion, Config: cfg})
	return s
}

// Emit appends one record line. Errors are sticky; check Close.
func (s *Sink) Emit(rec Record) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(rec)
}

// Close flushes the sink and returns the first write error.
func (s *Sink) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// ReadTrace parses a trace written by Sink: the header line followed by one
// record per line.
func ReadTrace(r io.Reader) (Header, []Record, error) {
	dec := json.NewDecoder(r)
	var hdr Header
	if err := dec.Decode(&hdr); err != nil {
		return hdr, nil, fmt.Errorf("audit: reading trace header: %w", err)
	}
	if hdr.Format != TraceFormat {
		return hdr, nil, fmt.Errorf("audit: not a %s file (format %q)", TraceFormat, hdr.Format)
	}
	if hdr.Version != TraceVersion {
		return hdr, nil, fmt.Errorf("audit: trace version %d, want %d", hdr.Version, TraceVersion)
	}
	var recs []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return hdr, recs, nil
		} else if err != nil {
			return hdr, recs, fmt.Errorf("audit: reading trace record %d: %w", len(recs), err)
		}
		recs = append(recs, rec)
	}
}
