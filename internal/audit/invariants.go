// Invariant constructors over the shared overlay model. DHT-specific
// invariants (Chord ring order, CAN tiling, Pastry/Kademlia table
// well-formedness) live as CheckInvariants methods in their own packages —
// this package must not import them, because their tests import this
// package — and are adapted via Check.
package audit

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/overlay"
)

// OverlayBijection checks the slot↔host mapping of o: every live slot backed
// by a distinct host, reverse map exact, dead slots detached.
func OverlayBijection(o *overlay.Overlay) Invariant {
	return Check("overlay-bijection", o.CheckInvariants)
}

// OverlayConnected checks that the live part of o's logical graph stays
// connected — the executable form of Theorem 1's connectivity persistence.
func OverlayConnected(o *overlay.Overlay) Invariant {
	return Check("overlay-connected", func() error {
		if !o.Connected() {
			return fmt.Errorf("live logical graph is disconnected")
		}
		return nil
	})
}

// DegreeSequencePreserved snapshots o's logical degree sequence at
// construction time and checks it never changes — PROP-O trades m neighbors
// for m neighbors, so the sorted degree multiset is conserved.
func DegreeSequencePreserved(o *overlay.Overlay) Invariant {
	want := o.Logical.DegreeSequence()
	return Check("degree-sequence", func() error {
		got := o.Logical.DegreeSequence()
		if len(got) != len(want) {
			return fmt.Errorf("degree sequence length changed: %d -> %d", len(want), len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("degree sequence changed at rank %d: %d -> %d", i, want[i], got[i])
			}
		}
		return nil
	})
}

// TopologyFrozen snapshots o's logical graph at construction time and checks
// it stays identical (isomorphic under the identity relabeling) — PROP-G
// swaps hosts, never edges, so under pure PROP-G the slot graph is frozen
// (Theorem 2 with phi = id).
func TopologyFrozen(o *overlay.Overlay) Invariant {
	snap := o.Logical.Clone()
	phi := make([]int, snap.NumVertices())
	for i := range phi {
		phi[i] = i
	}
	return Check("topology-frozen", func() error {
		if o.Logical.NumVertices() != snap.NumVertices() {
			return fmt.Errorf("vertex count changed: %d -> %d", snap.NumVertices(), o.Logical.NumVertices())
		}
		return graph.IsomorphicUnderMapping(snap, o.Logical, phi)
	})
}

// LookupTermination builds an invariant that spot-checks DHT lookups: for
// each (src, key) pair, lookup must terminate at owner(key) within maxHops
// hops. owner is the ground-truth ownership function; lookup performs the
// routed lookup and reports the terminal slot and hop count.
func LookupTermination(name string, owner func(key uint32) int,
	lookup func(src int, key uint32) (slot, hops int, err error),
	srcs []int, keys []uint32, maxHops int) Invariant {
	return Check(name, func() error {
		for _, src := range srcs {
			for _, key := range keys {
				want := owner(key)
				got, hops, err := lookup(src, key)
				if err != nil {
					return fmt.Errorf("lookup(%d, %#x): %w", src, key, err)
				}
				if got != want {
					return fmt.Errorf("lookup(%d, %#x) terminated at slot %d, owner is %d", src, key, got, want)
				}
				if hops > maxHops {
					return fmt.Errorf("lookup(%d, %#x) took %d hops, bound is %d", src, key, hops, maxHops)
				}
			}
		}
		return nil
	})
}
