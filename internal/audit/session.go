// Deterministic audited sessions. A SessionConfig fully determines one
// run — physical network, overlay, protocol, schedule — so a recorded trace
// can be replayed bit-for-bit and a failing run can be shrunk to the
// smallest event prefix that still reproduces its violation. This is the
// engine behind `proptrace record` and `proptrace replay`.
package audit

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gnutella"
	"repro/internal/netsim"
	"repro/internal/overlay"
	"repro/internal/rng"
)

// SessionConfig determines one audited PROP session. Together with the trace
// format version it is everything a replay needs; it travels in the trace
// file Header.
type SessionConfig struct {
	// Seed drives every random decision of the session.
	Seed uint64 `json:"seed"`
	// Nodes is the overlay size (default 48).
	Nodes int `json:"nodes"`
	// Policy is "PROP-G" (default) or "PROP-O".
	Policy string `json:"policy"`
	// NHops is the probing-walk TTL (default 2).
	NHops int `json:"nhops"`
	// M is the PROP-O exchange size; 0 means the overlay's minimum degree.
	M int `json:"m,omitempty"`
	// Minutes is the simulated duration (default 30).
	Minutes float64 `json:"minutes"`
	// Preset selects the physical network: "small" (default) or "large".
	Preset string `json:"preset"`
	// Interval is the auditor sampling interval; <= 0 selects the build
	// default (every event under -tags auditstrict).
	Interval int `json:"interval,omitempty"`
	// MaxEvents, when positive, bounds the run to that many engine steps
	// instead of the Minutes deadline — the shrinking knob.
	MaxEvents uint64 `json:"max_events,omitempty"`
	// Fault injects a deliberate invariant violation: "" (none),
	// "ghost-edge" (silently add a logical edge, breaking the frozen
	// PROP-G topology and the degree sequence), or "drop-edge" (silently
	// remove one, additionally risking disconnection).
	Fault string `json:"fault,omitempty"`
	// FaultAfter is how many exchanges run cleanly before the fault fires
	// (default 0: corrupt the first exchange).
	FaultAfter int `json:"fault_after,omitempty"`
}

// withDefaults fills unset fields. Replay depends on this being applied
// identically on record and replay, so it is part of the trace contract.
func (c SessionConfig) withDefaults() SessionConfig {
	if c.Nodes == 0 {
		c.Nodes = 48
	}
	if c.Policy == "" {
		c.Policy = core.PROPG.String()
	}
	if c.NHops == 0 {
		c.NHops = 2
	}
	if c.Minutes == 0 {
		c.Minutes = 30
	}
	if c.Preset == "" {
		c.Preset = "small"
	}
	return c
}

// policy parses the Policy field.
func (c SessionConfig) policy() (core.Policy, error) {
	switch strings.ToUpper(strings.ReplaceAll(c.Policy, "-", "")) {
	case "PROPG", "G":
		return core.PROPG, nil
	case "PROPO", "O":
		return core.PROPO, nil
	}
	return 0, fmt.Errorf("audit: unknown policy %q (want PROP-G or PROP-O)", c.Policy)
}

// preset parses the Preset field.
func (c SessionConfig) preset() (netsim.Config, error) {
	switch strings.ToLower(c.Preset) {
	case "small":
		return netsim.TSSmall(), nil
	case "large":
		return netsim.TSLarge(), nil
	}
	return netsim.Config{}, fmt.Errorf("audit: unknown preset %q (want small or large)", c.Preset)
}

// RunSession executes one audited session described by cfg. Every traced
// record is forwarded to emit (which may be nil); the returned auditor holds
// the violation report. A final invariant evaluation always runs after the
// last event, so a corrupted run is flagged even if the sampling interval
// skipped the corrupting event.
func RunSession(cfg SessionConfig, emit func(Record)) (*Auditor, error) {
	cfg = cfg.withDefaults()
	pol, err := cfg.policy()
	if err != nil {
		return nil, err
	}
	preset, err := cfg.preset()
	if err != nil {
		return nil, err
	}

	r := rng.New(cfg.Seed)
	net, err := netsim.Generate(preset, r)
	if err != nil {
		return nil, err
	}
	oracle := netsim.NewOracle(net)
	hosts := append([]int(nil), net.StubHosts...)
	r.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	if cfg.Nodes < len(hosts) {
		hosts = hosts[:cfg.Nodes]
	}
	o, err := gnutella.Build(hosts, gnutella.DefaultConfig(), oracle.Latency, r)
	if err != nil {
		return nil, err
	}

	ccfg := core.DefaultConfig(pol)
	ccfg.NHops = cfg.NHops
	ccfg.M = cfg.M
	prot, err := core.New(o, ccfg, r)
	if err != nil {
		return nil, err
	}

	a := New(cfg.Interval, 0)
	a.Recorder().Emit = emit
	a.Register(OverlayBijection(o), OverlayConnected(o), DegreeSequencePreserved(o))
	if pol == core.PROPG {
		a.Register(TopologyFrozen(o))
	}

	eng := event.New()
	a.AttachEngine(eng)

	exchanges := 0
	prot.Trace = func(ev core.ExchangeEvent) {
		if cfg.Fault != "" && exchanges == cfg.FaultAfter {
			injectFault(o, cfg.Fault, ev)
		}
		exchanges++
		a.Observe(Record{At: float64(ev.At), Kind: KindExchange,
			A: ev.U, B: ev.V, Aux: []int{ev.Moved}, Val: ev.Var})
	}
	prot.Probe = func(pe core.ProbeEvent) {
		exch := 0.0
		if pe.Exchanged {
			exch = 1
		}
		a.Observe(Record{At: float64(pe.At), Kind: KindProbe,
			A: pe.U, B: pe.Partner, Val: exch})
	}

	prot.Start(eng)
	if cfg.MaxEvents > 0 {
		for eng.Steps() < cfg.MaxEvents && eng.Step() {
		}
	} else {
		eng.RunUntil(event.Time(cfg.Minutes * 60_000))
	}
	a.CheckNow()
	return a, nil
}

// injectFault corrupts the overlay behind the protocol's back — the mutation
// test's deliberately broken exchange. Both faults silently edit the logical
// graph, exactly the class of bug (a routing-table rewrite missed during a
// PROP-G identifier swap) the topology invariants exist to catch.
func injectFault(o *overlay.Overlay, fault string, ev core.ExchangeEvent) {
	switch fault {
	case "ghost-edge":
		alive := o.AliveSlots()
		for i := 0; i < len(alive); i++ {
			for j := i + 1; j < len(alive); j++ {
				if !o.Logical.HasEdge(alive[i], alive[j]) {
					o.Logical.MustAddEdge(alive[i], alive[j], 1)
					return
				}
			}
		}
	case "drop-edge":
		for _, nb := range o.Neighbors(ev.U) {
			o.RemoveEdge(ev.U, nb)
			return
		}
	default:
		panic(fmt.Sprintf("audit: unknown fault %q", fault))
	}
}

// Replay re-runs cfg and compares the produced trace against want. It
// returns nil when the streams are identical, and otherwise an error naming
// the first divergent record — the determinism check behind
// `proptrace replay`.
func Replay(cfg SessionConfig, want []Record) error {
	var got []Record
	if _, err := RunSession(cfg, func(rec Record) { got = append(got, rec) }); err != nil {
		return err
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if !got[i].equal(want[i]) {
			return fmt.Errorf("audit: replay diverged at record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if len(got) != len(want) {
		return fmt.Errorf("audit: replay produced %d records, trace has %d", len(got), len(want))
	}
	return nil
}

// Shrink minimizes a failing session: it runs cfg, finds its first violation
// named name (any violation if name is empty), and binary-searches the
// smallest MaxEvents bound that still reproduces a violation of the same
// name. It returns the shrunk config and the violation observed at that
// bound. Shrinking a clean session is an error.
func Shrink(cfg SessionConfig, name string) (SessionConfig, *Violation, error) {
	cfg = cfg.withDefaults()
	full, err := RunSession(cfg, nil)
	if err != nil {
		return cfg, nil, err
	}
	target := findViolation(full.Violations(), name)
	if target == nil {
		return cfg, nil, fmt.Errorf("audit: no violation %sto shrink", quoted(name))
	}

	reproduce := func(bound uint64) *Violation {
		c := cfg
		c.MaxEvents = bound
		a, err := RunSession(c, nil)
		if err != nil {
			return nil
		}
		return findViolation(a.Violations(), target.Name)
	}

	// The violation first becomes observable at the engine step that ran the
	// corrupting event; every larger bound also reproduces it (RunSession's
	// final CheckNow sees the corrupted state). Binary search the boundary.
	lo, hi := uint64(1), target.Step
	if hi == 0 {
		hi = full.EngineSteps()
	}
	best := reproduce(hi)
	if best == nil {
		return cfg, nil, fmt.Errorf("audit: violation %q did not reproduce at step bound %d", target.Name, hi)
	}
	bestBound := hi
	for lo < hi {
		mid := lo + (hi-lo)/2
		if v := reproduce(mid); v != nil {
			best, bestBound, hi = v, mid, mid
		} else {
			lo = mid + 1
		}
	}
	cfg.MaxEvents = bestBound
	return cfg, best, nil
}

// findViolation returns the first violation matching name ("" matches any).
func findViolation(vs []Violation, name string) *Violation {
	for i := range vs {
		if name == "" || vs[i].Name == name {
			return &vs[i]
		}
	}
	return nil
}

func quoted(name string) string {
	if name == "" {
		return ""
	}
	return fmt.Sprintf("%q ", name)
}
