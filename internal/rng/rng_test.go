package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: generators with equal seeds diverged: %d != %d", i, av, bv)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs out of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("seed 0 generator looks degenerate: only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	equal := 0
	for i := 0; i < 200; i++ {
		if c1.Uint64() == c2.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("sibling splits produced %d identical outputs", equal)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expectation %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean %.4f far from 1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	sum, sumSq := 0.0, 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean %.4f far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("NormFloat64 variance %.4f far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size%50) + 1
		r := New(seed)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i
		}
		r.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		seen := make([]bool, n)
		for _, v := range vals {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(23)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / draws; math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit fraction %.4f", frac)
	}
	if r.Bool(0) {
		// p=0 can essentially never be true; one draw suffices as a smoke check.
		t.Fatal("Bool(0) returned true")
	}
}

func TestPickWeighted(t *testing.T) {
	r := New(29)
	counts := make([]int, 3)
	weights := []float64{1, 2, 7}
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.Pick(weights)]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("weight bucket %d: count %d, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestPickPanics(t *testing.T) {
	cases := [][]float64{{0, 0}, {-1, 2}, {math.NaN()}}
	for _, ws := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pick(%v) did not panic", ws)
				}
			}()
			New(1).Pick(ws)
		}()
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", -3: "-3", 1234: "1234", -987654: "-987654"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
