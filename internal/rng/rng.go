// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Determinism matters here: every experiment in the paper reproduction is
// identified by a seed, and parallel trials must not share generator state.
// The implementation is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 so that small or correlated seeds still produce well-mixed
// state. Each Rand is a plain value type; Split derives statistically
// independent child generators so worker goroutines never contend on a lock
// the way math/rand's global source does.
//
// Key type: Rand (value semantics, Split for parallel workers). See
// DESIGN.md §1.
package rng

import "math"

// Rand is a deterministic xoshiro256** generator. The zero value is not
// usable; obtain one with New or Split.
type Rand struct {
	s [4]uint64
}

// splitMix64 advances x and returns the next SplitMix64 output. It is the
// recommended seeding function for the xoshiro family.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		r.s[i] = splitMix64(&x)
	}
	// xoshiro must not start in the all-zero state; SplitMix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is statistically independent
// of the parent's. The parent advances, so successive Splits differ.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n // == (2^64 - n) mod n
	for {
		v := r.Uint64()
		if hi, lo := mul64(v, n); lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1,
// via inversion. Callers scale by the desired mean.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Pick returns a uniformly random element index weighted by weights.
// The weights must be non-negative and not all zero; it panics otherwise.
func (r *Rand) Pick(weights []float64) int {
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: Pick given negative or NaN weight at index " + itoa(i))
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Pick given all-zero weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// itoa is a tiny strconv.Itoa clone to keep the dependency surface minimal
// in this hot package.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
