package core

// White-box tests for the protocol internals: the neighborQ semantics of
// §3.2 (priority selection, demotion to the tail, reconciliation after
// topology changes) and the trade-selection constraints of §3.1.

import (
	"math"
	"testing"

	"repro/internal/overlay"
	"repro/internal/rng"
)

func tinyOverlay(t *testing.T, hosts []int) *overlay.Overlay {
	t.Helper()
	o, err := overlay.New(hosts, func(a, b int) float64 { return math.Abs(float64(a - b)) })
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestQueueInitIsPermutationOfNeighbors(t *testing.T) {
	o := tinyOverlay(t, []int{0, 10, 20, 30, 40})
	for _, v := range []int{1, 2, 3, 4} {
		if err := o.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	p, err := New(o, DefaultConfig(PROPG), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	st := &nodeState{slot: 0}
	p.initQueue(st)
	if len(st.queue) != 4 {
		t.Fatalf("queue length %d", len(st.queue))
	}
	seen := map[int]bool{}
	for _, qe := range st.queue {
		if qe.prio != 0 {
			t.Fatalf("initial priority %d != 0", qe.prio)
		}
		if seen[qe.neighbor] {
			t.Fatalf("neighbor %d queued twice", qe.neighbor)
		}
		seen[qe.neighbor] = true
	}
	for _, v := range []int{1, 2, 3, 4} {
		if !seen[v] {
			t.Fatalf("neighbor %d missing from queue", v)
		}
	}
}

func TestPickFirstHopPrefersLowPriorityThenFIFO(t *testing.T) {
	st := &nodeState{
		queue: []queueEntry{
			{neighbor: 7, prio: 2, seq: 0},
			{neighbor: 8, prio: 1, seq: 5},
			{neighbor: 9, prio: 1, seq: 3},
		},
	}
	idx := st.pickFirstHop()
	if st.queue[idx].neighbor != 9 {
		t.Fatalf("picked %d, want 9 (lowest prio, earliest seq)", st.queue[idx].neighbor)
	}
	empty := &nodeState{}
	if empty.pickFirstHop() != -1 {
		t.Fatal("empty queue should pick -1")
	}
}

func TestMaxPrio(t *testing.T) {
	st := &nodeState{queue: []queueEntry{{prio: -3}, {prio: 4}, {prio: 0}}}
	if st.maxPrio() != 4 {
		t.Fatalf("maxPrio = %d", st.maxPrio())
	}
	if (&nodeState{}).maxPrio() != 0 {
		t.Fatal("empty maxPrio != 0")
	}
}

func TestReconcileQueueDropsStaleAddsFresh(t *testing.T) {
	o := tinyOverlay(t, []int{0, 10, 20, 30})
	o.AddEdge(0, 1)
	o.AddEdge(0, 2)
	p, err := New(o, DefaultConfig(PROPG), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	st := &nodeState{slot: 0}
	p.initQueue(st)
	// Bump priorities so the front insertion is observable.
	for i := range st.queue {
		st.queue[i].prio = 5
	}
	// Topology change: drop 1, add 3.
	o.RemoveEdge(0, 1)
	o.AddEdge(0, 3)
	p.reconcileQueue(st)
	var neighbors []int
	minPrio := 1 << 30
	var freshPrio int
	for _, qe := range st.queue {
		neighbors = append(neighbors, qe.neighbor)
		if qe.neighbor == 3 {
			freshPrio = qe.prio
		}
		if qe.prio < minPrio {
			minPrio = qe.prio
		}
	}
	if len(neighbors) != 2 {
		t.Fatalf("queue = %v", neighbors)
	}
	for _, nb := range neighbors {
		if nb == 1 {
			t.Fatal("stale neighbor 1 kept")
		}
	}
	// The fresh neighbor must sit at the queue front (strictly lowest
	// priority — §3.2's churn rule).
	if freshPrio != minPrio || freshPrio >= 5 {
		t.Fatalf("fresh neighbor priority %d not at front (min %d)", freshPrio, minPrio)
	}
}

func TestSelectTradeConstraints(t *testing.T) {
	// u=0 neighbors {2,3,4}; v=1 neighbors {4,5,6}; path = [0,3,1] so 3 is
	// banned for u; 4 is adjacent to both so banned both ways.
	o := tinyOverlay(t, []int{0, 100, 20, 30, 40, 50, 60})
	edges := [][2]int{{0, 2}, {0, 3}, {0, 4}, {1, 4}, {1, 5}, {1, 6}, {0, 1}}
	for _, e := range edges {
		if err := o.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig(PROPO)
	cfg.M = 3
	p, err := New(o, cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	give, take := p.selectTrade(0, 1, []int{0, 3, 1})
	// Eligible for u: {2} (3 on path, 4 adjacent to v). For v: {5,6}
	// (4 adjacent to u). Equal sizes => m_eff = 1.
	if len(give) != 1 || len(take) != 1 {
		t.Fatalf("trade sizes: give=%v take=%v", give, take)
	}
	if give[0] != 2 {
		t.Fatalf("give = %v, want [2]", give)
	}
	if take[0] != 5 && take[0] != 6 {
		t.Fatalf("take = %v, want 5 or 6", take)
	}
	// With everything banned, no trade.
	give, take = p.selectTrade(0, 1, []int{0, 1, 2, 3, 4, 5, 6})
	if give != nil || take != nil {
		t.Fatalf("fully banned trade returned %v/%v", give, take)
	}
}

func TestMeasureHostsNoise(t *testing.T) {
	o := tinyOverlay(t, []int{0, 100})
	o.AddEdge(0, 1)
	cfg := DefaultConfig(PROPG)
	cfg.MeasurementNoise = 0.5
	p, err := New(o, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	varies := false
	sum := 0.0
	const draws = 2000
	for i := 0; i < draws; i++ {
		m := p.measureHosts(0, 100)
		if m < 0 {
			t.Fatalf("negative measurement %v", m)
		}
		if m != 100 {
			varies = true
		}
		sum += m
	}
	if !varies {
		t.Fatal("noise configured but measurements constant")
	}
	if mean := sum / draws; math.Abs(mean-100) > 5 {
		t.Fatalf("noisy measurement mean %v far from truth 100", mean)
	}
	// Zero noise is exact.
	exact, err := New(o, DefaultConfig(PROPG), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if m := exact.measureHosts(0, 100); m != 100 {
		t.Fatalf("exact measurement = %v", m)
	}
}

func TestFindPartnerRandomProbeAvoidsSelf(t *testing.T) {
	o := tinyOverlay(t, []int{0, 10, 20})
	o.AddEdge(0, 1)
	o.AddEdge(1, 2)
	cfg := DefaultConfig(PROPG)
	cfg.RandomProbe = true
	cfg.NHops = 0
	p, err := New(o, cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v, path, ok := p.findPartner(0, 1)
		if !ok {
			t.Fatal("random probe failed on live overlay")
		}
		if v == 0 {
			t.Fatal("random probe returned self")
		}
		if len(path) != 2 || path[0] != 0 || path[1] != v {
			t.Fatalf("random probe path = %v", path)
		}
	}
}
