package core

import (
	"testing"

	"repro/internal/event"
	"repro/internal/faults"
	"repro/internal/rng"
)

func mustInjector(t *testing.T, cfg faults.Config) *faults.Injector {
	t.Helper()
	in, err := faults.NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// runWithFaults runs one PROP instance for horizon ms and returns it.
func runWithFaults(t *testing.T, policy Policy, seed uint64, inj *faults.Injector, horizon event.Time) (*Protocol, float64) {
	t.Helper()
	o, r := scrambledLineOverlay(t, 40, seed)
	cfg := DefaultConfig(policy)
	cfg.InitTimerMS = 1000
	p, err := New(o, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	p.AttachFaults(inj)
	before := o.MeanLinkLatency()
	e := event.New()
	p.Start(e)
	e.RunUntil(horizon)
	return p, before
}

func TestZeroInjectorMatchesFaultFree(t *testing.T) {
	// An attached all-zero injector must leave the protocol's behavior
	// unchanged: every message is delivered, no retransmit is scheduled, and
	// no extra randomness is consumed, so the final overlay is identical.
	for _, policy := range []Policy{PROPG, PROPO} {
		run := func(attach bool) (uint64, float64) {
			o, r := scrambledLineOverlay(t, 40, 11)
			cfg := DefaultConfig(policy)
			cfg.InitTimerMS = 1000
			p, err := New(o, cfg, r)
			if err != nil {
				t.Fatal(err)
			}
			if attach {
				p.AttachFaults(mustInjector(t, faults.Config{Seed: 1}))
			}
			e := event.New()
			p.Start(e)
			e.RunUntil(30000)
			return p.Counters.Exchanges, o.MeanLinkLatency()
		}
		exBare, latBare := run(false)
		exZero, latZero := run(true)
		if exBare != exZero || latBare != latZero {
			t.Errorf("%v: zero injector diverged: exchanges %d vs %d, latency %v vs %v",
				policy, exBare, exZero, latBare, latZero)
		}
	}
}

func TestLossTriggersRetriesAndStillConverges(t *testing.T) {
	for _, policy := range []Policy{PROPG, PROPO} {
		inj := mustInjector(t, faults.Config{Seed: 3, LossProb: 0.05})
		p, before := runWithFaults(t, policy, 17, inj, 60000)
		if p.Counters.Timeouts == 0 || p.Counters.Retries == 0 {
			t.Errorf("%v: no timeouts/retries under 5%% loss: %+v", policy, p.Counters)
		}
		if p.Counters.Exchanges == 0 {
			t.Errorf("%v: no exchanges executed under 5%% loss", policy)
		}
		after := p.O.MeanLinkLatency()
		if after >= before {
			t.Errorf("%v: no improvement under loss: %v -> %v", policy, before, after)
		}
		if err := p.O.CheckInvariants(); err != nil {
			t.Errorf("%v: invariants violated: %v", policy, err)
		}
	}
}

func TestJitterAndDupsAreAbsorbed(t *testing.T) {
	inj := mustInjector(t, faults.Config{Seed: 5, DupProb: 0.2, JitterMS: 5})
	p, _ := runWithFaults(t, PROPG, 23, inj, 60000)
	if p.Counters.DupsDropped == 0 {
		t.Fatalf("no duplicates dropped at 20%% dup rate: %+v", p.Counters)
	}
	if err := p.O.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
}

func TestCrashNodeAndLivenessEviction(t *testing.T) {
	o, r := scrambledLineOverlay(t, 30, 29)
	cfg := DefaultConfig(PROPG)
	cfg.InitTimerMS = 1000
	p, err := New(o, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	p.AttachFaults(mustInjector(t, faults.Config{Seed: 1}))
	e := event.New()
	p.Start(e)
	e.RunUntil(5000)

	victim := o.AliveSlots()[0]
	if err := o.CrashSlot(victim); err != nil {
		t.Fatal(err)
	}
	p.CrashNode(victim)
	if p.Registered() != 29 {
		t.Fatalf("Registered = %d after crash, want 29", p.Registered())
	}

	// Survivors must notice on their own probes and drop stale references.
	e.RunUntil(20000)
	if p.Counters.Evictions == 0 {
		t.Fatalf("no liveness evictions after a crash: %+v", p.Counters)
	}
	if o.Degree(victim) != 0 {
		t.Fatalf("corpse still has %d stale edges after eviction rounds", o.Degree(victim))
	}
	// Fully evicted: purging formalizes the death and the strict invariant
	// holds again.
	if err := o.PurgeCrashed(victim); err != nil {
		t.Fatal(err)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStaleRetransmitTimersAreAbsorbed(t *testing.T) {
	// Total loss keeps every node inside a retransmit chain; an external
	// repair notification (NeighborsChanged) must invalidate those chains,
	// and the pending timers must be counted as stale, not restart cycles.
	o, r := scrambledLineOverlay(t, 20, 31)
	cfg := DefaultConfig(PROPG)
	cfg.InitTimerMS = 1000
	cfg.ProbeTimeoutMS = 2000
	p, err := New(o, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	p.AttachFaults(mustInjector(t, faults.Config{Seed: 7, LossProb: 1}))
	e := event.New()
	p.Start(e)
	e.RunUntil(1500) // every node has started its cycle; chains pending
	p.NeighborsChanged(e, o.AliveSlots()...)
	e.RunUntil(60000)
	if p.Counters.StaleTimers == 0 {
		t.Fatalf("no stale timers absorbed: %+v", p.Counters)
	}
	if p.Counters.Exchanges != 0 {
		t.Fatalf("exchanges executed under total loss: %+v", p.Counters)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTotalLossMeansNoExchangesButBoundedRetries(t *testing.T) {
	inj := mustInjector(t, faults.Config{Seed: 13, LossProb: 1})
	p, before := runWithFaults(t, PROPO, 37, inj, 60000)
	if p.Counters.Exchanges != 0 {
		t.Fatalf("exchanges executed with every message lost: %+v", p.Counters)
	}
	if got := p.O.MeanLinkLatency(); got != before {
		t.Fatalf("overlay changed under total loss: %v -> %v", before, got)
	}
	// Retries stay bounded: per timeout at most one retransmission, and per
	// probe attempt chain at most MaxRetries retransmissions.
	if p.Counters.Retries > p.Counters.Timeouts {
		t.Fatalf("more retries than timeouts: %+v", p.Counters)
	}
	if p.Counters.Timeouts == 0 {
		t.Fatal("no timeouts under total loss")
	}
}

func TestPartitionStallsThenRecovers(t *testing.T) {
	// Hosts are line positions; isolate those of half the slots during a
	// window and verify exchanges across the cut resume afterwards.
	o, r := scrambledLineOverlay(t, 30, 41)
	isolated := map[int]bool{}
	for i, s := range o.AliveSlots() {
		if i%2 == 0 {
			isolated[o.HostOf(s)] = true
		}
	}
	cfg := DefaultConfig(PROPG)
	cfg.InitTimerMS = 1000
	p, err := New(o, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	p.AttachFaults(mustInjector(t, faults.Config{
		Seed:             1,
		PartitionStartMS: 0,
		PartitionStopMS:  20000,
		Isolated:         isolated,
	}))
	e := event.New()
	p.Start(e)
	e.RunUntil(20000)
	duringTimeouts := p.Counters.Timeouts
	if duringTimeouts == 0 {
		t.Fatal("no timeouts during the partition window")
	}
	e.RunUntil(80000)
	if p.Counters.Exchanges == 0 {
		t.Fatal("no exchanges after the partition healed")
	}
	if err := p.O.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRetransmitDelayGrowsExponentially(t *testing.T) {
	o, _ := scrambledLineOverlay(t, 10, 1)
	cfg := DefaultConfig(PROPG)
	cfg.BackoffJitter = 0
	p, err := New(o, cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	prev := event.Time(0)
	for attempt := 0; attempt < 4; attempt++ {
		d := p.retransmitDelay(attempt)
		want := event.Time(cfg.ProbeTimeoutMS * float64(uint64(1)<<uint(attempt)))
		if d != want {
			t.Fatalf("retransmitDelay(%d) = %v, want %v", attempt, d, want)
		}
		if d <= prev {
			t.Fatalf("delay not growing: %v then %v", prev, d)
		}
		prev = d
	}
	// With jitter the delay lands in [base, base*(1+j)).
	p.cfg.BackoffJitter = 0.5
	for attempt := 0; attempt < 4; attempt++ {
		base := event.Time(cfg.ProbeTimeoutMS * float64(uint64(1)<<uint(attempt)))
		d := p.retransmitDelay(attempt)
		if d < base || d >= event.Time(float64(base)*1.5) {
			t.Fatalf("jittered delay %v outside [%v, %v)", d, base, float64(base)*1.5)
		}
	}
}
