package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/gnutella"
	"repro/internal/netsim"
	"repro/internal/overlay"
	"repro/internal/rng"
)

func lineLat(a, b int) float64 { return math.Abs(float64(a - b)) }

// scrambledLineOverlay builds a Gnutella overlay whose hosts are points on
// a line but whose logical links ignore locality — maximal room for PROP to
// improve.
func scrambledLineOverlay(t testing.TB, n int, seed uint64) (*overlay.Overlay, *rng.Rand) {
	t.Helper()
	r := rng.New(seed)
	hosts := r.Perm(n * 10)[:n] // scattered, scrambled positions
	o, err := gnutella.Build(hosts, gnutella.DefaultConfig(), lineLat, r)
	if err != nil {
		t.Fatal(err)
	}
	return o, r
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(PROPG)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Policy: Policy(9), NHops: 2, InitTimerMS: 1, MaxInitTrials: 1, MaxTimerFactor: 2},
		{Policy: PROPG, NHops: 0, InitTimerMS: 1, MaxInitTrials: 1, MaxTimerFactor: 2},
		{Policy: PROPO, NHops: 2, M: -1, InitTimerMS: 1, MaxInitTrials: 1, MaxTimerFactor: 2},
		{Policy: PROPG, NHops: 2, InitTimerMS: 0, MaxInitTrials: 1, MaxTimerFactor: 2},
		{Policy: PROPG, NHops: 2, InitTimerMS: 1, MaxInitTrials: 0, MaxTimerFactor: 2},
		{Policy: PROPG, NHops: 2, InitTimerMS: 1, MaxInitTrials: 1, MaxTimerFactor: 0.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := New(&overlay.Overlay{}, cfg, rng.New(1)); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
	if _, err := New(nil, good, rng.New(1)); err == nil {
		t.Error("nil overlay accepted")
	}
	// RandomProbe permits NHops = 0.
	rp := DefaultConfig(PROPG)
	rp.NHops = 0
	rp.RandomProbe = true
	if err := rp.Validate(); err != nil {
		t.Errorf("RandomProbe config rejected: %v", err)
	}
}

func TestPolicyString(t *testing.T) {
	if PROPG.String() != "PROP-G" || PROPO.String() != "PROP-O" {
		t.Fatal("policy names wrong")
	}
	if Policy(7).String() == "" {
		t.Fatal("unknown policy should still format")
	}
}

func TestDefaultMEqualsMinDegree(t *testing.T) {
	o, r := scrambledLineOverlay(t, 100, 1)
	p, err := New(o, DefaultConfig(PROPO), r)
	if err != nil {
		t.Fatal(err)
	}
	if p.M() != o.Logical.MinDegree() {
		t.Fatalf("M = %d, want δ(G) = %d", p.M(), o.Logical.MinDegree())
	}
	cfg := DefaultConfig(PROPO)
	cfg.M = 2
	p2, err := New(o, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if p2.M() != 2 {
		t.Fatalf("explicit M not honored: %d", p2.M())
	}
}

func runProtocol(t testing.TB, o *overlay.Overlay, cfg Config, r *rng.Rand, horizonMS float64) *Protocol {
	t.Helper()
	p, err := New(o, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(event.Time(horizonMS))
	return p
}

func TestPROPGReducesLinkLatency(t *testing.T) {
	o, r := scrambledLineOverlay(t, 200, 42)
	before := o.MeanLinkLatency()
	p := runProtocol(t, o, DefaultConfig(PROPG), r, 30*60000)
	after := o.MeanLinkLatency()
	if p.Counters.Exchanges == 0 {
		t.Fatal("no exchanges executed")
	}
	if after >= before*0.8 {
		t.Fatalf("PROP-G latency %.1f -> %.1f: insufficient improvement", before, after)
	}
}

func TestPROPOReducesLinkLatency(t *testing.T) {
	o, r := scrambledLineOverlay(t, 200, 43)
	before := o.MeanLinkLatency()
	p := runProtocol(t, o, DefaultConfig(PROPO), r, 30*60000)
	after := o.MeanLinkLatency()
	if p.Counters.Exchanges == 0 {
		t.Fatal("no exchanges executed")
	}
	if after >= before*0.9 {
		t.Fatalf("PROP-O latency %.1f -> %.1f: insufficient improvement", before, after)
	}
}

func TestPROPGPreservesLogicalGraph(t *testing.T) {
	// Theorem 2, executable: the logical edge set must be bit-identical
	// after any amount of PROP-G activity.
	o, r := scrambledLineOverlay(t, 150, 7)
	edgesBefore := o.Logical.Edges()
	runProtocol(t, o, DefaultConfig(PROPG), r, 20*60000)
	edgesAfter := o.Logical.Edges()
	if len(edgesBefore) != len(edgesAfter) {
		t.Fatalf("edge count changed: %d -> %d", len(edgesBefore), len(edgesAfter))
	}
	for i := range edgesBefore {
		if edgesBefore[i] != edgesAfter[i] {
			t.Fatalf("edge %d changed: %+v -> %+v", i, edgesBefore[i], edgesAfter[i])
		}
	}
}

func TestPROPGPreservesHostSet(t *testing.T) {
	o, r := scrambledLineOverlay(t, 100, 8)
	hostsBefore := append([]int(nil), o.Hosts()...)
	runProtocol(t, o, DefaultConfig(PROPG), r, 20*60000)
	hostsAfter := o.Hosts()
	count := map[int]int{}
	for _, h := range hostsBefore {
		count[h]++
	}
	for _, h := range hostsAfter {
		count[h]--
	}
	for h, c := range count {
		if c != 0 {
			t.Fatalf("host multiset changed at host %d (delta %d)", h, c)
		}
	}
}

func TestPROPOPreservesDegreesAndConnectivity(t *testing.T) {
	f := func(seed uint64) bool {
		o, r := scrambledLineOverlay(t, 80, seed)
		degBefore := map[int]int{}
		for _, s := range o.AliveSlots() {
			degBefore[s] = o.Degree(s)
		}
		cfg := DefaultConfig(PROPO)
		cfg.InitTimerMS = 1000 // fast probes for the property test
		runProtocol(t, o, cfg, r, 50*1000)
		for s, d := range degBefore {
			if o.Degree(s) != d {
				return false
			}
		}
		return o.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPROPGKeepsConnectivity(t *testing.T) {
	o, r := scrambledLineOverlay(t, 120, 9)
	runProtocol(t, o, DefaultConfig(PROPG), r, 20*60000)
	if !o.Connected() {
		t.Fatal("PROP-G broke connectivity (impossible: graph untouched)")
	}
}

func TestNHops1IsWeak(t *testing.T) {
	// Fig. 5/6(a): neighbor exchange (nhops = 1) cannot reduce latency
	// significantly compared to nhops = 2.
	o1, r1 := scrambledLineOverlay(t, 200, 77)
	o2, r2 := scrambledLineOverlay(t, 200, 77)
	base := o1.MeanLinkLatency()

	cfg1 := DefaultConfig(PROPG)
	cfg1.NHops = 1
	runProtocol(t, o1, cfg1, r1, 30*60000)

	cfg2 := DefaultConfig(PROPG)
	cfg2.NHops = 2
	runProtocol(t, o2, cfg2, r2, 30*60000)

	drop1 := base - o1.MeanLinkLatency()
	drop2 := base - o2.MeanLinkLatency()
	if drop1 >= drop2 {
		t.Fatalf("nhops=1 improvement (%.1f) not smaller than nhops=2 (%.1f)", drop1, drop2)
	}
}

func TestRandomProbeWorks(t *testing.T) {
	o, r := scrambledLineOverlay(t, 150, 21)
	before := o.MeanLinkLatency()
	cfg := DefaultConfig(PROPG)
	cfg.RandomProbe = true
	p := runProtocol(t, o, cfg, r, 30*60000)
	if p.Counters.Exchanges == 0 {
		t.Fatal("random probing produced no exchanges")
	}
	if o.MeanLinkLatency() >= before {
		t.Fatal("random probing did not improve latency")
	}
	if p.Counters.WalkMessages != 0 {
		t.Fatal("random probing should not send walk messages")
	}
}

func TestTimerBackoffSequence(t *testing.T) {
	// Two symmetric nodes where no exchange is ever profitable (identical
	// positions on a 2-node line make every Var = 0): the timer must stay
	// at INIT through warm-up, then double each failure, and reset once it
	// would exceed MAX_TIMER = 32×INIT.
	hosts := []int{0, 100}
	o, err := overlay.New(hosts, lineLat)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(PROPG)
	cfg.NHops = 1
	cfg.MaxInitTrials = 2
	cfg.InitTimerMS = 100
	cfg.MaxTimerFactor = 8
	p, err := New(o, cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	var timers []float64
	for i := 0; i < 16 && e.Step(); i++ {
		if tm, ok := p.TimerOf(0); ok {
			timers = append(timers, tm)
		}
	}
	// After node 0's warm-up (2 trials at 100), expect 200, 400, 800,
	// then reset to 100 (1600 > 8*100). Node 1's events interleave, so just
	// verify the pattern appears and the cap is respected.
	sawDouble, sawReset := false, false
	for i := 1; i < len(timers); i++ {
		if timers[i] == 2*timers[i-1] {
			sawDouble = true
		}
		if timers[i-1] == 800 && timers[i] == 100 {
			sawReset = true
		}
		if timers[i] > 800 {
			t.Fatalf("timer %v exceeded MAX_TIMER 800 (sequence %v)", timers[i], timers)
		}
	}
	if !sawDouble || !sawReset {
		t.Fatalf("backoff pattern missing (double=%v reset=%v): %v", sawDouble, sawReset, timers)
	}
	if p.Counters.Exchanges != 0 {
		t.Fatalf("unexpected exchanges: %d", p.Counters.Exchanges)
	}
}

func TestOverheadPerAdjustment(t *testing.T) {
	// §4.3: PROP-G costs ~nhops + 2c per adjustment, PROP-O ~nhops + 2m.
	// With c >> m, PROP-O must be much cheaper per adjustment.
	oG, rG := scrambledLineOverlay(t, 300, 31)
	oO, rO := scrambledLineOverlay(t, 300, 31)
	cfgO := DefaultConfig(PROPO)
	cfgO.M = 1
	pG := runProtocol(t, oG, DefaultConfig(PROPG), rG, 15*60000)
	pO := runProtocol(t, oO, cfgO, rO, 15*60000)
	mpaG := pG.Counters.MessagesPerAdjustment()
	mpaO := pO.Counters.MessagesPerAdjustment()
	if mpaG <= mpaO {
		t.Fatalf("PROP-G overhead %.1f not above PROP-O %.1f", mpaG, mpaO)
	}
	// PROP-O's cost must be bounded by nhops + 2m + slack.
	if mpaO > 2+2*1+2 {
		t.Fatalf("PROP-O per-adjustment cost %.1f exceeds model bound", mpaO)
	}
}

func TestChurnAddRemove(t *testing.T) {
	o, r := scrambledLineOverlay(t, 60, 13)
	cfg := DefaultConfig(PROPG)
	cfg.InitTimerMS = 1000
	p, err := New(o, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(5000)
	if p.Registered() != 60 {
		t.Fatalf("Registered = %d", p.Registered())
	}
	// Join.
	slot, err := gnutella.Join(o, 99999, gnutella.DefaultConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddNode(e, slot); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNode(e, slot); err == nil {
		t.Fatal("duplicate AddNode accepted")
	}
	if p.Registered() != 61 {
		t.Fatalf("Registered after join = %d", p.Registered())
	}
	// Neighbors of the joiner must have reset timers.
	for _, nb := range o.Neighbors(slot) {
		if tm, ok := p.TimerOf(nb); !ok || tm != cfg.InitTimerMS {
			t.Fatalf("neighbor %d timer = %v after join", nb, tm)
		}
	}
	// Leave.
	victim := o.AliveSlots()[5]
	former := o.Neighbors(victim)
	if err := gnutella.Leave(o, victim, gnutella.DefaultConfig(), r); err != nil {
		t.Fatal(err)
	}
	p.RemoveNode(e, victim, former)
	if p.Registered() != 60 {
		t.Fatalf("Registered after leave = %d", p.Registered())
	}
	// Protocol must keep running without touching the dead slot.
	e.RunUntil(60000)
	if !o.Connected() {
		t.Fatal("overlay disconnected after churn")
	}
	if _, ok := p.TimerOf(victim); ok {
		t.Fatal("dead slot still has protocol state")
	}
	if err := p.AddNode(e, victim); err == nil {
		t.Fatal("AddNode on dead slot accepted")
	}
}

func TestTraceReceivesExchanges(t *testing.T) {
	o, r := scrambledLineOverlay(t, 100, 3)
	p, err := New(o, DefaultConfig(PROPG), r)
	if err != nil {
		t.Fatal(err)
	}
	var events []ExchangeEvent
	p.Trace = func(ev ExchangeEvent) { events = append(events, ev) }
	e := event.New()
	p.Start(e)
	e.RunUntil(20 * 60000)
	if uint64(len(events)) != p.Counters.Exchanges {
		t.Fatalf("trace saw %d events, counters say %d", len(events), p.Counters.Exchanges)
	}
	for _, ev := range events {
		if ev.Var <= 0 {
			t.Fatalf("exchange with non-positive Var recorded: %+v", ev)
		}
		if ev.U == ev.V {
			t.Fatalf("self-exchange recorded: %+v", ev)
		}
	}
}

func TestVarNonNegativeGainInvariant(t *testing.T) {
	// §4.2: every executed exchange must strictly reduce the summed
	// neighbor latency (Var > 0 ⇒ L_t0 > L_t1). Verify by recomputing the
	// global sum around each exchange via the trace hook.
	o, r := scrambledLineOverlay(t, 100, 11)
	p, err := New(o, DefaultConfig(PROPO), r)
	if err != nil {
		t.Fatal(err)
	}
	total := func() float64 {
		s := 0.0
		for _, slot := range o.AliveSlots() {
			s += o.NeighborLatencySum(slot)
		}
		return s
	}
	last := total()
	violations := 0
	p.Trace = func(ev ExchangeEvent) {
		now := total()
		if now >= last {
			violations++
		}
		last = now
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(20 * 60000)
	if violations > 0 {
		t.Fatalf("%d exchanges did not reduce total neighbor latency", violations)
	}
}

func TestOnTransitStubNetwork(t *testing.T) {
	// End-to-end sanity on the real substrate: PROP-G over a Gnutella
	// overlay on ts-large must cut stretch.
	if testing.Short() {
		t.Skip("transit-stub integration in -short mode")
	}
	r := rng.New(2024)
	net, err := netsim.Generate(netsim.TSLarge(), r)
	if err != nil {
		t.Fatal(err)
	}
	oracle := netsim.NewOracle(net)
	hosts := append([]int(nil), net.StubHosts...)
	r.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	hosts = hosts[:400]
	o, err := gnutella.Build(hosts, gnutella.DefaultConfig(), oracle.Latency, r)
	if err != nil {
		t.Fatal(err)
	}
	phys := net.MeanLinkLatency()
	before := o.Stretch(phys)
	p, err := New(o, DefaultConfig(PROPG), r)
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(30 * 60000)
	after := o.Stretch(phys)
	if after >= before*0.85 {
		t.Fatalf("stretch %.2f -> %.2f: PROP-G ineffective on ts-large", before, after)
	}
	if !o.Connected() {
		t.Fatal("overlay disconnected")
	}
}

func BenchmarkProbeCyclePROPG(b *testing.B) {
	o, r := scrambledLineOverlay(b, 500, 1)
	cfg := DefaultConfig(PROPG)
	cfg.InitTimerMS = 10
	p, err := New(o, cfg, r)
	if err != nil {
		b.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal("queue drained")
		}
	}
}
