package core_test

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gnutella"
	"repro/internal/rng"
)

// Example shows the minimal PROP-G workflow: build an overlay, run the
// protocol on a simulated clock, observe the latency improvement.
func Example() {
	r := rng.New(1)
	// Machines live at positions on a line; latency is distance.
	lat := func(a, b int) float64 { return math.Abs(float64(a - b)) }
	hosts := r.Perm(1000)[:100]
	o, _ := gnutella.Build(hosts, gnutella.DefaultConfig(), lat, r)

	before := o.MeanLinkLatency()
	p, _ := core.New(o, core.DefaultConfig(core.PROPG), r.Split())
	e := event.New()
	p.Start(e)
	e.RunUntil(30 * 60000) // 30 simulated minutes

	fmt.Printf("improved: %v\n", o.MeanLinkLatency() < before)
	fmt.Printf("connected: %v\n", o.Connected())
	// Output:
	// improved: true
	// connected: true
}

// ExampleProtocol_Trace shows observing individual exchanges.
func ExampleProtocol_Trace() {
	r := rng.New(7)
	lat := func(a, b int) float64 { return math.Abs(float64(a - b)) }
	hosts := r.Perm(500)[:60]
	o, _ := gnutella.Build(hosts, gnutella.DefaultConfig(), lat, r)
	p, _ := core.New(o, core.DefaultConfig(core.PROPO), r.Split())

	gains := 0.0
	p.Trace = func(ev core.ExchangeEvent) { gains += ev.Var }
	e := event.New()
	p.Start(e)
	e.RunUntil(20 * 60000)

	fmt.Printf("every exchange gained: %v\n", gains > 0 && p.Counters.Exchanges > 0)
	// Output:
	// every exchange gained: true
}

// ExampleConfig_Validate shows the parameter checks.
func ExampleConfig_Validate() {
	cfg := core.DefaultConfig(core.PROPO)
	fmt.Println(cfg.Validate())
	cfg.NHops = 0
	fmt.Println(cfg.Validate() != nil)
	// Output:
	// <nil>
	// true
}
