// Package core implements the paper's contribution: the PROP family of
// Peer-exchange Routing Optimization Protocols (PROP-G and PROP-O).
//
// Every peer runs the same loop (§3.2). After joining it enters a warm-up
// phase: it probes its neighbors to learn Σ d(u,i), then every `timer`
// interval contacts a node v exactly nhops away via a TTL random walk whose
// first hop is drawn from a priority queue (neighborQ). The pair evaluates
//
//	Var = Σ_{N_t0(u)} d(u,i) + Σ_{N_t0(v)} d(v,i)
//	    − Σ_{N_t1(u)} d(u,i) − Σ_{N_t1(v)} d(v,i)
//
// and executes the peer-exchange iff Var > MIN_VAR: under PROP-G the two
// peers swap overlay positions (all neighbors, and node identifiers in DHT
// systems — a host swap in the slot model); under PROP-O they trade exactly
// m neighbors each, never ones on the walk path, preserving both degrees.
// After MAX_INIT_TRIAL probes the peer enters maintenance: successful
// first-hops are re-prioritized to be probed again soon, failures fall to
// the queue tail, and the probe timer follows a Markov back-off — doubled
// on failure, reset to INIT_TIMER on success or once it exceeds MAX_TIMER.
// Churn resets the timer and enqueues new neighbors at the queue front.
//
// Key types: Protocol (one running instance over an overlay), Config, and
// Policy (PROPG/PROPO). DESIGN.md §3 records every protocol constant and
// the reconstruction of the paper's lost digits.
//
// Probe cycles are scheduled through the event.Clock seam rather than the
// sim engine directly, so the same protocol code runs on simulated time in
// experiments and on wall time in the live runtime (DESIGN.md §10).
package core

import (
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/rng"
)

// Policy selects the exchange rule.
type Policy int

const (
	// PROPG exchanges all neighbors (a position/identifier swap).
	PROPG Policy = iota
	// PROPO exchanges exactly m neighbors per side, preserving degrees.
	PROPO
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PROPG:
		return "PROP-G"
	case PROPO:
		return "PROP-O"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config holds the protocol parameters of §3.2 and §5.1.
type Config struct {
	// Policy selects PROP-G or PROP-O.
	Policy Policy
	// NHops is the TTL of the probing random walk. The paper's default and
	// recommendation is 2 ("nhop = 2 may be a better choice").
	NHops int
	// RandomProbe replaces the TTL walk with a uniformly random partner
	// ("instead of TTL packets, a random node is selected as the probing
	// target") — the impractical-but-instructive baseline of Fig. 5/6(a).
	RandomProbe bool
	// M is the PROP-O exchange size. Zero means "use δ(G), the overlay's
	// minimum degree, at start time" — the paper's default.
	M int
	// MinVar is the exchange threshold; §4.2 derives MIN_VAR = 0.
	MinVar float64
	// InitTimerMS is INIT_TIMER (paper: 1 minute = 60000 ms).
	InitTimerMS float64
	// MaxInitTrials is MAX_INIT_TRIAL, the warm-up length (paper: "less
	// than ten" — we use 10).
	MaxInitTrials int
	// MaxTimerFactor caps the Markov back-off: MAX_TIMER =
	// MaxTimerFactor × INIT_TIMER (paper: 2^5 = 32, "at most five times of
	// suspending").
	MaxTimerFactor float64
	// MeasurementNoise, when positive, perturbs every probe RTT used in the
	// Var computation by a multiplicative Gaussian factor (1 + σ·N(0,1)),
	// clamped at zero. The topology change itself always applies to ground
	// truth — only the decision is noisy, as in a real deployment. Zero
	// (the default, and the paper's setting) means exact measurements.
	MeasurementNoise float64

	// The remaining knobs govern the hardened fault path (DESIGN.md §9) and
	// are consulted only when an injector is attached via AttachFaults.

	// ProbeTimeoutMS is how long a peer waits for a probe step to be answered
	// before declaring the message lost and retransmitting. Zero selects the
	// default (5000 ms — generous against the transit-stub RTT spread).
	ProbeTimeoutMS float64
	// MaxRetries bounds retransmissions per probe step. Zero selects the
	// default (3); after the budget is exhausted the probe cycle fails and
	// falls back to the Markov back-off.
	MaxRetries int
	// BackoffJitter desynchronizes retransmit timers: each retransmit delay
	// is scaled by (1 + BackoffJitter·U[0,1)). Zero means no jitter; the
	// default config uses 0.1.
	BackoffJitter float64
}

// DefaultConfig returns the paper's parameterization for the given policy.
func DefaultConfig(policy Policy) Config {
	return Config{
		Policy:         policy,
		NHops:          2,
		MinVar:         0,
		InitTimerMS:    60000,
		MaxInitTrials:  10,
		MaxTimerFactor: 32,
		ProbeTimeoutMS: 5000,
		MaxRetries:     3,
		BackoffJitter:  0.1,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.Policy != PROPG && c.Policy != PROPO:
		return fmt.Errorf("core: unknown policy %d", int(c.Policy))
	case !c.RandomProbe && c.NHops < 1:
		return fmt.Errorf("core: NHops = %d, want >= 1 (or RandomProbe)", c.NHops)
	case c.M < 0:
		return fmt.Errorf("core: M = %d, want >= 0", c.M)
	case c.InitTimerMS <= 0:
		return fmt.Errorf("core: InitTimerMS = %v, want > 0", c.InitTimerMS)
	case c.MaxInitTrials < 1:
		return fmt.Errorf("core: MaxInitTrials = %d, want >= 1", c.MaxInitTrials)
	case c.MaxTimerFactor < 1:
		return fmt.Errorf("core: MaxTimerFactor = %v, want >= 1", c.MaxTimerFactor)
	case c.MeasurementNoise < 0:
		return fmt.Errorf("core: MeasurementNoise = %v, want >= 0", c.MeasurementNoise)
	case c.ProbeTimeoutMS < 0:
		return fmt.Errorf("core: ProbeTimeoutMS = %v, want >= 0 (0 = default)", c.ProbeTimeoutMS)
	case c.MaxRetries < 0:
		return fmt.Errorf("core: MaxRetries = %d, want >= 0 (0 = default)", c.MaxRetries)
	case c.BackoffJitter < 0:
		return fmt.Errorf("core: BackoffJitter = %v, want >= 0", c.BackoffJitter)
	}
	return nil
}

// ExchangeEvent records one executed peer-exchange for tracing.
type ExchangeEvent struct {
	At   event.Time
	U, V int
	Var  float64
	// Moved counts the neighbors exchanged per side (PROP-O) or the full
	// neighbor-set sizes (PROP-G, |N(u)|+|N(v)|).
	Moved int
}

// ProbeEvent records one timer firing (§3.2 probe) for tracing: the prober,
// the partner the walk reached (-1 if the walk failed), and whether the
// probe ended in an executed exchange.
type ProbeEvent struct {
	At        event.Time
	U         int
	Partner   int
	Exchanged bool
}

// Protocol runs PROP over one overlay inside one event engine.
type Protocol struct {
	// O is the overlay being optimized.
	O *overlay.Overlay
	// Counters tallies message overhead (§4.3).
	Counters metrics.Counters
	// Trace, if non-nil, receives every executed exchange.
	Trace func(ExchangeEvent)
	// Probe, if non-nil, receives every probe attempt (the trace recorder's
	// finest-grained protocol event).
	Probe func(ProbeEvent)

	cfg    Config
	r      *rng.Rand
	m      int // resolved PROP-O exchange size
	nodes  map[int]*nodeState
	faults *faults.Injector // nil = fault-free fast path
}

type nodeState struct {
	slot    int
	queue   []queueEntry
	seq     int
	timerMS float64
	trials  int // probes executed so far (warm-up gate)
	token   event.Canceler
	// epoch invalidates in-flight retransmit chains: it is bumped whenever
	// the node's situation changes underneath a pending retransmit timer
	// (neighbor churn, repair, death), so a stale timer firing later is
	// recognized and absorbed instead of starting a second probe cycle.
	epoch int
}

type queueEntry struct {
	neighbor int
	prio     int
	seq      int // FIFO tie-break
}

// New creates a protocol instance over o. The overlay should already be
// built (its peers joined "based on a random or DHT based assignment").
func New(o *overlay.Overlay, cfg Config, r *rng.Rand) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if o == nil {
		return nil, fmt.Errorf("core: nil overlay")
	}
	p := &Protocol{
		O:     o,
		cfg:   cfg,
		r:     r,
		nodes: make(map[int]*nodeState),
	}
	p.m = cfg.M
	if p.m == 0 {
		p.m = o.Logical.MinDegree()
		if p.m < 1 {
			p.m = 1
		}
	}
	// Resolve fault-path defaults; inert until AttachFaults.
	if p.cfg.ProbeTimeoutMS == 0 {
		p.cfg.ProbeTimeoutMS = 5000
	}
	if p.cfg.MaxRetries == 0 {
		p.cfg.MaxRetries = 3
	}
	return p, nil
}

// AttachFaults opts the protocol into fault-aware operation: probe traffic
// consults inj message by message, losses trigger timeouts and bounded
// retransmission with exponential back-off + jitter, duplicated responses
// are dropped by their sequence guard, and each probe cycle starts with
// liveness eviction of crashed neighbors. A nil injector — or never calling
// AttachFaults — keeps the historical fault-free fast path, which schedules
// the same events and consumes the same RNG stream as pre-fault builds.
func (p *Protocol) AttachFaults(inj *faults.Injector) { p.faults = inj }

// M returns the resolved PROP-O exchange size.
func (p *Protocol) M() int { return p.m }

// Start registers every live slot with the clock. Each node's first probe
// is staggered uniformly over one INIT_TIMER interval so that the warm-up
// phase is not synchronized. The clock is the sim engine in experiments and
// an event.WallClock in the live runtime (DESIGN.md §10); the protocol never
// looks past the Clock interface.
func (p *Protocol) Start(e event.Clock) {
	for _, slot := range p.O.AliveSlots() {
		p.register(e, slot)
	}
}

// register creates protocol state for slot and schedules its first probe.
func (p *Protocol) register(e event.Clock, slot int) {
	st := &nodeState{slot: slot, timerMS: p.cfg.InitTimerMS}
	p.initQueue(st)
	p.nodes[slot] = st
	delay := event.Time(p.r.Float64() * p.cfg.InitTimerMS)
	st.token = e.Schedule(delay, func() { p.probe(e, slot) })
}

// AddNode brings a newly joined slot under protocol control (churn). The
// slot must already be wired into the overlay.
func (p *Protocol) AddNode(e event.Clock, slot int) error {
	if !p.O.Alive(slot) {
		return fmt.Errorf("core: AddNode(%d) on dead slot", slot)
	}
	if _, dup := p.nodes[slot]; dup {
		return fmt.Errorf("core: slot %d already registered", slot)
	}
	p.register(e, slot)
	// §3.2: neighbors of an arriving peer reset their timers and probe the
	// newcomer early.
	for _, nb := range p.O.Neighbors(slot) {
		p.onNeighborChange(e, nb)
	}
	return nil
}

// RemoveNode withdraws a departing slot (churn): its pending probe is
// cancelled and its former neighbors reset their timers. Call after the
// overlay repair has rewired the survivors.
func (p *Protocol) RemoveNode(e event.Clock, slot int, formerNeighbors []int) {
	if st, ok := p.nodes[slot]; ok {
		st.token.Cancel()
		st.epoch++
		delete(p.nodes, slot)
	}
	for _, nb := range formerNeighbors {
		p.onNeighborChange(e, nb)
	}
}

// CrashNode withdraws a slot that died crash-stop: its pending probe (and
// any in-flight retransmit chain) is invalidated, but — unlike RemoveNode —
// no survivor is notified. Neighbors keep stale queue entries until their
// own liveness eviction or a repair pass (NeighborsChanged) catches up,
// which is exactly the asymmetry between a graceful leave and a crash.
func (p *Protocol) CrashNode(slot int) {
	if st, ok := p.nodes[slot]; ok {
		st.token.Cancel()
		st.epoch++
		delete(p.nodes, slot)
	}
}

// NeighborsChanged tells the protocol that an external repair pass (e.g. a
// DHT RepairCrashed) rewired the given slots' neighborhoods: each affected
// live node applies the §3.2 churn rule — timer reset, fresh neighbors at
// the queue front — and any in-flight retransmit chain is invalidated.
func (p *Protocol) NeighborsChanged(e event.Clock, slots ...int) {
	for _, s := range slots {
		p.onNeighborChange(e, s)
	}
}

// onNeighborChange implements the §3.2 churn rule for one affected peer:
// reset the timer to INIT_TIMER (rescheduling the pending probe) — the
// queue itself reconciles lazily, with fresh neighbors entering at the
// front.
func (p *Protocol) onNeighborChange(e event.Clock, slot int) {
	st, ok := p.nodes[slot]
	if !ok {
		return
	}
	st.timerMS = p.cfg.InitTimerMS
	st.token.Cancel()
	st.epoch++
	st.token = e.Schedule(event.Time(st.timerMS), func() { p.probe(e, slot) })
}

// initQueue fills a node's neighborQ with a random permutation of its
// neighbors ("initialized with a random sequence … so each neighbor has an
// equal probability to be probed").
func (p *Protocol) initQueue(st *nodeState) {
	nbrs := p.O.Neighbors(st.slot)
	p.r.Shuffle(len(nbrs), func(i, j int) { nbrs[i], nbrs[j] = nbrs[j], nbrs[i] })
	st.queue = st.queue[:0]
	for _, nb := range nbrs {
		st.queue = append(st.queue, queueEntry{neighbor: nb, prio: 0, seq: st.seq})
		st.seq++
	}
}

// reconcileQueue drops entries that are no longer neighbors and inserts new
// neighbors at the front (minimum priority — probed earliest, per §3.2's
// churn rule).
func (p *Protocol) reconcileQueue(st *nodeState) {
	current := p.O.Neighbors(st.slot)
	inSet := make(map[int]bool, len(current))
	for _, nb := range current {
		inSet[nb] = true
	}
	kept := st.queue[:0]
	seen := make(map[int]bool, len(st.queue))
	minPrio := 0
	for _, qe := range st.queue {
		if inSet[qe.neighbor] && !seen[qe.neighbor] {
			kept = append(kept, qe)
			seen[qe.neighbor] = true
			if qe.prio < minPrio {
				minPrio = qe.prio
			}
		}
	}
	st.queue = kept
	for _, nb := range current {
		if !seen[nb] {
			st.queue = append(st.queue, queueEntry{neighbor: nb, prio: minPrio - 1, seq: st.seq})
			st.seq++
		}
	}
}

// pickFirstHop returns the index of the minimum-priority queue entry.
func (st *nodeState) pickFirstHop() int {
	best := -1
	for i, qe := range st.queue {
		if best < 0 || qe.prio < st.queue[best].prio ||
			(qe.prio == st.queue[best].prio && qe.seq < st.queue[best].seq) {
			best = i
		}
	}
	return best
}

// maxPrio returns the maximum priority in the queue (0 if empty).
func (st *nodeState) maxPrio() int {
	max := 0
	for _, qe := range st.queue {
		if qe.prio > max {
			max = qe.prio
		}
	}
	return max
}

// probe is one timer firing for slot u: find a partner, evaluate Var, and
// exchange if profitable. Under fault injection the cycle may span several
// events (retransmits after lost messages); the fault-free path completes
// synchronously, exactly as it always has.
func (p *Protocol) probe(e event.Clock, u int) {
	st, ok := p.nodes[u]
	if !ok || !p.O.Alive(u) {
		return
	}
	p.Counters.Probes++
	st.trials++
	if p.faults.Enabled() {
		// Liveness eviction: contacting a crashed neighbor times out, so the
		// node drops the stale reference before choosing a first hop.
		if n := p.O.EvictDeadNeighbors(u); n > 0 {
			p.Counters.Evictions += uint64(n)
		}
	}
	p.reconcileQueue(st)

	firstHopIdx := st.pickFirstHop()
	if firstHopIdx < 0 {
		p.finishProbe(e, u, st, firstHopIdx, -1, false)
		return
	}
	s := st.queue[firstHopIdx].neighbor
	if !p.faults.Enabled() {
		success := false
		partner := -1
		v, path, walked := p.findPartner(u, s)
		if walked {
			partner = v
			success = p.attemptExchange(e, u, v, path)
		}
		p.finishProbe(e, u, st, firstHopIdx, partner, success)
		return
	}
	p.probeAttempt(e, u, st, firstHopIdx, s, 0)
}

// probeAttempt is one transmission of the probe under fault injection:
// walk + response, then — if everything arrived — the exchange evaluation.
// A lost message times out and retransmits with exponential back-off until
// MaxRetries is exhausted, at which point the cycle fails into the normal
// Markov back-off. Each retransmission is a fresh packet and takes a fresh
// random route.
func (p *Protocol) probeAttempt(e event.Clock, u int, st *nodeState, firstHopIdx, s, attempt int) {
	v, path, walked := p.findPartner(u, s)
	if !walked {
		p.finishProbe(e, u, st, firstHopIdx, -1, false)
		return
	}
	if !p.deliverWalk(e, path) {
		p.Counters.Timeouts++
		if attempt >= p.cfg.MaxRetries {
			p.finishProbe(e, u, st, firstHopIdx, -1, false)
			return
		}
		p.Counters.Retries++
		myEpoch := st.epoch
		e.Schedule(p.retransmitDelay(attempt), func() {
			if cur, ok := p.nodes[u]; !ok || cur != st || st.epoch != myEpoch {
				p.Counters.StaleTimers++
				return
			}
			p.probeAttempt(e, u, st, firstHopIdx, s, attempt+1)
		})
		return
	}
	success := p.attemptExchange(e, u, v, path)
	p.finishProbe(e, u, st, firstHopIdx, v, success)
}

// finishProbe completes a probe cycle whatever its path: first-hop standing,
// trace event, Markov timer update, and the next cycle's scheduling.
func (p *Protocol) finishProbe(e event.Clock, u int, st *nodeState, firstHopIdx, partner int, success bool) {
	if firstHopIdx >= 0 {
		// Update the first hop's standing (maintenance rule; during warm-up
		// the rotation gives every neighbor a turn).
		if st.trials <= p.cfg.MaxInitTrials {
			st.queue[firstHopIdx].prio = st.maxPrio() + 1
		} else if success {
			st.queue[firstHopIdx].prio--
		} else {
			st.queue[firstHopIdx].prio = st.maxPrio() + 1
		}
	}

	if p.Probe != nil {
		p.Probe(ProbeEvent{At: e.Now(), U: u, Partner: partner, Exchanged: success})
	}

	// Timer update: fixed during warm-up; Markov-chain back-off afterwards.
	if st.trials <= p.cfg.MaxInitTrials {
		st.timerMS = p.cfg.InitTimerMS
	} else if success {
		st.timerMS = p.cfg.InitTimerMS
	} else {
		st.timerMS *= 2
		if st.timerMS > p.cfg.MaxTimerFactor*p.cfg.InitTimerMS {
			st.timerMS = p.cfg.InitTimerMS
		}
	}
	st.token = e.Schedule(event.Time(st.timerMS), func() { p.probe(e, u) })
}

// deliverWalk runs the probe's messages past the injector: one forwarding
// message per walk hop plus the partner's response back to the origin. It
// reports whether everything arrived; duplicated messages are recognized by
// their sequence numbers and dropped.
func (p *Protocol) deliverWalk(e event.Clock, path []int) bool {
	now := float64(e.Now())
	for i := 0; i+1 < len(path); i++ {
		d := p.faults.Deliver(p.O.HostOf(path[i]), p.O.HostOf(path[i+1]), now)
		if d.Lost {
			return false
		}
		if d.Dup {
			p.Counters.DupsDropped++
		}
	}
	d := p.faults.Deliver(p.O.HostOf(path[len(path)-1]), p.O.HostOf(path[0]), now)
	if d.Lost {
		return false
	}
	if d.Dup {
		p.Counters.DupsDropped++
	}
	return true
}

// retransmitDelay is the back-off before retransmission attempt+1:
// ProbeTimeout × 2^attempt, scaled by the configured jitter.
func (p *Protocol) retransmitDelay(attempt int) event.Time {
	d := p.cfg.ProbeTimeoutMS * float64(uint64(1)<<uint(attempt))
	if p.cfg.BackoffJitter > 0 {
		d *= 1 + p.cfg.BackoffJitter*p.r.Float64()
	}
	return event.Time(d)
}

// findPartner locates the exchange counterpart: a TTL-nhops random walk
// from u through s, or a uniform random peer under RandomProbe. It returns
// the partner, the walk path (for the Theorem 1 exclusion rule), and
// whether a partner was found.
func (p *Protocol) findPartner(u, s int) (v int, path []int, ok bool) {
	if p.cfg.RandomProbe {
		alive := p.O.AliveSlots()
		if len(alive) < 2 {
			return 0, nil, false
		}
		for tries := 0; tries < 8; tries++ {
			cand := alive[p.r.Intn(len(alive))]
			if cand != u {
				return cand, []int{u, cand}, true
			}
		}
		return 0, nil, false
	}
	path, walked := p.O.RandomWalk(u, s, p.cfg.NHops, p.r)
	p.Counters.WalkMessages += uint64(len(path) - 1)
	if !walked {
		p.Counters.WalkFailures++
		return 0, nil, false
	}
	return path[len(path)-1], path, true
}

// attemptExchange evaluates Var for the (u,v) pair and executes the
// exchange when profitable. It reports whether an exchange happened.
func (p *Protocol) attemptExchange(e event.Clock, u, v int, path []int) bool {
	if u == v || !p.O.Alive(u) || !p.O.Alive(v) {
		return false
	}
	switch p.cfg.Policy {
	case PROPG:
		return p.attemptSwap(e, u, v)
	case PROPO:
		return p.attemptTrade(e, u, v, path)
	}
	return false
}

// measureHosts returns the probe RTT between two hosts: ground truth, or
// ground truth perturbed by the configured multiplicative Gaussian noise.
func (p *Protocol) measureHosts(a, b int) float64 {
	d := p.O.HostLatency(a, b)
	if p.cfg.MeasurementNoise <= 0 {
		return d
	}
	m := d * (1 + p.cfg.MeasurementNoise*p.r.NormFloat64())
	if m < 0 {
		return 0
	}
	return m
}

// measureSlots is measureHosts addressed by slots.
func (p *Protocol) measureSlots(u, v int) float64 {
	return p.measureHosts(p.O.HostOf(u), p.O.HostOf(v))
}

// measureHostsFaulty is one measurement under fault injection: the probe
// message may be lost (timeout + bounded synchronous retry — measurement
// round-trips are far shorter than the probe timeout, so the retries
// complete within the evaluation step) and a delivered measurement absorbs
// the injected queueing jitter into the observed RTT. ok is false when the
// retry budget ran out.
func (p *Protocol) measureHostsFaulty(e event.Clock, a, b int) (float64, bool) {
	now := float64(e.Now())
	for attempt := 0; ; attempt++ {
		d := p.faults.Deliver(a, b, now)
		if d.Lost {
			p.Counters.Timeouts++
			if attempt >= p.cfg.MaxRetries {
				return 0, false
			}
			p.Counters.Retries++
			continue
		}
		if d.Dup {
			p.Counters.DupsDropped++
		}
		return p.measureHosts(a, b) + d.DelayMS, true
	}
}

// hostMeasurer returns the host-pair measurement function for one exchange
// evaluation. Under fault injection a failed measurement poisons the whole
// evaluation via *failed — the exchange must never execute on incomplete
// data, or a half-evaluated Var could corrupt the slot↔host mapping.
func (p *Protocol) hostMeasurer(e event.Clock, failed *bool) overlay.LatencyFunc {
	if !p.faults.Enabled() {
		return p.measureHosts
	}
	return func(a, b int) float64 {
		if *failed {
			return 0
		}
		m, ok := p.measureHostsFaulty(e, a, b)
		if !ok {
			*failed = true
			return 0
		}
		return m
	}
}

// slotMeasurer is hostMeasurer addressed by slots.
func (p *Protocol) slotMeasurer(e event.Clock, failed *bool) func(u, v int) float64 {
	if !p.faults.Enabled() {
		return p.measureSlots
	}
	measure := p.hostMeasurer(e, failed)
	return func(u, v int) float64 {
		return measure(p.O.HostOf(u), p.O.HostOf(v))
	}
}

// attemptSwap is the PROP-G exchange: swap positions if Var > MIN_VAR.
func (p *Protocol) attemptSwap(e event.Clock, u, v int) bool {
	degU, degV := p.O.Degree(u), p.O.Degree(v)
	// Each side probes the other's neighborhood: 2c measurements (§4.3).
	p.Counters.MeasureMessages += uint64(degU + degV)
	var failed bool
	variation := p.O.SwapGainMeasured(u, v, p.hostMeasurer(e, &failed))
	if failed {
		return false
	}
	if variation <= p.cfg.MinVar {
		p.Counters.Rejected++
		return false
	}
	if err := p.O.SwapHosts(u, v); err != nil {
		p.Counters.Rejected++
		return false
	}
	// Both peers notify all their neighbors to rewrite routing entries.
	p.Counters.NotifyMessages += uint64(degU + degV)
	p.Counters.Exchanges++
	p.emit(ExchangeEvent{At: e.Now(), U: u, V: v, Var: variation, Moved: degU + degV})
	return true
}

// attemptTrade is the PROP-O exchange: trade the best m neighbors per side.
func (p *Protocol) attemptTrade(e event.Clock, u, v int, path []int) bool {
	give, take := p.selectTrade(u, v, path)
	if len(give) == 0 {
		p.Counters.Rejected++
		return false
	}
	// Each side probes the m hypothetical neighbors: 2m measurements.
	p.Counters.MeasureMessages += uint64(len(give) + len(take))
	var failed bool
	variation := p.O.ExchangeGainMeasured(u, v, give, take, p.slotMeasurer(e, &failed))
	if failed {
		return false
	}
	if variation <= p.cfg.MinVar {
		p.Counters.Rejected++
		return false
	}
	if err := p.O.ExchangeNeighbors(u, v, give, take, path); err != nil {
		p.Counters.Rejected++
		return false
	}
	// The moved neighbors (and the endpoints) update routing entries.
	p.Counters.NotifyMessages += uint64(len(give) + len(take))
	p.Counters.Exchanges++
	p.emit(ExchangeEvent{At: e.Now(), U: u, V: v, Var: variation, Moved: len(give)})
	return true
}

// selectTrade picks up to m neighbors from each side to exchange, honoring
// the Theorem 1 constraints. Per §3.2 the peers exchange address lists of
// "arbitrary m neighbors" — the selection is random, not greedy; the Var
// test afterwards decides whether the candidate trade is worth executing.
// Both sides return equally many neighbors (possibly fewer than m when
// eligibility is scarce); empty slices mean no legal trade exists.
func (p *Protocol) selectTrade(u, v int, path []int) (give, take []int) {
	onPath := make(map[int]bool, len(path))
	for _, x := range path {
		onPath[x] = true
	}
	eligibleFrom := func(from, to int) []int {
		var out []int
		for _, x := range p.O.Neighbors(from) {
			if x == to || x == from || onPath[x] || !p.O.Alive(x) {
				continue
			}
			if p.O.Logical.HasEdge(to, x) {
				continue
			}
			out = append(out, x)
		}
		return out
	}
	candU := eligibleFrom(u, v)
	candV := eligibleFrom(v, u)
	m := p.m
	if len(candU) < m {
		m = len(candU)
	}
	if len(candV) < m {
		m = len(candV)
	}
	if m == 0 {
		return nil, nil
	}
	pick := func(cands []int) []int {
		p.r.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		out := cands[:m]
		sort.Ints(out)
		return out
	}
	return pick(candU), pick(candV)
}

func (p *Protocol) emit(ev ExchangeEvent) {
	if p.Trace != nil {
		p.Trace(ev)
	}
}

// BackoffSnapshot summarizes the Markov back-off state of every registered
// node at one instant — the observability layer samples it on measurement
// ticks to explain probe-rate dips ("back-off storms") in the time series.
// All aggregates are integer sums over timer factors (every timer is
// INIT_TIMER × 2^k exactly), so the snapshot is independent of map
// iteration order and safe for the byte-determinism contract of
// internal/obs.
type BackoffSnapshot struct {
	// Nodes is the number of registered nodes.
	Nodes int
	// BackedOff counts nodes whose timer currently exceeds INIT_TIMER.
	BackedOff int
	// AtMax counts nodes at the MAX_TIMER cap (MaxTimerFactor × INIT_TIMER).
	AtMax int
	// SumFactor is Σ timer/INIT_TIMER over all nodes; SumFactor/Nodes is the
	// mean back-off factor (1.0 = everyone probing at full rate).
	SumFactor int
}

// MeanFactor returns the mean timer/INIT_TIMER factor (0 with no nodes).
func (b BackoffSnapshot) MeanFactor() float64 {
	if b.Nodes == 0 {
		return 0
	}
	return float64(b.SumFactor) / float64(b.Nodes)
}

// BackoffSnapshot captures the current timer state across all nodes.
func (p *Protocol) BackoffSnapshot() BackoffSnapshot {
	var bs BackoffSnapshot
	maxMS := p.cfg.MaxTimerFactor * p.cfg.InitTimerMS
	for _, st := range p.nodes {
		bs.Nodes++
		factor := int(st.timerMS / p.cfg.InitTimerMS)
		if factor < 1 {
			factor = 1
		}
		bs.SumFactor += factor
		if st.timerMS > p.cfg.InitTimerMS {
			bs.BackedOff++
		}
		if st.timerMS >= maxMS {
			bs.AtMax++
		}
	}
	return bs
}

// TimerOf exposes a node's current timer in ms (testing/analysis).
func (p *Protocol) TimerOf(slot int) (float64, bool) {
	st, ok := p.nodes[slot]
	if !ok {
		return 0, false
	}
	return st.timerMS, true
}

// Registered reports how many slots are under protocol control.
func (p *Protocol) Registered() int { return len(p.nodes) }
