package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/overlay"
	"repro/internal/rng"
)

// buildClique returns a small overlay every test can probe over.
func buildClique(t *testing.T, n int) *overlay.Overlay {
	t.Helper()
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i
	}
	o, err := overlay.New(hosts, func(a, b int) float64 { return math.Abs(float64(a - b)) })
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if err := o.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return o
}

// TestProtocolOnWallClock runs the unmodified PROP-G protocol on the live
// wall clock: same code, different Clock. Probes must fire on real time and
// the slot↔host bijection must hold afterwards — the minimal proof that the
// clock seam actually decouples the probe cycles from the sim engine.
func TestProtocolOnWallClock(t *testing.T) {
	o := buildClique(t, 8)
	cfg := DefaultConfig(PROPG)
	cfg.InitTimerMS = 2 // live milliseconds
	p, err := New(o, cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}

	clk := event.NewWallClock()
	p.Start(clk)

	// Handlers own the protocol state; read it through the runner.
	probes := func() uint64 {
		var v uint64
		clk.Sync(func() { v = p.Counters.Probes })
		return v
	}
	deadline := time.Now().Add(5 * time.Second)
	for probes() < 8 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	clk.Stop() // waits for the runner: no handler is mid-flight afterwards

	if p.Counters.Probes == 0 {
		t.Fatal("no probes fired on the wall clock")
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatalf("overlay invariants after wall-clock run: %v", err)
	}
	if p.Registered() != 8 {
		t.Fatalf("registered %d nodes, want 8", p.Registered())
	}
}

// TestProtocolClockEquivalence pins that running on the engine through the
// Clock interface is byte-identical to the historical direct path: same
// seed, same counters, same final topology fingerprint.
func TestProtocolClockEquivalence(t *testing.T) {
	run := func() (uint64, float64) {
		o := buildClique(t, 12)
		cfg := DefaultConfig(PROPO)
		p, err := New(o, cfg, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		eng := event.New()
		var c event.Clock = eng // the seam under test
		p.Start(c)
		eng.RunUntil(30 * 60000)
		return p.Counters.Probes, o.MeanLinkLatency()
	}
	p1, m1 := run()
	p2, m2 := run()
	if p1 != p2 || m1 != m2 {
		t.Fatalf("clock-seam runs diverged: probes %d vs %d, mean latency %v vs %v", p1, p2, m1, m2)
	}
	if p1 == 0 {
		t.Fatal("no probes executed")
	}
}
