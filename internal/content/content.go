// Package content models the file-sharing workload the paper's Gnutella
// discussion presumes: items with Zipf-skewed popularity, replicated across
// machines, retrieved by flooding search that any replica satisfies
// ("requests for files are flooded with a certain scope", §1).
//
// Items are placed on *hosts* — machines hold files — so the placement
// survives PROP-G position exchanges untouched; what an exchange changes is
// where in the overlay each machine sits, and therefore how far queries
// travel.
//
// Key type: Catalog (placement plus flooding retrieval). See DESIGN.md §1
// (content/replication model) and the "replication" extension in
// EXPERIMENTS.md.
package content

import (
	"fmt"
	"math"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// Config describes a catalog.
type Config struct {
	// Items is the number of distinct items.
	Items int
	// Replicas is the number of machines holding each item.
	Replicas int
	// ZipfS is the Zipf popularity exponent (queries target item ranked k
	// with probability ∝ k^-s). Zero means uniform popularity.
	ZipfS float64
}

// DefaultConfig models a small file-sharing community: 500 items, 3
// replicas each, s = 0.8 (measured Gnutella workloads are sub-1 Zipf).
func DefaultConfig() Config { return Config{Items: 500, Replicas: 3, ZipfS: 0.8} }

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.Items < 1:
		return fmt.Errorf("content: Items = %d, want >= 1", c.Items)
	case c.Replicas < 1:
		return fmt.Errorf("content: Replicas = %d, want >= 1", c.Replicas)
	case c.ZipfS < 0:
		return fmt.Errorf("content: ZipfS = %v, want >= 0", c.ZipfS)
	}
	return nil
}

// Catalog is a placed set of items.
type Catalog struct {
	cfg Config
	// holders[i] lists the hosts storing item i.
	holders [][]int
	// popCDF is the cumulative popularity distribution for query sampling.
	popCDF []float64
}

// Place distributes every item onto Replicas distinct machines of the
// overlay, chosen uniformly at random.
func Place(o *overlay.Overlay, cfg Config, r *rng.Rand) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hosts := o.Hosts()
	if len(hosts) < cfg.Replicas {
		return nil, fmt.Errorf("content: %d replicas but only %d machines", cfg.Replicas, len(hosts))
	}
	c := &Catalog{cfg: cfg, holders: make([][]int, cfg.Items)}
	for i := range c.holders {
		chosen := map[int]bool{}
		for len(chosen) < cfg.Replicas {
			chosen[hosts[r.Intn(len(hosts))]] = true
		}
		hs := make([]int, 0, cfg.Replicas)
		for h := range chosen {
			hs = append(hs, h)
		}
		c.holders[i] = hs
	}
	// Zipf CDF over ranks 1..Items.
	c.popCDF = make([]float64, cfg.Items)
	total := 0.0
	for k := 1; k <= cfg.Items; k++ {
		total += math.Pow(float64(k), -cfg.ZipfS)
		c.popCDF[k-1] = total
	}
	for i := range c.popCDF {
		c.popCDF[i] /= total
	}
	return c, nil
}

// Items returns the catalog size.
func (c *Catalog) Items() int { return c.cfg.Items }

// Holders returns the machines storing item i (shared storage).
func (c *Catalog) Holders(i int) []int { return c.holders[i] }

// DrawItem samples an item by Zipf popularity.
func (c *Catalog) DrawItem(r *rng.Rand) int {
	x := r.Float64()
	lo, hi := 0, len(c.popCDF)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.popCDF[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SearchLatency returns the first-arrival flooding latency from the peer at
// slot src to the nearest live replica of item, in the overlay's *current*
// host→slot assignment. +Inf when no replica's machine is an overlay member.
func (c *Catalog) SearchLatency(o *overlay.Overlay, src, item int, proc overlay.ProcDelayFunc) float64 {
	if item < 0 || item >= len(c.holders) {
		return math.Inf(1)
	}
	var dsts []int
	for _, h := range c.holders[item] {
		if s := o.SlotOfHost(h); s >= 0 {
			dsts = append(dsts, s)
		}
	}
	return o.FloodLatencyAny(src, dsts, proc)
}

// MeanSearchLatency samples queries uniform-source/Zipf-item queries and
// returns the mean first-replica latency plus the count of failed searches.
func (c *Catalog) MeanSearchLatency(o *overlay.Overlay, queries int, proc overlay.ProcDelayFunc, r *rng.Rand) (float64, int) {
	slots := o.AliveSlots()
	if len(slots) == 0 || queries < 1 {
		return 0, 0
	}
	sum, n, failed := 0.0, 0, 0
	for q := 0; q < queries; q++ {
		src := slots[r.Intn(len(slots))]
		d := c.SearchLatency(o, src, c.DrawItem(r), proc)
		if math.IsInf(d, 1) {
			failed++
			continue
		}
		sum += d
		n++
	}
	if n == 0 {
		return math.Inf(1), failed
	}
	return sum / float64(n), failed
}
