package content

import (
	"math"
	"testing"

	"repro/internal/gnutella"
	"repro/internal/overlay"
	"repro/internal/rng"
)

func lat(a, b int) float64 { return math.Abs(float64(a - b)) }

func buildOverlay(t *testing.T, n int) *overlay.Overlay {
	t.Helper()
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i * 2
	}
	o, err := gnutella.Build(hosts, gnutella.DefaultConfig(), lat, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Items: 0, Replicas: 1},
		{Items: 1, Replicas: 0},
		{Items: 1, Replicas: 1, ZipfS: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPlaceReplicas(t *testing.T) {
	o := buildOverlay(t, 100)
	cfg := Config{Items: 50, Replicas: 4, ZipfS: 1}
	c, err := Place(o, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if c.Items() != 50 {
		t.Fatalf("Items = %d", c.Items())
	}
	hostSet := map[int]bool{}
	for _, h := range o.Hosts() {
		hostSet[h] = true
	}
	for i := 0; i < 50; i++ {
		hs := c.Holders(i)
		if len(hs) != 4 {
			t.Fatalf("item %d has %d replicas", i, len(hs))
		}
		seen := map[int]bool{}
		for _, h := range hs {
			if !hostSet[h] {
				t.Fatalf("item %d on unknown host %d", i, h)
			}
			if seen[h] {
				t.Fatalf("item %d replicated twice on host %d", i, h)
			}
			seen[h] = true
		}
	}
}

func TestPlaceErrors(t *testing.T) {
	o := buildOverlay(t, 10)
	if _, err := Place(o, Config{Items: 5, Replicas: 11}, rng.New(1)); err == nil {
		t.Fatal("more replicas than machines accepted")
	}
	if _, err := Place(o, Config{Items: 0, Replicas: 1}, rng.New(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDrawItemZipfSkew(t *testing.T) {
	o := buildOverlay(t, 50)
	c, err := Place(o, Config{Items: 100, Replicas: 1, ZipfS: 1.0}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	counts := make([]int, 100)
	const draws = 100000
	for i := 0; i < draws; i++ {
		it := c.DrawItem(r)
		if it < 0 || it >= 100 {
			t.Fatalf("DrawItem out of range: %d", it)
		}
		counts[it]++
	}
	// Rank 1 must be drawn far more often than rank 50.
	if counts[0] < 5*counts[49] {
		t.Fatalf("no Zipf skew: rank1=%d rank50=%d", counts[0], counts[49])
	}
	// Uniform (s=0) must not be skewed.
	cu, err := Place(o, Config{Items: 100, Replicas: 1, ZipfS: 0}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	uc := make([]int, 100)
	for i := 0; i < draws; i++ {
		uc[cu.DrawItem(r)]++
	}
	if float64(uc[0]) > 2*float64(uc[99]) {
		t.Fatalf("uniform popularity skewed: %d vs %d", uc[0], uc[99])
	}
}

func TestSearchLatencyNearestReplica(t *testing.T) {
	// Line overlay 0-1-2-3 (hosts 0,2,4,6 at unit spacing 2).
	hosts := []int{0, 2, 4, 6}
	o, err := overlay.New(hosts, lat)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		o.AddEdge(i, i+1)
	}
	c := &Catalog{cfg: Config{Items: 1, Replicas: 2}, holders: [][]int{{0, 6}}, popCDF: []float64{1}}
	// From slot 1 (host 2): replica at host 0 is 2 away; host 6 is 4 away.
	if d := c.SearchLatency(o, 1, 0, nil); d != 2 {
		t.Fatalf("SearchLatency = %v, want 2", d)
	}
	// Searching from a holder costs 0.
	if d := c.SearchLatency(o, 0, 0, nil); d != 0 {
		t.Fatalf("holder search = %v", d)
	}
	// Unknown item fails.
	if d := c.SearchLatency(o, 0, 99, nil); !math.IsInf(d, 1) {
		t.Fatalf("unknown item = %v", d)
	}
}

func TestMeanSearchLatencyImprovesWithReplicas(t *testing.T) {
	o := buildOverlay(t, 200)
	r1, err := Place(o, Config{Items: 100, Replicas: 1, ZipfS: 0.8}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Place(o, Config{Items: 100, Replicas: 8, ZipfS: 0.8}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	m1, f1 := r1.MeanSearchLatency(o, 2000, nil, rng.New(11))
	m8, f8 := r8.MeanSearchLatency(o, 2000, nil, rng.New(11))
	if f1 != 0 || f8 != 0 {
		t.Fatalf("failed searches: %d/%d", f1, f8)
	}
	if m8 >= m1 {
		t.Fatalf("8 replicas (%.1f) not cheaper than 1 (%.1f)", m8, m1)
	}
}

func TestPlacementSurvivesHostSwaps(t *testing.T) {
	o := buildOverlay(t, 100)
	c, err := Place(o, DefaultConfig(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	before := append([]int(nil), c.Holders(0)...)
	for i := 0; i < 50; i++ {
		u, v := r.Intn(100), r.Intn(100)
		if u != v {
			o.SwapHosts(u, v)
		}
	}
	after := c.Holders(0)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("placement changed under host swaps (items must follow machines)")
		}
	}
	// Search still works against the new slot assignment.
	if d := c.SearchLatency(o, o.AliveSlots()[0], 0, nil); math.IsInf(d, 1) {
		t.Fatal("search failed after swaps")
	}
}
