// Package livesim runs message-level DHT lookups *concurrently* with PROP
// exchanges on the same simulated clock, reproducing the §3.2 correctness
// mechanism the coarse experiments abstract away:
//
//	"Both of them cache the address of their counterparts so that the
//	 lookups in progress during peer-exchange can be forwarded correctly."
//
// In the slot/host model a routing step resolves a logical position (slot)
// to a machine address (host) at *send* time; the message then spends
// d(sender, addressee) milliseconds in flight. If the addressee executes a
// PROP-G exchange during that flight, the message arrives at a machine
// that no longer plays the expected overlay role. The machine's counterpart
// cache — written at exchange time — redirects the message one extra hop to
// the machine that took over its position, exactly as the paper prescribes
// (and exactly the "two hops instead of one" cost §4.2 discusses). If the
// cache cannot resolve the role (a second exchange raced the redirect), the
// sender re-resolves against its updated routing entry — the paper's
// neighbor-notification path — and the lookup continues.
//
// Key types: Sim and Summary. See DESIGN.md §6 (failure injection) and the
// "inflight" experiment in EXPERIMENTS.md.
package livesim

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/event"
)

// Outcome describes one completed lookup.
type Outcome struct {
	// Key is the looked-up identifier.
	Key uint32
	// Correct reports whether the lookup terminated at the true owner slot.
	Correct bool
	// Hops is the number of routing hops (excluding redirects).
	Hops int
	// Redirects is the number of counterpart-cache forwards taken.
	Redirects int
	// Reresolves is the number of times a stale hop had to be re-resolved
	// via the sender's (already notified) routing state.
	Reresolves int
	// Latency is the total time from issue to completion in ms.
	Latency float64
}

// Sim couples one Chord ring, one PROP protocol, and one event engine, and
// issues lookups whose hops interleave with protocol exchanges.
type Sim struct {
	Ring *chord.Ring
	Prop *core.Protocol

	// Audit, if non-nil, observes every completed lookup as a KindLookup
	// record (A = issue slot, B = terminal slot, Aux = [hops, redirects,
	// reresolves], Val = latency) and records an incorrect termination as an
	// audit violation.
	Audit *audit.Auditor

	// Outcomes collects every finished lookup.
	Outcomes []Outcome

	counterpart map[int]int // host -> host that took over its last slot
	maxHops     int
}

// New wires a Sim: it installs a Trace hook on prop to maintain the
// counterpart caches. The caller must not overwrite prop.Trace afterwards.
func New(ring *chord.Ring, prop *core.Protocol) (*Sim, error) {
	if ring == nil || prop == nil {
		return nil, fmt.Errorf("livesim: nil ring or protocol")
	}
	if prop.O != ring.O {
		return nil, fmt.Errorf("livesim: protocol and ring use different overlays")
	}
	s := &Sim{
		Ring:        ring,
		Prop:        prop,
		counterpart: make(map[int]int),
		maxHops:     ring.O.NumSlots() + 64,
	}
	prev := prop.Trace
	prop.Trace = func(ev core.ExchangeEvent) {
		// After a PROP-G swap of slots u,v the host now at u used to be at
		// v and vice versa: each machine's counterpart is the machine that
		// took over its previous position.
		hu := ring.O.HostOf(ev.U) // held v before the swap
		hv := ring.O.HostOf(ev.V) // held u before the swap
		s.counterpart[hu] = hv
		s.counterpart[hv] = hu
		if prev != nil {
			prev(ev)
		}
	}
	return s, nil
}

// IssueLookup schedules a lookup for key from slot src at time at. The
// lookup proceeds hop by hop on the engine clock; its Outcome is appended
// when it terminates.
func (s *Sim) IssueLookup(e *event.Engine, at event.Time, src int, key uint32) {
	e.At(at, func(en *event.Engine) {
		s.hop(en, lookupState{key: key, src: src, slot: src, issued: en.Now()})
	})
}

type lookupState struct {
	key        uint32
	src        int // slot the lookup was issued from
	slot       int // slot whose role is currently processing the lookup
	hops       int
	redirects  int
	reresolves int
	issued     event.Time
}

// hop executes one routing decision at st.slot and sends the message.
func (s *Sim) hop(e *event.Engine, st lookupState) {
	if st.hops > s.maxHops {
		s.finish(e, st, false)
		return
	}
	if s.Ring.IsOwner(st.slot, st.key) {
		s.finish(e, st, true)
		return
	}
	next := s.Ring.NextHopSlot(st.slot, st.key)
	if next == st.slot {
		s.finish(e, st, s.Ring.IsOwner(st.slot, st.key))
		return
	}
	// Resolve the logical position to a machine *now*; the flight takes
	// d(sender, addressee). An exchange during the flight makes the
	// address stale.
	addressee := s.Ring.O.HostOf(next)
	flight := event.Time(s.Ring.O.Dist(st.slot, next))
	st.hops++
	e.After(flight, func(en *event.Engine) {
		s.arrive(en, st, next, addressee, 0)
	})
}

// arrive handles the message reaching a machine that is expected to hold
// slot expected.
func (s *Sim) arrive(e *event.Engine, st lookupState, expected, atHost, chain int) {
	if s.Ring.O.SlotOfHost(atHost) == expected {
		// The machine still (or again) plays the expected role; continue.
		st.slot = expected
		s.hop(e, st)
		return
	}
	// Stale: the machine was exchanged mid-flight. Follow its counterpart
	// cache once; a longer chain means a second exchange raced us, in which
	// case we re-resolve from the (notified) current truth.
	if chain < 1 {
		if cp, ok := s.counterpart[atHost]; ok {
			st.redirects++
			hopLat := event.Time(latencyBetweenHosts(s, atHost, cp))
			e.After(hopLat, func(en *event.Engine) {
				s.arrive(en, st, expected, cp, chain+1)
			})
			return
		}
	}
	// Re-resolve: the routing entries of the expected slot's neighbors have
	// been rewritten by the exchange notifications; route to the slot's
	// current machine directly.
	st.reresolves++
	cur := s.Ring.O.HostOf(expected)
	hopLat := event.Time(latencyBetweenHosts(s, atHost, cur))
	e.After(hopLat, func(en *event.Engine) {
		if s.Ring.O.SlotOfHost(cur) == expected {
			st.slot = expected
			s.hop(en, st)
			return
		}
		// Exchanged yet again mid-flight; try once more from scratch.
		s.arrive(en, st, expected, s.Ring.O.HostOf(expected), 0)
	})
}

// latencyBetweenHosts measures host-to-host latency through the overlay's
// latency function by probing via slots (hosts are only addressable through
// the oracle the overlay holds). Both hosts are live by construction.
func latencyBetweenHosts(s *Sim, a, b int) float64 {
	sa, sb := s.Ring.O.SlotOfHost(a), s.Ring.O.SlotOfHost(b)
	if sa >= 0 && sb >= 0 {
		return s.Ring.O.Dist(sa, sb)
	}
	return 0
}

func (s *Sim) finish(e *event.Engine, st lookupState, correct bool) {
	out := Outcome{
		Key:        st.key,
		Correct:    correct && s.Ring.IsOwner(st.slot, st.key),
		Hops:       st.hops,
		Redirects:  st.redirects,
		Reresolves: st.reresolves,
		Latency:    float64(e.Now() - st.issued),
	}
	s.Outcomes = append(s.Outcomes, out)
	if s.Audit != nil {
		s.Audit.Observe(audit.Record{
			At: float64(e.Now()), Kind: audit.KindLookup,
			A: st.src, B: st.slot,
			Aux: []int{st.hops, st.redirects, st.reresolves},
			Val: out.Latency,
		})
		if !out.Correct {
			s.Audit.Fail("livesim-lookup-correct", fmt.Errorf(
				"lookup for key %d from slot %d terminated at slot %d (owner %d) after %d hops",
				st.key, st.src, st.slot, s.Ring.Owner(st.key), st.hops))
		}
	}
}

// Summary aggregates outcomes.
type Summary struct {
	Lookups    int
	Correct    int
	Redirects  int
	Reresolves int
	MeanHops   float64
	MeanMS     float64
}

// Summarize reduces the collected outcomes.
func (s *Sim) Summarize() Summary {
	sum := Summary{Lookups: len(s.Outcomes)}
	if sum.Lookups == 0 {
		return sum
	}
	totalHops, totalMS := 0, 0.0
	for _, o := range s.Outcomes {
		if o.Correct {
			sum.Correct++
		}
		sum.Redirects += o.Redirects
		sum.Reresolves += o.Reresolves
		totalHops += o.Hops
		totalMS += o.Latency
	}
	sum.MeanHops = float64(totalHops) / float64(sum.Lookups)
	sum.MeanMS = totalMS / float64(sum.Lookups)
	return sum
}
