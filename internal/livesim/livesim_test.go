package livesim

import (
	"math"
	"testing"

	"repro/internal/audit"
	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/rng"
)

func lat(a, b int) float64 { return math.Abs(float64(a-b)) + 1 }

func buildWorld(t testing.TB, n int, seed uint64, initTimer float64) (*chord.Ring, *core.Protocol) {
	t.Helper()
	r := rng.New(seed)
	hosts := r.Perm(n * 10)[:n]
	ring, err := chord.Build(hosts, chord.DefaultConfig(), lat, r)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.PROPG)
	cfg.InitTimerMS = initTimer
	p, err := core.New(ring.O, cfg, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	return ring, p
}

func TestNewValidation(t *testing.T) {
	ring, p := buildWorld(t, 32, 1, 1000)
	if _, err := New(nil, p); err == nil {
		t.Error("nil ring accepted")
	}
	if _, err := New(ring, nil); err == nil {
		t.Error("nil protocol accepted")
	}
	ring2, _ := buildWorld(t, 32, 2, 1000)
	if _, err := New(ring2, p); err == nil {
		t.Error("mismatched overlay accepted")
	}
	if _, err := New(ring, p); err != nil {
		t.Fatal(err)
	}
}

func TestLookupsWithoutChurnAreCorrect(t *testing.T) {
	ring, p := buildWorld(t, 64, 3, 1e12) // timer so large no probe fires
	sim, err := New(ring, p)
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	r := rng.New(9)
	const lookups = 200
	for i := 0; i < lookups; i++ {
		sim.IssueLookup(e, event.Time(i), r.Intn(64), chord.RandomKey(r))
	}
	e.Run(0)
	sum := sim.Summarize()
	if sum.Lookups != lookups || sum.Correct != lookups {
		t.Fatalf("quiet ring: %+v", sum)
	}
	if sum.Redirects != 0 || sum.Reresolves != 0 {
		t.Fatalf("redirects on a quiet ring: %+v", sum)
	}
	if sum.MeanHops < 1 || sum.MeanHops > 10 {
		t.Fatalf("implausible hop count: %+v", sum)
	}
}

func TestLookupsDuringHeavyExchangeAllComplete(t *testing.T) {
	// Aggressive probing (10ms timer) so many exchanges race the lookups.
	ring, p := buildWorld(t, 128, 7, 10)
	sim, err := New(ring, p)
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	r := rng.New(5)
	const lookups = 500
	for i := 0; i < lookups; i++ {
		sim.IssueLookup(e, event.Time(float64(i)*3), r.Intn(128), chord.RandomKey(r))
	}
	e.RunUntil(60000)
	sum := sim.Summarize()
	if sum.Lookups != lookups {
		t.Fatalf("lookups lost: %+v", sum)
	}
	if sum.Correct != lookups {
		t.Fatalf("incorrect lookups under churn of exchanges: %+v", sum)
	}
	if p.Counters.Exchanges == 0 {
		t.Fatal("test vacuous: no exchanges happened")
	}
	t.Logf("exchanges=%d redirects=%d reresolves=%d", p.Counters.Exchanges, sum.Redirects, sum.Reresolves)
}

func TestCounterpartCacheIsExercised(t *testing.T) {
	// With a huge volume of in-flight lookups and constant exchanges, at
	// least some messages must arrive stale and take the redirect path.
	ring, p := buildWorld(t, 256, 11, 5)
	sim, err := New(ring, p)
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	r := rng.New(13)
	const lookups = 2000
	for i := 0; i < lookups; i++ {
		sim.IssueLookup(e, event.Time(float64(i)), r.Intn(256), chord.RandomKey(r))
	}
	e.RunUntil(120000)
	sum := sim.Summarize()
	if sum.Lookups != lookups || sum.Correct != lookups {
		t.Fatalf("completion/correctness: %+v", sum)
	}
	if sum.Redirects+sum.Reresolves == 0 {
		t.Fatalf("no stale arrivals despite %d exchanges — test not exercising the cache",
			p.Counters.Exchanges)
	}
}

func TestTraceChainPreserved(t *testing.T) {
	// livesim must not swallow a pre-installed Trace hook.
	ring, p := buildWorld(t, 64, 17, 10)
	seen := 0
	p.Trace = func(core.ExchangeEvent) { seen++ }
	if _, err := New(ring, p); err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(5000)
	if uint64(seen) != p.Counters.Exchanges {
		t.Fatalf("prior trace hook saw %d of %d exchanges", seen, p.Counters.Exchanges)
	}
}

func TestAuditObservesLookups(t *testing.T) {
	// With an auditor attached, every completed lookup becomes a KindLookup
	// record and a correct run stays violation-free under the full overlay
	// invariant set (bijection, connectivity, frozen topology).
	ring, p := buildWorld(t, 64, 23, 10)
	sim, err := New(ring, p)
	if err != nil {
		t.Fatal(err)
	}
	a := audit.New(1, 64)
	a.Register(
		audit.OverlayBijection(ring.O),
		audit.OverlayConnected(ring.O),
		audit.TopologyFrozen(ring.O),
		audit.Check("chord-wellformed", ring.CheckInvariants),
	)
	sim.Audit = a
	e := event.New()
	a.AttachEngine(e)
	p.Start(e)
	r := rng.New(29)
	const lookups = 100
	for i := 0; i < lookups; i++ {
		sim.IssueLookup(e, event.Time(float64(i)*5), r.Intn(64), chord.RandomKey(r))
	}
	e.RunUntil(30000)
	a.CheckNow()
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	if a.Events() != lookups {
		t.Fatalf("auditor saw %d lookup records, want %d", a.Events(), lookups)
	}
	// A deliberately wrong outcome must be flagged.
	notOwner := (ring.Owner(1) + 1) % 64
	sim.finish(e, lookupState{key: 1, src: 0, slot: notOwner}, false)
	if err := a.Err(); err == nil {
		t.Fatal("incorrect lookup outcome not flagged by the auditor")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	ring, p := buildWorld(t, 16, 19, 1000)
	sim, err := New(ring, p)
	if err != nil {
		t.Fatal(err)
	}
	if sum := sim.Summarize(); sum.Lookups != 0 || sum.MeanHops != 0 {
		t.Fatalf("empty summary: %+v", sum)
	}
}
