package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestUniform(t *testing.T) {
	slots := []int{3, 7, 11, 19}
	ls, err := Uniform(slots, 1000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 1000 {
		t.Fatalf("count = %d", len(ls))
	}
	inSet := map[int]bool{3: true, 7: true, 11: true, 19: true}
	for _, l := range ls {
		if l.Src == l.Dst {
			t.Fatal("self lookup generated")
		}
		if !inSet[l.Src] || !inSet[l.Dst] {
			t.Fatalf("lookup outside slot set: %+v", l)
		}
	}
}

func TestUniformErrors(t *testing.T) {
	if _, err := Uniform([]int{1}, 10, rng.New(1)); err == nil {
		t.Error("single slot accepted")
	}
	if _, err := Uniform([]int{1, 2}, -1, rng.New(1)); err == nil {
		t.Error("negative count accepted")
	}
}

func TestSkewedFractions(t *testing.T) {
	all := make([]int, 100)
	for i := range all {
		all[i] = i
	}
	fast := all[:20]
	slow := all[20:]
	for _, frac := range []float64{0, 0.3, 0.7, 1} {
		ls, err := Skewed(all, fast, slow, frac, 20000, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		for _, l := range ls {
			if l.Dst < 20 {
				hits++
			}
			if l.Src == l.Dst {
				t.Fatal("self lookup")
			}
		}
		got := float64(hits) / float64(len(ls))
		if math.Abs(got-frac) > 0.02 {
			t.Errorf("frac %v: measured %v", frac, got)
		}
	}
}

func TestSkewedErrors(t *testing.T) {
	all := []int{1, 2, 3}
	if _, err := Skewed([]int{1}, all, all, 0.5, 10, rng.New(1)); err == nil {
		t.Error("too-few slots accepted")
	}
	if _, err := Skewed(all, all, all, 1.5, 10, rng.New(1)); err == nil {
		t.Error("bad fraction accepted")
	}
	if _, err := Skewed(all, nil, all, 0.5, 10, rng.New(1)); err == nil {
		t.Error("empty fast pool with positive fraction accepted")
	}
	if _, err := Skewed(all, all, nil, 0.5, 10, rng.New(1)); err == nil {
		t.Error("empty slow pool with fraction < 1 accepted")
	}
	if _, err := Skewed(all, all, all, 0.5, -2, rng.New(1)); err == nil {
		t.Error("negative count accepted")
	}
	// Boundary fractions tolerate the corresponding empty pool.
	if _, err := Skewed(all, nil, all, 0, 10, rng.New(1)); err != nil {
		t.Errorf("fraction 0 with empty fast pool rejected: %v", err)
	}
	if _, err := Skewed(all, all, nil, 1, 10, rng.New(1)); err != nil {
		t.Errorf("fraction 1 with empty slow pool rejected: %v", err)
	}
}
