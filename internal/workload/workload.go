// Package workload generates the lookup workloads of the paper's
// evaluation: uniform source/destination pairs for the Fig. 5/6 latency
// samples, and the fast-node-skewed destination mix of Fig. 7 ("we simulate
// this phenomenon by increasing the fraction of lookups whose destination
// is a fast node").
//
// Key type: Lookup; generators Uniform (Figs. 5/6) and Skewed (Fig. 7).
// See DESIGN.md §2.
package workload

import (
	"fmt"

	"repro/internal/rng"
)

// Lookup is one query: a source slot asking for content held by a
// destination slot.
type Lookup struct {
	Src, Dst int
}

// Uniform draws count lookups with source and destination chosen uniformly
// from slots, never equal. It needs at least two slots.
func Uniform(slots []int, count int, r *rng.Rand) ([]Lookup, error) {
	if len(slots) < 2 {
		return nil, fmt.Errorf("workload: need >= 2 slots, got %d", len(slots))
	}
	if count < 0 {
		return nil, fmt.Errorf("workload: negative count %d", count)
	}
	out := make([]Lookup, count)
	for i := range out {
		src := slots[r.Intn(len(slots))]
		dst := slots[r.Intn(len(slots))]
		for dst == src {
			dst = slots[r.Intn(len(slots))]
		}
		out[i] = Lookup{Src: src, Dst: dst}
	}
	return out, nil
}

// Skewed draws count lookups whose destination is a fast slot with
// probability fastFraction and a slow slot otherwise; sources are uniform
// over all slots. Either class may be empty only if its probability is 0.
func Skewed(all, fast, slow []int, fastFraction float64, count int, r *rng.Rand) ([]Lookup, error) {
	if len(all) < 2 {
		return nil, fmt.Errorf("workload: need >= 2 slots, got %d", len(all))
	}
	if fastFraction < 0 || fastFraction > 1 {
		return nil, fmt.Errorf("workload: fastFraction %v out of [0,1]", fastFraction)
	}
	if count < 0 {
		return nil, fmt.Errorf("workload: negative count %d", count)
	}
	if fastFraction > 0 && len(fast) == 0 {
		return nil, fmt.Errorf("workload: fastFraction %v but no fast slots", fastFraction)
	}
	if fastFraction < 1 && len(slow) == 0 {
		return nil, fmt.Errorf("workload: fastFraction %v but no slow slots", fastFraction)
	}
	out := make([]Lookup, count)
	for i := range out {
		var pool []int
		if r.Bool(fastFraction) {
			pool = fast
		} else {
			pool = slow
		}
		dst := pool[r.Intn(len(pool))]
		src := all[r.Intn(len(all))]
		for src == dst {
			src = all[r.Intn(len(all))]
		}
		out[i] = Lookup{Src: src, Dst: dst}
	}
	return out, nil
}
