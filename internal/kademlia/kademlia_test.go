package kademlia

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func lat(a, b int) float64 { return math.Abs(float64(a - b)) }

func hostsN(n int) []int {
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i * 4
	}
	return hosts
}

func buildNet(t testing.TB, n int, seed uint64) *Net {
	t.Helper()
	net, err := Build(hostsN(n), DefaultConfig(), lat, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(hostsN(1), DefaultConfig(), lat, rng.New(1)); err == nil {
		t.Error("single node accepted")
	}
	if _, err := Build(hostsN(8), Config{K: 0}, lat, rng.New(1)); err == nil {
		t.Error("zero K accepted")
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		a, b uint32
		want int
	}{
		{0, 1, 0},
		{0, 2, 1},
		{0, 3, 1},
		{0, 1 << 31, 31},
		{0xFFFFFFFF, 0x7FFFFFFF, 31},
		{5, 5, -1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.a, c.b); got != c.want {
			t.Errorf("bucketIndex(%#x,%#x) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBucketsRespectRangeAndCapacity(t *testing.T) {
	net := buildNet(t, 200, 42)
	for s := 0; s < 200; s++ {
		for bi := 0; bi < Bits; bi++ {
			bucket := net.Bucket(s, bi)
			if len(bucket) > DefaultConfig().K {
				t.Fatalf("slot %d bucket %d over capacity: %d", s, bi, len(bucket))
			}
			for _, c := range bucket {
				if got := bucketIndex(net.ID[s], net.ID[c]); got != bi {
					t.Fatalf("slot %d bucket %d holds contact of bucket %d", s, bi, got)
				}
			}
		}
	}
	if net.Bucket(0, -1) != nil || net.Bucket(0, Bits) != nil {
		t.Fatal("out-of-range bucket should be nil")
	}
}

func TestOwnerIsXORClosest(t *testing.T) {
	net := buildNet(t, 64, 9)
	r := rng.New(3)
	for i := 0; i < 500; i++ {
		key := RandomKey(r)
		owner := net.Owner(key)
		for s := 0; s < 64; s++ {
			if net.ID[s]^key < net.ID[owner]^key {
				t.Fatalf("owner %d not XOR-closest for key %d", owner, key)
			}
		}
	}
}

func TestLookupFindsOwner(t *testing.T) {
	net := buildNet(t, 256, 11)
	r := rng.New(77)
	for i := 0; i < 500; i++ {
		key := RandomKey(r)
		res, err := net.Lookup(r.Intn(256), key, nil)
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if res.Owner != net.Owner(key) || res.Path[len(res.Path)-1] != res.Owner {
			t.Fatalf("lookup mismatch: %+v", res)
		}
	}
}

func TestLookupLogarithmicHops(t *testing.T) {
	net := buildNet(t, 1024, 13)
	r := rng.New(1)
	total := 0
	const lookups = 300
	for i := 0; i < lookups; i++ {
		res, err := net.Lookup(r.Intn(1024), RandomKey(r), nil)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Hops
	}
	if avg := float64(total) / lookups; avg > 8 {
		t.Fatalf("average hops %.1f too high for n=1024", avg)
	}
}

func TestLookupProcessingDelay(t *testing.T) {
	net := buildNet(t, 128, 31)
	r := rng.New(4)
	src, key := r.Intn(128), RandomKey(r)
	base, err := net.Lookup(src, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	withProc, err := net.Lookup(src, key, func(int) float64 { return 6 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withProc.Latency-base.Latency-float64(base.Hops)*6) > 1e-9 {
		t.Fatal("processing delay accounting off")
	}
}

func TestLookupFromDeadSlot(t *testing.T) {
	net := buildNet(t, 16, 2)
	if _, err := net.Lookup(999, 1, nil); err == nil {
		t.Fatal("lookup from invalid slot accepted")
	}
}

func TestProximityReducesLinkLatency(t *testing.T) {
	hosts := hostsN(400)
	plain, err := Build(hosts, Config{K: 8}, lat, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	prox, err := Build(hosts, Config{K: 8, Proximity: true}, lat, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	if prox.O.MeanLinkLatency() >= plain.O.MeanLinkLatency() {
		t.Fatalf("proximity links %.1f not below plain %.1f",
			prox.O.MeanLinkLatency(), plain.O.MeanLinkLatency())
	}
	r := rng.New(6)
	for i := 0; i < 300; i++ {
		key := RandomKey(r)
		res, err := prox.Lookup(r.Intn(400), key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner != prox.Owner(key) {
			t.Fatal("proximity lookup reached wrong owner")
		}
	}
}

func TestLookupTerminatesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(100)
		net, err := Build(hostsN(n), DefaultConfig(), lat, r)
		if err != nil {
			return false
		}
		for i := 0; i < 15; i++ {
			key := RandomKey(r)
			res, err := net.Lookup(r.Intn(n), key, nil)
			if err != nil || res.Owner != net.Owner(key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSwapHostsPreservesRouting(t *testing.T) {
	net := buildNet(t, 128, 17)
	r := rng.New(2)
	for i := 0; i < 60; i++ {
		u, v := r.Intn(128), r.Intn(128)
		if u != v {
			if err := net.O.SwapHosts(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 300; i++ {
		key := RandomKey(r)
		res, err := net.Lookup(r.Intn(128), key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner != net.Owner(key) {
			t.Fatal("routing broken after host swaps")
		}
	}
}

func TestRefresh(t *testing.T) {
	// Plain refresh is a no-op on the edge set.
	plain := buildNet(t, 100, 23)
	before := plain.O.Logical.Edges()
	plain.Refresh(lat)
	after := plain.O.Logical.Edges()
	if len(before) != len(after) {
		t.Fatalf("plain refresh changed edges %d -> %d", len(before), len(after))
	}
	// Proximity refresh after swaps improves links.
	prox, err := Build(hostsN(200), Config{K: 8, Proximity: true}, lat, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	for i := 0; i < 100; i++ {
		u, v := r.Intn(200), r.Intn(200)
		if u != v {
			prox.O.SwapHosts(u, v)
		}
	}
	stale := prox.O.MeanLinkLatency()
	prox.Refresh(lat)
	if prox.O.MeanLinkLatency() > stale {
		t.Fatal("proximity refresh made links worse")
	}
}

func BenchmarkLookup1k(b *testing.B) {
	net, err := Build(hostsN(1000), DefaultConfig(), lat, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Lookup(r.Intn(1000), RandomKey(r), nil); err != nil {
			b.Fatal(err)
		}
	}
}
