package kademlia

import (
	"fmt"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// Dynamic membership. Kademlia buckets self-heal through ordinary lookup
// traffic; the simulator's equivalent of the converged post-churn state is
// a bucket refill from global knowledge restricted to the live membership
// (the same source Build uses).

// Join adds a node on host with a fresh uniformly random unique identifier
// and returns its slot.
func (net *Net) Join(host int, lat overlay.LatencyFunc, r *rng.Rand) (int, error) {
	inUse := make(map[uint32]bool, net.O.NumAlive())
	for _, s := range net.O.AliveSlots() {
		inUse[net.ID[s]] = true
	}
	var id uint32
	for {
		id = uint32(r.Uint64())
		if !inUse[id] {
			break
		}
	}
	slot, err := net.O.AddSlot(host)
	if err != nil {
		return -1, err
	}
	for len(net.ID) <= slot {
		net.ID = append(net.ID, 0)
		net.buckets = append(net.buckets, nil)
	}
	net.ID[slot] = id
	net.Refresh(lat)
	return slot, nil
}

// Leave removes slot from the network. The network must retain at least two
// nodes.
func (net *Net) Leave(slot int, lat overlay.LatencyFunc) error {
	if !net.O.Alive(slot) {
		return fmt.Errorf("kademlia: Leave(%d) on dead slot", slot)
	}
	if net.O.NumAlive() <= 2 {
		return fmt.Errorf("kademlia: refusing to shrink below 2 nodes")
	}
	if err := net.O.RemoveSlot(slot); err != nil {
		return err
	}
	net.buckets[slot] = nil
	net.Refresh(lat)
	return nil
}

// Alive reports whether the slot is a live network member.
func (net *Net) Alive(slot int) bool { return net.O.Alive(slot) }

// Size returns the current network membership count.
func (net *Net) Size() int { return net.O.NumAlive() }
