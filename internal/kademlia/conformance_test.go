package kademlia

import (
	"testing"

	"repro/internal/dhttest"
	"repro/internal/overlay"
	"repro/internal/rng"
)

type dhtAdapter struct {
	net *Net
	lat overlay.LatencyFunc
}

func (a dhtAdapter) Overlay() *overlay.Overlay { return a.net.O }
func (a dhtAdapter) Owner(key uint32) int      { return a.net.Owner(key) }
func (a dhtAdapter) Lookup(src int, key uint32, proc overlay.ProcDelayFunc) (int, int, float64, error) {
	res, err := a.net.Lookup(src, key, proc)
	return res.Owner, res.Hops, res.Latency, err
}
func (a dhtAdapter) Join(host int, r *rng.Rand) (int, error) { return a.net.Join(host, a.lat, r) }
func (a dhtAdapter) Leave(slot int) error                    { return a.net.Leave(slot, a.lat) }
func (a dhtAdapter) Crash(slot int) error                    { return a.net.Crash(slot) }
func (a dhtAdapter) RepairCrashed() (int, error)             { return a.net.RepairCrashed(a.lat) }
func (a dhtAdapter) CheckInvariants() error                  { return a.net.CheckInvariants() }

func TestDHTConformance(t *testing.T) {
	dhttest.Run(t, func(hosts []int, l overlay.LatencyFunc, r *rng.Rand) (dhttest.DHT, error) {
		net, err := Build(hosts, DefaultConfig(), l, r)
		if err != nil {
			return nil, err
		}
		return dhtAdapter{net, l}, nil
	})
}

func TestDHTConformanceProximity(t *testing.T) {
	dhttest.Run(t, func(hosts []int, l overlay.LatencyFunc, r *rng.Rand) (dhttest.DHT, error) {
		net, err := Build(hosts, Config{K: 8, Proximity: true}, l, r)
		if err != nil {
			return nil, err
		}
		return dhtAdapter{net, l}, nil
	})
}
