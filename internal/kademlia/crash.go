package kademlia

import (
	"fmt"

	"repro/internal/overlay"
)

// Crash-stop failure handling. Kademlia is the most crash-tolerant of the
// four DHTs — buckets heal through ordinary traffic — so repair is simply a
// purge of the corpses followed by the same global Refresh a graceful leave
// triggers.

// Crash kills slot crash-stop: its host is released but its bucket entries
// elsewhere go stale until RepairCrashed. The network must retain at least
// two live nodes.
func (net *Net) Crash(slot int) error {
	if !net.O.Alive(slot) {
		return fmt.Errorf("kademlia: Crash(%d) on dead slot", slot)
	}
	if net.O.NumAlive() <= 2 {
		return fmt.Errorf("kademlia: refusing to shrink below 2 nodes")
	}
	return net.O.CrashSlot(slot)
}

// RepairCrashed runs one failure-recovery round: corpses are purged and the
// buckets refilled from the live membership. It returns the number of
// corpses repaired.
func (net *Net) RepairCrashed(lat overlay.LatencyFunc) (int, error) {
	crashed := net.O.CrashedSlots()
	if len(crashed) == 0 {
		return 0, nil
	}
	for _, c := range crashed {
		net.buckets[c] = nil
		if err := net.O.PurgeCrashed(c); err != nil {
			return 0, err
		}
	}
	net.Refresh(lat)
	return len(crashed), nil
}
