// Package kademlia implements the Kademlia distributed hash table
// (Maymounkov & Mazières, IPTPS '02) over the slot/host overlay model —
// the fourth structured substrate of the reproduction, with a routing
// geometry unlike Chord's ring, CAN's torus, or Pastry's prefix tree: the
// XOR metric.
//
// Kademlia matters to the paper's argument because its k-buckets hold *any*
// k contacts from each XOR subtree — the loosest routing-table constraint
// of all the classic DHTs, and therefore the most natural fit for
// proximity neighbor selection. Reproducing PROP-G here demonstrates the
// exchange protocol on a geometry where even the PNS baseline has maximal
// freedom.
//
// Identifiers are 32-bit. Node s's bucket i holds up to K contacts whose
// IDs differ from s's in bit i as the highest differing bit (i.e. XOR
// distance in [2^i, 2^(i+1))). Lookups greedily hop to the known contact
// closest to the key in XOR distance; with globally converged buckets this
// always terminates at the key's true owner.
//
// Key types: Net (the k-bucket routing state) and LookupResult. See
// DESIGN.md §1.
package kademlia

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// Bits is the identifier width.
const Bits = 32

// Config parameterizes construction.
type Config struct {
	// K is the bucket capacity (Kademlia's k; 8 is a common small-system
	// setting). Must be >= 1.
	K int
	// Proximity selects bucket contacts by physical nearness instead of
	// XOR closeness — Kademlia's native PNS.
	Proximity bool
}

// DefaultConfig returns a standard small-deployment setting.
func DefaultConfig() Config { return Config{K: 8} }

// Net is a built Kademlia network.
type Net struct {
	// O is the underlying overlay; logical links mirror bucket contacts.
	O *overlay.Overlay
	// ID holds each slot's identifier.
	ID []uint32

	cfg     Config
	buckets [][][]int // per slot: Bits buckets of contact slots
}

// Build constructs a Kademlia network over hosts with distinct random IDs.
func Build(hosts []int, cfg Config, lat overlay.LatencyFunc, r *rng.Rand) (*Net, error) {
	n := len(hosts)
	if n < 2 {
		return nil, fmt.Errorf("kademlia: need at least 2 nodes, got %d", n)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("kademlia: K = %d, want >= 1", cfg.K)
	}
	o, err := overlay.New(hosts, lat)
	if err != nil {
		return nil, err
	}
	net := &Net{O: o, ID: make([]uint32, n), cfg: cfg, buckets: make([][][]int, n)}
	used := make(map[uint32]bool, n)
	for s := 0; s < n; s++ {
		for {
			id := uint32(r.Uint64())
			if !used[id] {
				used[id] = true
				net.ID[s] = id
				break
			}
		}
	}
	net.fillBuckets(lat)
	net.mirror()
	return net, nil
}

// bucketIndex returns which of s's buckets t belongs to: the index of the
// highest bit where their IDs differ, or -1 for identical IDs.
func bucketIndex(a, b uint32) int {
	x := a ^ b
	if x == 0 {
		return -1
	}
	return 31 - bits.LeadingZeros32(x)
}

// fillBuckets populates every node's buckets from global knowledge (the
// converged state Kademlia's iterative lookups maintain in practice). Only
// live slots participate — dead slots keep no buckets and appear in none.
func (net *Net) fillBuckets(lat overlay.LatencyFunc) {
	alive := net.O.AliveSlots()
	for _, s := range alive {
		rows := make([][]int, Bits)
		// Gather candidates per bucket.
		byBucket := make([][]int, Bits)
		for _, t := range alive {
			if t == s {
				continue
			}
			bi := bucketIndex(net.ID[s], net.ID[t])
			byBucket[bi] = append(byBucket[bi], t)
		}
		hs := net.O.HostOf(s)
		for bi, cands := range byBucket {
			if len(cands) == 0 {
				continue
			}
			if net.cfg.Proximity {
				sort.Slice(cands, func(i, j int) bool {
					di := lat(hs, net.O.HostOf(cands[i]))
					dj := lat(hs, net.O.HostOf(cands[j]))
					if di != dj {
						return di < dj
					}
					return cands[i] < cands[j]
				})
			} else {
				sort.Slice(cands, func(i, j int) bool {
					xi := net.ID[s] ^ net.ID[cands[i]]
					xj := net.ID[s] ^ net.ID[cands[j]]
					if xi != xj {
						return xi < xj
					}
					return cands[i] < cands[j]
				})
			}
			if len(cands) > net.cfg.K {
				cands = cands[:net.cfg.K]
			}
			rows[bi] = append([]int(nil), cands...)
		}
		net.buckets[s] = rows
	}
}

// mirror reflects bucket contacts into the overlay's logical graph.
func (net *Net) mirror() {
	for _, s := range net.O.AliveSlots() {
		for _, bucket := range net.buckets[s] {
			for _, t := range bucket {
				if t != s {
					net.O.AddEdge(s, t)
				}
			}
		}
	}
}

// Refresh refills every bucket against the current host mapping and
// rebuilds the logical links — bucket maintenance after PROP-G exchanges.
// Plain (XOR-ordered) networks are unchanged by it.
func (net *Net) Refresh(lat overlay.LatencyFunc) {
	for _, e := range net.O.Logical.Edges() {
		net.O.Logical.RemoveEdge(e.U, e.V)
	}
	net.fillBuckets(lat)
	net.mirror()
}

// Owner returns the slot whose ID is XOR-closest to key.
func (net *Net) Owner(key uint32) int {
	best, bestX := -1, uint32(math.MaxUint32)
	for s, id := range net.ID {
		if !net.O.Alive(s) {
			continue
		}
		if x := id ^ key; x < bestX || best == -1 {
			best, bestX = s, x
		}
	}
	return best
}

// LookupResult describes one routed lookup.
type LookupResult struct {
	// Owner is the XOR-closest slot to the key.
	Owner int
	// Hops is the overlay hop count.
	Hops int
	// Latency is the summed physical latency plus processing delays.
	Latency float64
	// Path lists the visited slots.
	Path []int
}

// Lookup greedily routes from src to the key's owner: at each step the
// current node forwards to its known contact with the smallest XOR
// distance to the key, stopping when no contact improves on itself.
func (net *Net) Lookup(src int, key uint32, proc overlay.ProcDelayFunc) (LookupResult, error) {
	if !net.O.Alive(src) {
		return LookupResult{}, fmt.Errorf("kademlia: lookup from dead slot %d", src)
	}
	res := LookupResult{Owner: net.Owner(key), Path: []int{src}}
	cur := src
	maxHops := Bits + 8
	for {
		curX := net.ID[cur] ^ key
		best, bestX := cur, curX
		for _, bucket := range net.buckets[cur] {
			for _, t := range bucket {
				if !net.O.Alive(t) {
					continue
				}
				if x := net.ID[t] ^ key; x < bestX {
					best, bestX = t, x
				}
			}
		}
		if best == cur {
			// Local optimum; with converged buckets this is the owner.
			if cur != res.Owner {
				return res, fmt.Errorf("kademlia: lookup stuck at %d, owner %d", cur, res.Owner)
			}
			return res, nil
		}
		res.Latency += net.O.Dist(cur, best)
		if proc != nil {
			res.Latency += proc(best)
		}
		res.Hops++
		res.Path = append(res.Path, best)
		cur = best
		if res.Hops > maxHops {
			return res, fmt.Errorf("kademlia: routing exceeded %d hops", maxHops)
		}
	}
}

// RandomKey returns a uniform key.
func RandomKey(r *rng.Rand) uint32 { return uint32(r.Uint64()) }

// Bucket exposes slot s's bucket i (shared storage; do not mutate).
func (net *Net) Bucket(s, i int) []int {
	if i < 0 || i >= Bits {
		return nil
	}
	return net.buckets[s][i]
}
