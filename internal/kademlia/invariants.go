package kademlia

import "fmt"

// CheckInvariants verifies the network's structural contract — the
// Kademlia-level predicate the online auditor (internal/audit) evaluates
// during audited runs:
//
//   - live slots carry pairwise distinct identifiers;
//   - every bucket entry of a live slot is live and not duplicated;
//   - each contact sits in the correct bucket: bucket i of slot s holds
//     only contacts whose highest differing ID bit with s is i;
//   - no bucket exceeds its capacity K.
//
// It returns the first violation found, or nil.
func (net *Net) CheckInvariants() error {
	alive := net.O.AliveSlots()
	byID := make(map[uint32]int, len(alive))
	for _, s := range alive {
		if prev, dup := byID[net.ID[s]]; dup {
			return fmt.Errorf("kademlia: slots %d and %d share identifier %d", prev, s, net.ID[s])
		}
		byID[net.ID[s]] = s
	}
	for _, s := range alive {
		if net.buckets[s] == nil {
			return fmt.Errorf("kademlia: live slot %d has no buckets", s)
		}
		for i, bucket := range net.buckets[s] {
			if len(bucket) > net.cfg.K {
				return fmt.Errorf("kademlia: slot %d bucket %d holds %d contacts, capacity %d",
					s, i, len(bucket), net.cfg.K)
			}
			seen := make(map[int]bool, len(bucket))
			for _, t := range bucket {
				if !net.O.Alive(t) {
					return fmt.Errorf("kademlia: slot %d bucket %d references dead slot %d", s, i, t)
				}
				if seen[t] {
					return fmt.Errorf("kademlia: slot %d bucket %d lists contact %d twice", s, i, t)
				}
				seen[t] = true
				if bi := bucketIndex(net.ID[s], net.ID[t]); bi != i {
					return fmt.Errorf("kademlia: contact %d in slot %d bucket %d belongs in bucket %d",
						t, s, i, bi)
				}
			}
		}
	}
	return nil
}
