package overlay

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// hashLat is a deterministic pseudo-random symmetric latency for repair
// tests: positive, irregular (so float ties are rare but sums are exact
// enough for the bit-equality assertions), and a pure function of the host
// pair.
func hashLat(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	x := uint64(a)*2654435761 + uint64(b)*40503
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return 1 + float64(x%4096)/64
}

// testProc is a nonzero per-slot processing delay exercising the proc term
// of the flood arithmetic.
func testProc(slot int) float64 { return float64(slot%3) * 0.25 }

// randomFloodOverlay builds an n-slot overlay on distinct hosts with a ring
// plus extra random chords — connected, average degree ~2+2·extra/n.
func randomFloodOverlay(t *testing.T, r *rng.Rand, n, extra int) *Overlay {
	t.Helper()
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = 3*i + 1
	}
	o, err := New(hosts, hashLat)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := o.AddEdge(i, (i+1)%n); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !o.Logical.HasEdge(u, v) {
			if err := o.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return o
}

// floodRows snapshots the full arrival row of every live slot.
func floodRows(o *Overlay, proc ProcDelayFunc) map[int][]float64 {
	rows := make(map[int][]float64)
	for _, src := range o.AliveSlots() {
		rows[src] = o.FloodLatenciesInto(src, proc, make([]float64, o.NumSlots()))
	}
	return rows
}

// finiteSum returns the sum and count of a row's finite entries.
func finiteSum(row []float64) (sum float64, finite int) {
	for _, v := range row {
		if !math.IsInf(v, 1) {
			sum += v
			finite++
		}
	}
	return sum, finite
}

// checkRepairedRows repairs every snapshot row whose source is still alive
// and asserts bit-equality with a fresh flood plus consistency of the
// reported aggregate deltas.
func checkRepairedRows(t *testing.T, o *Overlay, p *FloodPatch, proc ProcDelayFunc, rows map[int][]float64, tag string) {
	t.Helper()
	inf := math.Inf(1)
	want := make([]float64, o.NumSlots())
	for src, row := range rows {
		if !o.Alive(src) {
			continue
		}
		for len(row) < o.NumSlots() {
			row = append(row, inf)
		}
		preSum, preFinite := finiteSum(row)
		st, ok := o.RepairFloodRow(p, proc, src, row, 0)
		if !ok {
			t.Fatalf("%s: unbounded repair of row %d bailed", tag, src)
		}
		o.FloodLatenciesInto(src, proc, want)
		for i := range want {
			if row[i] != want[i] {
				t.Fatalf("%s: row %d entry %d = %v, want %v", tag, src, i, row[i], want[i])
			}
		}
		postSum, postFinite := finiteSum(row)
		if postFinite != preFinite+st.FiniteDelta {
			t.Fatalf("%s: row %d FiniteDelta = %d, want %d", tag, src, st.FiniteDelta, postFinite-preFinite)
		}
		if diff := math.Abs((preSum + st.SumDelta) - postSum); diff > 1e-9*(1+math.Abs(postSum)) {
			t.Fatalf("%s: row %d SumDelta drift %v (pre %v, delta %v, post %v)", tag, src, diff, preSum, st.SumDelta, postSum)
		}
	}
}

// TestRepairFloodRowRewire: random batches of PROP-O-style edge rewires;
// every repaired row must be bit-identical to a fresh flood, with and
// without processing delays.
func TestRepairFloodRowRewire(t *testing.T) {
	for _, proc := range []ProcDelayFunc{nil, testProc} {
		r := rng.New(21)
		for trial := 0; trial < 8; trial++ {
			n := 24 + trial*8
			o := randomFloodOverlay(t, r, n, n)
			rows := floodRows(o, proc)

			var removed, added []FloodEdge
			for k := 0; k < 3; k++ {
				// Remove a random present edge (keep the ring so the graph
				// stays connected — not required for correctness, but keeps
				// rows interesting).
				u := r.Intn(n)
				nbrs := o.Neighbors(u)
				v := nbrs[r.Intn(len(nbrs))]
				if !o.RemoveEdge(u, v) {
					t.Fatal("edge vanished")
				}
				removed = append(removed, FloodEdge{U: u, V: v, HostU: o.HostOf(u), HostV: o.HostOf(v)})
				// Add a random absent edge.
				for {
					a, b := r.Intn(n), r.Intn(n)
					if a == b || o.Logical.HasEdge(a, b) {
						continue
					}
					if err := o.AddEdge(a, b); err != nil {
						t.Fatal(err)
					}
					added = append(added, FloodEdge{U: a, V: b, HostU: o.HostOf(a), HostV: o.HostOf(b)})
					break
				}
			}
			checkRepairedRows(t, o, NewFloodPatch(removed, added), proc, rows, "rewire")
		}
	}
}

// TestRepairFloodRowChurn: crashes (stale edges become implicit removals),
// graceful leaves, and joins with fresh links, in one batch.
func TestRepairFloodRowChurn(t *testing.T) {
	r := rng.New(33)
	for trial := 0; trial < 6; trial++ {
		n := 32 + trial*8
		o := randomFloodOverlay(t, r, n, 2*n)
		rows := floodRows(o, testProc)

		var removed, added []FloodEdge

		// Crash-stop death: the slot's edges stay in the logical graph but a
		// flood ignores them, so the tracker lists them as removed using the
		// released host.
		cv := r.Intn(n)
		hostCV := o.HostOf(cv)
		for _, nb := range o.Neighbors(cv) {
			removed = append(removed, FloodEdge{U: cv, V: nb, HostU: hostCV, HostV: o.HostOf(nb)})
		}
		if err := o.CrashSlot(cv); err != nil {
			t.Fatal(err)
		}

		// Graceful leave of a different slot: same removal set, edges really
		// dropped.
		lv := (cv + n/2) % n
		hostLV := o.HostOf(lv)
		for _, nb := range o.Neighbors(lv) {
			removed = append(removed, FloodEdge{U: lv, V: nb, HostU: hostLV, HostV: o.HostOf(nb)})
		}
		if err := o.RemoveSlot(lv); err != nil {
			t.Fatal(err)
		}

		// Join: a new slot on a fresh host, linked to three live slots.
		js, err := o.AddSlot(3*n + 100)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			nb := r.Intn(n)
			if o.Alive(nb) && !o.Logical.HasEdge(js, nb) {
				if err := o.AddEdge(js, nb); err != nil {
					t.Fatal(err)
				}
				added = append(added, FloodEdge{U: js, V: nb, HostU: o.HostOf(js), HostV: o.HostOf(nb)})
			}
		}

		checkRepairedRows(t, o, NewFloodPatch(removed, added), testProc, rows, "churn")
	}
}

// TestRepairFloodRowBailout: a tiny affected budget must refuse the repair
// and leave the row untouched; unbounded repair of the same row then
// succeeds.
func TestRepairFloodRowBailout(t *testing.T) {
	r := rng.New(41)
	n := 48
	o := randomFloodOverlay(t, r, n, n/2)
	src := 0
	row := o.FloodLatenciesInto(src, nil, make([]float64, n))

	// Remove the victim's ring edges: a large chunk of the tree moves.
	victim := n / 2
	var removed []FloodEdge
	for _, nb := range o.Neighbors(victim) {
		removed = append(removed, FloodEdge{U: victim, V: nb, HostU: o.HostOf(victim), HostV: o.HostOf(nb)})
		o.RemoveEdge(victim, nb)
	}
	p := NewFloodPatch(removed, nil)

	before := append([]float64(nil), row...)
	if _, ok := o.RepairFloodRow(p, nil, src, row, 1); ok {
		t.Fatal("repair with maxAffected=1 succeeded")
	}
	for i := range row {
		if row[i] != before[i] {
			t.Fatalf("bailed repair mutated entry %d", i)
		}
	}
	if _, ok := o.RepairFloodRow(p, nil, src, row, 0); !ok {
		t.Fatal("unbounded repair bailed")
	}
	want := o.FloodLatenciesInto(src, nil, make([]float64, n))
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("entry %d = %v, want %v", i, row[i], want[i])
		}
	}
}

// TestRepairFloodRowEmptyPatch: an empty patch is a no-op success.
func TestRepairFloodRowEmptyPatch(t *testing.T) {
	o := randomFloodOverlay(t, rng.New(43), 8, 4)
	row := o.FloodLatenciesInto(0, nil, make([]float64, 8))
	before := append([]float64(nil), row...)
	st, ok := o.RepairFloodRow(NewFloodPatch(nil, nil), nil, 0, row, 0)
	if !ok || st != (FloodRepairStats{}) {
		t.Fatalf("empty patch: stats=%+v ok=%v", st, ok)
	}
	for i := range row {
		if row[i] != before[i] {
			t.Fatal("empty patch mutated the row")
		}
	}
}

// TestSlotEventHook asserts the four lifecycle events fire with
// pre-mutation hosts in mutation order.
func TestSlotEventHook(t *testing.T) {
	o := lineOverlay(t, []int{0, 10, 20, 30})
	mustEdge(t, o, 0, 1)
	mustEdge(t, o, 1, 2)
	mustEdge(t, o, 2, 3)
	var got []SlotEvent
	o.SetSlotEventHook(func(e SlotEvent) { got = append(got, e) })

	if err := o.SwapHosts(0, 2); err != nil {
		t.Fatal(err)
	}
	slot, err := o.AddSlot(40)
	if err != nil {
		t.Fatal(err)
	}
	mustEdge(t, o, slot, 3)
	if err := o.RemoveSlot(1); err != nil {
		t.Fatal(err)
	}
	if err := o.CrashSlot(3); err != nil {
		t.Fatal(err)
	}

	want := []SlotEvent{
		{Kind: SlotSwap, U: 0, V: 2, HostU: 0, HostV: 20},
		{Kind: SlotJoin, U: slot, V: -1, HostU: 40, HostV: -1},
		{Kind: SlotLeave, U: 1, V: -1, HostU: 10, HostV: -1},
		{Kind: SlotCrash, U: 3, V: -1, HostU: 30, HostV: -1},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Removing the hook silences events.
	o.SetSlotEventHook(nil)
	if err := o.SwapHosts(0, 2); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatal("event fired after hook removal")
	}
}
