package overlay

import "math"

// This file is the overlay half of the incremental average-latency fast
// path (DESIGN.md §11): given a per-source first-arrival row computed by
// FloodLatenciesInto before a batch of topology changes, RepairFloodRow
// updates it in place to what a fresh flood would compute after the batch
// — touching only the slots whose arrival could actually have changed.
// metrics.ALTracker owns batch assembly (graph journal + slot events) and
// calls this once per dirty row.

// FloodEdge is one overlay link in a repair batch, with the physical hosts
// backing its endpoints at the relevant time: the pre-batch hosts for a
// removed link (whose slots may be dead by now), the current hosts for an
// added link. Carrying hosts rather than latencies lets the repair evaluate
// the latency function with the same (from,to) argument order as floodRun,
// so every comparison is bit-exact against the flood kernel.
type FloodEdge struct {
	U, V         int
	HostU, HostV int
}

// FloodPatch is the prepared lookup structure for one repair batch: the net
// removed and added links plus an added-link membership index. Build it
// once per batch with NewFloodPatch and share it across all row repairs.
//
// Contract (enforced by the tracker, not re-checked here): removed links
// connect slots that were flood-alive before the batch, with at most one
// endpoint dead now; added links connect currently-live slots; a link whose
// endpoints both died, or that targets a slot dead since before the batch,
// must not appear.
type FloodPatch struct {
	removed []FloodEdge
	added   []FloodEdge
	addSet  map[int64]bool
}

// NewFloodPatch indexes a repair batch. The slices are retained, not
// copied.
func NewFloodPatch(removed, added []FloodEdge) *FloodPatch {
	p := &FloodPatch{removed: removed, added: added}
	if len(added) > 0 {
		p.addSet = make(map[int64]bool, len(added))
		for _, e := range added {
			p.addSet[slotPairKey(e.U, e.V)] = true
		}
	}
	return p
}

// Empty reports whether the patch carries no link changes.
func (p *FloodPatch) Empty() bool { return len(p.removed) == 0 && len(p.added) == 0 }

func slotPairKey(u, v int) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

// FloodRepairStats reports what one RepairFloodRow call changed — the
// aggregate deltas an incremental-metric tracker folds into its running
// sums instead of rescanning the row.
type FloodRepairStats struct {
	// Affected is the size of the conservatively marked affected set.
	Affected int
	// SumDelta is the net change of the row's finite-entry sum: every entry
	// that went from a to b contributes b−a, entries leaving +Inf contribute
	// +b, entries entering +Inf contribute −a.
	SumDelta float64
	// AbsDelta accumulates the magnitudes of every term folded into
	// SumDelta — the conservative input to a floating-point drift bound
	// (each accumulation step's rounding error is at most one ulp of the
	// running magnitude).
	AbsDelta float64
	// FiniteDelta is the net change in the number of finite entries
	// (reachable destinations, including the dead ones reset to +Inf).
	FiniteDelta int
}

// RepairFloodRow updates dist — the exact pre-batch first-arrival row from
// the live slot src, as by FloodLatenciesInto — in place so it matches a
// fresh flood after the batch described by p. The algorithm mirrors
// graph.RepairRow, specialized to flood semantics (per-slot processing
// delay added on arrival, dead slots skipped, latency derived from the host
// mapping):
//
//  1. Mark the conservative affected set with exact-arithmetic parent tests
//     (dist[x] + lat(host x, host y) + proc(y) == dist[y], the flood
//     kernel's own relaxation arithmetic), seeded at removed links and
//     propagated through surviving pre-batch adjacency (current links minus
//     added). Removed links need no propagation step of their own: the seed
//     pass already applies the same parent test to both endpoints of every
//     one of them.
//  2. Reset affected slots — and the dead endpoints of removed links — to
//     +Inf, then re-run the flood Dijkstra from the non-affected frontier
//     plus the added-link relaxations, over current adjacency.
//
// dist must have length NumSlots() (the caller extends joined slots with
// +Inf first) and src must be alive. If the affected set exceeds
// maxAffected (<= 0 means unlimited), the repair bails without touching
// dist and reports ok=false: the caller refloods the row from scratch.
// st.Affected carries the marked-set size either way.
//
// A slot that died this batch but has no link in p.removed (all its links
// connected other dying slots) keeps its stale pre-batch entry: the repair
// only resets dead endpoints it can see in the patch. Such entries are
// inert for the repair itself (dead slots are never relaxed from), but an
// aggregate-maintaining caller must sweep the batch's dead slots to +Inf
// afterwards.
func (o *Overlay) RepairFloodRow(p *FloodPatch, proc ProcDelayFunc, src int, dist []float64, maxAffected int) (st FloodRepairStats, ok bool) {
	n := len(o.hostOf)
	if len(dist) != n {
		panic("overlay: RepairFloodRow row length mismatch")
	}
	if !o.Alive(src) {
		panic("overlay: RepairFloodRow on dead source")
	}
	if p.Empty() {
		return FloodRepairStats{}, true
	}
	if maxAffected <= 0 {
		maxAffected = n
	}
	inf := math.Inf(1)
	procOf := func(x int) float64 {
		if proc != nil {
			return proc(x)
		}
		return 0
	}

	s := o.floodGet()
	defer o.floodPut(s)
	mark := s.mark
	for i := range mark {
		mark[i] = false
	}
	queue := make([]int, 0, 16)
	over := false
	markSlot := func(x int) {
		if x == src || mark[x] {
			return
		}
		mark[x] = true
		queue = append(queue, x)
		if len(queue) > maxAffected {
			over = true
		}
	}

	// Seeds: a removed link may have been the tree-parent edge of either
	// live endpoint. Dead endpoints are not marked — their entries simply
	// become +Inf below; their old subtrees are reached through the other
	// removed links (the tracker lists every link of a dying slot).
	for _, e := range p.removed {
		du, dv := dist[e.U], dist[e.V]
		if du < inf && o.Alive(e.V) && du+o.lat(e.HostU, e.HostV)+procOf(e.V) == dv {
			markSlot(e.V)
		}
		if dv < inf && o.Alive(e.U) && dv+o.lat(e.HostV, e.HostU)+procOf(e.U) == du {
			markSlot(e.U)
		}
	}
	// Propagate through pre-batch adjacency so a marked slot drags its
	// whole old shortest-path subtree along (ties conservatively included).
	for qi := 0; qi < len(queue) && !over; qi++ {
		x := queue[qi]
		dx := dist[x]
		if dx == inf {
			continue
		}
		hx := o.hostOf[x] // marked slots are always alive
		o.Logical.VisitNeighbors(x, func(y int, _ float64) bool {
			if !o.Alive(y) || mark[y] {
				return true
			}
			if p.addSet != nil && p.addSet[slotPairKey(x, y)] {
				return true
			}
			if dx+o.lat(hx, o.hostOf[y])+procOf(y) == dist[y] {
				markSlot(y)
			}
			return !over
		})
	}
	if over {
		return FloodRepairStats{Affected: len(queue)}, false
	}
	st.Affected = len(queue)

	// Recompute: affected slots and dead removed-link endpoints restart
	// from +Inf; everything else is already exact, so the non-affected
	// frontier plus the added links seed an ordinary flood Dijkstra. Every
	// write from here on is folded into the stats deltas. Marked slots
	// always held a finite entry (the parent tests only fire on finite
	// arithmetic), so their reset needs no +Inf guard.
	for _, x := range queue {
		st.SumDelta -= dist[x]
		st.AbsDelta += dist[x]
		st.FiniteDelta--
		dist[x] = inf
	}
	for _, e := range p.removed {
		if !o.Alive(e.U) && dist[e.U] < inf {
			st.SumDelta -= dist[e.U]
			st.AbsDelta += dist[e.U]
			st.FiniteDelta--
			dist[e.U] = inf
		}
		if !o.Alive(e.V) && dist[e.V] < inf {
			st.SumDelta -= dist[e.V]
			st.AbsDelta += dist[e.V]
			st.FiniteDelta--
			dist[e.V] = inf
		}
	}
	pos := s.pos
	for i := range pos {
		pos[i] = -1
	}
	heap := s.heap[:0]
	relax := func(v int, nd float64) {
		old := dist[v]
		if nd < old {
			if old < inf {
				st.SumDelta += nd - old
				st.AbsDelta += old + nd
			} else {
				st.SumDelta += nd
				st.AbsDelta += nd
				st.FiniteDelta++
			}
			dist[v] = nd
			if pos[v] < 0 {
				heap = heapPushSlot(heap, pos, dist, int32(v))
			} else {
				heapSiftUpSlot(heap, pos, dist, pos[v])
			}
		}
	}
	for _, x := range queue {
		hx := o.hostOf[x]
		px := procOf(x)
		o.Logical.VisitNeighbors(x, func(y int, _ float64) bool {
			if o.Alive(y) && !mark[y] && dist[y] < inf {
				relax(x, dist[y]+o.lat(o.hostOf[y], hx)+px)
			}
			return true
		})
	}
	for _, e := range p.added {
		if dist[e.U] < inf {
			relax(e.V, dist[e.U]+o.lat(e.HostU, e.HostV)+procOf(e.V))
		}
		if dist[e.V] < inf {
			relax(e.U, dist[e.V]+o.lat(e.HostV, e.HostU)+procOf(e.U))
		}
	}
	for len(heap) > 0 {
		u := int(heap[0])
		heap = heapPopMinSlot(heap, pos, dist)
		du := dist[u]
		hu := o.hostOf[u]
		o.Logical.VisitNeighbors(u, func(nb int, _ float64) bool {
			if !o.Alive(nb) {
				return true
			}
			relax(nb, du+o.lat(hu, o.hostOf[nb])+procOf(nb))
			return true
		})
	}
	s.heap = heap[:0]
	return st, true
}
