package overlay

import (
	"testing"

	"repro/internal/rng"
)

// ringOverlay builds a 5-slot ring on hosts 0..40 step 10.
func ringOverlay(t *testing.T) *Overlay {
	t.Helper()
	o := lineOverlay(t, []int{0, 10, 20, 30, 40})
	for u := 0; u < 5; u++ {
		if err := o.AddEdge(u, (u+1)%5); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestCrashSlotKeepsStaleEdges(t *testing.T) {
	o := ringOverlay(t)
	if err := o.CrashSlot(2); err != nil {
		t.Fatal(err)
	}
	if o.Alive(2) || !o.Crashed(2) {
		t.Fatalf("after crash: alive=%v crashed=%v", o.Alive(2), o.Crashed(2))
	}
	if o.HostOf(2) != -1 || o.SlotOfHost(20) != -1 {
		t.Fatal("crashed slot still holds its host")
	}
	if o.Degree(2) != 2 {
		t.Fatalf("crashed slot degree = %d, want stale edges kept", o.Degree(2))
	}
	// The auditor must tolerate the corpse while it is flagged crashed.
	if err := o.CheckInvariants(); err != nil {
		t.Fatalf("invariants reject flagged corpse: %v", err)
	}
	if got := o.CrashedSlots(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("CrashedSlots = %v", got)
	}
	if err := o.CrashSlot(2); err == nil {
		t.Fatal("double crash accepted")
	}
}

func TestEvictDeadNeighbors(t *testing.T) {
	o := ringOverlay(t)
	if err := o.CrashSlot(2); err != nil {
		t.Fatal(err)
	}
	if n := o.EvictDeadNeighbors(1); n != 1 {
		t.Fatalf("evicted %d edges from slot 1, want 1", n)
	}
	if o.Logical.HasEdge(1, 2) {
		t.Fatal("stale edge survived eviction")
	}
	if n := o.EvictDeadNeighbors(1); n != 0 {
		t.Fatalf("second eviction removed %d edges", n)
	}
	// The other survivor still holds its stale edge.
	if !o.Logical.HasEdge(2, 3) {
		t.Fatal("unrelated stale edge vanished")
	}
}

func TestPurgeCrashed(t *testing.T) {
	o := ringOverlay(t)
	if err := o.PurgeCrashed(2); err == nil {
		t.Fatal("purging a live slot accepted")
	}
	if err := o.CrashSlot(2); err != nil {
		t.Fatal(err)
	}
	if err := o.PurgeCrashed(2); err != nil {
		t.Fatal(err)
	}
	if o.Degree(2) != 0 || o.Crashed(2) {
		t.Fatalf("after purge: degree=%d crashed=%v", o.Degree(2), o.Crashed(2))
	}
	// Purged corpse is now held to the strict (graceful-leave) invariant.
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := o.PurgeCrashed(2); err == nil {
		t.Fatal("double purge accepted")
	}
}

func TestCheckInvariantsRejectsUnflaggedCorpseEdges(t *testing.T) {
	o := ringOverlay(t)
	if err := o.CrashSlot(2); err != nil {
		t.Fatal(err)
	}
	// Simulate a buggy repair path that clears the flag without purging.
	delete(o.crashed, 2)
	if err := o.CheckInvariants(); err == nil {
		t.Fatal("invariants accepted dead slot with edges and no crashed flag")
	}
}

func TestCrashSkippedByGainAndLatencySums(t *testing.T) {
	o := ringOverlay(t)
	wantSum := o.Dist(1, 0) // after crash of 2, slot 1's only live neighbor is 0
	if err := o.CrashSlot(2); err != nil {
		t.Fatal(err)
	}
	if got := o.NeighborLatencySum(1); got != wantSum {
		t.Fatalf("NeighborLatencySum(1) = %v, want %v", got, wantSum)
	}
	// SwapGain over slots adjacent to the corpse must not touch its host.
	calls := 0
	o.SwapGainMeasured(1, 3, func(a, b int) float64 {
		calls++
		if a < 0 || b < 0 {
			t.Fatalf("measured against released host: (%d,%d)", a, b)
		}
		return gridLat(a, b)
	})
	if calls == 0 {
		t.Fatal("no measurements at all")
	}
	// Walks must refuse to route through the corpse: from 1, the only
	// candidates after the first hop exclude slot 2.
	r := rng.New(7)
	for i := 0; i < 20; i++ {
		path, ok := o.RandomWalk(0, 1, 3, r)
		if !ok {
			continue
		}
		for _, s := range path {
			if s == 2 {
				t.Fatalf("walk routed through crashed slot: %v", path)
			}
		}
	}
}

func TestCrashCloneIndependence(t *testing.T) {
	o := ringOverlay(t)
	if err := o.CrashSlot(2); err != nil {
		t.Fatal(err)
	}
	c := o.Clone()
	if !c.Crashed(2) {
		t.Fatal("clone lost crashed flag")
	}
	if err := c.PurgeCrashed(2); err != nil {
		t.Fatal(err)
	}
	if !o.Crashed(2) {
		t.Fatal("purging the clone cleared the original's flag")
	}
}

func TestExchangeRejectsCrashedNeighbor(t *testing.T) {
	o := ringOverlay(t)
	if err := o.CrashSlot(2); err != nil {
		t.Fatal(err)
	}
	// Slot 1 still lists 2 as a neighbor; trading it away must be refused.
	err := o.ExchangeNeighbors(1, 4, []int{2}, []int{3}, nil)
	if err == nil {
		t.Fatal("exchange involving a crashed neighbor accepted")
	}
	if o.Stats.ExchangesRejected != 1 {
		t.Fatalf("ExchangesRejected = %d, want 1", o.Stats.ExchangesRejected)
	}
}
