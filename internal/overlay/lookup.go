package overlay

import (
	"math"
)

// ProcDelayFunc reports the processing delay in milliseconds a slot's host
// adds to every message it forwards or terminates. A nil function means
// zero delay everywhere. The Fig. 7 heterogeneity experiments plug in the
// bimodal model from internal/hetero.
type ProcDelayFunc func(slot int) float64

// floodScratch is the reusable working set of one slot-level Dijkstra: the
// tentative-distance array, an indexed 4-ary heap of slot IDs, and each
// slot's heap position. Recycled through a sync.Pool so concurrent lookup
// evaluators (metrics fans out one goroutine per worker) each reuse their
// own buffers, making flooding queries allocation-free after warm-up.
type floodScratch struct {
	dist []float64
	heap []int32
	pos  []int32
	mark []bool // affected-set marking for RepairFloodRow (repair.go)
}

// floodPool hands out scratch sized to at least n slots.
func (o *Overlay) floodGet() *floodScratch {
	n := len(o.hostOf)
	s, _ := o.floodPool.Get().(*floodScratch)
	if s == nil {
		s = &floodScratch{}
	}
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.pos = make([]int32, n)
		s.heap = make([]int32, 0, n)
		s.mark = make([]bool, n)
	}
	s.dist = s.dist[:n]
	s.pos = s.pos[:n]
	s.mark = s.mark[:n]
	return s
}

func (o *Overlay) floodPut(s *floodScratch) { o.floodPool.Put(s) }

// floodRun settles slots in nondecreasing first-arrival order from src.
// It stops early when dst (if >= 0) or any slot of targets (if non-nil) is
// settled, returning its arrival time; with no stop condition it computes
// the full arrival vector into s.dist and returns +Inf. Dead slots and
// unreachable slots keep +Inf.
func (o *Overlay) floodRun(src int, proc ProcDelayFunc, s *floodScratch, dst int, targets map[int]bool) float64 {
	dist := s.dist
	pos := s.pos
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	for i := range pos {
		pos[i] = -1
	}
	heap := s.heap[:0]
	dist[src] = 0
	heap = heapPushSlot(heap, pos, dist, int32(src))
	for len(heap) > 0 {
		u := int(heap[0])
		heap = heapPopMinSlot(heap, pos, dist)
		if u == dst || (targets != nil && targets[u]) {
			s.heap = heap[:0]
			return dist[u]
		}
		du := dist[u]
		o.Logical.VisitNeighbors(u, func(nb int, _ float64) bool {
			if !o.Alive(nb) {
				return true
			}
			nd := du + o.lat(o.hostOf[u], o.hostOf[nb])
			if proc != nil {
				nd += proc(nb)
			}
			if nd < dist[nb] {
				dist[nb] = nd
				if pos[nb] < 0 {
					heap = heapPushSlot(heap, pos, dist, int32(nb))
				} else {
					heapSiftUpSlot(heap, pos, dist, pos[nb])
				}
			}
			return true
		})
	}
	s.heap = heap[:0]
	return math.Inf(1)
}

// FloodLatency returns the first-arrival latency of a flooded query from
// slot src to slot dst. Flooding explores every path, so the first copy to
// arrive travelled the latency-weighted shortest overlay path; computing
// that path is therefore exact, not an approximation. Each intermediate and
// terminal slot adds proc(slot) of processing delay (the source sends
// immediately). It returns +Inf if dst is unreachable from src.
func (o *Overlay) FloodLatency(src, dst int, proc ProcDelayFunc) float64 {
	if !o.Alive(src) || !o.Alive(dst) {
		return math.Inf(1)
	}
	if src == dst {
		return 0
	}
	s := o.floodGet()
	d := o.floodRun(src, proc, s, dst, nil)
	o.floodPut(s)
	return d
}

// FloodLatencyAny returns the first-arrival latency of a flooded query from
// src to the NEAREST of the dsts — the Gnutella file-search semantics,
// where any replica of the requested item satisfies the query. It returns
// +Inf when no destination is reachable (or the list is empty). A live src
// that is itself a destination costs 0.
func (o *Overlay) FloodLatencyAny(src int, dsts []int, proc ProcDelayFunc) float64 {
	if !o.Alive(src) || len(dsts) == 0 {
		return math.Inf(1)
	}
	targets := make(map[int]bool, len(dsts))
	for _, d := range dsts {
		if o.Alive(d) {
			targets[d] = true
		}
	}
	if len(targets) == 0 {
		return math.Inf(1)
	}
	if targets[src] {
		return 0
	}
	s := o.floodGet()
	d := o.floodRun(src, proc, s, -1, targets)
	o.floodPut(s)
	return d
}

// FloodLatenciesInto computes the first-arrival latency from src to EVERY
// slot in one pass — the bulk kernel behind exact all-pairs metrics, which
// turns an O(n²·Dijkstra) pair loop into O(n·Dijkstra). dist must have
// length NumSlots(); entry i receives the arrival time at slot i (+Inf for
// dead or unreachable slots, 0 for src). The slice is returned for
// convenience.
func (o *Overlay) FloodLatenciesInto(src int, proc ProcDelayFunc, dist []float64) []float64 {
	if len(dist) != len(o.hostOf) {
		panic("overlay: FloodLatenciesInto buffer length mismatch")
	}
	if !o.Alive(src) {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		return dist
	}
	s := o.floodGet()
	o.floodRun(src, proc, s, -1, nil)
	copy(dist, s.dist)
	o.floodPut(s)
	return dist
}

// The indexed 4-ary min-heap over slot IDs keyed by tentative distance —
// the same shape as internal/graph's frozen kernel heap, duplicated here
// because it indexes overlay slots rather than CSR vertices and Go offers
// no zero-cost generic bridge between the two hot loops.
//
// Comparisons are by distance alone, yet floodRun's settle order — and with
// it the number of edge relaxations before an early exit — is deterministic:
// graph.Graph's sorted adjacency lists make VisitNeighbors, and therefore
// the heap's operation sequence, a pure function of the graph. Observability
// depends on this: oracle query counts feed the byte-deterministic metrics
// stream (DESIGN.md §8).

func heapPushSlot(heap []int32, pos []int32, dist []float64, v int32) []int32 {
	heap = append(heap, v)
	pos[v] = int32(len(heap) - 1)
	heapSiftUpSlot(heap, pos, dist, pos[v])
	return heap
}

func heapPopMinSlot(heap []int32, pos []int32, dist []float64) []int32 {
	root := heap[0]
	pos[root] = -1
	last := heap[len(heap)-1]
	heap = heap[:len(heap)-1]
	if len(heap) > 0 {
		heap[0] = last
		pos[last] = 0
		heapSiftDownSlot(heap, pos, dist, 0)
	}
	return heap
}

func heapSiftUpSlot(heap []int32, pos []int32, dist []float64, i int32) {
	v := heap[i]
	d := dist[v]
	for i > 0 {
		parent := (i - 1) / 4
		p := heap[parent]
		if dist[p] <= d {
			break
		}
		heap[i] = p
		pos[p] = i
		i = parent
	}
	heap[i] = v
	pos[v] = i
}

func heapSiftDownSlot(heap []int32, pos []int32, dist []float64, i int32) {
	n := int32(len(heap))
	v := heap[i]
	d := dist[v]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		minD := dist[heap[first]]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if cd := dist[heap[c]]; cd < minD {
				min, minD = c, cd
			}
		}
		if minD >= d {
			break
		}
		mv := heap[min]
		heap[i] = mv
		pos[mv] = i
		i = min
	}
	heap[i] = v
	pos[v] = i
}
