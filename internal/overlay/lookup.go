package overlay

import (
	"container/heap"
	"math"
)

// ProcDelayFunc reports the processing delay in milliseconds a slot's host
// adds to every message it forwards or terminates. A nil function means
// zero delay everywhere. The Fig. 7 heterogeneity experiments plug in the
// bimodal model from internal/hetero.
type ProcDelayFunc func(slot int) float64

// FloodLatency returns the first-arrival latency of a flooded query from
// slot src to slot dst. Flooding explores every path, so the first copy to
// arrive travelled the latency-weighted shortest overlay path; computing
// that path is therefore exact, not an approximation. Each intermediate and
// terminal slot adds proc(slot) of processing delay (the source sends
// immediately). It returns +Inf if dst is unreachable from src.
func (o *Overlay) FloodLatency(src, dst int, proc ProcDelayFunc) float64 {
	if !o.Alive(src) || !o.Alive(dst) {
		return math.Inf(1)
	}
	if src == dst {
		return 0
	}
	// Dense slot IDs make a slice cheaper than a map in this hot path
	// (every sample point of Figs. 5 and 7 runs hundreds of these).
	dist := make([]float64, len(o.hostOf))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &lookupHeap{{slot: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(lookupItem)
		if it.d > dist[it.slot] {
			continue
		}
		if it.slot == dst {
			return it.d
		}
		o.Logical.VisitNeighbors(it.slot, func(nb int, _ float64) bool {
			if !o.Alive(nb) {
				return true
			}
			nd := it.d + o.Dist(it.slot, nb)
			if proc != nil {
				nd += proc(nb)
			}
			if nd < dist[nb] {
				dist[nb] = nd
				heap.Push(pq, lookupItem{slot: nb, d: nd})
			}
			return true
		})
	}
	return math.Inf(1)
}

// FloodLatencyAny returns the first-arrival latency of a flooded query from
// src to the NEAREST of the dsts — the Gnutella file-search semantics,
// where any replica of the requested item satisfies the query. It returns
// +Inf when no destination is reachable (or the list is empty). A live src
// that is itself a destination costs 0.
func (o *Overlay) FloodLatencyAny(src int, dsts []int, proc ProcDelayFunc) float64 {
	if !o.Alive(src) || len(dsts) == 0 {
		return math.Inf(1)
	}
	targets := make(map[int]bool, len(dsts))
	for _, d := range dsts {
		if o.Alive(d) {
			targets[d] = true
		}
	}
	if len(targets) == 0 {
		return math.Inf(1)
	}
	if targets[src] {
		return 0
	}
	dist := make([]float64, len(o.hostOf))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &lookupHeap{{slot: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(lookupItem)
		if it.d > dist[it.slot] {
			continue
		}
		if targets[it.slot] {
			return it.d
		}
		o.Logical.VisitNeighbors(it.slot, func(nb int, _ float64) bool {
			if !o.Alive(nb) {
				return true
			}
			nd := it.d + o.Dist(it.slot, nb)
			if proc != nil {
				nd += proc(nb)
			}
			if nd < dist[nb] {
				dist[nb] = nd
				heap.Push(pq, lookupItem{slot: nb, d: nd})
			}
			return true
		})
	}
	return math.Inf(1)
}

type lookupItem struct {
	slot int
	d    float64
}

type lookupHeap []lookupItem

func (h lookupHeap) Len() int            { return len(h) }
func (h lookupHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h lookupHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lookupHeap) Push(x interface{}) { *h = append(*h, x.(lookupItem)) }
func (h *lookupHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
