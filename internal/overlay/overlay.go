// Package overlay provides the logical-overlay model shared by every P2P
// system in the reproduction (Gnutella, Chord, CAN) and the two exchange
// primitives of the PROP protocols.
//
// The central idea is the slot/host split. An overlay is a logical graph
// over *slots* — stable logical positions (a Gnutella peer's place in the
// random graph, a Chord identifier, a CAN zone) — plus a bijection from
// slots onto physical *hosts* of the transit-stub network. Latency between
// two slots is the physical latency between their current hosts.
//
//   - PROP-G ("exchange all neighbors", i.e. exchange positions and node
//     identifiers) is exactly SwapHosts(u, v): the logical graph is
//     untouched, so Theorem 2 (isomorphism) holds by construction.
//   - PROP-O ("exchange m neighbors each") is ExchangeNeighbors(u, v, A, B):
//     a degree-preserving rewiring that never touches edges on the probing
//     walk path, so Theorem 1 (connectivity persistence) holds.
//
// Key types: Overlay (slots, hosts, the logical graph) and Stats (exchange
// outcome counters sampled by the observability layer, DESIGN.md §8). The
// slot/host model is DESIGN.md §1; flooding lookup lives in lookup.go.
package overlay

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/rng"
)

// LatencyFunc reports the physical latency in milliseconds between two
// hosts. netsim.Oracle.Latency satisfies this signature.
type LatencyFunc func(hostA, hostB int) float64

// Stats tallies the overlay's topology mutations for the observability
// layer (DESIGN.md §8). Mutations run on the single-threaded simulation
// engine, so plain integers suffice; the experiment harness samples the
// struct on sim-clock ticks to build accept/reject time series.
type Stats struct {
	// Swaps counts executed PROP-G host swaps.
	Swaps uint64
	// SwapsRejected counts SwapHosts calls refused by validation.
	SwapsRejected uint64
	// NeighborExchanges counts executed PROP-O trades.
	NeighborExchanges uint64
	// ExchangesRejected counts ExchangeNeighbors calls refused by the §3.1
	// constraint checks (dead/duplicate/adjacent/on-path neighbors).
	ExchangesRejected uint64
	// EdgesRewired counts logical edges moved by executed trades (give +
	// take per accepted exchange).
	EdgesRewired uint64
}

// Overlay is a logical topology mapped onto physical hosts.
type Overlay struct {
	// Logical is the overlay graph over slots. Edge weights are fixed at 1;
	// latency is always derived from the host mapping, never stored in the
	// graph (it would go stale on every exchange).
	Logical *graph.Graph

	// Stats accumulates mutation counts; see Stats.
	Stats Stats

	hostOf     []int       // slot -> physical host, -1 for dead slots
	slotOfHost map[int]int // physical host -> slot
	alive      []bool
	aliveCount int
	crashed    map[int]bool // dead slots that died crash-stop, stale edges allowed
	lat        LatencyFunc

	// floodPool recycles flooding-query scratch (see lookup.go) across the
	// concurrent metric evaluators sharing this overlay.
	floodPool sync.Pool

	// slotHook, when set, observes slot/host lifecycle events (swap, join,
	// leave, crash) — the feed incremental-metric trackers combine with the
	// logical graph's mutation journal. See SetSlotEventHook.
	slotHook func(SlotEvent)
}

// SlotEventKind identifies one kind of slot/host lifecycle event.
type SlotEventKind uint8

// The four slot lifecycle events a hook can observe.
const (
	// SlotSwap is a PROP-G host swap between two live slots.
	SlotSwap SlotEventKind = iota
	// SlotJoin is a new live slot attached to a host (AddSlot).
	SlotJoin
	// SlotLeave is a graceful removal: edges dropped, host released.
	SlotLeave
	// SlotCrash is a crash-stop death: host released, stale edges remain.
	SlotCrash
)

// SlotEvent describes one slot/host lifecycle event. Events fire before the
// overlay mutates (except SlotJoin, which fires after the slot exists), so
// HostU/HostV record the hosts as they were when the event happened — the
// information a tracker needs to evaluate pre-mutation latencies after the
// hosts have been released.
type SlotEvent struct {
	// Kind is the event kind.
	Kind SlotEventKind
	// U is the affected slot; V is the second slot of a SlotSwap, else -1.
	U, V int
	// HostU is U's host at event time (the new host for SlotJoin, the
	// released host for SlotLeave/SlotCrash, the pre-swap host for
	// SlotSwap). HostV is V's pre-swap host for SlotSwap, else -1.
	HostU, HostV int
}

// SetSlotEventHook installs fn to observe slot/host lifecycle events; nil
// removes it. At most one hook is supported; installing replaces the
// previous one. The hook is called synchronously on the mutating
// goroutine and must not mutate the overlay. Edge-level rewires are not
// reported here — consumers read those from the logical graph's mutation
// journal (graph.TrackMutations), which also captures rewires applied
// directly to Logical by the DHT repair paths.
func (o *Overlay) SetSlotEventHook(fn func(SlotEvent)) { o.slotHook = fn }

// New creates an overlay with one slot per entry of hosts, each slot i
// attached to hosts[i], and no logical edges. Hosts must be distinct.
func New(hosts []int, lat LatencyFunc) (*Overlay, error) {
	if lat == nil {
		return nil, fmt.Errorf("overlay: nil latency function")
	}
	o := &Overlay{
		Logical:    graph.New(len(hosts)),
		hostOf:     make([]int, len(hosts)),
		slotOfHost: make(map[int]int, len(hosts)),
		alive:      make([]bool, len(hosts)),
		aliveCount: len(hosts),
		lat:        lat,
	}
	for slot, h := range hosts {
		if _, dup := o.slotOfHost[h]; dup {
			return nil, fmt.Errorf("overlay: host %d attached to two slots", h)
		}
		o.hostOf[slot] = h
		o.slotOfHost[h] = slot
		o.alive[slot] = true
	}
	return o, nil
}

// NumSlots returns the total slot count, including dead slots.
func (o *Overlay) NumSlots() int { return len(o.hostOf) }

// NumAlive returns the number of live slots.
func (o *Overlay) NumAlive() int { return o.aliveCount }

// Alive reports whether slot u is live.
func (o *Overlay) Alive(u int) bool {
	return u >= 0 && u < len(o.alive) && o.alive[u]
}

// AliveSlots returns all live slot IDs in ascending order.
func (o *Overlay) AliveSlots() []int {
	out := make([]int, 0, o.aliveCount)
	for s, a := range o.alive {
		if a {
			out = append(out, s)
		}
	}
	return out
}

// HostOf returns the physical host currently backing slot u, or -1 for a
// dead or out-of-range slot.
func (o *Overlay) HostOf(u int) int {
	if !o.Alive(u) {
		return -1
	}
	return o.hostOf[u]
}

// SlotOfHost returns the slot a host currently backs, or -1 if none.
func (o *Overlay) SlotOfHost(h int) int {
	if s, ok := o.slotOfHost[h]; ok {
		return s
	}
	return -1
}

// Hosts returns the hosts backing all live slots.
func (o *Overlay) Hosts() []int {
	out := make([]int, 0, o.aliveCount)
	for s, a := range o.alive {
		if a {
			out = append(out, o.hostOf[s])
		}
	}
	return out
}

// Dist returns the physical latency between the hosts of slots u and v.
// Both slots must be alive.
func (o *Overlay) Dist(u, v int) float64 {
	if !o.Alive(u) || !o.Alive(v) {
		panic(fmt.Sprintf("overlay: Dist(%d,%d) on dead slot", u, v))
	}
	return o.lat(o.hostOf[u], o.hostOf[v])
}

// HostLatency exposes the underlying host-to-host latency function, for
// callers that need to build derived measurements (e.g. noisy probe RTTs).
func (o *Overlay) HostLatency(a, b int) float64 { return o.lat(a, b) }

// NeighborLatencySum returns Σ_{i ∈ N(u)} d(u, i): the quantity each PROP
// node maintains about its own neighborhood (§3.2). Crashed neighbors whose
// stale edges have not been evicted yet contribute nothing — a dead host has
// no measurable latency.
func (o *Overlay) NeighborLatencySum(u int) float64 {
	sum := 0.0
	o.Logical.VisitNeighbors(u, func(v int, _ float64) bool {
		if o.Alive(v) {
			sum += o.Dist(u, v)
		}
		return true
	})
	return sum
}

// AddEdge inserts a logical link between slots u and v.
func (o *Overlay) AddEdge(u, v int) error {
	if !o.Alive(u) || !o.Alive(v) {
		return fmt.Errorf("overlay: AddEdge(%d,%d) on dead slot", u, v)
	}
	return o.Logical.AddEdge(u, v, 1)
}

// RemoveEdge deletes a logical link; it reports whether it existed.
func (o *Overlay) RemoveEdge(u, v int) bool { return o.Logical.RemoveEdge(u, v) }

// Neighbors returns the live logical neighbors of slot u.
func (o *Overlay) Neighbors(u int) []int { return o.Logical.Neighbors(u) }

// Degree returns the logical degree of slot u.
func (o *Overlay) Degree(u int) int { return o.Logical.Degree(u) }

// SwapHosts exchanges the physical hosts of slots u and v — the PROP-G
// peer-exchange. The logical graph (and therefore every routing table that
// is defined in terms of slots) is untouched.
func (o *Overlay) SwapHosts(u, v int) error {
	if !o.Alive(u) || !o.Alive(v) {
		o.Stats.SwapsRejected++
		return fmt.Errorf("overlay: SwapHosts(%d,%d) on dead slot", u, v)
	}
	if u == v {
		o.Stats.SwapsRejected++
		return fmt.Errorf("overlay: SwapHosts with identical slots %d", u)
	}
	hu, hv := o.hostOf[u], o.hostOf[v]
	if o.slotHook != nil {
		o.slotHook(SlotEvent{Kind: SlotSwap, U: u, V: v, HostU: hu, HostV: hv})
	}
	o.hostOf[u], o.hostOf[v] = hv, hu
	o.slotOfHost[hu], o.slotOfHost[hv] = v, u
	o.Stats.Swaps++
	return nil
}

// ExchangeNeighbors performs the PROP-O peer-exchange: slot u hands the
// neighbors in give to v, and v hands the neighbors in take to u. The
// operation enforces the paper's §3.1 constraints:
//
//   - |give| == |take| > 0 (equal numbers, so degrees are preserved);
//   - give ⊆ N(u)\{v}, take ⊆ N(v)\{u};
//   - no moved neighbor may already be adjacent to (or equal to) its new
//     endpoint, which would silently merge edges and break degrees;
//   - no moved neighbor may appear in forbidden (the u–v walk path), which
//     is what keeps the overlay connected (Theorem 1).
//
// On success the edges {u,a} become {v,a} for a ∈ give and {v,b} become
// {u,b} for b ∈ take. The operation is all-or-nothing.
func (o *Overlay) ExchangeNeighbors(u, v int, give, take []int, forbidden []int) error {
	if err := o.exchangeNeighbors(u, v, give, take, forbidden); err != nil {
		o.Stats.ExchangesRejected++
		return err
	}
	o.Stats.NeighborExchanges++
	o.Stats.EdgesRewired += uint64(len(give) + len(take))
	return nil
}

// exchangeNeighbors validates and applies the trade; ExchangeNeighbors
// wraps it to keep the Stats accounting in one place.
func (o *Overlay) exchangeNeighbors(u, v int, give, take []int, forbidden []int) error {
	if !o.Alive(u) || !o.Alive(v) {
		return fmt.Errorf("overlay: ExchangeNeighbors(%d,%d) on dead slot", u, v)
	}
	if u == v {
		return fmt.Errorf("overlay: ExchangeNeighbors with identical slots %d", u)
	}
	if len(give) == 0 || len(give) != len(take) {
		return fmt.Errorf("overlay: exchange sizes |give|=%d |take|=%d must be equal and positive",
			len(give), len(take))
	}
	banned := make(map[int]bool, len(forbidden)+2)
	for _, p := range forbidden {
		banned[p] = true
	}
	seen := make(map[int]bool, len(give)+len(take))
	for _, a := range give {
		if err := o.checkMove(u, v, a, banned); err != nil {
			return err
		}
		if seen[a] {
			return fmt.Errorf("overlay: neighbor %d listed twice", a)
		}
		seen[a] = true
	}
	for _, b := range take {
		if err := o.checkMove(v, u, b, banned); err != nil {
			return err
		}
		if seen[b] {
			return fmt.Errorf("overlay: neighbor %d listed twice", b)
		}
		seen[b] = true
	}
	// All validated; apply. (Validation guarantees no step can fail.)
	for _, a := range give {
		o.Logical.RemoveEdge(u, a)
		o.Logical.MustAddEdge(v, a, 1)
	}
	for _, b := range take {
		o.Logical.RemoveEdge(v, b)
		o.Logical.MustAddEdge(u, b, 1)
	}
	return nil
}

// checkMove validates relocating edge {from,x} to {to,x}.
func (o *Overlay) checkMove(from, to, x int, banned map[int]bool) error {
	if !o.Alive(x) {
		return fmt.Errorf("overlay: exchanged neighbor %d is dead", x)
	}
	if x == from || x == to {
		return fmt.Errorf("overlay: exchanged neighbor %d is an endpoint", x)
	}
	if !o.Logical.HasEdge(from, x) {
		return fmt.Errorf("overlay: %d is not a neighbor of %d", x, from)
	}
	if o.Logical.HasEdge(to, x) {
		return fmt.Errorf("overlay: %d already adjacent to %d; move would merge edges", x, to)
	}
	if banned[x] {
		return fmt.Errorf("overlay: neighbor %d lies on the probing path", x)
	}
	return nil
}

// ExchangeGain returns Var for a hypothetical PROP-O exchange (§3.2 eq. 2):
// the total neighbor latency before minus after. Positive values mean the
// exchange helps.
func (o *Overlay) ExchangeGain(u, v int, give, take []int) float64 {
	return o.ExchangeGainMeasured(u, v, give, take, o.Dist)
}

// ExchangeGainMeasured is ExchangeGain computed with a caller-supplied
// distance measurement instead of ground truth — how a real peer evaluates
// Var from (noisy) probe RTTs. measure is called with slot pairs.
func (o *Overlay) ExchangeGainMeasured(u, v int, give, take []int, measure func(a, b int) float64) float64 {
	gain := 0.0
	for _, a := range give {
		gain += measure(u, a) - measure(v, a)
	}
	for _, b := range take {
		gain += measure(v, b) - measure(u, b)
	}
	return gain
}

// SwapGain returns Var for a hypothetical PROP-G exchange: the change in
// Σ d(u,N(u)) + Σ d(v,N(v)) if u and v swap hosts. The shared edge {u,v},
// if present, cancels out by symmetry and needs no special casing.
func (o *Overlay) SwapGain(u, v int) float64 {
	return o.SwapGainMeasured(u, v, o.lat)
}

// SwapGainMeasured is SwapGain computed with a caller-supplied host-to-host
// measurement instead of the true latency function — how a real peer
// evaluates Var from (noisy) probe RTTs. measure is called with host pairs.
func (o *Overlay) SwapGainMeasured(u, v int, measure LatencyFunc) float64 {
	if !o.Alive(u) || !o.Alive(v) {
		panic(fmt.Sprintf("overlay: SwapGain(%d,%d) on dead slot", u, v))
	}
	hu, hv := o.hostOf[u], o.hostOf[v]
	before, after := 0.0, 0.0
	// Neighbors() iterates in sorted order — map order must not leak into
	// the measurement sequence: measure may be noisy (consuming one RNG draw
	// per call) and float summation is order-sensitive, so an unspecified
	// order would make Var, and with it the whole run, nondeterministic.
	// Crashed neighbors with stale edges are skipped: their hosts are gone,
	// so they affect neither side of the swap.
	for _, i := range o.Logical.Neighbors(u) {
		if !o.Alive(i) {
			continue
		}
		hi := o.hostOf[i]
		if i == v {
			hi = hu // v's host after the swap; d is symmetric so value is unchanged
		}
		before += measure(hu, o.hostOf[i])
		after += measure(hv, hi)
	}
	for _, i := range o.Logical.Neighbors(v) {
		if !o.Alive(i) {
			continue
		}
		hi := o.hostOf[i]
		if i == u {
			hi = hv
		}
		before += measure(hv, o.hostOf[i])
		after += measure(hu, hi)
	}
	return before - after
}

// RandomWalk performs the TTL-limited random contact of §3.2: starting at
// slot start, the first hop is firstHop (chosen by the caller from the
// neighborQ), and each later hop is a uniformly random neighbor that is not
// already on the path ("add an identifier … to avoid repetitive
// forwarding"). The walk succeeds when exactly ttl hops have been taken;
// it fails if the walk gets stuck early. The returned path includes both
// endpoints: path[0] == start, path[len-1] == target.
func (o *Overlay) RandomWalk(start, firstHop, ttl int, r *rng.Rand) (path []int, ok bool) {
	if ttl < 1 || !o.Alive(start) || !o.Alive(firstHop) {
		return nil, false
	}
	if !o.Logical.HasEdge(start, firstHop) {
		return nil, false
	}
	path = make([]int, 0, ttl+1)
	onPath := map[int]bool{start: true, firstHop: true}
	path = append(path, start, firstHop)
	cur := firstHop
	for hop := 1; hop < ttl; hop++ {
		var candidates []int
		o.Logical.VisitNeighbors(cur, func(nb int, _ float64) bool {
			if !onPath[nb] && o.Alive(nb) {
				candidates = append(candidates, nb)
			}
			return true
		})
		if len(candidates) == 0 {
			return path, false
		}
		// candidates are in ascending slot order (VisitNeighbors guarantees
		// it), so the draw below is deterministic in the walk RNG.
		cur = candidates[r.Intn(len(candidates))]
		onPath[cur] = true
		path = append(path, cur)
	}
	return path, true
}

// MeanLinkLatency returns the average physical latency of the live logical
// links — the numerator of the paper's stretch metric.
func (o *Overlay) MeanLinkLatency() float64 {
	sum, count := 0.0, 0
	for _, e := range o.Logical.Edges() {
		if o.Alive(e.U) && o.Alive(e.V) {
			sum += o.Dist(e.U, e.V)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// Stretch returns the paper's §4.2 metric: average logical link latency over
// average physical link latency.
func (o *Overlay) Stretch(meanPhysicalLink float64) float64 {
	if meanPhysicalLink <= 0 {
		return 0
	}
	return o.MeanLinkLatency() / meanPhysicalLink
}

// Connected reports whether the subgraph induced by live slots is connected.
func (o *Overlay) Connected() bool {
	var start = -1
	for s, a := range o.alive {
		if a {
			start = s
			break
		}
	}
	if start < 0 {
		return true
	}
	visited := map[int]bool{start: true}
	queue := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		o.Logical.VisitNeighbors(u, func(v int, _ float64) bool {
			if o.Alive(v) && !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
			return true
		})
	}
	return len(visited) == o.aliveCount
}

// AddSlot creates a new live slot attached to host and returns its ID. The
// host must not already back a slot.
func (o *Overlay) AddSlot(host int) (int, error) {
	if s, ok := o.slotOfHost[host]; ok && o.Alive(s) {
		return -1, fmt.Errorf("overlay: host %d already backs slot %d", host, s)
	}
	slot := o.Logical.AddVertex()
	o.hostOf = append(o.hostOf, host)
	o.alive = append(o.alive, true)
	o.slotOfHost[host] = slot
	o.aliveCount++
	if o.slotHook != nil {
		o.slotHook(SlotEvent{Kind: SlotJoin, U: slot, V: -1, HostU: host, HostV: -1})
	}
	return slot, nil
}

// RemoveSlot kills slot u: all its logical edges are dropped and its host
// is released. Neighbor repair (reconnecting the survivors) is the
// responsibility of the specific overlay protocol.
func (o *Overlay) RemoveSlot(u int) error {
	if !o.Alive(u) {
		return fmt.Errorf("overlay: RemoveSlot(%d) on dead slot", u)
	}
	if o.slotHook != nil {
		o.slotHook(SlotEvent{Kind: SlotLeave, U: u, V: -1, HostU: o.hostOf[u], HostV: -1})
	}
	for _, v := range o.Logical.Neighbors(u) {
		o.Logical.RemoveEdge(u, v)
	}
	delete(o.slotOfHost, o.hostOf[u])
	o.hostOf[u] = -1
	o.alive[u] = false
	o.aliveCount--
	return nil
}

// CrashSlot kills slot u crash-stop: the host is released and the slot goes
// dead immediately, but — unlike the graceful RemoveSlot — its logical edges
// are left in place. Survivors keep stale references to the corpse until
// they notice (liveness eviction in internal/core, or a DHT RepairCrashed
// pass) and the corpse is purged with PurgeCrashed. CheckInvariants tolerates
// the stale edges only while the slot is flagged crashed.
func (o *Overlay) CrashSlot(u int) error {
	if !o.Alive(u) {
		return fmt.Errorf("overlay: CrashSlot(%d) on dead slot", u)
	}
	if o.slotHook != nil {
		o.slotHook(SlotEvent{Kind: SlotCrash, U: u, V: -1, HostU: o.hostOf[u], HostV: -1})
	}
	delete(o.slotOfHost, o.hostOf[u])
	o.hostOf[u] = -1
	o.alive[u] = false
	o.aliveCount--
	if o.crashed == nil {
		o.crashed = make(map[int]bool)
	}
	o.crashed[u] = true
	return nil
}

// Crashed reports whether slot u died crash-stop and has not been purged.
func (o *Overlay) Crashed(u int) bool { return o.crashed[u] }

// CrashedSlots returns the unpurged crashed slots in ascending order.
func (o *Overlay) CrashedSlots() []int {
	if len(o.crashed) == 0 {
		return nil
	}
	out := make([]int, 0, len(o.crashed))
	for s := range o.alive {
		if o.crashed[s] {
			out = append(out, s)
		}
	}
	return out
}

// PurgeCrashed completes the death of a crashed slot: every stale edge is
// removed and the crashed flag cleared, leaving the slot indistinguishable
// from a graceful leave. Repair paths call this once the survivors have been
// given replacement links.
func (o *Overlay) PurgeCrashed(u int) error {
	if !o.crashed[u] {
		return fmt.Errorf("overlay: PurgeCrashed(%d): slot is not crashed", u)
	}
	for _, v := range o.Logical.Neighbors(u) {
		o.Logical.RemoveEdge(u, v)
	}
	delete(o.crashed, u)
	return nil
}

// EvictDeadNeighbors removes u's logical edges to dead slots — the liveness
// eviction primitive: a node that times out probing a neighbor drops the
// stale reference. It returns the number of edges evicted.
func (o *Overlay) EvictDeadNeighbors(u int) int {
	evicted := 0
	for _, v := range o.Logical.Neighbors(u) {
		if !o.Alive(v) {
			o.Logical.RemoveEdge(u, v)
			evicted++
		}
	}
	return evicted
}

// CheckInvariants verifies the overlay's structural invariants — the
// executable form of the slot/host model's contract, evaluated online by
// the auditor (internal/audit) after every PROP exchange:
//
//   - slot↔host is a bijection on live slots: every live slot has a
//     distinct host, slotOfHost inverts hostOf exactly, and no dead slot
//     retains a host;
//   - aliveCount agrees with the alive mask;
//   - the logical graph covers exactly the slot ID space and no edge
//     touches a dead slot, except that a slot flagged crashed (CrashSlot)
//     may keep stale edges until it is purged.
//
// It returns the first violation found, or nil.
func (o *Overlay) CheckInvariants() error {
	if len(o.hostOf) != len(o.alive) {
		return fmt.Errorf("overlay: %d host entries vs %d alive entries", len(o.hostOf), len(o.alive))
	}
	if o.Logical.NumVertices() != len(o.hostOf) {
		return fmt.Errorf("overlay: logical graph has %d vertices, %d slots exist",
			o.Logical.NumVertices(), len(o.hostOf))
	}
	count := 0
	for s, a := range o.alive {
		if !a {
			if o.hostOf[s] != -1 {
				return fmt.Errorf("overlay: dead slot %d still holds host %d", s, o.hostOf[s])
			}
			if o.Logical.Degree(s) != 0 && !o.crashed[s] {
				return fmt.Errorf("overlay: dead slot %d has %d logical edges", s, o.Logical.Degree(s))
			}
			continue
		}
		if o.crashed[s] {
			return fmt.Errorf("overlay: slot %d flagged crashed but alive", s)
		}
		count++
		h := o.hostOf[s]
		if h < 0 {
			return fmt.Errorf("overlay: live slot %d has no host", s)
		}
		back, ok := o.slotOfHost[h]
		if !ok {
			return fmt.Errorf("overlay: host %d of slot %d missing from reverse map", h, s)
		}
		if back != s {
			return fmt.Errorf("overlay: host %d maps back to slot %d, not %d (bijection broken)", h, back, s)
		}
	}
	if count != o.aliveCount {
		return fmt.Errorf("overlay: aliveCount %d, counted %d live slots", o.aliveCount, count)
	}
	if len(o.slotOfHost) != count {
		return fmt.Errorf("overlay: reverse map holds %d hosts, %d slots are live (bijection broken)",
			len(o.slotOfHost), count)
	}
	return nil
}

// Clone returns a deep copy sharing only the latency function.
func (o *Overlay) Clone() *Overlay {
	c := &Overlay{
		Logical:    o.Logical.Clone(),
		Stats:      o.Stats,
		hostOf:     append([]int(nil), o.hostOf...),
		slotOfHost: make(map[int]int, len(o.slotOfHost)),
		alive:      append([]bool(nil), o.alive...),
		aliveCount: o.aliveCount,
		lat:        o.lat,
	}
	for h, s := range o.slotOfHost {
		c.slotOfHost[h] = s
	}
	if len(o.crashed) > 0 {
		c.crashed = make(map[int]bool, len(o.crashed))
		for s := range o.crashed {
			c.crashed[s] = true
		}
	}
	return c
}
