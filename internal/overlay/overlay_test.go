package overlay

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// gridLat is a toy latency function: hosts are points on a line, latency is
// their absolute difference. Symmetric and exact, which makes gain
// arithmetic easy to verify by hand.
func gridLat(a, b int) float64 { return math.Abs(float64(a - b)) }

func lineOverlay(t *testing.T, hosts []int) *Overlay {
	t.Helper()
	o, err := New(hosts, gridLat)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]int{1, 2}, nil); err == nil {
		t.Error("nil latency function accepted")
	}
	if _, err := New([]int{1, 1}, gridLat); err == nil {
		t.Error("duplicate host accepted")
	}
}

func TestHostSlotMapping(t *testing.T) {
	o := lineOverlay(t, []int{10, 20, 30})
	if o.NumSlots() != 3 || o.NumAlive() != 3 {
		t.Fatalf("counts: %d slots, %d alive", o.NumSlots(), o.NumAlive())
	}
	if o.HostOf(1) != 20 {
		t.Fatalf("HostOf(1) = %d", o.HostOf(1))
	}
	if o.SlotOfHost(30) != 2 {
		t.Fatalf("SlotOfHost(30) = %d", o.SlotOfHost(30))
	}
	if o.SlotOfHost(99) != -1 {
		t.Fatal("unknown host should map to -1")
	}
	if o.HostOf(-1) != -1 || o.HostOf(5) != -1 {
		t.Fatal("out-of-range slot should map to -1")
	}
}

func TestDistUsesHosts(t *testing.T) {
	o := lineOverlay(t, []int{0, 100})
	if d := o.Dist(0, 1); d != 100 {
		t.Fatalf("Dist = %v", d)
	}
	if err := o.SwapHosts(0, 1); err != nil {
		t.Fatal(err)
	}
	if d := o.Dist(0, 1); d != 100 {
		t.Fatalf("Dist after swap = %v (symmetric, must be unchanged)", d)
	}
	if o.HostOf(0) != 100 || o.HostOf(1) != 0 {
		t.Fatal("hosts not swapped")
	}
	if o.SlotOfHost(100) != 0 || o.SlotOfHost(0) != 1 {
		t.Fatal("reverse mapping not swapped")
	}
}

func TestSwapHostsErrors(t *testing.T) {
	o := lineOverlay(t, []int{0, 1})
	if err := o.SwapHosts(0, 0); err == nil {
		t.Error("identical-slot swap accepted")
	}
	if err := o.SwapHosts(0, 9); err == nil {
		t.Error("out-of-range swap accepted")
	}
}

func TestNeighborLatencySum(t *testing.T) {
	o := lineOverlay(t, []int{0, 10, 25})
	mustEdge(t, o, 0, 1)
	mustEdge(t, o, 0, 2)
	if s := o.NeighborLatencySum(0); s != 35 {
		t.Fatalf("sum = %v, want 35", s)
	}
	if s := o.NeighborLatencySum(1); s != 10 {
		t.Fatalf("sum = %v, want 10", s)
	}
}

func mustEdge(t *testing.T, o *Overlay, u, v int) {
	t.Helper()
	if err := o.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

func TestSwapGainHandComputed(t *testing.T) {
	// Hosts on a line: slot0@0, slot1@100, slot2@1, slot3@99.
	// Edges: 0-3, 1-2. Slot 0 is far from its only neighbor 3 (|0-99|=99),
	// slot 1 far from 2 (|100-1|=99). Swapping hosts of slots 0 and 1
	// yields 0@100 adjacent to 3@99 (1) and 1@0 adjacent to 2@1 (1).
	// Var = (99+99) - (1+1) = 196.
	o := lineOverlay(t, []int{0, 100, 1, 99})
	mustEdge(t, o, 0, 3)
	mustEdge(t, o, 1, 2)
	if g := o.SwapGain(0, 1); g != 196 {
		t.Fatalf("SwapGain = %v, want 196", g)
	}
	// Applying the swap must change MeanLinkLatency accordingly.
	before := o.MeanLinkLatency()
	if err := o.SwapHosts(0, 1); err != nil {
		t.Fatal(err)
	}
	after := o.MeanLinkLatency()
	if math.Abs((before-after)*2-196) > 1e-9 { // 2 links
		t.Fatalf("link latency drop %v inconsistent with gain", (before-after)*2)
	}
}

func TestSwapGainAdjacentPair(t *testing.T) {
	// When u and v are adjacent the shared edge contributes equally before
	// and after; gain must depend only on the other neighbors.
	o := lineOverlay(t, []int{0, 100, 2, 98})
	mustEdge(t, o, 0, 1) // the pair itself
	mustEdge(t, o, 0, 3) // 0@0 to 3@98: 98
	mustEdge(t, o, 1, 2) // 1@100 to 2@2: 98
	// After swap: 0@100-3@98 = 2, 1@0-2@2 = 2. Gain = (98+98)-(2+2) = 192.
	if g := o.SwapGain(0, 1); g != 192 {
		t.Fatalf("SwapGain = %v, want 192", g)
	}
}

func TestSwapGainMatchesActualSwap(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 6 + r.Intn(20)
		hosts := make([]int, n)
		for i := range hosts {
			hosts[i] = i * 7
		}
		o, err := New(hosts, gridLat)
		if err != nil {
			return false
		}
		// Random connected-ish graph.
		for i := 1; i < n; i++ {
			o.AddEdge(i, r.Intn(i))
		}
		for k := 0; k < n; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				o.AddEdge(u, v)
			}
		}
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			return true
		}
		total := func() float64 {
			s := 0.0
			for _, slot := range o.AliveSlots() {
				s += o.NeighborLatencySum(slot)
			}
			return s
		}
		gain := o.SwapGain(u, v)
		before := total()
		if err := o.SwapHosts(u, v); err != nil {
			return false
		}
		after := total()
		// total counts each link twice, and gain counts each affected link
		// once per endpoint-sum: before-after over the two node sums equals
		// gain; over the global double-counted total it is 2*gain minus the
		// doubly-affected (u,v)-incident corrections. Comparing node sums:
		return math.Abs((before-after)-2*gain) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeNeighborsBasic(t *testing.T) {
	// u=0@0 with far neighbor a=2@101; v=1@100 with far neighbor b=3@1.
	// Swapping a and b makes both links short.
	// give a: d(u,a)-d(v,a) = 101-1 = 100; take b: d(v,b)-d(u,b) = 99-1 = 98.
	o := lineOverlay(t, []int{0, 100, 101, 1})
	mustEdge(t, o, 0, 2)
	mustEdge(t, o, 1, 3)
	mustEdge(t, o, 0, 1) // keep u,v connected
	gain := o.ExchangeGain(0, 1, []int{2}, []int{3})
	if gain != 198 {
		t.Fatalf("ExchangeGain = %v, want 198", gain)
	}
	degBefore := []int{o.Degree(0), o.Degree(1), o.Degree(2), o.Degree(3)}
	if err := o.ExchangeNeighbors(0, 1, []int{2}, []int{3}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if !o.Logical.HasEdge(1, 2) || !o.Logical.HasEdge(0, 3) {
		t.Fatal("edges not moved")
	}
	if o.Logical.HasEdge(0, 2) || o.Logical.HasEdge(1, 3) {
		t.Fatal("old edges not removed")
	}
	degAfter := []int{o.Degree(0), o.Degree(1), o.Degree(2), o.Degree(3)}
	for i := range degBefore {
		if degBefore[i] != degAfter[i] {
			t.Fatalf("degree of slot %d changed: %d -> %d", i, degBefore[i], degAfter[i])
		}
	}
}

func TestExchangeNeighborsRejections(t *testing.T) {
	o := lineOverlay(t, []int{0, 10, 20, 30, 40})
	mustEdge(t, o, 0, 2)
	mustEdge(t, o, 0, 3)
	mustEdge(t, o, 1, 3) // 3 adjacent to both 0 and 1
	mustEdge(t, o, 1, 4)
	mustEdge(t, o, 0, 1)

	cases := []struct {
		name       string
		give, take []int
		forbidden  []int
	}{
		{"empty", nil, nil, nil},
		{"unequal", []int{2}, nil, nil},
		{"not-a-neighbor", []int{4}, []int{3}, nil},
		{"would-merge", []int{3}, []int{4}, nil}, // 3 already adjacent to 1
		{"endpoint", []int{1}, []int{4}, nil},
		{"on-path", []int{2}, []int{4}, []int{2}},
		{"duplicate", []int{2, 2}, []int{4, 3}, nil},
	}
	for _, c := range cases {
		if err := o.ExchangeNeighbors(0, 1, c.give, c.take, c.forbidden); err == nil {
			t.Errorf("%s: exchange accepted", c.name)
		}
	}
	// Graph must be unchanged after all the failed attempts.
	if o.Logical.NumEdges() != 5 {
		t.Fatalf("failed exchanges mutated the graph: %d edges", o.Logical.NumEdges())
	}
}

func TestExchangePreservesDegreeSequenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 8 + r.Intn(20)
		hosts := make([]int, n)
		for i := range hosts {
			hosts[i] = i * 3
		}
		o, _ := New(hosts, gridLat)
		for i := 1; i < n; i++ {
			o.AddEdge(i, r.Intn(i))
		}
		for k := 0; k < 2*n; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				o.AddEdge(u, v)
			}
		}
		before := o.Logical.DegreeSequence()
		wasConnected := o.Connected()
		// Attempt a bunch of random exchanges; count the ones that succeed.
		for trial := 0; trial < 30; trial++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			nu, nv := o.Neighbors(u), o.Neighbors(v)
			if len(nu) == 0 || len(nv) == 0 {
				continue
			}
			give := []int{nu[r.Intn(len(nu))]}
			take := []int{nv[r.Intn(len(nv))]}
			// A real caller passes the walk path; here pass the endpoints
			// plus a connectivity witness: the path u..v. Use shortest hop
			// path endpoints only (u,v always implicitly protected by the
			// endpoint rule); for the property we pass just {u,v}.
			o.ExchangeNeighbors(u, v, give, take, []int{u, v})
		}
		after := o.Logical.DegreeSequence()
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		_ = wasConnected
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectivityPersistenceUnderPathProtectedExchanges(t *testing.T) {
	// Theorem 1: if the exchanged neighbors avoid the u–v walk path, the
	// overlay stays connected. We emulate the protocol: pick a random walk
	// from u, exchange neighbors not on the path.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(30)
		hosts := make([]int, n)
		for i := range hosts {
			hosts[i] = i
		}
		o, _ := New(hosts, gridLat)
		for i := 1; i < n; i++ {
			o.AddEdge(i, r.Intn(i))
		}
		for k := 0; k < 3*n; k++ {
			a, b := r.Intn(n), r.Intn(n)
			if a != b {
				o.AddEdge(a, b)
			}
		}
		if !o.Connected() {
			return false
		}
		for trial := 0; trial < 50; trial++ {
			u := r.Intn(n)
			nu := o.Neighbors(u)
			if len(nu) == 0 {
				continue
			}
			first := nu[r.Intn(len(nu))]
			path, ok := o.RandomWalk(u, first, 2, r)
			if !ok {
				continue
			}
			v := path[len(path)-1]
			candU := eligible(o, u, v, path)
			candV := eligible(o, v, u, path)
			if len(candU) == 0 || len(candV) == 0 {
				continue
			}
			give := []int{candU[r.Intn(len(candU))]}
			take := []int{candV[r.Intn(len(candV))]}
			if err := o.ExchangeNeighbors(u, v, give, take, path); err != nil {
				continue
			}
			if !o.Connected() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// eligible lists neighbors of from that could legally move to to, given path.
func eligible(o *Overlay, from, to int, path []int) []int {
	onPath := map[int]bool{}
	for _, p := range path {
		onPath[p] = true
	}
	var out []int
	for _, x := range o.Neighbors(from) {
		if x == to || onPath[x] || o.Logical.HasEdge(to, x) {
			continue
		}
		out = append(out, x)
	}
	return out
}

func TestRandomWalk(t *testing.T) {
	o := lineOverlay(t, []int{0, 1, 2, 3, 4})
	// Path graph 0-1-2-3-4.
	for i := 0; i < 4; i++ {
		mustEdge(t, o, i, i+1)
	}
	r := rng.New(1)
	path, ok := o.RandomWalk(0, 1, 3, r)
	if !ok {
		t.Fatalf("walk failed: %v", path)
	}
	want := []int{0, 1, 2, 3} // only one simple path
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// TTL longer than the graph ⇒ stuck ⇒ failure.
	if _, ok := o.RandomWalk(0, 1, 10, r); ok {
		t.Fatal("walk should get stuck and fail")
	}
	// Invalid first hop.
	if _, ok := o.RandomWalk(0, 3, 2, r); ok {
		t.Fatal("non-neighbor first hop accepted")
	}
	if _, ok := o.RandomWalk(0, 1, 0, r); ok {
		t.Fatal("zero TTL accepted")
	}
}

func TestRandomWalkNoRevisits(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(20)
		hosts := make([]int, n)
		for i := range hosts {
			hosts[i] = i
		}
		o, _ := New(hosts, gridLat)
		for i := 1; i < n; i++ {
			o.AddEdge(i, r.Intn(i))
		}
		for k := 0; k < 2*n; k++ {
			a, b := r.Intn(n), r.Intn(n)
			if a != b {
				o.AddEdge(a, b)
			}
		}
		u := r.Intn(n)
		nu := o.Neighbors(u)
		if len(nu) == 0 {
			return true
		}
		path, ok := o.RandomWalk(u, nu[r.Intn(len(nu))], 1+r.Intn(4), r)
		if !ok {
			return true
		}
		seen := map[int]bool{}
		for i, p := range path {
			if seen[p] {
				return false
			}
			seen[p] = true
			if i > 0 && !o.Logical.HasEdge(path[i-1], p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStretchAndMeanLinkLatency(t *testing.T) {
	o := lineOverlay(t, []int{0, 10, 30})
	mustEdge(t, o, 0, 1) // 10
	mustEdge(t, o, 1, 2) // 20
	if m := o.MeanLinkLatency(); m != 15 {
		t.Fatalf("MeanLinkLatency = %v", m)
	}
	if s := o.Stretch(5); s != 3 {
		t.Fatalf("Stretch = %v", s)
	}
	if s := o.Stretch(0); s != 0 {
		t.Fatalf("Stretch with zero phys mean = %v", s)
	}
}

func TestAddRemoveSlot(t *testing.T) {
	o := lineOverlay(t, []int{0, 10})
	mustEdge(t, o, 0, 1)
	s, err := o.AddSlot(20)
	if err != nil {
		t.Fatal(err)
	}
	if s != 2 || !o.Alive(2) || o.NumAlive() != 3 {
		t.Fatalf("AddSlot: slot=%d alive=%v count=%d", s, o.Alive(2), o.NumAlive())
	}
	if _, err := o.AddSlot(10); err == nil {
		t.Error("duplicate host accepted by AddSlot")
	}
	mustEdge(t, o, 2, 0)
	if err := o.RemoveSlot(0); err != nil {
		t.Fatal(err)
	}
	if o.Alive(0) || o.NumAlive() != 2 {
		t.Fatal("RemoveSlot did not kill the slot")
	}
	if o.Logical.Degree(0) != 0 {
		t.Fatal("dead slot retains edges")
	}
	if o.SlotOfHost(0) != -1 {
		t.Fatal("dead slot's host still mapped")
	}
	if err := o.RemoveSlot(0); err == nil {
		t.Error("double remove accepted")
	}
	// Freed host can be reused.
	if _, err := o.AddSlot(0); err != nil {
		t.Fatalf("host reuse rejected: %v", err)
	}
}

func TestConnectedWithDeadSlots(t *testing.T) {
	o := lineOverlay(t, []int{0, 1, 2, 3})
	mustEdge(t, o, 0, 1)
	mustEdge(t, o, 1, 2)
	mustEdge(t, o, 2, 3)
	if !o.Connected() {
		t.Fatal("line should be connected")
	}
	// Killing an interior node disconnects the survivors.
	if err := o.RemoveSlot(1); err != nil {
		t.Fatal(err)
	}
	if o.Connected() {
		t.Fatal("survivors should be disconnected")
	}
	mustEdge(t, o, 0, 2)
	if !o.Connected() {
		t.Fatal("repair edge should reconnect")
	}
}

func TestCloneIsolation(t *testing.T) {
	o := lineOverlay(t, []int{0, 10, 20})
	mustEdge(t, o, 0, 1)
	c := o.Clone()
	c.SwapHosts(0, 1)
	c.AddEdge(1, 2)
	if o.HostOf(0) != 0 {
		t.Fatal("clone swap leaked into original")
	}
	if o.Logical.HasEdge(1, 2) {
		t.Fatal("clone edge leaked into original")
	}
}

func TestFloodLatency(t *testing.T) {
	o := lineOverlay(t, []int{0, 10, 30, 100})
	mustEdge(t, o, 0, 1) // 10
	mustEdge(t, o, 1, 2) // 20
	mustEdge(t, o, 0, 3) // 100
	mustEdge(t, o, 3, 2) // 70
	// src 0 -> dst 2: via 1 = 30, via 3 = 170.
	if d := o.FloodLatency(0, 2, nil); d != 30 {
		t.Fatalf("FloodLatency = %v, want 30", d)
	}
	if d := o.FloodLatency(0, 0, nil); d != 0 {
		t.Fatalf("self lookup = %v", d)
	}
	// With processing delays the long way can win: make slot 1 very slow.
	proc := func(slot int) float64 {
		if slot == 1 {
			return 1000
		}
		return 1
	}
	// via 1: 10 + 1000 + 20 + 1 = 1031; via 3: 100 + 1 + 70 + 1 = 172.
	if d := o.FloodLatency(0, 2, proc); d != 172 {
		t.Fatalf("FloodLatency with proc = %v, want 172", d)
	}
}

func TestFloodLatencyUnreachable(t *testing.T) {
	o := lineOverlay(t, []int{0, 10, 20})
	mustEdge(t, o, 0, 1)
	if d := o.FloodLatency(0, 2, nil); !math.IsInf(d, 1) {
		t.Fatalf("unreachable lookup = %v", d)
	}
	o.RemoveSlot(1)
	if d := o.FloodLatency(0, 1, nil); !math.IsInf(d, 1) {
		t.Fatalf("lookup to dead slot = %v", d)
	}
}

func BenchmarkFloodLatency(b *testing.B) {
	r := rng.New(1)
	n := 1000
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i
	}
	o, _ := New(hosts, gridLat)
	for i := 1; i < n; i++ {
		o.AddEdge(i, r.Intn(i))
	}
	for k := 0; k < 3*n; k++ {
		a, bb := r.Intn(n), r.Intn(n)
		if a != bb {
			o.AddEdge(a, bb)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.FloodLatency(i%n, (i*31+7)%n, nil)
	}
}

func TestFloodLatencyAny(t *testing.T) {
	o := lineOverlay(t, []int{0, 10, 30, 100})
	mustEdge(t, o, 0, 1) // 10
	mustEdge(t, o, 1, 2) // 20
	mustEdge(t, o, 2, 3) // 70
	// Nearest of {2,3} from 0 is 2 at 30.
	if d := o.FloodLatencyAny(0, []int{2, 3}, nil); d != 30 {
		t.Fatalf("FloodLatencyAny = %v, want 30", d)
	}
	// Source among the targets is free.
	if d := o.FloodLatencyAny(0, []int{3, 0}, nil); d != 0 {
		t.Fatalf("self-target = %v", d)
	}
	// Empty and dead targets.
	if d := o.FloodLatencyAny(0, nil, nil); !math.IsInf(d, 1) {
		t.Fatalf("empty targets = %v", d)
	}
	o.RemoveSlot(3)
	if d := o.FloodLatencyAny(0, []int{3}, nil); !math.IsInf(d, 1) {
		t.Fatalf("dead target = %v", d)
	}
	// Must agree with single-target FloodLatency.
	if a, b := o.FloodLatencyAny(0, []int{2}, nil), o.FloodLatency(0, 2, nil); a != b {
		t.Fatalf("Any(%v) != single(%v)", a, b)
	}
}
