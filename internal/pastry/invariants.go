package pastry

import "fmt"

// CheckInvariants verifies the mesh's structural contract — the Pastry-level
// predicate the online auditor (internal/audit) evaluates during audited
// runs:
//
//   - the sorted ring lists exactly the live slots in strictly ascending
//     identifier order, and pos inverts it;
//   - every leaf-set entry is live;
//   - every routing-table entry at (row r, column c) of slot s is live,
//     shares exactly r leading digits with s's identifier, and has digit c
//     at position r — Pastry's prefix constraint.
//
// It returns the first violation found, or nil.
func (m *Mesh) CheckInvariants() error {
	n := len(m.sorted)
	if n != m.O.NumAlive() {
		return fmt.Errorf("pastry: ring order lists %d slots, %d are live", n, m.O.NumAlive())
	}
	if len(m.pos) != n {
		return fmt.Errorf("pastry: pos maps %d slots, ring order has %d", len(m.pos), n)
	}
	for i, s := range m.sorted {
		if !m.O.Alive(s) {
			return fmt.Errorf("pastry: ring order contains dead slot %d", s)
		}
		if i > 0 && m.ID[m.sorted[i-1]] >= m.ID[s] {
			return fmt.Errorf("pastry: ring order broken at index %d", i)
		}
		if m.pos[s] != i {
			return fmt.Errorf("pastry: pos[%d] = %d, ring order says %d", s, m.pos[s], i)
		}
	}
	for _, s := range m.sorted {
		for _, l := range m.leaves[s] {
			if !m.O.Alive(l) {
				return fmt.Errorf("pastry: slot %d leaf set references dead slot %d", s, l)
			}
		}
		for r, row := range m.table[s] {
			for c, t := range row {
				if t < 0 {
					continue
				}
				if !m.O.Alive(t) {
					return fmt.Errorf("pastry: slot %d table[%d][%d] references dead slot %d", s, r, c, t)
				}
				if got := sharedPrefix(m.ID[s], m.ID[t]); got != r {
					return fmt.Errorf("pastry: slot %d table[%d][%d] entry %d shares %d digits, want %d",
						s, r, c, t, got, r)
				}
				if got := digit(m.ID[t], r); got != c {
					return fmt.Errorf("pastry: slot %d table[%d][%d] entry %d has digit %d at row %d",
						s, r, c, t, got, r)
				}
			}
		}
	}
	return nil
}
