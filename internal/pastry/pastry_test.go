package pastry

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func lat(a, b int) float64 { return math.Abs(float64(a - b)) }

func hostsN(n int) []int {
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i * 3
	}
	return hosts
}

func buildMesh(t testing.TB, n int, seed uint64) *Mesh {
	t.Helper()
	m, err := Build(hostsN(n), DefaultConfig(), lat, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(hostsN(1), DefaultConfig(), lat, rng.New(1)); err == nil {
		t.Error("single node accepted")
	}
	if _, err := Build(hostsN(8), Config{LeafSetSize: 3}, lat, rng.New(1)); err == nil {
		t.Error("odd leaf-set size accepted")
	}
	if _, err := Build(hostsN(8), Config{LeafSetSize: 0}, lat, rng.New(1)); err == nil {
		t.Error("zero leaf-set size accepted")
	}
}

func TestDigitHelpers(t *testing.T) {
	id := uint32(0x12345678)
	want := []int{1, 2, 3, 4, 5, 6, 7, 8}
	for d, w := range want {
		if got := digit(id, d); got != w {
			t.Errorf("digit(%#x, %d) = %d, want %d", id, d, got, w)
		}
	}
	if sp := sharedPrefix(0x12345678, 0x12345678); sp != Digits {
		t.Errorf("identical prefix = %d", sp)
	}
	if sp := sharedPrefix(0x12345678, 0x12340000); sp != 4 {
		t.Errorf("prefix = %d, want 4", sp)
	}
	if sp := sharedPrefix(0x02345678, 0x12345678); sp != 0 {
		t.Errorf("prefix = %d, want 0", sp)
	}
}

func TestRingDist(t *testing.T) {
	cases := []struct {
		a, b uint32
		want uint32
	}{
		{0, 0, 0},
		{0, 1, 1},
		{1, 0, 1},
		{0, math.MaxUint32, 1},
		{math.MaxUint32, 0, 1},
		{0, 1 << 31, 1 << 31},
	}
	for _, c := range cases {
		if got := ringDist(c.a, c.b); got != c.want {
			t.Errorf("ringDist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLeafSetsAreRingNeighbors(t *testing.T) {
	m := buildMesh(t, 100, 42)
	for s := 0; s < 100; s++ {
		leaves := m.Leaves(s)
		if len(leaves) != DefaultConfig().LeafSetSize {
			t.Fatalf("slot %d leaf set size %d", s, len(leaves))
		}
		// Every leaf must be within L/2 ring positions of s.
		i := m.pos[s]
		n := len(m.sorted)
		half := DefaultConfig().LeafSetSize / 2
		ok := map[int]bool{}
		for k := 1; k <= half; k++ {
			ok[m.sorted[(i+k)%n]] = true
			ok[m.sorted[((i-k)%n+n)%n]] = true
		}
		for _, l := range leaves {
			if !ok[l] {
				t.Fatalf("slot %d has non-adjacent leaf %d", s, l)
			}
		}
	}
}

func TestTableEntriesShareCorrectPrefix(t *testing.T) {
	m := buildMesh(t, 200, 7)
	for s := 0; s < 200; s++ {
		for r := 0; r < Digits; r++ {
			for c := 0; c < Cols; c++ {
				e := m.TableEntry(s, r, c)
				if e < 0 {
					continue
				}
				if sharedPrefix(m.ID[s], m.ID[e]) != r {
					t.Fatalf("entry (%d,%d) of slot %d shares %d digits, want exactly %d",
						r, c, s, sharedPrefix(m.ID[s], m.ID[e]), r)
				}
				if digit(m.ID[e], r) != c {
					t.Fatalf("entry (%d,%d) of slot %d has digit %d", r, c, s, digit(m.ID[e], r))
				}
			}
		}
	}
	if m.TableEntry(0, -1, 0) != -1 || m.TableEntry(0, 0, 99) != -1 {
		t.Fatal("out-of-range TableEntry should be -1")
	}
}

func TestOwnerIsCircularlyClosest(t *testing.T) {
	m := buildMesh(t, 64, 9)
	r := rng.New(3)
	for i := 0; i < 500; i++ {
		key := RandomKey(r)
		owner := m.Owner(key)
		for s := 0; s < 64; s++ {
			if ringDist(m.ID[s], key) < ringDist(m.ID[owner], key) {
				t.Fatalf("owner %d (dist %d) beaten by %d (dist %d) for key %d",
					owner, ringDist(m.ID[owner], key), s, ringDist(m.ID[s], key), key)
			}
		}
	}
}

func TestLookupFindsOwner(t *testing.T) {
	m := buildMesh(t, 256, 11)
	r := rng.New(77)
	for i := 0; i < 500; i++ {
		src := r.Intn(256)
		key := RandomKey(r)
		res, err := m.Lookup(src, key, nil)
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if res.Owner != m.Owner(key) {
			t.Fatalf("reached %d, owner is %d", res.Owner, m.Owner(key))
		}
		if res.Path[0] != src || res.Path[len(res.Path)-1] != res.Owner {
			t.Fatalf("path endpoints wrong: %v", res.Path)
		}
	}
}

func TestLookupLogarithmicHops(t *testing.T) {
	m := buildMesh(t, 1024, 13)
	r := rng.New(1)
	total := 0
	const lookups = 300
	for i := 0; i < lookups; i++ {
		res, err := m.Lookup(r.Intn(1024), RandomKey(r), nil)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Hops
	}
	if avg := float64(total) / lookups; avg > 6 {
		// Pastry expects ~log_16(1024) ≈ 2.5 hops.
		t.Fatalf("average hops %.1f too high for n=1024", avg)
	}
}

func TestLookupProcessingDelay(t *testing.T) {
	m := buildMesh(t, 128, 31)
	r := rng.New(4)
	src := r.Intn(128)
	key := RandomKey(r)
	base, err := m.Lookup(src, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	withProc, err := m.Lookup(src, key, func(int) float64 { return 9 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withProc.Latency-base.Latency-float64(base.Hops)*9) > 1e-9 {
		t.Fatalf("processing delay accounting off")
	}
}

func TestLookupFromDeadSlot(t *testing.T) {
	m := buildMesh(t, 16, 2)
	if _, err := m.Lookup(999, 1, nil); err == nil {
		t.Fatal("lookup from invalid slot accepted")
	}
}

func TestProximityReducesLinkLatency(t *testing.T) {
	hosts := hostsN(400)
	plain, err := Build(hosts, Config{LeafSetSize: 8}, lat, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	prox, err := Build(hosts, Config{LeafSetSize: 8, Proximity: true}, lat, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	if prox.O.MeanLinkLatency() >= plain.O.MeanLinkLatency() {
		t.Fatalf("proximity mesh link latency %.1f not below plain %.1f",
			prox.O.MeanLinkLatency(), plain.O.MeanLinkLatency())
	}
	// Proximity routing must stay correct.
	r := rng.New(6)
	for i := 0; i < 300; i++ {
		key := RandomKey(r)
		res, err := prox.Lookup(r.Intn(400), key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner != prox.Owner(key) {
			t.Fatal("proximity lookup reached wrong owner")
		}
	}
}

func TestLookupTerminatesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(120)
		m, err := Build(hostsN(n), DefaultConfig(), lat, r)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			key := RandomKey(r)
			res, err := m.Lookup(r.Intn(n), key, nil)
			if err != nil || res.Owner != m.Owner(key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSwapHostsPreservesRouting(t *testing.T) {
	m := buildMesh(t, 128, 17)
	r := rng.New(2)
	for i := 0; i < 50; i++ {
		u, v := r.Intn(128), r.Intn(128)
		if u != v {
			if err := m.O.SwapHosts(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 300; i++ {
		key := RandomKey(r)
		res, err := m.Lookup(r.Intn(128), key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner != m.Owner(key) {
			t.Fatal("routing broken after host swaps")
		}
	}
}

func TestRefreshPlainMeshIsStable(t *testing.T) {
	m := buildMesh(t, 100, 23)
	before := m.O.Logical.Edges()
	m.Refresh(lat)
	after := m.O.Logical.Edges()
	if len(before) != len(after) {
		t.Fatalf("plain refresh changed edge count %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("plain refresh changed edge %d", i)
		}
	}
}

func TestRefreshProximityAdaptsToSwaps(t *testing.T) {
	hosts := hostsN(200)
	m, err := Build(hosts, Config{LeafSetSize: 8, Proximity: true}, lat, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	for i := 0; i < 100; i++ {
		u, v := r.Intn(200), r.Intn(200)
		if u != v {
			m.O.SwapHosts(u, v)
		}
	}
	stale := m.O.MeanLinkLatency()
	m.Refresh(lat)
	fresh := m.O.MeanLinkLatency()
	if fresh > stale {
		t.Fatalf("refresh made proximity links worse: %.1f -> %.1f", stale, fresh)
	}
	// Routing still correct after refresh.
	for i := 0; i < 200; i++ {
		key := RandomKey(r)
		res, err := m.Lookup(r.Intn(200), key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner != m.Owner(key) {
			t.Fatal("lookup broken after refresh")
		}
	}
}

func BenchmarkLookup1k(b *testing.B) {
	m, err := Build(hostsN(1000), DefaultConfig(), lat, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Lookup(r.Intn(1000), RandomKey(r), nil); err != nil {
			b.Fatal(err)
		}
	}
}
