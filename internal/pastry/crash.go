package pastry

import (
	"fmt"

	"repro/internal/overlay"
)

// Crash-stop failure handling. A crashed node stays in the sorted ring and
// in survivors' leaf sets and routing tables until a RepairCrashed round —
// the simulator's stand-in for Pastry's leaf-set liveness checks — drops it
// and rebuilds the mesh from the live membership.

// Crash kills slot crash-stop: the host is released, every reference to the
// slot goes stale. The mesh must retain at least two live nodes.
func (m *Mesh) Crash(slot int) error {
	if !m.O.Alive(slot) {
		return fmt.Errorf("pastry: Crash(%d) on dead slot", slot)
	}
	if m.O.NumAlive() <= 2 {
		return fmt.Errorf("pastry: refusing to shrink below 2 nodes")
	}
	return m.O.CrashSlot(slot)
}

// RepairCrashed runs one failure-recovery round: corpses leave the sorted
// ring, their tables are released and stale edges purged, and leaf sets,
// routing tables, and logical links are rebuilt for the survivors. It
// returns the number of corpses repaired.
func (m *Mesh) RepairCrashed(lat overlay.LatencyFunc) (int, error) {
	crashed := m.O.CrashedSlots()
	if len(crashed) == 0 {
		return 0, nil
	}
	dead := make(map[int]bool, len(crashed))
	for _, c := range crashed {
		dead[c] = true
	}
	kept := m.sorted[:0]
	for _, s := range m.sorted {
		if !dead[s] {
			kept = append(kept, s)
		}
	}
	if len(kept) < 2 {
		return 0, fmt.Errorf("pastry: repair would shrink below 2 nodes")
	}
	m.sorted = kept
	for _, c := range crashed {
		m.leaves[c] = nil
		m.table[c] = nil
		if err := m.O.PurgeCrashed(c); err != nil {
			return 0, err
		}
	}
	m.rebuild(lat)
	return len(crashed), nil
}
