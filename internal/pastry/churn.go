package pastry

import (
	"fmt"
	"sort"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// Dynamic membership. Pastry repairs leaf sets eagerly and routing tables
// lazily in practice; the simulator's equivalent of the converged
// post-churn state is a rebuild from global knowledge — the same source
// Build uses — restricted to the live membership. Join and Leave therefore
// update the sorted ring and rebuild leaf sets, tables, and logical links.

// Join adds a node on host with a fresh uniformly random unique identifier
// and returns its slot.
func (m *Mesh) Join(host int, lat overlay.LatencyFunc, r *rng.Rand) (int, error) {
	inUse := make(map[uint32]bool, len(m.sorted))
	for _, s := range m.sorted {
		inUse[m.ID[s]] = true
	}
	var id uint32
	for {
		id = uint32(r.Uint64())
		if !inUse[id] {
			break
		}
	}
	slot, err := m.O.AddSlot(host)
	if err != nil {
		return -1, err
	}
	for len(m.ID) <= slot {
		m.ID = append(m.ID, 0)
		m.leaves = append(m.leaves, nil)
		m.table = append(m.table, nil)
	}
	m.ID[slot] = id
	i := sort.Search(len(m.sorted), func(k int) bool { return m.ID[m.sorted[k]] >= id })
	m.sorted = append(m.sorted, 0)
	copy(m.sorted[i+1:], m.sorted[i:])
	m.sorted[i] = slot
	m.rebuild(lat)
	return slot, nil
}

// Leave removes slot from the mesh. The mesh must retain at least two
// nodes.
func (m *Mesh) Leave(slot int, lat overlay.LatencyFunc) error {
	if !m.O.Alive(slot) {
		return fmt.Errorf("pastry: Leave(%d) on dead slot", slot)
	}
	if len(m.sorted) <= 2 {
		return fmt.Errorf("pastry: refusing to shrink below 2 nodes")
	}
	i, ok := m.pos[slot]
	if !ok || m.sorted[i] != slot {
		return fmt.Errorf("pastry: slot %d not in ring order", slot)
	}
	m.sorted = append(m.sorted[:i], m.sorted[i+1:]...)
	if err := m.O.RemoveSlot(slot); err != nil {
		return err
	}
	m.leaves[slot] = nil
	m.table[slot] = nil
	m.rebuild(lat)
	return nil
}

// rebuild reconstructs positions, leaf sets, routing tables, and logical
// links for the current live membership.
func (m *Mesh) rebuild(lat overlay.LatencyFunc) {
	m.pos = make(map[int]int, len(m.sorted))
	for i, s := range m.sorted {
		m.pos[s] = i
	}
	for _, e := range m.O.Logical.Edges() {
		m.O.Logical.RemoveEdge(e.U, e.V)
	}
	m.buildLeafSets()
	m.buildTables(lat)
	m.mirror()
}

// Alive reports whether the slot is a live mesh member.
func (m *Mesh) Alive(slot int) bool { return m.O.Alive(slot) }

// Size returns the current mesh membership count.
func (m *Mesh) Size() int { return len(m.sorted) }
