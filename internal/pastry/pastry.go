// Package pastry implements the Pastry distributed hash table (Rowstron &
// Druschel, Middleware '01) over the slot/host overlay model — the third
// structured substrate of the reproduction.
//
// Pastry matters to the paper for two reasons. First, it is the canonical
// system whose routing-table entries are *not* deterministic: any node with
// the right identifier prefix qualifies, so Pastry can natively apply
// Proximity Neighbor Selection — the baseline family the paper contrasts
// with. Second, it has a different routing geometry from Chord (prefix
// routing plus leaf sets), so reproducing PROP-G on it exercises the
// "deployed effortlessly on both unstructured and structured systems"
// claim beyond a single DHT.
//
// Identifiers are 32-bit, read as 8 hexadecimal digits. Each node keeps a
// leaf set (the L/2 numerically closest nodes on each side of the ring) and
// a routing table with one row per digit position: row r column c holds a
// node that shares the first r digits with the owner and has digit c at
// position r. With Proximity enabled the physically nearest qualifying
// candidate is chosen; otherwise the numerically first.
//
// Key types: Mesh (leaf sets plus prefix tables) and LookupResult. See
// DESIGN.md §1.
package pastry

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/overlay"
	"repro/internal/rng"
)

const (
	// DigitBits is the bits per identifier digit (hexadecimal digits).
	DigitBits = 4
	// Digits is the number of digits in a 32-bit identifier.
	Digits = 32 / DigitBits
	// Cols is the number of distinct digit values per row.
	Cols = 1 << DigitBits
)

// Config parameterizes mesh construction.
type Config struct {
	// LeafSetSize is the total leaf-set size (half per side). Must be an
	// even number >= 2.
	LeafSetSize int
	// Proximity enables Pastry's native PNS: routing-table candidates are
	// chosen by physical nearness.
	Proximity bool
}

// DefaultConfig mirrors a standard small Pastry deployment.
func DefaultConfig() Config { return Config{LeafSetSize: 8} }

// Mesh is a built Pastry overlay.
type Mesh struct {
	// O is the underlying overlay; logical links mirror the union of leaf
	// sets and routing-table entries (bidirectional).
	O *overlay.Overlay
	// ID holds each slot's identifier.
	ID []uint32

	cfg    Config
	sorted []int       // slots by ID
	leaves [][]int     // per slot: leaf-set slots
	table  [][][]int   // per slot: [row][col] -> slot or -1
	pos    map[int]int // slot -> index in sorted
}

// Build constructs a Pastry mesh over the given hosts with distinct random
// identifiers.
func Build(hosts []int, cfg Config, lat overlay.LatencyFunc, r *rng.Rand) (*Mesh, error) {
	n := len(hosts)
	if n < 2 {
		return nil, fmt.Errorf("pastry: need at least 2 nodes, got %d", n)
	}
	if cfg.LeafSetSize < 2 || cfg.LeafSetSize%2 != 0 {
		return nil, fmt.Errorf("pastry: LeafSetSize = %d, want even >= 2", cfg.LeafSetSize)
	}
	o, err := overlay.New(hosts, lat)
	if err != nil {
		return nil, err
	}
	m := &Mesh{
		O:      o,
		ID:     make([]uint32, n),
		cfg:    cfg,
		leaves: make([][]int, n),
		table:  make([][][]int, n),
		pos:    make(map[int]int, n),
	}
	used := make(map[uint32]bool, n)
	for s := 0; s < n; s++ {
		for {
			id := uint32(r.Uint64())
			if !used[id] {
				used[id] = true
				m.ID[s] = id
				break
			}
		}
	}
	m.sorted = make([]int, n)
	for i := range m.sorted {
		m.sorted[i] = i
	}
	sort.Slice(m.sorted, func(i, j int) bool { return m.ID[m.sorted[i]] < m.ID[m.sorted[j]] })
	for i, s := range m.sorted {
		m.pos[s] = i
	}
	m.buildLeafSets()
	m.buildTables(lat)
	m.mirror()
	return m, nil
}

// buildLeafSets links each node to its L/2 ring neighbors per side. Only
// live slots participate: m.sorted lists exactly the live membership.
func (m *Mesh) buildLeafSets() {
	n := len(m.sorted)
	half := m.cfg.LeafSetSize / 2
	if half > (n-1)/2 {
		half = (n - 1) / 2
		if half < 1 {
			half = 1
		}
	}
	for _, s := range m.sorted {
		i := m.pos[s]
		seen := map[int]bool{s: true}
		var leaves []int
		for k := 1; k <= half; k++ {
			for _, cand := range []int{m.sorted[(i+k)%n], m.sorted[((i-k)%n+n)%n]} {
				if !seen[cand] {
					seen[cand] = true
					leaves = append(leaves, cand)
				}
			}
		}
		sort.Ints(leaves)
		m.leaves[s] = leaves
	}
}

// digit returns the d-th hexadecimal digit of id, most significant first.
func digit(id uint32, d int) int {
	shift := uint(32 - DigitBits*(d+1))
	return int(id>>shift) & (Cols - 1)
}

// sharedPrefix returns the number of leading digits a and b share.
func sharedPrefix(a, b uint32) int {
	for d := 0; d < Digits; d++ {
		if digit(a, d) != digit(b, d) {
			return d
		}
	}
	return Digits
}

// buildTables fills each node's routing table from global knowledge (the
// simulator's equivalent of a converged Pastry join protocol).
func (m *Mesh) buildTables(lat overlay.LatencyFunc) {
	// Group nodes by every (prefix length, prefix value) bucket lazily:
	// for each node s and row r, candidates share digits [0,r) with s and
	// differ at r. A single pass per node over all live nodes is O(n²) —
	// fine at simulation scale.
	for _, s := range m.sorted {
		rows := make([][]int, Digits)
		for r := range rows {
			row := make([]int, Cols)
			for c := range row {
				row[c] = -1
			}
			rows[r] = row
		}
		bestD := make([][]float64, Digits)
		for r := range bestD {
			bestD[r] = make([]float64, Cols)
			for c := range bestD[r] {
				bestD[r][c] = math.Inf(1)
			}
		}
		hs := m.O.HostOf(s)
		for _, t := range m.sorted {
			if t == s {
				continue
			}
			r := sharedPrefix(m.ID[s], m.ID[t])
			if r == Digits {
				continue
			}
			c := digit(m.ID[t], r)
			if m.cfg.Proximity {
				d := lat(hs, m.O.HostOf(t))
				if d < bestD[r][c] {
					bestD[r][c] = d
					rows[r][c] = t
				}
			} else if rows[r][c] == -1 || m.ID[t] < m.ID[rows[r][c]] {
				rows[r][c] = t
			}
		}
		m.table[s] = rows
	}
}

// mirror reflects leaf sets and routing tables into the overlay's logical
// graph (bidirectional links, per the paper's §3.2 assumption).
func (m *Mesh) mirror() {
	for _, s := range m.sorted {
		for _, l := range m.leaves[s] {
			m.O.AddEdge(s, l)
		}
		for _, row := range m.table[s] {
			for _, t := range row {
				if t >= 0 && t != s {
					m.O.AddEdge(s, t)
				}
			}
		}
	}
}

// Refresh recomputes the routing tables (and logical links) against the
// current host mapping — Pastry's routing-table maintenance. Only matters
// for Proximity meshes after PROP-G exchanges; plain meshes are unchanged.
func (m *Mesh) Refresh(lat overlay.LatencyFunc) {
	for _, e := range m.O.Logical.Edges() {
		m.O.Logical.RemoveEdge(e.U, e.V)
	}
	m.buildTables(lat)
	m.mirror()
}

// ringDist is the circular distance between two identifiers.
func ringDist(a, b uint32) uint32 {
	d := a - b
	if b > a {
		d = b - a
	}
	if d > math.MaxUint32/2 {
		return math.MaxUint32 - d + 1
	}
	return d
}

// Owner returns the slot whose identifier is circularly closest to key
// (ties to the lower ID) — the node responsible for the key.
func (m *Mesh) Owner(key uint32) int {
	// Binary search the sorted ring, then compare the two flanking nodes.
	n := len(m.sorted)
	lo := sort.Search(n, func(i int) bool { return m.ID[m.sorted[i]] >= key })
	best, bestDist := -1, uint32(math.MaxUint32)
	for _, i := range []int{(lo - 1 + n) % n, lo % n, (lo + 1) % n} {
		s := m.sorted[i]
		d := ringDist(m.ID[s], key)
		if d < bestDist || (d == bestDist && (best == -1 || m.ID[s] < m.ID[best])) {
			best, bestDist = s, d
		}
	}
	return best
}

// LookupResult describes one routed lookup.
type LookupResult struct {
	// Owner is the slot responsible for the key.
	Owner int
	// Hops is the overlay hop count.
	Hops int
	// Latency is the summed physical latency plus processing delays.
	Latency float64
	// Path lists visited slots.
	Path []int
}

// Lookup routes a query for key from src using Pastry's algorithm: deliver
// within the leaf set when possible, otherwise follow the routing-table
// entry with a longer shared prefix, otherwise fall back to any known node
// strictly closer to the key. proc, if non-nil, adds per-hop processing
// delay.
func (m *Mesh) Lookup(src int, key uint32, proc overlay.ProcDelayFunc) (LookupResult, error) {
	if !m.O.Alive(src) {
		return LookupResult{}, fmt.Errorf("pastry: lookup from dead slot %d", src)
	}
	owner := m.Owner(key)
	res := LookupResult{Owner: owner, Path: []int{src}}
	cur := src
	maxHops := len(m.ID) + Digits
	for cur != owner {
		next := m.nextHop(cur, key)
		if next == cur {
			return res, fmt.Errorf("pastry: routing stuck at slot %d for key %d", cur, key)
		}
		res.Latency += m.O.Dist(cur, next)
		if proc != nil {
			res.Latency += proc(next)
		}
		res.Hops++
		res.Path = append(res.Path, next)
		cur = next
		if res.Hops > maxHops {
			return res, fmt.Errorf("pastry: routing exceeded %d hops for key %d", maxHops, key)
		}
	}
	return res, nil
}

// nextHop implements one Pastry routing decision at cur.
func (m *Mesh) nextHop(cur int, key uint32) int {
	// 1. Leaf set: if any leaf (or cur) is closest, go numerically closest.
	bestLeaf, bestLeafDist := cur, ringDist(m.ID[cur], key)
	for _, l := range m.leaves[cur] {
		if d := ringDist(m.ID[l], key); d < bestLeafDist ||
			(d == bestLeafDist && m.ID[l] < m.ID[bestLeaf]) {
			bestLeaf, bestLeafDist = l, d
		}
	}
	// If the key falls inside the leaf-set span, the closest leaf is the
	// right delivery point.
	if m.keyInLeafRange(cur, key) {
		return bestLeaf
	}
	// 2. Routing table: entry sharing one more digit with the key.
	r := sharedPrefix(m.ID[cur], key)
	if r < Digits {
		if t := m.table[cur][r][digit(key, r)]; t >= 0 {
			return t
		}
	}
	// 3. Rare case: any known node with shared prefix >= r that is strictly
	// numerically closer; leaf fallback included.
	curDist := ringDist(m.ID[cur], key)
	best, bestDist := cur, curDist
	consider := func(t int) {
		if t < 0 || t == cur {
			return
		}
		if sharedPrefix(m.ID[t], key) < r {
			return
		}
		if d := ringDist(m.ID[t], key); d < bestDist {
			best, bestDist = t, d
		}
	}
	for _, l := range m.leaves[cur] {
		consider(l)
	}
	for _, row := range m.table[cur] {
		for _, t := range row {
			consider(t)
		}
	}
	return best
}

// keyInLeafRange reports whether key lies within cur's leaf-set span on the
// ring (between the numerically smallest and largest leaf, passing through
// cur).
func (m *Mesh) keyInLeafRange(cur int, key uint32) bool {
	if len(m.leaves[cur]) == 0 {
		return true
	}
	n := len(m.sorted)
	i := m.pos[cur]
	half := (len(m.leaves[cur]) + 1) / 2
	loSlot := m.sorted[((i-half)%n+n)%n]
	hiSlot := m.sorted[(i+half)%n]
	lo, hi := m.ID[loSlot], m.ID[hiSlot]
	if lo <= hi {
		return key >= lo && key <= hi
	}
	return key >= lo || key <= hi // wraps zero
}

// RandomKey returns a uniform key.
func RandomKey(r *rng.Rand) uint32 { return uint32(r.Uint64()) }

// Leaves exposes a slot's leaf set (shared storage; do not mutate).
func (m *Mesh) Leaves(s int) []int { return m.leaves[s] }

// TableEntry exposes routing-table entry (row, col) of slot s, or -1.
func (m *Mesh) TableEntry(s, row, col int) int {
	if row < 0 || row >= Digits || col < 0 || col >= Cols {
		return -1
	}
	return m.table[s][row][col]
}
