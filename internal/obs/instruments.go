package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// counterShards is the number of independent cells a Counter spreads its
// increments over. Power of two; eight 128-byte cells keep concurrent
// writers (the parallel metric evaluators hammering the oracle) off each
// other's cache lines without bloating the idle footprint.
const counterShards = 8

// counterCell is one padded counter shard. The padding keeps two cells out
// of one cache line (128 bytes covers the common 64B line plus adjacent-
// line prefetchers).
type counterCell struct {
	v atomic.Uint64
	_ [120]byte
}

// Counter is a monotonically increasing, lock-free sharded counter. Add is
// safe for concurrent use from any number of goroutines: each increment
// lands on a shard with processor affinity (a sync.Pool keeps the last
// shard a P used in its private slot, so steady-state increments touch an
// uncontended cache line and take no locks). Value sums the shards, which
// makes totals order-independent — the foundation of the determinism
// contract. All methods are no-ops on a nil receiver.
type Counter struct {
	name string

	shards [counterShards]counterCell
	// affinity caches a per-P shard pointer; next round-robins the shard
	// handed to a P that has none cached yet.
	affinity sync.Pool
	next     atomic.Uint32
}

// Name reports the counter's registered name ("" when nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	cell, _ := c.affinity.Get().(*counterCell)
	if cell == nil {
		cell = &c.shards[c.next.Add(1)&(counterShards-1)]
	}
	cell.v.Add(n)
	c.affinity.Put(cell)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 when nil). The total is exact once
// writers have quiesced; a concurrent read observes some subset of
// in-flight increments.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is a last-writer-wins float64 cell, safe for concurrent use. All
// methods are no-ops on a nil receiver.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Name reports the gauge's registered name ("" when nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 when nil or never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultLatencyBuckets are histogram upper bounds suited to millisecond
// latencies and Var gains in this simulation (the transit-stub link scale
// puts interesting mass between 1 ms and a few seconds).
var DefaultLatencyBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// Histogram is a fixed-bucket histogram: counts[i] tallies observations
// v <= bounds[i], counts[len(bounds)] the overflow. Bucket counts use
// atomics and are safe for concurrent use; Sum is accumulated with a CAS
// loop, so under concurrent writers its floating-point rounding can depend
// on arrival order — the in-tree writers (protocol trace hooks on the
// single-threaded engine) never race, keeping emission deterministic. All
// methods are no-ops on a nil receiver.
type Histogram struct {
	name   string
	bounds []float64
	counts []atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(name string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{name: name, bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Name reports the histogram's registered name ("" when nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns the bucket upper bounds, per-bucket counts (the last
// entry is the overflow bucket), total count, and value sum. Nil-safe.
func (h *Histogram) Snapshot() (bounds []float64, counts []uint64, n uint64, sum float64) {
	if h == nil {
		return nil, nil, 0, 0
	}
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts, h.n.Load(), math.Float64frombits(h.sum.Load())
}

// TimeSeries is a sim-clock-stamped sequence of samples. It is written
// from the single-threaded event loop at measurement ticks — never from
// concurrent goroutines — which is what keeps sample order (and therefore
// the emitted stream) deterministic; it is not synchronized. All methods
// are no-ops on a nil receiver.
type TimeSeries struct {
	name string
	t    []float64 // sim time, ms
	v    []float64
}

// Name reports the series' registered name ("" when nil).
func (s *TimeSeries) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Sample appends one (sim time ms, value) point.
func (s *TimeSeries) Sample(simMS, v float64) {
	if s == nil {
		return
	}
	s.t = append(s.t, simMS)
	s.v = append(s.v, v)
}

// Len reports the number of samples (0 when nil).
func (s *TimeSeries) Len() int {
	if s == nil {
		return 0
	}
	return len(s.t)
}

// Points returns the sample slices (shared storage; do not mutate).
func (s *TimeSeries) Points() (simMS, v []float64) {
	if s == nil {
		return nil, nil
	}
	return s.t, s.v
}

// Span is one named phase of a trial: a sim-time interval plus a wall-time
// duration. Sim times come from the caller (the event engine's clock);
// wall time is always captured but only emitted when the registry has
// wall-clock emission enabled. Spans are recorded from the sequential
// trial body; End is not synchronized. All methods are no-ops on a nil
// receiver, so disabled call sites read naturally:
//
//	sp := tr.StartSpan("build-overlay", 0) // tr may be nil
//	...
//	sp.End(0)
type Span struct {
	name       string
	seq        int
	simStartMS float64
	simEndMS   float64
	wallStart  time.Time
	wallNS     int64
	done       bool
}

func newSpan(name string, seq int, simNowMS float64) *Span {
	return &Span{name: name, seq: seq, simStartMS: simNowMS, simEndMS: simNowMS, wallStart: time.Now()}
}

// Name reports the span's name ("" when nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End closes the span at the given sim time (ms). Calling End twice keeps
// the first closure.
func (s *Span) End(simNowMS float64) {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.simEndMS = simNowMS
	s.wallNS = time.Since(s.wallStart).Nanoseconds()
}

// WallMS reports the span's wall duration in milliseconds (0 when nil or
// still open).
func (s *Span) WallMS() float64 {
	if s == nil {
		return 0
	}
	return float64(s.wallNS) / 1e6
}
