// Package obs is the observability layer of the simulation stack
// (DESIGN.md §8): lock-free sharded counters, gauges, fixed-bucket
// histograms, sim-clock-stamped time series, named phase spans, and a
// per-run manifest, plus deterministic JSONL/CSV emitters.
//
// The package is stdlib-only and imports nothing else from this repository,
// so every layer — the latency oracle, the protocol loops, the experiment
// harness, the binaries — can depend on it without cycles.
//
// # Disabled-path contract
//
// Instrumentation is off by default and must stay near-free when off. The
// disabled state is the nil pointer: a nil *Registry yields nil *Trial
// scopes, which yield nil instruments, and every method on every nil
// receiver is a no-op that performs zero allocations. Hot paths that hold
// an instrument pointer may (and the oracle does) additionally guard the
// call behind a single nil check so the disabled cost is one predictable
// branch. TestDisabledPathAllocs and BenchmarkCounterDisabled pin this
// contract.
//
// # Determinism contract
//
// With wall-clock emission off (the default), the byte stream produced by
// WriteJSONL/WriteCSV is a pure function of the simulation: two runs with
// the same seed and options emit byte-identical streams. This holds because
// (a) counter values are order-independent sums, (b) time series and
// histograms are written from the single-threaded event loop, (c) emission
// orders trials by index and instruments by name, and (d) wall-clock
// fields — the only scheduling-dependent data — are suppressed unless
// EnableWallClock was called. TestMetricsStreamDeterministic pins this.
package obs

import (
	"runtime"
	"sort"
	"sync"
)

// SchemaVersion identifies the emitted record layout; it is stamped into
// every manifest. Bump it when record fields change incompatibly.
const SchemaVersion = "prop-metrics/1"

// Manifest identifies one run: what was executed, with which knobs, by
// which toolchain. All fields are deterministic for a fixed binary and
// command line except UnixTime, which is only stamped when the registry
// has wall-clock emission enabled.
type Manifest struct {
	// Schema is the record-layout version (SchemaVersion).
	Schema string `json:"schema"`
	// Experiment is the experiment identifier (e.g. "fig5a").
	Experiment string `json:"experiment"`
	// Seed, Trials, Scale echo the experiment options.
	Seed   uint64  `json:"seed"`
	Trials int     `json:"trials"`
	Scale  float64 `json:"scale"`
	// Preset names the physical-topology preset when one applies.
	Preset string `json:"preset,omitempty"`
	// Flags records any further command-line knobs (JSON sorts map keys,
	// so emission stays deterministic).
	Flags map[string]string `json:"flags,omitempty"`
	// GoVersion, GOOS and GOARCH identify the toolchain and platform.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// UnixTime is the wall-clock start of the run in Unix seconds; zero
	// (and omitted) unless wall-clock emission is enabled.
	UnixTime int64 `json:"unix_time,omitempty"`
}

// NewManifest returns a manifest stamped with the schema version and the
// running toolchain/platform.
func NewManifest(experiment string, seed uint64, trials int, scale float64) Manifest {
	return Manifest{
		Schema:     SchemaVersion,
		Experiment: experiment,
		Seed:       seed,
		Trials:     trials,
		Scale:      scale,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}

// Registry is the root of one run's instrumentation: a manifest plus one
// Trial scope per experiment trial. A nil *Registry is the disabled state;
// all methods are nil-safe no-ops. Trial lookup is safe for concurrent use
// (trial bodies run on a worker pool).
type Registry struct {
	manifest Manifest
	wall     bool

	mu     sync.Mutex
	trials map[int]*Trial
}

// New creates a registry for one run. Pass the result into the experiment
// options to switch instrumentation on; leave it nil to keep everything
// disabled.
func New(m Manifest) *Registry {
	if m.Schema == "" {
		m.Schema = SchemaVersion
	}
	return &Registry{manifest: m, trials: make(map[int]*Trial)}
}

// EnableWallClock opts the registry into wall-clock fields: span wall_ms
// and the manifest unix_time. Wall times are invaluable for per-phase cost
// attribution but scheduling-dependent, so enabling them forfeits the
// byte-determinism contract of the emitted stream.
func (r *Registry) EnableWallClock() {
	if r == nil {
		return
	}
	r.wall = true
}

// WallClock reports whether wall-clock emission is enabled.
func (r *Registry) WallClock() bool { return r != nil && r.wall }

// Manifest returns the registry's manifest (zero value when disabled).
func (r *Registry) Manifest() Manifest {
	if r == nil {
		return Manifest{}
	}
	return r.manifest
}

// SetManifest replaces the registry's manifest, preserving a stamped
// schema version.
func (r *Registry) SetManifest(m Manifest) {
	if r == nil {
		return
	}
	if m.Schema == "" {
		m.Schema = SchemaVersion
	}
	r.manifest = m
}

// Trial returns the scope for one trial index, creating it on first use.
// On a nil registry it returns nil — the disabled scope.
func (r *Registry) Trial(index int) *Trial {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.trials[index]
	if !ok {
		t = &Trial{index: index, wall: r.wall}
		r.trials[index] = t
	}
	return t
}

// sortedTrials returns the trial scopes ordered by index.
func (r *Registry) sortedTrials() []*Trial {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trial, 0, len(r.trials))
	for _, t := range r.trials {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].index < out[j].index })
	return out
}

// Trial is the per-trial instrument scope. Instruments are keyed by
// free-form name; the convention in this repository is
// "<variant label>/<subsystem>.<quantity>" (DESIGN.md §8 lists the names in
// use). Get-or-create lookups are mutex-guarded and safe for concurrent
// use; the returned instruments have their own synchronization disciplines
// (see each type). A nil *Trial is the disabled scope.
type Trial struct {
	index int
	wall  bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	series   map[string]*TimeSeries
	spans    []*Span
	spanSeq  int
}

// Index reports the trial index (-1 when disabled).
func (t *Trial) Index() int {
	if t == nil {
		return -1
	}
	return t.index
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil trial.
func (t *Trial) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.counters == nil {
		t.counters = make(map[string]*Counter)
	}
	c, ok := t.counters[name]
	if !ok {
		c = &Counter{name: name}
		t.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil trial.
func (t *Trial) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.gauges == nil {
		t.gauges = make(map[string]*Gauge)
	}
	g, ok := t.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		t.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it with the
// given upper bounds on first use (bounds are ignored on later lookups).
// Returns nil on a nil trial.
func (t *Trial) Histogram(name string, bounds []float64) *Histogram {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.hists == nil {
		t.hists = make(map[string]*Histogram)
	}
	h, ok := t.hists[name]
	if !ok {
		h = newHistogram(name, bounds)
		t.hists[name] = h
	}
	return h
}

// Series returns the named sim-clock time series, creating it on first
// use. Returns nil on a nil trial.
func (t *Trial) Series(name string) *TimeSeries {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.series == nil {
		t.series = make(map[string]*TimeSeries)
	}
	s, ok := t.series[name]
	if !ok {
		s = &TimeSeries{name: name}
		t.series[name] = s
	}
	return s
}

// StartSpan opens a named phase span at the given sim time (ms). The span
// records wall time alongside; whether wall time is emitted is decided by
// the registry. Returns nil on a nil trial; (*Span).End is nil-safe.
func (t *Trial) StartSpan(name string, simNowMS float64) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := newSpan(name, t.spanSeq, simNowMS)
	t.spanSeq++
	t.spans = append(t.spans, s)
	return s
}

// sortedCounters returns the trial's counters ordered by name.
func (t *Trial) sortedCounters() []*Counter {
	out := make([]*Counter, 0, len(t.counters))
	for _, c := range t.counters {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedGauges returns the trial's gauges ordered by name.
func (t *Trial) sortedGauges() []*Gauge {
	out := make([]*Gauge, 0, len(t.gauges))
	for _, g := range t.gauges {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedHistograms returns the trial's histograms ordered by name.
func (t *Trial) sortedHistograms() []*Histogram {
	out := make([]*Histogram, 0, len(t.hists))
	for _, h := range t.hists {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedSeries returns the trial's time series ordered by name.
func (t *Trial) sortedSeries() []*TimeSeries {
	out := make([]*TimeSeries, 0, len(t.series))
	for _, s := range t.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
