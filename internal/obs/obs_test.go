package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrentSum(t *testing.T) {
	c := New(NewManifest("x", 1, 1, 1)).Trial(0).Counter("c")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 50, 1000} {
		h.Observe(v)
	}
	_, counts, n, sum := h.Snapshot()
	want := []uint64{2, 2, 1, 1} // <=1: {0.5,1}; <=10: {1.5,10}; <=100: {50}; over: {1000}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if n != 6 || sum != 1063 {
		t.Fatalf("n=%d sum=%g, want 6, 1063", n, sum)
	}
}

func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	tr := New(NewManifest("x", 1, 1, 1)).Trial(3)
	if tr.Counter("a") != tr.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if tr.Series("s") != tr.Series("s") {
		t.Fatal("Series not idempotent")
	}
	if tr.Index() != 3 {
		t.Fatalf("Index = %d", tr.Index())
	}
}

// TestNilSafety drives every operation through the disabled (nil) state.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.EnableWallClock()
	if r.WallClock() {
		t.Fatal("nil registry reports wall clock")
	}
	tr := r.Trial(0)
	if tr != nil {
		t.Fatal("nil registry produced a trial")
	}
	tr.Counter("c").Add(5)
	tr.Counter("c").Inc()
	if tr.Counter("c").Value() != 0 || tr.Counter("c").Name() != "" {
		t.Fatal("nil counter not inert")
	}
	tr.Gauge("g").Set(1)
	if tr.Gauge("g").Value() != 0 {
		t.Fatal("nil gauge not inert")
	}
	tr.Histogram("h", nil).Observe(1)
	tr.Series("s").Sample(0, 1)
	if tr.Series("s").Len() != 0 {
		t.Fatal("nil series not inert")
	}
	sp := tr.StartSpan("phase", 0)
	sp.End(10)
	if sp.WallMS() != 0 || sp.Name() != "" {
		t.Fatal("nil span not inert")
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteJSONL: err=%v len=%d", err, buf.Len())
	}
	if err := r.WriteCSV(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteCSV: err=%v len=%d", err, buf.Len())
	}
	if r.Snapshot() != nil {
		t.Fatal("nil Snapshot not empty")
	}
}

// TestDisabledPathAllocs pins the disabled-path contract: instrument
// operations through a nil scope perform zero allocations.
func TestDisabledPathAllocs(t *testing.T) {
	var tr *Trial
	c := tr.Counter("c")
	s := tr.Series("s")
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		tr.Gauge("g").Set(1)
		s.Sample(0, 1)
		tr.StartSpan("p", 0).End(0)
	}); n != 0 {
		t.Fatalf("disabled-path ops allocate %v times per op, want 0", n)
	}
}

// TestEnabledCounterAllocs pins the steady-state enabled path: after
// warm-up, counter increments are allocation-free.
func TestEnabledCounterAllocs(t *testing.T) {
	c := New(NewManifest("x", 1, 1, 1)).Trial(0).Counter("c")
	c.Add(1) // warm the shard affinity
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("enabled counter allocates %v times per op, want 0", n)
	}
}

func TestEmitDeterministicAndOrdered(t *testing.T) {
	build := func() *Registry {
		r := New(NewManifest("demo", 7, 2, 0.5))
		// Create instruments out of name order, across trials out of index
		// order, to prove emission sorts.
		t1 := r.Trial(1)
		t1.Counter("zz").Add(3)
		t1.Counter("aa").Add(1)
		t0 := r.Trial(0)
		t0.Gauge("g").Set(2.5)
		t0.Series("s").Sample(0, 1)
		t0.Series("s").Sample(60000, 2)
		t0.Histogram("h", []float64{10, 100}).Observe(42)
		sp := t0.StartSpan("phase", 0)
		sp.End(60000)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two identical registries emitted different JSONL:\n%s\nvs\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	wantPrefix := []string{
		`{"kind":"manifest"`,
		`{"kind":"gauge","trial":0,"name":"g"`,
		`{"kind":"histogram","trial":0,"name":"h"`,
		`{"kind":"sample","trial":0,"name":"s","t_ms":0`,
		`{"kind":"sample","trial":0,"name":"s","t_ms":60000`,
		`{"kind":"span","trial":0,"name":"phase"`,
		`{"kind":"counter","trial":1,"name":"aa"`,
		`{"kind":"counter","trial":1,"name":"zz"`,
	}
	if len(lines) != len(wantPrefix) {
		t.Fatalf("got %d records, want %d:\n%s", len(lines), len(wantPrefix), a.String())
	}
	for i, p := range wantPrefix {
		if !strings.HasPrefix(lines[i], p) {
			t.Fatalf("record %d = %s, want prefix %s", i, lines[i], p)
		}
	}
	// No wall-clock fields unless enabled.
	if strings.Contains(a.String(), "wall_ms") || strings.Contains(a.String(), "unix_time") {
		t.Fatalf("wall-clock fields leaked into deterministic stream:\n%s", a.String())
	}

	var c bytes.Buffer
	if err := build().WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	csvLines := strings.Split(strings.TrimSpace(c.String()), "\n")
	if csvLines[0] != "kind,trial,name,t_ms,value" {
		t.Fatalf("csv header = %s", csvLines[0])
	}
	if len(csvLines) != 1+2+2+1 { // header, 2 samples, 2 counters, 1 gauge
		t.Fatalf("csv rows = %d:\n%s", len(csvLines), c.String())
	}
}

func TestWallClockEmission(t *testing.T) {
	r := New(NewManifest("demo", 1, 1, 1))
	r.EnableWallClock()
	sp := r.Trial(0).StartSpan("work", 0)
	for i := 0; i < 1000; i++ {
		_ = i
	}
	sp.End(5)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"sim_end_ms":5`) {
		t.Fatalf("span sim interval missing:\n%s", buf.String())
	}
	// wall_ms is scheduling-dependent; just confirm the field can appear.
	if sp.WallMS() < 0 {
		t.Fatal("negative wall duration")
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := New(NewManifest("x", 1, 1, 1)).Trial(0).Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterEnabledParallel(b *testing.B) {
	c := New(NewManifest("x", 1, 1, 1)).Trial(0).Counter("c")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}
