package obs

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// The JSONL stream is one record per line. Field order is fixed by the
// struct layouts below; trials are emitted in index order and instruments
// in name order, so the stream is byte-deterministic (see the package
// comment for the full contract). EXPERIMENTS.md ("Metrics streams")
// documents the schema for consumers.

type manifestRecord struct {
	Kind string `json:"kind"`
	Manifest
}

type counterRecord struct {
	Kind  string `json:"kind"`
	Trial int    `json:"trial"`
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

type gaugeRecord struct {
	Kind  string  `json:"kind"`
	Trial int     `json:"trial"`
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type histogramRecord struct {
	Kind   string    `json:"kind"`
	Trial  int       `json:"trial"`
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

type sampleRecord struct {
	Kind  string  `json:"kind"`
	Trial int     `json:"trial"`
	Name  string  `json:"name"`
	TMS   float64 `json:"t_ms"`
	Value float64 `json:"value"`
}

type spanRecord struct {
	Kind       string  `json:"kind"`
	Trial      int     `json:"trial"`
	Name       string  `json:"name"`
	Seq        int     `json:"seq"`
	SimStartMS float64 `json:"sim_start_ms"`
	SimEndMS   float64 `json:"sim_end_ms"`
	WallMS     float64 `json:"wall_ms,omitempty"`
}

// WriteJSONL emits the registry as one JSON record per line: the manifest,
// then per trial (in index order) counters, gauges, histograms, series
// samples, and spans. Nil-safe: a nil registry writes nothing.
func (r *Registry) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline JSONL needs
	if err := enc.Encode(manifestRecord{Kind: "manifest", Manifest: r.manifest}); err != nil {
		return err
	}
	for _, t := range r.sortedTrials() {
		t.mu.Lock()
		for _, c := range t.sortedCounters() {
			if err := enc.Encode(counterRecord{Kind: "counter", Trial: t.index, Name: c.name, Value: c.Value()}); err != nil {
				t.mu.Unlock()
				return err
			}
		}
		for _, g := range t.sortedGauges() {
			if err := enc.Encode(gaugeRecord{Kind: "gauge", Trial: t.index, Name: g.name, Value: g.Value()}); err != nil {
				t.mu.Unlock()
				return err
			}
		}
		for _, h := range t.sortedHistograms() {
			bounds, counts, n, sum := h.Snapshot()
			if err := enc.Encode(histogramRecord{
				Kind: "histogram", Trial: t.index, Name: h.name,
				Bounds: bounds, Counts: counts, Count: n, Sum: sum,
			}); err != nil {
				t.mu.Unlock()
				return err
			}
		}
		for _, s := range t.sortedSeries() {
			for i := range s.t {
				if err := enc.Encode(sampleRecord{Kind: "sample", Trial: t.index, Name: s.name, TMS: s.t[i], Value: s.v[i]}); err != nil {
					t.mu.Unlock()
					return err
				}
			}
		}
		for _, s := range t.spans {
			rec := spanRecord{
				Kind: "span", Trial: t.index, Name: s.name, Seq: s.seq,
				SimStartMS: s.simStartMS, SimEndMS: s.simEndMS,
			}
			if r.wall {
				rec.WallMS = s.WallMS()
			}
			if err := enc.Encode(rec); err != nil {
				t.mu.Unlock()
				return err
			}
		}
		t.mu.Unlock()
	}
	return bw.Flush()
}

// WriteCSV emits the registry's plottable records as one flat CSV table
// with header kind,trial,name,t_ms,value: every series sample (t_ms set),
// then every counter and gauge total (t_ms empty). Histograms and spans
// carry structure CSV flattens poorly; consume those from the JSONL
// stream. Ordering matches WriteJSONL, so the CSV is equally
// deterministic. Nil-safe: a nil registry writes nothing.
func (r *Registry) WriteCSV(w io.Writer) error { return r.writeCSV(w, true) }

// AppendCSV emits the same rows as WriteCSV without the header line, so
// several registries (one per experiment, as in `propsim -exp all`) can
// share one CSV file. Nil-safe.
func (r *Registry) AppendCSV(w io.Writer) error { return r.writeCSV(w, false) }

func (r *Registry) writeCSV(w io.Writer, header bool) error {
	if r == nil {
		return nil
	}
	cw := csv.NewWriter(w)
	if header {
		if err := cw.Write([]string{"kind", "trial", "name", "t_ms", "value"}); err != nil {
			return err
		}
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, t := range r.sortedTrials() {
		t.mu.Lock()
		for _, s := range t.sortedSeries() {
			for i := range s.t {
				if err := cw.Write([]string{"sample", strconv.Itoa(t.index), s.name, ff(s.t[i]), ff(s.v[i])}); err != nil {
					t.mu.Unlock()
					return err
				}
			}
		}
		for _, c := range t.sortedCounters() {
			if err := cw.Write([]string{"counter", strconv.Itoa(t.index), c.name, "", strconv.FormatUint(c.Value(), 10)}); err != nil {
				t.mu.Unlock()
				return err
			}
		}
		for _, g := range t.sortedGauges() {
			if err := cw.Write([]string{"gauge", strconv.Itoa(t.index), g.name, "", ff(g.Value())}); err != nil {
				t.mu.Unlock()
				return err
			}
		}
		t.mu.Unlock()
	}
	cw.Flush()
	return cw.Error()
}

// TrialSnapshot is one trial's instruments flattened for live export
// (expvar); see Registry.Snapshot.
type TrialSnapshot struct {
	Trial    int                `json:"trial"`
	Counters map[string]uint64  `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	Samples  map[string]int     `json:"samples,omitempty"` // series -> point count
	Spans    map[string]string  `json:"spans,omitempty"`   // span -> sim interval
}

// Snapshot returns a coarse, JSON-friendly view of the registry — counter
// and gauge totals, series lengths, span intervals — for the expvar
// endpoint. It is safe to call while a run is in flight; counters then
// show partial totals. Nil-safe.
func (r *Registry) Snapshot() []TrialSnapshot {
	if r == nil {
		return nil
	}
	var out []TrialSnapshot
	for _, t := range r.sortedTrials() {
		t.mu.Lock()
		ts := TrialSnapshot{Trial: t.index}
		if len(t.counters) > 0 {
			ts.Counters = make(map[string]uint64, len(t.counters))
			for name, c := range t.counters {
				ts.Counters[name] = c.Value()
			}
		}
		if len(t.gauges) > 0 {
			ts.Gauges = make(map[string]float64, len(t.gauges))
			for name, g := range t.gauges {
				ts.Gauges[name] = g.Value()
			}
		}
		if len(t.series) > 0 {
			ts.Samples = make(map[string]int, len(t.series))
			for name, s := range t.series {
				ts.Samples[name] = len(s.t)
			}
		}
		if len(t.spans) > 0 {
			ts.Spans = make(map[string]string, len(t.spans))
			for _, s := range t.spans {
				ts.Spans[s.name] = fmt.Sprintf("[%g,%g]ms", s.simStartMS, s.simEndMS)
			}
		}
		t.mu.Unlock()
		out = append(out, ts)
	}
	return out
}
