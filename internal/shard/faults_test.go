package shard

import (
	"bytes"
	"strings"
	"testing"
)

// faultyConfig is the everything-on fault schedule over the tiny world:
// loss, duplication, jitter, link outages, a domain partition, and
// crash-stop churn, all at once.
func faultyConfig(shards int, seed uint64) Config {
	cfg := tinyConfig(shards, seed)
	cfg.Faults = &FaultConfig{
		LossProb:         0.05,
		DupProb:          0.10,
		JitterMS:         5,
		LinkFailProb:     0.02,
		PartitionDomain:  2,
		PartitionStartMS: 3 * 60000,
		PartitionStopMS:  6 * 60000,
		CrashFrac:        0.10,
	}
	return cfg
}

// TestFaultShardCountInvariance is the tentpole contract: with every
// fault knob set — per-message loss, duplication, jitter, link outages,
// a domain partition, and crash-stop churn — the metrics stream and every
// shard-count-invariant tally must still be byte-identical across 1, 2,
// 4, and 8 shards, because fault verdicts are stateless hashes and drops
// are pure functions of the processed event prefix.
func TestFaultShardCountInvariance(t *testing.T) {
	var want []byte
	var wantStats Stats
	for _, shards := range []int{1, 2, 4, 8} {
		got, e := runTiny(t, faultyConfig(shards, 42))
		stats := e.Stats()
		norm := stats
		norm.Shards, norm.CrossShard, norm.Epochs = 0, 0, 0
		if shards == 1 {
			want, wantStats = got, norm
			// The schedule must actually exercise every fault class.
			checks := []struct {
				name string
				v    uint64
			}{
				{"Lost", stats.Lost},
				{"DupsSent", stats.DupsSent},
				{"LinkDownDrops", stats.LinkDownDrops},
				{"PartitionDrops", stats.PartitionDrops},
				{"Crashes", stats.Crashes},
				{"DeadDrops", stats.DeadDrops},
				{"ProbeTimeouts", stats.ProbeTimeouts},
				{"Evictions", stats.Evictions},
				{"Exchanges", stats.Exchanges},
			}
			for _, c := range checks {
				if c.v == 0 {
					t.Errorf("fault class not exercised: %s = 0 (stats %+v)", c.name, stats)
				}
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("shards=%d: faulty metrics stream differs from 1-shard run (%d vs %d bytes)", shards, len(got), len(want))
		}
		if norm != wantStats {
			t.Errorf("shards=%d: stats %+v differ from 1-shard stats %+v", shards, norm, wantStats)
		}
	}
}

// TestFaultZeroKnobsByteIdentical pins the acceptance criterion that an
// attached-but-all-zero schedule changes nothing: the stream must equal
// the nil-schedule stream byte for byte (no timeout timers, no crash
// events, no extra sequence numbers).
func TestFaultZeroKnobsByteIdentical(t *testing.T) {
	plain, pe := runTiny(t, tinyConfig(4, 9))
	zero := tinyConfig(4, 9)
	zero.Faults = &FaultConfig{}
	got, ze := runTiny(t, zero)
	if !bytes.Equal(plain, got) {
		t.Fatal("all-zero fault schedule perturbed the metrics stream")
	}
	if ps, zs := pe.Stats(), ze.Stats(); ps != zs {
		t.Fatalf("all-zero fault schedule perturbed stats: %+v vs %+v", ps, zs)
	}
}

// TestFaultSeedSensitivity: the fault schedule is seed-driven, so a
// different seed must produce a different faulty stream.
func TestFaultSeedSensitivity(t *testing.T) {
	a, _ := runTiny(t, faultyConfig(2, 5))
	b, _ := runTiny(t, faultyConfig(2, 6))
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical faulty streams")
	}
}

// TestJitterRegimes pins both documented jitter regimes: below the
// conservative lookahead floor (90 ms on the tiny world) and far above
// it. Jitter is strictly additive, so in both regimes messages can only
// arrive later than the floor — a long-jittered message simply waits in
// its heap past the current epoch window — and shard-count invariance
// must hold unchanged.
func TestJitterRegimes(t *testing.T) {
	for _, jitter := range []float64{5, 200} {
		var want []byte
		for _, shards := range []int{1, 4} {
			cfg := tinyConfig(shards, 13)
			cfg.Faults = &FaultConfig{JitterMS: jitter}
			got, e := runTiny(t, cfg)
			if shards == 1 {
				want = got
				if st := e.Stats(); st.Exchanges == 0 {
					t.Errorf("jitter=%v: no exchanges committed", jitter)
				}
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("jitter=%v ms: stream differs across shard counts", jitter)
			}
		}
	}
}

// TestCrashStopAccounting checks the churn bookkeeping end to end: every
// scheduled victim crashed, the quiesced alive-peer slot claims are
// injective (Run's invariant check), the measurement plane dropped
// exactly the vacated slots, and the stream carries the crash/churn event
// series.
func TestCrashStopAccounting(t *testing.T) {
	cfg := tinyConfig(4, 21)
	cfg.Faults = &FaultConfig{CrashFrac: 0.2}
	stream, e := runTiny(t, cfg)
	st := e.Stats()
	if st.Crashes == 0 {
		t.Fatal("CrashFrac=0.2 produced no crashes")
	}
	n := e.Peers()
	if st.Crashes > uint64(n/2) {
		t.Fatalf("%d crashes out of %d peers — schedule far off its 20%% rate", st.Crashes, n)
	}
	fs := e.FloodSource()
	alive := fs.AliveSlots()
	if got, want := len(alive), n-int(st.Crashes); got != want {
		t.Fatalf("alive slots = %d, want %d (%d peers - %d crashes)", got, want, n, st.Crashes)
	}
	for _, name := range []string{"crashed", "lost", "timeouts", "evictions"} {
		if !strings.Contains(string(stream), "prop_"+name) {
			t.Errorf("churn stream missing series %q", "prop_"+name)
		}
	}
	// Fault-free streams must NOT carry the churn series.
	plain, _ := runTiny(t, tinyConfig(4, 21))
	if strings.Contains(string(plain), "prop_crashed") {
		t.Error("fault-free stream grew a crashed series")
	}
}

// TestCommitAbortUnderLossAndChurn drives the two-phase swap through its
// hostile paths — proposals and rejections dropped, counterparts crashing
// mid-commit — and relies on Run's invariant check for the safety half:
// alive slot claims stay injective and no peer quiesces locked. The
// tallies confirm the abort paths actually fired.
func TestCommitAbortUnderLossAndChurn(t *testing.T) {
	cfg := tinyConfig(4, 31)
	cfg.Faults = &FaultConfig{LossProb: 0.20, CrashFrac: 0.15}
	_, e := runTiny(t, cfg)
	st := e.Stats()
	if st.CommitTimeouts == 0 {
		t.Errorf("20%% loss produced no commit aborts: %+v", st)
	}
	if st.ProbeTimeouts == 0 {
		t.Errorf("20%% loss produced no probe timeouts: %+v", st)
	}
	if st.Exchanges == 0 {
		t.Errorf("optimization died entirely under faults: %+v", st)
	}
}

// TestFaultConfigValidation covers the schedule rejection paths.
func TestFaultConfigValidation(t *testing.T) {
	bad := []FaultConfig{
		{LossProb: 1.5},
		{DupProb: -0.1},
		{JitterMS: -1},
		{LinkFailProb: 2},
		{LinkFailPeriodMS: -5},
		{CrashFrac: 1.01},
		{PartitionStartMS: 10, PartitionStopMS: 5},
		{PartitionStartMS: 0, PartitionStopMS: 5, PartitionDomain: 99},
		{CrashStartMS: 10, CrashStopMS: 5},
	}
	for i, fc := range bad {
		cfg := tinyConfig(2, 1)
		f := fc
		cfg.Faults = &f
		if _, err := New(cfg); err == nil {
			t.Errorf("fault config %d accepted: %+v", i, fc)
		}
	}
}
