package shard

import (
	"math"
	"sync"
)

// floodSource adapts the engine's struct-of-arrays state to the
// metrics.FloodSource seam: slots are the logical vertices, edge weight
// between adjacent slots is the landmark-estimated latency between their
// current occupants, and FloodInto is a Dijkstra over the logical CSR.
// The occupancy snapshot (peerAt) is rebuilt by refresh at each sample
// barrier, so rows computed in parallel by the estimator all read one
// consistent frozen placement.
type floodSource struct {
	e      *Engine
	alive  []int
	peerAt []int32 // slot → occupying peer, frozen at the last refresh
	pool   sync.Pool
}

// flItem is one lazy-deletion Dijkstra heap entry.
type flItem struct {
	d float64
	s int32
}

// flHeap is the pooled Dijkstra scratch: a 4-ary min-heap with lazy
// deletion (stale entries are skipped on pop against the dist array).
type flHeap struct {
	a []flItem
}

func (h *flHeap) push(it flItem) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if h.a[i].d >= h.a[p].d {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *flHeap) pop() flItem {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		first := i<<2 + 1
		if first >= last {
			break
		}
		best := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if h.a[c].d < h.a[best].d {
				best = c
			}
		}
		if h.a[best].d >= h.a[i].d {
			break
		}
		h.a[i], h.a[best] = h.a[best], h.a[i]
		i = best
	}
	return top
}

// newFloodSource builds the measurement plane over e. The initial snapshot
// is the (conflict-free) starting placement.
func newFloodSource(e *Engine) *floodSource {
	f := &floodSource{
		e:      e,
		alive:  make([]int, e.n),
		peerAt: make([]int32, e.n),
	}
	for i := range f.alive {
		f.alive[i] = i
	}
	f.pool.New = func() any { return &flHeap{} }
	f.refresh()
	return f
}

// refresh rebuilds the slot→peer snapshot from slotOf and returns the
// number of conflicts it resolved. Mid-flight swaps can leave a slot
// double-claimed at a barrier (the acceptor moved, the proposer's
// acknowledgment still in transit); resolution is deterministic and
// shard-count independent: ascending peers claim their slot first-wins,
// then displaced peers (ascending) fill the unclaimed slots (ascending).
// Under churn, dead peers claim nothing — their slots stay vacant (-1)
// and the alive-slot list shrinks with them.
func (f *floodSource) refresh() (conflicts int) {
	e := f.e
	for s := range f.peerAt {
		f.peerAt[s] = -1
	}
	var displaced []int32
	for p := 0; p < e.n; p++ {
		if e.faultsOn && e.dead[p] {
			continue
		}
		s := e.slotOf[p]
		if f.peerAt[s] < 0 {
			f.peerAt[s] = int32(p)
		} else {
			displaced = append(displaced, int32(p))
		}
	}
	next := 0
	for s := 0; s < e.n && next < len(displaced); s++ {
		if f.peerAt[s] < 0 {
			f.peerAt[s] = displaced[next]
			next++
		}
	}
	if e.faultsOn {
		f.alive = f.alive[:0]
		for s := 0; s < e.n; s++ {
			if f.peerAt[s] >= 0 {
				f.alive = append(f.alive, s)
			}
		}
	}
	return len(displaced)
}

// NumSlots reports the slot-index space size (one slot per peer).
func (f *floodSource) NumSlots() int { return f.e.n }

// AliveSlots returns the occupied slots, ascending. Fault-free that is
// every slot (the logical overlay is static and fully occupied); under
// crash-stop churn, slots whose occupant died are vacant and excluded.
func (f *floodSource) AliveSlots() []int { return f.alive }

// FloodInto runs Dijkstra from src over the logical overlay under the
// frozen occupancy snapshot; vacant slots (crashed occupants) do not
// relay, so rows may contain +Inf for slots cut off by churn. Safe for
// concurrent calls with distinct dist buffers (scratch heaps come from a
// pool); the snapshot itself must be quiescent, which the sample barrier
// guarantees.
func (f *floodSource) FloodInto(src int, dist []float64) {
	e := f.e
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	h := f.pool.Get().(*flHeap)
	h.a = h.a[:0]
	dist[src] = 0
	h.push(flItem{d: 0, s: int32(src)})
	for len(h.a) > 0 {
		it := h.pop()
		if it.d > dist[it.s] {
			continue
		}
		p := f.peerAt[it.s]
		for _, t := range e.nbrs(it.s) {
			q := f.peerAt[t]
			if q < 0 {
				continue
			}
			d := it.d + e.estLat(p, q)
			if d < dist[t] {
				dist[t] = d
				h.push(flItem{d: d, s: t})
			}
		}
	}
	f.pool.Put(h)
}
