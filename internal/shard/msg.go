package shard

// The event currency of the sharded engine. The sequential engine
// (internal/event) stores closures; at 10⁶ peers and ~10⁷–10⁸ events a
// closure per event is pure allocator pressure, so shards trade generality
// for a fixed-size typed message: every protocol step is one msg value in
// a per-shard 4-ary heap, and payloads (occupant rows) are inline arrays.

// kind discriminates the protocol messages of the sharded PROP-G variant.
type kind uint8

const (
	// kProbe is a peer's self-timer starting one probe cycle.
	kProbe kind = iota
	// kWalk forwards a random walk; a holds the probing peer, hops the
	// remaining length.
	kWalk
	// kReport is the walk endpoint reporting itself to the probing peer:
	// a = its slot, b = its swap version, row = its occupant cache.
	kReport
	// kCommit proposes a slot swap to the reported peer: a = the proposer's
	// slot, b = the version the proposal is conditioned on, row = the
	// proposer's occupant cache (the partner's new cache, pre-remap).
	kCommit
	// kCommitOK accepts a swap: a = the acceptor's old slot (the proposer's
	// new one), row = the proposer's new occupant cache (already remapped).
	kCommitOK
	// kReject refuses a proposal (version moved or acceptor locked).
	kReject
	// kNotify updates one believed occupant: slot a is now held by the
	// sending peer.
	kNotify
	// kCrash is a self-timer killing the peer (crash-stop churn): the peer
	// flips dead, drops every later arrival, and never recovers. Scheduled
	// at Run start from the stateless crash schedule; only exists when
	// faults are enabled.
	kCrash
	// kProbeTO is the probe-cycle timeout self-timer: if the peer is still
	// awaiting a walk report for the cycle identified by c, the cycle is
	// abandoned and the first-hop neighbor accrues a liveness strike. Only
	// scheduled when faults are enabled.
	kProbeTO
	// kCommitTO is the two-phase-swap timeout self-timer: if the peer is
	// still locked awaiting the acknowledgment of the proposal identified
	// by c, the swap is aborted (nothing moved — see handleCommitTO for
	// why the abort is safe). Only scheduled when faults are enabled.
	kCommitTO
)

// msg is one event. origin/oseq form — with the arrival time — the total
// ordering key: origin is the peer that sent the message (or owns the
// timer) and oseq its per-peer send counter, so keys are unique and the
// pop order of any one peer's events is independent of both goroutine
// scheduling and the shard partition (see the package comment).
//
// c carries the sender's probe-cycle counter (Engine.txn): under faults a
// reply can straggle in after its cycle timed out and a new one started,
// so every cycle-scoped message echoes the counter and handlers discard
// mismatches. Fault-free runs never time out, the guard never fires, and
// the schedule is unchanged.
type msg struct {
	at     float64
	origin int32
	oseq   uint32
	from   int32
	to     int32
	a, b   int32
	c      int32
	kind   kind
	hops   uint8
	rlen   uint8
	row    [maxDeg]int32
}

// msgLess orders messages by (arrival, origin, per-origin sequence). Keys
// are unique: a peer never reuses a sequence number.
func msgLess(x, y *msg) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	if x.origin != y.origin {
		return x.origin < y.origin
	}
	return x.oseq < y.oseq
}

// msgHeap is a 4-ary min-heap of messages ordered by msgLess. 4-ary wins
// over binary here for the same reason as the Dijkstra kernels (DESIGN.md
// §7): shallower trees mean fewer cache-missing levels per operation, and
// pops dominate pushes in an event loop.
type msgHeap struct {
	a []msg
}

func (h *msgHeap) len() int { return len(h.a) }

// min returns the smallest message without removing it. Callers must check
// len first.
func (h *msgHeap) min() *msg { return &h.a[0] }

func (h *msgHeap) push(m msg) {
	h.a = append(h.a, m)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !msgLess(&h.a[i], &h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *msgHeap) pop() msg {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		first := i<<2 + 1
		if first >= last {
			break
		}
		best := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if msgLess(&h.a[c], &h.a[best]) {
				best = c
			}
		}
		if !msgLess(&h.a[best], &h.a[i]) {
			break
		}
		h.a[i], h.a[best] = h.a[best], h.a[i]
		i = best
	}
	return top
}
