// Package shard is the domain-sharded million-node simulator (DESIGN.md
// §12, SCALING.md): a parallel discrete-event engine that partitions the
// peer population by transit domain, runs one event heap per shard, and
// synchronizes shards with conservative-lookahead epochs, so PROP-G-style
// topology optimization can be simulated at 10⁵–10⁶ peers on one machine.
//
// The design rests on three load-bearing choices:
//
//   - Conservative lookahead from the physical topology. Any two peers in
//     different transit domains are at least Config.CrossDomainFloorMS
//     apart (one stub-transit uplink on each side plus one backbone link),
//     so a message between shards can never arrive sooner than that floor.
//     Epoch windows never exceed it; cross-shard messages are exchanged
//     through per-shard mailboxes only at the epoch barrier, which is early
//     enough — every such message's arrival time lies at or beyond the next
//     window. No shard ever receives an event "in its past".
//
//   - Struct-of-arrays hot state keyed by int32 ids. Per-peer protocol
//     state lives in flat parallel arrays (slot assignment, swap version,
//     probe state, RNG and send counters, occupant caches), not in
//     per-node structs with pointers: at 10⁶ peers the working set stays
//     ~100 B/peer and scans stay cache-linear. Handlers only write state
//     belonging to the addressed peer, which is what makes the parallel
//     window processing race-free (peers never change shards).
//
//   - A deterministic total event order. Every message carries the key
//     (arrival time, origin peer, per-origin sequence number); heaps pop by
//     that key, peers draw randomness from a stateless counter-keyed
//     generator, and samples reduce per-shard tallies in fixed order. The
//     execution each peer observes is therefore a pure function of the
//     seed — independent not only of goroutine scheduling but of the shard
//     count itself: the same seed produces byte-identical metrics streams
//     for 1, 2, 4, … shards (pinned by TestShardCountInvariance). The
//     determinism contract of DESIGN.md §12 only promises "same seed +
//     same shard count"; the engine delivers the stronger property and the
//     contract keeps the slack for future optimizations that may need it.
//
// Latency plane: at this scale the engine cannot afford Dijkstra-backed
// point queries per message, so it measures with landmark coordinates —
// one landmark per transit domain, each peer's vector of shortest-path
// distances to all landmarks, computed once at construction and projected
// to float32 (rounded up, so estimates never undercut the true distance or
// the lookahead floor). estLat(p,q) = min over landmarks of c[l][p]+c[l][q]
// is a triangle-inequality upper bound used for message delays, swap-gain
// evaluation, and the sampled average-latency plane. Average latency is
// estimated by metrics.ALEstimator over the engine's FloodSource; at small
// n Config.ExactAL adds the exact reference and the estimate's error to
// the stream.
//
// Entry points: New builds the world (physical network, coordinates,
// logical overlay, initial random placement); Engine.Run executes the
// epoch loop and samples into an obs.Trial; Engine.FloodSource exposes the
// quiesced overlay to the metrics layer. The fig5a-scale experiment
// (internal/experiment) is the packaged sweep.
package shard

import (
	"fmt"

	"repro/internal/netsim"
)

// Default experiment time structure: lighter than the fig5 panels (30 sim
// minutes) because a 10⁶-peer rung must fit CI; ten minutes of one-minute
// probe cycles is enough for the AL trend to show.
const (
	defaultHorizonMS     = 10 * 60000
	defaultSampleMS      = 2 * 60000
	defaultProbeMS       = 60000
	defaultWalkHops      = 3
	defaultMinGainMS     = 1.0
	defaultChordsPerPeer = 1
)

// maxDeg caps the logical degree of every slot so occupant caches and
// message payloads are fixed-size arrays ([maxDeg]int32) instead of heap
// allocations. Ring (2) + one initiated chord + accepted chords ≤ maxDeg.
const maxDeg = 8

// Config parameterizes one sharded run. The zero value of every field has
// a usable default except Peers (or Net), which sizes the world.
type Config struct {
	// Peers is the requested peer count; the world is netsim.ScaleTS(Peers)
	// and every stub host carries one peer, so the actual population
	// (Engine.Peers) rounds up to whole stub domains. Ignored when Net is
	// set.
	Peers int
	// Shards is the number of parallel engines; peers are assigned by
	// transit domain (domain mod Shards), so it must lie in [1,
	// TransitDomains]. 0 means one engine per transit domain.
	Shards int
	// Seed drives everything: world generation, initial placement, every
	// protocol draw, and the AL-estimator's source sampling.
	Seed uint64
	// HorizonMS is the optimization horizon: probes stop firing at this
	// simulated time and the run drains in-flight work. 0 means the
	// 10-minute default.
	HorizonMS float64
	// SampleEveryMS is the sampling period of the metrics stream. 0 means
	// the 2-minute default.
	SampleEveryMS float64
	// ProbeIntervalMS is the mean peer probe period (jittered ±25% per
	// cycle). 0 means the 1-minute default.
	ProbeIntervalMS float64
	// WalkHops is the random-walk length of each probe (the paper's nhop).
	// 0 means 3.
	WalkHops int
	// MinGainMS is the estimated total-latency improvement a swap must
	// clear to commit (the engine's analogue of the paper's MIN_VAR gate).
	// 0 means 1 ms.
	MinGainMS float64
	// ALSources is the ALEstimator sketch width per sample; 0 means the
	// estimator's default (16).
	ALSources int
	// ExactAL additionally computes the exact eq. (3) reference and the
	// estimator's relative error at every sample. O(n·Dijkstra) per sample
	// — only sane at the small rungs (n ≤ ~4096).
	ExactAL bool
	// Faults is the fault/churn schedule. nil — or a schedule with every
	// knob zero — is the fault-free fast path: no timeout timers, no crash
	// events, no fate draws, and a message schedule byte-identical to the
	// engine without fault support.
	Faults *FaultConfig
	// Net overrides the physical preset (tests use tiny worlds); nil means
	// netsim.ScaleTS(Peers).
	Net *netsim.Config
}

// FaultConfig is the sharded engine's fault and churn schedule, the PR 4
// fault model (internal/faults) restated for the shard tier. Every verdict
// it induces is a stateless hash of (seed, link or peer, sequence or time
// window) in the style of faults.DeliverStateless, so any shard can
// evaluate any message's fate with no shared mutable state — the property
// that keeps metrics streams byte-identical across shard counts even with
// faults enabled.
type FaultConfig struct {
	// LossProb is the i.i.d. per-message drop probability. The two-phase
	// swap acknowledgment (kCommitOK) is exempt — see the reliable-ack
	// note in sim.go.
	LossProb float64
	// DupProb is the probability a delivered message arrives twice; the
	// duplicate takes a fresh sequence number and its own jitter draw.
	DupProb float64
	// JitterMS is the maximum extra one-way delay, drawn uniformly from
	// [0, JitterMS) per message. Jitter is strictly additive, so it can
	// never undercut the conservative lookahead floor; a jittered message
	// whose arrival lands past the current epoch window simply waits in
	// its heap and is processed in a later window (both regimes — jitter
	// below the floor and far above it — are pinned by tests).
	JitterMS float64
	// LinkFailProb is the probability that a given overlay link is down
	// for a given outage window; LinkFailPeriodMS is the window length
	// (0 means faults.DefaultLinkFailPeriodMS). Outage state is a pure
	// hash of (seed, link, window), symmetric in the link.
	LinkFailProb     float64
	LinkFailPeriodMS float64
	// PartitionDomain isolates one transit domain during [PartitionStartMS,
	// PartitionStopMS): every message between a peer inside the domain and
	// one outside is dropped. No partition when the window is empty.
	PartitionDomain                   int
	PartitionStartMS, PartitionStopMS float64
	// CrashFrac is the fraction of peers that crash-stop (dead forever,
	// dropping all traffic) at a stateless per-peer hash time inside
	// [CrashStartMS, CrashStopMS). Both zero means the middle third of the
	// horizon.
	CrashFrac                 float64
	CrashStartMS, CrashStopMS float64
}

// enabled reports whether any fault knob is set; a nil or all-zero
// schedule keeps the engine on its historical fault-free path.
func (f *FaultConfig) enabled() bool {
	if f == nil {
		return false
	}
	return f.LossProb > 0 || f.DupProb > 0 || f.JitterMS > 0 ||
		f.LinkFailProb > 0 || f.PartitionStopMS > f.PartitionStartMS ||
		f.CrashFrac > 0
}

// validate checks the schedule against the resolved physical preset.
func (f *FaultConfig) validate(net netsim.Config) error {
	inUnit := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("shard: %s = %v out of [0,1]", name, v)
		}
		return nil
	}
	if err := inUnit("Faults.LossProb", f.LossProb); err != nil {
		return err
	}
	if err := inUnit("Faults.DupProb", f.DupProb); err != nil {
		return err
	}
	if err := inUnit("Faults.LinkFailProb", f.LinkFailProb); err != nil {
		return err
	}
	if err := inUnit("Faults.CrashFrac", f.CrashFrac); err != nil {
		return err
	}
	switch {
	case f.JitterMS < 0:
		return fmt.Errorf("shard: Faults.JitterMS = %v, want >= 0", f.JitterMS)
	case f.LinkFailPeriodMS < 0:
		return fmt.Errorf("shard: Faults.LinkFailPeriodMS = %v, want >= 0", f.LinkFailPeriodMS)
	case f.PartitionStopMS < f.PartitionStartMS:
		return fmt.Errorf("shard: partition window [%v,%v) inverted", f.PartitionStartMS, f.PartitionStopMS)
	case f.PartitionStopMS > f.PartitionStartMS && (f.PartitionDomain < 0 || f.PartitionDomain >= net.TransitDomains):
		return fmt.Errorf("shard: Faults.PartitionDomain = %d, want 0..%d", f.PartitionDomain, net.TransitDomains-1)
	case f.CrashStopMS < f.CrashStartMS:
		return fmt.Errorf("shard: crash window [%v,%v) inverted", f.CrashStartMS, f.CrashStopMS)
	}
	return nil
}

// withDefaults returns cfg with zero fields filled in.
func (c Config) withDefaults() Config {
	if c.HorizonMS == 0 {
		c.HorizonMS = defaultHorizonMS
	}
	if c.SampleEveryMS == 0 {
		c.SampleEveryMS = defaultSampleMS
	}
	if c.ProbeIntervalMS == 0 {
		c.ProbeIntervalMS = defaultProbeMS
	}
	if c.WalkHops == 0 {
		c.WalkHops = defaultWalkHops
	}
	if c.MinGainMS == 0 {
		c.MinGainMS = defaultMinGainMS
	}
	return c
}

// validate checks cfg against the resolved physical preset.
func (c Config) validate(net netsim.Config) error {
	switch {
	case c.Shards < 1 || c.Shards > net.TransitDomains:
		return fmt.Errorf("shard: Shards = %d, want 1..%d (one per transit domain at most)", c.Shards, net.TransitDomains)
	case c.WalkHops < 1:
		return fmt.Errorf("shard: WalkHops = %d, want >= 1", c.WalkHops)
	case c.HorizonMS < 0 || c.SampleEveryMS <= 0 || c.ProbeIntervalMS <= 0:
		return fmt.Errorf("shard: non-positive time parameters (horizon %v, sample %v, probe %v)",
			c.HorizonMS, c.SampleEveryMS, c.ProbeIntervalMS)
	case c.MinGainMS < 0:
		return fmt.Errorf("shard: MinGainMS = %v, want >= 0", c.MinGainMS)
	case c.ALSources < 0:
		return fmt.Errorf("shard: ALSources = %d, want >= 0", c.ALSources)
	case net.TotalStubHosts() < 8:
		return fmt.Errorf("shard: %d peers, want >= 8", net.TotalStubHosts())
	}
	if c.Faults != nil {
		return c.Faults.validate(net)
	}
	return nil
}

// Stats summarizes one completed run. All message counters are totals over
// the whole population, so every field except CrossShard and Epochs is
// invariant across shard counts; CrossShard (messages that crossed an
// engine boundary) necessarily depends on the partition and is therefore
// reported here and in Result notes, never in the metrics stream.
type Stats struct {
	// Peers is the simulated population; Shards the engine count.
	Peers, Shards int
	// LookaheadMS is the conservative epoch bound derived from the physical
	// preset (Config.CrossDomainFloorMS).
	LookaheadMS float64
	// Epochs is the number of processed epoch windows, including the drain
	// tail past the horizon.
	Epochs uint64
	// Probes counts probe-timer firings; Walks random-walk messages;
	// Reports walk-end reports; Commits swap proposals sent after a
	// positive gain evaluation; Exchanges committed slot swaps.
	Probes, Walks, Reports, Commits, Exchanges uint64
	// GainRejected counts probe cycles abandoned because the estimated gain
	// did not clear MinGainMS; VerRejected counts commit proposals refused
	// by the partner (version moved or partner locked).
	GainRejected, VerRejected uint64
	// Notifies counts occupant-update messages sent after an exchange.
	Notifies uint64
	// CrossShard counts messages routed through an inter-shard mailbox.
	// Shard-count dependent by construction.
	CrossShard uint64
	// SnapshotConflicts counts transient double-claimed slots resolved
	// deterministically while building sample-time snapshots (a swap's
	// commit seen but its acknowledgment still in flight).
	SnapshotConflicts uint64

	// Fault/churn tallies, all zero on the fault-free path and — like the
	// protocol counters — invariant across shard counts, because every
	// fate is a stateless hash and every drop a pure function of the
	// processed event prefix. Integer counters only: float tallies would
	// pick up shard-partition-dependent summation order.

	// Lost counts i.i.d. per-message drops; DupsSent duplicated
	// deliveries; LinkDownDrops transient-outage drops; PartitionDrops
	// drops across the domain-partition cut.
	Lost, DupsSent, LinkDownDrops, PartitionDrops uint64
	// Crashes counts crash-stop events; DeadDrops messages (and stale
	// self-timers) discarded because the addressee was dead.
	Crashes, DeadDrops uint64
	// ProbeTimeouts counts abandoned probe cycles; CommitTimeouts aborted
	// two-phase swaps (version-guarded — see handleCommitTO); StaleGuards
	// cycle-scoped replies discarded by the txn guard.
	ProbeTimeouts, CommitTimeouts, StaleGuards uint64
	// Evictions counts believed-occupant entries evicted after repeated
	// probe timeouts through them; NoNeighbor probe cycles skipped because
	// every cache entry was evicted.
	Evictions, NoNeighbor uint64
}

// messages returns the total protocol message count (excluding self
// timers), the quantity sampled as the "messages" series.
func (s Stats) messages() uint64 {
	return s.Walks + s.Reports + s.Commits + s.Exchanges + s.VerRejected + s.Notifies
}
