package shard

import (
	"fmt"

	"repro/internal/faults"
)

// The protocol handlers: a message-passing PROP-G adapted to the sharded
// engine. One probe cycle is
//
//	kProbe → kWalk×(nhop) → kReport → [kCommit → (kCommitOK | kReject)] → kNotify×deg
//
// with the swap-gain evaluation done on landmark-estimated latencies and
// the two-phase commit guarded by per-peer swap versions, so concurrent
// probes over the same slots never tear the slot↔peer bijection. Handlers
// obey one discipline that everything else rests on: they read and write
// ONLY the addressed peer's state (plus immutable world data and message
// payloads). That is what makes parallel shard execution race-free and the
// event stream shard-count invariant.
//
// Fault model (Config.Faults, DESIGN.md §9/§12). Every message's fate —
// lost, duplicated, jittered, dropped by a link outage or the domain
// partition — is decided at SEND time in the sender's shard, as a pure
// function of (seed, directed link, the message's own sequence number, and
// the send time): faults.DeliverStateless for the per-message draws, a
// (seed, link, window) hash for outages, and the domainOfPeer array for
// the partition cut. No shared mutable state, no draw-order dependence —
// which is why the byte-identical-across-shard-counts contract survives
// fault injection untouched. Crash-stop churn is the one receiver-side
// fault: a dead peer silently drops every arrival, and deadness at any
// arrival time is itself a pure function of the processed event prefix.
//
// Reliable-ack abstraction: kCommitOK is exempt from loss, duplication,
// outages and the partition (jitter still applies). The acceptor moves
// onto the proposer's slot the moment it accepts, so losing the
// acknowledgment would strand a half-executed swap with both peers alive —
// the classic two-generals gap. Exempting the final ack models the
// bounded-retransmit reliability a real implementation gives that one
// message; every other message may drop freely, because a proposer
// timeout then aborts a swap nothing has executed yet (see handleCommitTO
// for the full safety argument).

// send assigns m's ordering key from the sending peer, decides its fate
// under the fault schedule, and delivers it: same-shard messages go
// straight into the local heap, cross-shard ones into the outbox drained
// at the next epoch barrier. A lost message still consumes the sender's
// sequence number, so losses never perturb the ordering keys of later
// traffic.
func (e *Engine) send(sh *shardRun, now float64, m msg) {
	m.origin = m.from
	m.oseq = e.oseq[m.from]
	e.oseq[m.from]++
	d := e.estLat(m.from, m.to)
	m.at = now + d
	if e.faultsOn && !e.inject(sh, now, d, &m) {
		return
	}
	e.post(sh, d, m)
}

// post routes a stamped message to its destination heap or outbox.
// Cross-shard delivery asserts the lookahead bound on the raw physical
// delay d — by construction (estLat is an upper bound on a cross-domain
// distance, and jitter is strictly additive on top of d) the panic is
// unreachable.
func (e *Engine) post(sh *shardRun, d float64, m msg) {
	dst := e.shardOfPeer[m.to]
	if dst == sh.id {
		sh.heap.push(m)
		return
	}
	if d < e.lookahead {
		panic(fmt.Sprintf("shard: cross-shard delay %v below lookahead %v (peers %d→%d)", d, e.lookahead, m.from, m.to))
	}
	sh.out[dst] = append(sh.out[dst], m)
	sh.stats.CrossShard++
}

// inject applies the fault schedule to one stamped message and reports
// whether it is delivered. On duplication the copy is posted here with a
// fresh sequence number and an independent jitter draw (it may even
// overtake the original); the handlers' pstate/txn guards make duplicates
// harmless.
func (e *Engine) inject(sh *shardRun, now, d float64, m *msg) bool {
	if m.kind == kCommitOK {
		// Reliable-ack abstraction (see the package comment above):
		// jitter only, never lost, never duplicated.
		m.at += e.inj.JitterStateless(int(m.from), int(m.to), uint64(m.oseq))
		return true
	}
	if e.partitioned(m.from, m.to, now) {
		sh.stats.PartitionDrops++
		return false
	}
	del := e.inj.DeliverStateless(int(m.from), int(m.to), uint64(m.oseq), now)
	if del.Lost {
		if del.Reason == faults.ReasonLinkDown {
			sh.stats.LinkDownDrops++
		} else {
			sh.stats.Lost++
		}
		return false
	}
	m.at += del.DelayMS
	if del.Dup {
		cp := *m
		cp.oseq = e.oseq[m.from]
		e.oseq[m.from]++
		cp.at = now + d + e.inj.JitterStateless(int(m.from), int(m.to), uint64(cp.oseq))
		sh.stats.DupsSent++
		e.post(sh, d, cp)
	}
	return true
}

// schedule enqueues a self-timer for peer p at an absolute time. Timers
// never cross shards.
func (e *Engine) schedule(sh *shardRun, p int32, at float64, k kind) {
	m := msg{at: at, origin: p, oseq: e.oseq[p], from: p, to: p, kind: k}
	e.oseq[p]++
	sh.heap.push(m)
}

// scheduleTO enqueues a timeout self-timer carrying the probe-cycle
// counter it guards. Only called when faults are enabled.
func (e *Engine) scheduleTO(sh *shardRun, p int32, at float64, k kind, cyc int32) {
	m := msg{at: at, origin: p, oseq: e.oseq[p], from: p, to: p, kind: k, c: cyc}
	e.oseq[p]++
	sh.heap.push(m)
}

// handle dispatches one event. Under churn, a dead addressee silently
// drops everything except its own crash event — the receiver-side half of
// the crash-stop model.
func (e *Engine) handle(sh *shardRun, m *msg) {
	if e.faultsOn && e.dead[m.to] && m.kind != kCrash {
		sh.stats.DeadDrops++
		return
	}
	switch m.kind {
	case kProbe:
		e.handleProbe(sh, m)
	case kWalk:
		e.handleWalk(sh, m)
	case kReport:
		e.handleReport(sh, m)
	case kCommit:
		e.handleCommit(sh, m)
	case kCommitOK:
		e.handleCommitOK(sh, m)
	case kReject:
		e.handleReject(sh, m)
	case kNotify:
		e.handleNotify(sh, m)
	case kCrash:
		e.handleCrash(sh, m)
	case kProbeTO:
		e.handleProbeTO(sh, m)
	case kCommitTO:
		e.handleCommitTO(sh, m)
	}
}

// handleReject unlocks a proposer whose proposal was refused — but only
// on the fault-free path, where the single rejection is authoritative.
// Under faults a rejection is ADVISORY and ignored: a duplicated proposal
// can be simultaneously accepted (the first copy moves the acceptor and
// sends the ack) and version-refused (every later copy), and jitter can
// deliver the refusal before the acknowledgment — unlocking on it would
// strand the half-executed swap. The proposer instead holds its lock
// until the acknowledgment (exempt from drops, always first when the
// swap executed) or the commit timeout, the one abort path whose safety
// is proved (see handleCommitTO).
func (e *Engine) handleReject(sh *shardRun, m *msg) {
	if e.faultsOn {
		return // advisory; VerRejected was counted at the refusing peer
	}
	e.pstate[m.to] = 0
}

// pickNeighbor draws one believed-occupant entry of peer w's current slot
// s, skipping entries evicted for deadness (-1). Fault-free no entry is
// ever evicted, the modulus equals the degree, and the selection is
// bit-identical to the historical draw%deg. ok is false when every entry
// is evicted (the peer is overlay-isolated until a kNotify revives one).
func (e *Engine) pickNeighbor(w int32, s int32) (j int, target int32, ok bool) {
	d := e.deg(s)
	row := e.occRow[int(w)*maxDeg : int(w)*maxDeg+d]
	valid := 0
	for _, q := range row {
		if q >= 0 {
			valid++
		}
	}
	if valid == 0 {
		return 0, 0, false
	}
	k := int(e.draw(w) % uint64(valid))
	for i, q := range row {
		if q < 0 {
			continue
		}
		if k == 0 {
			return i, q, true
		}
		k--
	}
	panic("shard: pickNeighbor ran past its row")
}

// handleProbe starts one probe cycle: reschedule the timer (jittered ±25%,
// only while before the horizon) and, if the peer is idle, launch a random
// walk to find a swap candidate. A busy peer (mid-probe or mid-commit)
// skips the cycle rather than queueing. Under faults the cycle gets a
// fresh txn counter (stamped into every cycle-scoped message) and a
// timeout covering the walk plus the report leg.
func (e *Engine) handleProbe(sh *shardRun, m *msg) {
	u := m.to
	sh.stats.Probes++
	next := m.at + e.cfg.ProbeIntervalMS*(0.75+0.5*u01(e.draw(u)))
	if next < e.cfg.HorizonMS {
		e.schedule(sh, u, next, kProbe)
	}
	if e.pstate[u] != 0 {
		return
	}
	su := e.slotOf[u]
	j, target, ok := e.pickNeighbor(u, su)
	if !ok {
		sh.stats.NoNeighbor++
		return
	}
	e.pstate[u] = 1
	var cyc int32
	if e.faultsOn {
		e.txn[u]++
		cyc = int32(e.txn[u])
		e.probeNbr[u] = uint8(j)
	}
	sh.stats.Walks++
	e.send(sh, m.at, msg{from: u, to: target, kind: kWalk, a: u, c: cyc, hops: uint8(e.cfg.WalkHops - 1)})
	if e.faultsOn {
		e.scheduleTO(sh, u, m.at+e.probeTO, kProbeTO, cyc)
	}
}

// handleWalk forwards the walk through believed occupants; at the last hop
// the endpoint reports itself (slot, version, occupant cache) to the
// probing peer, echoing the probing peer's cycle counter.
func (e *Engine) handleWalk(sh *shardRun, m *msg) {
	w := m.to
	origin := m.a
	if m.hops == 0 {
		sw := e.slotOf[w]
		rep := msg{from: w, to: origin, kind: kReport, a: sw, b: int32(e.ver[w]), c: m.c}
		rep.rlen = uint8(e.deg(sw))
		copy(rep.row[:], e.occRow[int(w)*maxDeg:int(w)*maxDeg+int(rep.rlen)])
		sh.stats.Reports++
		e.send(sh, m.at, rep)
		return
	}
	sw := e.slotOf[w]
	_, target, ok := e.pickNeighbor(w, sw)
	if !ok {
		// Walk dead-ends on a fully-evicted cache; the probing peer's
		// timeout will close the cycle.
		sh.stats.NoNeighbor++
		return
	}
	sh.stats.Walks++
	e.send(sh, m.at, msg{from: w, to: target, kind: kWalk, a: origin, c: m.c, hops: m.hops - 1})
}

// swapCost sums the estimated latency from peer p (sitting on slot s) to
// the believed occupants row of s's neighbors; entries whose slot equals
// swapSlot are remapped to swapPeer, which is how the post-swap
// configuration is evaluated without mutating anything. Evicted entries
// (-1, faults only) contribute nothing on either side of the comparison.
func (e *Engine) swapCost(p, s int32, row []int32, swapSlot, swapPeer int32) float64 {
	total := 0.0
	for i, x := range e.nbrs(s) {
		q := row[i]
		if x == swapSlot {
			q = swapPeer
		}
		if q < 0 {
			continue
		}
		total += e.estLat(p, q)
	}
	return total
}

// handleReport evaluates the swap between the probing peer u (slot su) and
// the reported endpoint v (slot sv): would exchanging slots reduce the
// summed estimated latency of both neighborhoods? A clear gain sends a
// version-conditioned commit proposal and locks u until the answer (with,
// under faults, a timeout covering the commit round trip).
func (e *Engine) handleReport(sh *shardRun, m *msg) {
	u, v := m.to, m.from
	if e.pstate[u] != 1 {
		return
	}
	if e.faultsOn {
		if e.txn[u] != uint32(m.c) {
			sh.stats.StaleGuards++
			return
		}
		// The cycle round-tripped: clear the liveness strikes against its
		// first-hop neighbor.
		e.failCnt[int(u)*maxDeg+int(e.probeNbr[u])] = 0
	}
	e.pstate[u] = 0
	sv := m.a
	su := e.slotOf[u]
	if v == u || sv == su {
		return
	}
	rowU := e.occRow[int(u)*maxDeg : int(u)*maxDeg+e.deg(su)]
	rowV := m.row[:m.rlen]
	before := e.swapCost(u, su, rowU, -1, -1) + e.swapCost(v, sv, rowV, -1, -1)
	after := e.swapCost(u, sv, rowV, su, v) + e.swapCost(v, su, rowU, sv, u)
	if before-after <= e.cfg.MinGainMS {
		sh.stats.GainRejected++
		return
	}
	e.pstate[u] = 2
	com := msg{from: u, to: v, kind: kCommit, a: su, b: m.b, c: m.c}
	com.rlen = uint8(len(rowU))
	copy(com.row[:], rowU)
	sh.stats.Commits++
	e.send(sh, m.at, com)
	if e.faultsOn {
		e.scheduleTO(sh, u, m.at+e.commitTO, kCommitTO, m.c)
	}
}

// handleCommit is the acceptor side of the two-phase swap. The proposal is
// refused if the acceptor's version moved since the report (its slot or
// cache changed under the proposer's feet) or if the acceptor is itself
// locked awaiting an acknowledgment. Acceptance moves the acceptor onto
// the proposer's slot immediately, acknowledges with the proposer's new
// occupant cache, and notifies the new neighborhood.
func (e *Engine) handleCommit(sh *shardRun, m *msg) {
	v, u := m.to, m.from
	su := m.a
	if e.pstate[v] == 2 || e.ver[v] != uint32(m.b) {
		sh.stats.VerRejected++
		e.send(sh, m.at, msg{from: v, to: u, kind: kReject, c: m.c})
		return
	}
	sv := e.slotOf[v]
	// The proposer's new cache: occupants of sv's neighbors, with the slot
	// the acceptor is vacating into (su) now held by v.
	ack := msg{from: v, to: u, kind: kCommitOK, a: sv, c: m.c}
	ack.rlen = uint8(e.deg(sv))
	for i, x := range e.nbrs(sv) {
		if x == su {
			ack.row[i] = v
		} else {
			ack.row[i] = e.occRow[int(v)*maxDeg+i]
		}
	}
	// The acceptor's new cache: occupants of su's neighbors from the
	// proposal, with the proposer's destination (sv) remapped to u.
	nbSU := e.nbrs(su)
	for i, x := range nbSU {
		q := m.row[i]
		if x == sv {
			q = u
		}
		e.occRow[int(v)*maxDeg+i] = q
	}
	e.slotOf[v] = su
	e.ver[v]++
	sh.stats.Exchanges++
	e.send(sh, m.at, ack)
	for i := range nbSU {
		q := e.occRow[int(v)*maxDeg+i]
		if q == v || q == u || q < 0 {
			continue
		}
		sh.stats.Notifies++
		e.send(sh, m.at, msg{from: v, to: q, kind: kNotify, a: su})
	}
}

// handleCommitOK completes the proposer's side: take the vacated slot,
// install the pre-remapped occupant cache from the acknowledgment, unlock,
// and notify the new neighborhood. The guard is defensive: the ack is
// exempt from loss and duplication and always beats its own timeout, so
// under the current schedule it cannot be stale — but the engine refuses
// to rely on that across future fault-model extensions.
func (e *Engine) handleCommitOK(sh *shardRun, m *msg) {
	u, v := m.to, m.from
	if e.faultsOn && (e.pstate[u] != 2 || e.txn[u] != uint32(m.c)) {
		sh.stats.StaleGuards++
		return
	}
	sv := m.a
	e.slotOf[u] = sv
	e.ver[u]++
	e.pstate[u] = 0
	d := e.deg(sv)
	copy(e.occRow[int(u)*maxDeg:int(u)*maxDeg+d], m.row[:d])
	for i := 0; i < d; i++ {
		q := e.occRow[int(u)*maxDeg+i]
		if q == u || q == v || q < 0 {
			continue
		}
		sh.stats.Notifies++
		e.send(sh, m.at, msg{from: u, to: q, kind: kNotify, a: sv})
	}
}

// handleNotify updates one believed-occupant entry: if the sender's
// claimed slot is adjacent to the receiver's current slot, the receiver
// now believes the sender holds it. Under faults this is also the revival
// path for evicted entries (and their liveness strikes).
func (e *Engine) handleNotify(sh *shardRun, m *msg) {
	q := m.to
	s := e.slotOf[q]
	for i, x := range e.nbrs(s) {
		if x == m.a {
			e.occRow[int(q)*maxDeg+i] = m.from
			if e.faultsOn {
				e.failCnt[int(q)*maxDeg+i] = 0
			}
		}
	}
}

// evictAfter is the consecutive probe-timeout count that evicts a
// believed-occupant entry: one strike could be a lost walk anywhere along
// the route, two in a row through the same first hop is treated as a dead
// neighbor. kNotify revives evicted entries.
const evictAfter = 2

// handleCrash executes peer p's crash-stop: the tombstone flips, any open
// cycle is forgotten, and from here on handle drops every arrival. Slots
// the corpse claims become vacant at the next snapshot refresh, and
// neighbors discover the death through probe timeouts and evict the
// corpse from their caches.
func (e *Engine) handleCrash(sh *shardRun, m *msg) {
	p := m.to
	e.dead[p] = true
	e.pstate[p] = 0
	sh.stats.Crashes++
}

// handleProbeTO closes a probe cycle whose report never arrived: unlock,
// and strike the first-hop neighbor the walk left through — evicting it
// after evictAfter consecutive strikes. The txn guard makes timers from
// completed or superseded cycles no-ops.
func (e *Engine) handleProbeTO(sh *shardRun, m *msg) {
	u := m.to
	if e.pstate[u] != 1 || e.txn[u] != uint32(m.c) {
		return
	}
	e.pstate[u] = 0
	sh.stats.ProbeTimeouts++
	idx := int(u)*maxDeg + int(e.probeNbr[u])
	if e.occRow[idx] < 0 {
		return
	}
	e.failCnt[idx]++
	if e.failCnt[idx] >= evictAfter {
		e.occRow[idx] = -1
		e.failCnt[idx] = 0
		sh.stats.Evictions++
	}
}

// handleCommitTO aborts a two-phase swap whose acknowledgment never came
// — under faults, the ONLY abort path (rejections are advisory, see
// handleReject).
//
// Safety argument. The timeout is scheduled commitTO = 2·maxLeg + 1 ms
// after the proposal, where maxLeg bounds every one-way delay including
// jitter. Events are processed in arrival order, so if the acceptor
// executed the swap, its acknowledgment — exempt from every drop — was
// handled strictly before this timer fires, cleared pstate, and the txn
// guard below makes the timer a no-op. A timer that finds its cycle still
// open therefore proves the swap did NOT execute: the proposal was
// dropped in flight, the acceptor was dead on arrival, or the acceptor
// refused (every copy of a duplicated proposal after the first is
// version-refused, and the refusals may be dropped, reordered, or
// ignored — it does not matter). In every case nothing moved on either
// side, and resetting the proposer's lock is exact — no slot state to
// roll back, no counterpart to inform. This is the version-guarded abort
// that keeps the alive-peer slot claims injective when a counterpart
// crashes mid-commit.
func (e *Engine) handleCommitTO(sh *shardRun, m *msg) {
	u := m.to
	if e.pstate[u] != 2 || e.txn[u] != uint32(m.c) {
		return
	}
	e.pstate[u] = 0
	sh.stats.CommitTimeouts++
}
