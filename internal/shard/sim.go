package shard

import "fmt"

// The protocol handlers: a message-passing PROP-G adapted to the sharded
// engine. One probe cycle is
//
//	kProbe → kWalk×(nhop) → kReport → [kCommit → (kCommitOK | kReject)] → kNotify×deg
//
// with the swap-gain evaluation done on landmark-estimated latencies and
// the two-phase commit guarded by per-peer swap versions, so concurrent
// probes over the same slots never tear the slot↔peer bijection. Handlers
// obey one discipline that everything else rests on: they read and write
// ONLY the addressed peer's state (plus immutable world data and message
// payloads). That is what makes parallel shard execution race-free and the
// event stream shard-count invariant.

// stamp assigns m's ordering key from the sending peer and delivers it:
// same-shard messages go straight into the local heap, cross-shard ones
// into the outbox drained at the next epoch barrier. Cross-shard delivery
// asserts the lookahead bound — by construction (estLat is an upper bound
// on a cross-domain distance) the panic is unreachable.
func (e *Engine) send(sh *shardRun, now float64, m msg) {
	m.origin = m.from
	m.oseq = e.oseq[m.from]
	e.oseq[m.from]++
	d := e.estLat(m.from, m.to)
	m.at = now + d
	dst := e.shardOfPeer[m.to]
	if dst == sh.id {
		sh.heap.push(m)
		return
	}
	if d < e.lookahead {
		panic(fmt.Sprintf("shard: cross-shard delay %v below lookahead %v (peers %d→%d)", d, e.lookahead, m.from, m.to))
	}
	sh.out[dst] = append(sh.out[dst], m)
	sh.stats.CrossShard++
}

// schedule enqueues a self-timer for peer p at an absolute time. Timers
// never cross shards.
func (e *Engine) schedule(sh *shardRun, p int32, at float64, k kind) {
	m := msg{at: at, origin: p, oseq: e.oseq[p], from: p, to: p, kind: k}
	e.oseq[p]++
	sh.heap.push(m)
}

// handle dispatches one event.
func (e *Engine) handle(sh *shardRun, m *msg) {
	switch m.kind {
	case kProbe:
		e.handleProbe(sh, m)
	case kWalk:
		e.handleWalk(sh, m)
	case kReport:
		e.handleReport(sh, m)
	case kCommit:
		e.handleCommit(sh, m)
	case kCommitOK:
		e.handleCommitOK(sh, m)
	case kReject:
		e.pstate[m.to] = 0
	case kNotify:
		e.handleNotify(sh, m)
	}
}

// handleProbe starts one probe cycle: reschedule the timer (jittered ±25%,
// only while before the horizon) and, if the peer is idle, launch a random
// walk to find a swap candidate. A busy peer (mid-probe or mid-commit)
// skips the cycle rather than queueing.
func (e *Engine) handleProbe(sh *shardRun, m *msg) {
	u := m.to
	sh.stats.Probes++
	next := m.at + e.cfg.ProbeIntervalMS*(0.75+0.5*u01(e.draw(u)))
	if next < e.cfg.HorizonMS {
		e.schedule(sh, u, next, kProbe)
	}
	if e.pstate[u] != 0 {
		return
	}
	e.pstate[u] = 1
	su := e.slotOf[u]
	j := int(e.draw(u) % uint64(e.deg(su)))
	target := e.occRow[int(u)*maxDeg+j]
	sh.stats.Walks++
	e.send(sh, m.at, msg{from: u, to: target, kind: kWalk, a: u, hops: uint8(e.cfg.WalkHops - 1)})
}

// handleWalk forwards the walk through believed occupants; at the last hop
// the endpoint reports itself (slot, version, occupant cache) to the
// probing peer.
func (e *Engine) handleWalk(sh *shardRun, m *msg) {
	w := m.to
	origin := m.a
	if m.hops == 0 {
		sw := e.slotOf[w]
		rep := msg{from: w, to: origin, kind: kReport, a: sw, b: int32(e.ver[w])}
		rep.rlen = uint8(e.deg(sw))
		copy(rep.row[:], e.occRow[int(w)*maxDeg:int(w)*maxDeg+int(rep.rlen)])
		sh.stats.Reports++
		e.send(sh, m.at, rep)
		return
	}
	sw := e.slotOf[w]
	j := int(e.draw(w) % uint64(e.deg(sw)))
	target := e.occRow[int(w)*maxDeg+j]
	sh.stats.Walks++
	e.send(sh, m.at, msg{from: w, to: target, kind: kWalk, a: origin, hops: m.hops - 1})
}

// swapCost sums the estimated latency from peer p (sitting on slot s) to
// the believed occupants row of s's neighbors; entries whose slot equals
// swapSlot are remapped to swapPeer, which is how the post-swap
// configuration is evaluated without mutating anything.
func (e *Engine) swapCost(p, s int32, row []int32, swapSlot, swapPeer int32) float64 {
	total := 0.0
	for i, x := range e.nbrs(s) {
		q := row[i]
		if x == swapSlot {
			q = swapPeer
		}
		total += e.estLat(p, q)
	}
	return total
}

// handleReport evaluates the swap between the probing peer u (slot su) and
// the reported endpoint v (slot sv): would exchanging slots reduce the
// summed estimated latency of both neighborhoods? A clear gain sends a
// version-conditioned commit proposal and locks u until the answer.
func (e *Engine) handleReport(sh *shardRun, m *msg) {
	u, v := m.to, m.from
	if e.pstate[u] != 1 {
		return
	}
	e.pstate[u] = 0
	sv := m.a
	su := e.slotOf[u]
	if v == u || sv == su {
		return
	}
	rowU := e.occRow[int(u)*maxDeg : int(u)*maxDeg+e.deg(su)]
	rowV := m.row[:m.rlen]
	before := e.swapCost(u, su, rowU, -1, -1) + e.swapCost(v, sv, rowV, -1, -1)
	after := e.swapCost(u, sv, rowV, su, v) + e.swapCost(v, su, rowU, sv, u)
	if before-after <= e.cfg.MinGainMS {
		sh.stats.GainRejected++
		return
	}
	e.pstate[u] = 2
	com := msg{from: u, to: v, kind: kCommit, a: su, b: m.b}
	com.rlen = uint8(len(rowU))
	copy(com.row[:], rowU)
	sh.stats.Commits++
	e.send(sh, m.at, com)
}

// handleCommit is the acceptor side of the two-phase swap. The proposal is
// refused if the acceptor's version moved since the report (its slot or
// cache changed under the proposer's feet) or if the acceptor is itself
// locked awaiting an acknowledgment. Acceptance moves the acceptor onto
// the proposer's slot immediately, acknowledges with the proposer's new
// occupant cache, and notifies the new neighborhood.
func (e *Engine) handleCommit(sh *shardRun, m *msg) {
	v, u := m.to, m.from
	su := m.a
	if e.pstate[v] == 2 || e.ver[v] != uint32(m.b) {
		sh.stats.VerRejected++
		e.send(sh, m.at, msg{from: v, to: u, kind: kReject})
		return
	}
	sv := e.slotOf[v]
	// The proposer's new cache: occupants of sv's neighbors, with the slot
	// the acceptor is vacating into (su) now held by v.
	ack := msg{from: v, to: u, kind: kCommitOK, a: sv}
	ack.rlen = uint8(e.deg(sv))
	for i, x := range e.nbrs(sv) {
		if x == su {
			ack.row[i] = v
		} else {
			ack.row[i] = e.occRow[int(v)*maxDeg+i]
		}
	}
	// The acceptor's new cache: occupants of su's neighbors from the
	// proposal, with the proposer's destination (sv) remapped to u.
	nbSU := e.nbrs(su)
	for i, x := range nbSU {
		q := m.row[i]
		if x == sv {
			q = u
		}
		e.occRow[int(v)*maxDeg+i] = q
	}
	e.slotOf[v] = su
	e.ver[v]++
	sh.stats.Exchanges++
	e.send(sh, m.at, ack)
	for i := range nbSU {
		q := e.occRow[int(v)*maxDeg+i]
		if q == v || q == u {
			continue
		}
		sh.stats.Notifies++
		e.send(sh, m.at, msg{from: v, to: q, kind: kNotify, a: su})
	}
}

// handleCommitOK completes the proposer's side: take the vacated slot,
// install the pre-remapped occupant cache from the acknowledgment, unlock,
// and notify the new neighborhood.
func (e *Engine) handleCommitOK(sh *shardRun, m *msg) {
	u, v := m.to, m.from
	sv := m.a
	e.slotOf[u] = sv
	e.ver[u]++
	e.pstate[u] = 0
	d := e.deg(sv)
	copy(e.occRow[int(u)*maxDeg:int(u)*maxDeg+d], m.row[:d])
	for i := 0; i < d; i++ {
		q := e.occRow[int(u)*maxDeg+i]
		if q == u || q == v {
			continue
		}
		sh.stats.Notifies++
		e.send(sh, m.at, msg{from: u, to: q, kind: kNotify, a: sv})
	}
}

// handleNotify updates one believed-occupant entry: if the sender's
// claimed slot is adjacent to the receiver's current slot, the receiver
// now believes the sender holds it.
func (e *Engine) handleNotify(sh *shardRun, m *msg) {
	q := m.to
	s := e.slotOf[q]
	for i, x := range e.nbrs(s) {
		if x == m.a {
			e.occRow[int(q)*maxDeg+i] = m.from
		}
	}
}
