package shard

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rng"
)

// The epoch loop. Every window [t0, t1) satisfies t1 ≤ minAt + lookahead,
// where minAt is the earliest pending event anywhere: no event processed
// in the window can cause a cross-shard arrival before t1, so each shard
// drains its heap up to t1 in isolation, and the barrier afterwards moves
// mailbox messages (all stamped ≥ t1) into their destination heaps. Sample
// times are window boundaries, so a sample always observes the exact
// prefix of the event stream with arrival time < sample time — the same
// prefix for every shard count.

// alSeedSalt separates the AL-estimator's source-sampling stream from the
// world-generation stream derived from the same Config.Seed.
const alSeedSalt = 0x414c2d657374 // "AL-est"

// Run executes the simulation: initial probe timers (plus, under faults,
// the stateless crash schedule), the epoch loop with conservative-
// lookahead windows, per-sample metrics into tr (series
// prefix+"al_est_ms", "al_stderr_ms", "exchanges", "messages", plus
// "al_exact_ms" and "al_err_pct" under Config.ExactAL, plus the
// crash/churn event stream "crashed", "lost", "timeouts", "evictions"
// when any fault knob is set), a drain of in-flight work past the
// horizon, and final invariant checks (every live peer idle, live slot
// claims injective). A nil tr runs the protocol without sampling. An
// Engine is single-use; a second Run returns an error.
func (e *Engine) Run(tr *obs.Trial, prefix string) error {
	if e.ran {
		return errReRun
	}
	e.ran = true

	e.shards = make([]*shardRun, e.nShards)
	for i := range e.shards {
		e.shards[i] = &shardRun{id: int32(i), out: make([][]msg, e.nShards)}
	}
	for p := 0; p < e.n; p++ {
		sh := e.shards[e.shardOfPeer[p]]
		e.schedule(sh, int32(p), e.cfg.ProbeIntervalMS*u01(e.draw(int32(p))), kProbe)
		if e.faultsOn {
			// The crash schedule is a stateless per-peer hash, so this
			// loop plants byte-identical kCrash timers for every shard
			// count; the timer consumes an oseq only on the fault-on path.
			if at, ok := e.crashSchedule(int32(p)); ok {
				e.schedule(sh, int32(p), at, kCrash)
			}
		}
	}

	sampling := tr != nil
	var est *metrics.ALEstimator
	var sAL, sSE, sEx, sMsg, sExact, sErr *obs.TimeSeries
	var sCrash, sLost, sTO, sEvict *obs.TimeSeries
	if sampling {
		var err error
		est, err = metrics.NewALEstimator(e.fs, metrics.ALEstimatorOptions{Sources: e.cfg.ALSources}, rng.New(e.seed^alSeedSalt))
		if err != nil {
			return err
		}
		sAL = tr.Series(prefix + "al_est_ms")
		sSE = tr.Series(prefix + "al_stderr_ms")
		sEx = tr.Series(prefix + "exchanges")
		sMsg = tr.Series(prefix + "messages")
		if e.cfg.ExactAL {
			sExact = tr.Series(prefix + "al_exact_ms")
			sErr = tr.Series(prefix + "al_err_pct")
		}
		if e.faultsOn {
			// The crash/churn event stream: cumulative fault activity at
			// every sample. Registered only under faults, so fault-free
			// streams stay byte-identical to the pre-fault engine.
			sCrash = tr.Series(prefix + "crashed")
			sLost = tr.Series(prefix + "lost")
			sTO = tr.Series(prefix + "timeouts")
			sEvict = tr.Series(prefix + "evictions")
		}
	}

	horizon := e.cfg.HorizonMS
	step := e.cfg.SampleEveryMS
	t0, nextSample := 0.0, 0.0
	for {
		if sampling && nextSample <= horizon && t0 == nextSample {
			if err := e.sample(est, nextSample, sAL, sSE, sEx, sMsg, sExact, sErr, sCrash, sLost, sTO, sEvict); err != nil {
				return err
			}
			nextSample += step
		}
		minAt := math.Inf(1)
		for _, sh := range e.shards {
			if sh.heap.len() > 0 && sh.heap.min().at < minAt {
				minAt = sh.heap.min().at
			}
		}
		samplesLeft := sampling && nextSample <= horizon
		if math.IsInf(minAt, 1) {
			if !samplesLeft {
				break
			}
			t0 = nextSample // quiet stretch: jump straight to the sample
			continue
		}
		t1 := minAt + e.lookahead
		if samplesLeft && nextSample < t1 {
			t1 = nextSample
		}
		e.window(t1)
		t0 = t1
	}

	return e.checkInvariants()
}

// window processes, in parallel across shards, every pending event with
// arrival time strictly before t1, then exchanges the mailboxes. The
// lookahead argument guarantees no message generated inside the window
// lands before t1 (send panics otherwise), so the barrier is the only
// synchronization the epoch needs.
func (e *Engine) window(t1 float64) {
	if e.nShards == 1 {
		sh := e.shards[0]
		for sh.heap.len() > 0 && sh.heap.min().at < t1 {
			m := sh.heap.pop()
			e.handle(sh, &m)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(e.nShards)
		for _, sh := range e.shards {
			go func(sh *shardRun) {
				defer wg.Done()
				for sh.heap.len() > 0 && sh.heap.min().at < t1 {
					m := sh.heap.pop()
					e.handle(sh, &m)
				}
			}(sh)
		}
		wg.Wait()
		// Mailbox exchange, parallel over destinations: heap pop order is a
		// pure function of the (unique) keys, so the source interleaving a
		// destination drains in cannot influence anything downstream.
		wg.Add(e.nShards)
		for dst := range e.shards {
			go func(dst int) {
				defer wg.Done()
				h := &e.shards[dst].heap
				for _, src := range e.shards {
					for i := range src.out[dst] {
						h.push(src.out[dst][i])
					}
					src.out[dst] = src.out[dst][:0]
				}
			}(dst)
		}
		wg.Wait()
	}
	e.extra.Epochs++
}

// sample records one metrics row at simulated time t. The snapshot refresh
// and every recorded quantity are pure functions of the processed event
// prefix, which is why the stream is byte-identical across shard counts.
func (e *Engine) sample(est *metrics.ALEstimator, t float64, sAL, sSE, sEx, sMsg, sExact, sErr, sCrash, sLost, sTO, sEvict *obs.TimeSeries) error {
	e.extra.SnapshotConflicts += uint64(e.fs.refresh())
	sk, err := est.Estimate()
	if err != nil {
		return err
	}
	sAL.Sample(t, sk.AL)
	sSE.Sample(t, sk.StdErr)
	var tot Stats
	for _, sh := range e.shards {
		tot.Exchanges += sh.stats.Exchanges
		tot.Walks += sh.stats.Walks
		tot.Reports += sh.stats.Reports
		tot.Commits += sh.stats.Commits
		tot.VerRejected += sh.stats.VerRejected
		tot.Notifies += sh.stats.Notifies
		tot.Crashes += sh.stats.Crashes
		tot.Lost += sh.stats.Lost
		tot.LinkDownDrops += sh.stats.LinkDownDrops
		tot.PartitionDrops += sh.stats.PartitionDrops
		tot.ProbeTimeouts += sh.stats.ProbeTimeouts
		tot.CommitTimeouts += sh.stats.CommitTimeouts
		tot.Evictions += sh.stats.Evictions
	}
	sEx.Sample(t, float64(tot.Exchanges))
	sMsg.Sample(t, float64(tot.messages()))
	if sExact != nil {
		exact, err := metrics.AverageLatencyFrom(e.fs)
		if err != nil {
			return err
		}
		sExact.Sample(t, exact)
		sErr.Sample(t, 100*math.Abs(sk.AL-exact)/exact)
	}
	if sCrash != nil {
		sCrash.Sample(t, float64(tot.Crashes))
		sLost.Sample(t, float64(tot.Lost+tot.LinkDownDrops+tot.PartitionDrops))
		sTO.Sample(t, float64(tot.ProbeTimeouts+tot.CommitTimeouts))
		sEvict.Sample(t, float64(tot.Evictions))
	}
	return nil
}

// checkInvariants verifies the quiesced end state: no live peer stuck
// mid-probe or mid-commit, and the slot claims of live peers injective.
// Fault-free every peer is alive and injectivity over n peers and n slots
// is a bijection; under crash-stop churn, corpses keep their last claim
// (possibly the same slot a survivor moved onto mid-swap) and are
// excluded — their slots are simply vacant in the measurement plane.
func (e *Engine) checkInvariants() error {
	seen := make([]bool, e.n)
	for p := 0; p < e.n; p++ {
		if e.faultsOn && e.dead[p] {
			continue
		}
		if e.pstate[p] != 0 {
			return fmt.Errorf("shard: peer %d quiesced in state %d, want idle", p, e.pstate[p])
		}
		s := e.slotOf[p]
		if seen[s] {
			return fmt.Errorf("shard: slot %d claimed twice at quiescence", s)
		}
		seen[s] = true
	}
	return nil
}

// Stats sums the run tallies across shards. Meaningful after Run; all
// fields except CrossShard and Epochs are shard-count invariant — the
// fault tallies included, because every fault verdict is a stateless hash
// and every drop a pure function of the processed event prefix.
func (e *Engine) Stats() Stats {
	out := e.extra
	out.Peers = e.n
	out.Shards = e.nShards
	out.LookaheadMS = e.lookahead
	for _, sh := range e.shards {
		out.Probes += sh.stats.Probes
		out.Walks += sh.stats.Walks
		out.Reports += sh.stats.Reports
		out.Commits += sh.stats.Commits
		out.Exchanges += sh.stats.Exchanges
		out.GainRejected += sh.stats.GainRejected
		out.VerRejected += sh.stats.VerRejected
		out.Notifies += sh.stats.Notifies
		out.CrossShard += sh.stats.CrossShard
		out.Lost += sh.stats.Lost
		out.DupsSent += sh.stats.DupsSent
		out.LinkDownDrops += sh.stats.LinkDownDrops
		out.PartitionDrops += sh.stats.PartitionDrops
		out.Crashes += sh.stats.Crashes
		out.DeadDrops += sh.stats.DeadDrops
		out.ProbeTimeouts += sh.stats.ProbeTimeouts
		out.CommitTimeouts += sh.stats.CommitTimeouts
		out.StaleGuards += sh.stats.StaleGuards
		out.Evictions += sh.stats.Evictions
		out.NoNeighbor += sh.stats.NoNeighbor
	}
	return out
}

// FloodSource refreshes the occupancy snapshot and returns the engine's
// measurement plane, for exact-AL checks or ad-hoc estimation outside the
// sampled stream. The returned source reads live engine state through the
// snapshot — only use it while no window is executing.
func (e *Engine) FloodSource() metrics.FloodSource {
	e.extra.SnapshotConflicts += uint64(e.fs.refresh())
	return e.fs
}
