package shard

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// tinyNet is the test world: 8 transit domains of 2 routers, one 16-host
// stub ring per router — 256 peers, small enough for exact AL, with enough
// domains to run 1/2/4/8 shards.
func tinyNet() netsim.Config {
	return netsim.Config{
		Name:                  "ts-tiny-shard",
		TransitDomains:        8,
		TransitNodesPerDomain: 2,
		StubDomainsPerTransit: 1,
		NodesPerStub:          16,
		StubExtraEdgeProb:     0.1,
		InterDomainEdgeProb:   0.5,
		StubStubMS:            5,
		StubTransitMS:         20,
		TransitTransitMS:      50,
	}
}

func tinyConfig(shards int, seed uint64) Config {
	net := tinyNet()
	return Config{
		Shards: shards,
		Seed:   seed,
		Net:    &net,
	}
}

// runTiny executes one run and returns the serialized metrics stream plus
// the engine.
func runTiny(t *testing.T, cfg Config) ([]byte, *Engine) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New(obs.NewManifest("shard-test", cfg.Seed, 1, 1))
	if err := e.Run(reg.Trial(0), "prop_"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), e
}

// TestShardCountInvariance is the regression behind the determinism
// contract (DESIGN.md §12) and a bit beyond it: the engine promises
// byte-identical metrics streams for same seed + same shard count, and
// delivers them for same seed at ANY admissible shard count. All run
// tallies except the partition-dependent CrossShard (and the window count)
// must agree too.
func TestShardCountInvariance(t *testing.T) {
	var want []byte
	var wantStats Stats
	for _, shards := range []int{1, 2, 4, 8} {
		got, e := runTiny(t, tinyConfig(shards, 42))
		stats := e.Stats()
		if stats.Exchanges == 0 {
			t.Fatalf("shards=%d: no exchanges committed", shards)
		}
		norm := stats
		norm.Shards, norm.CrossShard, norm.Epochs = 0, 0, 0
		if shards == 1 {
			want, wantStats = got, norm
			if stats.CrossShard != 0 {
				t.Fatalf("1 shard recorded %d cross-shard messages", stats.CrossShard)
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("shards=%d: metrics stream differs from 1-shard run (%d vs %d bytes)", shards, len(got), len(want))
		}
		if norm != wantStats {
			t.Errorf("shards=%d: stats %+v differ from 1-shard stats %+v", shards, norm, wantStats)
		}
		if stats.CrossShard == 0 {
			t.Errorf("shards=%d: no cross-shard traffic — partition not exercised", shards)
		}
	}
}

// TestSameSeedSameBytes is the contract as literally stated: two runs with
// the same seed and shard count produce byte-identical streams.
func TestSameSeedSameBytes(t *testing.T) {
	a, _ := runTiny(t, tinyConfig(4, 7))
	b, _ := runTiny(t, tinyConfig(4, 7))
	if !bytes.Equal(a, b) {
		t.Fatal("same seed, same shard count: streams differ")
	}
	c, _ := runTiny(t, tinyConfig(4, 8))
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestOptimizationProgress checks the engine does its actual job: the
// exact average latency of the final placement is below the initial one,
// and the landmark estimate tracks the exact value within the documented
// sketch bound.
func TestOptimizationProgress(t *testing.T) {
	cfg := tinyConfig(8, 3)
	cfg.ExactAL = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before, err := metrics.AverageLatencyFrom(e.FloodSource())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New(obs.NewManifest("shard-progress", 3, 1, 1))
	if err := e.Run(reg.Trial(0), ""); err != nil {
		t.Fatal(err)
	}
	after, err := metrics.AverageLatencyFrom(e.FloodSource())
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("AL did not improve: %.2f -> %.2f ms", before, after)
	}
	st := e.Stats()
	if st.Exchanges == 0 || st.Probes == 0 {
		t.Fatalf("inactive run: %+v", st)
	}
	if t.Failed() {
		t.Logf("stats: %+v", st)
	}
}

// TestEstimatorTracksExact pins the in-stream error series: with ExactAL
// on, every sampled relative error stays within 3× the sketch's documented
// 10% bound (the landmark plane feeding the estimator is itself an upper
// bound, so allow slack over the pure-sketch property test in metrics).
func TestEstimatorTracksExact(t *testing.T) {
	cfg := tinyConfig(2, 11)
	cfg.ExactAL = true
	cfg.ALSources = 32
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New(obs.NewManifest("shard-err", 11, 1, 1))
	tr := reg.Trial(0)
	if err := e.Run(tr, ""); err != nil {
		t.Fatal(err)
	}
	ts, vs := tr.Series("al_err_pct").Points()
	if len(vs) == 0 {
		t.Fatal("no al_err_pct samples")
	}
	for i, v := range vs {
		if math.IsNaN(v) || v > 30 {
			t.Errorf("t=%v: estimator error %.2f%% out of bounds", ts[i], v)
		}
	}
}

// TestLookaheadFloor cross-checks the lookahead against the latency plane:
// every cross-shard peer pair's estimated latency must clear the epoch
// bound, or the engine's correctness argument is void.
func TestLookaheadFloor(t *testing.T) {
	e, err := New(tinyConfig(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if e.LookaheadMS() != tinyNet().CrossDomainFloorMS() {
		t.Fatalf("lookahead %v, want %v", e.LookaheadMS(), tinyNet().CrossDomainFloorMS())
	}
	for p := int32(0); p < int32(e.Peers()); p++ {
		for q := p + 1; q < int32(e.Peers()); q++ {
			if e.shardOfPeer[p] != e.shardOfPeer[q] && e.estLat(p, q) < e.LookaheadMS() {
				t.Fatalf("peers %d,%d: cross-shard estimate %.3f below lookahead %.3f",
					p, q, e.estLat(p, q), e.LookaheadMS())
			}
		}
	}
}

// TestConfigValidation covers the rejection paths and the single-use
// guard.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		tinyConfig(9, 1),  // more shards than domains
		tinyConfig(-1, 1), // negative shards
	}
	walk := tinyConfig(2, 1)
	walk.WalkHops = -1
	neg := tinyConfig(2, 1)
	neg.SampleEveryMS = -5
	bad = append(bad, walk, neg)
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	e, err := New(tinyConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(nil, ""); err == nil {
		t.Fatal("second Run accepted")
	}
}

// TestDefaultWorld checks the ScaleTS path: Config.Peers alone builds a
// world of at least that many peers with one engine per transit domain.
func TestDefaultWorld(t *testing.T) {
	e, err := New(Config{Peers: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if e.Peers() < 16 || e.ShardCount() != netsim.ScaleTransitDomains {
		t.Fatalf("peers=%d shards=%d, want >=16 peers and %d shards",
			e.Peers(), e.ShardCount(), netsim.ScaleTransitDomains)
	}
}

// BenchmarkShardSim measures one full tiny-world run per iteration —
// world build, 10 simulated minutes of probing across 8 parallel engines,
// and the drain. The BENCH_PR8 entry for the sharded engine.
func BenchmarkShardSim(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := New(tinyConfig(8, 42))
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Run(nil, ""); err != nil {
			b.Fatal(err)
		}
	}
}
