package shard

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/rng"
)

// Engine is one sharded simulation: the immutable world (logical topology,
// landmark coordinates, shard partition) plus the mutable struct-of-arrays
// peer state and the per-shard event heaps. Build with New, execute with
// Run. An Engine is single-use: Run consumes it.
type Engine struct {
	cfg       Config
	net       netsim.Config
	n         int // peers
	nShards   int
	lookahead float64
	seed      uint64

	// Logical overlay over slots, CSR form. Slots are permanent; peers
	// migrate across them via swaps.
	lOff []int32
	lNbr []int32

	// coord[p*nLandmarks+l] is peer p's shortest-path distance to landmark l
	// in the physical topology, rounded UP to float32 — widened sums
	// therefore never undercut true distances, which keeps estLat a true
	// upper bound and the cross-shard lookahead assertion airtight. The
	// layout is peer-major: one peer's whole landmark vector (16 float32 =
	// 64 B) is a single cache line, and estLat is the hottest loop in the
	// engine.
	coord      []float32
	nLandmarks int

	// shardOfPeer is the static partition: transit domain mod shard count.
	shardOfPeer []int32
	// domainOfPeer is each peer's transit domain, kept (only under faults)
	// so the domain-partition cut is a pure array lookup per message.
	domainOfPeer []uint8

	// Mutable struct-of-arrays peer state. A handler running in shard s
	// only ever writes indices belonging to peers of shard s.
	slotOf []int32  // slot currently claimed by each peer
	ver    []uint32 // per-peer swap count; guards stale commit proposals
	pstate []uint8  // 0 idle, 1 awaiting walk report, 2 awaiting commit ack
	pctr   []uint32 // stateless-RNG draw counter
	oseq   []uint32 // per-peer send counter (ordering key)
	occRow []int32  // flat [peer*maxDeg+i]: believed occupant of the i-th
	// neighbor slot of the peer's current slot

	// Fault/churn state, allocated only when faultsOn (≈2.25 B/peer of
	// tombstone + liveness bookkeeping on top of the ~150 B/peer base).
	faultsOn bool
	fc       FaultConfig      // normalized schedule (windows defaulted)
	inj      *faults.Injector // stateless loss/dup/jitter/link-outage hashes
	dead     []bool           // crash-stop tombstones
	txn      []uint32         // per-peer probe-cycle counter (stale-reply guard)
	probeNbr []uint8          // first-hop cache index of the current cycle
	failCnt  []uint8          // flat [peer*maxDeg+i]: consecutive timeout strikes
	probeTO  float64          // probe-cycle timeout (walk legs + report leg)
	commitTO float64          // two-phase-swap timeout (commit + ack legs)

	shards []*shardRun
	extra  Stats // engine-level tallies (snapshot conflicts)
	fs     *floodSource
	ran    bool
}

// shardRun is one engine's event state: its heap, one outbox per
// destination shard (drained at each epoch barrier), and its share of the
// run tallies.
type shardRun struct {
	id    int32
	heap  msgHeap
	out   [][]msg
	stats Stats
}

// New builds the world for one run: generates the physical transit-stub
// network, computes landmark coordinates and releases the physical graph,
// builds the static logical overlay (ring plus random chords, degree ≤ 8),
// places peers on slots by a random permutation, and seeds every occupant
// cache. Cost is dominated by network generation plus one Dijkstra per
// transit domain; at 10⁶ peers expect a few seconds and ~150 MB retained.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	var net netsim.Config
	if cfg.Net != nil {
		net = *cfg.Net
	} else {
		net = netsim.ScaleTS(cfg.Peers)
	}
	if cfg.Shards == 0 {
		cfg.Shards = net.TransitDomains
	}
	if err := cfg.validate(net); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	world, err := netsim.Generate(net, r)
	if err != nil {
		return nil, err
	}
	n := len(world.StubHosts)
	e := &Engine{
		cfg:       cfg,
		net:       net,
		n:         n,
		nShards:   cfg.Shards,
		lookahead: net.CrossDomainFloorMS(),
		seed:      cfg.Seed,
	}

	// Landmark coordinates: the first transit router of every domain. One
	// Dijkstra per landmark over the physical graph, projected down to the
	// peer index space so the graph itself can be garbage collected.
	fz := world.Graph.Frozen()
	k := net.TransitDomains
	e.nLandmarks = k
	e.coord = make([]float32, n*k)
	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	ch := make(chan int, k)
	for l := 0; l < k; l++ {
		ch <- l
	}
	close(ch)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			dist := make([]float64, fz.NumVertices())
			for l := range ch {
				fz.ShortestPathsInto(l*net.TransitNodesPerDomain, dist)
				for p, host := range world.StubHosts {
					e.coord[p*k+l] = roundUp32(dist[host])
				}
			}
		}()
	}
	wg.Wait()

	e.shardOfPeer = make([]int32, n)
	for p, host := range world.StubHosts {
		e.shardOfPeer[p] = int32(world.Domain[host] % cfg.Shards)
	}
	if cfg.Faults.enabled() {
		e.domainOfPeer = make([]uint8, n)
		for p, host := range world.StubHosts {
			e.domainOfPeer[p] = uint8(world.Domain[host])
		}
	}
	// The physical world has served its purpose; only coordinates and the
	// partition survive into the run.

	e.buildLogical(r)
	e.initPeers(r)
	if err := e.initFaults(); err != nil {
		return nil, err
	}
	e.fs = newFloodSource(e)
	return e, nil
}

// initFaults normalizes the fault schedule and allocates the churn state.
// A nil or all-zero schedule leaves the engine on the fault-free path:
// faultsOn stays false, nothing is allocated, and Run never schedules a
// timeout or crash event — which is what keeps the zero-knob schedule
// byte-identical to the pre-fault engine.
func (e *Engine) initFaults() error {
	if !e.cfg.Faults.enabled() {
		return nil
	}
	e.faultsOn = true
	e.fc = *e.cfg.Faults
	if e.fc.CrashFrac > 0 && e.fc.CrashStartMS == 0 && e.fc.CrashStopMS == 0 {
		// Default churn window: the middle third of the horizon, so the
		// stream shows pre-churn convergence, the hit, and the recovery.
		e.fc.CrashStartMS = e.cfg.HorizonMS / 3
		e.fc.CrashStopMS = 2 * e.cfg.HorizonMS / 3
	}
	inj, err := faults.NewInjector(faults.Config{
		Seed:             e.seed ^ shardFaultSalt,
		LossProb:         e.fc.LossProb,
		DupProb:          e.fc.DupProb,
		JitterMS:         e.fc.JitterMS,
		LinkFailProb:     e.fc.LinkFailProb,
		LinkFailPeriodMS: e.fc.LinkFailPeriodMS,
		// The domain partition is evaluated in-engine over domainOfPeer
		// (a flat array beats a 10⁶-entry host set); the injector only
		// owns the loss/dup/jitter/link-outage hashes.
	})
	if err != nil {
		return err
	}
	e.inj = inj
	e.dead = make([]bool, e.n)
	e.txn = make([]uint32, e.n)
	e.probeNbr = make([]uint8, e.n)
	e.failCnt = make([]uint8, e.n*maxDeg)

	// Timeout bounds from the worst-case one-way leg: estLat is at most
	// twice the largest landmark coordinate, plus the jitter cap. A probe
	// cycle is WalkHops walk legs plus the report leg; a commit round is
	// the proposal plus the acknowledgment. The +1 ms slack keeps timeout
	// firings strictly after the last possible reply, so a timeout that
	// finds its cycle still open proves the reply was dropped, not late
	// (see handleCommitTO).
	maxCoord := 0.0
	for _, c := range e.coord {
		if v := float64(c); v > maxCoord {
			maxCoord = v
		}
	}
	maxLeg := 2*maxCoord + e.fc.JitterMS
	e.probeTO = float64(e.cfg.WalkHops+1)*maxLeg + 1
	e.commitTO = 2*maxLeg + 1
	return nil
}

// shardFaultSalt separates the fault-fate hash stream from the
// world-generation and AL-estimator streams derived from the same seed.
const shardFaultSalt = 0x73686172642d666c // "shard-fl"

// crashSchedule reports whether peer p crash-stops this run and, if so,
// when: a stateless hash of (seed, peer) decides both, so the schedule is
// a pure function of the configuration — independent of shard layout, and
// computable for any peer by any shard.
func (e *Engine) crashSchedule(p int32) (at float64, crashes bool) {
	if e.fc.CrashFrac <= 0 {
		return 0, false
	}
	if u01(crashHash(e.seed, p, 1)) >= e.fc.CrashFrac {
		return 0, false
	}
	span := e.fc.CrashStopMS - e.fc.CrashStartMS
	return e.fc.CrashStartMS + u01(crashHash(e.seed, p, 2))*span, true
}

// crashHash mixes (seed, peer, salt) with a SplitMix64-style finalizer —
// the same construction as draw, but counterless, so consulting it never
// perturbs the peer's protocol randomness.
func crashHash(seed uint64, p int32, salt uint64) uint64 {
	x := seed ^ 0xc5a5e5d1b3a91f37
	for _, w := range [...]uint64{uint64(uint32(p)), salt} {
		x += w + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}

// partitioned reports whether the domain-partition cut separates peers p
// and q at time nowMS.
func (e *Engine) partitioned(p, q int32, nowMS float64) bool {
	if e.fc.PartitionStopMS <= e.fc.PartitionStartMS {
		return false
	}
	if nowMS < e.fc.PartitionStartMS || nowMS >= e.fc.PartitionStopMS {
		return false
	}
	pd := uint8(e.fc.PartitionDomain)
	return (e.domainOfPeer[p] == pd) != (e.domainOfPeer[q] == pd)
}

// buildLogical constructs the static overlay: a ring over all n slots (so
// the overlay is connected and the AL plane total) plus one initiated
// random chord per slot, skipped when either endpoint is already at
// maxDeg. Average degree ≈ 2 + 2·chords-per-peer.
func (e *Engine) buildLogical(r *rng.Rand) {
	n := e.n
	adj := make([][]int32, n)
	for s := 0; s < n; s++ {
		adj[s] = make([]int32, 0, maxDeg)
	}
	addEdge := func(a, b int32) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for s := 0; s < n; s++ {
		addEdge(int32(s), int32((s+1)%n))
	}
	hasEdge := func(a, b int32) bool {
		for _, x := range adj[a] {
			if x == b {
				return true
			}
		}
		return false
	}
	for s := 0; s < n; s++ {
		for c := 0; c < defaultChordsPerPeer; c++ {
			for try := 0; try < 8; try++ {
				t := int32(r.Intn(n))
				if t == int32(s) || len(adj[s]) >= maxDeg || len(adj[t]) >= maxDeg || hasEdge(int32(s), t) {
					continue
				}
				addEdge(int32(s), t)
				break
			}
		}
	}
	e.lOff = make([]int32, n+1)
	total := 0
	for s := 0; s < n; s++ {
		total += len(adj[s])
	}
	e.lNbr = make([]int32, 0, total)
	for s := 0; s < n; s++ {
		e.lOff[s] = int32(len(e.lNbr))
		e.lNbr = append(e.lNbr, adj[s]...)
	}
	e.lOff[n] = int32(len(e.lNbr))
}

// initPeers places peers on slots by a random permutation — the
// deliberately location-oblivious starting point PROP optimizes away from
// — and fills every occupant cache with the exact initial truth.
func (e *Engine) initPeers(r *rng.Rand) {
	n := e.n
	e.slotOf = make([]int32, n)
	perm := r.Perm(n)
	peerOf := make([]int32, n)
	for p, s := range perm {
		e.slotOf[p] = int32(s)
		peerOf[s] = int32(p)
	}
	e.ver = make([]uint32, n)
	e.pstate = make([]uint8, n)
	e.pctr = make([]uint32, n)
	e.oseq = make([]uint32, n)
	e.occRow = make([]int32, n*maxDeg)
	for p := 0; p < n; p++ {
		s := e.slotOf[p]
		row := e.lNbr[e.lOff[s]:e.lOff[s+1]]
		for i, x := range row {
			e.occRow[p*maxDeg+i] = peerOf[x]
		}
	}
}

// deg returns the logical degree of slot s.
func (e *Engine) deg(s int32) int {
	return int(e.lOff[s+1] - e.lOff[s])
}

// nbrs returns slot s's logical neighbor slots.
func (e *Engine) nbrs(s int32) []int32 {
	return e.lNbr[e.lOff[s]:e.lOff[s+1]]
}

// estLat returns the landmark upper bound on the physical latency between
// peers p and q: min over landmarks of c[l][p]+c[l][q], computed in
// float64 over the rounded-up float32 coordinates so the bound never drops
// below the true shortest-path distance — the property the cross-shard
// lookahead depends on.
func (e *Engine) estLat(p, q int32) float64 {
	if p == q {
		return 0
	}
	a := e.coord[int(p)*e.nLandmarks : (int(p)+1)*e.nLandmarks]
	b := e.coord[int(q)*e.nLandmarks : (int(q)+1)*e.nLandmarks]
	best := math.Inf(1)
	for l, av := range a {
		if v := float64(av) + float64(b[l]); v < best {
			best = v
		}
	}
	return best
}

// roundUp32 converts x to the nearest float32 at or above it.
func roundUp32(x float64) float32 {
	f := float32(x)
	if float64(f) < x {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return f
}

// draw returns the next stateless random value of peer p: a SplitMix64-
// style hash of (seed, peer, per-peer counter). Peer randomness is
// therefore a pure function of the seed and the peer's own event history —
// nothing about shard layout or scheduling can perturb it.
func (e *Engine) draw(p int32) uint64 {
	c := e.pctr[p]
	e.pctr[p] = c + 1
	x := e.seed + uint64(uint32(p))*0x9E3779B97F4A7C15 + uint64(c)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// u01 maps a draw to [0,1).
func u01(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

// Peers reports the simulated population (stub hosts of the generated
// world — Config.Peers rounded up to whole stub domains).
func (e *Engine) Peers() int { return e.n }

// ShardCount reports the number of parallel engines.
func (e *Engine) ShardCount() int { return e.nShards }

// LookaheadMS reports the conservative epoch bound derived from the
// physical preset.
func (e *Engine) LookaheadMS() float64 { return e.lookahead }

// NetConfig reports the resolved physical preset the world was generated
// from.
func (e *Engine) NetConfig() netsim.Config { return e.net }

// errReRun reports a second Run call on a consumed engine.
var errReRun = fmt.Errorf("shard: engine already consumed by Run")
