package churn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/event"
	"repro/internal/rng"
)

func TestValidate(t *testing.T) {
	good := Config{StartMS: 0, StopMS: 1000, MeanJoinIntervalMS: 10, MeanLeaveIntervalMS: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{StartMS: 100, StopMS: 50},
		{StartMS: 0, StopMS: 100, MeanJoinIntervalMS: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := NewRunner(cfg, rng.New(1)); err == nil {
			t.Errorf("NewRunner accepted bad config %d", i)
		}
	}
}

func TestJoinLeaveCountsAndWindow(t *testing.T) {
	cfg := Config{StartMS: 1000, StopMS: 61000, MeanJoinIntervalMS: 500, MeanLeaveIntervalMS: 1000}
	ru, err := NewRunner(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	var joinTimes, leaveTimes []float64
	ru.OnJoin = func(e *event.Engine) error {
		joinTimes = append(joinTimes, float64(e.Now()))
		return nil
	}
	ru.OnLeave = func(e *event.Engine) error {
		leaveTimes = append(leaveTimes, float64(e.Now()))
		return nil
	}
	e := event.New()
	ru.Start(e)
	e.RunUntil(100000)
	if ru.Joins != len(joinTimes) || ru.Leaves != len(leaveTimes) {
		t.Fatalf("counts mismatch: %d/%d vs %d/%d", ru.Joins, ru.Leaves, len(joinTimes), len(leaveTimes))
	}
	// Expected ~120 joins (60s window / 0.5s) and ~60 leaves.
	if ru.Joins < 80 || ru.Joins > 170 {
		t.Fatalf("joins = %d, expected ~120", ru.Joins)
	}
	if ru.Leaves < 35 || ru.Leaves > 95 {
		t.Fatalf("leaves = %d, expected ~60", ru.Leaves)
	}
	for _, ts := range append(joinTimes, leaveTimes...) {
		if ts < cfg.StartMS || ts >= cfg.StopMS {
			t.Fatalf("event at %v outside window [%v,%v)", ts, cfg.StartMS, cfg.StopMS)
		}
	}
	// Inter-arrival mean should be near the configured mean.
	if len(joinTimes) > 10 {
		var gaps []float64
		for i := 1; i < len(joinTimes); i++ {
			gaps = append(gaps, joinTimes[i]-joinTimes[i-1])
		}
		mean := 0.0
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		if math.Abs(mean-500) > 200 {
			t.Fatalf("join inter-arrival mean %v far from 500", mean)
		}
	}
}

func TestErrorsCounted(t *testing.T) {
	cfg := Config{StartMS: 0, StopMS: 10000, MeanJoinIntervalMS: 100}
	ru, err := NewRunner(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	ru.OnJoin = func(*event.Engine) error { return errors.New("boom") }
	e := event.New()
	ru.Start(e)
	e.RunUntil(20000)
	if ru.Errors == 0 {
		t.Fatal("errors not counted")
	}
	if ru.Joins != 0 {
		t.Fatal("failed joins counted as successes")
	}
}

func TestCrashProcess(t *testing.T) {
	cfg := Config{StartMS: 0, StopMS: 60000, MeanCrashIntervalMS: 500}
	ru, err := NewRunner(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	var crashTimes []float64
	ru.OnCrash = func(e *event.Engine) error {
		crashTimes = append(crashTimes, float64(e.Now()))
		return nil
	}
	e := event.New()
	ru.Start(e)
	e.RunUntil(100000)
	if ru.Crashes != len(crashTimes) {
		t.Fatalf("crash count %d != callback count %d", ru.Crashes, len(crashTimes))
	}
	if ru.Crashes < 80 || ru.Crashes > 170 {
		t.Fatalf("crashes = %d, expected ~120", ru.Crashes)
	}
	for _, ts := range crashTimes {
		if ts < cfg.StartMS || ts >= cfg.StopMS {
			t.Fatalf("crash at %v outside window [%v,%v)", ts, cfg.StartMS, cfg.StopMS)
		}
	}
	if ru.Joins != 0 || ru.Leaves != 0 {
		t.Fatalf("unexpected joins/leaves %d/%d", ru.Joins, ru.Leaves)
	}
}

func TestCrashFreeDrawOrderUnchanged(t *testing.T) {
	// A crash-free config must consume the RNG stream exactly as it did
	// before crash support existed: the same join/leave schedule results.
	run := func(crash float64) (joins, leaves []float64) {
		cfg := Config{StartMS: 0, StopMS: 30000, MeanJoinIntervalMS: 400, MeanLeaveIntervalMS: 700, MeanCrashIntervalMS: crash}
		ru, err := NewRunner(cfg, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		ru.OnJoin = func(e *event.Engine) error { joins = append(joins, float64(e.Now())); return nil }
		ru.OnLeave = func(e *event.Engine) error { leaves = append(leaves, float64(e.Now())); return nil }
		e := event.New()
		ru.Start(e)
		e.RunUntil(60000)
		return joins, leaves
	}
	j1, l1 := run(0)
	// With OnCrash nil, even a nonzero crash interval must not perturb the
	// join/leave draws (the crash process is never armed).
	j2, l2 := run(250)
	if len(j1) != len(j2) || len(l1) != len(l2) {
		t.Fatalf("schedule lengths diverged: %d/%d vs %d/%d", len(j1), len(l1), len(j2), len(l2))
	}
	for i := range j1 {
		if j1[i] != j2[i] {
			t.Fatalf("join %d diverged: %v vs %v", i, j1[i], j2[i])
		}
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("leave %d diverged: %v vs %v", i, l1[i], l2[i])
		}
	}
}

func TestAfterEventHook(t *testing.T) {
	cfg := Config{StartMS: 0, StopMS: 20000, MeanJoinIntervalMS: 500, MeanLeaveIntervalMS: 800}
	ru, err := NewRunner(cfg, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	ru.OnJoin = func(*event.Engine) error { return nil }
	// Leaves fail: AfterEvent must still fire for them.
	ru.OnLeave = func(*event.Engine) error { return errors.New("no") }
	ru.AfterEvent = func(e *event.Engine) {
		if e == nil {
			t.Fatal("AfterEvent got nil engine")
		}
		fired++
	}
	e := event.New()
	ru.Start(e)
	e.RunUntil(40000)
	want := ru.Joins + ru.Leaves + ru.Crashes + ru.Errors
	if want == 0 {
		t.Fatal("no churn events fired")
	}
	if fired != want {
		t.Fatalf("AfterEvent fired %d times, want %d (joins %d, failed leaves %d)", fired, want, ru.Joins, ru.Errors)
	}
}

func TestDisabledKinds(t *testing.T) {
	cfg := Config{StartMS: 0, StopMS: 10000, MeanJoinIntervalMS: 0, MeanLeaveIntervalMS: 100}
	ru, err := NewRunner(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	joins := 0
	ru.OnJoin = func(*event.Engine) error { joins++; return nil }
	ru.OnLeave = func(*event.Engine) error { return nil }
	e := event.New()
	ru.Start(e)
	e.RunUntil(20000)
	if joins != 0 {
		t.Fatal("disabled joins fired")
	}
	if ru.Leaves == 0 {
		t.Fatal("leaves did not fire")
	}
	// Nil callbacks are fine.
	ru2, _ := NewRunner(Config{StartMS: 0, StopMS: 100, MeanJoinIntervalMS: 1}, rng.New(1))
	e2 := event.New()
	ru2.Start(e2)
	e2.RunUntil(200)
}
