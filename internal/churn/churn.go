// Package churn drives the dynamic-membership experiments (§3.2's
// departure handling, §4.3's "even when churn occurs, the frequency of
// probing will reduce quickly after a short period of time").
//
// A Runner schedules Poisson join and leave events inside a churn window on
// the discrete-event engine; the experiment harness supplies the actual
// join/leave actions (overlay rewiring plus protocol registration) as
// closures, keeping this package substrate-agnostic.
//
// Key types: Config (the churn window and Poisson rates) and Runner. See
// DESIGN.md §2 ("churn") for the experiment this drives.
package churn

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/rng"
)

// Config describes one churn window.
type Config struct {
	// StartMS and StopMS bound the churn window in simulated time.
	StartMS, StopMS float64
	// MeanJoinIntervalMS is the mean of the exponential inter-arrival time
	// of joins (0 disables joins).
	MeanJoinIntervalMS float64
	// MeanLeaveIntervalMS is the mean inter-departure time of graceful
	// leaves (0 disables leaves).
	MeanLeaveIntervalMS float64
	// MeanCrashIntervalMS is the mean inter-failure time of crash-stop
	// deaths — departures that skip the deregistration a graceful leave
	// performs (0 disables crashes, the historical behavior).
	MeanCrashIntervalMS float64
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.StopMS < c.StartMS:
		return fmt.Errorf("churn: window [%v,%v) inverted", c.StartMS, c.StopMS)
	case c.MeanJoinIntervalMS < 0 || c.MeanLeaveIntervalMS < 0 || c.MeanCrashIntervalMS < 0:
		return fmt.Errorf("churn: negative mean interval")
	}
	return nil
}

// kind is the churn event family of one Poisson process.
type kind int

const (
	kindJoin kind = iota
	kindLeave
	kindCrash
)

// Runner schedules churn events. OnJoin, OnLeave, and OnCrash run inside the
// engine; any may be nil. Errors returned by the callbacks are counted, not
// fatal — a failed leave on an already-empty overlay is an experimental
// condition, not a bug.
type Runner struct {
	// OnJoin performs one node arrival.
	OnJoin func(e *event.Engine) error
	// OnLeave performs one graceful node departure.
	OnLeave func(e *event.Engine) error
	// OnCrash performs one crash-stop node death: the victim vanishes
	// without deregistering, leaving survivors with stale references.
	OnCrash func(e *event.Engine) error
	// AfterEvent, when non-nil, runs after every fired churn event —
	// successful or failed — while the engine still holds the event.
	// Incremental maintainers (e.g. metrics.ALTracker) attach here to
	// absorb each topology-mutation batch while it is still one event
	// small, instead of repairing a whole window's worth at the next
	// sample point.
	AfterEvent func(e *event.Engine)

	// Joins, Leaves, Crashes, Errors count what actually happened.
	Joins, Leaves, Crashes, Errors int

	cfg Config
	r   *rng.Rand
}

// NewRunner builds a churn runner.
func NewRunner(cfg Config, r *rng.Rand) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, r: r}, nil
}

// Start arms the first event of each enabled Poisson process. The order —
// joins, then leaves, then crashes — fixes the RNG draw order; crash-free
// configs draw exactly as they did before crashes existed.
func (ru *Runner) Start(e *event.Engine) {
	if ru.OnJoin != nil && ru.cfg.MeanJoinIntervalMS > 0 {
		ru.scheduleNext(e, kindJoin, ru.cfg.StartMS)
	}
	if ru.OnLeave != nil && ru.cfg.MeanLeaveIntervalMS > 0 {
		ru.scheduleNext(e, kindLeave, ru.cfg.StartMS)
	}
	if ru.OnCrash != nil && ru.cfg.MeanCrashIntervalMS > 0 {
		ru.scheduleNext(e, kindCrash, ru.cfg.StartMS)
	}
}

// scheduleNext arms the next event of one kind after base time.
func (ru *Runner) scheduleNext(e *event.Engine, k kind, baseMS float64) {
	var mean float64
	switch k {
	case kindJoin:
		mean = ru.cfg.MeanJoinIntervalMS
	case kindLeave:
		mean = ru.cfg.MeanLeaveIntervalMS
	case kindCrash:
		mean = ru.cfg.MeanCrashIntervalMS
	}
	at := baseMS + ru.r.ExpFloat64()*mean
	if at >= ru.cfg.StopMS {
		return
	}
	if at < float64(e.Now()) {
		at = float64(e.Now())
	}
	e.At(event.Time(at), func(en *event.Engine) {
		var err error
		switch k {
		case kindJoin:
			err = ru.OnJoin(en)
			if err == nil {
				ru.Joins++
			}
		case kindLeave:
			err = ru.OnLeave(en)
			if err == nil {
				ru.Leaves++
			}
		case kindCrash:
			err = ru.OnCrash(en)
			if err == nil {
				ru.Crashes++
			}
		}
		if err != nil {
			ru.Errors++
		}
		if ru.AfterEvent != nil {
			ru.AfterEvent(en)
		}
		ru.scheduleNext(en, k, float64(en.Now()))
	})
}
