// Package satmatch implements the SAT-Match baseline (Ren, Guo, Jiang,
// Zhang — "SAT-Match: a self-adaptive topology matching method to achieve
// low lookup latency in structured P2P overlay networks", IPDPS 2004),
// which the paper's §2 cites as the structured-system alternative to PROP.
//
// SAT-Match's move is the *jump*: a peer flood-probes a small region of the
// overlay, finds the physically closest peer in it, and relocates — leaves
// the ring and rejoins with a fresh identifier adjacent to that peer — so
// that physically close peers cluster in identifier space. The contrast
// with PROP-G is exactly the one the paper draws: relocation mints new
// identifiers (forfeiting the anonymity/security property of only ever
// trading *existing* IDs, §4.1) and re-assigns ownership of the keyspace
// between old and new neighbors (data movement), while PROP-G's pairwise
// swap does neither.
//
// Key types: Protocol and Config. See DESIGN.md §1 (SAT-Match row) and the
// "satmatch" extension in EXPERIMENTS.md.
package satmatch

import (
	"fmt"

	"repro/internal/chord"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// Config parameterizes the SAT-Match optimizer.
type Config struct {
	// PeriodMS is the probe period per peer (aligned with PROP's
	// INIT_TIMER for like-for-like comparisons).
	PeriodMS float64
	// TTL is the probe flood radius in overlay hops (the paper's "small
	// region"; 2 matches LTM's detector and PROP's default walk).
	TTL int
	// MinGainMS is the minimum physical-latency improvement over the
	// current closest ring neighbor required to trigger a jump.
	MinGainMS float64
	// IDOffset bounds the identifier distance at which a jumper lands next
	// to its target (a small random offset avoids collisions).
	IDOffset uint32
}

// DefaultConfig mirrors the common SAT-Match setup.
func DefaultConfig() Config {
	return Config{PeriodMS: 60000, TTL: 2, MinGainMS: 5, IDOffset: 1 << 16}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.PeriodMS <= 0:
		return fmt.Errorf("satmatch: PeriodMS = %v, want > 0", c.PeriodMS)
	case c.TTL < 1:
		return fmt.Errorf("satmatch: TTL = %d, want >= 1", c.TTL)
	case c.MinGainMS < 0:
		return fmt.Errorf("satmatch: MinGainMS = %v, want >= 0", c.MinGainMS)
	case c.IDOffset == 0:
		return fmt.Errorf("satmatch: IDOffset must be positive")
	}
	return nil
}

// Protocol runs SAT-Match over one Chord ring.
type Protocol struct {
	// Ring is the overlay being optimized.
	Ring *chord.Ring
	// Counters tallies probe/jump activity: Probes = rounds, Exchanges =
	// executed jumps, WalkMessages = flood probes sent.
	Counters metrics.Counters
	// Relocations counts minted identifiers (each jump = one new ID).
	Relocations int

	cfg Config
	lat func(a, b int) float64
	r   *rng.Rand
}

// New creates a SAT-Match instance over ring. lat is the physical latency
// function (host-addressed) used for probing and rejoining.
func New(ring *chord.Ring, cfg Config, lat func(a, b int) float64, r *rng.Rand) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ring == nil || lat == nil {
		return nil, fmt.Errorf("satmatch: nil ring or latency function")
	}
	return &Protocol{Ring: ring, cfg: cfg, lat: lat, r: r}, nil
}

// Start schedules every live peer's jump loop, staggered over one period.
// Jump loops survive the peer's own relocation (the new slot inherits it).
func (p *Protocol) Start(e *event.Engine) {
	for _, slot := range p.Ring.O.AliveSlots() {
		host := p.Ring.O.HostOf(slot)
		delay := event.Time(p.r.Float64() * p.cfg.PeriodMS)
		e.After(delay, func(en *event.Engine) { p.round(en, host) })
	}
}

// round is one probe-and-maybe-jump cycle for the peer on the given host.
// Identified by host, not slot: a jump changes the peer's slot.
func (p *Protocol) round(e *event.Engine, host int) {
	slot := p.Ring.O.SlotOfHost(host)
	if slot < 0 {
		return // peer left the system
	}
	p.Counters.Probes++

	// Flood-probe the TTL-hop region.
	region := p.probeRegion(slot)
	// Find the physically closest peer in the region.
	best, bestD := -1, 0.0
	for _, t := range region {
		d := p.lat(host, p.Ring.O.HostOf(t))
		if best < 0 || d < bestD {
			best, bestD = t, d
		}
	}
	jumped := false
	if best >= 0 {
		// Compare against the current closest ring neighbor (successors):
		// jumping only pays if the found peer is materially closer.
		curBest := p.closestSuccessorDistance(slot, host)
		if bestD+p.cfg.MinGainMS < curBest && !p.isRingNeighbor(slot, best) {
			jumped = p.jump(slot, host, best)
		}
	}
	_ = jumped
	e.After(event.Time(p.cfg.PeriodMS), func(en *event.Engine) { p.round(en, host) })
}

// probeRegion returns the slots within TTL logical hops of slot (excluding
// slot itself), counting flood messages.
func (p *Protocol) probeRegion(slot int) []int {
	type qe struct{ s, depth int }
	seen := map[int]bool{slot: true}
	var out []int
	queue := []qe{{slot, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth == p.cfg.TTL {
			continue
		}
		for _, nb := range p.Ring.O.Neighbors(cur.s) {
			p.Counters.WalkMessages++
			if seen[nb] || !p.Ring.O.Alive(nb) {
				continue
			}
			seen[nb] = true
			out = append(out, nb)
			queue = append(queue, qe{nb, cur.depth + 1})
		}
	}
	return out
}

// closestSuccessorDistance returns the physical distance to the nearest
// current successor, or +Inf-ish when none.
func (p *Protocol) closestSuccessorDistance(slot, host int) float64 {
	best := -1.0
	for _, s := range p.Ring.Successors(slot) {
		if !p.Ring.O.Alive(s) {
			continue
		}
		d := p.lat(host, p.Ring.O.HostOf(s))
		if best < 0 || d < best {
			best = d
		}
	}
	if best < 0 {
		return 1e18
	}
	return best
}

// isRingNeighbor reports whether t is already in slot's successor list.
func (p *Protocol) isRingNeighbor(slot, t int) bool {
	for _, s := range p.Ring.Successors(slot) {
		if s == t {
			return true
		}
	}
	return false
}

// jump relocates the peer on host next to target: leave, rejoin with an
// identifier a small random offset after the target's. Reports success.
func (p *Protocol) jump(slot, host, target int) bool {
	targetID := p.Ring.ID[target]
	if err := p.Ring.Leave(slot, p.lat); err != nil {
		return false
	}
	// A few attempts in case of ID collisions.
	for attempt := 0; attempt < 8; attempt++ {
		id := targetID + 1 + uint32(p.r.Uint64n(uint64(p.cfg.IDOffset)))
		if _, err := p.Ring.JoinWithID(host, id, p.lat); err == nil {
			p.Counters.Exchanges++
			p.Relocations++
			// The jumper and its new neighbors update entries.
			p.Counters.NotifyMessages += uint64(len(p.Ring.Successors(p.Ring.O.SlotOfHost(host))) + 1)
			return true
		}
	}
	// Could not rejoin near the target; rejoin with a random ID so the
	// peer is never lost.
	if _, err := p.Ring.Join(host, p.lat, p.r); err != nil {
		panic(fmt.Sprintf("satmatch: peer on host %d lost during jump: %v", host, err))
	}
	return false
}
