package satmatch

import (
	"math"
	"testing"

	"repro/internal/chord"
	"repro/internal/event"
	"repro/internal/rng"
)

func lat(a, b int) float64 { return math.Abs(float64(a - b)) }

func buildRing(t testing.TB, n int, seed uint64) *chord.Ring {
	t.Helper()
	r := rng.New(seed)
	hosts := r.Perm(n * 10)[:n]
	ring, err := chord.Build(hosts, chord.DefaultConfig(), lat, r)
	if err != nil {
		t.Fatal(err)
	}
	return ring
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{PeriodMS: 0, TTL: 2, IDOffset: 1},
		{PeriodMS: 1, TTL: 0, IDOffset: 1},
		{PeriodMS: 1, TTL: 2, MinGainMS: -1, IDOffset: 1},
		{PeriodMS: 1, TTL: 2, IDOffset: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := New(&chord.Ring{}, cfg, lat, rng.New(1)); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
	if _, err := New(nil, DefaultConfig(), lat, rng.New(1)); err == nil {
		t.Error("nil ring accepted")
	}
	ring := buildRing(t, 8, 1)
	if _, err := New(ring, DefaultConfig(), nil, rng.New(1)); err == nil {
		t.Error("nil latency accepted")
	}
}

func TestSATMatchReducesLinkLatency(t *testing.T) {
	ring := buildRing(t, 200, 42)
	before := ring.O.MeanLinkLatency()
	p, err := New(ring, DefaultConfig(), lat, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(30 * 60000)
	after := ring.O.MeanLinkLatency()
	if p.Relocations == 0 {
		t.Fatal("no jumps executed")
	}
	if after >= before {
		t.Fatalf("SAT-Match did not improve link latency: %.1f -> %.1f", before, after)
	}
}

func TestJumpsPreserveMembershipAndRouting(t *testing.T) {
	ring := buildRing(t, 150, 9)
	hostsBefore := map[int]bool{}
	for _, h := range ring.O.Hosts() {
		hostsBefore[h] = true
	}
	p, err := New(ring, DefaultConfig(), lat, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(20 * 60000)
	// Every machine is still a ring member (jumps relocate, never lose).
	if ring.Size() != 150 {
		t.Fatalf("ring size %d after jumps, want 150", ring.Size())
	}
	for _, h := range ring.O.Hosts() {
		if !hostsBefore[h] {
			t.Fatalf("unknown host %d appeared", h)
		}
	}
	// Lookups remain correct.
	r := rng.New(5)
	alive := ring.O.AliveSlots()
	for i := 0; i < 300; i++ {
		key := chord.RandomKey(r)
		src := alive[r.Intn(len(alive))]
		res, err := ring.Lookup(src, key, nil)
		if err != nil {
			t.Fatalf("lookup after jumps: %v", err)
		}
		if res.Owner != ring.Owner(key) {
			t.Fatal("lookup reached wrong owner after jumps")
		}
	}
}

func TestRelocationsMintNewIDs(t *testing.T) {
	// The paper's §4.1 contrast: PROP-G only permutes existing identifiers;
	// SAT-Match creates ones never seen before.
	ring := buildRing(t, 100, 21)
	idsBefore := map[uint32]bool{}
	for _, s := range ring.O.AliveSlots() {
		idsBefore[ring.ID[s]] = true
	}
	p, err := New(ring, DefaultConfig(), lat, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(20 * 60000)
	if p.Relocations == 0 {
		t.Skip("no jumps this seed")
	}
	minted := 0
	for _, s := range ring.O.AliveSlots() {
		if !idsBefore[ring.ID[s]] {
			minted++
		}
	}
	if minted == 0 {
		t.Fatal("jumps executed but no new identifiers minted")
	}
}

func TestCounterspopulated(t *testing.T) {
	ring := buildRing(t, 80, 2)
	p, err := New(ring, DefaultConfig(), lat, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(5 * 60000)
	if p.Counters.Probes == 0 || p.Counters.WalkMessages == 0 {
		t.Fatalf("counters empty: %+v", p.Counters)
	}
}
