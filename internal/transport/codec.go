package transport

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire format (big-endian, canonical: one Message has exactly one encoding):
//
//	magic(1) version(1) type(1) ttl(1) epoch(4) seq(8) src(8) dst(8)
//	key(4) pathLen(2) bodyLen(4) path[pathLen]×4 body[bodyLen]
//
// Path entries are int32 slot IDs; src/dst are int64 host IDs. Decode
// rejects anything malformed — bad magic, unknown version or type, length
// fields that disagree with the frame — with an error, never a panic, and
// requires the frame length to match exactly (no trailing garbage).
const (
	codecMagic   = 0xB5
	codecVersion = 1
	headerLen    = 1 + 1 + 1 + 1 + 4 + 8 + 8 + 8 + 4 + 2 + 4

	// MaxPath bounds a walk path on the wire; PROP walks are NHops long
	// (default 2), so this is a generous safety valve, not a protocol limit.
	MaxPath = 1024
	// MaxBody bounds the opaque payload so a frame always fits a UDP
	// datagram with headroom.
	MaxBody = 32 * 1024
)

// Encode serializes m into a fresh frame. It rejects messages that cannot
// round-trip: unknown types, out-of-range host or slot IDs, oversized paths
// or bodies.
func Encode(m Message) ([]byte, error) {
	if !m.Type.Valid() {
		return nil, fmt.Errorf("transport: encode: unknown type %d", m.Type)
	}
	if len(m.Path) > MaxPath {
		return nil, fmt.Errorf("transport: encode: path of %d entries exceeds %d", len(m.Path), MaxPath)
	}
	if len(m.Body) > MaxBody {
		return nil, fmt.Errorf("transport: encode: body of %d bytes exceeds %d", len(m.Body), MaxBody)
	}
	for i, s := range m.Path {
		if s < math.MinInt32 || s > math.MaxInt32 {
			return nil, fmt.Errorf("transport: encode: path[%d] = %d out of int32 range", i, s)
		}
	}
	buf := make([]byte, 0, headerLen+4*len(m.Path)+len(m.Body))
	buf = append(buf, codecMagic, codecVersion, byte(m.Type), m.TTL)
	buf = binary.BigEndian.AppendUint32(buf, m.Epoch)
	buf = binary.BigEndian.AppendUint64(buf, m.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(m.Src)))
	buf = binary.BigEndian.AppendUint64(buf, uint64(int64(m.Dst)))
	buf = binary.BigEndian.AppendUint32(buf, m.Key)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Path)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Body)))
	for _, s := range m.Path {
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(s)))
	}
	buf = append(buf, m.Body...)
	return buf, nil
}

// Decode parses one frame. Truncated, corrupt, oversized, or padded frames
// are rejected with an error; a successful decode consumed the entire input
// and re-encodes byte-identically (the FuzzCodecRoundTrip contract).
func Decode(frame []byte) (Message, error) {
	var m Message
	if len(frame) < headerLen {
		return m, fmt.Errorf("transport: decode: frame of %d bytes shorter than header %d", len(frame), headerLen)
	}
	if frame[0] != codecMagic {
		return m, fmt.Errorf("transport: decode: bad magic %#x", frame[0])
	}
	if frame[1] != codecVersion {
		return m, fmt.Errorf("transport: decode: unknown version %d", frame[1])
	}
	m.Type = Type(frame[2])
	if !m.Type.Valid() {
		return m, fmt.Errorf("transport: decode: unknown type %d", frame[2])
	}
	m.TTL = frame[3]
	m.Epoch = binary.BigEndian.Uint32(frame[4:])
	m.Seq = binary.BigEndian.Uint64(frame[8:])
	m.Src = int(int64(binary.BigEndian.Uint64(frame[16:])))
	m.Dst = int(int64(binary.BigEndian.Uint64(frame[24:])))
	m.Key = binary.BigEndian.Uint32(frame[32:])
	pathLen := int(binary.BigEndian.Uint16(frame[36:]))
	bodyLen := int(binary.BigEndian.Uint32(frame[38:]))
	if pathLen > MaxPath {
		return m, fmt.Errorf("transport: decode: path of %d entries exceeds %d", pathLen, MaxPath)
	}
	if bodyLen > MaxBody {
		return m, fmt.Errorf("transport: decode: body of %d bytes exceeds %d", bodyLen, MaxBody)
	}
	want := headerLen + 4*pathLen + bodyLen
	if len(frame) != want {
		return m, fmt.Errorf("transport: decode: frame is %d bytes, header demands %d", len(frame), want)
	}
	if pathLen > 0 {
		m.Path = make([]int, pathLen)
		for i := range m.Path {
			m.Path[i] = int(int32(binary.BigEndian.Uint32(frame[headerLen+4*i:])))
		}
	}
	if bodyLen > 0 {
		m.Body = append([]byte(nil), frame[headerLen+4*pathLen:]...)
	}
	return m, nil
}
