package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Read-error backoff: a persistent non-close error from ReadFromUDP (a
// revoked interface, an fd pushed into an error state) must not spin the
// read loop hot. Each consecutive error sleeps twice as long as the last,
// capped at readBackoffMax; after readErrorBudget consecutive errors the
// loop gives up and closes the endpoint — at that point the socket is not
// coming back, and a closed endpoint is the honest signal (callers see the
// Recv channel close, exactly as on Close).
const (
	readBackoffMin  = time.Millisecond
	readBackoffMax  = 250 * time.Millisecond
	readErrorBudget = 32
)

// UDPNetwork maps host IDs to UDP socket addresses. Each Open binds a real
// kernel socket on the configured interface; peers are introduced with
// AddPeer (the static bootstrap list of a two-process smoke test) and
// learned dynamically from the Src field of inbound traffic, so a reply
// never needs a pre-registered route.
type UDPNetwork struct {
	// BindIP is the interface to bind (default 127.0.0.1).
	BindIP string

	mu    sync.Mutex
	peers map[int]*net.UDPAddr
	eps   map[int]*UDPEndpoint

	// obs instruments, network-wide totals across endpoints (nil-safe).
	obsOverflows  *obs.Counter
	obsRebinds    *obs.Counter
	obsReadErrors *obs.Counter
}

// NewUDPNetwork builds a network binding sockets on bindIP ("" = loopback).
func NewUDPNetwork(bindIP string) *UDPNetwork {
	if bindIP == "" {
		bindIP = "127.0.0.1"
	}
	return &UDPNetwork{
		BindIP: bindIP,
		peers:  make(map[int]*net.UDPAddr),
		eps:    make(map[int]*UDPEndpoint),
	}
}

// SetInstruments attaches obs counters for mailbox overflows, peer address
// rebinds, and socket read errors. Totals aggregate across every endpoint
// the network opens; per-endpoint breakdowns stay available through
// UDPEndpoint.Counters. Nil counters (or never calling this) keep the
// zero-cost disabled path.
func (u *UDPNetwork) SetInstruments(overflows, rebinds, readErrors *obs.Counter) {
	u.mu.Lock()
	u.obsOverflows = overflows
	u.obsRebinds = rebinds
	u.obsReadErrors = readErrors
	u.mu.Unlock()
}

// instruments snapshots the obs counters under the lock.
func (u *UDPNetwork) instruments() (overflows, rebinds, readErrors *obs.Counter) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.obsOverflows, u.obsRebinds, u.obsReadErrors
}

// AddPeer registers the socket address of a host reachable on the wire.
func (u *UDPNetwork) AddPeer(host int, addr string) error {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: udp peer %d: %v", host, err)
	}
	u.mu.Lock()
	u.peers[host] = a
	u.mu.Unlock()
	return nil
}

// Addr returns the bound socket address of a locally opened host.
func (u *UDPNetwork) Addr(host int) (string, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	ep, ok := u.eps[host]
	if !ok {
		return "", false
	}
	return ep.conn.LocalAddr().String(), true
}

// Open binds a fresh UDP socket (port 0: kernel-assigned) for host and
// starts its read loop.
func (u *UDPNetwork) Open(host int) (Endpoint, error) { return u.OpenAt(host, 0) }

// OpenAt is Open on an explicit port — the well-known address a two-process
// deployment advertises (0 keeps the kernel-assigned behavior).
func (u *UDPNetwork) OpenAt(host, port int) (Endpoint, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, dup := u.eps[host]; dup {
		return nil, fmt.Errorf("transport: udp host %d already open", host)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(u.BindIP), Port: port})
	if err != nil {
		return nil, fmt.Errorf("transport: udp bind for host %d: %v", host, err)
	}
	ep := &UDPEndpoint{
		net:  u,
		host: host,
		conn: conn,
		recv: make(chan Inbound, 1024),
	}
	u.eps[host] = ep
	u.peers[host] = conn.LocalAddr().(*net.UDPAddr)
	ep.wg.Add(1)
	go ep.readLoop()
	return ep, nil
}

// lookup resolves a host to its last known socket address.
func (u *UDPNetwork) lookup(host int) *net.UDPAddr {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.peers[host]
}

// learn records the observed source address of host's traffic, so replies
// and future sends route without static configuration. The route only
// changes when the observed address actually differs from the recorded one
// — every datagram used to rewrite the entry unconditionally, which let any
// flapping (or spoofed) Src silently hijack a peer's route with nothing to
// show for it. Now an unchanged address is a no-op and learn reports
// whether an existing route was rebound, so flapping shows up in the
// AddrRebinds counter.
func (u *UDPNetwork) learn(host int, addr *net.UDPAddr) (rebound bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	old := u.peers[host]
	if old != nil && old.Port == addr.Port && old.Zone == addr.Zone && old.IP.Equal(addr.IP) {
		return false
	}
	u.peers[host] = addr
	return old != nil
}

// drop detaches a closed endpoint.
func (u *UDPNetwork) drop(ep *UDPEndpoint) {
	u.mu.Lock()
	if u.eps[ep.host] == ep {
		delete(u.eps, ep.host)
	}
	u.mu.Unlock()
}

// Counters is a transport endpoint's delivery-failure accounting: the
// events that datagram semantics would otherwise swallow without a trace.
// Snapshot via UDPEndpoint.Counters / Loopback endpoint Counters.
type Counters struct {
	// Overflows counts inbound messages dropped because the receive mailbox
	// was full. The mailbox is bounded (1024 deliveries): a receiver that
	// cannot drain the pump fast enough sheds load here, exactly like a
	// kernel socket buffer — senders are never blocked and never told.
	Overflows uint64
	// ReadErrors counts transient socket read failures survived by the
	// read loop's backoff (UDP only).
	ReadErrors uint64
	// AddrRebinds counts inbound datagrams whose Src rebound an existing
	// peer route to a new socket address (UDP only). A steadily climbing
	// value means a peer is flapping between addresses — or something is
	// spoofing its Src.
	AddrRebinds uint64
}

// UDPEndpoint is one host's kernel socket: frames go out as single
// datagrams, the read loop decodes inbound datagrams (dropping malformed
// ones) and learns peer addresses from their Src field. The receive mailbox
// is bounded; Counters reports what was shed.
type UDPEndpoint struct {
	net  *UDPNetwork
	host int
	conn *net.UDPConn
	recv chan Inbound

	overflows   atomic.Uint64
	readErrors  atomic.Uint64
	addrRebinds atomic.Uint64

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// Host returns the host ID this endpoint answers for.
func (ep *UDPEndpoint) Host() int { return ep.host }

// Counters snapshots the endpoint's delivery-failure accounting.
func (ep *UDPEndpoint) Counters() Counters {
	return Counters{
		Overflows:   ep.overflows.Load(),
		ReadErrors:  ep.readErrors.Load(),
		AddrRebinds: ep.addrRebinds.Load(),
	}
}

// Send encodes m and ships it as one datagram. Unknown destinations are
// datagram semantics: the message vanishes without error.
func (ep *UDPEndpoint) Send(to int, m Message) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return fmt.Errorf("transport: send on closed udp endpoint %d", ep.host)
	}
	ep.mu.Unlock()
	m.Src, m.Dst = ep.host, to
	frame, err := Encode(m)
	if err != nil {
		return err
	}
	addr := ep.net.lookup(to)
	if addr == nil {
		return nil
	}
	_, err = ep.conn.WriteToUDP(frame, addr)
	if err != nil && !ep.isClosed() {
		return fmt.Errorf("transport: udp send %d→%d: %v", ep.host, to, err)
	}
	return nil
}

// Recv returns the delivery channel.
func (ep *UDPEndpoint) Recv() <-chan Inbound { return ep.recv }

// Close shuts the socket and read loop; idempotent (including after the
// read loop closed the endpoint itself on an exhausted error budget).
func (ep *UDPEndpoint) Close() error {
	ep.mu.Lock()
	already := ep.closed
	ep.closed = true
	ep.mu.Unlock()
	if !already {
		ep.conn.Close()
	}
	ep.wg.Wait()
	ep.net.drop(ep)
	return nil
}

func (ep *UDPEndpoint) isClosed() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.closed
}

// giveUp closes the endpoint from inside the read loop after the read-error
// budget is exhausted. It must not wait on the loop's own WaitGroup; the
// loop returns right after, running the deferred recv close.
func (ep *UDPEndpoint) giveUp() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.closed = true
	ep.mu.Unlock()
	ep.conn.Close()
	ep.net.drop(ep)
}

func (ep *UDPEndpoint) readLoop() {
	defer ep.wg.Done()
	defer close(ep.recv)
	buf := make([]byte, 64*1024)
	backoff := readBackoffMin
	consecutive := 0
	for {
		n, from, err := ep.conn.ReadFromUDP(buf)
		if err != nil {
			if ep.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			ep.readErrors.Add(1)
			_, _, obsReadErrors := ep.net.instruments()
			obsReadErrors.Inc()
			consecutive++
			if consecutive >= readErrorBudget {
				ep.giveUp()
				return
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > readBackoffMax {
				backoff = readBackoffMax
			}
			continue
		}
		consecutive = 0
		backoff = readBackoffMin
		m, err := Decode(buf[:n])
		if err != nil {
			continue // malformed datagram: drop, as any UDP service must
		}
		if ep.net.learn(m.Src, from) {
			ep.addrRebinds.Add(1)
			_, obsRebinds, _ := ep.net.instruments()
			obsRebinds.Inc()
		}
		select {
		case ep.recv <- Inbound{Msg: m}:
		default:
			// Bounded mailbox: the receiver is not draining; shed the
			// datagram and account for it instead of blocking the socket.
			ep.overflows.Add(1)
			obsOverflows, _, _ := ep.net.instruments()
			obsOverflows.Inc()
		}
	}
}
