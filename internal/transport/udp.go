package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// UDPNetwork maps host IDs to UDP socket addresses. Each Open binds a real
// kernel socket on the configured interface; peers are introduced with
// AddPeer (the static bootstrap list of a two-process smoke test) and
// learned dynamically from the Src field of inbound traffic, so a reply
// never needs a pre-registered route.
type UDPNetwork struct {
	// BindIP is the interface to bind (default 127.0.0.1).
	BindIP string

	mu    sync.Mutex
	peers map[int]*net.UDPAddr
	eps   map[int]*UDPEndpoint
}

// NewUDPNetwork builds a network binding sockets on bindIP ("" = loopback).
func NewUDPNetwork(bindIP string) *UDPNetwork {
	if bindIP == "" {
		bindIP = "127.0.0.1"
	}
	return &UDPNetwork{
		BindIP: bindIP,
		peers:  make(map[int]*net.UDPAddr),
		eps:    make(map[int]*UDPEndpoint),
	}
}

// AddPeer registers the socket address of a host reachable on the wire.
func (u *UDPNetwork) AddPeer(host int, addr string) error {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: udp peer %d: %v", host, err)
	}
	u.mu.Lock()
	u.peers[host] = a
	u.mu.Unlock()
	return nil
}

// Addr returns the bound socket address of a locally opened host.
func (u *UDPNetwork) Addr(host int) (string, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	ep, ok := u.eps[host]
	if !ok {
		return "", false
	}
	return ep.conn.LocalAddr().String(), true
}

// Open binds a fresh UDP socket (port 0: kernel-assigned) for host and
// starts its read loop.
func (u *UDPNetwork) Open(host int) (Endpoint, error) { return u.OpenAt(host, 0) }

// OpenAt is Open on an explicit port — the well-known address a two-process
// deployment advertises (0 keeps the kernel-assigned behavior).
func (u *UDPNetwork) OpenAt(host, port int) (Endpoint, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, dup := u.eps[host]; dup {
		return nil, fmt.Errorf("transport: udp host %d already open", host)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(u.BindIP), Port: port})
	if err != nil {
		return nil, fmt.Errorf("transport: udp bind for host %d: %v", host, err)
	}
	ep := &UDPEndpoint{
		net:  u,
		host: host,
		conn: conn,
		recv: make(chan Inbound, 1024),
	}
	u.eps[host] = ep
	u.peers[host] = conn.LocalAddr().(*net.UDPAddr)
	ep.wg.Add(1)
	go ep.readLoop()
	return ep, nil
}

// lookup resolves a host to its last known socket address.
func (u *UDPNetwork) lookup(host int) *net.UDPAddr {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.peers[host]
}

// learn records the observed source address of host's traffic, so replies
// and future sends route without static configuration.
func (u *UDPNetwork) learn(host int, addr *net.UDPAddr) {
	u.mu.Lock()
	u.peers[host] = addr
	u.mu.Unlock()
}

// drop detaches a closed endpoint.
func (u *UDPNetwork) drop(ep *UDPEndpoint) {
	u.mu.Lock()
	if u.eps[ep.host] == ep {
		delete(u.eps, ep.host)
	}
	u.mu.Unlock()
}

// UDPEndpoint is one host's kernel socket: frames go out as single
// datagrams, the read loop decodes inbound datagrams (dropping malformed
// ones) and learns peer addresses from their Src field.
type UDPEndpoint struct {
	net  *UDPNetwork
	host int
	conn *net.UDPConn
	recv chan Inbound

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// Host returns the host ID this endpoint answers for.
func (ep *UDPEndpoint) Host() int { return ep.host }

// Send encodes m and ships it as one datagram. Unknown destinations are
// datagram semantics: the message vanishes without error.
func (ep *UDPEndpoint) Send(to int, m Message) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return fmt.Errorf("transport: send on closed udp endpoint %d", ep.host)
	}
	ep.mu.Unlock()
	m.Src, m.Dst = ep.host, to
	frame, err := Encode(m)
	if err != nil {
		return err
	}
	addr := ep.net.lookup(to)
	if addr == nil {
		return nil
	}
	_, err = ep.conn.WriteToUDP(frame, addr)
	if err != nil && !ep.isClosed() {
		return fmt.Errorf("transport: udp send %d→%d: %v", ep.host, to, err)
	}
	return nil
}

// Recv returns the delivery channel.
func (ep *UDPEndpoint) Recv() <-chan Inbound { return ep.recv }

// Close shuts the socket and read loop; idempotent.
func (ep *UDPEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	ep.mu.Unlock()
	ep.conn.Close()
	ep.wg.Wait()
	ep.net.drop(ep)
	return nil
}

func (ep *UDPEndpoint) isClosed() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.closed
}

func (ep *UDPEndpoint) readLoop() {
	defer ep.wg.Done()
	defer close(ep.recv)
	buf := make([]byte, 64*1024)
	for {
		n, from, err := ep.conn.ReadFromUDP(buf)
		if err != nil {
			if ep.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		m, err := Decode(buf[:n])
		if err != nil {
			continue // malformed datagram: drop, as any UDP service must
		}
		ep.net.learn(m.Src, from)
		select {
		case ep.recv <- Inbound{Msg: m}:
		default:
		}
	}
}
