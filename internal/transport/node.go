package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// NodeStats counts a node's liveness machinery at work. All fields are
// atomics; read them through Node.Stats.
type NodeStats struct {
	// PingsSent counts TPing requests issued.
	PingsSent uint64
	// Timeouts counts call attempts that expired without a response.
	Timeouts uint64
	// Retries counts retransmissions after a timeout.
	Retries uint64
	// StaleReplies counts responses that arrived after their call gave up
	// or completed — the live stale-timer race, absorbed not re-processed.
	StaleReplies uint64
	// DupReplies counts duplicate responses absorbed by the seq guard.
	DupReplies uint64
}

// Node wraps an Endpoint with the message discipline every live PROP peer
// needs: a pump goroutine that answers pings and dispatches inbound
// traffic, and request/response calls with per-attempt deadlines, bounded
// retransmission with exponential back-off, and sequence-number matching
// that absorbs duplicate and stale replies.
type Node struct {
	ep Endpoint

	mu      sync.Mutex
	pending map[uint64]chan Inbound
	handler func(Inbound)

	seq    atomic.Uint64
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup

	pings        atomic.Uint64
	timeouts     atomic.Uint64
	retries      atomic.Uint64
	staleReplies atomic.Uint64
	dupReplies   atomic.Uint64
}

// NewNode starts the pump over ep. Close the node, not the endpoint.
func NewNode(ep Endpoint) *Node {
	n := &Node{
		ep:      ep,
		pending: make(map[uint64]chan Inbound),
		closed:  make(chan struct{}),
	}
	n.wg.Add(1)
	go n.pump()
	return n
}

// Host returns the underlying endpoint's host ID.
func (n *Node) Host() int { return n.ep.Host() }

// Handle installs the handler for inbound traffic the pump does not consume
// itself (everything but TPing and matched replies). The handler runs on
// the pump goroutine: it must not block, or pings stall — dispatch slow
// work (anything taking a lock or doing its own calls) to a goroutine.
func (n *Node) Handle(h func(Inbound)) {
	n.mu.Lock()
	n.handler = h
	n.mu.Unlock()
}

// Send transmits a one-way message (no response matching).
func (n *Node) Send(to int, m Message) error { return n.ep.Send(to, m) }

// Stats snapshots the liveness counters.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		PingsSent:    n.pings.Load(),
		Timeouts:     n.timeouts.Load(),
		Retries:      n.retries.Load(),
		StaleReplies: n.staleReplies.Load(),
		DupReplies:   n.dupReplies.Load(),
	}
}

// Close stops the pump and fails pending calls. Idempotent.
func (n *Node) Close() {
	n.once.Do(func() {
		close(n.closed)
		n.ep.Close()
	})
	n.wg.Wait()
}

func (n *Node) pump() {
	defer n.wg.Done()
	for in := range n.ep.Recv() {
		switch in.Msg.Type {
		case TPing:
			// Echo Seq/Key/Epoch; the body carries the observed one-way
			// delay so the origin can sum a virtual RTT without sleeping.
			pong := Message{
				Type:  TPong,
				Seq:   in.Msg.Seq,
				Key:   in.Msg.Key,
				Epoch: in.Msg.Epoch,
				Body:  encodeDelay(in.DelayMS, in.Virtual),
			}
			_ = n.ep.Send(in.Msg.Src, pong)
		case TPong, TWalkReply, TMeasureReply:
			n.mu.Lock()
			ch := n.pending[in.Msg.Seq]
			n.mu.Unlock()
			if ch == nil {
				n.staleReplies.Add(1)
				continue
			}
			select {
			case ch <- in:
			default:
				n.dupReplies.Add(1)
			}
		default:
			n.mu.Lock()
			h := n.handler
			n.mu.Unlock()
			if h != nil {
				h(in)
			}
		}
	}
}

// Call sends m to host to and waits for the matching reply. Each attempt
// gets deadline timeout; a lost exchange retransmits up to retries times
// with the deadline doubling per attempt (exponential back-off). The same
// sequence number is reused across retransmissions, so a late reply to an
// earlier attempt still completes the call — and replies arriving after
// completion are absorbed as stale.
func (n *Node) Call(to int, m Message, timeout time.Duration, retries int) (Inbound, error) {
	if timeout <= 0 {
		return Inbound{}, fmt.Errorf("transport: call needs a positive timeout")
	}
	seq := n.seq.Add(1)
	m.Seq = seq
	ch := make(chan Inbound, 1)
	n.mu.Lock()
	n.pending[seq] = ch
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.pending, seq)
		n.mu.Unlock()
	}()

	deadline := timeout
	for attempt := 0; ; attempt++ {
		if err := n.ep.Send(to, m); err != nil {
			return Inbound{}, err
		}
		timer := time.NewTimer(deadline)
		select {
		case in := <-ch:
			timer.Stop()
			return in, nil
		case <-n.closed:
			timer.Stop()
			return Inbound{}, fmt.Errorf("transport: node %d closed during call to %d", n.ep.Host(), to)
		case <-timer.C:
			n.timeouts.Add(1)
			if attempt >= retries {
				return Inbound{}, fmt.Errorf("transport: call %d→%d type %d timed out after %d attempts",
					n.ep.Host(), to, m.Type, attempt+1)
			}
			n.retries.Add(1)
			deadline *= 2
		}
	}
}

// Ping measures the round-trip time to host to in milliseconds. Over the
// loopback the result is the exact virtual RTT (both legs' DelayMS summed);
// over UDP it is wall-clock elapsed time. Timeout and retries follow Call's
// retransmission discipline.
func (n *Node) Ping(to int, timeout time.Duration, retries int) (float64, error) {
	n.pings.Add(1)
	start := time.Now()
	in, err := n.Call(to, Message{Type: TPing}, timeout, retries)
	if err != nil {
		return 0, err
	}
	if fwd, virtual, ok := decodeDelay(in.Msg.Body); ok && virtual && in.Virtual {
		return fwd + in.DelayMS, nil
	}
	return float64(time.Since(start)) / float64(time.Millisecond), nil
}

// encodeDelay frames a one-way delay observation: 1 flag byte (virtual) + 8
// bytes of float64 bits. TMeasureReply reuses it for measured RTTs.
func encodeDelay(delayMS float64, virtual bool) []byte {
	b := make([]byte, 9)
	if virtual {
		b[0] = 1
	}
	binary.BigEndian.PutUint64(b[1:], math.Float64bits(delayMS))
	return b
}

// decodeDelay parses an encodeDelay frame.
func decodeDelay(b []byte) (delayMS float64, virtual bool, ok bool) {
	if len(b) != 9 || b[0] > 1 {
		return 0, false, false
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b[1:])), b[0] == 1, true
}
