package transport

import (
	"bytes"
	"testing"
)

func sampleMessages() []Message {
	return []Message{
		{Type: TPing},
		{Type: TPong, Seq: 42, Key: 7, Epoch: 3, Body: encodeDelay(12.5, true)},
		{Type: TWalk, TTL: 2, Src: 5, Dst: 9, Key: 5, Path: []int{3, 8, 11}},
		{Type: TWalkReply, TTL: 1, Seq: 99, Path: []int{0, -1, 1 << 30}},
		{Type: TMeasure, Src: -7, Dst: 1<<40 + 3, Key: 0xFFFFFFFF},
		{Type: TMeasureReply, TTL: 0, Body: []byte{}},
		{Type: TData, Body: bytes.Repeat([]byte{0xAB}, 1000)},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for i, m := range sampleMessages() {
		frame, err := Encode(m)
		if err != nil {
			t.Fatalf("msg %d: encode: %v", i, err)
		}
		got, err := Decode(frame)
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		re, err := Encode(got)
		if err != nil {
			t.Fatalf("msg %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(frame, re) {
			t.Fatalf("msg %d: canonical encoding violated:\n  %x\n  %x", i, frame, re)
		}
	}
}

func TestCodecCanonicalNilVsEmpty(t *testing.T) {
	// nil and empty Path/Body must encode identically (the canonical form).
	a, err := Encode(Message{Type: TData})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(Message{Type: TData, Path: []int{}, Body: []byte{}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("nil vs empty slices encode differently:\n  %x\n  %x", a, b)
	}
	m, err := Decode(a)
	if err != nil {
		t.Fatal(err)
	}
	if m.Path != nil || m.Body != nil {
		t.Fatalf("decode of empty path/body must yield nil slices, got %#v", m)
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	good, err := Encode(Message{Type: TWalk, TTL: 2, Path: []int{1, 2}, Body: []byte("xyz")})
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":        {},
		"short header": good[:headerLen-1],
		"truncated":    good[:len(good)-1],
		"padded":       append(append([]byte(nil), good...), 0),
	}
	badMagic := append([]byte(nil), good...)
	badMagic[0] = 0x00
	cases["bad magic"] = badMagic
	badVersion := append([]byte(nil), good...)
	badVersion[1] = 99
	cases["bad version"] = badVersion
	badType := append([]byte(nil), good...)
	badType[2] = byte(maxType) + 1
	cases["bad type"] = badType
	hugePath := append([]byte(nil), good...)
	hugePath[36], hugePath[37] = 0xFF, 0xFF
	cases["huge pathLen"] = hugePath
	hugeBody := append([]byte(nil), good...)
	hugeBody[38], hugeBody[39], hugeBody[40], hugeBody[41] = 0xFF, 0xFF, 0xFF, 0xFF
	cases["huge bodyLen"] = hugeBody

	for name, frame := range cases {
		if _, err := Decode(frame); err == nil {
			t.Errorf("%s: decode accepted a malformed frame", name)
		}
	}
}

func TestEncodeRejectsUnencodable(t *testing.T) {
	cases := map[string]Message{
		"zero type":      {},
		"unknown type":   {Type: maxType + 1},
		"oversize path":  {Type: TWalk, Path: make([]int, MaxPath+1)},
		"oversize body":  {Type: TData, Body: make([]byte, MaxBody+1)},
		"path overflow":  {Type: TWalk, Path: []int{1 << 40}},
		"path underflow": {Type: TWalk, Path: []int{-(1 << 40)}},
	}
	for name, m := range cases {
		if _, err := Encode(m); err == nil {
			t.Errorf("%s: encode accepted an unencodable message", name)
		}
	}
}

func TestDelayFraming(t *testing.T) {
	for _, d := range []float64{0, 0.5, 12.25, 1e9} {
		for _, v := range []bool{false, true} {
			got, virtual, ok := decodeDelay(encodeDelay(d, v))
			if !ok || got != d || virtual != v {
				t.Fatalf("delay %v virtual %v: round-trip gave %v %v %v", d, v, got, virtual, ok)
			}
		}
	}
	for _, bad := range [][]byte{nil, {1}, {2, 0, 0, 0, 0, 0, 0, 0, 0}, make([]byte, 10)} {
		if _, _, ok := decodeDelay(bad); ok {
			t.Fatalf("decodeDelay accepted malformed frame %x", bad)
		}
	}
}
