// Package transport is the messaging layer of the live PROP runtime: a
// small datagram abstraction with a binary wire codec, per-endpoint receive
// queues, request/response calls with deadlines and bounded retransmission,
// and per-link fault hooks.
//
// Two implementations ship. Loopback is an in-process network whose
// deliveries are instantaneous but carry a *virtual* one-way delay (the
// sim's latency model realized as transport metadata) and whose fault
// verdicts come from internal/faults' stateless per-message hash — so a
// seeded loopback run drops the same messages on every repetition, which is
// what lets the dhttest conformance suites and figR-style loss scenarios
// reproduce deterministically outside the simulator. UDP is the real thing:
// datagrams over the kernel on localhost or beyond, with wall-clock RTTs.
//
// The protocols above this package (internal/propnode, the dhttest live
// backend) address peers by host ID, never by socket: the slot/host model's
// host identifiers are the addresses, and each implementation maps them to
// its own notion of a wire endpoint.
//
// Key types: Message and its codec (Encode/Decode), Endpoint/Network,
// Loopback, UDPEndpoint, and Node (the message pump with Ping/Call). See
// DESIGN.md §10.
package transport

// Type discriminates wire messages.
type Type uint8

const (
	// TPing requests an echo; the pump answers it with a TPong carrying the
	// observed one-way delay so virtual RTTs can be summed without sleeping.
	TPing Type = 1 + iota
	// TPong answers a TPing, echoing its Seq/Key/Epoch.
	TPong
	// TWalk is one hop of a PROP probing random walk: Path holds the slots
	// visited so far, TTL the hops remaining, Key the origin host to reply to.
	TWalk
	// TWalkReply closes a walk back to its origin: Path is the final walk
	// path, TTL 1 for success and 0 for a dead-ended walk.
	TWalkReply
	// TMeasure asks the receiving node to ping a third host and report the
	// RTT — the "each side probes its own neighborhood" measurement RPC of
	// the exchange evaluation (§4.3).
	TMeasure
	// TMeasureReply reports a TMeasure result in its Body (codecDelay
	// framing); TTL 1 on success, 0 when the measurement timed out.
	TMeasureReply
	// TData carries an opaque payload for tooling and tests.
	TData

	maxType = TData
)

// Valid reports whether t is a known wire type.
func (t Type) Valid() bool { return t >= TPing && t <= maxType }

// Message is one wire datagram. All PROP live-runtime traffic fits this one
// fixed shape so the codec stays canonical (a given Message has exactly one
// encoding, which the fuzz harness exploits).
type Message struct {
	// Type discriminates the message.
	Type Type
	// TTL is the walk hop budget, or a one-bit success flag in replies.
	TTL uint8
	// Epoch guards against stale retransmit chains (the live analog of
	// internal/core's nodeState.epoch).
	Epoch uint32
	// Seq matches responses to requests; Node.Call assigns it.
	Seq uint64
	// Src and Dst are host IDs. Send stamps them; Decode range-checks them.
	Src, Dst int
	// Key is protocol-dependent: a DHT key, or the origin host of a walk.
	Key uint32
	// Path is the slot path of a walk (nil when absent).
	Path []int
	// Body is an opaque payload (nil when absent).
	Body []byte
}

// Inbound is one delivered message plus transport metadata.
type Inbound struct {
	// Msg is the decoded message.
	Msg Message
	// DelayMS is the virtual one-way delay the loopback charged this
	// delivery (0 on UDP, where real time elapses instead).
	DelayMS float64
	// Virtual reports that DelayMS is authoritative — the loopback's
	// simulated-latency plane — rather than real elapsed time.
	Virtual bool
}

// Endpoint is one host's attachment to a network. Send never blocks on the
// receiver; Recv is a channel closed by Close. Implementations are safe for
// concurrent use.
type Endpoint interface {
	// Host returns the host ID this endpoint answers for.
	Host() int
	// Send transmits m to the host to. Delivery is best-effort datagram
	// semantics: messages to unknown or dead hosts vanish silently, exactly
	// like UDP; only a closed local endpoint errors.
	Send(to int, m Message) error
	// Recv returns the delivery channel. It is closed when the endpoint
	// closes.
	Recv() <-chan Inbound
	// Close detaches the endpoint and closes its Recv channel.
	Close() error
}

// Network opens endpoints by host ID — the factory the runtime uses to
// bring nodes up (and, after churn, back up).
type Network interface {
	// Open attaches host to the network. Opening a host that already has a
	// live endpoint is an error.
	Open(host int) (Endpoint, error)
}
