package transport

import (
	"bytes"
	"testing"
)

// FuzzCodecRoundTrip drives Decode with arbitrary bytes and pins the codec's
// two contracts: malformed input is rejected with an error (never a panic),
// and any frame Decode accepts re-encodes byte-identically — the canonical
// property that makes "one Message, one encoding" hold on the wire.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		frame, err := Encode(m)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(frame)
		// Seed the mutator with damaged variants so it starts near the
		// interesting boundaries, not just at valid frames.
		if len(frame) > 1 {
			f.Add(frame[:len(frame)-1])
		}
		f.Add(append(append([]byte(nil), frame...), 0xFF))
	}
	f.Add([]byte{})
	f.Add([]byte{codecMagic, codecVersion})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejected without panicking: that is the contract
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v (%#v)", err, m)
		}
		if !bytes.Equal(data, re) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
		// A second round-trip must be a fixed point.
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		re2, err := Encode(m2)
		if err != nil || !bytes.Equal(re, re2) {
			t.Fatalf("second round-trip diverged: %v", err)
		}
	})
}
