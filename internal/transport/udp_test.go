package transport

import (
	"testing"
	"time"
)

// udpPair binds two endpoints on the kernel loopback, or skips if the
// sandbox forbids sockets.
func udpPair(t *testing.T) (*UDPNetwork, Endpoint, Endpoint) {
	t.Helper()
	n := NewUDPNetwork("")
	a, err := n.Open(1)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	b, err := n.Open(2)
	if err != nil {
		a.Close()
		t.Skipf("udp unavailable: %v", err)
	}
	return n, a, b
}

func TestUDPRoundTrip(t *testing.T) {
	_, a, b := udpPair(t)
	defer a.Close()
	defer b.Close()

	msg := Message{Type: TWalk, TTL: 3, Key: 9, Path: []int{4, 5}, Body: []byte("payload")}
	if err := a.Send(2, msg); err != nil {
		t.Fatal(err)
	}
	select {
	case in := <-b.Recv():
		if in.Virtual {
			t.Fatal("udp delivery claims virtual delay")
		}
		m := in.Msg
		if m.Type != TWalk || m.TTL != 3 || m.Key != 9 || m.Src != 1 || m.Dst != 2 ||
			len(m.Path) != 2 || m.Path[0] != 4 || string(m.Body) != "payload" {
			t.Fatalf("bad delivery %#v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("datagram never arrived")
	}
}

func TestUDPAddressLearning(t *testing.T) {
	// Two networks = two processes in miniature: B knows A only after A's
	// first datagram arrives, then can reply without static configuration.
	na := NewUDPNetwork("")
	a, err := na.Open(1)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer a.Close()
	nb := NewUDPNetwork("")
	b, err := nb.Open(2)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer b.Close()

	addrB, ok := nb.Addr(2)
	if !ok {
		t.Fatal("no bound address for host 2")
	}
	if err := na.AddPeer(2, addrB); err != nil {
		t.Fatal(err)
	}

	na1, nb2 := NewNode(a), NewNode(b)
	defer na1.Close()
	defer nb2.Close()

	rtt, err := na1.Ping(2, time.Second, 3)
	if err != nil {
		t.Fatalf("ping across networks: %v", err)
	}
	if rtt < 0 {
		t.Fatalf("negative wall RTT %v", rtt)
	}
}

func TestUDPNodePingAndCall(t *testing.T) {
	_, a, b := udpPair(t)
	na, nb := NewNode(a), NewNode(b)
	defer na.Close()
	defer nb.Close()

	for i := 0; i < 5; i++ {
		rtt, err := na.Ping(2, time.Second, 3)
		if err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
		if rtt < 0 || rtt > 1000 {
			t.Fatalf("implausible loopback RTT %vms", rtt)
		}
	}

	// Unknown peers vanish (datagram semantics), so calls time out cleanly.
	if _, err := na.Call(77, Message{Type: TMeasure}, 10*time.Millisecond, 1); err == nil {
		t.Fatal("call to unknown host succeeded")
	}
}

func TestUDPMalformedDatagramIgnored(t *testing.T) {
	n, a, b := udpPair(t)
	defer a.Close()
	defer b.Close()

	// Fire raw garbage at B's socket via A's conn, then a valid message; B
	// must drop the garbage and still deliver the real frame.
	ua := a.(*UDPEndpoint)
	addr := n.lookup(2)
	if _, err := ua.conn.WriteToUDP([]byte{0xDE, 0xAD, 0xBE, 0xEF}, addr); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, Message{Type: TData, Body: []byte("ok")}); err != nil {
		t.Fatal(err)
	}
	select {
	case in := <-b.Recv():
		if string(in.Msg.Body) != "ok" {
			t.Fatalf("unexpected delivery %#v", in.Msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("valid frame lost after malformed one")
	}
}

func TestUDPAddrRebindCounted(t *testing.T) {
	// Three networks = three processes: R receives, and two distinct sockets
	// both claim to be host 7. The first datagram learns the route, the
	// second (from a different address) rebinds it — and only the rebind is
	// counted. Repeats from an unchanged address must not count.
	nr := NewUDPNetwork("")
	r, err := nr.Open(1)
	if err != nil {
		t.Skipf("udp unavailable: %v", err)
	}
	defer r.Close()
	addrR, _ := nr.Addr(1)

	senders := make([]Endpoint, 2)
	for i := range senders {
		n := NewUDPNetwork("")
		ep, err := n.Open(7)
		if err != nil {
			t.Skipf("udp unavailable: %v", err)
		}
		defer ep.Close()
		if err := n.AddPeer(1, addrR); err != nil {
			t.Fatal(err)
		}
		senders[i] = ep
	}

	recvOne := func(from Endpoint, note string) {
		t.Helper()
		if err := from.Send(1, Message{Type: TData, Body: []byte(note)}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-r.Recv():
		case <-time.After(2 * time.Second):
			t.Fatalf("%s: datagram never arrived", note)
		}
	}

	recvOne(senders[0], "first-learn")
	if got := r.(*UDPEndpoint).Counters().AddrRebinds; got != 0 {
		t.Fatalf("first learn counted as rebind: %d", got)
	}
	recvOne(senders[0], "same-addr")
	if got := r.(*UDPEndpoint).Counters().AddrRebinds; got != 0 {
		t.Fatalf("unchanged address counted as rebind: %d", got)
	}
	recvOne(senders[1], "rebind")
	if got := r.(*UDPEndpoint).Counters().AddrRebinds; got != 1 {
		t.Fatalf("AddrRebinds = %d after an address change, want 1", got)
	}
	recvOne(senders[1], "same-addr-2")
	if got := r.(*UDPEndpoint).Counters().AddrRebinds; got != 1 {
		t.Fatalf("AddrRebinds = %d after unchanged resend, want 1", got)
	}
}

func TestUDPMailboxOverflowCounted(t *testing.T) {
	_, a, b := udpPair(t)
	defer a.Close()
	defer b.Close()

	// Nobody drains b.Recv(): its bounded mailbox (1024) must fill, and
	// everything past capacity must be shed and counted, not block the
	// socket. Send in batches until the counter moves (kernel buffers make
	// any fixed count racy).
	ub := b.(*UDPEndpoint)
	deadline := time.Now().Add(5 * time.Second)
	for ub.Counters().Overflows == 0 && time.Now().Before(deadline) {
		for i := 0; i < 256; i++ {
			if err := a.Send(2, Message{Type: TData}); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := ub.Counters().Overflows; got == 0 {
		t.Fatal("mailbox never overflowed; drops are uncounted")
	}
	// The endpoint must stay usable: drain a slot and verify delivery flows.
	<-b.Recv()
}
