package transport

import (
	"math"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

func testLat(a, b int) float64 {
	if a == b {
		return 0
	}
	return float64(3*(a+b)%17 + 1)
}

func halfLat(a, b int) float64 { return testLat(a, b) / 2 }

func TestLoopbackDeliveryAndVirtualDelay(t *testing.T) {
	lb := NewLoopback(LoopbackConfig{DelayMS: halfLat})
	a, err := lb.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lb.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	if err := a.Send(2, Message{Type: TData, Body: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	select {
	case in := <-b.Recv():
		if string(in.Msg.Body) != "hi" || in.Msg.Src != 1 || in.Msg.Dst != 2 {
			t.Fatalf("bad delivery %#v", in.Msg)
		}
		if !in.Virtual || in.DelayMS != halfLat(1, 2) {
			t.Fatalf("virtual delay = %v/%v, want %v/true", in.DelayMS, in.Virtual, halfLat(1, 2))
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}

	// Datagram semantics: unknown destination vanishes without error.
	if err := a.Send(99, Message{Type: TData}); err != nil {
		t.Fatal(err)
	}
	if got := lb.Stats().NoEndpoint; got != 1 {
		t.Fatalf("NoEndpoint = %d, want 1", got)
	}

	// Duplicate Open is an error; reopen after Close is a rejoin.
	if _, err := lb.Open(1); err == nil {
		t.Fatal("duplicate Open(1) accepted")
	}
	b.Close()
	if _, err := lb.Open(2); err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
}

func TestLoopbackSendIsolation(t *testing.T) {
	// A receiver must not observe later mutations of the sender's slices.
	lb := NewLoopback(LoopbackConfig{})
	a, _ := lb.Open(1)
	b, _ := lb.Open(2)
	defer a.Close()
	defer b.Close()

	path := []int{1, 2, 3}
	body := []byte("abc")
	if err := a.Send(2, Message{Type: TWalk, Path: path, Body: body}); err != nil {
		t.Fatal(err)
	}
	path[0], body[0] = 9, 'z'
	in := <-b.Recv()
	if in.Msg.Path[0] != 1 || in.Msg.Body[0] != 'a' {
		t.Fatalf("delivery aliased sender memory: %#v", in.Msg)
	}
}

func TestLoopbackFaultScheduleDeterministic(t *testing.T) {
	// The acceptance criterion of the live fault plane: a seeded run with
	// loss produces the identical fault schedule every time, regardless of
	// wall-clock timing.
	run := func() ([]Drop, LoopbackStats) {
		inj, err := faults.NewInjector(faults.Config{Seed: 0xF00D, LossProb: 0.25, DupProb: 0.10, JitterMS: 2})
		if err != nil {
			t.Fatal(err)
		}
		lb := NewLoopback(LoopbackConfig{DelayMS: halfLat, Faults: inj})
		eps := make([]Endpoint, 4)
		for i := range eps {
			ep, err := lb.Open(i)
			if err != nil {
				t.Fatal(err)
			}
			eps[i] = ep
		}
		// A fixed traffic pattern: every ordered pair exchanges 50 messages.
		for k := 0; k < 50; k++ {
			for _, src := range eps {
				for dst := range eps {
					if dst == src.Host() {
						continue
					}
					if err := src.Send(dst, Message{Type: TData, Key: uint32(k)}); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		for _, ep := range eps {
			ep.Close()
		}
		return lb.Drops(), lb.Stats()
	}

	d1, s1 := run()
	d2, s2 := run()
	if len(d1) == 0 {
		t.Fatal("loss schedule empty; fault gate not engaged")
	}
	if len(d1) != len(d2) {
		t.Fatalf("fault schedules differ in length: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("fault schedules diverge at %d: %+v vs %+v", i, d1[i], d2[i])
		}
	}
	if s1 != s2 {
		t.Fatalf("stats diverge: %+v vs %+v", s1, s2)
	}
}

func TestNodePingVirtualRTTExact(t *testing.T) {
	// Realizing sim latency d as d/2 per leg must sum back to exactly d, so
	// live conformance arithmetic matches the sim float-for-float.
	lb := NewLoopback(LoopbackConfig{DelayMS: halfLat})
	epA, _ := lb.Open(3)
	epB, _ := lb.Open(8)
	a, b := NewNode(epA), NewNode(epB)
	defer a.Close()
	defer b.Close()

	for i := 0; i < 10; i++ {
		rtt, err := a.Ping(8, time.Second, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rtt != testLat(3, 8) {
			t.Fatalf("virtual RTT = %v, want exactly %v", rtt, testLat(3, 8))
		}
	}
	if s := a.Stats(); s.PingsSent != 10 {
		t.Fatalf("PingsSent = %d, want 10", s.PingsSent)
	}
}

func TestNodeCallRetransmitsThroughLoss(t *testing.T) {
	// Heavy loss + enough retries: calls still complete, and the retry
	// counters show the machinery engaged.
	inj, err := faults.NewInjector(faults.Config{Seed: 7, LossProb: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback(LoopbackConfig{Faults: inj})
	epA, _ := lb.Open(1)
	epB, _ := lb.Open(2)
	a, b := NewNode(epA), NewNode(epB)
	defer a.Close()
	defer b.Close()

	for i := 0; i < 30; i++ {
		if _, err := a.Ping(2, 8*time.Millisecond, 10); err != nil {
			t.Fatalf("ping %d through loss: %v", i, err)
		}
	}
	if s := a.Stats(); s.Retries == 0 {
		t.Fatal("no retransmissions under 25% loss — retry machinery inert")
	}
	_ = b
}

func TestNodeCallTimesOutWhenPeerGone(t *testing.T) {
	lb := NewLoopback(LoopbackConfig{})
	epA, _ := lb.Open(1)
	a := NewNode(epA)
	defer a.Close()

	start := time.Now()
	_, err := a.Call(42, Message{Type: TMeasure}, 5*time.Millisecond, 2)
	if err == nil {
		t.Fatal("call to absent host succeeded")
	}
	// Deadlines double: 5+10+20 = 35ms minimum elapsed.
	if el := time.Since(start); el < 35*time.Millisecond {
		t.Fatalf("gave up after %v; expected ≥35ms of doubling deadlines", el)
	}
	if s := a.Stats(); s.Timeouts != 3 || s.Retries != 2 {
		t.Fatalf("timeouts/retries = %d/%d, want 3/2", s.Timeouts, s.Retries)
	}
}

func TestNodeHandlerReceivesWalks(t *testing.T) {
	lb := NewLoopback(LoopbackConfig{})
	epA, _ := lb.Open(1)
	epB, _ := lb.Open(2)
	a, b := NewNode(epA), NewNode(epB)
	defer a.Close()
	defer b.Close()

	got := make(chan Message, 1)
	b.Handle(func(in Inbound) { got <- in.Msg })
	if err := a.Send(2, Message{Type: TWalk, TTL: 2, Key: 1, Path: []int{5}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Type != TWalk || m.TTL != 2 || len(m.Path) != 1 || m.Path[0] != 5 {
			t.Fatalf("handler saw %#v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("handler never ran")
	}
}

func TestLoopbackDupDelivery(t *testing.T) {
	inj, err := faults.NewInjector(faults.Config{Seed: 11, DupProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback(LoopbackConfig{Faults: inj})
	a, _ := lb.Open(1)
	b, _ := lb.Open(2)
	defer a.Close()
	defer b.Close()

	if err := a.Send(2, Message{Type: TData}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-b.Recv():
		case <-time.After(time.Second):
			t.Fatalf("copy %d never arrived", i)
		}
	}
	if s := lb.Stats(); s.Dups != 1 || s.Delivered != 2 {
		t.Fatalf("stats %+v, want Dups=1 Delivered=2", s)
	}
}

func TestLoopbackJitterBounded(t *testing.T) {
	inj, err := faults.NewInjector(faults.Config{Seed: 5, JitterMS: 4})
	if err != nil {
		t.Fatal(err)
	}
	lb := NewLoopback(LoopbackConfig{DelayMS: halfLat, Faults: inj})
	a, _ := lb.Open(1)
	b, _ := lb.Open(2)
	defer a.Close()
	defer b.Close()

	base := halfLat(1, 2)
	sawJitter := false
	for i := 0; i < 50; i++ {
		if err := a.Send(2, Message{Type: TData}); err != nil {
			t.Fatal(err)
		}
		in := <-b.Recv()
		j := in.DelayMS - base
		if j < 0 || j >= 4 || math.IsNaN(j) {
			t.Fatalf("jitter %v outside [0,4)", j)
		}
		if j > 0 {
			sawJitter = true
		}
	}
	if !sawJitter {
		t.Fatal("no jitter observed over 50 messages")
	}
}

func TestLoopbackMailboxOverflowPerEndpoint(t *testing.T) {
	// A tiny bounded mailbox: everything past capacity is shed and counted
	// on the victim endpoint, network-wide stats, and the obs counter alike.
	lb := NewLoopback(LoopbackConfig{Queue: 4})
	reg := obs.New(obs.Manifest{Experiment: "test"})
	overflows := reg.Trial(0).Counter("transport.overflows")
	lb.SetInstruments(overflows, nil)

	a, err := lb.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lb.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Send(2, Message{Type: TData}); err != nil {
			t.Fatal(err)
		}
	}
	const wantShed = 10 - 4
	if got := lb.Stats().Overflows; got != wantShed {
		t.Fatalf("Stats().Overflows = %d, want %d", got, wantShed)
	}
	if got := b.(*loopEndpoint).Counters().Overflows; got != wantShed {
		t.Fatalf("endpoint Counters().Overflows = %d, want %d", got, wantShed)
	}
	if got := overflows.Value(); got != wantShed {
		t.Fatalf("obs counter = %d, want %d", got, wantShed)
	}
	// The sender endpoint shed nothing.
	if got := a.(*loopEndpoint).Counters().Overflows; got != 0 {
		t.Fatalf("sender Counters().Overflows = %d, want 0", got)
	}
}
