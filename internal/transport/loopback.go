package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// LoopbackConfig describes an in-process network.
type LoopbackConfig struct {
	// DelayMS gives the virtual one-way delay charged on each delivery from
	// host a to host b (nil = zero delay). A measured ping RTT is the sum of
	// both legs, so realizing a simulated latency d(a,b) means returning
	// d(a,b)/2 here.
	DelayMS func(a, b int) float64
	// Faults gates every message through internal/faults' stateless
	// per-message verdicts: loss and duplication are a pure hash of
	// (seed, link, per-link sequence number), so a seeded run reproduces the
	// identical fault schedule on every repetition. Nil means perfect links.
	Faults *faults.Injector
	// Queue is the per-endpoint receive buffer (default 1024). A full queue
	// drops the message — datagram semantics, counted in Stats.Overflows.
	Queue int
}

// Drop records one message the fault gate removed, in delivery-attempt
// order. The slice of all drops is the run's fault schedule; comparing it
// across seeded runs is how the live determinism tests pin reproducibility.
type Drop struct {
	// Src and Dst are the message's endpoints.
	Src, Dst int
	// Seq is the per-link delivery attempt index the verdict hashed.
	Seq uint64
	// Reason classifies the drop.
	Reason faults.Reason
}

// LoopbackStats tallies delivery outcomes.
type LoopbackStats struct {
	// Sent counts Send calls that passed the fault gate's loss check.
	Sent uint64
	// Delivered counts messages enqueued on a receiver (duplicates count).
	Delivered uint64
	// Dropped counts fault-gate losses (the length of the drop log).
	Dropped uint64
	// Dups counts fault-injected duplicate deliveries.
	Dups uint64
	// NoEndpoint counts messages addressed to hosts with no open endpoint —
	// datagrams to dead machines vanish, as on a real network.
	NoEndpoint uint64
	// Overflows counts messages dropped on a full receive queue.
	Overflows uint64
}

// Loopback is the in-process Network: deterministic, instantaneous, with
// virtual delays and seeded faults. It is safe for concurrent use; fault
// verdicts stay reproducible because they hash per-link sequence numbers,
// which each sender's traffic orders deterministically.
type Loopback struct {
	cfg   LoopbackConfig
	start time.Time

	mu      sync.Mutex
	eps     map[int]*loopEndpoint
	linkSeq map[[2]int]uint64
	drops   []Drop
	stats   LoopbackStats

	// obs instruments, network-wide totals (nil-safe).
	obsOverflows *obs.Counter
	obsDropped   *obs.Counter
}

// NewLoopback builds an empty in-process network.
func NewLoopback(cfg LoopbackConfig) *Loopback {
	if cfg.Queue <= 0 {
		cfg.Queue = 1024
	}
	return &Loopback{
		cfg:     cfg,
		start:   time.Now(),
		eps:     make(map[int]*loopEndpoint),
		linkSeq: make(map[[2]int]uint64),
	}
}

// Open attaches host. Reopening a host after its endpoint closed models a
// rejoin; opening it twice concurrently is an error.
func (l *Loopback) Open(host int) (Endpoint, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.eps[host]; dup {
		return nil, fmt.Errorf("transport: loopback host %d already open", host)
	}
	ep := &loopEndpoint{net: l, host: host, recv: make(chan Inbound, l.cfg.Queue)}
	l.eps[host] = ep
	return ep, nil
}

// SetInstruments attaches obs counters for mailbox overflows and fault-gate
// drops. Totals aggregate across endpoints; per-endpoint overflow counts
// stay available through the endpoint's Counters. Nil counters keep the
// zero-cost disabled path.
func (l *Loopback) SetInstruments(overflows, dropped *obs.Counter) {
	l.mu.Lock()
	l.obsOverflows = overflows
	l.obsDropped = dropped
	l.mu.Unlock()
}

// Drops returns a copy of the fault schedule so far.
func (l *Loopback) Drops() []Drop {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Drop(nil), l.drops...)
}

// Stats returns the delivery tallies so far.
func (l *Loopback) Stats() LoopbackStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// nowMS positions time-windowed faults (partitions, link outages) on the
// wall clock since the network's creation. Seq-hashed faults (loss, dup,
// jitter) do not consult it, so determinism holds wherever it matters.
func (l *Loopback) nowMS() float64 {
	return float64(time.Since(l.start)) / float64(time.Millisecond)
}

// send runs one message through the fault gate and delivers it. Called with
// from's identity already stamped.
func (l *Loopback) send(from *loopEndpoint, to int, m Message) {
	l.mu.Lock()
	defer l.mu.Unlock()
	link := [2]int{from.host, to}
	seq := l.linkSeq[link]
	l.linkSeq[link] = seq + 1

	verdict := l.cfg.Faults.DeliverStateless(from.host, to, seq, l.nowMS())
	if verdict.Lost {
		l.drops = append(l.drops, Drop{Src: from.host, Dst: to, Seq: seq, Reason: verdict.Reason})
		l.stats.Dropped++
		l.obsDropped.Inc()
		return
	}
	l.stats.Sent++

	dst, ok := l.eps[to]
	if !ok {
		l.stats.NoEndpoint++
		return
	}
	delay := verdict.DelayMS
	if l.cfg.DelayMS != nil {
		delay += l.cfg.DelayMS(from.host, to)
	}
	in := Inbound{Msg: m, DelayMS: delay, Virtual: true}
	copies := 1
	if verdict.Dup {
		copies = 2
		l.stats.Dups++
	}
	for i := 0; i < copies; i++ {
		select {
		case dst.recv <- in:
			l.stats.Delivered++
		default:
			// Bounded mailbox: a receiver that is not draining sheds the
			// message here — datagram semantics, same as the UDP endpoint.
			l.stats.Overflows++
			dst.overflows.Add(1)
			l.obsOverflows.Inc()
		}
	}
}

// close detaches ep; subsequent sends to its host vanish.
func (l *Loopback) close(ep *loopEndpoint) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.eps[ep.host] == ep {
		delete(l.eps, ep.host)
		close(ep.recv)
	}
}

type loopEndpoint struct {
	net  *Loopback
	host int
	recv chan Inbound

	overflows atomic.Uint64

	mu     sync.Mutex
	closed bool
}

// Host returns the host ID this endpoint answers for.
func (ep *loopEndpoint) Host() int { return ep.host }

// Counters snapshots the endpoint's delivery-failure accounting (only
// Overflows applies on the loopback; the socket-level fields stay zero).
func (ep *loopEndpoint) Counters() Counters {
	return Counters{Overflows: ep.overflows.Load()}
}

// Send transmits m to host to with datagram semantics.
func (ep *loopEndpoint) Send(to int, m Message) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return fmt.Errorf("transport: send on closed loopback endpoint %d", ep.host)
	}
	ep.mu.Unlock()
	m.Src, m.Dst = ep.host, to
	// The loopback carries Messages natively, but every frame must still be
	// wire-legal: encode (validating), and hand the receiver the decoded
	// copy so aliasing bugs (shared Path/Body backing arrays) cannot leak
	// between sender and receiver.
	frame, err := Encode(m)
	if err != nil {
		return err
	}
	dm, err := Decode(frame)
	if err != nil {
		return fmt.Errorf("transport: loopback round-trip: %v", err)
	}
	ep.net.send(ep, to, dm)
	return nil
}

// Recv returns the delivery channel.
func (ep *loopEndpoint) Recv() <-chan Inbound { return ep.recv }

// Close detaches the endpoint; idempotent.
func (ep *loopEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	ep.mu.Unlock()
	ep.net.close(ep)
	return nil
}
