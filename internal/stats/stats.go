// Package stats provides the summary statistics the experiment harness
// uses to aggregate multi-seed trials into the paper's reported series.
//
// Key types: Series (label + points) and Summary. See DESIGN.md §1.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Stddev / math.Sqrt(float64(s.N))
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.3f ±%.3f (n=%d, min=%.3f, max=%.3f)",
		s.Mean, s.CI95(), s.N, s.Min, s.Max)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It panics on empty input or
// out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Series is a labelled sequence of (x, y) points — one curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s Series) Len() int { return len(s.X) }

// YAt returns the y value at the given x (exact match), or NaN.
func (s Series) YAt(x float64) float64 {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i]
		}
	}
	return math.NaN()
}

// Final returns the last y value, or NaN for an empty series.
func (s Series) Final() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	return s.Y[len(s.Y)-1]
}

// MergeMean averages multiple same-shaped series point-wise (e.g. the same
// curve measured across trial seeds). All series must have identical X
// vectors; it panics otherwise.
func MergeMean(label string, series []Series) Series {
	if len(series) == 0 {
		return Series{Label: label}
	}
	out := Series{Label: label, X: append([]float64(nil), series[0].X...)}
	out.Y = make([]float64, len(out.X))
	for _, s := range series {
		if len(s.X) != len(out.X) {
			panic(fmt.Sprintf("stats: MergeMean shape mismatch: %d vs %d points", len(s.X), len(out.X)))
		}
		for i := range s.X {
			if s.X[i] != out.X[i] {
				panic(fmt.Sprintf("stats: MergeMean x mismatch at %d: %v vs %v", i, s.X[i], out.X[i]))
			}
			out.Y[i] += s.Y[i]
		}
	}
	for i := range out.Y {
		out.Y[i] /= float64(len(series))
	}
	return out
}
