package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Stddev = %v", s.Stddev)
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 should be positive for n>1")
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty Summary = %+v", s)
	}
	one := Summarize([]float64{7})
	if one.Mean != 7 || one.Stddev != 0 || one.CI95() != 0 {
		t.Fatalf("singleton Summary = %+v", one)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := map[float64]float64{0: 10, 100: 40, 50: 25, 25: 17.5}
	for p, want := range cases {
		if got := Percentile(xs, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", p, got, want)
		}
	}
	if got := Percentile([]float64{5}, 50); got != 5 {
		t.Errorf("singleton percentile = %v", got)
	}
	// Input must not be mutated (Percentile sorts a copy).
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Label = "test"
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.YAt(2) != 20 {
		t.Fatalf("YAt(2) = %v", s.YAt(2))
	}
	if !math.IsNaN(s.YAt(99)) {
		t.Fatal("missing x should be NaN")
	}
	if s.Final() != 20 {
		t.Fatalf("Final = %v", s.Final())
	}
	var empty Series
	if !math.IsNaN(empty.Final()) {
		t.Fatal("empty Final should be NaN")
	}
}

func TestMergeMean(t *testing.T) {
	a := Series{X: []float64{1, 2}, Y: []float64{10, 20}}
	b := Series{X: []float64{1, 2}, Y: []float64{30, 40}}
	m := MergeMean("avg", []Series{a, b})
	if m.Label != "avg" || m.Y[0] != 20 || m.Y[1] != 30 {
		t.Fatalf("MergeMean = %+v", m)
	}
	if e := MergeMean("empty", nil); e.Len() != 0 {
		t.Fatal("empty merge should be empty")
	}
}

func TestMergeMeanPanicsOnMismatch(t *testing.T) {
	a := Series{X: []float64{1, 2}, Y: []float64{1, 2}}
	b := Series{X: []float64{1}, Y: []float64{1}}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch accepted")
		}
	}()
	MergeMean("bad", []Series{a, b})
}
