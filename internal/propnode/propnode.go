// Package propnode runs PROP agents as goroutines speaking PROP-G/PROP-O
// over a transport.Network — the live counterpart of the discrete-event
// simulation in internal/core. Each physical host gets one agent: a
// transport.Node (message pump), a probe loop on the wall clock with the
// §3.2 Markov back-off, and handlers that forward TTL walks and answer
// measurement RPCs. Every latency the protocol consumes is a real RTT
// measured by exchanging messages (Node.Ping or a TMeasure relay) — no
// oracle lookups — and lost messages ride the transport's timeout +
// bounded-retransmit machinery.
//
// Concurrency model: the overlay (and the runtime RNG) live under one
// mutex. Message pumps never take it — pings are always answered — and
// walk-forwarding and measurement handlers run on spawned goroutines, so an
// agent may hold the runtime lock across a full Var evaluation (which pings
// peers through their pumps) without deadlock. Exchanges are therefore
// serialized, walks and probes run concurrently, and churn (join, leave,
// crash, repair) mirrors the unstructured membership of internal/gnutella.
//
// Key types: Runtime, Config. See DESIGN.md §10 ("Live runtime").
package propnode

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gnutella"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/transport"
)

// Config parameterizes a live runtime. Zero values select the defaults
// noted on each field.
type Config struct {
	// Policy selects PROP-G (host swap) or PROP-O (m-neighbor trade).
	Policy core.Policy
	// NHops is the probing walk's TTL (default 2, the paper's choice).
	NHops int
	// M is the PROP-O trade size (0 = the overlay's min degree at start).
	M int
	// MinVar is the exchange threshold (§4.2 derives 0).
	MinVar float64
	// ProbeIntervalMS is INIT_TIMER on the wall clock (default 50ms — scaled
	// down from the paper's minute so tests converge in test time).
	ProbeIntervalMS float64
	// MaxInitTrials is the warm-up length (default 10).
	MaxInitTrials int
	// MaxTimerFactor caps the Markov back-off (default 32).
	MaxTimerFactor float64
	// PingTimeout is the first-attempt deadline of every call — pings,
	// measurement RPCs, walks (default 50ms; retransmits double it).
	PingTimeout time.Duration
	// Retries bounds retransmissions per call (default 3).
	Retries int
	// LinksPerJoin is the unstructured membership degree (default 4).
	LinksPerJoin int
	// HeartbeatIntervalMS is the failure detector's sweep period (default
	// 4x ProbeIntervalMS — detection only has to beat the suspicion bound,
	// not the probe cadence). Each sweep pings every live neighbor once.
	HeartbeatIntervalMS float64
	// HeartbeatTimeout is the base deadline of one heartbeat ping (default
	// PingTimeout). Suspicion stretches it adaptively: a neighbor at
	// suspicion level s gets deadline HeartbeatTimeout << min(s, 3), so a
	// slow-but-alive peer earns grace instead of eviction.
	HeartbeatTimeout time.Duration
	// SuspicionThreshold is the accrual bound of the failure detector: a
	// neighbor whose heartbeats miss this many consecutive sweeps is evicted
	// and membership repair runs. 0 selects the default (3); negative
	// disables the detector entirely (PR-6 behavior: eviction waits for an
	// RPC failure during a probe cycle).
	SuspicionThreshold int
	// Lat is the ground-truth latency model recorded in the overlay for
	// metrics like MeanLinkLatency; the protocol itself never reads it. Nil
	// means metrics report zero (e.g. over real UDP, where there is no
	// ground truth to compare against).
	Lat overlay.LatencyFunc
	// Seed drives all runtime randomness (walk hops, trade selection,
	// membership wiring, probe staggering).
	Seed uint64
}

func (c *Config) fill() {
	if c.NHops == 0 {
		c.NHops = 2
	}
	if c.ProbeIntervalMS == 0 {
		c.ProbeIntervalMS = 50
	}
	if c.MaxInitTrials == 0 {
		c.MaxInitTrials = 10
	}
	if c.MaxTimerFactor == 0 {
		c.MaxTimerFactor = 32
	}
	if c.PingTimeout == 0 {
		c.PingTimeout = 50 * time.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.LinksPerJoin == 0 {
		c.LinksPerJoin = 4
	}
	if c.HeartbeatIntervalMS == 0 {
		c.HeartbeatIntervalMS = 4 * c.ProbeIntervalMS
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = c.PingTimeout
	}
	if c.SuspicionThreshold == 0 {
		c.SuspicionThreshold = 3
	}
	if c.Lat == nil {
		c.Lat = func(a, b int) float64 { return 0 }
	}
}

// Counters tallies the runtime's protocol activity. Snapshot via
// Runtime.Counters.
type Counters struct {
	// Probes counts timer firings that attempted a probe cycle.
	Probes uint64
	// Exchanges counts executed peer-exchanges.
	Exchanges uint64
	// Rejected counts evaluated-but-unprofitable (or raced) exchanges.
	Rejected uint64
	// WalkFailures counts probing walks that dead-ended or timed out.
	WalkFailures uint64
	// MeasureFailures counts Var evaluations aborted by a failed RTT probe.
	MeasureFailures uint64
	// Heartbeats counts failure-detector pings sent.
	Heartbeats uint64
	// SuspectEvictions counts neighbor links dropped by the failure detector
	// (confirmed corpses and suspicion-threshold evictions alike).
	SuspectEvictions uint64
	// AutoRepairs counts corpses repaired by detector-triggered membership
	// repair (as opposed to an explicit RepairCrashed call).
	AutoRepairs uint64
	// Recovers counts successful Runtime.Recover rejoins.
	Recovers uint64
	// StaleEpochs counts messages and exchange attempts absorbed by the
	// incarnation epoch guard — traffic from a pre-crash life of an agent
	// that must not leak into its recovered one.
	StaleEpochs uint64
}

// Runtime is a set of live PROP agents over one transport network.
type Runtime struct {
	cfg Config
	net transport.Network

	mu          sync.Mutex
	o           *overlay.Overlay
	r           *rng.Rand
	agents      map[int]*agent // by host
	incarnation map[int]uint32 // per-host epoch, survives Crash/Recover
	m           int            // resolved PROP-O trade size

	wg      sync.WaitGroup
	stopped bool

	probes        atomic.Uint64
	exchanges     atomic.Uint64
	rejected      atomic.Uint64
	walkFails     atomic.Uint64
	measureFails  atomic.Uint64
	heartbeats    atomic.Uint64
	suspectEvicts atomic.Uint64
	autoRepairs   atomic.Uint64
	recovers      atomic.Uint64
	staleEpochs   atomic.Uint64
}

type agent struct {
	host  int
	epoch uint32 // incarnation: stamped on every call, checked on every reply
	node  *transport.Node
	queue []queueEntry // first-hop priority queue, reconciled lazily
	qseq  int
	stop  chan struct{}
	kick  chan struct{} // neighbor-change notification: reset the timer

	// susp is the failure detector's per-neighbor suspicion accrual, keyed
	// by host. Owned exclusively by the agent's detector goroutine.
	susp map[int]int

	trials  int
	timerMS float64
}

type queueEntry struct {
	neighbor int // slot
	prio     int
	seq      int
}

// New builds a runtime over net. Start must be called before the agents do
// anything.
func New(net transport.Network, cfg Config) *Runtime {
	cfg.fill()
	return &Runtime{
		cfg:         cfg,
		net:         net,
		r:           rng.New(cfg.Seed),
		agents:      make(map[int]*agent),
		incarnation: make(map[int]uint32),
	}
}

// Start builds the unstructured overlay over hosts ("based on a random
// assignment", as the paper's unstructured substrate joins) and brings one
// agent per host online.
func (rt *Runtime) Start(hosts []int) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.o != nil {
		return fmt.Errorf("propnode: already started")
	}
	gcfg := gnutella.Config{LinksPerJoin: rt.cfg.LinksPerJoin}
	o, err := gnutella.Build(hosts, gcfg, rt.cfg.Lat, rt.r)
	if err != nil {
		return fmt.Errorf("propnode: build overlay: %w", err)
	}
	rt.o = o
	rt.m = rt.cfg.M
	if rt.m == 0 {
		rt.m = o.Logical.MinDegree()
		if rt.m < 1 {
			rt.m = 1
		}
	}
	for _, h := range hosts {
		if err := rt.spawnLocked(h); err != nil {
			return err
		}
	}
	return nil
}

// spawnLocked opens host's endpoint and starts its agent. Caller holds rt.mu.
func (rt *Runtime) spawnLocked(host int) error {
	ep, err := rt.net.Open(host)
	if err != nil {
		return fmt.Errorf("propnode: open host %d: %w", host, err)
	}
	rt.incarnation[host]++
	a := &agent{
		host:  host,
		epoch: rt.incarnation[host],
		node:  transport.NewNode(ep),
		stop:  make(chan struct{}),
		kick:  make(chan struct{}, 1),
		susp:  make(map[int]int),
	}
	a.node.Handle(func(in transport.Inbound) {
		// Handlers must not block the pump: forwarders and measurement
		// relays take locks and make their own calls, so they get their own
		// goroutines.
		switch in.Msg.Type {
		case transport.TWalk:
			go rt.handleWalk(a, in.Msg)
		case transport.TMeasure:
			go rt.handleMeasure(a, in.Msg)
		}
	})
	rt.agents[host] = a
	rt.wg.Add(1)
	stagger := time.Duration(rt.r.Float64()*rt.cfg.ProbeIntervalMS) * time.Millisecond
	go rt.runAgent(a, stagger)
	if rt.cfg.SuspicionThreshold > 0 {
		rt.wg.Add(1)
		hbStagger := time.Duration(rt.r.Float64()*rt.cfg.HeartbeatIntervalMS) * time.Millisecond
		go rt.runDetector(a, hbStagger)
	}
	return nil
}

// Overlay exposes the shared overlay. Safe to inspect after Stop, or under
// external quiescence; concurrent mutation is the runtime's. While agents
// are running, read through View instead.
func (rt *Runtime) Overlay() *overlay.Overlay { return rt.o }

// View runs f with the runtime lock held — the way to take consistent
// readings of the shared overlay while agents are live.
func (rt *Runtime) View(f func(o *overlay.Overlay)) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	f(rt.o)
}

// Counters snapshots protocol activity.
func (rt *Runtime) Counters() Counters {
	return Counters{
		Probes:           rt.probes.Load(),
		Exchanges:        rt.exchanges.Load(),
		Rejected:         rt.rejected.Load(),
		WalkFailures:     rt.walkFails.Load(),
		MeasureFailures:  rt.measureFails.Load(),
		Heartbeats:       rt.heartbeats.Load(),
		SuspectEvictions: rt.suspectEvicts.Load(),
		AutoRepairs:      rt.autoRepairs.Load(),
		Recovers:         rt.recovers.Load(),
		StaleEpochs:      rt.staleEpochs.Load(),
	}
}

// M returns the resolved PROP-O trade size.
func (rt *Runtime) M() int { return rt.m }

// Stop quiesces every agent (probe loops first, then pumps) and waits.
func (rt *Runtime) Stop() {
	rt.mu.Lock()
	if rt.stopped {
		rt.mu.Unlock()
		return
	}
	rt.stopped = true
	agents := make([]*agent, 0, len(rt.agents))
	for _, a := range rt.agents {
		agents = append(agents, a)
	}
	rt.mu.Unlock()
	for _, a := range agents {
		close(a.stop)
	}
	rt.wg.Wait()
	for _, a := range agents {
		a.node.Close()
	}
}

// runAgent is one agent's probe loop: stagger, then fire every timerMS with
// the §3.2 Markov back-off — doubled on failure, reset to INIT_TIMER on
// success or past the cap, reset by churn kicks.
func (rt *Runtime) runAgent(a *agent, stagger time.Duration) {
	defer rt.wg.Done()
	a.timerMS = rt.cfg.ProbeIntervalMS
	timer := time.NewTimer(stagger)
	defer timer.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-a.kick:
			// §3.2 churn rule: neighbors changed — reset to INIT_TIMER.
			a.timerMS = rt.cfg.ProbeIntervalMS
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(time.Duration(a.timerMS * float64(time.Millisecond)))
			continue
		case <-timer.C:
		}
		success := rt.probeOnce(a)
		a.trials++
		if a.trials <= rt.cfg.MaxInitTrials || success {
			a.timerMS = rt.cfg.ProbeIntervalMS
		} else {
			a.timerMS *= 2
			if a.timerMS > rt.cfg.MaxTimerFactor*rt.cfg.ProbeIntervalMS {
				a.timerMS = rt.cfg.ProbeIntervalMS
			}
		}
		timer.Reset(time.Duration(a.timerMS * float64(time.Millisecond)))
	}
}

// reconcileQueueLocked mirrors internal/core's lazy queue maintenance:
// drop ex-neighbors, insert fresh ones at the front. Caller holds rt.mu.
func (rt *Runtime) reconcileQueueLocked(a *agent, u int) {
	current := rt.o.Neighbors(u)
	inSet := make(map[int]bool, len(current))
	for _, nb := range current {
		if rt.o.Alive(nb) {
			inSet[nb] = true
		}
	}
	kept := a.queue[:0]
	seen := make(map[int]bool, len(a.queue))
	minPrio := 0
	for _, qe := range a.queue {
		if inSet[qe.neighbor] && !seen[qe.neighbor] {
			kept = append(kept, qe)
			seen[qe.neighbor] = true
			if qe.prio < minPrio {
				minPrio = qe.prio
			}
		}
	}
	a.queue = kept
	for nb := range inSet {
		if !seen[nb] {
			a.queue = append(a.queue, queueEntry{neighbor: nb, prio: minPrio - 1, seq: a.qseq})
			a.qseq++
		}
	}
	sort.Slice(a.queue, func(i, j int) bool {
		if a.queue[i].prio != a.queue[j].prio {
			return a.queue[i].prio < a.queue[j].prio
		}
		return a.queue[i].seq < a.queue[j].seq
	})
}

// probeOnce runs one §3.2 probe cycle for a: pick a first hop from the
// queue, walk the wire to a partner NHops away, evaluate Var from measured
// RTTs, exchange if profitable. Reports success (an executed exchange).
func (rt *Runtime) probeOnce(a *agent) bool {
	rt.probes.Add(1)

	rt.mu.Lock()
	u := rt.o.SlotOfHost(a.host)
	if u < 0 || !rt.o.Alive(u) {
		rt.mu.Unlock()
		return false
	}
	// Live liveness eviction: a crashed neighbor never answers, so the
	// agent drops the stale reference before choosing a first hop.
	rt.o.EvictDeadNeighbors(u)
	rt.reconcileQueueLocked(a, u)
	if len(a.queue) == 0 {
		rt.mu.Unlock()
		rt.walkFails.Add(1)
		return false
	}
	firstIdx := 0 // queue is sorted: minimum priority, FIFO tie-break
	s := a.queue[firstIdx].neighbor
	sHost := rt.o.HostOf(s)
	walkReq := transport.Message{
		Type:  transport.TWalk,
		TTL:   uint8(rt.cfg.NHops - 1),
		Epoch: a.epoch,
		Key:   uint32(a.host),
		Path:  []int{u, s},
	}
	rt.mu.Unlock()

	reply, err := a.node.Call(sHost, walkReq, rt.cfg.PingTimeout, rt.cfg.Retries)
	if err == nil && reply.Msg.Epoch != a.epoch {
		// A reply addressed to a previous incarnation of this host: absorb
		// it — its walk state belongs to the pre-crash life.
		rt.staleEpochs.Add(1)
		err = fmt.Errorf("propnode: stale-epoch walk reply")
	}
	walked := err == nil && reply.Msg.TTL == 1 && len(reply.Msg.Path) >= 2
	success := false
	partnerTried := false
	if walked {
		path := reply.Msg.Path
		v := path[len(path)-1]
		success, partnerTried = rt.attemptExchange(a, u, v, path)
	}
	if !walked {
		rt.walkFails.Add(1)
	}
	_ = partnerTried

	// First-hop standing + queue update, exactly core's maintenance rule.
	rt.mu.Lock()
	if len(a.queue) > firstIdx && a.queue[firstIdx].neighbor == s {
		maxPrio := 0
		for _, qe := range a.queue {
			if qe.prio > maxPrio {
				maxPrio = qe.prio
			}
		}
		if a.trials < rt.cfg.MaxInitTrials {
			a.queue[firstIdx].prio = maxPrio + 1
		} else if success {
			a.queue[firstIdx].prio--
		} else {
			a.queue[firstIdx].prio = maxPrio + 1
		}
	}
	rt.mu.Unlock()
	return success
}

// attemptExchange evaluates Var for (u,v) over live measurements and
// commits the exchange when profitable. The runtime lock is held across
// evaluation and commit — pumps never take it, so the measurement traffic
// this generates cannot deadlock (see the package comment).
func (rt *Runtime) attemptExchange(a *agent, u, v int, path []int) (success, tried bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	// Incarnation guard: a goroutine of a crashed-and-recovered (or plain
	// crashed) agent must never commit two-phase-swap state into the
	// bijection — only the host's current agent may mutate the overlay.
	if rt.agents[a.host] != a {
		rt.staleEpochs.Add(1)
		rt.rejected.Add(1)
		return false, false
	}
	// Optimistic concurrency: the walk ran without the lock, so the world
	// may have moved. Re-validate before measuring.
	if rt.o.SlotOfHost(a.host) != u || u == v || !rt.o.Alive(u) || !rt.o.Alive(v) {
		rt.rejected.Add(1)
		return false, false
	}

	var failed bool
	measureHosts := func(x, y int) float64 {
		if failed || x == y {
			return 0
		}
		rtt, err := rt.measureFrom(a, x, y)
		if err != nil {
			failed = true
			return 0
		}
		return rtt
	}

	switch rt.cfg.Policy {
	case core.PROPG:
		gain := rt.o.SwapGainMeasured(u, v, measureHosts)
		if failed {
			rt.measureFails.Add(1)
			return false, true
		}
		if gain <= rt.cfg.MinVar {
			rt.rejected.Add(1)
			return false, true
		}
		if err := rt.o.SwapHosts(u, v); err != nil {
			rt.rejected.Add(1)
			return false, true
		}
	case core.PROPO:
		give, take := rt.selectTradeLocked(u, v, path)
		if len(give) == 0 {
			rt.rejected.Add(1)
			return false, true
		}
		measureSlots := func(x, y int) float64 {
			return measureHosts(rt.o.HostOf(x), rt.o.HostOf(y))
		}
		gain := rt.o.ExchangeGainMeasured(u, v, give, take, measureSlots)
		if failed {
			rt.measureFails.Add(1)
			return false, true
		}
		if gain <= rt.cfg.MinVar {
			rt.rejected.Add(1)
			return false, true
		}
		if err := rt.o.ExchangeNeighbors(u, v, give, take, path); err != nil {
			rt.rejected.Add(1)
			return false, true
		}
	default:
		return false, false
	}
	rt.exchanges.Add(1)
	return true, true
}

// measureFrom returns the live RTT between hosts x and y, measured from x's
// vantage point: a's own ping when x is a's host, otherwise a TMeasure
// relay asking x to probe y — "each side probes its own neighborhood"
// (§4.3), as messages on the wire.
func (rt *Runtime) measureFrom(a *agent, x, y int) (float64, error) {
	if x == a.host {
		return a.node.Ping(y, rt.cfg.PingTimeout, rt.cfg.Retries)
	}
	body := make([]byte, 8)
	binary.BigEndian.PutUint64(body, uint64(int64(y)))
	reply, err := a.node.Call(x, transport.Message{Type: transport.TMeasure, Epoch: a.epoch, Body: body},
		rt.cfg.PingTimeout, rt.cfg.Retries)
	if err != nil {
		return 0, err
	}
	if reply.Msg.Epoch != a.epoch {
		rt.staleEpochs.Add(1)
		return 0, fmt.Errorf("propnode: stale-epoch measure reply %d→%d", x, y)
	}
	if reply.Msg.TTL != 1 || len(reply.Msg.Body) != 8 {
		return 0, fmt.Errorf("propnode: measure relay %d→%d failed", x, y)
	}
	rtt := math.Float64frombits(binary.BigEndian.Uint64(reply.Msg.Body))
	if rtt < 0 || math.IsNaN(rtt) {
		return 0, fmt.Errorf("propnode: measure relay %d→%d reported %v", x, y, rtt)
	}
	return rtt, nil
}

// selectTradeLocked mirrors internal/core's PROP-O candidate selection:
// random eligible m-subsets per side, honoring the Theorem 1 exclusions.
// Caller holds rt.mu.
func (rt *Runtime) selectTradeLocked(u, v int, path []int) (give, take []int) {
	onPath := make(map[int]bool, len(path))
	for _, x := range path {
		onPath[x] = true
	}
	eligibleFrom := func(from, to int) []int {
		var out []int
		for _, x := range rt.o.Neighbors(from) {
			if x == to || x == from || onPath[x] || !rt.o.Alive(x) {
				continue
			}
			if rt.o.Logical.HasEdge(to, x) {
				continue
			}
			out = append(out, x)
		}
		return out
	}
	candU := eligibleFrom(u, v)
	candV := eligibleFrom(v, u)
	m := rt.m
	if len(candU) < m {
		m = len(candU)
	}
	if len(candV) < m {
		m = len(candV)
	}
	if m == 0 {
		return nil, nil
	}
	pick := func(cands []int) []int {
		rt.r.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		out := cands[:m]
		sort.Ints(out)
		return out
	}
	return pick(candU), pick(candV)
}

// handleWalk forwards one hop of a probing walk (or closes it). Runs on its
// own goroutine, never on the pump.
func (rt *Runtime) handleWalk(a *agent, m transport.Message) {
	origin := int(int32(m.Key))
	reply := func(ok bool, path []int) {
		ttl := uint8(0)
		if ok {
			ttl = 1
		}
		_ = a.node.Send(origin, transport.Message{
			Type:  transport.TWalkReply,
			TTL:   ttl,
			Epoch: m.Epoch, // echoed so the origin can reject stale-life replies
			Seq:   m.Seq,
			Key:   m.Key,
			Path:  path,
		})
	}
	if len(m.Path) < 2 || len(m.Path) > transport.MaxPath-1 {
		reply(false, m.Path)
		return
	}

	rt.mu.Lock()
	my := rt.o.SlotOfHost(a.host)
	if my < 0 || !rt.o.Alive(my) || m.Path[len(m.Path)-1] != my {
		// The world moved under the walk (we swapped or died mid-flight):
		// this hop is no longer who the sender addressed. Dead-end it.
		rt.mu.Unlock()
		reply(false, m.Path)
		return
	}
	if m.TTL == 0 {
		rt.mu.Unlock()
		reply(true, m.Path)
		return
	}
	onPath := make(map[int]bool, len(m.Path))
	for _, s := range m.Path {
		onPath[s] = true
	}
	var candidates []int
	for _, nb := range rt.o.Neighbors(my) {
		if !onPath[nb] && rt.o.Alive(nb) {
			candidates = append(candidates, nb)
		}
	}
	if len(candidates) == 0 {
		rt.mu.Unlock()
		reply(false, m.Path)
		return
	}
	next := candidates[rt.r.Intn(len(candidates))]
	nextHost := rt.o.HostOf(next)
	rt.mu.Unlock()

	_ = a.node.Send(nextHost, transport.Message{
		Type:  transport.TWalk,
		TTL:   m.TTL - 1,
		Epoch: m.Epoch,
		Seq:   m.Seq,
		Key:   m.Key,
		Path:  append(append([]int(nil), m.Path...), next),
	})
}

// handleMeasure answers a TMeasure relay: ping the requested host, report
// the RTT. Runs on its own goroutine and takes no runtime lock — the whole
// deadlock-freedom argument rests on that.
func (rt *Runtime) handleMeasure(a *agent, m transport.Message) {
	fail := func() {
		_ = a.node.Send(m.Src, transport.Message{Type: transport.TMeasureReply, TTL: 0, Epoch: m.Epoch, Seq: m.Seq})
	}
	if len(m.Body) != 8 {
		fail()
		return
	}
	target := int(int64(binary.BigEndian.Uint64(m.Body)))
	var rtt float64
	if target != a.host {
		var err error
		rtt, err = a.node.Ping(target, rt.cfg.PingTimeout, rt.cfg.Retries)
		if err != nil {
			fail()
			return
		}
	}
	body := make([]byte, 8)
	binary.BigEndian.PutUint64(body, math.Float64bits(rtt))
	_ = a.node.Send(m.Src, transport.Message{Type: transport.TMeasureReply, TTL: 1, Epoch: m.Epoch, Seq: m.Seq, Body: body})
}
