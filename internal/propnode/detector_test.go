package propnode

import (
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/overlay"
)

// silentFail kills host's agent without telling the overlay: the endpoint
// and pump vanish, but the slot stays alive in the bijection — the silent
// failure only a heartbeat detector can notice (Crash marks the slot dead,
// so the probe path's EvictDeadNeighbors would see it).
func silentFail(t *testing.T, rt *Runtime, host int) {
	t.Helper()
	rt.mu.Lock()
	a := rt.agents[host]
	delete(rt.agents, host)
	rt.mu.Unlock()
	if a == nil {
		t.Fatalf("no agent for host %d", host)
	}
	close(a.stop)
	a.node.Close()
}

func degreeOf(rt *Runtime, slot int) int {
	var d int
	rt.View(func(o *overlay.Overlay) { d = o.Degree(slot) })
	return d
}

// TestDetectorEvictsSilentFailure pins the detection bound: a neighbor that
// stops answering while the overlay still believes it alive must lose every
// link through suspicion-threshold evictions, with no repair pass and no
// external nudge.
func TestDetectorEvictsSilentFailure(t *testing.T) {
	rt := startRuntime(t, 12, Config{
		Policy:              core.PROPG,
		Seed:                41,
		HeartbeatIntervalMS: 5,
		HeartbeatTimeout:    5 * time.Millisecond,
		SuspicionThreshold:  3,
	}, nil)
	defer rt.Stop()

	const victim = 7
	var slot int
	rt.View(func(o *overlay.Overlay) { slot = o.SlotOfHost(victim) })
	if slot < 0 || degreeOf(rt, slot) == 0 {
		t.Fatalf("victim host %d has no live links to lose", victim)
	}
	silentFail(t, rt, victim)

	start := time.Now()
	if !waitFor(t, 10*time.Second, func() bool { return degreeOf(rt, slot) == 0 }) {
		t.Fatalf("victim slot %d still has %d links after 10s: %+v",
			slot, degreeOf(rt, slot), rt.Counters())
	}
	c := rt.Counters()
	if c.SuspectEvictions == 0 {
		t.Fatalf("links vanished without suspicion evictions: %+v", c)
	}
	if c.AutoRepairs != 0 {
		t.Fatalf("silent failure took the corpse-repair path (%d repairs) — the overlay never saw a crash", c.AutoRepairs)
	}
	t.Logf("silent failure fully evicted in %v (%d heartbeats, %d evictions)",
		time.Since(start), c.Heartbeats, c.SuspectEvictions)
}

// TestDetectorDisabledKeepsStaleLinks is the configurability control: with
// SuspicionThreshold < 0 the same silent failure goes unnoticed — links to
// the mute host survive, pinning that eviction in the test above is the
// detector's doing.
func TestDetectorDisabledKeepsStaleLinks(t *testing.T) {
	rt := startRuntime(t, 12, Config{
		Policy:             core.PROPG,
		Seed:               41,
		SuspicionThreshold: -1,
	}, nil)
	defer rt.Stop()

	const victim = 7
	var slot int
	rt.View(func(o *overlay.Overlay) { slot = o.SlotOfHost(victim) })
	before := degreeOf(rt, slot)
	if before == 0 {
		t.Fatalf("victim host %d has no links", victim)
	}
	silentFail(t, rt, victim)

	time.Sleep(300 * time.Millisecond)
	c := rt.Counters()
	if c.Heartbeats != 0 || c.SuspectEvictions != 0 {
		t.Fatalf("disabled detector still acted: %+v", c)
	}
	// PROP-G swaps hosts, never edges, and the slot is alive in the overlay:
	// its degree cannot have moved without a detector.
	if got := degreeOf(rt, slot); got != before {
		t.Fatalf("victim slot degree moved %d → %d with the detector disabled", before, got)
	}
}

// TestDetectorFaultFreeControl pins the no-false-positive half of the
// acceptance bar: on healthy links an aggressive detector sweeps constantly
// and never evicts anyone.
func TestDetectorFaultFreeControl(t *testing.T) {
	rt := startRuntime(t, 16, Config{
		Policy:              core.PROPG,
		Seed:                42,
		HeartbeatIntervalMS: 5,
		SuspicionThreshold:  3,
	}, nil)

	waitFor(t, 5*time.Second, func() bool {
		c := rt.Counters()
		return c.Heartbeats >= 200 && c.Exchanges >= 1
	})
	rt.Stop()
	c := rt.Counters()
	if c.Heartbeats < 200 {
		t.Fatalf("detector barely ran: %+v", c)
	}
	if c.SuspectEvictions != 0 || c.AutoRepairs != 0 {
		t.Fatalf("fault-free run evicted healthy neighbors: %+v", c)
	}
	if err := rt.Overlay().CheckInvariants(); err != nil {
		t.Fatalf("overlay invariants: %v", err)
	}
}

// TestDetectorRepairsCrashWithoutExplicitRepair: after a crash-stop, the
// detector's corpse path must run membership repair on its own — no
// RepairCrashed call from the driver.
func TestDetectorRepairsCrashWithoutExplicitRepair(t *testing.T) {
	rt := startRuntime(t, 12, Config{
		Policy:              core.PROPG,
		Seed:                43,
		HeartbeatIntervalMS: 5,
		SuspicionThreshold:  3,
	}, nil)
	defer rt.Stop()

	var victim int
	rt.View(func(o *overlay.Overlay) { victim = o.AliveSlots()[0] })
	if err := rt.Crash(victim); err != nil {
		t.Fatalf("crash: %v", err)
	}
	ok := waitFor(t, 10*time.Second, func() bool {
		var unpurged int
		rt.View(func(o *overlay.Overlay) { unpurged = len(o.CrashedSlots()) })
		return unpurged == 0 && rt.Counters().AutoRepairs >= 1
	})
	if !ok {
		t.Fatalf("corpse never auto-repaired: %+v", rt.Counters())
	}
	rt.View(func(o *overlay.Overlay) {
		if err := o.CheckInvariants(); err != nil {
			t.Errorf("invariants after auto-repair: %v", err)
		}
		if !o.Connected() {
			t.Error("overlay disconnected after auto-repair")
		}
	})
}

// TestRecoverRejoin drives the full lifecycle: crash a host, let the
// detector repair around the corpse, then Recover the host — same identity,
// next incarnation — and verify it rejoins the membership and the audit
// passes at quiesce.
func TestRecoverRejoin(t *testing.T) {
	rt := startRuntime(t, 12, Config{
		Policy:              core.PROPG,
		Seed:                44,
		HeartbeatIntervalMS: 5,
		SuspicionThreshold:  3,
	}, nil)

	var victim, victimHost int
	rt.View(func(o *overlay.Overlay) {
		victim = o.AliveSlots()[3]
		victimHost = o.HostOf(victim)
	})
	if err := rt.Crash(victim); err != nil {
		t.Fatalf("crash: %v", err)
	}
	// Recovering before anyone repaired the corpse must also work (AddSlot
	// hands out a fresh slot; the corpse is repaired independently) — but
	// exercise the common order: detector repairs first.
	waitFor(t, 10*time.Second, func() bool {
		var unpurged int
		rt.View(func(o *overlay.Overlay) { unpurged = len(o.CrashedSlots()) })
		return unpurged == 0
	})

	if _, err := rt.Recover(victimHost + 1000); err == nil {
		t.Fatal("recover of a never-seen host must fail (no persisted identity)")
	}
	if _, err := rt.Recover(0); err == nil {
		t.Fatal("recover of a live host must fail")
	}
	slot, err := rt.Recover(victimHost)
	if err != nil {
		t.Fatalf("recover(%d): %v", victimHost, err)
	}
	rt.mu.Lock()
	a := rt.agents[victimHost]
	inc := rt.incarnation[victimHost]
	rt.mu.Unlock()
	if a == nil {
		t.Fatal("recovered host has no agent")
	}
	if inc < 2 || a.epoch != inc {
		t.Fatalf("recovered agent should run at incarnation ≥2, got epoch %d (incarnation %d)", a.epoch, inc)
	}
	if slot == victim {
		t.Fatalf("recovered host reclaimed its dead slot %d", slot)
	}
	if got := degreeOf(rt, slot); got == 0 {
		t.Fatal("recovered agent rejoined with no links")
	}
	if c := rt.Counters().Recovers; c != 1 {
		t.Fatalf("Recovers = %d, want 1", c)
	}

	// The recovered agent must participate: probes fire, membership stays
	// sound at quiesce.
	probes := rt.Counters().Probes
	waitFor(t, 5*time.Second, func() bool { return rt.Counters().Probes > probes+10 })
	rt.Stop()

	o := rt.Overlay()
	au := audit.New(1, 16)
	au.Register(audit.OverlayBijection(o), audit.OverlayConnected(o))
	au.CheckNow()
	if err := au.Err(); err != nil {
		t.Fatalf("audit at quiesce (%s): %v", au.Summary(), err)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatalf("overlay invariants at quiesce: %v", err)
	}
}
