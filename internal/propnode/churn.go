package propnode

import (
	"fmt"

	"repro/internal/gnutella"
)

// Membership: the runtime reuses internal/gnutella's unstructured join,
// graceful leave, and crash-stop repair over the shared overlay, and layers
// the live concerns on top — endpoints open and close with the node, agents
// start and stop, and affected survivors get the §3.2 timer reset.

// Join brings a new host online: wire it into the overlay, open its
// endpoint, start its agent, and kick its new neighbors.
func (rt *Runtime) Join(host int) (int, error) {
	rt.mu.Lock()
	if rt.o == nil || rt.stopped {
		rt.mu.Unlock()
		return 0, fmt.Errorf("propnode: join on a stopped runtime")
	}
	gcfg := gnutella.Config{LinksPerJoin: rt.cfg.LinksPerJoin}
	slot, err := gnutella.Join(rt.o, host, gcfg, rt.r)
	if err != nil {
		rt.mu.Unlock()
		return 0, err
	}
	if err := rt.spawnLocked(host); err != nil {
		rt.mu.Unlock()
		return 0, err
	}
	neighbors := rt.o.Neighbors(slot)
	affected := rt.agentsForLocked(neighbors)
	rt.mu.Unlock()
	kickAll(affected)
	return slot, nil
}

// Leave takes the slot's host offline gracefully: stop its agent, repair
// the overlay around it, close its endpoint, kick the former neighbors.
func (rt *Runtime) Leave(slot int) error {
	rt.mu.Lock()
	if rt.o == nil || !rt.o.Alive(slot) {
		rt.mu.Unlock()
		return fmt.Errorf("propnode: leave(%d) on dead slot", slot)
	}
	host := rt.o.HostOf(slot)
	former := rt.o.Neighbors(slot)
	a := rt.agents[host]
	delete(rt.agents, host)
	rt.mu.Unlock()

	// Quiesce the departing agent before rewiring, so it cannot race its
	// own probe against the repair.
	if a != nil {
		close(a.stop)
	}

	rt.mu.Lock()
	gcfg := gnutella.Config{LinksPerJoin: rt.cfg.LinksPerJoin}
	if err := gnutella.Leave(rt.o, slot, gcfg, rt.r); err != nil {
		rt.mu.Unlock()
		if a != nil {
			a.node.Close()
		}
		return err
	}
	affected := rt.agentsForLocked(former)
	rt.mu.Unlock()

	if a != nil {
		a.node.Close()
	}
	kickAll(affected)
	return nil
}

// Crash kills the slot's host crash-stop: the endpoint vanishes mid-flight
// (in-progress calls to it time out), survivors keep stale references until
// eviction or RepairCrashed catches up — nobody is notified.
func (rt *Runtime) Crash(slot int) error {
	rt.mu.Lock()
	return rt.crashLocked(slot)
}

// CrashHost is Crash addressed by host: the host→slot resolution happens
// under the same lock as the kill, so an in-flight exchange cannot migrate
// the host to another slot between lookup and death (Crash by slot kills
// whoever backs the slot *now* — the right semantics for "this machine
// dies" is this one).
func (rt *Runtime) CrashHost(host int) error {
	rt.mu.Lock()
	if rt.o == nil {
		rt.mu.Unlock()
		return fmt.Errorf("propnode: crash-host(%d) on a stopped runtime", host)
	}
	slot := rt.o.SlotOfHost(host)
	if slot < 0 {
		rt.mu.Unlock()
		return fmt.Errorf("propnode: crash-host(%d): host backs no live slot", host)
	}
	return rt.crashLocked(slot)
}

// crashLocked executes the crash-stop. Caller holds rt.mu; released on every
// path (the dying agent's node must close without the lock — its in-flight
// handlers may be waiting on it).
func (rt *Runtime) crashLocked(slot int) error {
	if rt.o == nil || !rt.o.Alive(slot) {
		rt.mu.Unlock()
		return fmt.Errorf("propnode: crash(%d) on dead slot", slot)
	}
	host := rt.o.HostOf(slot)
	if err := rt.o.CrashSlot(slot); err != nil {
		rt.mu.Unlock()
		return err
	}
	a := rt.agents[host]
	delete(rt.agents, host)
	rt.mu.Unlock()

	if a != nil {
		close(a.stop)
		a.node.Close()
	}
	return nil
}

// Recover restarts a crashed host with its persisted identity: the host's
// incarnation counter survived the crash, so the restarted agent comes up
// one epoch later and every message or exchange attempt left over from the
// pre-crash life is absorbed by the epoch guards instead of corrupting the
// slot bijection. The host rejoins through the live bootstrap exactly like a
// fresh node — its old slot is gone (or still a corpse awaiting repair; both
// are fine, AddSlot hands out a new one). Returns the new slot.
func (rt *Runtime) Recover(host int) (int, error) {
	rt.mu.Lock()
	if rt.o == nil || rt.stopped {
		rt.mu.Unlock()
		return 0, fmt.Errorf("propnode: recover on a stopped runtime")
	}
	if rt.incarnation[host] == 0 {
		rt.mu.Unlock()
		return 0, fmt.Errorf("propnode: recover(%d): host has no prior incarnation", host)
	}
	if _, up := rt.agents[host]; up {
		rt.mu.Unlock()
		return 0, fmt.Errorf("propnode: recover(%d): host is already live", host)
	}
	gcfg := gnutella.Config{LinksPerJoin: rt.cfg.LinksPerJoin}
	slot, err := gnutella.Join(rt.o, host, gcfg, rt.r)
	if err != nil {
		rt.mu.Unlock()
		return 0, err
	}
	if err := rt.spawnLocked(host); err != nil {
		rt.mu.Unlock()
		return 0, err
	}
	rt.recovers.Add(1)
	affected := rt.agentsForLocked(rt.o.Neighbors(slot))
	rt.mu.Unlock()
	kickAll(affected)
	return slot, nil
}

// RepairCrashed runs one failure-recovery round over the whole overlay and
// kicks every surviving agent (their neighborhoods may have been patched).
// It reports how many corpses were repaired.
func (rt *Runtime) RepairCrashed() (int, error) {
	rt.mu.Lock()
	if rt.o == nil {
		rt.mu.Unlock()
		return 0, fmt.Errorf("propnode: repair on a stopped runtime")
	}
	gcfg := gnutella.Config{LinksPerJoin: rt.cfg.LinksPerJoin}
	n, err := gnutella.RepairCrashed(rt.o, gcfg, rt.r)
	if err != nil {
		rt.mu.Unlock()
		return n, err
	}
	var affected []*agent
	if n > 0 {
		for _, a := range rt.agents {
			affected = append(affected, a)
		}
	}
	rt.mu.Unlock()
	kickAll(affected)
	return n, nil
}

// agentsForLocked resolves live agents for the given slots. Caller holds rt.mu.
func (rt *Runtime) agentsForLocked(slots []int) []*agent {
	var out []*agent
	for _, s := range slots {
		if !rt.o.Alive(s) {
			continue
		}
		if a, ok := rt.agents[rt.o.HostOf(s)]; ok {
			out = append(out, a)
		}
	}
	return out
}

// kickAll delivers the timer-reset nudge without blocking: a full kick
// channel means a reset is already pending.
func kickAll(agents []*agent) {
	for _, a := range agents {
		select {
		case a.kick <- struct{}{}:
		default:
		}
	}
}
