package propnode

import (
	"math"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/transport"
)

// clusterLat is a two-cluster latency model with an obvious optimum: hosts
// with equal parity are close (1ms), cross-parity pairs are far (20ms), so
// location-aware exchanges have real gains to find.
func clusterLat(a, b int) float64 {
	if a == b {
		return 0
	}
	if a%2 == b%2 {
		return 1
	}
	return 20
}

func clusterHalf(a, b int) float64 { return clusterLat(a, b) / 2 }

func hostsN(n int) []int {
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i
	}
	return hosts
}

func startRuntime(t *testing.T, n int, cfg Config, inj *faults.Injector) *Runtime {
	t.Helper()
	lb := transport.NewLoopback(transport.LoopbackConfig{DelayMS: clusterHalf, Faults: inj})
	if cfg.ProbeIntervalMS == 0 {
		cfg.ProbeIntervalMS = 3
	}
	if cfg.PingTimeout == 0 {
		cfg.PingTimeout = 25 * time.Millisecond
	}
	if cfg.Retries == 0 {
		cfg.Retries = 4
	}
	cfg.Lat = clusterLat
	rt := New(lb, cfg)
	if err := rt.Start(hostsN(n)); err != nil {
		t.Fatalf("start: %v", err)
	}
	return rt
}

// meanLat reads MeanLinkLatency under the runtime lock.
func meanLat(rt *Runtime) float64 {
	var m float64
	rt.View(func(o *overlay.Overlay) { m = o.MeanLinkLatency() })
	return m
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func TestRuntimeConvergesPROPG(t *testing.T) {
	rt := startRuntime(t, 16, Config{Policy: core.PROPG, Seed: 1}, nil)
	before := meanLat(rt)

	ok := waitFor(t, 5*time.Second, func() bool { return rt.Counters().Exchanges >= 3 })
	rt.Stop()
	c := rt.Counters()
	if !ok {
		t.Fatalf("no exchanges executed: %+v", c)
	}
	if c.Probes == 0 {
		t.Fatal("no probes fired")
	}
	after := rt.Overlay().MeanLinkLatency() // post-Stop: quiesced
	// Every PROP-G swap commits only on measured Var > 0, and loopback
	// virtual RTTs equal ground truth exactly — so the mean must improve.
	if after >= before {
		t.Fatalf("mean link latency did not improve: %v → %v (%d exchanges)", before, after, c.Exchanges)
	}
	if err := rt.Overlay().CheckInvariants(); err != nil {
		t.Fatalf("overlay invariants after run: %v", err)
	}
}

func TestRuntimeConvergesPROPO(t *testing.T) {
	rt := startRuntime(t, 16, Config{Policy: core.PROPO, Seed: 2}, nil)
	before := meanLat(rt)
	var degsBefore []int
	rt.View(func(o *overlay.Overlay) { degsBefore = o.Logical.DegreeSequence() })

	ok := waitFor(t, 5*time.Second, func() bool { return rt.Counters().Exchanges >= 2 })
	rt.Stop()
	c := rt.Counters()
	if !ok {
		t.Fatalf("no exchanges executed: %+v", c)
	}
	after := rt.Overlay().MeanLinkLatency() // post-Stop: quiesced
	if after >= before {
		t.Fatalf("mean link latency did not improve: %v → %v", before, after)
	}
	// PROP-O preserves every degree.
	degsAfter := rt.Overlay().Logical.DegreeSequence()
	if len(degsBefore) != len(degsAfter) {
		t.Fatalf("degree sequence length changed: %d → %d", len(degsBefore), len(degsAfter))
	}
	for i := range degsBefore {
		if degsBefore[i] != degsAfter[i] {
			t.Fatalf("degree sequence changed under PROP-O: %v → %v", degsBefore, degsAfter)
		}
	}
	if err := rt.Overlay().CheckInvariants(); err != nil {
		t.Fatalf("overlay invariants after run: %v", err)
	}
}

// TestRuntimeSoakChurnRace is the live runtime's -race soak: goroutine
// agents probing and exchanging concurrently while a churn driver joins,
// leaves, and crash-stops nodes, for a bounded wall-clock budget. At
// quiesce the audit invariants must hold on the shared overlay.
func TestRuntimeSoakChurnRace(t *testing.T) {
	inj, err := faults.NewInjector(faults.Config{Seed: 99, LossProb: 0.01, DupProb: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rt := startRuntime(t, 20, Config{
		Policy:      core.PROPG,
		Seed:        3,
		PingTimeout: 10 * time.Millisecond,
		Retries:     3,
	}, inj)

	churnRng := rng.New(777)
	nextHost := 10_000
	// Two seconds of wall clock: on a saturated single-core box the churn
	// driver's 5ms pacing loop runs an order of magnitude slower than its
	// theoretical rate, and one second leaves no margin over the 10-op floor.
	stop := time.After(2 * time.Second)
	ops, crashes := 0, 0
loop:
	for {
		select {
		case <-stop:
			break loop
		default:
		}
		time.Sleep(5 * time.Millisecond)
		switch churnRng.Intn(4) {
		case 0:
			if _, err := rt.Join(nextHost); err != nil {
				t.Fatalf("join(%d): %v", nextHost, err)
			}
			nextHost++
		case 1:
			var alive []int
			rt.View(func(o *overlay.Overlay) { alive = o.AliveSlots() })
			n := len(alive)
			if n <= 10 {
				continue
			}
			victim := alive[churnRng.Intn(len(alive))]
			if err := rt.Leave(victim); err != nil {
				t.Fatalf("leave(%d): %v", victim, err)
			}
		case 2:
			var alive []int
			rt.View(func(o *overlay.Overlay) { alive = o.AliveSlots() })
			n := len(alive)
			if n <= 10 {
				continue
			}
			victim := alive[churnRng.Intn(len(alive))]
			if err := rt.Crash(victim); err != nil {
				t.Fatalf("crash(%d): %v", victim, err)
			}
			crashes++
		case 3:
			if _, err := rt.RepairCrashed(); err != nil {
				t.Fatalf("repair: %v", err)
			}
		}
		ops++
	}

	// Final repair sweep, then quiesce and audit.
	if _, err := rt.RepairCrashed(); err != nil {
		t.Fatalf("final repair: %v", err)
	}
	rt.Stop()

	o := rt.Overlay()
	a := audit.New(1, 16)
	a.Register(audit.OverlayBijection(o), audit.OverlayConnected(o))
	a.CheckNow()
	if err := a.Err(); err != nil {
		t.Fatalf("audit at quiesce (%s): %v", a.Summary(), err)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatalf("overlay invariants at quiesce: %v", err)
	}
	c := rt.Counters()
	if c.Probes == 0 {
		t.Fatal("soak fired no probes")
	}
	if ops < 10 {
		t.Fatalf("churn driver only ran %d ops", ops)
	}
	t.Logf("soak: %d churn ops (%d crashes), counters %+v", ops, crashes, c)
}

func TestRuntimeMeasureRelayFailurePoisonsExchange(t *testing.T) {
	// A measurement relay to a dead host must abort the Var evaluation, not
	// commit an exchange on incomplete data.
	rt := startRuntime(t, 12, Config{Policy: core.PROPG, Seed: 9}, nil)
	defer rt.Stop()

	rt.mu.Lock()
	a := rt.agents[0]
	rt.mu.Unlock()
	if a == nil {
		t.Fatal("no agent for host 0")
	}
	if _, err := rt.measureFrom(a, 5, 987654); err == nil {
		t.Fatal("relay to measure an absent host succeeded")
	}
	if math.IsNaN(clusterLat(0, 1)) {
		t.Fatal("unreachable")
	}
}
