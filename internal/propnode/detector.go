package propnode

import (
	"time"

	"repro/internal/gnutella"
)

// Failure detection. Each agent runs a detector goroutine next to its probe
// loop: every HeartbeatIntervalMS it sweeps the agent's live neighbors with
// one heartbeat ping each. Misses accrue an integer suspicion level per
// neighbor host — a deterministic, integer-valued take on phi-accrual: the
// ping deadline stretches with the suspicion level (HeartbeatTimeout <<
// min(level, 3)), so a slow-but-alive peer earns exponentially more grace
// while a dead one runs out of it in SuspicionThreshold consecutive sweeps.
// Crossing the threshold evicts the neighbor link and tops the degree back
// up; a neighbor the overlay already knows is dead (crash-stop corpse) skips
// suspicion entirely and goes straight to membership repair — the same
// ring + top-up rule internal/gnutella applies, so detector-triggered repair
// and explicit RepairCrashed leave identical structure.
//
// The suspicion map is keyed by host, not slot: PROP exchanges migrate hosts
// between slots, and it is the host (the machine) that is unreachable.
// The map is owned exclusively by the detector goroutine — no locking.

// runDetector is one agent's failure-detector loop.
func (rt *Runtime) runDetector(a *agent, stagger time.Duration) {
	defer rt.wg.Done()
	interval := time.Duration(rt.cfg.HeartbeatIntervalMS * float64(time.Millisecond))
	if interval <= 0 {
		interval = time.Millisecond
	}
	timer := time.NewTimer(stagger)
	defer timer.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-timer.C:
		}
		rt.heartbeatOnce(a)
		timer.Reset(interval)
	}
}

// heartbeatOnce runs one detector sweep: snapshot the agent's live
// neighbors under the lock, then ping each one without it (pumps answer
// pings without taking rt.mu, so heartbeat traffic can never deadlock
// against an exchange holding the lock).
func (rt *Runtime) heartbeatOnce(a *agent) {
	rt.mu.Lock()
	if rt.o == nil || rt.agents[a.host] != a {
		rt.mu.Unlock()
		return
	}
	u := rt.o.SlotOfHost(a.host)
	if u < 0 || !rt.o.Alive(u) {
		rt.mu.Unlock()
		return
	}
	type peer struct{ slot, host int }
	var live []peer
	corpses := false
	for _, nb := range rt.o.Neighbors(u) {
		if rt.o.Alive(nb) {
			live = append(live, peer{nb, rt.o.HostOf(nb)})
		} else {
			corpses = true
		}
	}
	rt.mu.Unlock()

	if corpses {
		// The overlay already knows this neighbor died (crash-stop): no
		// suspicion to accrue — repair the membership hole immediately.
		rt.repairCorpses(a)
	}

	// Forget suspicion for ex-neighbors: accrual is per-link, and the link
	// is gone (exchange, leave, or an earlier eviction).
	current := make(map[int]bool, len(live))
	for _, p := range live {
		current[p.host] = true
	}
	for h := range a.susp {
		if !current[h] {
			delete(a.susp, h)
		}
	}

	for _, p := range live {
		select {
		case <-a.stop:
			return
		default:
		}
		level := a.susp[p.host]
		shift := level
		if shift > 3 {
			shift = 3
		}
		rt.heartbeats.Add(1)
		if _, err := a.node.Ping(p.host, rt.cfg.HeartbeatTimeout<<shift, 0); err == nil {
			delete(a.susp, p.host)
			continue
		}
		level++
		a.susp[p.host] = level
		if level >= rt.cfg.SuspicionThreshold {
			delete(a.susp, p.host)
			rt.evictSuspect(a, p.host)
		}
	}
}

// repairCorpses runs crash-stop membership repair on behalf of a detector
// that found a dead neighbor: the standard ring + top-up pass over every
// unpurged corpse (repairing only a's own hole would starve corpses whose
// other survivors crashed too).
func (rt *Runtime) repairCorpses(a *agent) {
	rt.mu.Lock()
	if rt.o == nil || rt.agents[a.host] != a {
		rt.mu.Unlock()
		return
	}
	var affected []*agent
	if len(rt.o.CrashedSlots()) > 0 {
		gcfg := gnutella.Config{LinksPerJoin: rt.cfg.LinksPerJoin}
		n, err := gnutella.RepairCrashed(rt.o, gcfg, rt.r)
		if err == nil && n > 0 {
			rt.autoRepairs.Add(uint64(n))
			rt.suspectEvicts.Add(uint64(n))
			for _, ag := range rt.agents {
				affected = append(affected, ag)
			}
		}
	}
	rt.mu.Unlock()
	kickAll(affected)
}

// evictSuspect drops the link to a neighbor whose heartbeats crossed the
// suspicion threshold while the overlay still believes it alive — a silent
// failure or a partition. The evicting side tops its degree back up; the
// suspect keeps its (possibly reduced) degree and will be re-topped by
// repair if it really died, or re-earn links when it answers again.
func (rt *Runtime) evictSuspect(a *agent, suspect int) {
	rt.mu.Lock()
	if rt.o == nil || rt.agents[a.host] != a {
		rt.mu.Unlock()
		return
	}
	u := rt.o.SlotOfHost(a.host)
	if u < 0 || !rt.o.Alive(u) {
		rt.mu.Unlock()
		return
	}
	s := rt.o.SlotOfHost(suspect)
	if s < 0 || !rt.o.Alive(s) {
		// It crash-stopped between the sweep and now: corpse path.
		rt.mu.Unlock()
		rt.repairCorpses(a)
		return
	}
	if !rt.o.Logical.HasEdge(u, s) {
		// An exchange moved the link out from under the sweep — nothing to
		// evict.
		rt.mu.Unlock()
		return
	}
	rt.o.RemoveEdge(u, s)
	rt.suspectEvicts.Add(1)
	rt.topUpLocked(u)
	affected := rt.agentsForLocked(append(rt.o.Neighbors(u), u, s))
	rt.mu.Unlock()
	kickAll(affected)
}

// topUpLocked restores slot u's degree to LinksPerJoin with random live
// non-neighbors — the same rule gnutella's leave/crash repair applies.
// Caller holds rt.mu.
func (rt *Runtime) topUpLocked(u int) {
	alive := rt.o.AliveSlots()
	if len(alive) < 2 {
		return
	}
	for rt.o.Degree(u) < rt.cfg.LinksPerJoin {
		cand := alive[rt.r.Intn(len(alive))]
		if cand == u || rt.o.Logical.HasEdge(u, cand) {
			if rt.o.Degree(u) >= len(alive)-1 {
				return
			}
			continue
		}
		if err := rt.o.AddEdge(u, cand); err != nil {
			return
		}
	}
}

// EnsureConnected stitches the live overlay back into one component: a
// partition window can make both sides evict every cross-partition link, and
// nothing in the protocol re-bridges two healthy halves once the window
// closes. It links the smallest slot of each extra component to the smallest
// slot of the first and returns the number of edges added (0 when already
// connected). The chaos harness calls it at every quiesce point before the
// connectivity audit.
func (rt *Runtime) EnsureConnected() int {
	rt.mu.Lock()
	if rt.o == nil {
		rt.mu.Unlock()
		return 0
	}
	alive := rt.o.AliveSlots()
	seen := make(map[int]bool, len(alive))
	var reps []int // smallest slot of each component, discovery order
	for _, start := range alive {
		if seen[start] {
			continue
		}
		reps = append(reps, start)
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, nb := range rt.o.Logical.Neighbors(v) {
				if rt.o.Alive(nb) && !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	added := 0
	for i := 1; i < len(reps); i++ {
		if err := rt.o.AddEdge(reps[0], reps[i]); err == nil {
			added++
		}
	}
	var affected []*agent
	if added > 0 {
		for _, ag := range rt.agents {
			affected = append(affected, ag)
		}
	}
	rt.mu.Unlock()
	kickAll(affected)
	return added
}
