package topology

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/graph"
	"repro/internal/rng"
)

func lat(a, b int) float64 { return math.Abs(float64(a - b)) }

func hostsN(n int) []int {
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i * 2
	}
	return hosts
}

func TestKindsCovered(t *testing.T) {
	if len(Kinds()) != 4 {
		t.Fatalf("Kinds = %v", Kinds())
	}
	sizes := map[Kind]int{Ring: 12, Hypercube: 16, Tree: 15, Torus: 16}
	for _, k := range Kinds() {
		o, err := Build(k, hostsN(sizes[k]), lat)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if !o.Connected() {
			t.Errorf("%s not connected", k)
		}
		want, err := ExpectedEdges(k, sizes[k])
		if err != nil {
			t.Fatal(err)
		}
		if got := o.Logical.NumEdges(); got != want {
			t.Errorf("%s: %d edges, want %d", k, got, want)
		}
	}
	if _, err := Build(Kind("mobius"), hostsN(8), lat); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ExpectedEdges(Kind("mobius"), 8); err == nil {
		t.Error("unknown kind accepted by ExpectedEdges")
	}
}

func TestRingStructure(t *testing.T) {
	o, err := BuildRing(hostsN(10), lat)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 10; s++ {
		if o.Degree(s) != 2 {
			t.Fatalf("ring degree of %d = %d", s, o.Degree(s))
		}
	}
	if _, err := BuildRing(hostsN(2), lat); err == nil {
		t.Error("2-node ring accepted")
	}
}

func TestHypercubeStructure(t *testing.T) {
	o, err := BuildHypercube(hostsN(16), lat)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 16; s++ {
		if o.Degree(s) != 4 {
			t.Fatalf("hypercube degree of %d = %d, want 4", s, o.Degree(s))
		}
	}
	// Neighbors differ in exactly one bit.
	for s := 0; s < 16; s++ {
		for _, nb := range o.Neighbors(s) {
			x := s ^ nb
			if x&(x-1) != 0 {
				t.Fatalf("hypercube edge %d-%d differs in multiple bits", s, nb)
			}
		}
	}
	if _, err := BuildHypercube(hostsN(12), lat); err == nil {
		t.Error("non-power-of-two hypercube accepted")
	}
}

func TestTreeStructure(t *testing.T) {
	o, err := BuildTree(hostsN(15), lat)
	if err != nil {
		t.Fatal(err)
	}
	// Root has 2 children; internal nodes degree 3; leaves degree 1.
	if o.Degree(0) != 2 {
		t.Fatalf("root degree = %d", o.Degree(0))
	}
	leaves := 0
	for s := 0; s < 15; s++ {
		if o.Degree(s) == 1 {
			leaves++
		}
	}
	if leaves != 8 {
		t.Fatalf("leaves = %d, want 8", leaves)
	}
	if _, err := BuildTree(hostsN(1), lat); err == nil {
		t.Error("singleton tree accepted")
	}
}

func TestTorusStructure(t *testing.T) {
	o, err := BuildTorus(hostsN(25), lat)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 25; s++ {
		if o.Degree(s) != 4 {
			t.Fatalf("torus degree of %d = %d, want 4", s, o.Degree(s))
		}
	}
	for _, n := range []int{24, 4, 10} {
		if _, err := BuildTorus(hostsN(n), lat); err == nil {
			t.Errorf("torus with %d nodes accepted", n)
		}
	}
}

// TestPROPGPreservesEveryShape is the executable form of the §4.1 claim:
// run PROP-G on each named geometry and verify the logical structure is
// bit-identical afterwards while the mapping improved (or at least never
// regressed).
func TestPROPGPreservesEveryShape(t *testing.T) {
	sizes := map[Kind]int{Ring: 64, Hypercube: 64, Tree: 63, Torus: 64}
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			r := rng.New(7)
			hosts := r.Perm(1000)[:sizes[kind]]
			o, err := Build(kind, hosts, lat)
			if err != nil {
				t.Fatal(err)
			}
			edgesBefore := o.Logical.Edges()
			latBefore := o.MeanLinkLatency()
			p, err := core.New(o, core.DefaultConfig(core.PROPG), r.Split())
			if err != nil {
				t.Fatal(err)
			}
			e := event.New()
			p.Start(e)
			e.RunUntil(30 * 60000)
			edgesAfter := o.Logical.Edges()
			if len(edgesBefore) != len(edgesAfter) {
				t.Fatalf("edge count changed: %d -> %d", len(edgesBefore), len(edgesAfter))
			}
			for i := range edgesBefore {
				if edgesBefore[i] != edgesAfter[i] {
					t.Fatalf("edge %d changed", i)
				}
			}
			if o.MeanLinkLatency() > latBefore {
				t.Fatalf("latency regressed: %.1f -> %.1f", latBefore, o.MeanLinkLatency())
			}
			if p.Counters.Exchanges == 0 {
				t.Fatalf("no exchanges on %s", kind)
			}
			if !o.Connected() {
				t.Fatal("disconnected")
			}
		})
	}
}

// TestIdentitySwapIsomorphism: swapping hosts of two slots yields a graph
// trivially isomorphic to the original under the identity map (the graph
// never changed), for every geometry — a direct check of Theorem 2's
// mechanics in the slot model.
func TestIdentitySwapIsomorphism(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		o, err := BuildHypercube(hostsN(32), lat)
		if err != nil {
			return false
		}
		before := o.Logical.Clone()
		for i := 0; i < 20; i++ {
			u, v := r.Intn(32), r.Intn(32)
			if u != v {
				if err := o.SwapHosts(u, v); err != nil {
					return false
				}
			}
		}
		phi := make([]int, 32)
		for i := range phi {
			phi[i] = i
		}
		return graph.IsomorphicUnderMapping(before, o.Logical, phi) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
