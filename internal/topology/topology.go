// Package topology builds the canonical structured overlay shapes the paper
// names when arguing PROP-G's generality (§4.1: "as an auxiliary method, it
// is suitable for different topologies: ring, hypercube, tree, and so on").
//
// Each builder returns a slot/host overlay whose logical graph is the exact
// mathematical object — a cycle, a binary hypercube, a complete k-ary tree,
// a 2-d torus grid — so the PROP-G isomorphism guarantee can be exercised
// and property-tested on every geometry the claim covers.
//
// Entry points: Build (by Kind) or the per-shape builders, plus Verify.
// See DESIGN.md §1.
package topology

import (
	"fmt"

	"repro/internal/overlay"
)

// Kind names a supported overlay shape.
type Kind string

const (
	// Ring is a simple cycle (the Chord geometry skeleton).
	Ring Kind = "ring"
	// Hypercube is the d-dimensional binary hypercube (requires 2^d hosts).
	Hypercube Kind = "hypercube"
	// Tree is a complete binary tree.
	Tree Kind = "tree"
	// Torus is a 2-d wrap-around grid (the CAN geometry skeleton; requires
	// a perfect square host count).
	Torus Kind = "torus"
)

// Kinds lists every supported shape.
func Kinds() []Kind { return []Kind{Ring, Hypercube, Tree, Torus} }

// Build constructs the named shape over the given hosts and verifies the
// result structurally before returning it.
func Build(kind Kind, hosts []int, lat overlay.LatencyFunc) (*overlay.Overlay, error) {
	var (
		o   *overlay.Overlay
		err error
	)
	switch kind {
	case Ring:
		o, err = BuildRing(hosts, lat)
	case Hypercube:
		o, err = BuildHypercube(hosts, lat)
	case Tree:
		o, err = BuildTree(hosts, lat)
	case Torus:
		o, err = BuildTorus(hosts, lat)
	default:
		return nil, fmt.Errorf("topology: unknown kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	if err := Verify(kind, o); err != nil {
		return nil, err
	}
	return o, nil
}

// Verify checks that the overlay's logical graph is exactly the named shape
// — edge count, connectivity, and the shape's degree signature — using the
// frozen CSR view of the logical graph (one linear snapshot instead of
// per-vertex map walks). The check is the executable form of each builder's
// contract; Build runs it on every construction.
func Verify(kind Kind, o *overlay.Overlay) error {
	n := o.NumSlots()
	fz := o.Logical.Frozen()
	want, err := ExpectedEdges(kind, n)
	if err != nil {
		return err
	}
	if got := fz.NumEdges(); got != want {
		return fmt.Errorf("topology: %s over %d nodes has %d edges, want %d", kind, n, got, want)
	}
	if !fz.Connected() {
		return fmt.Errorf("topology: %s over %d nodes is not connected", kind, n)
	}
	switch kind {
	case Ring:
		for u := 0; u < n; u++ {
			if d := fz.Degree(u); d != 2 {
				return fmt.Errorf("topology: ring vertex %d has degree %d, want 2", u, d)
			}
		}
	case Hypercube:
		dim := 0
		for m := n; m > 1; m >>= 1 {
			dim++
		}
		for u := 0; u < n; u++ {
			if d := fz.Degree(u); d != dim {
				return fmt.Errorf("topology: hypercube vertex %d has degree %d, want %d", u, d, dim)
			}
		}
	case Tree:
		for u := 0; u < n; u++ {
			if d := fz.Degree(u); d < 1 || d > 3 {
				return fmt.Errorf("topology: tree vertex %d has degree %d, want 1..3", u, d)
			}
		}
	case Torus:
		for u := 0; u < n; u++ {
			if d := fz.Degree(u); d != 4 {
				return fmt.Errorf("topology: torus vertex %d has degree %d, want 4", u, d)
			}
		}
	}
	return nil
}

// BuildRing connects the n slots in a cycle.
func BuildRing(hosts []int, lat overlay.LatencyFunc) (*overlay.Overlay, error) {
	n := len(hosts)
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs >= 3 nodes, got %d", n)
	}
	o, err := overlay.New(hosts, lat)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if err := o.AddEdge(i, (i+1)%n); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// BuildHypercube links slots whose indices differ in exactly one bit.
// The host count must be a power of two.
func BuildHypercube(hosts []int, lat overlay.LatencyFunc) (*overlay.Overlay, error) {
	n := len(hosts)
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("topology: hypercube needs a power-of-two node count, got %d", n)
	}
	o, err := overlay.New(hosts, lat)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for bit := 1; bit < n; bit <<= 1 {
			j := i ^ bit
			if i < j {
				if err := o.AddEdge(i, j); err != nil {
					return nil, err
				}
			}
		}
	}
	return o, nil
}

// BuildTree links slot i to its children 2i+1 and 2i+2 — a complete binary
// tree in heap order.
func BuildTree(hosts []int, lat overlay.LatencyFunc) (*overlay.Overlay, error) {
	n := len(hosts)
	if n < 2 {
		return nil, fmt.Errorf("topology: tree needs >= 2 nodes, got %d", n)
	}
	o, err := overlay.New(hosts, lat)
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		if err := o.AddEdge(i, (i-1)/2); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// BuildTorus arranges the slots in a √n × √n wrap-around grid. The host
// count must be a perfect square of side >= 3 (smaller sides collapse the
// wrap edges into duplicates).
func BuildTorus(hosts []int, lat overlay.LatencyFunc) (*overlay.Overlay, error) {
	n := len(hosts)
	side := intSqrt(n)
	if side*side != n || side < 3 {
		return nil, fmt.Errorf("topology: torus needs a perfect-square node count with side >= 3, got %d", n)
	}
	o, err := overlay.New(hosts, lat)
	if err != nil {
		return nil, err
	}
	at := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if err := o.AddEdge(at(r, c), at(r, (c+1)%side)); err != nil {
				return nil, err
			}
			if err := o.AddEdge(at(r, c), at((r+1)%side, c)); err != nil {
				return nil, err
			}
		}
	}
	return o, nil
}

func intSqrt(n int) int {
	if n < 0 {
		return 0
	}
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

// ExpectedEdges returns the edge count of the shape over n nodes, for
// structural verification.
func ExpectedEdges(kind Kind, n int) (int, error) {
	switch kind {
	case Ring:
		return n, nil
	case Hypercube:
		d := 0
		for m := n; m > 1; m >>= 1 {
			d++
		}
		return n * d / 2, nil
	case Tree:
		return n - 1, nil
	case Torus:
		return 2 * n, nil
	default:
		return 0, fmt.Errorf("topology: unknown kind %q", kind)
	}
}
