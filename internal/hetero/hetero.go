// Package hetero models node heterogeneity for the paper's Fig. 7
// experiment: a bimodal processing-delay distribution with a minority of
// fast nodes and a majority of slow ones ("the overall setting is similar
// to that in [Dabek et al.]").
//
// Speed is a property of the physical machine — the *host* — not of the
// overlay position. That distinction is load-bearing: PROP-G exchanges move
// hosts between overlay slots, so a fast machine can migrate out of its
// well-connected position, while PROP-O preserves each machine's degree.
// Fig. 7's crossover between the policies is exactly this effect.
//
// The paper observes that in real systems powerful peers both serve more
// lookups and hold more connections; AssignByDegree therefore marks the
// machines currently backing the highest-degree slots as fast (matching the
// preferential-attachment overlays, where early joiners are hubs).
//
// Key types: Config and Model (host → processing delay). See DESIGN.md §1
// and the Fig. 7 row of §2.
package hetero

import (
	"fmt"
	"sort"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// Config describes a bimodal processing-delay population.
type Config struct {
	// FastDelayMS is the processing delay of fast machines (paper: 1 ms).
	FastDelayMS float64
	// SlowDelayMS is the processing delay of slow machines (reconstructed:
	// 100 ms; the OCR lost the digit — see DESIGN.md §4).
	SlowDelayMS float64
	// FastFraction is the fraction of machines that are fast
	// (reconstructed: 0.20).
	FastFraction float64
}

// DefaultConfig returns the Fig. 7 setting.
func DefaultConfig() Config {
	return Config{FastDelayMS: 1, SlowDelayMS: 100, FastFraction: 0.20}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.FastDelayMS < 0 || c.SlowDelayMS < 0:
		return fmt.Errorf("hetero: negative delay (%v/%v)", c.FastDelayMS, c.SlowDelayMS)
	case c.FastDelayMS > c.SlowDelayMS:
		return fmt.Errorf("hetero: fast delay %v exceeds slow delay %v", c.FastDelayMS, c.SlowDelayMS)
	case c.FastFraction < 0 || c.FastFraction > 1:
		return fmt.Errorf("hetero: FastFraction %v out of [0,1]", c.FastFraction)
	}
	return nil
}

// Model assigns processing delays to the machines of one overlay.
type Model struct {
	cfg       Config
	o         *overlay.Overlay
	fastHosts map[int]bool
}

// fastCount returns ceil(frac·n).
func fastCount(frac float64, n int) int {
	k := int(frac*float64(n) + 0.999999)
	if k > n {
		k = n
	}
	return k
}

// AssignByDegree marks the machines backing the ceil(FastFraction·n)
// highest-degree slots of o as fast — the "powerful nodes own more
// connections" coupling Fig. 7 leans on. The assignment is by host, so
// later host swaps (PROP-G) carry the speed with the machine.
func AssignByDegree(o *overlay.Overlay, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	slots := o.AliveSlots()
	sort.Slice(slots, func(i, j int) bool {
		di, dj := o.Degree(slots[i]), o.Degree(slots[j])
		if di != dj {
			return di > dj
		}
		return slots[i] < slots[j]
	})
	m := &Model{cfg: cfg, o: o, fastHosts: make(map[int]bool)}
	for _, s := range slots[:fastCount(cfg.FastFraction, len(slots))] {
		m.fastHosts[o.HostOf(s)] = true
	}
	return m, nil
}

// AssignRandom marks a uniformly random FastFraction of live machines fast.
func AssignRandom(o *overlay.Overlay, cfg Config, r *rng.Rand) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hosts := o.Hosts()
	r.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	m := &Model{cfg: cfg, o: o, fastHosts: make(map[int]bool)}
	for _, h := range hosts[:fastCount(cfg.FastFraction, len(hosts))] {
		m.fastHosts[h] = true
	}
	return m, nil
}

// IsFastHost reports whether the machine host is fast.
func (m *Model) IsFastHost(host int) bool { return m.fastHosts[host] }

// IsFastSlot reports whether the machine currently backing slot is fast.
func (m *Model) IsFastSlot(slot int) bool { return m.fastHosts[m.o.HostOf(slot)] }

// Delay returns the processing delay of the machine currently backing slot,
// in milliseconds; it satisfies overlay.ProcDelayFunc.
func (m *Model) Delay(slot int) float64 {
	if m.IsFastSlot(slot) {
		return m.cfg.FastDelayMS
	}
	return m.cfg.SlowDelayMS
}

// FastHosts returns the fast machines in ascending order.
func (m *Model) FastHosts() []int {
	out := make([]int, 0, len(m.fastHosts))
	for h := range m.fastHosts {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// FastSlots returns the slots currently backed by fast machines, ascending.
func (m *Model) FastSlots() []int {
	var out []int
	for _, s := range m.o.AliveSlots() {
		if m.IsFastSlot(s) {
			out = append(out, s)
		}
	}
	return out
}

// SlowSlots returns the live slots backed by slow machines, ascending.
func (m *Model) SlowSlots() []int {
	var out []int
	for _, s := range m.o.AliveSlots() {
		if !m.IsFastSlot(s) {
			out = append(out, s)
		}
	}
	return out
}
