package hetero

import (
	"math"
	"testing"

	"repro/internal/gnutella"
	"repro/internal/overlay"
	"repro/internal/rng"
)

func lat(a, b int) float64 { return math.Abs(float64(a - b)) }

func buildOverlay(t *testing.T, n int) *overlay.Overlay {
	t.Helper()
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i
	}
	o, err := gnutella.Build(hosts, gnutella.DefaultConfig(), lat, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{FastDelayMS: -1, SlowDelayMS: 10, FastFraction: 0.5},
		{FastDelayMS: 10, SlowDelayMS: 1, FastFraction: 0.5},
		{FastDelayMS: 1, SlowDelayMS: 10, FastFraction: 1.5},
		{FastDelayMS: 1, SlowDelayMS: 10, FastFraction: -0.1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAssignByDegreePicksHubs(t *testing.T) {
	o := buildOverlay(t, 500)
	m, err := AssignByDegree(o, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fast := m.FastSlots()
	if len(fast) != 100 { // 20% of 500
		t.Fatalf("fast count = %d, want 100", len(fast))
	}
	// No slow slot may outrank the weakest fast slot.
	minFast := 1 << 30
	for _, s := range fast {
		if d := o.Degree(s); d < minFast {
			minFast = d
		}
	}
	for _, s := range m.SlowSlots() {
		if o.Degree(s) > minFast {
			t.Fatalf("slow slot %d (deg %d) outranks weakest fast (deg %d)",
				s, o.Degree(s), minFast)
		}
	}
	if len(fast)+len(m.SlowSlots()) != 500 {
		t.Fatal("partition broken")
	}
}

func TestDelays(t *testing.T) {
	o := buildOverlay(t, 100)
	m, err := AssignByDegree(o, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range m.FastSlots() {
		if !m.IsFastSlot(s) || m.Delay(s) != 1 {
			t.Fatalf("fast slot %d: IsFastSlot=%v Delay=%v", s, m.IsFastSlot(s), m.Delay(s))
		}
	}
	for _, s := range m.SlowSlots() {
		if m.IsFastSlot(s) || m.Delay(s) != 100 {
			t.Fatalf("slow slot %d misclassified", s)
		}
	}
}

func TestSpeedTravelsWithHost(t *testing.T) {
	// PROP-G swaps must carry the machine's speed to its new slot.
	o := buildOverlay(t, 100)
	m, err := AssignByDegree(o, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fastSlot := m.FastSlots()[0]
	slowSlot := m.SlowSlots()[0]
	fastHost := o.HostOf(fastSlot)
	if err := o.SwapHosts(fastSlot, slowSlot); err != nil {
		t.Fatal(err)
	}
	if !m.IsFastHost(fastHost) {
		t.Fatal("host speed changed by a swap")
	}
	if !m.IsFastSlot(slowSlot) || m.IsFastSlot(fastSlot) {
		t.Fatal("slot speed did not follow the host")
	}
	if m.Delay(slowSlot) != 1 || m.Delay(fastSlot) != 100 {
		t.Fatal("delays did not follow the host")
	}
}

func TestAssignRandomFraction(t *testing.T) {
	o := buildOverlay(t, 400)
	m, err := AssignRandom(o, DefaultConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.FastHosts()); got != 80 {
		t.Fatalf("fast count = %d, want 80", got)
	}
	if got := len(m.FastSlots()); got != 80 {
		t.Fatalf("fast slots = %d, want 80", got)
	}
}

func TestAssignRejectsBadConfig(t *testing.T) {
	o := buildOverlay(t, 10)
	bad := Config{FastDelayMS: 5, SlowDelayMS: 1, FastFraction: 0.5}
	if _, err := AssignByDegree(o, bad); err == nil {
		t.Error("AssignByDegree accepted bad config")
	}
	if _, err := AssignRandom(o, bad, rng.New(1)); err == nil {
		t.Error("AssignRandom accepted bad config")
	}
}

func TestFractionBoundaries(t *testing.T) {
	o := buildOverlay(t, 50)
	all, err := AssignByDegree(o, Config{FastDelayMS: 1, SlowDelayMS: 2, FastFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.FastSlots()) != 50 {
		t.Fatalf("FastFraction=1 gave %d fast slots", len(all.FastSlots()))
	}
	none, err := AssignByDegree(o, Config{FastDelayMS: 1, SlowDelayMS: 2, FastFraction: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(none.FastSlots()) != 0 {
		t.Fatalf("FastFraction=0 gave %d fast slots", len(none.FastSlots()))
	}
}
