package event

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func(*Engine) { order = append(order, 3) })
	e.At(10, func(*Engine) { order = append(order, 1) })
	e.At(20, func(*Engine) { order = append(order, 2) })
	e.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(*Engine) { order = append(order, i) })
	}
	e.Run(0)
	for i := range order {
		if order[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestAfterUsesCurrentClock(t *testing.T) {
	e := New()
	var fired Time
	e.At(100, func(en *Engine) {
		en.After(50, func(en2 *Engine) { fired = en2.Now() })
	})
	e.Run(0)
	if fired != 150 {
		t.Fatalf("nested After fired at %v, want 150", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(100, func(*Engine) {})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling before now did not panic")
		}
	}()
	e.At(50, func(*Engine) {})
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	New().At(1, nil)
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	tok := e.At(10, func(*Engine) { fired = true })
	tok.Cancel()
	tok.Cancel() // idempotent
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Steps() != 0 {
		t.Fatalf("Steps = %d, want 0", e.Steps())
	}
	var nilTok *Token
	nilTok.Cancel() // must not panic
}

func TestCancelReportsPendingPrevention(t *testing.T) {
	e := New()
	tok := e.At(10, func(*Engine) {})
	if !tok.Pending() {
		t.Fatal("fresh token not Pending")
	}
	if !tok.Cancel() {
		t.Fatal("first Cancel of a pending event reported false")
	}
	if tok.Cancel() {
		t.Fatal("second Cancel reported true")
	}
	if tok.Pending() {
		t.Fatal("cancelled token still Pending")
	}

	// After execution, Cancel must report false: the stale-timer case.
	tok2 := e.At(20, func(*Engine) {})
	e.Run(0)
	if tok2.Pending() {
		t.Fatal("executed token still Pending")
	}
	if tok2.Cancel() {
		t.Fatal("Cancel after execution reported true")
	}

	var nilTok *Token
	if nilTok.Cancel() || nilTok.Pending() {
		t.Fatal("nil token reported live state")
	}
}

func TestStaleTimerFire(t *testing.T) {
	// Model a retransmit timer whose response arrives in the same tick: the
	// response handler runs first (FIFO among equal times), tries to cancel
	// the timer, and learns whether it was in time. If it was not — the timer
	// already fired — the timer handler must be able to detect staleness via
	// an epoch captured at scheduling time.
	e := New()
	epoch := 0
	staleFires, liveFires := 0, 0
	schedule := func(at Time) {
		myEpoch := epoch
		e.At(at, func(*Engine) {
			if myEpoch != epoch {
				staleFires++
				return
			}
			liveFires++
		})
	}
	schedule(10)
	// Response arrives at t=5: epoch bump invalidates the timer logically,
	// but we "forget" to cancel — the guard must absorb the fire. The next
	// incarnation is scheduled under the new epoch and fires live.
	e.At(5, func(*Engine) {
		epoch++
		schedule(20)
	})
	e.Run(0)
	if staleFires != 1 || liveFires != 1 {
		t.Fatalf("staleFires=%d liveFires=%d, want 1 and 1", staleFires, liveFires)
	}
}

func TestCancelOneOfMany(t *testing.T) {
	e := New()
	var order []int
	t1 := e.At(10, func(*Engine) { order = append(order, 1) })
	e.At(10, func(*Engine) { order = append(order, 2) })
	e.At(20, func(*Engine) { order = append(order, 3) })
	t1.Cancel()
	e.Run(0)
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Fatalf("order = %v, want [2 3]", order)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20, 25} {
		at := at
		e.At(at, func(en *Engine) { fired = append(fired, en.Now()) })
	}
	e.RunUntil(15)
	if len(fired) != 3 {
		t.Fatalf("fired = %v, want events at 5,10,15", fired)
	}
	if e.Now() != 15 {
		t.Fatalf("Now = %v, want 15", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.RunUntil(100)
	if len(fired) != 5 {
		t.Fatalf("fired = %v after final RunUntil", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("Now advanced to %v, want deadline 100", e.Now())
	}
}

func TestRunUntilAdvancesClockOnEmptyQueue(t *testing.T) {
	e := New()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("Now = %v, want 500", e.Now())
	}
}

func TestRunMaxSteps(t *testing.T) {
	e := New()
	count := 0
	var reschedule Handler
	reschedule = func(en *Engine) {
		count++
		en.After(1, reschedule)
	}
	e.After(1, reschedule)
	n := e.Run(100)
	if n != 100 || count != 100 {
		t.Fatalf("Run(100) executed %d events, handler ran %d times", n, count)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want the rescheduled event", e.Pending())
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestRandomScheduleOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := New()
		var fired []Time
		for _, raw := range times {
			at := Time(raw)
			e.At(at, func(en *Engine) { fired = append(fired, en.Now()) })
		}
		e.Run(0)
		if len(fired) != len(times) {
			return false
		}
		sorted := make([]Time, len(fired))
		copy(sorted, fired)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range fired {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodicPattern(t *testing.T) {
	// The pattern the PROP timer uses: an event that reschedules itself
	// with a varying period.
	e := New()
	period := Time(10)
	var fireTimes []Time
	var tick Handler
	tick = func(en *Engine) {
		fireTimes = append(fireTimes, en.Now())
		period *= 2
		en.After(period, tick)
	}
	e.After(period, tick)
	e.RunUntil(150)
	want := []Time{10, 30, 70, 150}
	if len(fireTimes) != len(want) {
		t.Fatalf("fireTimes = %v, want %v", fireTimes, want)
	}
	for i := range want {
		if fireTimes[i] != want[i] {
			t.Fatalf("fireTimes = %v, want %v", fireTimes, want)
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func(*Engine) {})
		}
		e.Run(0)
	}
}
