package event

import (
	"sync"
	"sync/atomic"
	"time"
)

// Canceler is the cancellation face of a scheduled timer: the engine's Token
// and the WallClock's timers both implement it, so protocol code keeps one
// stale-timer discipline (cancel on churn, Pending as a stale-fire guard)
// on either clock.
type Canceler interface {
	// Cancel prevents a pending firing and reports whether it did; false is
	// the stale-timer race (the handler already ran or another Cancel won).
	Cancel() bool
	// Pending reports whether the timer is still scheduled.
	Pending() bool
}

// Clock is the scheduling seam between the PROP protocols and their
// environment. The discrete-event Engine implements it on simulated time;
// WallClock implements it on real time with a serializing run loop. Protocol
// code written against Clock (internal/core's probe cycles) runs unchanged
// on either — the decoupling that turns the simulator into a runtime
// (DESIGN.md §10).
type Clock interface {
	// Now returns the current time in milliseconds.
	Now() Time
	// Schedule runs f d milliseconds from now and returns a cancellation
	// handle. Implementations run handlers one at a time, so scheduled code
	// needs no locking against other handlers on the same clock.
	Schedule(d Time, f func()) Canceler
}

// WallClock is the live implementation of Clock: timers fire on real time
// and handlers execute on a single runner goroutine, preserving the
// engine's handlers-never-overlap guarantee. Schedule and the timers'
// Cancel/Pending are safe from any goroutine.
type WallClock struct {
	start    time.Time
	fire     chan func()
	quit     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// NewWallClock starts a wall clock with its runner goroutine. Call Stop when
// done.
func NewWallClock() *WallClock {
	c := &WallClock{
		start: time.Now(),
		fire:  make(chan func(), 128),
		quit:  make(chan struct{}),
	}
	c.done.Add(1)
	go c.run()
	return c
}

func (c *WallClock) run() {
	defer c.done.Done()
	for {
		select {
		case f := <-c.fire:
			f()
		case <-c.quit:
			return
		}
	}
}

// Now returns milliseconds of real time since the clock was created.
func (c *WallClock) Now() Time {
	return Time(float64(time.Since(c.start)) / float64(time.Millisecond))
}

// Schedule runs f after d milliseconds of real time on the runner goroutine.
// Unlike the engine — where scheduling in the past is a protocol bug — a
// non-positive delay fires as soon as the runner is free: wall time advances
// between computing a deadline and scheduling it, so "already due" is an
// environmental condition here.
func (c *WallClock) Schedule(d Time, f func()) Canceler {
	if f == nil {
		panic("event: nil handler")
	}
	if d < 0 {
		d = 0
	}
	t := &wallTimer{}
	t.timer = time.AfterFunc(time.Duration(float64(d)*float64(time.Millisecond)), func() {
		// Claim the firing before enqueueing so a concurrent Cancel either
		// prevents the handler entirely or observes it as already done.
		if !t.state.CompareAndSwap(statePending, stateDone) {
			return
		}
		select {
		case c.fire <- f:
		case <-c.quit:
		}
	})
	return t
}

// Sync runs f on the runner goroutine and waits for it to return, giving
// callers a race-free view of state that handlers mutate (handlers never
// overlap, and f runs as one). After Stop the runner is gone and nothing
// mutates that state anymore, so f runs on the caller's goroutine instead.
func (c *WallClock) Sync(f func()) {
	done := make(chan struct{})
	select {
	case c.fire <- func() { f(); close(done) }:
	case <-c.quit:
		c.done.Wait()
		f()
		return
	}
	select {
	case <-done:
	case <-c.quit:
		// The runner is draining out; it either ran f before exiting or left
		// it queued forever. Wait for it to be gone, then settle which.
		c.done.Wait()
		select {
		case <-done:
		default:
			f()
		}
	}
}

// Stop terminates the runner goroutine. Timers that fire afterwards are
// dropped. Stop is idempotent and waits for the runner to exit, so no
// handler is mid-flight when it returns.
func (c *WallClock) Stop() {
	c.stopOnce.Do(func() { close(c.quit) })
	c.done.Wait()
}

type wallTimer struct {
	timer *time.Timer
	state atomic.Int32
}

// Cancel prevents a pending firing; it reports false when the timer already
// claimed its firing (the live-path stale-timer race) or was cancelled.
func (t *wallTimer) Cancel() bool {
	if !t.state.CompareAndSwap(statePending, stateCancelled) {
		return false
	}
	t.timer.Stop()
	return true
}

// Pending reports whether the timer has neither fired nor been cancelled.
func (t *wallTimer) Pending() bool { return t.state.Load() == statePending }
