package event

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEngineImplementsClock pins the seam: the sim engine is a Clock, and
// Schedule behaves like After.
func TestEngineImplementsClock(t *testing.T) {
	var c Clock = New()
	e := c.(*Engine)
	ran := 0
	c.Schedule(5, func() { ran++ })
	tok := c.Schedule(10, func() { ran++ })
	if !tok.Pending() {
		t.Fatal("scheduled timer not pending")
	}
	if !tok.Cancel() {
		t.Fatal("cancel of pending timer reported false")
	}
	if tok.Cancel() {
		t.Fatal("second cancel reported true")
	}
	e.Run(0)
	if ran != 1 {
		t.Fatalf("ran %d handlers, want 1 (one cancelled)", ran)
	}
	if c.Now() != 5 {
		t.Fatalf("clock at %v, want 5", c.Now())
	}
}

// TestTokenConcurrentCancel drives the live-runtime path the sim never
// exercises: many goroutines cancel the same Token while the engine steps
// it. Exactly one party may win the pending event — either one canceller
// (handler never runs) or the engine (every Cancel reports false).
func TestTokenConcurrentCancel(t *testing.T) {
	for round := 0; round < 200; round++ {
		e := New()
		var ran atomic.Int32
		tok := e.After(1, func(*Engine) { ran.Add(1) })

		const cancellers = 4
		var won atomic.Int32
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(cancellers)
		for i := 0; i < cancellers; i++ {
			go func() {
				defer done.Done()
				start.Wait()
				if tok.Cancel() {
					won.Add(1)
				}
			}()
		}
		start.Done()
		e.Run(0)
		done.Wait()

		total := int(won.Load()) + int(ran.Load())
		if total != 1 {
			t.Fatalf("round %d: %d cancels won and handler ran %d times; exactly one party must win",
				round, won.Load(), ran.Load())
		}
		if tok.Pending() {
			t.Fatalf("round %d: token still pending after resolution", round)
		}
	}
}

// TestTokenRetransmitEpochConcurrentCancel reproduces internal/core's
// retransmit discipline — an epoch guard plus a cancellable timer — with the
// cancel arriving from a different goroutine, as happens on the live path
// when churn invalidates an in-flight retransmit chain. The handler must
// observe either a clean cancel (never runs) or a consistent epoch; a stale
// fire after the epoch bump must be absorbed, never double-counted.
func TestTokenRetransmitEpochConcurrentCancel(t *testing.T) {
	for round := 0; round < 200; round++ {
		e := New()
		var mu sync.Mutex
		epoch := 0
		var retransmits, stale int

		var tok *Token
		tok = e.After(1, func(*Engine) {
			mu.Lock()
			defer mu.Unlock()
			// The engine claimed the event, so the token must no longer be
			// pending from inside its own handler.
			if tok.Pending() {
				t.Error("token pending inside its own handler")
			}
			if epoch != 0 {
				stale++ // absorbed: churn raced the timer
				return
			}
			retransmits++
		})

		var cancelled atomic.Bool
		var done sync.WaitGroup
		done.Add(1)
		go func() {
			defer done.Done()
			// Churn path on another goroutine: bump the epoch, then cancel.
			mu.Lock()
			epoch++
			mu.Unlock()
			cancelled.Store(tok.Cancel())
		}()
		e.Run(0)
		done.Wait()

		mu.Lock()
		ran := retransmits + stale
		switch {
		case ran > 1:
			t.Fatalf("round %d: handler ran %d times", round, ran)
		case cancelled.Load() && ran != 0:
			t.Fatalf("round %d: Cancel reported true but the handler ran", round)
		case !cancelled.Load() && ran != 1:
			t.Fatalf("round %d: Cancel reported false but the handler never ran", round)
		}
		// A retransmit counted in epoch 0 means the timer legitimately beat
		// the churn; a stale count means the epoch guard absorbed it. Either
		// is correct — what must never happen is a cancelled timer running
		// (checked above) or a double execution.
		mu.Unlock()
	}
}

// TestWallClockScheduleAndCancel exercises the live clock end to end:
// handlers fire on real time, run serialized, and cancellation from another
// goroutine is race-free.
func TestWallClockScheduleAndCancel(t *testing.T) {
	c := NewWallClock()
	defer c.Stop()

	fired := make(chan int, 16)
	c.Schedule(1, func() { fired <- 1 })
	tok := c.Schedule(500, func() { fired <- 2 })

	select {
	case got := <-fired:
		if got != 1 {
			t.Fatalf("first firing was handler %d", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wall timer never fired")
	}
	if !tok.Cancel() {
		t.Fatal("cancel of far-future wall timer reported false")
	}
	if tok.Pending() {
		t.Fatal("cancelled wall timer still pending")
	}
	if now := c.Now(); now <= 0 {
		t.Fatalf("wall clock Now = %v, want > 0", now)
	}

	// Handlers are serialized on one runner: two immediate handlers must not
	// observe each other mid-flight.
	var inFlight, overlapped atomic.Int32
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		c.Schedule(0, func() {
			defer wg.Done()
			if inFlight.Add(1) > 1 {
				overlapped.Add(1)
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
		})
	}
	wg.Wait()
	if overlapped.Load() != 0 {
		t.Fatal("wall clock ran handlers concurrently")
	}
}

// TestWallClockConcurrentCancel is the WallClock half of the live
// stale-timer story: a timer racing many cancellers resolves to exactly one
// winner.
func TestWallClockConcurrentCancel(t *testing.T) {
	c := NewWallClock()
	defer c.Stop()
	for round := 0; round < 100; round++ {
		var ran atomic.Int32
		done := make(chan struct{})
		tok := c.Schedule(0, func() {
			ran.Add(1)
			close(done)
		})
		var won atomic.Int32
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if tok.Cancel() {
					won.Add(1)
				}
			}()
		}
		wg.Wait()
		if won.Load() == 0 {
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatalf("round %d: no cancel won yet handler never ran", round)
			}
		} else {
			// A cancel won; give a buggy implementation a moment to misfire.
			time.Sleep(200 * time.Microsecond)
		}
		if int(won.Load())+int(ran.Load()) != 1 {
			t.Fatalf("round %d: %d cancels won, handler ran %d times", round, won.Load(), ran.Load())
		}
	}
}

// TestWallClockSync pins the race-free read path: Sync observes every
// handler mutation that happened before it, and still runs (inline) after
// Stop has torn the runner down.
func TestWallClockSync(t *testing.T) {
	c := NewWallClock()

	// Handler-owned state: mutated only on the runner goroutine.
	count := 0
	done := make(chan struct{})
	c.Schedule(0, func() { count++; close(done) })
	<-done

	var got int
	c.Sync(func() { got = count })
	if got != 1 {
		t.Fatalf("Sync read %d, want 1", got)
	}

	// Concurrent Syncs serialize with handlers and each other.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Sync(func() { count++ })
		}()
	}
	wg.Wait()
	c.Sync(func() { got = count })
	if got != 9 {
		t.Fatalf("after 8 Sync increments count = %d, want 9", got)
	}

	c.Stop()
	// Post-Stop there is no runner; Sync must still run f and return.
	ran := false
	c.Sync(func() { ran = true })
	if !ran {
		t.Fatal("Sync after Stop did not run f")
	}
}
