// Package event implements the discrete-event simulation engine that drives
// the PROP protocols: node timers, probes, exchanges, lookups, and churn are
// all events on a single simulated clock measured in milliseconds.
//
// The engine is deliberately sequential — a P2P protocol simulation needs a
// total order on events to be reproducible — while the experiment harness
// achieves parallelism by running many independent engines (one per trial
// seed) concurrently.
//
// Key types: Engine, Time (simulated milliseconds), and Token (handle for
// cancellation). See DESIGN.md §1 for the engine's place in the stack;
// observability series are stamped with this clock (DESIGN.md §8).
package event

import (
	"container/heap"
	"fmt"
	"sync/atomic"
)

// Time is simulated time in milliseconds since the start of the run.
type Time float64

// Handler is the body of a scheduled event. It runs with the engine clock
// set to the event's due time and may schedule further events.
type Handler func(e *Engine)

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	// Observer, if non-nil, is invoked immediately before every executed
	// event with the event's due time and scheduling sequence number. It is
	// the hook the online auditor (internal/audit) uses to verify the
	// engine's own invariants — a monotonically non-decreasing clock and
	// FIFO ordering among equal-time events — without the engine depending
	// on the auditor. Chain, don't replace, an existing observer.
	Observer func(at Time, seq uint64)

	now   Time
	queue eventHeap
	seq   uint64 // tie-breaker: FIFO among equal-time events
	steps uint64
}

// New returns an empty engine with the clock at 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending reports how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules h to run at absolute time t. Scheduling in the past (before
// Now) panics: it indicates a protocol bug, not an environmental condition.
// It returns a token that can cancel the event.
func (e *Engine) At(t Time, h Handler) *Token {
	if t < e.now {
		panic(fmt.Sprintf("event: scheduling at %v before now %v", t, e.now))
	}
	if h == nil {
		panic("event: nil handler")
	}
	ev := &item{at: t, seq: e.seq, h: h}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Token{item: ev}
}

// After schedules h to run delay milliseconds from now. Negative delays
// panic.
func (e *Engine) After(delay Time, h Handler) *Token {
	return e.At(e.now+delay, h)
}

// Step executes the single earliest pending event and reports whether one
// existed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*item)
		// Claiming the event (pending → done) and cancelling race only when
		// a live driver cancels tokens from another goroutine; the CAS makes
		// that race well-defined — exactly one side wins.
		if !ev.state.CompareAndSwap(statePending, stateDone) {
			continue
		}
		if e.Observer != nil {
			e.Observer(ev.at, ev.seq)
		}
		e.now = ev.at
		e.steps++
		ev.h(e)
		return true
	}
	return false
}

// RunUntil executes events in order until the clock would pass deadline or
// the queue drains. Events scheduled exactly at the deadline run. On return
// the clock is advanced to the deadline (even if the queue drained earlier)
// so that periodic measurement loops observe uniform time.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run executes events until the queue is empty or maxSteps events have run
// (a safety valve against runaway schedules; pass 0 for no limit). It
// returns the number of events executed.
func (e *Engine) Run(maxSteps uint64) uint64 {
	var n uint64
	for {
		if maxSteps > 0 && n >= maxSteps {
			return n
		}
		if !e.Step() {
			return n
		}
		n++
	}
}

func (e *Engine) peek() *item {
	for len(e.queue) > 0 {
		if e.queue[0].state.Load() == statePending {
			return e.queue[0]
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// Schedule implements the Clock interface: it runs f d milliseconds from
// now. The engine is one Clock among several (see WallClock); protocol code
// written against Clock runs unchanged on simulated or wall time.
func (e *Engine) Schedule(d Time, f func()) Canceler {
	if f == nil {
		panic("event: nil handler")
	}
	return e.After(d, func(*Engine) { f() })
}

// Token cancels a scheduled event. Cancel and Pending are safe to call from
// any goroutine — the live runtime cancels sim-style tokens from transport
// goroutines — though the engine itself must still be stepped from a single
// goroutine.
type Token struct{ item *item }

// Cancel marks the event as cancelled; it will be skipped when its time
// comes. It reports whether the call actually prevented a pending event:
// false means the event had already executed or been cancelled, which is
// precisely the stale-timer race — a retransmit timer whose response arrived
// in the same tick — so callers can count it (metrics.Counters.StaleTimers)
// instead of silently double-cancelling. Concurrent Cancel calls on the same
// token resolve atomically: exactly one reports true for a pending event.
func (t *Token) Cancel() bool {
	if t == nil || t.item == nil {
		return false
	}
	return t.item.state.CompareAndSwap(statePending, stateCancelled)
}

// Pending reports whether the event is still scheduled: not yet executed and
// not cancelled. Timer handlers use this for stale-fire guards — a handler
// that captured its own token can tell whether it is the current incarnation
// of the timer.
func (t *Token) Pending() bool {
	return t != nil && t.item != nil && t.item.state.Load() == statePending
}

// Timer lifecycle states shared by the engine's Token and the WallClock's
// timers: pending → done (fired) or pending → cancelled, decided by CAS so
// that a handler firing and a cross-goroutine Cancel never both win.
const (
	statePending int32 = iota
	stateDone
	stateCancelled
)

type item struct {
	at    Time
	seq   uint64
	h     Handler
	state atomic.Int32
	index int
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x interface{}) {
	it := x.(*item)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
