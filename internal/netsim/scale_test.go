package netsim

import (
	"testing"

	"repro/internal/rng"
)

// TestScaleTSSizing checks the preset reaches the requested host count with
// the fixed backbone, and that the minimum rung is exactly 4096 hosts.
func TestScaleTSSizing(t *testing.T) {
	for _, n := range []int{0, 1, 4096, 10_000, 100_000, 1_000_000} {
		cfg := ScaleTS(n)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ScaleTS(%d) invalid: %v", n, err)
		}
		if cfg.TransitDomains != ScaleTransitDomains {
			t.Fatalf("ScaleTS(%d).TransitDomains = %d, want %d", n, cfg.TransitDomains, ScaleTransitDomains)
		}
		hosts := cfg.TotalStubHosts()
		if hosts < n {
			t.Fatalf("ScaleTS(%d) yields %d hosts", n, hosts)
		}
		if hosts < 4096 {
			t.Fatalf("ScaleTS(%d) yields %d hosts, want >= 4096 minimum", n, hosts)
		}
		// Never overshoot by more than one stub-domain layer (128 domains of
		// 32 hosts): the preset scales by stub count, not by rounding slack.
		if n >= 4096 && hosts-n >= ScaleTransitDomains*8*scaleNodesPerStub {
			t.Fatalf("ScaleTS(%d) overshoots to %d hosts", n, hosts)
		}
	}
	if got := ScaleTS(4096).TotalStubHosts(); got != 4096 {
		t.Fatalf("ScaleTS(4096) = %d hosts, want exactly 4096", got)
	}
}

// TestCrossDomainFloor verifies the lookahead bound against measured
// latencies: every cross-domain stub-host pair must be at least
// CrossDomainFloorMS apart, and some intra-domain pair must be closer (the
// bound is meaningful, not vacuous).
func TestCrossDomainFloor(t *testing.T) {
	cfg := TSSmall()
	net, err := Generate(cfg, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	floor := cfg.CrossDomainFloorMS()
	if floor <= 0 {
		t.Fatalf("CrossDomainFloorMS = %v", floor)
	}
	o := NewOracle(net)
	hosts := net.StubHosts
	if len(hosts) > 64 {
		hosts = hosts[:64]
	}
	sawIntraBelow := false
	for _, u := range hosts {
		for _, v := range hosts {
			if u == v {
				continue
			}
			d := o.Latency(u, v)
			if net.Domain[u] != net.Domain[v] {
				if d < floor {
					t.Fatalf("cross-domain pair (%d,%d) at %vms beats floor %vms", u, v, d, floor)
				}
			} else if d < floor {
				sawIntraBelow = true
			}
		}
	}
	if !sawIntraBelow {
		t.Fatal("no intra-domain pair below the cross-domain floor; bound is vacuous")
	}
}
