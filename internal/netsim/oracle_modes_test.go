package netsim

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/rng"
)

// TestOracleFloat32Agreement: the float32 oracle must agree with the
// full-precision oracle to within one float32 rounding of each distance.
func TestOracleFloat32Agreement(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	ref := NewOracle(net)
	o32 := NewOracleWith(net, OracleOptions{Float32: true})
	hosts := net.StubHosts
	for i := 0; i < 50; i++ {
		u := hosts[i%len(hosts)]
		v := hosts[(i*7+3)%len(hosts)]
		want := ref.Latency(u, v)
		got := o32.Latency(u, v)
		if float32(want) != float32(got) {
			t.Fatalf("Latency(%d,%d): f32 oracle %v vs f64 oracle %v", u, v, got, want)
		}
	}
	// Row in float32 mode must be a fresh widened copy, not shared storage.
	src := hosts[0]
	row := o32.Row(src)
	row[0] = math.Inf(-1)
	if o32.Row(src)[0] == math.Inf(-1) {
		t.Fatal("float32 Row exposed shared storage")
	}
}

// TestOracleRowBudgetEviction: a bounded oracle never holds more than
// RowBudget rows, evicts FIFO, and recomputes evicted rows identically.
func TestOracleRowBudgetEviction(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	const budget = 4
	ref := NewOracle(net)
	o := NewOracleWith(net, OracleOptions{RowBudget: budget})
	hosts := net.StubHosts[:12]
	for i, src := range hosts {
		o.Row(src)
		want := i + 1
		if want > budget {
			want = budget
		}
		if got := o.CachedRows(); got != want {
			t.Fatalf("after %d rows: CachedRows() = %d, want %d", i+1, got, want)
		}
	}
	// The oldest rows were evicted...
	for _, src := range hosts[:len(hosts)-budget] {
		if o.loaded(src) {
			t.Fatalf("row %d should have been evicted", src)
		}
	}
	// ...and recompute to exactly the same values.
	for _, src := range hosts {
		got, want := o.Row(src), ref.Row(src)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("recomputed row %d differs at %d: %v vs %v", src, v, got[v], want[v])
			}
		}
	}
	// Precompute respects the budget too.
	o2 := NewOracleWith(net, OracleOptions{RowBudget: budget})
	o2.Precompute(hosts)
	if got := o2.CachedRows(); got > budget {
		t.Fatalf("Precompute left %d cached rows, budget %d", got, budget)
	}
}

// TestOracleLatencyWarmsLowerIndex pins the symmetric-miss fix: a cold
// Latency(u,v) query computes exactly one row — the lower-indexed
// endpoint's — and the mirrored query reuses it instead of computing a
// second row.
func TestOracleLatencyWarmsLowerIndex(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	u, v := net.StubHosts[5], net.StubHosts[2]
	if u < v {
		u, v = v, u // ensure u > v
	}
	o := NewOracle(net)
	luv := o.Latency(u, v)
	if got := o.CachedRows(); got != 1 {
		t.Fatalf("cold Latency cached %d rows, want 1", got)
	}
	if !o.loaded(v) || o.loaded(u) {
		t.Fatalf("cold Latency should warm the lower endpoint %d, not %d", v, u)
	}
	lvu := o.Latency(v, u)
	if got := o.CachedRows(); got != 1 {
		t.Fatalf("mirrored Latency grew the cache to %d rows, want 1", got)
	}
	if luv != lvu {
		t.Fatalf("asymmetric latency: %v vs %v", luv, lvu)
	}
}

// TestOracleBoundedConcurrentAccess hammers a small-budget oracle from many
// goroutines (run under -race in CI). Every answer must match the reference
// oracle regardless of eviction interleaving.
func TestOracleBoundedConcurrentAccess(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	ref := NewOracle(net)
	o := NewOracleWith(net, OracleOptions{RowBudget: 3})
	hosts := net.StubHosts[:10]
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w + 1))
			for i := 0; i < 200; i++ {
				u := hosts[r.Intn(len(hosts))]
				v := hosts[r.Intn(len(hosts))]
				if got, want := o.Latency(u, v), ref.Latency(u, v); got != want {
					select {
					case errCh <- fmt.Errorf("Latency(%d,%d) = %v, want %v", u, v, got, want):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if got := o.CachedRows(); got > 3 {
		t.Fatalf("CachedRows() = %d after concurrent access, budget 3", got)
	}
}

// TestOracleBoundedEvictionChurn pins the ensure-return fix: with a budget
// of 1 every admission evicts the previous row, so a reader that re-loaded
// the atomic slot after ensure (instead of using the row ensure returned)
// would dereference a nil pointer almost immediately. Runs in both row
// representations; CI runs it under -race.
func TestOracleBoundedEvictionChurn(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, f32 := range []bool{false, true} {
		o := NewOracleWith(net, OracleOptions{RowBudget: 1, Float32: f32})
		hosts := net.StubHosts[:8]
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := rng.New(uint64(w + 1))
				for i := 0; i < 300; i++ {
					u := hosts[r.Intn(len(hosts))]
					v := hosts[r.Intn(len(hosts))]
					_ = o.Latency(u, v)
					if i%16 == 0 {
						_ = o.Row(u)
					}
				}
			}(w)
		}
		wg.Wait()
		if got := o.CachedRows(); got > 1 {
			t.Fatalf("Float32=%v: CachedRows() = %d, budget 1", f32, got)
		}
	}
}

// BenchmarkOracleWarmupAllSources is the acceptance benchmark for the CSR
// oracle: warm every stub host's row on a fresh oracle (the all-sources
// warm-up every experiment trial performs in pickHosts).
func BenchmarkOracleWarmupAllSources(b *testing.B) {
	net, err := Generate(TSLarge(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	srcs := net.StubHosts[:256]
	net.Graph.Frozen() // freeze outside the timed loop, as Generate does
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := NewOracle(net)
		o.Precompute(srcs)
	}
}

// BenchmarkOracleWarmupAllSourcesBaseline is the pre-PR equivalent: one
// map-based binary-heap Dijkstra per source, exactly what the old oracle's
// warm-up did per row.
func BenchmarkOracleWarmupAllSourcesBaseline(b *testing.B) {
	net, err := Generate(TSLarge(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	srcs := net.StubHosts[:256]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := make([][]float64, 0, len(srcs))
		for _, s := range srcs {
			rows = append(rows, net.Graph.ShortestPathsBaseline(s))
		}
		_ = rows
	}
}

// BenchmarkOracleDijkstraAfterWarmup measures one full Dijkstra on the CSR
// kernel once the scratch pool is warm: a RowBudget-1 oracle evicts every
// previous row, so each Row call runs a fresh single-source computation —
// the steady state of a memory-bounded full-scale run.
func BenchmarkOracleDijkstraAfterWarmup(b *testing.B) {
	net, err := Generate(TSLarge(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	o := NewOracleWith(net, OracleOptions{RowBudget: 1})
	hosts := net.StubHosts
	o.Row(hosts[0]) // warm the scratch pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Row(hosts[i%len(hosts)])
	}
}

// BenchmarkOracleDijkstraAfterWarmupBaseline is the pre-PR per-row kernel:
// map adjacency plus container/heap, which allocates on every push.
func BenchmarkOracleDijkstraAfterWarmupBaseline(b *testing.B) {
	net, err := Generate(TSLarge(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	hosts := net.StubHosts
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Graph.ShortestPathsBaseline(hosts[i%len(hosts)])
	}
}
