package netsim_test

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/rng"
)

// Example builds the paper's ts-large physical network and asks the oracle
// for a latency.
func Example() {
	net, err := netsim.Generate(netsim.TSLarge(), rng.New(1))
	if err != nil {
		panic(err)
	}
	oracle := netsim.NewOracle(net)
	a, b := net.StubHosts[0], net.StubHosts[len(net.StubHosts)-1]
	fmt.Printf("hosts: %d\n", len(net.StubHosts))
	fmt.Printf("connected: %v\n", net.Graph.Connected())
	fmt.Printf("symmetric: %v\n", oracle.Latency(a, b) == oracle.Latency(b, a))
	// Output:
	// hosts: 2400
	// connected: true
	// symmetric: true
}

// ExampleOracle_Precompute warms the distance cache in parallel before a
// measurement phase.
func ExampleOracle_Precompute() {
	net, _ := netsim.Generate(netsim.TSSmall(), rng.New(2))
	oracle := netsim.NewOracle(net)
	oracle.Precompute(net.StubHosts[:64])
	fmt.Println(oracle.CachedRows())
	// Output:
	// 64
}
