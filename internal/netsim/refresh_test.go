package netsim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// churnMutation removes a stub host's first access link and re-adds it with
// a different weight — the physical-graph footprint of one leave/rejoin.
func churnMutation(t *testing.T, net *Network, host int, bump float64) {
	t.Helper()
	nbrs := net.Graph.Neighbors(host)
	if len(nbrs) == 0 {
		t.Fatalf("host %d has no links", host)
	}
	w, _ := net.Graph.Weight(host, nbrs[0])
	if !net.Graph.RemoveEdge(host, nbrs[0]) {
		t.Fatalf("failed to remove edge {%d,%d}", host, nbrs[0])
	}
	net.Graph.MustAddEdge(host, nbrs[0], w+bump)
}

// TestRefreshMatchesFresh warms rows across every domain, applies a churn
// mutation, refreshes, and asserts every still-cached row and every point
// query is bit-identical to a from-scratch oracle.
func TestRefreshMatchesFresh(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(net)
	o.Precompute(net.StubHosts)
	before := o.CachedRows()

	churnMutation(t, net, net.StubHosts[0], 1.5)
	st := o.Refresh()
	if st.FullRebuild {
		t.Fatalf("single-mutation refresh fell back to full rebuild: %+v", st)
	}
	if st.NetAdded != 1 || st.NetRemoved != 1 || st.DirtyDomains != 1 {
		t.Fatalf("stats = %+v, want 1 net add, 1 net remove, 1 dirty domain", st)
	}
	if st.RowsDropped == 0 || st.RowsDropped >= before {
		t.Fatalf("dropped %d of %d rows; want some but not all", st.RowsDropped, before)
	}
	if o.CachedRows() != before-st.RowsDropped {
		t.Fatalf("CachedRows = %d, want %d", o.CachedRows(), before-st.RowsDropped)
	}

	fresh := net.Graph.Freeze()
	want := make([]float64, fresh.NumVertices())
	for _, src := range net.StubHosts {
		fresh.ShortestPathsInto(src, want)
		row := o.Row(src) // cached-and-repaired or recomputed on demand
		for i := range want {
			if row[i] != want[i] {
				t.Fatalf("row %d entry %d = %v, want %v (dropped domains %d)", src, i, row[i], want[i], st.DirtyDomains)
			}
		}
	}
}

// TestRefreshDirtyDomainPolicy asserts rows rooted in the mutated domain
// are dropped while rows in clean domains survive.
func TestRefreshDirtyDomainPolicy(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(net)
	o.Precompute(net.StubHosts)

	victim := net.StubHosts[0]
	churnMutation(t, net, victim, 2.0)
	dirty := net.Domain[victim]
	st := o.Refresh()
	if st.FullRebuild {
		t.Fatalf("unexpected full rebuild: %+v", st)
	}
	for _, src := range net.StubHosts {
		cached := o.loaded(src)
		if net.Domain[src] == dirty && cached {
			t.Fatalf("row %d in dirty domain %d survived", src, dirty)
		}
		if net.Domain[src] != dirty && !cached {
			t.Fatalf("row %d in clean domain %d was dropped", src, net.Domain[src])
		}
	}
}

// TestRefreshRepeated drives several refresh cycles (exercising the delta
// view chain and compaction) and checks consistency after each.
func TestRefreshRepeated(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(net)
	o.Precompute(net.StubHosts)
	r := rng.New(11)
	compacted := false
	for round := 0; round < 12; round++ {
		churnMutation(t, net, net.StubHosts[r.Intn(len(net.StubHosts))], float64(1+r.Intn(5)))
		st := o.Refresh()
		compacted = compacted || st.Compacted
		fresh := net.Graph.Freeze()
		want := make([]float64, fresh.NumVertices())
		for k := 0; k < 6; k++ {
			src := net.StubHosts[r.Intn(len(net.StubHosts))]
			fresh.ShortestPathsInto(src, want)
			row := o.Row(src)
			for i := range want {
				if row[i] != want[i] {
					t.Fatalf("round %d row %d entry %d = %v, want %v", round, src, i, row[i], want[i])
				}
			}
		}
	}
}

// f32RowTol is the acceptance band for repaired Float32 rows: a repaired
// value may differ from a from-scratch Float32 computation by a few ulps
// (~2⁻²³ relative), because the repair recomputes from rounded boundary
// distances. 1e-5 relative leaves room for drift across repeated refreshes
// while still catching any real repair bug (wrong distances differ by whole
// link weights, i.e. milliseconds).
const f32RowTol = 1e-5

// f32Close reports whether a repaired Float32 distance matches the
// reference within the relative tolerance band.
func f32Close(got, want float64) bool {
	if got == want {
		return true
	}
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff <= f32RowTol*(got+want)
}

// TestRefreshFloat32Repair pins the Float32 repair path (ROADMAP item 5
// leftover): a churn batch must NOT trigger the historical full-rebuild
// fallback; clean-domain rows are repaired in place through float64
// scratch, and every surviving row matches a from-scratch Float32 oracle
// within a few ulps.
func TestRefreshFloat32Repair(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracleWith(net, OracleOptions{Float32: true})
	var rebuilds, f32 obs.Counter
	o.SetRefreshInstruments(&rebuilds, &f32)
	o.Precompute(net.StubHosts)
	before := o.CachedRows()

	churnMutation(t, net, net.StubHosts[0], 1.5)
	st := o.Refresh()
	if st.FullRebuild {
		t.Fatalf("Float32 churn refresh fell back to full rebuild: %+v", st)
	}
	if st.RowsRepaired == 0 {
		t.Fatalf("no rows repaired in place: %+v", st)
	}
	if st.RowsDropped == 0 || st.RowsDropped >= before {
		t.Fatalf("dropped %d of %d rows; want the dirty domain but not all", st.RowsDropped, before)
	}
	if rebuilds.Value() != 0 || f32.Value() != 0 {
		t.Fatalf("refresh instruments = (%d rebuilds, %d float32), want (0, 0)", rebuilds.Value(), f32.Value())
	}

	fresh := net.Graph.Freeze()
	want32 := make([]float32, fresh.NumVertices())
	for _, src := range net.StubHosts {
		fresh.ShortestPathsF32Into(src, want32)
		row := o.Row(src) // repaired in place or recomputed on demand
		for i := range want32 {
			if !f32Close(row[i], float64(want32[i])) {
				t.Fatalf("row %d entry %d = %v, want %v (±%g rel)", src, i, row[i], want32[i], f32RowTol)
			}
		}
	}
}

// TestRefreshFloat32Repeated drives several churn/refresh cycles in Float32
// mode; the rounding error must stay inside the tolerance band instead of
// compounding.
func TestRefreshFloat32Repeated(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracleWith(net, OracleOptions{Float32: true})
	o.Precompute(net.StubHosts)
	r := rng.New(11)
	repaired := 0
	for round := 0; round < 12; round++ {
		churnMutation(t, net, net.StubHosts[r.Intn(len(net.StubHosts))], float64(1+r.Intn(5)))
		st := o.Refresh()
		if st.FullRebuild {
			t.Fatalf("round %d fell back to full rebuild: %+v", round, st)
		}
		repaired += st.RowsRepaired
		fresh := net.Graph.Freeze()
		want32 := make([]float32, fresh.NumVertices())
		for k := 0; k < 6; k++ {
			src := net.StubHosts[r.Intn(len(net.StubHosts))]
			fresh.ShortestPathsF32Into(src, want32)
			row := o.Row(src)
			for i := range want32 {
				if !f32Close(row[i], float64(want32[i])) {
					t.Fatalf("round %d row %d entry %d = %v, want %v", round, src, i, row[i], want32[i])
				}
			}
		}
	}
	if repaired == 0 {
		t.Fatal("12 churn rounds never repaired a Float32 row in place")
	}
}

// TestRefreshFullRebuildPaths covers the remaining fallback cases: vertex
// growth (here) and journal overflow force a rebuild that still answers
// correctly; Float32 rows no longer do (TestRefreshFloat32Repair).
func TestRefreshFullRebuildPaths(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	o2 := NewOracle(net)
	var rebuilds2, f322 obs.Counter
	o2.SetRefreshInstruments(&rebuilds2, &f322)
	o2.Precompute(net.StubHosts[:4])
	v := net.Graph.AddVertex()
	net.Graph.MustAddEdge(v, net.StubHosts[0], 3)
	// Network metadata (Domain, Tiers) is not extended here; growth must be
	// absorbed before any domain logic runs.
	if st := o2.Refresh(); !st.FullRebuild || st.Reason != RefreshFallbackVertexGrowth {
		t.Fatalf("vertex growth must rebuild with reason %q, got %+v", RefreshFallbackVertexGrowth, st)
	}
	if rebuilds2.Value() != 1 || f322.Value() != 0 {
		t.Fatalf("refresh instruments = (%d rebuilds, %d float32), want (1, 0)", rebuilds2.Value(), f322.Value())
	}
	if got := o2.NumNodes(); got != net.Graph.NumVertices() {
		t.Fatalf("post-growth NumNodes = %d, want %d", got, net.Graph.NumVertices())
	}
}

// TestRefreshBoundedMode checks the FIFO ring survives a refresh: survivors
// keep admission order, dropped rows free budget, eviction still works.
func TestRefreshBoundedMode(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracleWith(net, OracleOptions{RowBudget: 8})
	o.Precompute(net.StubHosts[:8])
	churnMutation(t, net, net.StubHosts[0], 1.0)
	st := o.Refresh()
	if st.FullRebuild {
		t.Fatalf("unexpected rebuild: %+v", st)
	}
	if got := o.CachedRows(); got != 8-st.RowsDropped {
		t.Fatalf("CachedRows = %d, want %d", got, 8-st.RowsDropped)
	}
	// Fill the ring back up and push it over budget; it must evict cleanly
	// and stay exact.
	fresh := net.Graph.Freeze()
	for _, src := range net.StubHosts[:12] {
		row := o.Row(src)
		want := make([]float64, fresh.NumVertices())
		fresh.ShortestPathsInto(src, want)
		for i := range want {
			if row[i] != want[i] {
				t.Fatalf("row %d entry %d = %v, want %v", src, i, row[i], want[i])
			}
		}
	}
	if got := o.CachedRows(); got != 8 {
		t.Fatalf("CachedRows after overfill = %d, want 8", got)
	}
}

// TestRefreshNoopBatch: mutations that cancel advance the version without
// touching rows.
func TestRefreshNoopBatch(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(net)
	o.Precompute(net.StubHosts[:6])
	host := net.StubHosts[0]
	nb := net.Graph.Neighbors(host)[0]
	w, _ := net.Graph.Weight(host, nb)
	net.Graph.RemoveEdge(host, nb)
	net.Graph.MustAddEdge(host, nb, w)
	st := o.Refresh()
	if st.FullRebuild || st.NetAdded != 0 || st.NetRemoved != 0 {
		t.Fatalf("cancelled batch stats = %+v", st)
	}
	if got := o.CachedRows(); got != 6 {
		t.Fatalf("CachedRows = %d, want 6", got)
	}
	if st2 := o.Refresh(); st2.Mutations != 0 {
		t.Fatalf("second refresh saw %d mutations", st2.Mutations)
	}
}

// graph.CSRView conformance of both oracle view types, pinned at compile
// time.
var (
	_ graph.CSRView = (*graph.Frozen)(nil)
	_ graph.CSRView = (*graph.DeltaView)(nil)
)

// benchChurnSetup builds the ts-large network plus 256 warm sources spread
// across all stub domains — the BENCH_PR2 oracle workload shape.
func benchChurnSetup(b *testing.B) (*Network, []int) {
	b.Helper()
	net, err := Generate(TSLarge(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	srcs := make([]int, 256)
	for i := range srcs {
		srcs[i] = net.StubHosts[i*len(net.StubHosts)/len(srcs)]
	}
	return net, srcs
}

// benchChurnMutate rewires one random stub host's first access link — the
// single churn mutation of the PR-7 acceptance benchmark.
func benchChurnMutate(net *Network, r *rng.Rand) {
	host := net.StubHosts[r.Intn(len(net.StubHosts))]
	nb := net.Graph.Neighbors(host)[0]
	w, _ := net.Graph.Weight(host, nb)
	net.Graph.RemoveEdge(host, nb)
	net.Graph.MustAddEdge(host, nb, w+1)
}

// BenchmarkOracleChurnRefresh measures restoring a 256-row warm oracle
// after a single churn mutation via Refresh: repair clean-domain rows in
// place, recompute only the dropped dirty-domain rows.
func BenchmarkOracleChurnRefresh(b *testing.B) {
	net, srcs := benchChurnSetup(b)
	o := NewOracle(net)
	o.Precompute(srcs)
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchChurnMutate(net, r)
		o.Refresh()
		o.Precompute(srcs)
	}
}

// BenchmarkOracleChurnRebuild is the pre-PR7 behavior: the same mutation
// invalidates everything, so the oracle is rebuilt and re-warmed from
// scratch.
func BenchmarkOracleChurnRebuild(b *testing.B) {
	net, srcs := benchChurnSetup(b)
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchChurnMutate(net, r)
		o := NewOracle(net)
		o.Precompute(srcs)
	}
}

// BenchmarkOracleChurnRefreshF32 pins the Float32 repair path (the PR-9
// bugfix): one churn mutation against a 256-row warm Float32 oracle must
// cost repair + dirty-row recompute, not the full rebuild the historical
// RefreshFallbackFloat32 fallback paid. Compare against
// BenchmarkOracleChurnRebuildF32.
func BenchmarkOracleChurnRefreshF32(b *testing.B) {
	net, srcs := benchChurnSetup(b)
	o := NewOracleWith(net, OracleOptions{Float32: true})
	o.Precompute(srcs)
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchChurnMutate(net, r)
		o.Refresh()
		o.Precompute(srcs)
	}
}

// BenchmarkOracleChurnRebuildF32 is what every Float32 refresh used to
// cost: a from-scratch oracle plus a full re-warm after each mutation.
func BenchmarkOracleChurnRebuildF32(b *testing.B) {
	net, srcs := benchChurnSetup(b)
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchChurnMutate(net, r)
		o := NewOracleWith(net, OracleOptions{Float32: true})
		o.Precompute(srcs)
	}
}
