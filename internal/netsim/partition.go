package netsim

// PartitionByDomain returns the isolated-host set of a network partition
// that cuts the listed transit domains off from the rest of the backbone:
// every physical node — transit router or stub host — whose Domain index is
// listed ends up on the far side. The result plugs directly into
// faults.Config.Isolated; messages between an isolated and a non-isolated
// node are dropped for the duration of the partition window, while traffic
// within either side is unaffected.
func (n *Network) PartitionByDomain(domains ...int) map[int]bool {
	want := make(map[int]bool, len(domains))
	for _, d := range domains {
		want[d] = true
	}
	iso := map[int]bool{}
	for id, d := range n.Domain {
		if want[d] {
			iso[id] = true
		}
	}
	return iso
}
