// Package netsim models the underlying physical network of the PROP paper's
// evaluation: transit-stub Internet topologies in the style of GT-ITM
// (Zegura, Calvert, Bhattacharjee, INFOCOM '96), three-tier link latencies,
// and a concurrent shortest-path latency oracle that plays the role of the
// probe packets in the authors' simulator.
//
// A transit-stub topology has a backbone of transit domains (each a small
// well-connected mesh of transit routers) and, hanging off every transit
// router, a number of stub domains (denser local networks of end hosts).
// Overlay peers are placed on stub hosts; the latency between any two peers
// is the shortest path through the physical graph.
//
// Key types: Config (the ts-large/ts-small presets), Network, and Oracle
// (oracle.go; its observability counters are part of DESIGN.md §8). The
// inventory entry is DESIGN.md §1.
package netsim

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Tier classifies a physical node.
type Tier uint8

const (
	// TierTransit marks a backbone router inside a transit domain.
	TierTransit Tier = iota
	// TierStub marks an edge host inside a stub domain.
	TierStub
)

// Config parameterizes the transit-stub generator. All counts must be
// positive; Validate reports the first violation.
type Config struct {
	// Name labels the preset (e.g. "ts-large") in tables and traces.
	Name string
	// TransitDomains is the number of backbone domains.
	TransitDomains int
	// TransitNodesPerDomain is the number of routers per transit domain.
	TransitNodesPerDomain int
	// StubDomainsPerTransit is the number of stub domains attached to each
	// transit router.
	StubDomainsPerTransit int
	// NodesPerStub is the number of hosts in each stub domain.
	NodesPerStub int
	// StubExtraEdgeProb is the probability of each candidate chord edge
	// inside a stub domain (on top of a connecting ring).
	StubExtraEdgeProb float64
	// InterDomainEdgeProb is the probability of a backbone edge between any
	// two distinct transit domains beyond the connecting ring.
	InterDomainEdgeProb float64
	// Latencies of the three link classes, in milliseconds.
	StubStubMS       float64
	StubTransitMS    float64
	TransitTransitMS float64
}

// TSLarge returns the reconstruction of the paper's ts-large preset: a
// large, well-connected backbone with sparse edge networks — "much like the
// Internet", per the paper. See DESIGN.md §4 for the digit reconstruction.
func TSLarge() Config {
	return Config{
		Name:                  "ts-large",
		TransitDomains:        10,
		TransitNodesPerDomain: 4,
		StubDomainsPerTransit: 3,
		NodesPerStub:          20,
		StubExtraEdgeProb:     0.08,
		InterDomainEdgeProb:   0.5,
		StubStubMS:            5,
		StubTransitMS:         20,
		TransitTransitMS:      50,
	}
}

// TSSmall returns the reconstruction of the paper's ts-small preset: a
// small backbone ("only [a few] transit domains") with dense edge networks
// (many hosts per stub domain). Total host count matches TSLarge closely.
func TSSmall() Config {
	return Config{
		Name:                  "ts-small",
		TransitDomains:        2,
		TransitNodesPerDomain: 4,
		StubDomainsPerTransit: 3,
		NodesPerStub:          100,
		StubExtraEdgeProb:     0.02,
		InterDomainEdgeProb:   1.0,
		StubStubMS:            5,
		StubTransitMS:         20,
		TransitTransitMS:      50,
	}
}

// Validate reports whether the configuration is structurally sound.
func (c Config) Validate() error {
	switch {
	case c.TransitDomains <= 0:
		return fmt.Errorf("netsim: TransitDomains = %d, want > 0", c.TransitDomains)
	case c.TransitNodesPerDomain <= 0:
		return fmt.Errorf("netsim: TransitNodesPerDomain = %d, want > 0", c.TransitNodesPerDomain)
	case c.StubDomainsPerTransit < 0:
		return fmt.Errorf("netsim: StubDomainsPerTransit = %d, want >= 0", c.StubDomainsPerTransit)
	case c.NodesPerStub <= 0:
		return fmt.Errorf("netsim: NodesPerStub = %d, want > 0", c.NodesPerStub)
	case c.StubStubMS <= 0 || c.StubTransitMS <= 0 || c.TransitTransitMS <= 0:
		return fmt.Errorf("netsim: link latencies must be positive (got %v/%v/%v)",
			c.StubStubMS, c.StubTransitMS, c.TransitTransitMS)
	case c.StubExtraEdgeProb < 0 || c.StubExtraEdgeProb > 1:
		return fmt.Errorf("netsim: StubExtraEdgeProb = %v out of [0,1]", c.StubExtraEdgeProb)
	case c.InterDomainEdgeProb < 0 || c.InterDomainEdgeProb > 1:
		return fmt.Errorf("netsim: InterDomainEdgeProb = %v out of [0,1]", c.InterDomainEdgeProb)
	}
	return nil
}

// TotalTransit returns the number of transit routers the config generates.
func (c Config) TotalTransit() int { return c.TransitDomains * c.TransitNodesPerDomain }

// TotalStubHosts returns the number of stub hosts the config generates.
func (c Config) TotalStubHosts() int {
	return c.TotalTransit() * c.StubDomainsPerTransit * c.NodesPerStub
}

// TotalNodes returns the total physical node count.
func (c Config) TotalNodes() int { return c.TotalTransit() + c.TotalStubHosts() }

// Network is a generated physical topology.
type Network struct {
	// Graph is the weighted physical graph; weights are milliseconds.
	Graph *graph.Graph
	// Tiers records the tier of every physical node.
	Tiers []Tier
	// StubHosts lists the IDs of all stub hosts, the candidate attachment
	// points for overlay peers.
	StubHosts []int
	// Domain maps each node to its transit-domain index (stub hosts inherit
	// the domain of the transit router they hang off).
	Domain []int
	// StubDomain maps each stub host to a dense stub-domain index, and each
	// transit router to -1.
	StubDomain []int
	// Config echoes the generator parameters.
	Config Config
}

// Generate builds a transit-stub network from cfg using the deterministic
// generator r. The result is always connected.
func Generate(cfg Config, r *rng.Rand) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.TotalNodes()
	g := graph.New(n)
	net := &Network{
		Graph:      g,
		Tiers:      make([]Tier, n),
		Domain:     make([]int, n),
		StubDomain: make([]int, n),
		Config:     cfg,
	}
	for i := range net.StubDomain {
		net.StubDomain[i] = -1
	}

	// Transit routers occupy IDs [0, totalTransit); stub hosts follow.
	totalTransit := cfg.TotalTransit()
	transitOf := func(domain, k int) int { return domain*cfg.TransitNodesPerDomain + k }

	// Intra-domain backbone: full mesh within each transit domain (domains
	// are small, typically 4 routers — GT-ITM uses a connected random graph;
	// a mesh is the dense limit and keeps the backbone low-stretch).
	for d := 0; d < cfg.TransitDomains; d++ {
		for a := 0; a < cfg.TransitNodesPerDomain; a++ {
			net.Tiers[transitOf(d, a)] = TierTransit
			net.Domain[transitOf(d, a)] = d
			for b := a + 1; b < cfg.TransitNodesPerDomain; b++ {
				g.MustAddEdge(transitOf(d, a), transitOf(d, b), cfg.TransitTransitMS)
			}
		}
	}

	// Inter-domain backbone: a ring over domains guarantees connectivity;
	// extra random domain pairs with probability InterDomainEdgeProb model a
	// richer core. Endpoints inside each domain are chosen at random.
	connectDomains := func(d1, d2 int) {
		u := transitOf(d1, r.Intn(cfg.TransitNodesPerDomain))
		v := transitOf(d2, r.Intn(cfg.TransitNodesPerDomain))
		g.MustAddEdge(u, v, cfg.TransitTransitMS)
	}
	if cfg.TransitDomains > 1 {
		for d := 0; d < cfg.TransitDomains; d++ {
			connectDomains(d, (d+1)%cfg.TransitDomains)
		}
		for d1 := 0; d1 < cfg.TransitDomains; d1++ {
			for d2 := d1 + 2; d2 < cfg.TransitDomains; d2++ {
				if d1 == 0 && d2 == cfg.TransitDomains-1 {
					continue // ring already covers this pair
				}
				if r.Bool(cfg.InterDomainEdgeProb) {
					connectDomains(d1, d2)
				}
			}
		}
	}

	// Stub domains: each is a ring of hosts plus random chords, attached to
	// its transit router by one stub-transit uplink (ring ⇒ connected).
	next := totalTransit
	stubDomainIdx := 0
	for d := 0; d < cfg.TransitDomains; d++ {
		for k := 0; k < cfg.TransitNodesPerDomain; k++ {
			router := transitOf(d, k)
			for s := 0; s < cfg.StubDomainsPerTransit; s++ {
				first := next
				for h := 0; h < cfg.NodesPerStub; h++ {
					id := next
					next++
					net.Tiers[id] = TierStub
					net.Domain[id] = d
					net.StubDomain[id] = stubDomainIdx
					net.StubHosts = append(net.StubHosts, id)
					if cfg.NodesPerStub > 1 {
						if h > 0 {
							g.MustAddEdge(id, id-1, cfg.StubStubMS)
						}
						if h == cfg.NodesPerStub-1 && cfg.NodesPerStub > 2 {
							g.MustAddEdge(id, first, cfg.StubStubMS)
						}
					}
				}
				// Chords inside the stub domain.
				for a := first; a < next; a++ {
					for b := a + 2; b < next; b++ {
						if !g.HasEdge(a, b) && r.Bool(cfg.StubExtraEdgeProb) {
							g.MustAddEdge(a, b, cfg.StubStubMS)
						}
					}
				}
				// Uplink from a random host of the stub domain.
				up := first + r.Intn(cfg.NodesPerStub)
				g.MustAddEdge(up, router, cfg.StubTransitMS)
				stubDomainIdx++
			}
		}
	}

	// Structurally impossible given ring construction, but the invariant is
	// cheap to verify and load-bearing for everything else. Checking on the
	// frozen CSR view also warms the cache the latency oracle reads from.
	if !g.Frozen().Connected() {
		return nil, fmt.Errorf("netsim: generated network is not connected")
	}
	return net, nil
}

// MeanLinkLatency returns the average physical link latency, the
// denominator of the paper's stretch metric.
func (n *Network) MeanLinkLatency() float64 { return n.Graph.MeanEdgeWeight() }

// String summarizes the network.
func (n *Network) String() string {
	return fmt.Sprintf("%s: %d nodes (%d transit, %d stub hosts), %d links, mean link %.2f ms",
		n.Config.Name, n.Graph.NumVertices(), n.Config.TotalTransit(),
		len(n.StubHosts), n.Graph.NumEdges(), n.MeanLinkLatency())
}
