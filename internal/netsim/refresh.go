package netsim

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// This file is the dynamic-graph side of the oracle (DESIGN.md §11): after
// the physical topology mutates (churn joins/leaves/crashes rewiring access
// links), Refresh absorbs the mutation batch instead of throwing the whole
// CSR and row cache away. Sources in dirty transit domains — domains that
// own a touched edge endpoint — drop their cached rows (most of their
// shortest-path tree changed); sources elsewhere keep their rows and repair
// them in place with graph.RepairRow, whose affected region is typically a
// handful of vertices. The CSR itself advances by a graph.DeltaView patch,
// folded back into a flat snapshot (partial refreeze) once enough rows are
// patched.

// RefreshStats reports what one Oracle.Refresh did, for tests, benchmarks
// and the obs layer.
type RefreshStats struct {
	// Mutations is the journal batch length absorbed by this refresh.
	Mutations int
	// NetAdded and NetRemoved count the batch's net edge changes.
	NetAdded, NetRemoved int
	// DirtyDomains counts transit domains owning a touched edge endpoint.
	DirtyDomains int
	// RowsKept counts cached rows untouched by the batch (repair found an
	// empty affected set), RowsRepaired rows fixed in place, RowsDropped
	// rows invalidated (dirty domain, or repair region too large).
	RowsKept, RowsRepaired, RowsDropped int
	// FullRebuild is set when the refresh fell back to freeze-from-scratch
	// plus a cold cache: journal overflow, vertex growth, or a majority of
	// domains dirty. Reason says which.
	FullRebuild bool
	// Reason identifies the fallback trigger when FullRebuild is set, and is
	// RefreshFallbackNone otherwise.
	Reason RefreshFallbackReason
	// Compacted is set when the delta view was folded into a flat CSR.
	Compacted bool
}

// RefreshFallbackReason identifies why a Refresh abandoned the incremental
// repair path and rebuilt from scratch. Large-n runs should watch these
// (via Oracle.SetRefreshInstruments or RefreshStats.Reason): a refresh that
// silently degrades to rebuilds loses the incremental win without any other
// symptom (DESIGN.md §11).
type RefreshFallbackReason string

const (
	// RefreshFallbackNone marks a refresh that stayed on the incremental
	// path (FullRebuild unset).
	RefreshFallbackNone RefreshFallbackReason = ""
	// RefreshFallbackJournal: the mutation batch overflowed the journal
	// (more than oracleJournalCap mutations since the last refresh).
	RefreshFallbackJournal RefreshFallbackReason = "journal-overflow"
	// RefreshFallbackVertexGrowth: the graph gained vertices, which the
	// patched CSR view cannot represent.
	RefreshFallbackVertexGrowth RefreshFallbackReason = "vertex-growth"
	// RefreshFallbackFloat32 is historical: Float32 oracles once fell back
	// to a full rebuild on every refresh because rounded rows fail the
	// repair kernel's exact-arithmetic parent tests. They now repair in
	// place through float64 scratch with tolerance-band marking
	// (graph.RepairRowF32), so no Refresh emits this reason anymore; the
	// constant remains so stream consumers keyed on it keep compiling.
	RefreshFallbackFloat32 RefreshFallbackReason = "float32"
	// RefreshFallbackMajorityDirty: more than half the transit domains own a
	// touched edge, so repairing rows costs more than recomputing them.
	RefreshFallbackMajorityDirty RefreshFallbackReason = "majority-dirty"
	// RefreshFallbackDeltaMiss: the delta-view chain from the last anchor
	// could not be reconstructed (anchor version no longer in the journal).
	RefreshFallbackDeltaMiss RefreshFallbackReason = "delta-miss"
)

// refreshCompactDenom sets the compaction threshold: when more than
// 1/refreshCompactDenom of the rows are patched, Refresh folds the delta
// view back into a flat CSR.
const refreshCompactDenom = 4

// Refresh brings the oracle up to date with mutations applied to the
// network's physical graph since the last refresh (or construction),
// keeping as much of the row cache as the mutation batch allows. It must
// be called from a quiescent point: no concurrent Latency/Row/Precompute
// calls may be in flight, because surviving rows are repaired in place.
//
// The fast path costs O(batch + cached-rows · repair-region) instead of the
// full O(n·Dijkstra + freeze) rebuild; see BENCH_PR7.json for measured
// ratios. Float32 rows take the same path through a float64 scratch row:
// widen, repair with graph.RepairRowF32 (tolerance-band parent tests absorb
// the rounding), re-round with the same single cast the cold computation
// uses — so repaired rows stay within a few float32 ulps of a from-scratch
// oracle. Falls back to a full rebuild when the journal overflowed, when
// the graph grew vertices, or when more than half the transit domains are
// dirty; the returned stats carry the RefreshFallbackReason, and
// SetRefreshInstruments exposes the same signal as obs counters for long
// runs.
func (o *Oracle) Refresh() RefreshStats {
	g := o.net.Graph
	muts, ok := g.MutationsSince(o.ver)
	if ok && len(muts) == 0 {
		return RefreshStats{}
	}
	st := RefreshStats{Mutations: len(muts)}
	switch {
	case !ok:
		o.fullRebuild(&st, RefreshFallbackJournal)
		return st
	case g.NumVertices() != o.fz.NumVertices():
		o.fullRebuild(&st, RefreshFallbackVertexGrowth)
		return st
	}
	added, removed := graph.NetDiff(muts)
	st.NetAdded, st.NetRemoved = len(added), len(removed)
	if len(added) == 0 && len(removed) == 0 {
		// No-op batch (mutations cancelled out); just advance the version.
		o.ver = g.Version()
		return st
	}

	// Dirty domains: every transit domain owning an endpoint of a changed
	// edge. Rows rooted there lose most of their shortest-path tree, so
	// repairing them is not worth it — they are dropped and recomputed
	// lazily. PartitionByDomain then gives the per-node membership test.
	dirtySet := map[int]bool{}
	for _, e := range added {
		dirtySet[o.net.Domain[e.U]] = true
		dirtySet[o.net.Domain[e.V]] = true
	}
	for _, e := range removed {
		dirtySet[o.net.Domain[e.U]] = true
		dirtySet[o.net.Domain[e.V]] = true
	}
	st.DirtyDomains = len(dirtySet)
	if 2*len(dirtySet) > o.net.Config.TransitDomains {
		o.fullRebuild(&st, RefreshFallbackMajorityDirty)
		return st
	}
	domains := make([]int, 0, len(dirtySet))
	for d := range dirtySet {
		domains = append(domains, d)
	}
	dirtyNode := o.net.PartitionByDomain(domains...)

	// Advance the CSR view by a patch over the current base, compacting
	// into a flat snapshot when the patch covers a quarter of the rows.
	dv, ok := graph.DeltaFrom(g, o.base, o.baseVer)
	if !ok {
		o.fullRebuild(&st, RefreshFallbackDeltaMiss)
		return st
	}
	if dv.PatchedRows()*refreshCompactDenom > dv.NumVertices() {
		o.base = dv.Compact()
		o.baseVer = g.Version()
		o.fz = o.base
		st.Compacted = true
	} else {
		o.fz = dv
	}

	// Walk the cached rows: dirty-domain sources drop, the rest repair in
	// place (bailing to a drop when the affected region explodes). Float32
	// rows repair through one reused float64 scratch row — widen, repair
	// with the tolerance-band kernel, re-round in place with the same plain
	// cast the cold computation uses.
	patch := graph.NewCSRPatch(added, removed)
	n := o.fz.NumVertices()
	maxAffected := n / 4
	dropped := make([]bool, n)
	var scratch []float64
	for src := 0; src < n; src++ {
		r64, r32 := o.load(src)
		if r64 == nil && r32 == nil {
			continue
		}
		if dirtyNode[src] {
			o.dropRow(src)
			dropped[src] = true
			st.RowsDropped++
			continue
		}
		var affected int
		if o.opt.Float32 {
			if scratch == nil {
				scratch = make([]float64, n)
			}
			for i, d := range *r32 {
				scratch[i] = float64(d)
			}
			affected, ok = graph.RepairRowF32(o.fz, patch, src, scratch, maxAffected)
			if ok && affected > 0 {
				for i, d := range scratch {
					(*r32)[i] = float32(d)
				}
			}
		} else {
			affected, ok = graph.RepairRow(o.fz, patch, src, *r64, maxAffected)
		}
		switch {
		case !ok:
			o.dropRow(src)
			dropped[src] = true
			st.RowsDropped++
		case affected > 0:
			st.RowsRepaired++
		default:
			st.RowsKept++
		}
	}

	// Unbounded mode: dropped rows need a fresh sync.Once so the next query
	// recomputes them. The slice is replaced wholesale (a sync.Once cannot
	// be reset in place); surviving rows short-circuit on their atomic slot
	// before ever touching the new Once.
	if o.opt.RowBudget == 0 {
		o.once = make([]sync.Once, n)
	} else {
		// Bounded mode: rebuild the FIFO ring in admission order, keeping
		// only the survivors.
		fifo := make([]int32, o.opt.RowBudget)
		live := 0
		for i := 0; i < o.live; i++ {
			src := o.fifo[(o.head+i)%len(o.fifo)]
			if !dropped[src] {
				fifo[live] = src
				live++
			}
		}
		o.fifo, o.head, o.live = fifo, 0, live
	}
	o.ver = g.Version()
	return st
}

// dropRow invalidates src's cached row in the mode's representation.
func (o *Oracle) dropRow(src int) {
	if o.opt.Float32 {
		o.rows32[src].Store(nil)
	} else {
		o.rows[src].Store(nil)
	}
	o.cached.Add(-1)
}

// fullRebuild is the pre-delta behavior: freeze the graph from scratch and
// start with a cold cache. It stamps the stats with why the incremental
// path was abandoned and bumps the refresh fallback counters when
// instrumented.
func (o *Oracle) fullRebuild(st *RefreshStats, why RefreshFallbackReason) {
	g := o.net.Graph
	st.FullRebuild = true
	st.Reason = why
	st.RowsDropped = int(o.cached.Load())
	if o.instr != nil {
		o.instr.refreshRebuilds.Add(1)
		if why == RefreshFallbackFloat32 {
			o.instr.refreshF32.Add(1)
		}
	}
	o.base = g.Freeze()
	o.fz = o.base
	o.baseVer = g.Version()
	o.ver = g.Version()
	n := g.NumVertices()
	if o.opt.Float32 {
		o.rows32 = make([]atomic.Pointer[[]float32], n)
	} else {
		o.rows = make([]atomic.Pointer[[]float64], n)
	}
	o.cached.Store(0)
	if o.opt.RowBudget == 0 {
		o.once = make([]sync.Once, n)
	} else {
		o.fifo = make([]int32, o.opt.RowBudget)
		o.head, o.live = 0, 0
	}
	// Re-anchor the journal so the next refresh window starts here even if
	// the journal had overflowed.
	g.TrackMutations(oracleJournalCap)
}
