package netsim

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{TSLarge(), TSSmall()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestPresetShapesMatchPaper(t *testing.T) {
	large, small := TSLarge(), TSSmall()
	// "ts-large has a larger backbone and sparser edge network than ts-small".
	if large.TotalTransit() <= small.TotalTransit() {
		t.Errorf("ts-large backbone (%d) not larger than ts-small (%d)",
			large.TotalTransit(), small.TotalTransit())
	}
	if large.NodesPerStub >= small.NodesPerStub {
		t.Errorf("ts-large edge density (%d/stub) not sparser than ts-small (%d/stub)",
			large.NodesPerStub, small.NodesPerStub)
	}
	// "both of which contain about [the same number of] nodes".
	ratio := float64(large.TotalNodes()) / float64(small.TotalNodes())
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("preset sizes diverge: ts-large %d vs ts-small %d", large.TotalNodes(), small.TotalNodes())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := TSLarge()
	mutations := []func(*Config){
		func(c *Config) { c.TransitDomains = 0 },
		func(c *Config) { c.TransitNodesPerDomain = -1 },
		func(c *Config) { c.StubDomainsPerTransit = -1 },
		func(c *Config) { c.NodesPerStub = 0 },
		func(c *Config) { c.StubStubMS = 0 },
		func(c *Config) { c.StubTransitMS = -5 },
		func(c *Config) { c.TransitTransitMS = 0 },
		func(c *Config) { c.StubExtraEdgeProb = 1.5 },
		func(c *Config) { c.InterDomainEdgeProb = -0.1 },
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config accepted", i)
		}
		if _, err := Generate(cfg, rng.New(1)); err == nil {
			t.Errorf("mutation %d: Generate accepted invalid config", i)
		}
	}
}

func TestGenerateCounts(t *testing.T) {
	cfg := TSLarge()
	net, err := Generate(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Graph.NumVertices(); got != cfg.TotalNodes() {
		t.Errorf("nodes = %d, want %d", got, cfg.TotalNodes())
	}
	if got := len(net.StubHosts); got != cfg.TotalStubHosts() {
		t.Errorf("stub hosts = %d, want %d", got, cfg.TotalStubHosts())
	}
	transit := 0
	for _, tier := range net.Tiers {
		if tier == TierTransit {
			transit++
		}
	}
	if transit != cfg.TotalTransit() {
		t.Errorf("transit routers = %d, want %d", transit, cfg.TotalTransit())
	}
}

func TestGenerateConnectedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		cfg := Config{
			Name:                  "prop-test",
			TransitDomains:        1 + r.Intn(5),
			TransitNodesPerDomain: 1 + r.Intn(4),
			StubDomainsPerTransit: 1 + r.Intn(3),
			NodesPerStub:          1 + r.Intn(12),
			StubExtraEdgeProb:     r.Float64() * 0.3,
			InterDomainEdgeProb:   r.Float64(),
			StubStubMS:            5,
			StubTransitMS:         20,
			TransitTransitMS:      50,
		}
		net, err := Generate(cfg, r)
		if err != nil {
			return false
		}
		return net.Graph.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(TSSmall(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(TSSmall(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestLinkLatencyClasses(t *testing.T) {
	cfg := TSLarge()
	net, err := Generate(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range net.Graph.Edges() {
		tu, tv := net.Tiers[e.U], net.Tiers[e.V]
		var want float64
		switch {
		case tu == TierStub && tv == TierStub:
			want = cfg.StubStubMS
		case tu == TierTransit && tv == TierTransit:
			want = cfg.TransitTransitMS
		default:
			want = cfg.StubTransitMS
		}
		if e.W != want {
			t.Fatalf("edge %+v: weight %v, want %v (tiers %d-%d)", e, e.W, want, tu, tv)
		}
	}
}

func TestStubDomainLabels(t *testing.T) {
	cfg := TSSmall()
	net, err := Generate(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, h := range net.StubHosts {
		sd := net.StubDomain[h]
		if sd < 0 {
			t.Fatalf("stub host %d has no stub-domain label", h)
		}
		counts[sd]++
	}
	wantDomains := cfg.TotalTransit() * cfg.StubDomainsPerTransit
	if len(counts) != wantDomains {
		t.Fatalf("stub-domain count = %d, want %d", len(counts), wantDomains)
	}
	for sd, c := range counts {
		if c != cfg.NodesPerStub {
			t.Fatalf("stub domain %d has %d hosts, want %d", sd, c, cfg.NodesPerStub)
		}
	}
	for id, tier := range net.Tiers {
		if tier == TierTransit && net.StubDomain[id] != -1 {
			t.Fatalf("transit router %d has stub-domain label %d", id, net.StubDomain[id])
		}
	}
}

func TestIntraStubCloserThanInterDomain(t *testing.T) {
	net, err := Generate(TSLarge(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(net)
	// Two hosts in the same stub domain must be much closer than two hosts
	// in different transit domains — the premise of the whole paper.
	var sameStub, crossDomain []float64
	hosts := net.StubHosts
	for i := 0; i < 200; i++ {
		u, v := hosts[i%len(hosts)], hosts[(i*37+11)%len(hosts)]
		if u == v {
			continue
		}
		d := o.Latency(u, v)
		switch {
		case net.StubDomain[u] == net.StubDomain[v]:
			sameStub = append(sameStub, d)
		case net.Domain[u] != net.Domain[v]:
			crossDomain = append(crossDomain, d)
		}
	}
	if len(sameStub) == 0 || len(crossDomain) == 0 {
		t.Skip("sample did not cover both classes")
	}
	if mean(sameStub) >= mean(crossDomain) {
		t.Fatalf("same-stub mean %.1f >= cross-domain mean %.1f", mean(sameStub), mean(crossDomain))
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestOracleBasics(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(net)
	if d := o.Latency(5, 5); d != 0 {
		t.Fatalf("self latency = %v", d)
	}
	d1 := o.Latency(net.StubHosts[0], net.StubHosts[50])
	d2 := o.Latency(net.StubHosts[50], net.StubHosts[0])
	if d1 != d2 {
		t.Fatalf("asymmetric latency: %v vs %v", d1, d2)
	}
	if d1 <= 0 || math.IsInf(d1, 1) {
		t.Fatalf("latency = %v", d1)
	}
}

func TestOraclePanicsOutOfRange(t *testing.T) {
	net, _ := Generate(TSSmall(), rng.New(1))
	o := NewOracle(net)
	for _, fn := range []func(){
		func() { o.Latency(-1, 0) },
		func() { o.Latency(0, net.Graph.NumVertices()) },
		func() { o.Row(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range query")
				}
			}()
			fn()
		}()
	}
}

func TestOracleConcurrentAccess(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(net)
	hosts := net.StubHosts
	var wg sync.WaitGroup
	results := make([]float64, 64)
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// All goroutines query the same pair from both directions.
			results[w] = o.Latency(hosts[w%2], hosts[100+(w+1)%2])
		}(w)
	}
	wg.Wait()
	// Every query must agree with a sequential recomputation.
	seq := NewOracle(net)
	for w, got := range results {
		want := seq.Latency(hosts[w%2], hosts[100+(w+1)%2])
		if got != want {
			t.Fatalf("worker %d: latency %v, want %v", w, got, want)
		}
	}
}

func TestOraclePrecompute(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(net)
	srcs := net.StubHosts[:32]
	o.Precompute(srcs)
	if got := o.CachedRows(); got != len(srcs) {
		t.Fatalf("CachedRows = %d, want %d", got, len(srcs))
	}
	o.Precompute(nil) // no-op
	if got := o.CachedRows(); got != len(srcs) {
		t.Fatalf("CachedRows after empty precompute = %d", got)
	}
}

func TestOraclePrecomputeValidatesBeforeWork(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(net)
	// A mix of valid sources and one invalid source must panic without
	// warming ANY row: validation happens before anything is enqueued.
	mixed := []int{net.StubHosts[0], net.StubHosts[1], -1, net.StubHosts[2]}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("invalid source did not panic")
			}
		}()
		o.Precompute(mixed)
	}()
	if got := o.CachedRows(); got != 0 {
		t.Fatalf("CachedRows = %d after rejected precompute, want 0 (no partial work)", got)
	}
	// The same call without the bad source succeeds fully.
	o.Precompute([]int{net.StubHosts[0], net.StubHosts[1], net.StubHosts[2]})
	if got := o.CachedRows(); got != 3 {
		t.Fatalf("CachedRows = %d, want 3", got)
	}
}

func TestOracleRowSharedWithLatency(t *testing.T) {
	net, err := Generate(TSSmall(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(net)
	src := net.StubHosts[3]
	row := o.Row(src)
	for _, dst := range net.StubHosts[:20] {
		if row[dst] != o.Latency(src, dst) {
			t.Fatalf("Row and Latency disagree for (%d,%d)", src, dst)
		}
	}
}

func TestNetworkString(t *testing.T) {
	net, err := Generate(TSLarge(), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	s := net.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkOracleColdRow(b *testing.B) {
	net, err := Generate(TSLarge(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := NewOracle(net)
		o.Row(net.StubHosts[i%len(net.StubHosts)])
	}
}

func BenchmarkOraclePrecompute256(b *testing.B) {
	net, err := Generate(TSLarge(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := NewOracle(net)
		o.Precompute(net.StubHosts[:256])
	}
}
