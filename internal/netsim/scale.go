package netsim

// This file holds the scale tier of the transit-stub generator (DESIGN.md
// §12, SCALING.md): a preset family sized by target host count rather than
// by the paper's fixed figures, plus the conservative-lookahead derivation
// the domain-sharded engine (internal/shard) builds its epoch windows from.

// ScaleTransitDomains is the backbone width of every ScaleTS preset. It is
// fixed — rather than grown with n — so that the shard engine's domain
// partition, and with it the set of admissible shard counts (any 1..16),
// is the same at every rung of a scaling sweep.
const ScaleTransitDomains = 16

// scaleNodesPerStub is the stub-domain size of every ScaleTS preset. Stub
// domains stay GT-ITM-small (a ring of 32 hosts plus chords) and the preset
// scales by multiplying stub domains, not by inflating them into latency-
// distorting mega-rings.
const scaleNodesPerStub = 32

// ScaleTS returns a transit-stub preset with at least n stub hosts: the
// fixed 16-domain backbone of ScaleTransitDomains, 8 routers per domain,
// 32-host stub rings, and as many stub domains per router as n requires.
// Link latencies match TSLarge, so results compose with the fig5* family.
// The preset is how the scaling experiments (fig5a-scale) reach 10^5-10^6
// hosts while keeping per-domain structure — and therefore the shard
// engine's lookahead — identical across rungs. n < one stub domain per
// router is rounded up to that minimum (16·8·32 = 4096 hosts).
func ScaleTS(n int) Config {
	perRouter := ScaleTransitDomains * 8 * scaleNodesPerStub
	stubsPerRouter := (n + perRouter - 1) / perRouter
	if stubsPerRouter < 1 {
		stubsPerRouter = 1
	}
	return Config{
		Name:                  "ts-scale",
		TransitDomains:        ScaleTransitDomains,
		TransitNodesPerDomain: 8,
		StubDomainsPerTransit: stubsPerRouter,
		NodesPerStub:          scaleNodesPerStub,
		StubExtraEdgeProb:     0.05,
		InterDomainEdgeProb:   0.5,
		StubStubMS:            5,
		StubTransitMS:         20,
		TransitTransitMS:      50,
	}
}

// CrossDomainFloorMS returns a conservative lower bound on the physical
// latency between any two stub hosts in different transit domains: every
// such path climbs one stub-transit uplink on each side and crosses at
// least one transit-transit backbone link, so it costs at least
// 2·StubTransitMS + TransitTransitMS. This is the lookahead the
// domain-sharded engine (internal/shard) uses for its epoch windows — a
// message between shards can never arrive sooner than this bound, so a
// barrier every CrossDomainFloorMS of simulated time is sufficient for
// exact cross-shard delivery (DESIGN.md §12).
func (c Config) CrossDomainFloorMS() float64 {
	return 2*c.StubTransitMS + c.TransitTransitMS
}
