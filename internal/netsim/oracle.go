package netsim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Oracle answers "what is the latency between physical nodes u and v?" — the
// question every PROP probe, every lookup, and every metric sample asks.
// In the authors' simulator a probe packet traverses the generated topology;
// here the equivalent is the shortest-path distance in the physical graph.
//
// Distances are computed lazily, one Dijkstra per source, and cached. The
// cache is safe for concurrent use: parallel trial runners and the parallel
// metric evaluators all share one Oracle per network. A sync.Once per source
// row guarantees each Dijkstra runs at most once even under contention, and
// rows are published through atomic pointers so readers never race writers.
type Oracle struct {
	g    *graph.Graph
	rows []oracleRow
}

type oracleRow struct {
	once sync.Once
	dist atomic.Pointer[[]float64]
}

// NewOracle builds a latency oracle over the physical graph of net.
func NewOracle(net *Network) *Oracle {
	return &Oracle{
		g:    net.Graph,
		rows: make([]oracleRow, net.Graph.NumVertices()),
	}
}

// Latency returns the physical shortest-path latency from u to v in
// milliseconds. It panics if either endpoint is out of range (the caller
// owns node IDs; an out-of-range ID is a programming error, not an
// environmental condition).
func (o *Oracle) Latency(u, v int) float64 {
	if u < 0 || u >= len(o.rows) || v < 0 || v >= len(o.rows) {
		panic(fmt.Sprintf("netsim: latency query (%d,%d) out of range [0,%d)", u, v, len(o.rows)))
	}
	if u == v {
		return 0
	}
	// Prefer an already-computed row in either direction: distances are
	// symmetric in an undirected graph.
	if p := o.rows[u].dist.Load(); p != nil {
		return (*p)[v]
	}
	if p := o.rows[v].dist.Load(); p != nil {
		return (*p)[u]
	}
	return o.row(u)[v]
}

// row returns the cached distance vector from src, computing it on first use.
func (o *Oracle) row(src int) []float64 {
	r := &o.rows[src]
	r.once.Do(func() {
		d := o.g.ShortestPaths(src)
		r.dist.Store(&d)
	})
	return *r.dist.Load()
}

// Row exposes the full distance vector from src (shared storage; callers
// must not mutate it). Useful for bulk metric computation.
func (o *Oracle) Row(src int) []float64 {
	if src < 0 || src >= len(o.rows) {
		panic(fmt.Sprintf("netsim: row query %d out of range [0,%d)", src, len(o.rows)))
	}
	return o.row(src)
}

// Precompute warms the cache for the given sources using up to
// runtime.GOMAXPROCS(0) worker goroutines. Experiments call this with the
// overlay's attachment hosts so the measurement phase is contention-free.
// All sources are validated before any work is enqueued: a bad source in
// the middle of the list panics without computing (or leaking) anything, so
// the cache is untouched rather than half-warmed.
func (o *Oracle) Precompute(sources []int) {
	for _, s := range sources {
		if s < 0 || s >= len(o.rows) {
			panic(fmt.Sprintf("netsim: precompute source %d out of range [0,%d)", s, len(o.rows)))
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers < 1 {
		return
	}
	ch := make(chan int, len(sources))
	for _, s := range sources {
		ch <- s
	}
	close(ch)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for s := range ch {
				o.row(s)
			}
		}()
	}
	wg.Wait()
}

// CachedRows reports how many source rows are currently materialized.
func (o *Oracle) CachedRows() int {
	n := 0
	for i := range o.rows {
		if o.rows[i].dist.Load() != nil {
			n++
		}
	}
	return n
}
