package netsim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
)

// oracleInstr holds the observability hookup of one oracle (DESIGN.md §8).
// The pointer-to-struct indirection keeps the disabled path down to one
// predictable nil check on the Latency fast path.
type oracleInstr struct {
	// queries counts Latency point queries.
	queries *obs.Counter
	// hits counts point queries answered from an already-cached row.
	// Scheduling-dependent under concurrent warm-up (whichever row lands
	// first serves the symmetric pair), so it is excluded from the
	// byte-determinism contract; queries and computes are deterministic.
	hits *obs.Counter
	// computes counts Dijkstra row computations (cold misses + bounded-mode
	// recomputes after eviction).
	computes *obs.Counter
	// evictions counts bounded-mode row evictions.
	evictions *obs.Counter
	// refreshRebuilds counts Refresh calls that fell back to a full rebuild
	// (any RefreshFallbackReason); refreshF32 counts the
	// RefreshFallbackFloat32 subset, which no refresh emits since Float32
	// rows gained an in-place repair path — kept so existing streams keep
	// their (now always-zero) series. Attached by SetRefreshInstruments.
	refreshRebuilds *obs.Counter
	refreshF32      *obs.Counter
}

// OracleOptions selects the oracle's row representation and memory policy.
// The zero value is the full-precision, unbounded mode every experiment
// defaults to (bit-identical results with the historical oracle).
type OracleOptions struct {
	// Float32 stores cached rows as float32 instead of float64, halving the
	// resident size of the distance cache. Latencies are computed in
	// float64 and rounded once on store, so results are deterministic; the
	// rounding error is bounded by one float32 ulp of the distance
	// (sub-microsecond at millisecond scale).
	Float32 bool
	// RowBudget caps the number of cached source rows; 0 means unbounded.
	// When the cache is full, admitting a new row deterministically evicts
	// the oldest admitted row (FIFO), so a full-scale ts-large run never
	// holds more than RowBudget·N distances at once. Evicted rows are
	// recomputed on demand.
	RowBudget int
}

// Oracle answers "what is the latency between physical nodes u and v?" — the
// question every PROP probe, every lookup, and every metric sample asks.
// In the authors' simulator a probe packet traverses the generated topology;
// here the equivalent is the shortest-path distance in the physical graph.
//
// Distances are computed lazily, one Dijkstra per source over the frozen
// CSR view of the physical graph, and cached. The cache is safe for
// concurrent use: parallel trial runners and the parallel metric evaluators
// all share one Oracle per network. Rows are published through atomic
// pointers, so the read path is lock-free in every mode; only admission
// and eviction in the memory-bounded mode take a lock.
type Oracle struct {
	fz    graph.CSRView
	opt   OracleOptions
	instr *oracleInstr // nil unless SetInstruments was called

	// Dynamic-graph state (DESIGN.md §11). net is retained so Refresh can
	// read the mutation journal and the domain map; base/baseVer anchor the
	// delta view chain at the last full freeze or compaction; ver is the
	// graph version the current view (and every cached row) describes.
	net     *Network
	base    *graph.Frozen
	baseVer uint64
	ver     uint64

	rows   []atomic.Pointer[[]float64] // full-precision mode
	rows32 []atomic.Pointer[[]float32] // Float32 mode
	once   []sync.Once                 // unbounded mode: one Dijkstra per row
	cached atomic.Int64                // materialized row count, O(1) CachedRows

	// Bounded mode: mu guards admission/eviction; fifo is a fixed-capacity
	// ring buffer (len == RowBudget) holding the admission order of cached
	// rows, oldest at head. A ring keeps eviction O(1) without retaining a
	// dead prefix the way re-slicing an append-backed queue would.
	mu   sync.Mutex
	fifo []int32
	head int // ring index of the oldest admitted row
	live int // number of admitted rows in the ring
}

// precomputeSlots is a process-wide cap on extra Precompute workers so that
// concurrent Precompute calls — e.g. one per experiment trial — compose
// without spawning GOMAXPROCS² goroutines. Each call always makes progress
// on its own goroutine even when no slot is free.
var precomputeSlots = make(chan struct{}, runtime.GOMAXPROCS(0))

// NewOracle builds a full-precision, unbounded latency oracle over the
// physical graph of net.
func NewOracle(net *Network) *Oracle {
	return NewOracleWith(net, OracleOptions{})
}

// oracleJournalCap bounds the mutation journal Refresh consumes. A churn
// batch larger than this overflows the journal and the next Refresh falls
// back to a full rebuild — the same cost as the pre-delta behavior.
const oracleJournalCap = 8192

// NewOracleWith builds a latency oracle with explicit memory options. It
// enables the physical graph's mutation journal so that later topology
// mutations can be absorbed with Refresh instead of a rebuild.
func NewOracleWith(net *Network, opt OracleOptions) *Oracle {
	n := net.Graph.NumVertices()
	if opt.RowBudget < 0 {
		opt.RowBudget = 0
	}
	net.Graph.TrackMutations(oracleJournalCap)
	base := net.Graph.Frozen()
	o := &Oracle{
		fz:      base,
		opt:     opt,
		net:     net,
		base:    base,
		baseVer: net.Graph.Version(),
		ver:     net.Graph.Version(),
	}
	if opt.Float32 {
		o.rows32 = make([]atomic.Pointer[[]float32], n)
	} else {
		o.rows = make([]atomic.Pointer[[]float64], n)
	}
	if opt.RowBudget == 0 {
		o.once = make([]sync.Once, n)
	} else {
		o.fifo = make([]int32, opt.RowBudget)
	}
	return o
}

// NumNodes reports the number of physical nodes the oracle covers.
func (o *Oracle) NumNodes() int { return o.fz.NumVertices() }

// SetInstruments attaches obs counters for cache activity: point queries,
// cached-row hits, Dijkstra row computations, and bounded-mode evictions.
// Any counter may be nil (obs counters are nil-safe); calling with all nils
// — or never calling — keeps the hot path at a single nil check. Attach
// before sharing the oracle across goroutines: the field itself is not
// synchronized.
func (o *Oracle) SetInstruments(queries, hits, computes, evictions *obs.Counter) {
	next := oracleInstr{queries: queries, hits: hits, computes: computes, evictions: evictions}
	if o.instr != nil {
		next.refreshRebuilds = o.instr.refreshRebuilds
		next.refreshF32 = o.instr.refreshF32
	}
	if next == (oracleInstr{}) {
		o.instr = nil
		return
	}
	o.instr = &next
}

// SetRefreshInstruments attaches obs counters for Refresh fallbacks:
// rebuilds counts every Refresh that abandoned the incremental path for a
// full rebuild, and float32 counts the RefreshFallbackFloat32 subset —
// always zero since Float32 rows repair in place (graph.RepairRowF32), and
// retained so streams that chart it keep their series. Either counter may
// be nil. Like SetInstruments (whose counters it composes with), attach
// before sharing the oracle across goroutines.
func (o *Oracle) SetRefreshInstruments(rebuilds, float32Fallbacks *obs.Counter) {
	next := oracleInstr{refreshRebuilds: rebuilds, refreshF32: float32Fallbacks}
	if o.instr != nil {
		next.queries = o.instr.queries
		next.hits = o.instr.hits
		next.computes = o.instr.computes
		next.evictions = o.instr.evictions
	}
	if next == (oracleInstr{}) {
		o.instr = nil
		return
	}
	o.instr = &next
}

// Latency returns the physical shortest-path latency from u to v in
// milliseconds. It panics if either endpoint is out of range (the caller
// owns node IDs; an out-of-range ID is a programming error, not an
// environmental condition).
func (o *Oracle) Latency(u, v int) float64 {
	n := o.fz.NumVertices()
	if u < 0 || u >= n || v < 0 || v >= n {
		panic(fmt.Sprintf("netsim: latency query (%d,%d) out of range [0,%d)", u, v, n))
	}
	if o.instr != nil {
		o.instr.queries.Add(1)
	}
	if u == v {
		return 0
	}
	// Prefer an already-computed row in either direction: distances are
	// symmetric in an undirected graph.
	if o.opt.Float32 {
		if p := o.rows32[u].Load(); p != nil {
			o.hit()
			return float64((*p)[v])
		}
		if p := o.rows32[v].Load(); p != nil {
			o.hit()
			return float64((*p)[u])
		}
	} else {
		if p := o.rows[u].Load(); p != nil {
			o.hit()
			return (*p)[v]
		}
		if p := o.rows[v].Load(); p != nil {
			o.hit()
			return (*p)[u]
		}
	}
	// Neither direction is cached: warm the lower-indexed endpoint, so the
	// symmetric query later reuses this row instead of running a second
	// Dijkstra into the other endpoint's slot. Read through the row ensure
	// returns, not a fresh Load — in bounded mode a concurrent admission
	// burst can evict u between ensure and a re-load, nil-ing the atomic.
	if u > v {
		u, v = v, u
	}
	r64, r32 := o.ensure(u)
	if o.opt.Float32 {
		return float64((*r32)[v])
	}
	return (*r64)[v]
}

// Row exposes the full distance vector from src, computing it on first use.
// In float64 mode the returned slice is the shared cached storage; callers
// must not mutate it. In Float32 mode it is a freshly allocated float64
// widening of the cached row. Useful for bulk metric computation.
func (o *Oracle) Row(src int) []float64 {
	n := o.fz.NumVertices()
	if src < 0 || src >= n {
		panic(fmt.Sprintf("netsim: row query %d out of range [0,%d)", src, n))
	}
	r64, r32 := o.ensure(src)
	if o.opt.Float32 {
		out := make([]float64, len(*r32))
		for i, d := range *r32 {
			out[i] = float64(d)
		}
		return out
	}
	return *r64
}

// load returns src's currently materialized row in the mode's
// representation, or (nil, nil) if it is not cached.
func (o *Oracle) load(src int) (*[]float64, *[]float32) {
	if o.opt.Float32 {
		return nil, o.rows32[src].Load()
	}
	return o.rows[src].Load(), nil
}

// loaded reports whether src's row is currently materialized.
func (o *Oracle) loaded(src int) bool {
	r64, r32 := o.load(src)
	return r64 != nil || r32 != nil
}

// store publishes a freshly computed row for src and bumps the counter.
func (o *Oracle) store(src int, r64 []float64, r32 []float32) {
	if o.opt.Float32 {
		o.rows32[src].Store(&r32)
	} else {
		o.rows[src].Store(&r64)
	}
	o.cached.Add(1)
}

// hit records a cached-row answer when instrumented.
func (o *Oracle) hit() {
	if o.instr != nil {
		o.instr.hits.Add(1)
	}
}

// compute runs one Dijkstra from src on the frozen CSR view into a fresh
// row of the mode's representation.
func (o *Oracle) compute(src int) (r64 []float64, r32 []float32) {
	if o.instr != nil {
		o.instr.computes.Add(1)
	}
	if o.opt.Float32 {
		r32 = make([]float32, o.fz.NumVertices())
		o.fz.ShortestPathsF32Into(src, r32)
		return nil, r32
	}
	r64 = make([]float64, o.fz.NumVertices())
	o.fz.ShortestPathsInto(src, r64)
	return r64, nil
}

// ensure materializes src's row if it is not cached and returns it in the
// mode's representation (exactly one of the results is non-nil). Callers
// must read distances through the returned row rather than re-loading the
// atomic slot: in bounded mode, concurrent admissions can evict src again
// immediately after ensure returns, and a re-load would observe nil.
//
// Unbounded mode uses the per-row sync.Once, so each Dijkstra runs at most
// once even under contention and rows are never evicted. Bounded mode
// computes outside the lock (so concurrent warm-ups of distinct rows still
// parallelize), then admits under the lock, evicting the oldest admitted
// row when the ring is full; a concurrent duplicate compute of the same row
// is possible but harmless — the admitted row wins and the duplicate is
// discarded.
func (o *Oracle) ensure(src int) (*[]float64, *[]float32) {
	if o.opt.RowBudget == 0 {
		// Fast path first: Refresh replaces the once slice wholesale, so a
		// row that survived a refresh must be served from its atomic slot
		// rather than recomputed through the fresh Once.
		if r64, r32 := o.load(src); r64 != nil || r32 != nil {
			return r64, r32
		}
		o.once[src].Do(func() {
			r64, r32 := o.compute(src)
			o.store(src, r64, r32)
		})
		return o.load(src)
	}
	if r64, r32 := o.load(src); r64 != nil || r32 != nil {
		return r64, r32
	}
	r64, r32 := o.compute(src)
	o.mu.Lock()
	defer o.mu.Unlock()
	// Re-check under the lock: a concurrent duplicate compute may already
	// have admitted src. Eviction also holds mu, so this row is the answer.
	if l64, l32 := o.load(src); l64 != nil || l32 != nil {
		return l64, l32
	}
	if o.live == o.opt.RowBudget {
		victim := o.fifo[o.head]
		o.head++
		if o.head == len(o.fifo) {
			o.head = 0
		}
		o.live--
		if o.opt.Float32 {
			o.rows32[victim].Store(nil)
		} else {
			o.rows[victim].Store(nil)
		}
		o.cached.Add(-1)
		if o.instr != nil {
			o.instr.evictions.Add(1)
		}
	}
	o.store(src, r64, r32)
	tail := o.head + o.live
	if tail >= len(o.fifo) {
		tail -= len(o.fifo)
	}
	o.fifo[tail] = int32(src)
	o.live++
	if o.opt.Float32 {
		return nil, &r32
	}
	return &r64, nil
}

// Precompute warms the cache for the given sources. Experiments call this
// with the overlay's attachment hosts so the measurement phase is
// contention-free. All sources are validated before any work is enqueued: a
// bad source in the middle of the list panics without computing (or
// leaking) anything, so the cache is untouched rather than half-warmed.
//
// Parallelism: the calling goroutine always participates; up to
// GOMAXPROCS-1 extra workers are borrowed from a process-wide pool shared
// by all oracles, so concurrent Precompute calls (one per trial) never
// oversubscribe the CPUs.
func (o *Oracle) Precompute(sources []int) {
	n := o.fz.NumVertices()
	for _, s := range sources {
		if s < 0 || s >= n {
			panic(fmt.Sprintf("netsim: precompute source %d out of range [0,%d)", s, n))
		}
	}
	if len(sources) == 0 {
		return
	}
	ch := make(chan int, len(sources))
	for _, s := range sources {
		ch <- s
	}
	close(ch)
	var wg sync.WaitGroup
	extra := runtime.GOMAXPROCS(0) - 1
	if extra > len(sources)-1 {
		extra = len(sources) - 1
	}
acquire:
	for i := 0; i < extra; i++ {
		select {
		case precomputeSlots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-precomputeSlots
					wg.Done()
				}()
				for s := range ch {
					o.ensure(s)
				}
			}()
		default:
			break acquire // pool exhausted; the caller works alone
		}
	}
	for s := range ch {
		o.ensure(s)
	}
	wg.Wait()
}

// CachedRows reports how many source rows are currently materialized. It is
// O(1): an atomic counter maintained on every admission and eviction.
func (o *Oracle) CachedRows() int {
	return int(o.cached.Load())
}
