package chord

import (
	"testing"

	"repro/internal/rng"
)

func TestJoinGrowsRing(t *testing.T) {
	ring := buildRing(t, 32, 1)
	r := rng.New(9)
	slot, err := ring.Join(99991, lat, r)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Size() != 33 || !ring.Alive(slot) {
		t.Fatalf("size=%d alive=%v", ring.Size(), ring.Alive(slot))
	}
	// Ring order must remain sorted and include the newcomer.
	for i := 1; i < len(ring.sorted); i++ {
		if ring.ID[ring.sorted[i-1]] >= ring.ID[ring.sorted[i]] {
			t.Fatal("sorted order broken after join")
		}
	}
	// Lookups (from and to the newcomer) must work.
	key := RandomKey(r)
	res, err := ring.Lookup(slot, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Owner != ring.Owner(key) {
		t.Fatal("lookup from joiner broken")
	}
}

func TestJoinLookupCorrect(t *testing.T) {
	ring := buildRing(t, 32, 2)
	r := rng.New(5)
	for i := 0; i < 10; i++ {
		if _, err := ring.Join(90000+i, lat, r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		key := RandomKey(r)
		src := ring.sorted[r.Intn(len(ring.sorted))]
		res, err := ring.Lookup(src, key, nil)
		if err != nil {
			t.Fatalf("lookup after joins: %v", err)
		}
		if res.Owner != ring.Owner(key) {
			t.Fatal("lookup reached wrong owner after joins")
		}
	}
}

func TestJoinDuplicateHostRejected(t *testing.T) {
	ring := buildRing(t, 8, 3)
	r := rng.New(1)
	host := ring.O.HostOf(ring.sorted[0])
	if _, err := ring.Join(host, lat, r); err == nil {
		t.Fatal("join with in-use host accepted")
	}
}

func TestLeaveShrinksRing(t *testing.T) {
	ring := buildRing(t, 32, 4)
	r := rng.New(7)
	victim := ring.sorted[10]
	if err := ring.Leave(victim, lat); err != nil {
		t.Fatal(err)
	}
	if ring.Size() != 31 || ring.Alive(victim) {
		t.Fatalf("size=%d alive=%v", ring.Size(), ring.Alive(victim))
	}
	if err := ring.Leave(victim, lat); err == nil {
		t.Fatal("double leave accepted")
	}
	// No finger or successor may reference the dead slot.
	for _, s := range ring.sorted {
		for _, f := range ring.fingers[s] {
			if f == victim {
				t.Fatalf("slot %d finger still references dead %d", s, victim)
			}
		}
		for _, sc := range ring.succ[s] {
			if sc == victim {
				t.Fatalf("slot %d successor list still references dead %d", s, victim)
			}
		}
	}
	// Lookups stay correct.
	for i := 0; i < 300; i++ {
		key := RandomKey(r)
		src := ring.sorted[r.Intn(len(ring.sorted))]
		res, err := ring.Lookup(src, key, nil)
		if err != nil {
			t.Fatalf("lookup after leave: %v", err)
		}
		if res.Owner != ring.Owner(key) {
			t.Fatal("lookup reached wrong owner after leave")
		}
	}
}

func TestLeaveRefusesTinyRing(t *testing.T) {
	ring := buildRing(t, 2, 5)
	if err := ring.Leave(ring.sorted[0], lat); err == nil {
		t.Fatal("shrinking below 2 accepted")
	}
}

// (The churn-storm property test formerly here is superseded by the shared
// ChurnPhase conformance check in internal/dhttest, which all four DHT
// suites run through the online auditor.)

func TestFixFingersAfterSwaps(t *testing.T) {
	cfg := Config{SuccessorListLen: 4, PNS: true}
	ring, err := Build(hostsN(128), cfg, lat, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < 60; i++ {
		u, v := r.Intn(128), r.Intn(128)
		if u != v {
			ring.O.SwapHosts(u, v)
		}
	}
	if err := ring.FixFingers(5, lat); err != nil {
		t.Fatal(err)
	}
	// Fingers of node 5 must again be per-interval nearest.
	s := 5
	for j := 0; j < Bits; j++ {
		start := (uint64(ring.ID[s]) + (uint64(1) << uint(j))) % ringSize
		end := (uint64(ring.ID[s]) + (uint64(1) << uint(j+1))) % ringSize
		want := ring.nearestInInterval(s, start, end, lat)
		if got := ring.Fingers(s)[j]; got != want {
			t.Fatalf("finger %d = %d, want %d after FixFingers", j, got, want)
		}
	}
	if err := ring.FixFingers(99999, lat); err == nil {
		t.Fatal("FixFingers on bad slot accepted")
	}
}
