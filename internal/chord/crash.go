package chord

import (
	"fmt"

	"repro/internal/overlay"
)

// Crash-stop failure handling. A crash differs from Leave in that nothing is
// repaired at death time: the corpse stays in the sorted ring, successor
// lists, and finger tables until a RepairCrashed round runs — the
// simulator's stand-in for failure detectors timing out. Routing in the
// interim survives because nextHop already skips dead entries and falls
// back along the successor list.

// Crash kills slot crash-stop: its host is released immediately but its
// ring position and every reference to it go stale instead of being
// repaired. The ring must retain at least two live nodes.
func (ring *Ring) Crash(slot int) error {
	if !ring.O.Alive(slot) {
		return fmt.Errorf("chord: Crash(%d) on dead slot", slot)
	}
	if ring.O.NumAlive() <= 2 {
		return fmt.Errorf("chord: refusing to shrink below 2 nodes")
	}
	return ring.O.CrashSlot(slot)
}

// RepairCrashed runs one failure-recovery round: every unpurged corpse is
// dropped from the sorted ring, its tables are released, its stale edges
// purged, and every survivor rebuilds its successor list and fingers
// against the live membership. It returns the number of corpses repaired.
func (ring *Ring) RepairCrashed(lat overlay.LatencyFunc) (int, error) {
	crashed := ring.O.CrashedSlots()
	if len(crashed) == 0 {
		return 0, nil
	}
	dead := make(map[int]bool, len(crashed))
	for _, c := range crashed {
		dead[c] = true
	}
	kept := ring.sorted[:0]
	for _, s := range ring.sorted {
		if !dead[s] {
			kept = append(kept, s)
		}
	}
	if len(kept) < 2 {
		return 0, fmt.Errorf("chord: repair would shrink below 2 nodes")
	}
	ring.sorted = kept
	for _, c := range crashed {
		ring.succ[c] = nil
		ring.fingers[c] = nil
		if err := ring.O.PurgeCrashed(c); err != nil {
			return 0, err
		}
	}
	for _, s := range ring.sorted {
		ring.rebuildNode(s, lat)
	}
	return len(crashed), nil
}
