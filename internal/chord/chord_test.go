package chord

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func lat(a, b int) float64 { return math.Abs(float64(a - b)) }

func hostsN(n int) []int {
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i * 3
	}
	return hosts
}

func buildRing(t *testing.T, n int, seed uint64) *Ring {
	t.Helper()
	ring, err := Build(hostsN(n), DefaultConfig(), lat, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ring
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(hostsN(1), DefaultConfig(), lat, rng.New(1)); err == nil {
		t.Error("single node accepted")
	}
	if _, err := Build(hostsN(5), Config{SuccessorListLen: 0}, lat, rng.New(1)); err == nil {
		t.Error("zero successor list accepted")
	}
}

func TestIDsDistinct(t *testing.T) {
	ring := buildRing(t, 500, 42)
	seen := map[uint32]bool{}
	for _, id := range ring.ID {
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
}

func TestSortedOrderAndSuccessors(t *testing.T) {
	ring := buildRing(t, 100, 7)
	for i := 1; i < len(ring.sorted); i++ {
		if ring.ID[ring.sorted[i-1]] >= ring.ID[ring.sorted[i]] {
			t.Fatal("sorted order violated")
		}
	}
	// succ[s][0] must be the next slot in ring order.
	for i, s := range ring.sorted {
		want := ring.sorted[(i+1)%len(ring.sorted)]
		if got := ring.Successors(s)[0]; got != want {
			t.Fatalf("successor of slot %d = %d, want %d", s, got, want)
		}
	}
}

func TestOwnerOf(t *testing.T) {
	ring := buildRing(t, 50, 3)
	// The owner of a node's own ID is the node itself.
	for _, s := range ring.sorted {
		if got := ring.Owner(ring.ID[s]); got != s {
			t.Fatalf("Owner(ID[%d]) = %d", s, got)
		}
	}
	// The owner of ID+1 is the next node (unless ID+1 is that node's ID).
	first := ring.sorted[0]
	last := ring.sorted[len(ring.sorted)-1]
	if got := ring.Owner(ring.ID[last] + 1); got != first {
		t.Fatalf("wraparound owner = %d, want %d", got, first)
	}
}

func TestFingersCorrect(t *testing.T) {
	ring := buildRing(t, 200, 11)
	for _, s := range ring.sorted {
		for j := 0; j < Bits; j++ {
			start := (uint64(ring.ID[s]) + (uint64(1) << uint(j))) % ringSize
			want := ring.ownerOf(start)
			if got := ring.Fingers(s)[j]; got != want {
				t.Fatalf("finger %d of slot %d = %d, want %d", j, s, got, want)
			}
		}
	}
}

func TestLogicalGraphConnected(t *testing.T) {
	ring := buildRing(t, 300, 5)
	if !ring.O.Connected() {
		t.Fatal("chord overlay not connected")
	}
	// Successor links alone form a cycle, so min degree >= 2.
	if md := ring.O.Logical.MinDegree(); md < 2 {
		t.Fatalf("min degree = %d", md)
	}
}

func TestLookupFindsOwner(t *testing.T) {
	ring := buildRing(t, 256, 9)
	r := rng.New(77)
	for i := 0; i < 500; i++ {
		src := r.Intn(256)
		key := RandomKey(r)
		res, err := ring.Lookup(src, key, nil)
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if res.Owner != ring.Owner(key) {
			t.Fatalf("lookup reached %d, owner is %d", res.Owner, ring.Owner(key))
		}
		if res.Path[0] != src || res.Path[len(res.Path)-1] != res.Owner {
			t.Fatalf("path endpoints wrong: %v", res.Path)
		}
		if res.Hops != len(res.Path)-1 {
			t.Fatalf("hops %d inconsistent with path %v", res.Hops, res.Path)
		}
	}
}

func TestLookupLogarithmicHops(t *testing.T) {
	ring := buildRing(t, 1024, 13)
	r := rng.New(1)
	totalHops := 0
	const lookups = 300
	for i := 0; i < lookups; i++ {
		res, err := ring.Lookup(r.Intn(1024), RandomKey(r), nil)
		if err != nil {
			t.Fatal(err)
		}
		totalHops += res.Hops
	}
	avg := float64(totalHops) / lookups
	// log2(1024) = 10; average Chord path is ~log2(n)/2 = 5.
	if avg > 12 {
		t.Fatalf("average hops %.1f too high for n=1024", avg)
	}
	if avg < 1 {
		t.Fatalf("average hops %.1f suspiciously low", avg)
	}
}

func TestLookupSelfKey(t *testing.T) {
	ring := buildRing(t, 64, 21)
	s := ring.sorted[10]
	res, err := ring.Lookup(s, ring.ID[s], nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Owner != s || res.Hops != 0 || res.Latency != 0 {
		t.Fatalf("self lookup: %+v", res)
	}
}

func TestLookupFromDeadSlot(t *testing.T) {
	ring := buildRing(t, 16, 2)
	if _, err := ring.Lookup(999, 1, nil); err == nil {
		t.Fatal("lookup from invalid slot accepted")
	}
}

func TestLookupProcessingDelay(t *testing.T) {
	ring := buildRing(t, 128, 31)
	r := rng.New(4)
	src := r.Intn(128)
	key := RandomKey(r)
	base, err := ring.Lookup(src, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	withProc, err := ring.Lookup(src, key, func(int) float64 { return 10 })
	if err != nil {
		t.Fatal(err)
	}
	wantExtra := float64(base.Hops) * 10
	if math.Abs(withProc.Latency-base.Latency-wantExtra) > 1e-9 {
		t.Fatalf("processing delay accounting: base %.1f, with %.1f, hops %d",
			base.Latency, withProc.Latency, base.Hops)
	}
}

func TestPNSReducesLinkLatency(t *testing.T) {
	hosts := hostsN(400)
	plain, err := Build(hosts, Config{SuccessorListLen: 4}, lat, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	pns, err := Build(hosts, Config{SuccessorListLen: 4, PNS: true}, lat, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	if pns.O.MeanLinkLatency() >= plain.O.MeanLinkLatency() {
		t.Fatalf("PNS mean link latency %.1f not below plain %.1f",
			pns.O.MeanLinkLatency(), plain.O.MeanLinkLatency())
	}
	// PNS must still route correctly.
	r := rng.New(6)
	for i := 0; i < 200; i++ {
		key := RandomKey(r)
		res, err := pns.Lookup(r.Intn(400), key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner != pns.Owner(key) {
			t.Fatal("PNS lookup reached wrong owner")
		}
	}
}

func TestInInterval(t *testing.T) {
	cases := []struct {
		id, a, b uint64
		want     bool
	}{
		{5, 3, 8, true},
		{8, 3, 8, true},
		{3, 3, 8, false},
		{9, 3, 8, false},
		{1, 250, 10, true}, // wrapping
		{255, 250, 10, true},
		{100, 250, 10, false},
		{7, 7, 7, true}, // full circle
	}
	for _, c := range cases {
		if got := inInterval(c.id, c.a, c.b); got != c.want {
			t.Errorf("inInterval(%d,%d,%d) = %v", c.id, c.a, c.b, got)
		}
	}
}

func TestInIntervalOpen(t *testing.T) {
	cases := []struct {
		id, a, b uint64
		want     bool
	}{
		{5, 3, 8, true},
		{8, 3, 8, false},
		{3, 3, 8, false},
		{1, 250, 10, true},
		{250, 250, 10, false},
		{7, 7, 7, false},
		{9, 7, 7, true},
	}
	for _, c := range cases {
		if got := inIntervalOpen(c.id, c.a, c.b); got != c.want {
			t.Errorf("inIntervalOpen(%d,%d,%d) = %v", c.id, c.a, c.b, got)
		}
	}
}

func TestLookupAlwaysTerminatesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(100)
		ring, err := Build(hostsN(n), DefaultConfig(), lat, r)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			key := RandomKey(r)
			res, err := ring.Lookup(r.Intn(n), key, nil)
			if err != nil || res.Owner != ring.Owner(key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSwapHostsPreservesRouting(t *testing.T) {
	// The PROP-G claim: exchanging identifiers (hosts under slots) leaves
	// every lookup correct, only latency changes.
	ring := buildRing(t, 128, 17)
	r := rng.New(2)
	for i := 0; i < 50; i++ {
		u, v := r.Intn(128), r.Intn(128)
		if u != v {
			if err := ring.O.SwapHosts(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 200; i++ {
		key := RandomKey(r)
		res, err := ring.Lookup(r.Intn(128), key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner != ring.Owner(key) {
			t.Fatal("routing broken after host swaps")
		}
	}
}

func BenchmarkLookup1k(b *testing.B) {
	ring, err := Build(hostsN(1000), DefaultConfig(), lat, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ring.Lookup(r.Intn(1000), RandomKey(r), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildPNS400(b *testing.B) {
	hosts := hostsN(400)
	for i := 0; i < b.N; i++ {
		if _, err := Build(hosts, Config{SuccessorListLen: 4, PNS: true}, lat, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
