// Package chord implements the Chord distributed hash table (Stoica et al.,
// SIGCOMM '01) on top of the slot/host overlay model, as the structured
// substrate of the paper's evaluation.
//
// Identifiers live on a 2^32 ring and are properties of *slots*: when
// PROP-G "exchanges node identifiers" between two physical machines, the
// overlay simply swaps the hosts backing the two slots and every finger
// table — which is defined slot-to-slot — remains exactly correct. That is
// the paper's claim that PROP-G preserves the DHT structure, made literal.
//
// The package also provides the PNS (Proximity Neighbor Selection) variant
// used by the "combined with other recent approaches" experiments: each
// finger entry is chosen as the physically nearest node within the finger
// interval rather than the interval's first successor.
//
// Key types: Ring (identifier ring, finger tables, successor lists) and
// LookupResult. See DESIGN.md §1 for the inventory entry and §2 for the
// Fig. 6 experiments built on it.
package chord

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// Bits is the identifier width; the ring has 2^Bits positions.
const Bits = 32

// ringSize is 2^Bits as a uint64 to simplify modular arithmetic.
const ringSize = uint64(1) << Bits

// Config parameterizes ring construction.
type Config struct {
	// SuccessorListLen is the number of immediate successors each node
	// links to (fault tolerance; Chord's r parameter). Must be >= 1.
	SuccessorListLen int
	// PNS selects proximity neighbor selection: each finger points at the
	// physically nearest candidate in its interval instead of the first.
	PNS bool
}

// DefaultConfig mirrors a standard Chord deployment: successor list of 4,
// plain (non-PNS) finger selection.
func DefaultConfig() Config { return Config{SuccessorListLen: 4} }

// Ring is a built Chord overlay.
type Ring struct {
	// O is the underlying overlay; its logical edges are the union of all
	// finger and successor links (bidirectional, per the paper's §3.2
	// extended-routing-table assumption).
	O *overlay.Overlay
	// ID holds the ring identifier of each slot.
	ID []uint32
	// fingers[slot][j] is the slot the j-th finger points to (may repeat).
	fingers [][]int
	// succ[slot] lists the SuccessorListLen immediate successor slots.
	succ [][]int
	// sorted holds slots ordered by ID for owner lookups.
	sorted []int
	cfg    Config
}

// Build constructs a Chord ring over the given hosts with distinct random
// identifiers. lat supplies physical latencies (also used by PNS).
func Build(hosts []int, cfg Config, lat overlay.LatencyFunc, r *rng.Rand) (*Ring, error) {
	n := len(hosts)
	if n < 2 {
		return nil, fmt.Errorf("chord: need at least 2 nodes, got %d", n)
	}
	if cfg.SuccessorListLen < 1 {
		return nil, fmt.Errorf("chord: SuccessorListLen = %d, want >= 1", cfg.SuccessorListLen)
	}
	o, err := overlay.New(hosts, lat)
	if err != nil {
		return nil, err
	}
	ring := &Ring{
		O:       o,
		ID:      make([]uint32, n),
		fingers: make([][]int, n),
		succ:    make([][]int, n),
		cfg:     cfg,
	}
	// Distinct random IDs.
	used := make(map[uint32]bool, n)
	for s := 0; s < n; s++ {
		for {
			id := uint32(r.Uint64())
			if !used[id] {
				used[id] = true
				ring.ID[s] = id
				break
			}
		}
	}
	ring.sorted = make([]int, n)
	for s := range ring.sorted {
		ring.sorted[s] = s
	}
	sort.Slice(ring.sorted, func(i, j int) bool {
		return ring.ID[ring.sorted[i]] < ring.ID[ring.sorted[j]]
	})
	ring.rebuildTables(lat)
	return ring, nil
}

// rebuildTables recomputes successor lists and finger tables for all slots
// and mirrors them into the overlay's logical graph.
func (ring *Ring) rebuildTables(lat overlay.LatencyFunc) {
	n := len(ring.ID)
	pos := make(map[int]int, n) // slot -> index in sorted
	for i, s := range ring.sorted {
		pos[s] = i
	}
	for _, s := range ring.sorted {
		i := pos[s]
		// Successor list.
		succ := make([]int, 0, ring.cfg.SuccessorListLen)
		for k := 1; k <= ring.cfg.SuccessorListLen && k < n; k++ {
			succ = append(succ, ring.sorted[(i+k)%n])
		}
		ring.succ[s] = succ
		// Finger table: finger j targets id + 2^j.
		fingers := make([]int, Bits)
		for j := 0; j < Bits; j++ {
			start := (uint64(ring.ID[s]) + (uint64(1) << uint(j))) % ringSize
			if ring.cfg.PNS {
				end := (uint64(ring.ID[s]) + (uint64(1) << uint(j+1))) % ringSize
				fingers[j] = ring.nearestInInterval(s, start, end, lat)
			} else {
				fingers[j] = ring.ownerOf(start)
			}
		}
		ring.fingers[s] = fingers
	}
	// Mirror into the logical graph.
	for s := 0; s < n; s++ {
		for _, t := range ring.succ[s] {
			if t != s {
				ring.O.AddEdge(s, t)
			}
		}
		for _, t := range ring.fingers[s] {
			if t != s {
				ring.O.AddEdge(s, t)
			}
		}
	}
}

// Refresh recomputes successor lists and finger tables against the current
// host mapping and rebuilds the logical link set — Chord's periodic
// stabilization. A plain ring is unchanged by it (fingers depend only on
// identifiers), but a PNS ring re-picks each finger's physically nearest
// candidate, which matters after PROP-G exchanges have moved machines
// between identifiers.
func (ring *Ring) Refresh(lat overlay.LatencyFunc) {
	for _, e := range ring.O.Logical.Edges() {
		ring.O.Logical.RemoveEdge(e.U, e.V)
	}
	ring.rebuildTables(lat)
}

// ownerOf returns the slot responsible for id: the first slot whose ID is
// >= id, wrapping around the ring.
func (ring *Ring) ownerOf(id uint64) int {
	ids := ring.sorted
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if uint64(ring.ID[ids[mid]]) >= id {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(ids) {
		return ids[0] // wrap
	}
	return ids[lo]
}

// nearestInInterval returns the slot in [start, end) (ring interval,
// possibly wrapping) physically nearest to s; if the interval is empty it
// falls back to the plain finger ownerOf(start). This is PNS: any node in
// the finger's interval is a correct entry, so pick the closest.
func (ring *Ring) nearestInInterval(s int, start, end uint64, lat overlay.LatencyFunc) int {
	best, bestD := -1, math.Inf(1)
	hs := ring.O.HostOf(s)
	for _, cand := range ring.slotsInInterval(start, end) {
		if cand == s {
			continue
		}
		d := lat(hs, ring.O.HostOf(cand))
		if d < bestD {
			best, bestD = cand, d
		}
	}
	if best < 0 {
		return ring.ownerOf(start)
	}
	return best
}

// slotsInInterval lists slots with ID in the ring interval [start, end).
func (ring *Ring) slotsInInterval(start, end uint64) []int {
	var out []int
	for _, s := range ring.sorted {
		id := uint64(ring.ID[s])
		if start <= end {
			if id >= start && id < end {
				out = append(out, s)
			}
		} else { // wraps zero
			if id >= start || id < end {
				out = append(out, s)
			}
		}
	}
	return out
}

// inInterval reports whether id lies in the half-open ring interval (a, b].
func inInterval(id, a, b uint64) bool {
	if a < b {
		return id > a && id <= b
	}
	if a > b {
		return id > a || id <= b
	}
	return true // a == b: full circle
}

// LookupResult describes one routed lookup.
type LookupResult struct {
	// Owner is the slot responsible for the key.
	Owner int
	// Hops is the number of overlay hops traversed.
	Hops int
	// Latency is the summed physical latency of the hop sequence, plus any
	// per-hop processing delay.
	Latency float64
	// Path lists the slots visited, source first, owner last.
	Path []int
}

// Lookup routes a query for key from the slot src using greedy
// closest-preceding-finger routing and returns the traversal. proc, if
// non-nil, adds processing delay at every visited slot after the source.
func (ring *Ring) Lookup(src int, key uint32, proc overlay.ProcDelayFunc) (LookupResult, error) {
	if !ring.O.Alive(src) {
		return LookupResult{}, fmt.Errorf("chord: lookup from dead slot %d", src)
	}
	owner := ring.ownerOf(uint64(key))
	res := LookupResult{Owner: owner, Path: []int{src}}
	cur := src
	// Safety valve: fingers give O(log n) hops, successor-only fallback is
	// O(n); routing provably terminates within n + Bits hops.
	maxHops := len(ring.ID) + Bits
	for cur != owner {
		next := ring.nextHop(cur, uint64(key))
		if next == cur {
			return res, fmt.Errorf("chord: routing stuck at slot %d for key %d", cur, key)
		}
		res.Latency += ring.O.Dist(cur, next)
		if proc != nil {
			res.Latency += proc(next)
		}
		res.Hops++
		res.Path = append(res.Path, next)
		cur = next
		if res.Hops > maxHops {
			return res, fmt.Errorf("chord: routing exceeded %d hops for key %d", maxHops, key)
		}
	}
	return res, nil
}

// nextHop returns the routing step from cur toward key: the successor if
// the key lies between cur and it, else the closest preceding finger, else
// (fingers all useless) the successor — which is always strictly forward,
// so routing provably progresses.
func (ring *Ring) nextHop(cur int, key uint64) int {
	curID := uint64(ring.ID[cur])
	if len(ring.succ[cur]) > 0 {
		s0 := ring.succ[cur][0]
		if inInterval(key, curID, uint64(ring.ID[s0])) {
			return s0
		}
	}
	// Closest preceding finger: highest finger strictly inside (cur, key).
	for j := Bits - 1; j >= 0; j-- {
		f := ring.fingers[cur][j]
		if f == cur {
			continue
		}
		if inIntervalOpen(uint64(ring.ID[f]), curID, key) {
			return f
		}
	}
	// Successors alone suffice for correctness (Chord invariant).
	if len(ring.succ[cur]) > 0 {
		return ring.succ[cur][0]
	}
	return cur
}

// inIntervalOpen reports whether id lies in the open ring interval (a, b).
func inIntervalOpen(id, a, b uint64) bool {
	if a < b {
		return id > a && id < b
	}
	if a > b {
		return id > a || id < b
	}
	return id != a
}

// RandomKey returns a uniform key.
func RandomKey(r *rng.Rand) uint32 { return uint32(r.Uint64()) }

// NextHopSlot exposes a single routing decision from slot cur toward key —
// the building block for message-level simulations that interleave lookup
// hops with topology changes (see internal/livesim).
func (ring *Ring) NextHopSlot(cur int, key uint32) int {
	return ring.nextHop(cur, uint64(key))
}

// IsOwner reports whether slot s is responsible for key.
func (ring *Ring) IsOwner(s int, key uint32) bool { return ring.ownerOf(uint64(key)) == s }

// Owner exposes the slot responsible for key.
func (ring *Ring) Owner(key uint32) int { return ring.ownerOf(uint64(key)) }

// Fingers returns the finger slots of s (shared storage; do not mutate).
func (ring *Ring) Fingers(s int) []int { return ring.fingers[s] }

// Successors returns the successor slots of s (shared storage).
func (ring *Ring) Successors(s int) []int { return ring.succ[s] }
