package chord

import "fmt"

// CheckInvariants verifies the ring's structural contract — the Chord-level
// predicate the online auditor (internal/audit) evaluates during audited
// runs. Chord's correctness argument splits its state in two: successor
// lists must be *exact* at all times (routing falls back on them), while
// finger tables may go stale between FixFingers rounds but must never
// reference a dead slot. Checked here:
//
//   - the sorted ring lists exactly the live slots, in strictly ascending
//     identifier order (identifiers are distinct);
//   - every successor list equals the next SuccessorListLen live slots in
//     ring order;
//   - every finger table entry references a live slot.
//
// It returns the first violation found, or nil.
func (ring *Ring) CheckInvariants() error {
	n := len(ring.sorted)
	if n != ring.O.NumAlive() {
		return fmt.Errorf("chord: ring order lists %d slots, %d are live", n, ring.O.NumAlive())
	}
	for i, s := range ring.sorted {
		if !ring.O.Alive(s) {
			return fmt.Errorf("chord: ring order contains dead slot %d", s)
		}
		if i > 0 && ring.ID[ring.sorted[i-1]] >= ring.ID[s] {
			return fmt.Errorf("chord: ring order broken at index %d: id %d >= %d",
				i, ring.ID[ring.sorted[i-1]], ring.ID[s])
		}
	}
	for i, s := range ring.sorted {
		want := ring.cfg.SuccessorListLen
		if want > n-1 {
			want = n - 1
		}
		if got := len(ring.succ[s]); got != want {
			return fmt.Errorf("chord: slot %d successor list has %d entries, want %d", s, got, want)
		}
		for k, sc := range ring.succ[s] {
			if exp := ring.sorted[(i+k+1)%n]; sc != exp {
				return fmt.Errorf("chord: slot %d successor %d is %d, ring order says %d", s, k, sc, exp)
			}
		}
		for j, f := range ring.fingers[s] {
			if !ring.O.Alive(f) {
				return fmt.Errorf("chord: slot %d finger %d references dead slot %d", s, j, f)
			}
		}
	}
	return nil
}
