package chord

import (
	"fmt"
	"sort"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// Dynamic membership. Chord's correctness invariant is that successor
// lists are exact; finger tables only accelerate routing and may go stale
// between FixFingers rounds (nextHop skips dead entries and falls back to
// the successor). Join and Leave therefore repair successor lists eagerly
// — for the joiner/leaver's ring neighborhood — and leave finger repair to
// the periodic maintenance the real protocol also uses.

// Join adds a node on host with a fresh uniformly random unique
// identifier, wires its successor list and fingers, and repairs the
// successor lists of the ring neighbors that should now include it. It
// returns the new slot.
func (ring *Ring) Join(host int, lat overlay.LatencyFunc, r *rng.Rand) (int, error) {
	inUse := make(map[uint32]bool, len(ring.sorted))
	for _, s := range ring.sorted {
		inUse[ring.ID[s]] = true
	}
	var id uint32
	for {
		id = uint32(r.Uint64())
		if !inUse[id] {
			break
		}
	}
	return ring.JoinWithID(host, id, lat)
}

// JoinWithID adds a node on host with a caller-chosen identifier — the
// primitive behind proximity-driven ID relocation schemes (SAT-Match, PIS)
// where a node deliberately rejoins next to a physically close peer. The
// identifier must be unused.
func (ring *Ring) JoinWithID(host int, id uint32, lat overlay.LatencyFunc) (int, error) {
	for _, s := range ring.sorted {
		if ring.ID[s] == id {
			return -1, fmt.Errorf("chord: identifier %d already in use by slot %d", id, s)
		}
	}
	slot, err := ring.O.AddSlot(host)
	if err != nil {
		return -1, err
	}
	// ID is indexed by slot; grow the slice to cover the new slot.
	for len(ring.ID) <= slot {
		ring.ID = append(ring.ID, 0)
	}
	ring.ID[slot] = id
	// Grow per-slot tables.
	for len(ring.succ) <= slot {
		ring.succ = append(ring.succ, nil)
	}
	for len(ring.fingers) <= slot {
		ring.fingers = append(ring.fingers, nil)
	}
	// Insert into the sorted ring.
	i := sort.Search(len(ring.sorted), func(k int) bool { return ring.ID[ring.sorted[k]] >= id })
	ring.sorted = append(ring.sorted, 0)
	copy(ring.sorted[i+1:], ring.sorted[i:])
	ring.sorted[i] = slot

	// The newcomer's own tables.
	ring.rebuildNode(slot, lat)
	// Ring neighbors within SuccessorListLen positions behind the newcomer
	// must refresh their successor lists (the newcomer now appears there).
	n := len(ring.sorted)
	for k := 1; k <= ring.cfg.SuccessorListLen && k < n; k++ {
		ring.rebuildNode(ring.sorted[((i-k)%n+n)%n], lat)
	}
	return slot, nil
}

// Leave removes slot from the ring: its ring predecessors re-point their
// successor lists, every finger that referenced it is repaired, and its
// logical links are dropped. The departing node's keys implicitly transfer
// to its successor (ownerOf semantics over the updated ring).
func (ring *Ring) Leave(slot int, lat overlay.LatencyFunc) error {
	if !ring.O.Alive(slot) {
		return fmt.Errorf("chord: Leave(%d) on dead slot", slot)
	}
	if len(ring.sorted) <= 2 {
		return fmt.Errorf("chord: refusing to shrink below 2 nodes")
	}
	// Locate and remove from the sorted ring.
	i := sort.Search(len(ring.sorted), func(k int) bool { return ring.ID[ring.sorted[k]] >= ring.ID[slot] })
	if i >= len(ring.sorted) || ring.sorted[i] != slot {
		return fmt.Errorf("chord: slot %d not in ring order", slot)
	}
	ring.sorted = append(ring.sorted[:i], ring.sorted[i+1:]...)
	if err := ring.O.RemoveSlot(slot); err != nil {
		return err
	}
	ring.succ[slot] = nil
	ring.fingers[slot] = nil

	// Predecessors refresh successor lists.
	n := len(ring.sorted)
	for k := 0; k < ring.cfg.SuccessorListLen && k < n; k++ {
		ring.rebuildNode(ring.sorted[((i-1-k)%n+n)%n], lat)
	}
	// Repair every finger that pointed at the departed slot. (Global scan:
	// the simulator's stand-in for failure detection + lazy repair.)
	for _, s := range ring.sorted {
		changed := false
		for j, f := range ring.fingers[s] {
			if f == slot {
				start := (uint64(ring.ID[s]) + (uint64(1) << uint(j))) % ringSize
				nf := ring.pickFinger(s, j, start, lat)
				ring.fingers[s][j] = nf
				changed = true
			}
		}
		if changed {
			ring.mirrorNode(s)
		}
	}
	return nil
}

// FixFingers recomputes one node's finger table — Chord's periodic
// maintenance. Use after churn or PROP-G activity to restore optimal
// routing (correctness never depends on it).
func (ring *Ring) FixFingers(slot int, lat overlay.LatencyFunc) error {
	if !ring.O.Alive(slot) {
		return fmt.Errorf("chord: FixFingers(%d) on dead slot", slot)
	}
	ring.rebuildNode(slot, lat)
	return nil
}

// rebuildNode recomputes one slot's successor list and fingers and mirrors
// its links into the logical graph.
func (ring *Ring) rebuildNode(slot int, lat overlay.LatencyFunc) {
	n := len(ring.sorted)
	i := sort.Search(n, func(k int) bool { return ring.ID[ring.sorted[k]] >= ring.ID[slot] })
	succ := make([]int, 0, ring.cfg.SuccessorListLen)
	for k := 1; k <= ring.cfg.SuccessorListLen && k < n; k++ {
		succ = append(succ, ring.sorted[(i+k)%n])
	}
	ring.succ[slot] = succ
	fingers := make([]int, Bits)
	for j := 0; j < Bits; j++ {
		start := (uint64(ring.ID[slot]) + (uint64(1) << uint(j))) % ringSize
		fingers[j] = ring.pickFinger(slot, j, start, lat)
	}
	ring.fingers[slot] = fingers
	ring.mirrorNode(slot)
}

// pickFinger chooses the finger-j entry for slot (plain or PNS).
func (ring *Ring) pickFinger(slot, j int, start uint64, lat overlay.LatencyFunc) int {
	if ring.cfg.PNS && lat != nil {
		end := (uint64(ring.ID[slot]) + (uint64(1) << uint(j+1))) % ringSize
		return ring.nearestInInterval(slot, start, end, lat)
	}
	return ring.ownerOf(start)
}

// mirrorNode adds slot's current links to the logical graph. Old links are
// not removed eagerly (real nodes keep connections open until GC); the
// overlay-level metrics consider live links only, and dead endpoints drop
// their edges via RemoveSlot.
func (ring *Ring) mirrorNode(slot int) {
	for _, t := range ring.succ[slot] {
		if t != slot && ring.O.Alive(t) {
			ring.O.AddEdge(slot, t)
		}
	}
	for _, t := range ring.fingers[slot] {
		if t != slot && ring.O.Alive(t) {
			ring.O.AddEdge(slot, t)
		}
	}
}

// Alive reports whether the slot is a live ring member.
func (ring *Ring) Alive(slot int) bool { return ring.O.Alive(slot) }

// Size returns the current ring membership count.
func (ring *Ring) Size() int { return len(ring.sorted) }
