package chord

import (
	"testing"

	"repro/internal/rng"
)

// FuzzIntervalPartition checks the ring-interval algebra nextHop depends
// on: for a != b, the half-open intervals (a,b] and (b,a] partition the
// identifier circle, and the open interval (a,b) is (a,b] minus {b}.
func FuzzIntervalPartition(f *testing.F) {
	f.Add(uint64(5), uint64(3), uint64(8))
	f.Add(uint64(1), uint64(250), uint64(10))
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, id, a, b uint64) {
		if a != b {
			in1 := inInterval(id, a, b)
			in2 := inInterval(id, b, a)
			if in1 == in2 {
				t.Fatalf("(%d,%d] and (%d,%d] do not partition at id=%d: %v/%v",
					a, b, b, a, id, in1, in2)
			}
		} else {
			// Degenerate interval is the full circle.
			if !inInterval(id, a, b) {
				t.Fatalf("full-circle interval excluded id=%d", id)
			}
		}
		// Open vs half-open.
		open := inIntervalOpen(id, a, b)
		if open && id == b {
			t.Fatalf("open interval (%d,%d) contains its endpoint %d", a, b, id)
		}
		if a != b && open != (inInterval(id, a, b) && id != b) {
			t.Fatalf("open/half-open mismatch at id=%d a=%d b=%d", id, a, b)
		}
	})
}

// FuzzOwnerAndLookup builds small rings from fuzz bytes and checks that
// every lookup terminates at the globally computed owner.
func FuzzOwnerAndLookup(f *testing.F) {
	f.Add(uint64(1), uint8(8))
	f.Add(uint64(99), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, sizeRaw uint8) {
		n := 2 + int(sizeRaw%30)
		ring, err := Build(hostsN(n), DefaultConfig(), lat, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(seed ^ 0xdead)
		for i := 0; i < 10; i++ {
			key := RandomKey(r)
			src := r.Intn(n)
			res, err := ring.Lookup(src, key, nil)
			if err != nil {
				t.Fatalf("lookup: %v", err)
			}
			if res.Owner != ring.Owner(key) {
				t.Fatalf("owner mismatch for key %d", key)
			}
		}
	})
}
