package chord

import (
	"testing"

	"repro/internal/dhttest"
	"repro/internal/overlay"
	"repro/internal/rng"
)

type dhtAdapter struct {
	ring *Ring
	lat  overlay.LatencyFunc
}

func (a dhtAdapter) Overlay() *overlay.Overlay { return a.ring.O }
func (a dhtAdapter) Owner(key uint32) int      { return a.ring.Owner(key) }
func (a dhtAdapter) Lookup(src int, key uint32, proc overlay.ProcDelayFunc) (int, int, float64, error) {
	res, err := a.ring.Lookup(src, key, proc)
	return res.Owner, res.Hops, res.Latency, err
}
func (a dhtAdapter) Join(host int, r *rng.Rand) (int, error) { return a.ring.Join(host, a.lat, r) }
func (a dhtAdapter) Leave(slot int) error                    { return a.ring.Leave(slot, a.lat) }
func (a dhtAdapter) Crash(slot int) error                    { return a.ring.Crash(slot) }
func (a dhtAdapter) RepairCrashed() (int, error)             { return a.ring.RepairCrashed(a.lat) }
func (a dhtAdapter) CheckInvariants() error                  { return a.ring.CheckInvariants() }

func TestDHTConformance(t *testing.T) {
	dhttest.Run(t, func(hosts []int, l overlay.LatencyFunc, r *rng.Rand) (dhttest.DHT, error) {
		ring, err := Build(hosts, DefaultConfig(), l, r)
		if err != nil {
			return nil, err
		}
		return dhtAdapter{ring, l}, nil
	})
}

func TestDHTConformancePNS(t *testing.T) {
	dhttest.Run(t, func(hosts []int, l overlay.LatencyFunc, r *rng.Rand) (dhttest.DHT, error) {
		ring, err := Build(hosts, Config{SuccessorListLen: 4, PNS: true}, l, r)
		if err != nil {
			return nil, err
		}
		return dhtAdapter{ring, l}, nil
	})
}
