// Package can implements a two-dimensional Content-Addressable Network
// (Ratnasamy et al., SIGCOMM '01) over the slot/host overlay model — the
// second structured substrate of the paper's evaluation, and the home of
// the PIS baseline ("topologically-aware CAN": physically close nodes are
// placed close in the coordinate space via landmark binning).
//
// The coordinate space is the unit torus [0,1)². Every slot owns a
// rectangular zone; the zones exactly tile the torus. A node joins at a
// point: the zone containing the point splits along its longer side and the
// newcomer takes the half containing its point. Neighbors are zones that
// abut along a border of positive length; greedy routing forwards to the
// neighbor zone nearest the target point.
//
// Key types: Space (the zone tiling plus routing) and Zone. The package's
// place in the system is DESIGN.md §1; the PIS-combination experiment is
// §2 ("combo").
package can

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// Point is a location on the unit torus.
type Point struct{ X, Y float64 }

// RandomPoint returns a uniform point on the torus.
func RandomPoint(r *rng.Rand) Point { return Point{X: r.Float64(), Y: r.Float64()} }

// Zone is a half-open rectangle [X0,X1)×[Y0,Y1) of the unit square.
// (Zones never wrap: splits only ever shrink the initial unit square.)
type Zone struct{ X0, X1, Y0, Y1 float64 }

// Contains reports whether p lies in the zone.
func (z Zone) Contains(p Point) bool {
	return p.X >= z.X0 && p.X < z.X1 && p.Y >= z.Y0 && p.Y < z.Y1
}

// Area returns the zone's area.
func (z Zone) Area() float64 { return (z.X1 - z.X0) * (z.Y1 - z.Y0) }

// Center returns the zone's center point.
func (z Zone) Center() Point { return Point{X: (z.X0 + z.X1) / 2, Y: (z.Y0 + z.Y1) / 2} }

// Config parameterizes CAN construction.
type Config struct {
	// Landmarks, if non-empty, enables PIS: each joining node measures its
	// latency to every landmark host, and the resulting landmark ordering
	// selects a bin (a vertical strip of the space) in which the node picks
	// its join point. Physically close nodes share orderings and therefore
	// strips. Empty Landmarks means plain uniform join points.
	Landmarks []int
}

// Space is a built CAN.
type Space struct {
	// O is the underlying overlay; logical edges connect abutting zones.
	O *overlay.Overlay
	// Zones holds each slot's zone.
	Zones []Zone
	// JoinPoint records the point each node joined at.
	JoinPoint []Point
	cfg       Config

	// The zone split tree: every join splits a leaf; leaves own the live
	// zones. Maintained so churn (Join/Leave, churn.go) is local surgery.
	root   *treeNode
	leafOf map[int]*treeNode
}

// Build constructs a CAN over hosts. The first host owns the whole space;
// each subsequent host joins at a point (uniform, or landmark-binned under
// PIS) and splits the zone containing it.
func Build(hosts []int, cfg Config, lat overlay.LatencyFunc, r *rng.Rand) (*Space, error) {
	n := len(hosts)
	if n < 2 {
		return nil, fmt.Errorf("can: need at least 2 nodes, got %d", n)
	}
	o, err := overlay.New(hosts, lat)
	if err != nil {
		return nil, err
	}
	sp := &Space{
		O:         o,
		Zones:     make([]Zone, n),
		JoinPoint: make([]Point, n),
		cfg:       cfg,
		leafOf:    make(map[int]*treeNode, n),
	}
	sp.Zones[0] = Zone{X0: 0, X1: 1, Y0: 0, Y1: 1}
	sp.JoinPoint[0] = sp.joinPoint(hosts[0], lat, r)
	sp.root = &treeNode{zone: sp.Zones[0], owner: 0}
	sp.leafOf[0] = sp.root
	for slot := 1; slot < n; slot++ {
		p := sp.joinPoint(hosts[slot], lat, r)
		sp.JoinPoint[slot] = p
		occupantLeaf := sp.leafContaining(p)
		occupant := occupantLeaf.owner
		newcomer, keeper := splitZone(occupantLeaf.zone, p)
		kidKeeper := &treeNode{zone: keeper, owner: occupant, parent: occupantLeaf, depth: occupantLeaf.depth + 1}
		kidNew := &treeNode{zone: newcomer, owner: slot, parent: occupantLeaf, depth: occupantLeaf.depth + 1}
		occupantLeaf.kids = [2]*treeNode{kidKeeper, kidNew}
		sp.leafOf[occupant] = kidKeeper
		sp.leafOf[slot] = kidNew
		sp.Zones[slot] = newcomer
		sp.Zones[occupant] = keeper
	}
	// Neighbor discovery: O(n²) scan, run once at build time.
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if zonesAbut(sp.Zones[a], sp.Zones[b]) {
				if err := o.AddEdge(a, b); err != nil {
					return nil, err
				}
			}
		}
	}
	if !o.Connected() {
		return nil, fmt.Errorf("can: zone adjacency graph not connected")
	}
	return sp, nil
}

// joinPoint picks the coordinate-space point a host joins at: uniform for
// plain CAN, landmark-binned for PIS.
func (sp *Space) joinPoint(host int, lat overlay.LatencyFunc, r *rng.Rand) Point {
	m := len(sp.cfg.Landmarks)
	if m == 0 {
		return RandomPoint(r)
	}
	// Order landmarks by latency from this host.
	type ld struct {
		idx int
		d   float64
	}
	order := make([]ld, m)
	for i, l := range sp.cfg.Landmarks {
		order[i] = ld{idx: i, d: lat(host, l)}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].d != order[j].d {
			return order[i].d < order[j].d
		}
		return order[i].idx < order[j].idx
	})
	perm := make([]int, m)
	for i, o := range order {
		perm[i] = o.idx
	}
	// The ordering selects one of m! vertical strips (Ratnasamy's binning).
	bin := permIndex(perm)
	strips := factorial(m)
	width := 1.0 / float64(strips)
	x := (float64(bin) + r.Float64()) * width
	return Point{X: x, Y: r.Float64()}
}

// permIndex returns the lexicographic rank of a permutation of [0,m).
func permIndex(perm []int) int {
	m := len(perm)
	rank := 0
	for i := 0; i < m; i++ {
		smaller := 0
		for j := i + 1; j < m; j++ {
			if perm[j] < perm[i] {
				smaller++
			}
		}
		rank += smaller * factorial(m-1-i)
	}
	return rank
}

func factorial(m int) int {
	f := 1
	for i := 2; i <= m; i++ {
		f *= i
	}
	return f
}

// ZoneOf returns the slot whose zone contains p — a descent of the split
// tree, so it stays correct under churn (dead slots keep stale Zones
// entries, but they are no longer tree leaves).
func (sp *Space) ZoneOf(p Point) int {
	if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
		panic(fmt.Sprintf("can: point %+v outside the unit torus", p))
	}
	return sp.leafContaining(p).owner
}

// splitZone cuts z in half along its longer side (ties split X) and returns
// (the half containing p, the other half).
func splitZone(z Zone, p Point) (withP, other Zone) {
	if z.X1-z.X0 >= z.Y1-z.Y0 {
		mid := (z.X0 + z.X1) / 2
		left := Zone{X0: z.X0, X1: mid, Y0: z.Y0, Y1: z.Y1}
		right := Zone{X0: mid, X1: z.X1, Y0: z.Y0, Y1: z.Y1}
		if p.X < mid {
			return left, right
		}
		return right, left
	}
	mid := (z.Y0 + z.Y1) / 2
	bottom := Zone{X0: z.X0, X1: z.X1, Y0: z.Y0, Y1: mid}
	top := Zone{X0: z.X0, X1: z.X1, Y0: mid, Y1: z.Y1}
	if p.Y < mid {
		return bottom, top
	}
	return top, bottom
}

// zonesAbut reports whether two zones share a border of positive length on
// the torus.
func zonesAbut(a, b Zone) bool {
	// Abut in X (including across the torus seam) and overlap in Y…
	if (touchesCircular(a.X0, a.X1, b.X0, b.X1)) && overlapLen(a.Y0, a.Y1, b.Y0, b.Y1) > 0 {
		return true
	}
	// …or abut in Y and overlap in X.
	if (touchesCircular(a.Y0, a.Y1, b.Y0, b.Y1)) && overlapLen(a.X0, a.X1, b.X0, b.X1) > 0 {
		return true
	}
	return false
}

// touchesCircular reports whether intervals [a0,a1) and [b0,b1) of the unit
// circle touch end-to-end (a1 == b0 or b1 == a0, possibly across the seam).
func touchesCircular(a0, a1, b0, b1 float64) bool {
	eq := func(x, y float64) bool { return math.Abs(x-y) < 1e-12 }
	if eq(a1, b0) || eq(b1, a0) {
		return true
	}
	// Torus seam: 1 wraps to 0.
	if (eq(a1, 1) && eq(b0, 0)) || (eq(b1, 1) && eq(a0, 0)) {
		return true
	}
	return false
}

// overlapLen returns the overlap length of intervals [a0,a1) and [b0,b1).
func overlapLen(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi > lo {
		return hi - lo
	}
	return 0
}

// torusAxisDist returns the circular distance between coordinates s and t.
func torusAxisDist(s, t float64) float64 {
	d := math.Abs(s - t)
	return math.Min(d, 1-d)
}

// zonePointDist returns the torus distance from the nearest point of z to p.
func zonePointDist(z Zone, p Point) float64 {
	dx := axisIntervalDist(p.X, z.X0, z.X1)
	dy := axisIntervalDist(p.Y, z.Y0, z.Y1)
	return math.Sqrt(dx*dx + dy*dy)
}

// axisIntervalDist returns the circular distance from coordinate t to the
// interval [lo,hi).
func axisIntervalDist(t, lo, hi float64) float64 {
	if t >= lo && t < hi {
		return 0
	}
	return math.Min(torusAxisDist(t, lo), torusAxisDist(t, hi))
}

// RouteResult describes one greedy CAN routing.
type RouteResult struct {
	// Owner is the slot whose zone contains the target point.
	Owner int
	// Hops is the number of overlay hops traversed.
	Hops int
	// Latency is the summed physical hop latency plus processing delays.
	Latency float64
	// Path lists visited slots.
	Path []int
}

// Route greedily forwards from slot src toward the target point, always
// moving to the neighbor zone nearest the target (ties to the lowest slot;
// visited zones are never re-entered). proc, if non-nil, adds per-hop
// processing delay.
func (sp *Space) Route(src int, target Point, proc overlay.ProcDelayFunc) (RouteResult, error) {
	if !sp.O.Alive(src) {
		return RouteResult{}, fmt.Errorf("can: route from dead slot %d", src)
	}
	owner := sp.ZoneOf(target)
	res := RouteResult{Owner: owner, Path: []int{src}}
	visited := map[int]bool{src: true}
	cur := src
	for cur != owner {
		best, bestD := -1, math.Inf(1)
		for _, nb := range sp.O.Neighbors(cur) {
			if visited[nb] || !sp.O.Alive(nb) {
				continue
			}
			d := zonePointDist(sp.Zones[nb], target)
			if d < bestD || (d == bestD && nb < best) {
				best, bestD = nb, d
			}
		}
		if best < 0 {
			return res, fmt.Errorf("can: routing stuck at slot %d toward %+v", cur, target)
		}
		res.Latency += sp.O.Dist(cur, best)
		if proc != nil {
			res.Latency += proc(best)
		}
		res.Hops++
		res.Path = append(res.Path, best)
		visited[best] = true
		cur = best
		if res.Hops > len(sp.Zones) {
			return res, fmt.Errorf("can: routing exceeded %d hops", len(sp.Zones))
		}
	}
	return res, nil
}
