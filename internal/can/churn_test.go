package can

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// liveAreasSum returns the total area of live zones.
func liveAreasSum(sp *Space) float64 {
	total := 0.0
	for _, s := range sp.O.AliveSlots() {
		total += sp.Zones[s].Area()
	}
	return total
}

func TestJoinAddsZone(t *testing.T) {
	sp := buildSpace(t, 16, 1)
	r := rng.New(9)
	slot, err := sp.Join(99991, Point{X: 0.33, Y: 0.77}, r)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.O.Alive(slot) {
		t.Fatal("joiner not alive")
	}
	if !sp.Zones[slot].Contains(Point{X: 0.33, Y: 0.77}) {
		t.Fatalf("joiner zone %+v does not contain its point", sp.Zones[slot])
	}
	if math.Abs(liveAreasSum(sp)-1) > 1e-9 {
		t.Fatalf("areas sum to %v after join", liveAreasSum(sp))
	}
	// Routing to the new zone works.
	res, err := sp.Route(0, sp.Zones[slot].Center(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Owner != slot {
		t.Fatalf("route reached %d, want joiner %d", res.Owner, slot)
	}
}

func TestLeaveSimpleMerge(t *testing.T) {
	// Two nodes: leaving is refused (floor of 2). Three nodes: the last
	// joiner's sibling is a leaf, so leaving it must merge cleanly.
	sp := buildSpace(t, 3, 2)
	victim := 2
	if err := sp.Leave(victim); err != nil {
		t.Fatal(err)
	}
	if sp.O.Alive(victim) {
		t.Fatal("victim still alive")
	}
	if math.Abs(liveAreasSum(sp)-1) > 1e-9 {
		t.Fatalf("areas sum to %v after leave", liveAreasSum(sp))
	}
}

func TestLeaveErrors(t *testing.T) {
	sp := buildSpace(t, 2, 3)
	if err := sp.Leave(0); err == nil {
		t.Fatal("shrinking below 2 accepted")
	}
	sp4 := buildSpace(t, 4, 3)
	if err := sp4.Leave(99); err == nil {
		t.Fatal("leave of unknown slot accepted")
	}
	if err := sp4.Leave(1); err != nil {
		t.Fatal(err)
	}
	if err := sp4.Leave(1); err == nil {
		t.Fatal("double leave accepted")
	}
}

// (The churn-storm property test formerly here is superseded by the shared
// ChurnPhase conformance check in internal/dhttest, which all four DHT
// suites run through the online auditor.)

func TestZonesNeverOverlapUnderChurn(t *testing.T) {
	r := rng.New(5)
	sp, err := Build(hostsN(30), Config{}, lat, r)
	if err != nil {
		t.Fatal(err)
	}
	nextHost := 80000
	for op := 0; op < 40; op++ {
		if r.Bool(0.4) && sp.O.NumAlive() > 5 {
			alive := sp.O.AliveSlots()
			if err := sp.Leave(alive[r.Intn(len(alive))]); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := sp.Join(nextHost, RandomPoint(r), r); err != nil {
				t.Fatal(err)
			}
			nextHost++
		}
	}
	// Sample points: each must be in exactly one live zone.
	for i := 0; i < 1000; i++ {
		p := RandomPoint(r)
		count := 0
		for _, s := range sp.O.AliveSlots() {
			if sp.Zones[s].Contains(p) {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("point %+v in %d live zones", p, count)
		}
	}
}

func TestJoinPointForPIS(t *testing.T) {
	hosts := hostsN(50)
	sp, err := Build(hosts, Config{Landmarks: []int{hosts[0], hosts[49]}}, lat, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	// A host physically identical to host 3 must land in host 3's strip.
	p := sp.JoinPointFor(hosts[3]+1, lat, r)
	q := sp.JoinPoint[3]
	if math.Abs(p.X-q.X) > 0.5+1e-9 {
		t.Fatalf("PIS join point X=%v far from similar host's %v", p.X, q.X)
	}
}
