package can

import "fmt"

// Crash-stop failure handling. CAN's original paper handles failures with
// the same takeover scheme as departures — a neighbor claims the dead zone
// once its heartbeats stop — so RepairCrashed replays Leave's split-tree
// surgery for every corpse. The loop processes one corpse at a time because
// a takeover can hand a zone to a slot that is itself crashed (its repair
// then reassigns the merged zone); each pass removes exactly one corpse, so
// the loop terminates.

// Crash kills slot crash-stop: the host is released but the zone stays
// assigned to the corpse until RepairCrashed. The space must retain at
// least two live nodes.
func (sp *Space) Crash(slot int) error {
	if _, ok := sp.leafOf[slot]; !ok || !sp.O.Alive(slot) {
		return fmt.Errorf("can: Crash(%d): not a live member", slot)
	}
	if sp.O.NumAlive() <= 2 {
		return fmt.Errorf("can: refusing to shrink below 2 nodes")
	}
	return sp.O.CrashSlot(slot)
}

// RepairCrashed runs failure recovery until no corpse owns a zone,
// reassigning each dead zone per the takeover scheme. It returns the number
// of corpses repaired.
func (sp *Space) RepairCrashed() (int, error) {
	repaired := 0
	for {
		victim := -1
		for _, c := range sp.O.CrashedSlots() {
			if _, owns := sp.leafOf[c]; owns {
				victim = c
				break
			}
		}
		if victim < 0 {
			return repaired, nil
		}
		if err := sp.takeover(victim); err != nil {
			return repaired, err
		}
		repaired++
	}
}

// takeover reassigns the zone of one crashed slot — Leave's surgery, minus
// the RemoveSlot (the slot is already dead) and plus the purge of its stale
// edges.
func (sp *Space) takeover(slot int) error {
	leaf := sp.leafOf[slot]
	parent := leaf.parent
	if parent == nil {
		return fmt.Errorf("can: cannot take over the root owner")
	}
	sib := parent.kids[0]
	if sib == leaf {
		sib = parent.kids[1]
	}
	if err := sp.O.PurgeCrashed(slot); err != nil {
		return err
	}
	delete(sp.leafOf, slot)

	if sib.isLeaf() {
		// Simple merge: the sibling's owner absorbs the parent rectangle.
		taker := sib.owner
		parent.owner = taker
		parent.kids = [2]*treeNode{}
		sp.leafOf[taker] = parent
		sp.Zones[taker] = parent.zone
		sp.relinkNeighbors(taker)
		return nil
	}
	// Defragmentation: merge the deepest sibling-leaf pair under sib; the
	// freed owner relocates into the dead zone.
	pairParent := deepestLeafPair(sib)
	freed := pairParent.kids[0].owner
	absorber := pairParent.kids[1].owner
	pairParent.owner = absorber
	pairParent.kids = [2]*treeNode{}
	sp.leafOf[absorber] = pairParent
	sp.Zones[absorber] = pairParent.zone
	leaf.owner = freed
	sp.leafOf[freed] = leaf
	sp.Zones[freed] = leaf.zone
	sp.relinkNeighbors(absorber)
	sp.relinkNeighbors(freed)
	return nil
}
