package can

import (
	"testing"

	"repro/internal/dhttest"
	"repro/internal/overlay"
	"repro/internal/rng"
)

// keyPoint deterministically maps a 32-bit key onto the unit torus: high
// halfword to x, low halfword to y.
func keyPoint(key uint32) Point {
	return Point{
		X: float64(key>>16) / 65536.0,
		Y: float64(key&0xFFFF) / 65536.0,
	}
}

type dhtAdapter struct {
	sp  *Space
	lat overlay.LatencyFunc
}

func (a dhtAdapter) Overlay() *overlay.Overlay { return a.sp.O }
func (a dhtAdapter) Owner(key uint32) int      { return a.sp.ZoneOf(keyPoint(key)) }
func (a dhtAdapter) Lookup(src int, key uint32, proc overlay.ProcDelayFunc) (int, int, float64, error) {
	res, err := a.sp.Route(src, keyPoint(key), proc)
	return res.Owner, res.Hops, res.Latency, err
}
func (a dhtAdapter) Join(host int, r *rng.Rand) (int, error) {
	return a.sp.Join(host, a.sp.JoinPointFor(host, a.lat, r), r)
}
func (a dhtAdapter) Leave(slot int) error        { return a.sp.Leave(slot) }
func (a dhtAdapter) Crash(slot int) error        { return a.sp.Crash(slot) }
func (a dhtAdapter) RepairCrashed() (int, error) { return a.sp.RepairCrashed() }
func (a dhtAdapter) CheckInvariants() error      { return a.sp.CheckInvariants() }

func TestDHTConformance(t *testing.T) {
	dhttest.Run(t, func(hosts []int, l overlay.LatencyFunc, r *rng.Rand) (dhttest.DHT, error) {
		sp, err := Build(hosts, Config{}, l, r)
		if err != nil {
			return nil, err
		}
		return dhtAdapter{sp, l}, nil
	})
}

func TestDHTConformancePIS(t *testing.T) {
	dhttest.Run(t, func(hosts []int, l overlay.LatencyFunc, r *rng.Rand) (dhttest.DHT, error) {
		sp, err := Build(hosts, Config{Landmarks: []int{hosts[0], hosts[len(hosts)-1]}}, l, r)
		if err != nil {
			return nil, err
		}
		return dhtAdapter{sp, l}, nil
	})
}
