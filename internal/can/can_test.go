package can

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func lat(a, b int) float64 { return math.Abs(float64(a - b)) }

func hostsN(n int) []int {
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i * 5
	}
	return hosts
}

func buildSpace(t *testing.T, n int, seed uint64) *Space {
	t.Helper()
	sp, err := Build(hostsN(n), Config{}, lat, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(hostsN(1), Config{}, lat, rng.New(1)); err == nil {
		t.Error("single node accepted")
	}
}

func TestZonesTileTheTorus(t *testing.T) {
	sp := buildSpace(t, 200, 42)
	total := 0.0
	for _, z := range sp.Zones {
		if z.X0 >= z.X1 || z.Y0 >= z.Y1 {
			t.Fatalf("degenerate zone %+v", z)
		}
		total += z.Area()
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("zone areas sum to %v, want 1", total)
	}
	// No two zones overlap: sample random points, each must be in exactly
	// one zone.
	r := rng.New(7)
	for i := 0; i < 2000; i++ {
		p := RandomPoint(r)
		count := 0
		for _, z := range sp.Zones {
			if z.Contains(p) {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("point %+v contained in %d zones", p, count)
		}
	}
}

func TestZonesTileProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(100)
		sp, err := Build(hostsN(n), Config{}, lat, r)
		if err != nil {
			return false
		}
		total := 0.0
		for _, z := range sp.Zones {
			total += z.Area()
		}
		return math.Abs(total-1) < 1e-9 && sp.O.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsAbut(t *testing.T) {
	sp := buildSpace(t, 100, 3)
	for s := 0; s < sp.O.NumSlots(); s++ {
		for _, nb := range sp.O.Neighbors(s) {
			if !zonesAbut(sp.Zones[s], sp.Zones[nb]) {
				t.Fatalf("slots %d,%d linked but zones %+v %+v do not abut",
					s, nb, sp.Zones[s], sp.Zones[nb])
			}
		}
	}
}

func TestZoneOf(t *testing.T) {
	sp := buildSpace(t, 50, 5)
	for s, z := range sp.Zones {
		if got := sp.ZoneOf(z.Center()); got != s {
			t.Fatalf("ZoneOf(center of %d) = %d", s, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-torus point accepted")
		}
	}()
	sp.ZoneOf(Point{X: 1.5, Y: 0})
}

func TestRouteReachesOwner(t *testing.T) {
	sp := buildSpace(t, 256, 9)
	r := rng.New(77)
	for i := 0; i < 400; i++ {
		src := r.Intn(256)
		target := RandomPoint(r)
		res, err := sp.Route(src, target, nil)
		if err != nil {
			t.Fatalf("route %d: %v", i, err)
		}
		if res.Owner != sp.ZoneOf(target) {
			t.Fatalf("route reached %d, owner is %d", res.Owner, sp.ZoneOf(target))
		}
		if res.Path[len(res.Path)-1] != res.Owner {
			t.Fatalf("path does not end at owner: %v", res.Path)
		}
	}
}

func TestRouteSelfZone(t *testing.T) {
	sp := buildSpace(t, 64, 21)
	z := sp.Zones[10]
	res, err := sp.Route(10, z.Center(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops != 0 || res.Latency != 0 || res.Owner != 10 {
		t.Fatalf("self route: %+v", res)
	}
}

func TestRouteFromDeadSlot(t *testing.T) {
	sp := buildSpace(t, 16, 2)
	if _, err := sp.Route(999, Point{X: 0.5, Y: 0.5}, nil); err == nil {
		t.Fatal("route from invalid slot accepted")
	}
}

func TestRouteHopsScaleAsSqrtN(t *testing.T) {
	sp := buildSpace(t, 1024, 13)
	r := rng.New(1)
	totalHops := 0
	const routes = 200
	for i := 0; i < routes; i++ {
		res, err := sp.Route(r.Intn(1024), RandomPoint(r), nil)
		if err != nil {
			t.Fatal(err)
		}
		totalHops += res.Hops
	}
	avg := float64(totalHops) / routes
	// 2-d CAN expects O(sqrt(n)) = 32 hops; average should be well below 64.
	if avg > 64 {
		t.Fatalf("average hops %.1f too high for n=1024", avg)
	}
}

func TestRouteProcessingDelay(t *testing.T) {
	sp := buildSpace(t, 128, 31)
	r := rng.New(4)
	src := r.Intn(128)
	target := RandomPoint(r)
	base, err := sp.Route(src, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	withProc, err := sp.Route(src, target, func(int) float64 { return 7 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withProc.Latency-base.Latency-float64(base.Hops)*7) > 1e-9 {
		t.Fatalf("processing delay accounting off: %v vs %v (%d hops)",
			base.Latency, withProc.Latency, base.Hops)
	}
}

func TestPISClustersCloseHosts(t *testing.T) {
	// Hosts on a line; landmarks at the two ends plus middle. PIS should
	// place hosts with similar landmark orderings in the same strip, so the
	// X coordinates of physically close hosts should cluster.
	n := 300
	hosts := hostsN(n)
	landmarks := []int{hosts[0], hosts[n/2], hosts[n-1]}
	sp, err := Build(hosts, Config{Landmarks: landmarks}, lat, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	// Any two hosts in the same short physical segment share a bin, hence a
	// strip of width 1/6; their join-point X difference must be < 1/6.
	for i := 10; i < 40; i++ {
		dx := math.Abs(sp.JoinPoint[i].X - sp.JoinPoint[i+1].X)
		if dx > 1.0/6+1e-9 {
			t.Fatalf("adjacent hosts %d,%d landed %v apart in X", i, i+1, dx)
		}
	}
	// PIS must reduce mean logical link latency vs plain CAN.
	plain, err := Build(hosts, Config{}, lat, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	if sp.O.MeanLinkLatency() >= plain.O.MeanLinkLatency() {
		t.Fatalf("PIS link latency %.1f not below plain %.1f",
			sp.O.MeanLinkLatency(), plain.O.MeanLinkLatency())
	}
}

func TestPISRoutesCorrectly(t *testing.T) {
	n := 200
	hosts := hostsN(n)
	sp, err := Build(hosts, Config{Landmarks: []int{hosts[0], hosts[n-1]}}, lat, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	for i := 0; i < 200; i++ {
		target := RandomPoint(r)
		res, err := sp.Route(r.Intn(n), target, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner != sp.ZoneOf(target) {
			t.Fatal("PIS route reached wrong owner")
		}
	}
}

func TestPermIndex(t *testing.T) {
	cases := []struct {
		perm []int
		want int
	}{
		{[]int{0, 1, 2}, 0},
		{[]int{0, 2, 1}, 1},
		{[]int{1, 0, 2}, 2},
		{[]int{1, 2, 0}, 3},
		{[]int{2, 0, 1}, 4},
		{[]int{2, 1, 0}, 5},
		{[]int{0}, 0},
	}
	for _, c := range cases {
		if got := permIndex(c.perm); got != c.want {
			t.Errorf("permIndex(%v) = %d, want %d", c.perm, got, c.want)
		}
	}
}

func TestFactorial(t *testing.T) {
	want := map[int]int{0: 1, 1: 1, 2: 2, 3: 6, 4: 24}
	for in, out := range want {
		if got := factorial(in); got != out {
			t.Errorf("factorial(%d) = %d", in, got)
		}
	}
}

func TestSplitZone(t *testing.T) {
	z := Zone{X0: 0, X1: 1, Y0: 0, Y1: 0.5} // wider than tall: split X
	withP, other := splitZone(z, Point{X: 0.7, Y: 0.1})
	if withP.X0 != 0.5 || other.X1 != 0.5 {
		t.Fatalf("split halves: %+v %+v", withP, other)
	}
	if !withP.Contains(Point{X: 0.7, Y: 0.1}) {
		t.Fatal("newcomer half does not contain join point")
	}
	tall := Zone{X0: 0, X1: 0.25, Y0: 0, Y1: 1} // taller: split Y
	withP, other = splitZone(tall, Point{X: 0.1, Y: 0.2})
	if withP.Y1 != 0.5 || other.Y0 != 0.5 {
		t.Fatalf("tall split halves: %+v %+v", withP, other)
	}
}

func TestZonesAbutSeam(t *testing.T) {
	a := Zone{X0: 0, X1: 0.5, Y0: 0, Y1: 1}
	b := Zone{X0: 0.5, X1: 1, Y0: 0, Y1: 1}
	if !zonesAbut(a, b) {
		t.Fatal("adjacent halves should abut")
	}
	// Across the torus seam in X.
	if !zonesAbut(b, a) {
		t.Fatal("abutment not symmetric")
	}
	c := Zone{X0: 0, X1: 0.5, Y0: 0, Y1: 0.5}
	d := Zone{X0: 0.5, X1: 1, Y0: 0.5, Y1: 1}
	if zonesAbut(c, d) {
		t.Fatal("diagonal zones should not abut (zero-length corner contact)")
	}
}

func TestZonePointDist(t *testing.T) {
	z := Zone{X0: 0.25, X1: 0.5, Y0: 0.25, Y1: 0.5}
	if d := zonePointDist(z, Point{X: 0.3, Y: 0.3}); d != 0 {
		t.Fatalf("inside point dist = %v", d)
	}
	if d := zonePointDist(z, Point{X: 0.75, Y: 0.3}); math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("side dist = %v, want 0.25", d)
	}
	// Torus wrap: point at X=0.99 is 0.26 from X0=0.25 going left,
	// but only 1-0.99+0.25 = 0.26... and from X1=0.5: 0.49; wrap from 0.99
	// to 0.25 is min(0.74, 0.26) = 0.26.
	if d := zonePointDist(z, Point{X: 0.99, Y: 0.3}); math.Abs(d-0.26) > 1e-12 {
		t.Fatalf("wrap dist = %v, want 0.26", d)
	}
}

func BenchmarkRoute512(b *testing.B) {
	sp, err := Build(hostsN(512), Config{}, lat, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Route(r.Intn(512), RandomPoint(r), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild512(b *testing.B) {
	hosts := hostsN(512)
	for i := 0; i < b.N; i++ {
		if _, err := Build(hosts, Config{}, lat, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
