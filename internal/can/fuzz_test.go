package can

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/rng"
)

// FuzzOwnerAndLookup builds small CANs from fuzz inputs and checks — through
// the online auditor, so the predicates match the audited experiment runs —
// that routing from src terminates at the zone owning the key's point within
// the geometric hop bound, that the space stays well-formed, and that
// PROP-G host swaps change none of it.
func FuzzOwnerAndLookup(f *testing.F) {
	f.Add(uint64(1), uint32(12345), uint8(3), uint8(16))
	f.Add(uint64(99), uint32(0xFFFF0000), uint8(0), uint8(2))
	f.Add(uint64(7), uint32(0), uint8(200), uint8(29))
	f.Fuzz(func(t *testing.T, seed uint64, key uint32, srcRaw, sizeRaw uint8) {
		n := 2 + int(sizeRaw%30)
		sp, err := Build(hostsN(n), Config{}, lat, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		src := int(srcRaw) % n

		a := audit.New(1, 16)
		a.Register(
			audit.OverlayBijection(sp.O),
			audit.OverlayConnected(sp.O),
			audit.Check("can-wellformed", sp.CheckInvariants),
			audit.LookupTermination("can-lookup",
				func(k uint32) int { return sp.ZoneOf(keyPoint(k)) },
				func(s int, k uint32) (int, int, error) {
					res, err := sp.Route(s, keyPoint(k), nil)
					return res.Owner, res.Hops, err
				},
				[]int{src}, []uint32{key, key ^ 0xA5A5A5A5}, n),
		)
		a.CheckNow()
		if err := a.Err(); err != nil {
			t.Fatal(err)
		}

		// PROP-G activity must not disturb ownership or routing.
		r := rng.New(seed ^ 0xbeef)
		for i := 0; i < 8; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				if err := sp.O.SwapHosts(u, v); err != nil {
					t.Fatal(err)
				}
			}
			a.Observe(audit.Record{Kind: audit.KindExchange, A: u, B: v})
		}
		if err := a.Err(); err != nil {
			t.Fatal(err)
		}
	})
}
