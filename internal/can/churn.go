package can

import (
	"fmt"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// Dynamic membership for CAN, following the original paper's takeover
// scheme on the zone split tree:
//
//   - Join: the new node picks a point, the zone containing it splits, the
//     newcomer takes the half containing its point.
//   - Leave: if the departing zone's split-tree sibling is a leaf, the
//     sibling's owner absorbs the merged parent rectangle. Otherwise the
//     deepest sibling-leaf *pair* inside the sibling subtree is merged —
//     one of the pair's owners absorbs their parent rectangle — and the
//     freed owner relocates to take over the departed zone. Either way the
//     zones remain rectangles that exactly tile the torus.
//
// The split tree is maintained by Build (every join splits a leaf), so
// churn operations are local tree surgery plus neighbor-link repair.

// treeNode is a node of the zone split tree. Leaves own zones.
type treeNode struct {
	zone   Zone
	owner  int // slot; valid for leaves only
	kids   [2]*treeNode
	parent *treeNode
	depth  int
}

func (t *treeNode) isLeaf() bool { return t.kids[0] == nil }

// Join adds a node on host at point p (pass RandomPoint for plain CAN or a
// PIS-binned point). It returns the new slot.
func (sp *Space) Join(host int, p Point, r *rng.Rand) (int, error) {
	occupantLeaf := sp.leafContaining(p)
	occupant := occupantLeaf.owner
	slot, err := sp.O.AddSlot(host)
	if err != nil {
		return -1, err
	}
	for len(sp.Zones) <= slot {
		sp.Zones = append(sp.Zones, Zone{})
		sp.JoinPoint = append(sp.JoinPoint, Point{})
	}
	sp.JoinPoint[slot] = p
	newcomer, keeper := splitZone(occupantLeaf.zone, p)
	// The occupant keeps one half, the newcomer takes the half with p.
	kidKeeper := &treeNode{zone: keeper, owner: occupant, parent: occupantLeaf, depth: occupantLeaf.depth + 1}
	kidNew := &treeNode{zone: newcomer, owner: slot, parent: occupantLeaf, depth: occupantLeaf.depth + 1}
	occupantLeaf.kids = [2]*treeNode{kidKeeper, kidNew}
	sp.leafOf[occupant] = kidKeeper
	sp.leafOf[slot] = kidNew
	sp.Zones[occupant] = keeper
	sp.Zones[slot] = newcomer
	sp.relinkNeighbors(occupant)
	sp.relinkNeighbors(slot)
	return slot, nil
}

// Leave removes slot from the space, reassigning its zone per the takeover
// scheme. The space must retain at least two nodes.
func (sp *Space) Leave(slot int) error {
	leaf, ok := sp.leafOf[slot]
	if !ok || !sp.O.Alive(slot) {
		return fmt.Errorf("can: Leave(%d): not a live member", slot)
	}
	if sp.O.NumAlive() <= 2 {
		return fmt.Errorf("can: refusing to shrink below 2 nodes")
	}
	parent := leaf.parent
	if parent == nil {
		return fmt.Errorf("can: cannot remove the root owner")
	}
	sib := parent.kids[0]
	if sib == leaf {
		sib = parent.kids[1]
	}
	if err := sp.O.RemoveSlot(slot); err != nil {
		return err
	}
	delete(sp.leafOf, slot)

	if sib.isLeaf() {
		// Simple merge: the sibling's owner absorbs the parent rectangle.
		taker := sib.owner
		parent.owner = taker
		parent.kids = [2]*treeNode{}
		sp.leafOf[taker] = parent
		sp.Zones[taker] = parent.zone
		sp.relinkNeighbors(taker)
		return nil
	}
	// Defragmentation: merge the deepest sibling-leaf pair under sib; the
	// freed owner relocates into the departed zone.
	pairParent := deepestLeafPair(sib)
	freed := pairParent.kids[0].owner
	absorber := pairParent.kids[1].owner
	pairParent.owner = absorber
	pairParent.kids = [2]*treeNode{}
	sp.leafOf[absorber] = pairParent
	sp.Zones[absorber] = pairParent.zone
	// The freed owner takes over the departed leaf.
	leaf.owner = freed
	sp.leafOf[freed] = leaf
	sp.Zones[freed] = leaf.zone
	sp.relinkNeighbors(absorber)
	sp.relinkNeighbors(freed)
	return nil
}

// deepestLeafPair returns the deepest internal node under t whose two
// children are both leaves. Such a node exists in every finite subtree.
func deepestLeafPair(t *treeNode) *treeNode {
	var best *treeNode
	var walk func(*treeNode)
	walk = func(n *treeNode) {
		if n.isLeaf() {
			return
		}
		if n.kids[0].isLeaf() && n.kids[1].isLeaf() {
			if best == nil || n.depth > best.depth {
				best = n
			}
			return
		}
		walk(n.kids[0])
		walk(n.kids[1])
	}
	walk(t)
	return best
}

// leafContaining descends the split tree to the leaf whose zone contains p.
func (sp *Space) leafContaining(p Point) *treeNode {
	n := sp.root
	for !n.isLeaf() {
		if n.kids[0].zone.Contains(p) {
			n = n.kids[0]
		} else {
			n = n.kids[1]
		}
	}
	return n
}

// relinkNeighbors recomputes slot's adjacency: its old links are dropped
// and fresh abutment links are added against every live zone.
func (sp *Space) relinkNeighbors(slot int) {
	if !sp.O.Alive(slot) {
		return
	}
	for _, nb := range sp.O.Neighbors(slot) {
		sp.O.RemoveEdge(slot, nb)
	}
	z := sp.Zones[slot]
	for _, other := range sp.O.AliveSlots() {
		if other == slot {
			continue
		}
		if zonesAbut(z, sp.Zones[other]) {
			sp.O.AddEdge(slot, other)
		}
	}
}

// JoinPointFor picks the coordinate point a joining host should use:
// landmark-binned when the space was built with PIS, uniform otherwise.
func (sp *Space) JoinPointFor(host int, lat overlay.LatencyFunc, r *rng.Rand) Point {
	return sp.joinPoint(host, lat, r)
}
