package can

import (
	"fmt"
	"math"
)

// CheckInvariants verifies the space's structural contract — the CAN-level
// predicate the online auditor (internal/audit) evaluates during audited
// runs. CAN's correctness rests on the zones of live slots exactly tiling
// the unit torus and the overlay links exactly reflecting zone abutment:
//
//   - every live zone has positive area and the live areas sum to 1;
//   - no two live zones overlap;
//   - the split tree agrees with the flat state: each live slot's leaf owns
//     it and carries its zone;
//   - slots are logically linked iff their zones abut.
//
// It returns the first violation found, or nil.
func (sp *Space) CheckInvariants() error {
	alive := sp.O.AliveSlots()
	total := 0.0
	for _, s := range alive {
		z := sp.Zones[s]
		if z.Area() <= 0 {
			return fmt.Errorf("can: slot %d owns a degenerate zone %+v", s, z)
		}
		total += z.Area()
		leaf, ok := sp.leafOf[s]
		if !ok {
			return fmt.Errorf("can: live slot %d missing from the split tree", s)
		}
		if !leaf.isLeaf() {
			return fmt.Errorf("can: slot %d maps to an internal tree node", s)
		}
		if leaf.owner != s {
			return fmt.Errorf("can: slot %d's tree leaf is owned by %d", s, leaf.owner)
		}
		if leaf.zone != z {
			return fmt.Errorf("can: slot %d zone %+v disagrees with tree leaf %+v", s, z, leaf.zone)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("can: live zones cover area %v, want 1 (tiling broken)", total)
	}
	for i, a := range alive {
		for _, b := range alive[i+1:] {
			za, zb := sp.Zones[a], sp.Zones[b]
			if overlapLen(za.X0, za.X1, zb.X0, zb.X1) > 1e-12 &&
				overlapLen(za.Y0, za.Y1, zb.Y0, zb.Y1) > 1e-12 {
				return fmt.Errorf("can: zones of slots %d and %d overlap", a, b)
			}
			if has, abut := sp.O.Logical.HasEdge(a, b), zonesAbut(za, zb); has != abut {
				return fmt.Errorf("can: slots %d,%d linked=%v but zones abut=%v", a, b, has, abut)
			}
		}
	}
	return nil
}
