package metrics

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/overlay"
)

// This file maintains the paper's eq. (3) AverageLatency incrementally
// (DESIGN.md §11). The exact metric refloods every live slot — O(n·Dijkstra)
// per evaluation — which dominates experiment time once AL is sampled after
// every exchange. ALTracker instead keeps all n arrival rows resident and,
// after each batch of topology mutations, repairs only the rows' affected
// regions (overlay.RepairFloodRow), folding per-row sum deltas into a
// running total. The arrival rows themselves stay bit-exact; only the
// aggregated sums can drift by floating-point reassociation, which the
// tracker bounds conservatively and discharges with a full reflood when the
// bound crosses the configured budget.

// alTrackerUlp is the double-precision unit roundoff (2^-52), the per-step
// factor of the conservative drift bound: folding a delta of magnitude a
// into a sum of magnitude s mis-rounds by at most ulp·(|s|+a).
const alTrackerUlp = 2.220446049250313e-16

// alTrackerMaxAffectedDenom bounds per-row repair: when the affected set
// exceeds n/alTrackerMaxAffectedDenom slots, repairing is no cheaper than
// reflooding, so the row is reflooded instead.
const alTrackerMaxAffectedDenom = 2

// alTrackerJournalCap is the default logical-graph journal capacity; a
// batch longer than this (between two Update calls) forces a full reflood.
const alTrackerJournalCap = 8192

// ALTrackerOptions configures an ALTracker.
type ALTrackerOptions struct {
	// DriftBudget is the largest conservative drift bound, in milliseconds
	// on the AL value, tolerated before Update discharges with a full
	// reflood. Zero selects the default (1e-6 ms); a negative budget forces
	// a full reflood on every Update — the always-exact reference mode the
	// property tests pin the incremental path against.
	DriftBudget float64
	// JournalCap overrides the logical-graph mutation journal capacity
	// (default 8192). A mutation batch longer than the capacity cannot be
	// diffed and forces a full reflood.
	JournalCap int
}

// ALUpdateStats reports what one ALTracker.Update did.
type ALUpdateStats struct {
	// Events is the number of slot lifecycle events absorbed; Mutations the
	// logical-graph journal batch length.
	Events, Mutations int
	// RemovedLinks and AddedLinks count the batch's net flood-visible link
	// changes (including the implicit removals of a crashed slot's stale
	// links).
	RemovedLinks, AddedLinks int
	// RowsClean counts surviving rows the repair proved untouched,
	// RowsRepaired rows patched in place, RowsReflooded rows reflooded
	// because their affected region was too large.
	RowsClean, RowsRepaired, RowsReflooded int
	// BornRows and DeadRows count rows created for joined slots and retired
	// for dead slots.
	BornRows, DeadRows int
	// FullReflood is set when the whole tracker was rebuilt by reflooding
	// every row; Reason says why ("swap", "journal", "forced", "drift").
	FullReflood bool
	// Reason is the full-reflood trigger, empty on the incremental path.
	Reason string
	// Drift is the conservative accumulated drift bound on the AL value, in
	// milliseconds, after this update.
	Drift float64
}

// ALTracker maintains AverageLatency (exact mode, nil sample) as a
// delta-updated aggregate over a mutating overlay. It observes topology
// changes through two feeds it claims at construction: the overlay's slot
// event hook (SetSlotEventHook) and the logical graph's mutation journal
// (graph.TrackMutations) — the tracker must therefore be the only consumer
// of both on this overlay. All methods, and every overlay mutation, must
// run on the same goroutine (or be otherwise serialized): Update repairs
// rows in place at a quiescent point, fanning the per-row work out across
// GOMAXPROCS workers internally.
//
// PROP-G host swaps change every latency term at once, so any SlotSwap in a
// batch degrades Update to a full reflood; PROP-O rewires and churn stay on
// the incremental path.
type ALTracker struct {
	o    *overlay.Overlay
	proc overlay.ProcDelayFunc
	opt  ALTrackerOptions

	rows      [][]float64 // per-slot arrival row, nil for dead slots
	rowSum    []float64   // finite-entry sum of rows[src]
	rowFinite []int       // finite-entry count of rows[src]
	total     float64     // Σ rowSum over live rows
	finite    int         // Σ rowFinite over live rows
	drift     float64     // conservative drift bound on total, in ms·n²

	ver    uint64 // logical-graph version consumed so far
	events []overlay.SlotEvent
}

// NewALTracker builds a tracker over o and pays one full reflood to seed
// the rows. It installs the overlay's slot event hook and enables mutation
// journaling on o.Logical; call Detach to release both.
func NewALTracker(o *overlay.Overlay, proc overlay.ProcDelayFunc, opt ALTrackerOptions) (*ALTracker, error) {
	if o.NumAlive() == 0 {
		return nil, fmt.Errorf("metrics: ALTracker over empty overlay")
	}
	if opt.DriftBudget == 0 {
		opt.DriftBudget = 1e-6
	}
	if opt.JournalCap <= 0 {
		opt.JournalCap = alTrackerJournalCap
	}
	t := &ALTracker{o: o, proc: proc, opt: opt}
	o.SetSlotEventHook(func(e overlay.SlotEvent) { t.events = append(t.events, e) })
	o.Logical.TrackMutations(opt.JournalCap)
	t.refloodAll()
	return t, nil
}

// Detach removes the tracker's slot event hook and disables journaling,
// leaving the overlay as found. The tracker must not be used afterwards.
func (t *ALTracker) Detach() {
	t.o.SetSlotEventHook(nil)
	t.o.Logical.TrackMutations(0)
}

// Value returns the current AverageLatency: total arrival mass over n²
// ordered live pairs (self-pairs contribute zero, unreachable pairs are
// excluded from the mass — match UnreachablePairs against zero when exact
// comparability matters).
func (t *ALTracker) Value() float64 {
	a := t.o.NumAlive()
	if a == 0 {
		return 0
	}
	return t.total / float64(a*a)
}

// Drift returns the conservative accumulated drift bound on Value, in
// milliseconds. The arrival rows are bit-exact at all times; only the sum
// aggregation can drift, by at most this bound, before the next discharge.
func (t *ALTracker) Drift() float64 {
	a := t.o.NumAlive()
	if a == 0 {
		return 0
	}
	return t.drift / float64(a*a)
}

// UnreachablePairs returns the number of ordered live pairs with no flood
// path (such pairs contribute nothing to Value, where the exact
// AverageLatency refuses to evaluate).
func (t *ALTracker) UnreachablePairs() int {
	a := t.o.NumAlive()
	return a*a - t.finite
}

// Update absorbs every overlay mutation since the previous Update (or
// construction) and brings Value back in sync. Typical cost per PROP-O
// exchange is O(rows·patch + affected·Dijkstra-region); see BENCH_PR7.json
// for the measured ratio against exact reflooding.
func (t *ALTracker) Update() ALUpdateStats {
	evs := t.events
	t.events = nil
	st := ALUpdateStats{Events: len(evs)}

	muts, ok := t.o.Logical.MutationsSince(t.ver)
	st.Mutations = len(muts)
	if len(evs) == 0 && ok && len(muts) == 0 {
		st.Drift = t.Drift()
		return st
	}
	if t.opt.DriftBudget < 0 {
		return t.fullReflood(st, "forced")
	}
	if !ok {
		return t.fullReflood(st, "journal")
	}
	for _, e := range evs {
		if e.Kind == overlay.SlotSwap {
			return t.fullReflood(st, "swap")
		}
	}

	// Classify the batch's lifecycle events. A slot both born and dead in
	// the same batch never contributes a row or a flood-visible link.
	died := map[int]int{}  // slot -> released host
	born := map[int]bool{} // slot -> joined this batch
	var crashedNow, diedOrder, bornOrder []int
	for _, e := range evs {
		switch e.Kind {
		case overlay.SlotJoin:
			born[e.U] = true
			bornOrder = append(bornOrder, e.U)
		case overlay.SlotLeave, overlay.SlotCrash:
			if _, dup := died[e.U]; !dup {
				diedOrder = append(diedOrder, e.U)
			}
			died[e.U] = e.HostU
			if e.Kind == overlay.SlotCrash {
				crashedNow = append(crashedNow, e.U)
			}
		}
	}
	deadBefore := func(x int) bool {
		_, d := died[x]
		return !t.o.Alive(x) && !d
	}
	hostAt := func(x int) int {
		if h, d := died[x]; d {
			return h
		}
		return t.o.HostOf(x)
	}

	// Net link diff: journal mutations plus the implicit removals of
	// crashed slots' stale links (present in the logical graph, invisible
	// to floods). Links already dead before the batch, or dead at both
	// ends after it, never influence any flood and are skipped — exactly
	// the RepairFloodRow patch contract.
	added, removed := graph.NetDiff(muts)
	addedSet := map[int64]bool{}
	for _, e := range added {
		addedSet[alPairKey(e.U, e.V)] = true
	}
	var rem, add []overlay.FloodEdge
	for _, e := range removed {
		u, v := e.U, e.V
		if deadBefore(u) || deadBefore(v) {
			continue
		}
		if !t.o.Alive(u) && !t.o.Alive(v) {
			continue
		}
		rem = append(rem, overlay.FloodEdge{U: u, V: v, HostU: hostAt(u), HostV: hostAt(v)})
	}
	for _, e := range added {
		u, v := e.U, e.V
		if !t.o.Alive(u) || !t.o.Alive(v) {
			continue
		}
		add = append(add, overlay.FloodEdge{U: u, V: v, HostU: t.o.HostOf(u), HostV: t.o.HostOf(v)})
	}
	for _, x := range crashedNow {
		for _, nb := range t.o.Neighbors(x) {
			if addedSet[alPairKey(x, nb)] || deadBefore(nb) || !t.o.Alive(nb) {
				continue
			}
			rem = append(rem, overlay.FloodEdge{U: x, V: nb, HostU: died[x], HostV: t.o.HostOf(nb)})
		}
	}
	st.RemovedLinks, st.AddedLinks = len(rem), len(add)

	// Grow the per-slot state to the post-batch slot count; new entries of
	// surviving rows start at +Inf (no mass contribution).
	n := t.o.NumSlots()
	inf := math.Inf(1)
	for len(t.rows) < n {
		t.rows = append(t.rows, nil)
		t.rowSum = append(t.rowSum, 0)
		t.rowFinite = append(t.rowFinite, 0)
	}
	for src, row := range t.rows {
		if row == nil {
			continue // dead (or not-yet-seeded) slots have no row to extend
		}
		for len(row) < n {
			row = append(row, inf)
		}
		t.rows[src] = row
	}

	// Retire rows of dead sources.
	for _, d := range diedOrder {
		if t.rows[d] == nil {
			continue
		}
		t.total -= t.rowSum[d]
		t.drift += alTrackerUlp * (math.Abs(t.total) + math.Abs(t.rowSum[d]))
		t.finite -= t.rowFinite[d]
		t.rows[d], t.rowSum[d], t.rowFinite[d] = nil, 0, 0
		st.DeadRows++
	}

	// Repair every surviving row in parallel, then fold the per-row deltas
	// sequentially in ascending slot order so the aggregate is
	// deterministic. Rows whose affected region is too large are reflooded
	// instead, with the reflood expressed as one big delta.
	if len(rem) > 0 || len(add) > 0 || len(diedOrder) > 0 {
		patch := overlay.NewFloodPatch(rem, add)
		type rowDelta struct {
			sum, abs float64
			finite   int
			kind     uint8 // 0 clean, 1 repaired, 2 reflooded
		}
		deltas := make([]rowDelta, n)
		maxAffected := n / alTrackerMaxAffectedDenom
		workers := runtime.GOMAXPROCS(0)
		ch := make(chan int, n)
		for src := 0; src < n; src++ {
			if t.rows[src] != nil {
				ch <- src
			}
		}
		close(ch)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for src := range ch {
					row := t.rows[src]
					rst, ok := t.o.RepairFloodRow(patch, t.proc, src, row, maxAffected)
					d := &deltas[src]
					if !ok {
						t.o.FloodLatenciesInto(src, t.proc, row)
						sum, fin := alFiniteSum(row)
						d.sum = sum - t.rowSum[src]
						d.abs = math.Abs(sum) + math.Abs(t.rowSum[src])
						d.finite = fin - t.rowFinite[src]
						d.kind = 2
						continue
					}
					// Sweep stale entries of slots that died without a
					// flood-visible link of their own (see RepairFloodRow).
					for _, dd := range diedOrder {
						if row[dd] < inf {
							rst.SumDelta -= row[dd]
							rst.AbsDelta += row[dd]
							rst.FiniteDelta--
							row[dd] = inf
						}
					}
					d.sum, d.abs, d.finite = rst.SumDelta, rst.AbsDelta, rst.FiniteDelta
					if rst.Affected > 0 || rst.SumDelta != 0 || rst.FiniteDelta != 0 {
						d.kind = 1
					}
				}
			}()
		}
		wg.Wait()
		for src := 0; src < n; src++ {
			if t.rows[src] == nil {
				continue
			}
			d := deltas[src]
			switch d.kind {
			case 0:
				st.RowsClean++
				continue
			case 1:
				st.RowsRepaired++
			case 2:
				st.RowsReflooded++
			}
			t.rowSum[src] += d.sum
			t.rowFinite[src] += d.finite
			t.total += d.sum
			t.finite += d.finite
			t.drift += alTrackerUlp * (math.Abs(t.rowSum[src]) + math.Abs(t.total) + 2*d.abs)
		}
	}

	// Seed rows for slots born this batch (after all link changes, so one
	// fresh flood per newcomer is exact).
	for _, b := range bornOrder {
		if !t.o.Alive(b) || t.rows[b] != nil {
			continue
		}
		row := t.o.FloodLatenciesInto(b, t.proc, make([]float64, n))
		sum, fin := alFiniteSum(row)
		t.rows[b], t.rowSum[b], t.rowFinite[b] = row, sum, fin
		t.total += sum
		t.finite += fin
		t.drift += alTrackerUlp * (math.Abs(t.total) + math.Abs(sum))
		st.BornRows++
	}

	t.ver = t.o.Logical.Version()
	if t.Drift() > t.opt.DriftBudget {
		return t.fullReflood(st, "drift")
	}
	st.Drift = t.Drift()
	return st
}

// fullReflood rebuilds every row from scratch and resets the drift bound.
func (t *ALTracker) fullReflood(st ALUpdateStats, reason string) ALUpdateStats {
	st.FullReflood = true
	st.Reason = reason
	t.refloodAll()
	st.Drift = 0
	return st
}

// refloodAll floods every live slot (in parallel) and rebuilds the sums by
// a deterministic sequential reduction — the same summation order as the
// exact AverageLatency, so a freshly discharged tracker agrees with it
// bit-for-bit on connected overlays.
func (t *ALTracker) refloodAll() {
	n := t.o.NumSlots()
	t.rows = make([][]float64, n)
	t.rowSum = make([]float64, n)
	t.rowFinite = make([]int, n)
	alive := t.o.AliveSlots()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(alive) {
		workers = len(alive)
	}
	ch := make(chan int, len(alive))
	for _, src := range alive {
		ch <- src
	}
	close(ch)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for src := range ch {
				row := t.o.FloodLatenciesInto(src, t.proc, make([]float64, n))
				sum, fin := alFiniteSum(row)
				t.rows[src] = row
				t.rowSum[src] = sum
				t.rowFinite[src] = fin
			}
		}()
	}
	wg.Wait()
	t.total, t.finite = 0, 0
	for src := 0; src < n; src++ {
		if t.rows[src] != nil {
			t.total += t.rowSum[src]
			t.finite += t.rowFinite[src]
		}
	}
	t.drift = 0
	t.ver = t.o.Logical.Version()
	t.events = nil
}

// alFiniteSum sums a row's finite entries in index order and counts them.
func alFiniteSum(row []float64) (sum float64, finite int) {
	for _, v := range row {
		if !math.IsInf(v, 1) {
			sum += v
			finite++
		}
	}
	return sum, finite
}

// alPairKey canonicalizes an unordered slot pair into one map key.
func alPairKey(u, v int) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}
