package metrics

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// This file is the sketch tier of the AL ladder (SCALING.md): exact
// AverageLatency is O(n·Dijkstra), ALTracker amortizes that under churn but
// still owns n rows, and both stop being affordable somewhere past n≈10⁴.
// ALEstimator estimates eq. (3) from k full source rows — O(k·Dijkstra) and
// O(n) memory — which is what the fig5a -scale sweep samples at 10⁵–10⁶.
//
// Why source rows and not landmark triangle bounds: the tempting landmark
// estimate estAL = mean over pairs of min_l(d(l,i)+d(l,j)) is an upper
// bound with ~2× bias on expander-like overlays (flood distances
// concentrate around their mean μ, so the bound degenerates to ≈2μ). A
// uniformly sampled source row, by contrast, gives an exactly unbiased
// estimate of eq. (3): AL is the mean over sources of the row mean, so the
// sample mean of k row means has expectation AL and standard error
// sd(row means)/√k. Landmark coordinates still earn their keep in
// internal/shard — as per-message latency estimates — just not here.

// FloodSource is the measurement plane ALEstimator and AverageLatencyFrom
// read: something that can flood from a slot and report first-arrival times
// to every slot. overlay.Overlay satisfies it via OverlayFloodSource; the
// sharded engine (internal/shard) implements it over its struct-of-arrays
// state. FloodInto must be safe for concurrent calls with distinct dist
// buffers — rows are computed in parallel.
type FloodSource interface {
	// NumSlots reports the slot-index space size; dist buffers passed to
	// FloodInto must have exactly this length.
	NumSlots() int
	// AliveSlots returns the live slot IDs in ascending order. The slice is
	// borrowed: callers must not mutate or retain it across calls.
	AliveSlots() []int
	// FloodInto writes the first-arrival latency from src to every slot
	// into dist (+Inf for unreachable or dead slots, 0 for src itself).
	FloodInto(src int, dist []float64)
}

// overlayFloodSource adapts overlay.Overlay + processing-delay model to the
// FloodSource seam.
type overlayFloodSource struct {
	o    *overlay.Overlay
	proc overlay.ProcDelayFunc
}

func (s overlayFloodSource) NumSlots() int     { return s.o.NumSlots() }
func (s overlayFloodSource) AliveSlots() []int { return s.o.AliveSlots() }
func (s overlayFloodSource) FloodInto(src int, dist []float64) {
	s.o.FloodLatenciesInto(src, s.proc, dist)
}

// OverlayFloodSource adapts an overlay (with an optional processing-delay
// model) to the FloodSource seam, so the estimator and the exact reference
// read the same flooding semantics as AverageLatency.
func OverlayFloodSource(o *overlay.Overlay, proc overlay.ProcDelayFunc) FloodSource {
	return overlayFloodSource{o: o, proc: proc}
}

// AverageLatencyFrom computes eq. (3) exactly over a FloodSource: one row
// per live slot, fanned out across GOMAXPROCS workers. It is the reference
// the estimator's error is measured against (and is bit-identical to
// AverageLatency when given OverlayFloodSource of the same overlay). An
// unreachable live pair is an error, as in AverageLatency.
func AverageLatencyFrom(fs FloodSource) (float64, error) {
	slots := fs.AliveSlots()
	n := len(slots)
	if n == 0 {
		return 0, fmt.Errorf("metrics: AverageLatencyFrom of empty source")
	}
	rows := make([]float64, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	ch := make(chan int, n)
	for i := range slots {
		ch <- i
	}
	close(ch)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			dist := make([]float64, fs.NumSlots())
			for i := range ch {
				sum, bad := rowSum(fs, slots, slots[i], dist)
				if bad >= 0 {
					errs[i] = fmt.Errorf("metrics: pair (%d,%d) unreachable", slots[i], bad)
					continue
				}
				rows[i] = sum
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	sum := 0.0
	for _, v := range rows {
		sum += v
	}
	return sum / float64(n*n), nil
}

// rowSum floods from src and sums arrivals over the live slots (self
// contributes 0, matching eq. (3)). It returns the first unreachable live
// destination in bad, or -1 when the whole row is finite.
func rowSum(fs FloodSource, slots []int, src int, dist []float64) (sum float64, bad int) {
	fs.FloodInto(src, dist)
	for _, dst := range slots {
		if dst == src {
			continue
		}
		d := dist[dst]
		if math.IsInf(d, 1) {
			return 0, dst
		}
		sum += d
	}
	return sum, -1
}

// defaultALSources is the sketch width when ALEstimatorOptions.Sources is
// zero: 16 rows keep the fig-scale relative error under the documented
// bound (see TestALEstimatorErrorBound) while costing 16 Dijkstras
// regardless of n.
const defaultALSources = 16

// ALEstimatorOptions configures the sketch.
type ALEstimatorOptions struct {
	// Sources is the number of full rows sampled per Estimate call (k in
	// the O(k·Dijkstra) cost); 0 means defaultALSources. Larger k shrinks
	// the standard error as 1/√k.
	Sources int
}

// ALEstimate is one sketch of eq. (3).
type ALEstimate struct {
	// AL is the estimated average latency in milliseconds.
	AL float64
	// StdErr is the estimated standard error of AL (sample standard
	// deviation of the row means over √k); 0 when only one row was drawn
	// and 0 when every live slot was drawn — a census has no sampling
	// error, the estimate IS eq. (3) over the live slots.
	StdErr float64
	// Sources is the number of rows actually sampled (min(k, live slots)).
	Sources int
	// Unreachable counts live destinations skipped because a sampled source
	// could not reach them; they contribute 0 to the estimate, so a heavily
	// partitioned overlay biases it low rather than erroring mid-run.
	Unreachable int
}

// ALEstimator estimates average latency (eq. (3)) from k uniformly sampled
// source rows. The estimator is exactly unbiased: AL is the mean over live
// slots of the per-source row mean, and Estimate averages k such row means
// drawn without replacement. Each Estimate call redraws sources from the
// estimator's generator and recomputes their rows against the source's
// current state, so one estimator can track an evolving overlay across a
// whole run; buffers are reused between calls. Not safe for concurrent
// Estimate calls.
type ALEstimator struct {
	fs FloodSource
	k  int
	r  *rng.Rand
	// perm holds the partial Fisher-Yates scratch; rows/errs the per-call
	// fan-out results; bufs one dist buffer per worker.
	perm []int
	rows []float64
	bufs [][]float64
	unrc []int
}

// NewALEstimator builds an estimator over fs drawing opt.Sources rows per
// Estimate call from r. The generator is required: source sampling is part
// of the deterministic event stream, so the caller decides the seed.
func NewALEstimator(fs FloodSource, opt ALEstimatorOptions, r *rng.Rand) (*ALEstimator, error) {
	if fs == nil {
		return nil, fmt.Errorf("metrics: ALEstimator needs a FloodSource")
	}
	if r == nil {
		return nil, fmt.Errorf("metrics: ALEstimator needs a generator")
	}
	k := opt.Sources
	if k == 0 {
		k = defaultALSources
	}
	if k < 0 {
		return nil, fmt.Errorf("metrics: negative ALEstimator source count %d", k)
	}
	return &ALEstimator{fs: fs, k: k, r: r}, nil
}

// Estimate draws the sources and computes one sketch. Rows fan out over
// min(GOMAXPROCS, k) workers and reduce in draw order, so the result is a
// deterministic function of the generator state and the source's current
// topology. It errors only on an empty source.
func (e *ALEstimator) Estimate() (ALEstimate, error) {
	slots := e.fs.AliveSlots()
	n := len(slots)
	if n == 0 {
		return ALEstimate{}, fmt.Errorf("metrics: ALEstimator over empty source")
	}
	k := e.k
	if k > n {
		k = n
	}
	// Partial Fisher-Yates over a copy of the live slots: k draws without
	// replacement, consuming exactly k generator values.
	if cap(e.perm) < n {
		e.perm = make([]int, n)
	}
	perm := e.perm[:n]
	copy(perm, slots)
	for i := 0; i < k; i++ {
		j := i + e.r.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	srcs := perm[:k]

	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	if cap(e.rows) < k {
		e.rows = make([]float64, k)
		e.unrc = make([]int, k)
	}
	rows := e.rows[:k]
	unrc := e.unrc[:k]
	for len(e.bufs) < workers {
		e.bufs = append(e.bufs, make([]float64, e.fs.NumSlots()))
	}
	ch := make(chan int, k)
	for i := 0; i < k; i++ {
		ch <- i
	}
	close(ch)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(dist []float64) {
			defer wg.Done()
			if len(dist) < e.fs.NumSlots() {
				dist = make([]float64, e.fs.NumSlots())
			}
			for i := range ch {
				e.fs.FloodInto(srcs[i], dist)
				sum, skipped := 0.0, 0
				for _, dst := range slots {
					if dst == srcs[i] {
						continue
					}
					d := dist[dst]
					if math.IsInf(d, 1) {
						skipped++
						continue
					}
					sum += d
				}
				rows[i] = sum / float64(n) // row mean, self included as 0
				unrc[i] = skipped
			}
		}(e.bufs[w])
	}
	wg.Wait()

	est := ALEstimate{Sources: k}
	mean := 0.0
	for i := 0; i < k; i++ {
		mean += rows[i]
		est.Unreachable += unrc[i]
	}
	mean /= float64(k)
	est.AL = mean
	// k == n is a census: every live row was drawn without replacement, so
	// the estimate is exactly the mean of row means (eq. (3) over the live
	// slots, unreachable skips aside) and has zero sampling error. The
	// k == 1 draw keeps StdErr at 0 rather than NaN — one row gives no
	// variance information.
	if k > 1 && k < n {
		ss := 0.0
		for i := 0; i < k; i++ {
			d := rows[i] - mean
			ss += d * d
		}
		est.StdErr = math.Sqrt(ss/float64(k-1)) / math.Sqrt(float64(k))
	}
	return est, nil
}
