package metrics

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestALTrackerRowsBitExact drives a long random op sequence and, after
// every update, asserts each resident arrival row is bit-identical to a
// fresh flood and that the tracked per-row sums match the rows — the
// strongest form of the incremental-vs-exact property (value-level
// agreement follows from it).
func TestALTrackerRowsBitExact(t *testing.T) {
	r := rng.New(71)
	n := 32
	o := alRingOverlay(t, r, n, n)
	tr, err := NewALTracker(o, nil, ALTrackerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Detach()
	nextHost := 1_000_000
	for step := 0; step < 150; step++ {
		alRandomOp(t, o, r, &nextHost, true)
		st := tr.Update()
		want := make([]float64, o.NumSlots())
		for src := 0; src < o.NumSlots(); src++ {
			row := tr.rows[src]
			if row == nil {
				if o.Alive(src) {
					t.Fatalf("step %d: live slot %d has no row (stats %+v)", step, src, st)
				}
				continue
			}
			if !o.Alive(src) {
				t.Fatalf("step %d: dead slot %d still has a row", step, src)
			}
			o.FloodLatenciesInto(src, nil, want)
			for i := range want {
				if row[i] != want[i] {
					t.Fatalf("step %d: row %d entry %d = %v, want %v (stats %+v)", step, src, i, row[i], want[i], st)
				}
			}
			sum, fin := alFiniteSum(row)
			if math.Abs(sum-tr.rowSum[src]) > 1e-9*(1+math.Abs(sum)) || fin != tr.rowFinite[src] {
				t.Fatalf("step %d: row %d sum/finite mismatch: tracked (%v,%d) actual (%v,%d)",
					step, src, tr.rowSum[src], tr.rowFinite[src], sum, fin)
			}
		}
	}
}
