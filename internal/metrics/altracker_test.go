package metrics

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// alHashLat is a deterministic pseudo-random symmetric host latency.
func alHashLat(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	x := uint64(a)*2654435761 + uint64(b)*40503
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return 1 + float64(x%4096)/64
}

// alTestProc exercises the processing-delay term.
func alTestProc(slot int) float64 { return float64(slot%3) * 0.25 }

// alRingOverlay builds an n-slot ring plus extra random chords on distinct
// hosts 3i+1.
func alRingOverlay(t *testing.T, r *rng.Rand, n, extra int) *overlay.Overlay {
	t.Helper()
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = 3*i + 1
	}
	o, err := overlay.New(hosts, alHashLat)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := o.AddEdge(i, (i+1)%n); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !o.Logical.HasEdge(u, v) {
			if err := o.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return o
}

// alExactRef refloods every live slot sequentially — the independent exact
// reference, tolerant of unreachable pairs (unlike AverageLatency).
func alExactRef(o *overlay.Overlay, proc overlay.ProcDelayFunc) (al float64, unreachable int) {
	alive := o.AliveSlots()
	a := len(alive)
	if a == 0 {
		return 0, 0
	}
	row := make([]float64, o.NumSlots())
	total, finite := 0.0, 0
	for _, src := range alive {
		o.FloodLatenciesInto(src, proc, row)
		for _, v := range row {
			if !math.IsInf(v, 1) {
				total += v
				finite++
			}
		}
	}
	return total / float64(a*a), a*a - finite
}

// alCheck asserts the tracker agrees with the exact reference within its
// own drift bound (plus a relative epsilon for the reference's different
// summation order).
func alCheck(t *testing.T, tag string, tr *ALTracker, o *overlay.Overlay, proc overlay.ProcDelayFunc) {
	t.Helper()
	ref, unreach := alExactRef(o, proc)
	got := tr.Value()
	tol := tr.Drift() + 1e-11*(1+math.Abs(ref))
	if diff := math.Abs(got - ref); diff > tol {
		t.Fatalf("%s: tracker AL %v vs exact %v (diff %v > tol %v)", tag, got, ref, diff, tol)
	}
	if gotU := tr.UnreachablePairs(); gotU != unreach {
		t.Fatalf("%s: tracker unreachable %d, want %d", tag, gotU, unreach)
	}
}

// alRandomOp applies one random topology mutation and describes it.
// nextHost supplies fresh distinct hosts for joins.
func alRandomOp(t *testing.T, o *overlay.Overlay, r *rng.Rand, nextHost *int, allowSwap bool) string {
	t.Helper()
	alive := o.AliveSlots()
	switch op := r.Intn(10); {
	case op < 4: // rewire: drop a random incident edge, add a random new one
		u := alive[r.Intn(len(alive))]
		rm := -1
		if nbrs := o.Neighbors(u); len(nbrs) > 0 {
			rm = nbrs[r.Intn(len(nbrs))]
			o.RemoveEdge(u, rm)
		}
		for tries := 0; tries < 20; tries++ {
			a, b := alive[r.Intn(len(alive))], alive[r.Intn(len(alive))]
			if a != b && !o.Logical.HasEdge(a, b) {
				if err := o.AddEdge(a, b); err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("rewire -%d~%d +%d~%d", u, rm, a, b)
			}
		}
		return fmt.Sprintf("rewire -%d~%d (no add)", u, rm)
	case op < 5: // crash-stop (stale edges linger)
		if len(alive) > 6 {
			v := alive[r.Intn(len(alive))]
			if err := o.CrashSlot(v); err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("crash %d", v)
		}
		return "crash skipped"
	case op < 6: // graceful leave
		if len(alive) > 6 {
			v := alive[r.Intn(len(alive))]
			if err := o.RemoveSlot(v); err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("leave %d", v)
		}
		return "leave skipped"
	case op < 7: // join with two links
		slot, err := o.AddSlot(*nextHost)
		*nextHost += 7
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 2; k++ {
			nb := alive[r.Intn(len(alive))]
			if o.Alive(nb) && !o.Logical.HasEdge(slot, nb) {
				if err := o.AddEdge(slot, nb); err != nil {
					t.Fatal(err)
				}
			}
		}
		return fmt.Sprintf("join %d", slot)
	case op < 8: // evict a dead neighbor's stale link, if any
		u := alive[r.Intn(len(alive))]
		o.EvictDeadNeighbors(u)
		return fmt.Sprintf("evict %d", u)
	default: // PROP-G host swap (forces a tracker reflood) or no-op
		if allowSwap {
			u, v := alive[r.Intn(len(alive))], alive[r.Intn(len(alive))]
			if u != v {
				if err := o.SwapHosts(u, v); err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("swap %d %d", u, v)
			}
		}
		return "noop"
	}
}

// TestALTrackerRandomOps is the incremental-vs-exact property test: random
// batches of rewires, crashes, leaves, joins, evictions and occasional
// swaps, with the tracker checked against a full reflood after every
// Update.
func TestALTrackerRandomOps(t *testing.T) {
	r := rng.New(71)
	for trial := 0; trial < 4; trial++ {
		n := 32 + 16*trial
		var proc overlay.ProcDelayFunc
		if trial%2 == 1 {
			proc = alTestProc
		}
		o := alRingOverlay(t, r, n, n)
		tr, err := NewALTracker(o, proc, ALTrackerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		alCheck(t, "seed", tr, o, proc)
		nextHost := 1_000_000
		for step := 0; step < 30; step++ {
			for b := 0; b <= r.Intn(3); b++ {
				alRandomOp(t, o, r, &nextHost, true)
			}
			tr.Update()
			alCheck(t, "step", tr, o, proc)
		}
		tr.Detach()
	}
}

// TestALTrackerForcedReflood: a negative drift budget refloods on every
// update, and the discharged value is bit-identical to AverageLatency on a
// connected overlay.
func TestALTrackerForcedReflood(t *testing.T) {
	r := rng.New(91)
	n := 24
	o := alRingOverlay(t, r, n, n/2)
	tr, err := NewALTracker(o, nil, ALTrackerOptions{DriftBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Detach()
	for step := 0; step < 5; step++ {
		// Chord-only rewires keep the ring, hence connectivity.
		for tries := 0; tries < 20; tries++ {
			a, b := r.Intn(n), r.Intn(n)
			if a != b && (a+1)%n != b && (b+1)%n != a && !o.Logical.HasEdge(a, b) {
				if err := o.AddEdge(a, b); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
		st := tr.Update()
		if !st.FullReflood || st.Reason != "forced" {
			t.Fatalf("step %d: stats %+v, want forced full reflood", step, st)
		}
		want, err := AverageLatency(o, nil, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.Value(); got != want {
			t.Fatalf("step %d: forced-reflood value %v != exact %v", step, got, want)
		}
	}
}

// TestALTrackerSwapReflood: a PROP-G host swap degrades the update to a
// full reflood that still lands on the exact value.
func TestALTrackerSwapReflood(t *testing.T) {
	r := rng.New(97)
	o := alRingOverlay(t, r, 20, 10)
	tr, err := NewALTracker(o, nil, ALTrackerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Detach()
	if err := o.SwapHosts(3, 11); err != nil {
		t.Fatal(err)
	}
	st := tr.Update()
	if !st.FullReflood || st.Reason != "swap" {
		t.Fatalf("stats %+v, want swap-triggered reflood", st)
	}
	alCheck(t, "swap", tr, o, nil)
}

// TestALTrackerDriftDischarge: an absurdly tight positive budget trips the
// drift discharge as soon as any delta lands.
func TestALTrackerDriftDischarge(t *testing.T) {
	r := rng.New(101)
	n := 24
	o := alRingOverlay(t, r, n, n)
	tr, err := NewALTracker(o, nil, ALTrackerOptions{DriftBudget: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Detach()
	// Removing a ring edge reroutes many pairs: guaranteed nonzero deltas.
	o.RemoveEdge(0, 1)
	st := tr.Update()
	if !st.FullReflood || st.Reason != "drift" {
		t.Fatalf("stats %+v, want drift-triggered reflood", st)
	}
	alCheck(t, "drift", tr, o, nil)
}

// TestALTrackerNoopUpdate: an update with nothing to absorb is free and
// exact.
func TestALTrackerNoopUpdate(t *testing.T) {
	o := alRingOverlay(t, rng.New(103), 12, 6)
	tr, err := NewALTracker(o, nil, ALTrackerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Detach()
	st := tr.Update()
	if st.FullReflood || st.Events != 0 || st.Mutations != 0 {
		t.Fatalf("no-op update stats %+v", st)
	}
	alCheck(t, "noop", tr, o, nil)
}

// TestAverageLatencySampledSkips: on a partitioned overlay the sampled
// estimator skips unreachable pairs deterministically instead of erroring.
func TestAverageLatencySampledSkips(t *testing.T) {
	n := 16
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = 5 * i
	}
	o, err := overlay.New(hosts, alHashLat)
	if err != nil {
		t.Fatal(err)
	}
	// Two disjoint rings: cross-component pairs are unreachable.
	half := n / 2
	for i := 0; i < half; i++ {
		o.AddEdge(i, (i+1)%half)
		o.AddEdge(half+i, half+(i+1)%half)
	}
	al1, skipped1, err := AverageLatencySampled(o, nil, 500, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if skipped1 == 0 {
		t.Fatal("partitioned overlay produced no skipped pairs")
	}
	if math.IsInf(al1, 0) || math.IsNaN(al1) || al1 <= 0 {
		t.Fatalf("sampled AL = %v", al1)
	}
	al2, skipped2, err := AverageLatencySampled(o, nil, 500, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if al1 != al2 || skipped1 != skipped2 {
		t.Fatalf("sampled AL not deterministic: (%v,%d) vs (%v,%d)", al1, skipped1, al2, skipped2)
	}
	// Via the AverageLatency front door the skips are silent but the result
	// identical.
	al3, err := AverageLatency(o, nil, 500, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if al3 != al1 {
		t.Fatalf("AverageLatency = %v, want %v", al3, al1)
	}
}
