package metrics

import (
	"math"
	"testing"

	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestMeanLookupLatencyParallelDeterministic(t *testing.T) {
	lookups := make([]workload.Lookup, 1000)
	for i := range lookups {
		lookups[i] = workload.Lookup{Src: i, Dst: i + 1}
	}
	eval := func(l workload.Lookup) float64 { return float64(l.Src % 10) }
	a, failedA := MeanLookupLatency(lookups, eval)
	b, failedB := MeanLookupLatency(lookups, eval)
	if a != b || failedA != failedB {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", a, failedA, b, failedB)
	}
	if math.Abs(a-4.5) > 1e-9 {
		t.Fatalf("mean = %v, want 4.5", a)
	}
	if failedA != 0 {
		t.Fatalf("failed = %d", failedA)
	}
}

func TestMeanLookupLatencyFailures(t *testing.T) {
	lookups := make([]workload.Lookup, 10)
	eval := func(l workload.Lookup) float64 {
		if l.Src == 0 { // all of them: Src is zero-valued
			return math.Inf(1)
		}
		return 1
	}
	mean, failed := MeanLookupLatency(lookups, eval)
	if failed != 10 || !math.IsInf(mean, 1) {
		t.Fatalf("mean=%v failed=%d", mean, failed)
	}
	if m, f := MeanLookupLatency(nil, eval); m != 0 || f != 0 {
		t.Fatalf("empty workload: %v/%d", m, f)
	}
}

func TestFloodEvalAdapter(t *testing.T) {
	o, err := overlay.New([]int{0, 10, 30}, func(a, b int) float64 {
		return math.Abs(float64(a - b))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	eval := FloodEval(o, nil)
	if d := eval(workload.Lookup{Src: 0, Dst: 2}); d != 30 {
		t.Fatalf("FloodEval = %v, want 30", d)
	}
	mean, failed := MeanLookupLatency([]workload.Lookup{{Src: 0, Dst: 2}, {Src: 0, Dst: 1}}, eval)
	if mean != 20 || failed != 0 {
		t.Fatalf("mean=%v failed=%d", mean, failed)
	}
}

func TestCounters(t *testing.T) {
	c := Counters{
		Probes:          10,
		WalkMessages:    20,
		MeasureMessages: 80,
		NotifyMessages:  40,
		Exchanges:       5,
		Rejected:        5,
	}
	if c.Messages() != 140 {
		t.Fatalf("Messages = %d", c.Messages())
	}
	if c.ProbeMessages() != 100 {
		t.Fatalf("ProbeMessages = %d", c.ProbeMessages())
	}
	if c.MessagesPerAdjustment() != 10 {
		t.Fatalf("MessagesPerAdjustment = %v", c.MessagesPerAdjustment())
	}
	var zero Counters
	if zero.MessagesPerAdjustment() != 0 {
		t.Fatal("zero counters should report 0 per adjustment")
	}
	var sum Counters
	sum.Add(c)
	sum.Add(c)
	if sum.Probes != 20 || sum.Messages() != 280 || sum.Exchanges != 10 || sum.Rejected != 10 {
		t.Fatalf("Add wrong: %+v", sum)
	}
}

func TestAverageLatencyExact(t *testing.T) {
	// Line overlay 0-1-2 with distances 10 and 20.
	o, err := overlay.New([]int{0, 10, 30}, func(a, b int) float64 {
		return math.Abs(float64(a - b))
	})
	if err != nil {
		t.Fatal(err)
	}
	o.AddEdge(0, 1)
	o.AddEdge(1, 2)
	got, err := AverageLatency(o, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise: d(0,1)=10, d(0,2)=30, d(1,2)=20 each counted both ways;
	// AL = 2*(10+30+20)/9 = 120/9.
	want := 120.0 / 9
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("AL = %v, want %v", got, want)
	}
}

func TestAverageLatencySampled(t *testing.T) {
	o, err := overlay.New([]int{0, 10, 30}, func(a, b int) float64 {
		return math.Abs(float64(a - b))
	})
	if err != nil {
		t.Fatal(err)
	}
	o.AddEdge(0, 1)
	o.AddEdge(1, 2)
	exact, err := AverageLatency(o, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, err := AverageLatency(o, nil, 20000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-exact) > exact*0.1 {
		t.Fatalf("sampled AL %v far from exact %v", est, exact)
	}
	if _, err := AverageLatency(o, nil, 10, nil); err == nil {
		t.Fatal("sampled AL without generator accepted")
	}
}

func TestAverageLatencyErrors(t *testing.T) {
	empty, err := overlay.New(nil, func(a, b int) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AverageLatency(empty, nil, 0, nil); err == nil {
		t.Fatal("empty overlay accepted")
	}
	// Disconnected overlay must error, not silently average partial data.
	o, err := overlay.New([]int{0, 10, 20}, func(a, b int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	o.AddEdge(0, 1)
	if _, err := AverageLatency(o, nil, 0, nil); err == nil {
		t.Fatal("disconnected overlay accepted")
	}
}
