package metrics

import (
	"testing"

	"repro/internal/overlay"
	"repro/internal/rng"
)

// The PR-7 acceptance benchmark pair: maintaining AverageLatency across one
// PROP-O-style exchange on a 4096-slot overlay, incrementally
// (ALTracker.Update) versus the pre-PR7 behavior (full exact reflood).

// alBenchState is a 4096-slot ring-plus-chords overlay with the chord list
// tracked so rewires never break the ring (the exact baseline refuses
// disconnected overlays).
type alBenchState struct {
	o      *overlay.Overlay
	n      int
	chords [][2]int
	r      *rng.Rand
}

func alBenchSetup(b *testing.B, n int) *alBenchState {
	b.Helper()
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = 3*i + 1
	}
	o, err := overlay.New(hosts, alHashLat)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := o.AddEdge(i, (i+1)%n); err != nil {
			b.Fatal(err)
		}
	}
	s := &alBenchState{o: o, n: n, r: rng.New(5)}
	for len(s.chords) < 2*n { // average degree ~6
		u, v := s.r.Intn(n), s.r.Intn(n)
		if u != v && !o.Logical.HasEdge(u, v) {
			if err := o.AddEdge(u, v); err != nil {
				b.Fatal(err)
			}
			s.chords = append(s.chords, [2]int{u, v})
		}
	}
	return s
}

// rewire replaces one random chord with a fresh random link — the logical
// footprint of one PROP-O neighbor exchange.
func (s *alBenchState) rewire() {
	i := s.r.Intn(len(s.chords))
	c := s.chords[i]
	s.o.RemoveEdge(c[0], c[1])
	for {
		u, v := s.r.Intn(s.n), s.r.Intn(s.n)
		if u != v && !s.o.Logical.HasEdge(u, v) {
			if err := s.o.AddEdge(u, v); err != nil {
				panic(err)
			}
			s.chords[i] = [2]int{u, v}
			return
		}
	}
}

// BenchmarkALTrackerUpdateExchange4096 measures one exchange plus the
// incremental AL update.
func BenchmarkALTrackerUpdateExchange4096(b *testing.B) {
	s := alBenchSetup(b, 4096)
	tr, err := NewALTracker(s.o, nil, ALTrackerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Detach()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.rewire()
		st := tr.Update()
		if st.FullReflood {
			b.Fatalf("incremental bench fell back to full reflood: %+v", st)
		}
	}
}

// BenchmarkALExactRefloodExchange4096 is the pre-PR7 baseline: the same
// exchange followed by a full exact AverageLatency evaluation.
func BenchmarkALExactRefloodExchange4096(b *testing.B) {
	s := alBenchSetup(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.rewire()
		if _, err := AverageLatency(s.o, nil, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}
