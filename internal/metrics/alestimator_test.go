package metrics

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// alEstimatorErrorBound is the documented accuracy contract of the default
// 16-source sketch on fig-scale overlays: relative error vs exact AL stays
// within 10% across seeds and topologies (SCALING.md "Choosing an AL
// mode"). The property test below pins it.
const alEstimatorErrorBound = 0.10

// TestAverageLatencyFromMatchesExact pins the FloodSource seam: the exact
// reference through OverlayFloodSource must be bit-identical to
// AverageLatency on the same overlay, with and without processing delay.
func TestAverageLatencyFromMatchesExact(t *testing.T) {
	r := rng.New(11)
	o := alRingOverlay(t, r, 96, 64)
	for _, proc := range []func(int) float64{nil, alTestProc} {
		want, err := AverageLatency(o, proc, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AverageLatencyFrom(OverlayFloodSource(o, proc))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("AverageLatencyFrom = %v, AverageLatency = %v", got, want)
		}
	}
}

// TestALEstimatorErrorBound is the property test behind the documented
// bound: across seeds and topology shapes, the default sketch stays within
// alEstimatorErrorBound of exact AL at n ≤ 4096.
func TestALEstimatorErrorBound(t *testing.T) {
	shapes := []struct {
		n, extra int
		proc     func(int) float64
	}{
		{256, 128, nil},
		{256, 512, alTestProc},
		{1024, 1024, nil},
	}
	if !testing.Short() {
		shapes = append(shapes, struct {
			n, extra int
			proc     func(int) float64
		}{4096, 8192, nil})
	}
	for _, shape := range shapes {
		for seed := uint64(1); seed <= 5; seed++ {
			r := rng.New(seed)
			o := alRingOverlay(t, r, shape.n, shape.extra)
			fs := OverlayFloodSource(o, shape.proc)
			exact, err := AverageLatencyFrom(fs)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewALEstimator(fs, ALEstimatorOptions{}, rng.New(seed+100))
			if err != nil {
				t.Fatal(err)
			}
			est, err := e.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			if est.Sources != 16 || est.Unreachable != 0 {
				t.Fatalf("n=%d seed=%d: estimate %+v, want 16 sources, 0 unreachable", shape.n, seed, est)
			}
			rel := math.Abs(est.AL-exact) / exact
			if rel > alEstimatorErrorBound {
				t.Errorf("n=%d extra=%d seed=%d: est %.4f vs exact %.4f, rel err %.4f > %.2f",
					shape.n, shape.extra, seed, est.AL, exact, rel, alEstimatorErrorBound)
			}
			// The reported standard error must be in a sane relationship to
			// the truth: the actual deviation within 5 sigma.
			if est.StdErr > 0 && math.Abs(est.AL-exact) > 5*est.StdErr {
				t.Errorf("n=%d seed=%d: deviation %.4f exceeds 5×stderr %.4f",
					shape.n, seed, math.Abs(est.AL-exact), est.StdErr)
			}
		}
	}
}

// TestALEstimatorAllSourcesIsExact: when k covers every live slot the
// sketch degenerates to the exact mean of row means, which equals eq. (3)
// up to summation order.
func TestALEstimatorAllSourcesIsExact(t *testing.T) {
	r := rng.New(7)
	o := alRingOverlay(t, r, 64, 64)
	fs := OverlayFloodSource(o, nil)
	exact, err := AverageLatencyFrom(fs)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewALEstimator(fs, ALEstimatorOptions{Sources: 1000}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Sources != 64 {
		t.Fatalf("Sources = %d, want clamped to 64", est.Sources)
	}
	if rel := math.Abs(est.AL-exact) / exact; rel > 1e-12 {
		t.Fatalf("full-coverage sketch %.12f vs exact %.12f (rel %.2e)", est.AL, exact, rel)
	}
	if est.StdErr != 0 {
		t.Fatalf("StdErr = %v for a census draw, want 0 (no sampling error)", est.StdErr)
	}
}

// TestALEstimatorSingleSource: k = 1 is a defined degenerate — one row mean
// with StdErr pinned to 0, never NaN (the sample-variance formula would
// divide by k-1 = 0).
func TestALEstimatorSingleSource(t *testing.T) {
	r := rng.New(13)
	o := alRingOverlay(t, r, 48, 32)
	fs := OverlayFloodSource(o, nil)
	e, err := NewALEstimator(fs, ALEstimatorOptions{Sources: 1}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Sources != 1 {
		t.Fatalf("Sources = %d, want 1", est.Sources)
	}
	if math.IsNaN(est.StdErr) || est.StdErr != 0 {
		t.Fatalf("StdErr = %v with one source, want exactly 0", est.StdErr)
	}
	if math.IsNaN(est.AL) || est.AL <= 0 {
		t.Fatalf("AL = %v with one source", est.AL)
	}
}

// TestALEstimatorCrashedSlots: crashed slots leave the alive-slot space, so
// a census over the survivors must match the exact reference over the same
// survivors — crashed peers are neither drawn as sources nor counted as
// destinations, and the degenerate StdErr = 0 contract holds on the
// shrunken slot space too.
func TestALEstimatorCrashedSlots(t *testing.T) {
	r := rng.New(19)
	o := alRingOverlay(t, r, 64, 96)
	for _, slot := range []int{3, 17, 40, 41, 63} {
		o.CrashSlot(slot)
	}
	fs := OverlayFloodSource(o, nil)
	live := len(fs.AliveSlots())
	if live != 59 {
		t.Fatalf("live slots = %d after 5 crashes, want 59", live)
	}
	exact, err := AverageLatencyFrom(fs)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewALEstimator(fs, ALEstimatorOptions{Sources: 64}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Sources != live {
		t.Fatalf("Sources = %d, want clamped to %d live slots", est.Sources, live)
	}
	if rel := math.Abs(est.AL-exact) / exact; rel > 1e-12 {
		t.Fatalf("census over survivors %.12f vs exact %.12f (rel %.2e)", est.AL, exact, rel)
	}
	if est.StdErr != 0 {
		t.Fatalf("StdErr = %v for a census over survivors, want 0", est.StdErr)
	}
	if est.Unreachable != 0 {
		t.Fatalf("Unreachable = %d; crashed slots must not count as destinations", est.Unreachable)
	}
}

// TestALEstimatorDeterministic: two estimators with equal generator seeds
// produce identical sketches despite the parallel row fan-out, and
// successive Estimate calls redraw (consuming generator state).
func TestALEstimatorDeterministic(t *testing.T) {
	r := rng.New(3)
	o := alRingOverlay(t, r, 200, 300)
	fs := OverlayFloodSource(o, alTestProc)
	run := func(seed uint64) []ALEstimate {
		e, err := NewALEstimator(fs, ALEstimatorOptions{Sources: 8}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]ALEstimate, 3)
		for i := range out {
			out[i], err = e.Estimate()
			if err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: %+v != %+v", i, a[i], b[i])
		}
	}
	if a[0].AL == a[1].AL && a[1].AL == a[2].AL {
		t.Fatal("successive Estimate calls returned identical AL; sources not redrawn")
	}
}

// TestALEstimatorUnreachable: a partitioned overlay is a measurement
// condition for the sketch (skip and count), while the exact reference
// treats it as an error.
func TestALEstimatorUnreachable(t *testing.T) {
	r := rng.New(9)
	o := alRingOverlay(t, r, 32, 0) // pure ring: two cuts partition it
	o.RemoveEdge(0, 1)
	o.RemoveEdge(15, 16)
	fs := OverlayFloodSource(o, nil)
	if _, err := AverageLatencyFrom(fs); err == nil {
		t.Fatal("exact reference accepted a partitioned overlay")
	}
	e, err := NewALEstimator(fs, ALEstimatorOptions{Sources: 32}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Unreachable == 0 {
		t.Fatalf("partitioned sketch reports no unreachable pairs: %+v", est)
	}
	if math.IsInf(est.AL, 0) || math.IsNaN(est.AL) || est.AL <= 0 {
		t.Fatalf("partitioned sketch AL = %v", est.AL)
	}
}

// TestALEstimatorErrors covers the constructor and empty-source guards.
func TestALEstimatorErrors(t *testing.T) {
	r := rng.New(5)
	o := alRingOverlay(t, r, 8, 0)
	fs := OverlayFloodSource(o, nil)
	if _, err := NewALEstimator(nil, ALEstimatorOptions{}, rng.New(1)); err == nil {
		t.Fatal("nil FloodSource accepted")
	}
	if _, err := NewALEstimator(fs, ALEstimatorOptions{}, nil); err == nil {
		t.Fatal("nil generator accepted")
	}
	if _, err := NewALEstimator(fs, ALEstimatorOptions{Sources: -1}, rng.New(1)); err == nil {
		t.Fatal("negative source count accepted")
	}
	for i := 0; i < 8; i++ {
		o.CrashSlot(i)
	}
	e, err := NewALEstimator(fs, ALEstimatorOptions{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(); err == nil {
		t.Fatal("empty overlay accepted")
	}
}

// BenchmarkALEstimator4096 measures one default sketch on the PR-7 bench
// overlay — the O(k·Dijkstra) cost that replaces the exact O(n·Dijkstra)
// evaluation at scale (contrast with BenchmarkALExactRefloodExchange4096).
func BenchmarkALEstimator4096(b *testing.B) {
	s := alBenchSetup(b, 4096)
	e, err := NewALEstimator(OverlayFloodSource(s.o, nil), ALEstimatorOptions{}, rng.New(17))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Estimate(); err != nil {
			b.Fatal(err)
		}
	}
}
