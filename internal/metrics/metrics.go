// Package metrics computes the paper's evaluation quantities: average
// lookup latency over a workload (Figs. 5 and 7), stretch (Fig. 6), and
// the protocol message counters behind the §4.3 overhead analysis.
//
// Lookup evaluation fans out across goroutines — each lookup is independent
// — and writes results by index so that the final reduction is a
// deterministic sequential sum regardless of scheduling.
//
// Entry points: MeanLookupLatency, AverageLatency, and the Counters struct
// the protocols tally into. See DESIGN.md §2 for which experiment consumes
// which quantity.
package metrics

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/workload"
)

// LatencyEval evaluates the latency of one lookup; implementations wrap
// Gnutella flooding or Chord/CAN routing.
type LatencyEval func(l workload.Lookup) float64

// MeanLookupLatency evaluates every lookup with eval in parallel and
// returns the mean over finite results plus the count of failed
// (infinite/NaN) lookups.
func MeanLookupLatency(lookups []workload.Lookup, eval LatencyEval) (mean float64, failed int) {
	if len(lookups) == 0 {
		return 0, 0
	}
	results := make([]float64, len(lookups))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(lookups) {
		workers = len(lookups)
	}
	var wg sync.WaitGroup
	chunk := (len(lookups) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(lookups) {
			hi = len(lookups)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				results[i] = eval(lookups[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	sum, n := 0.0, 0
	for _, v := range results {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			failed++
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return math.Inf(1), failed
	}
	return sum / float64(n), failed
}

// FloodEval adapts an unstructured overlay to a LatencyEval using flooding
// first-arrival semantics.
func FloodEval(o *overlay.Overlay, proc overlay.ProcDelayFunc) LatencyEval {
	return func(l workload.Lookup) float64 {
		return o.FloodLatency(l.Src, l.Dst, proc)
	}
}

// AverageLatency computes the paper's eq. (3): AL = (Σ_i Σ_j d(i,j)) / n²
// over the overlay's flooding distances (the latency between a node and
// itself is zero, matching the paper's footnote). The exact all-pairs
// computation is O(n · Dijkstra); pass sample > 0 to estimate from that
// many random ordered pairs instead (r required then; delegates to
// AverageLatencySampled, so unreachable pairs are redrawn or skipped, not
// fatal). Sources are evaluated in parallel.
func AverageLatency(o *overlay.Overlay, proc overlay.ProcDelayFunc, sample int, r *rng.Rand) (float64, error) {
	slots := o.AliveSlots()
	n := len(slots)
	if n == 0 {
		return 0, fmt.Errorf("metrics: AverageLatency of empty overlay")
	}
	if sample > 0 {
		al, _, err := AverageLatencySampled(o, proc, sample, r)
		return al, err
	}
	// Exact: one bulk single-source computation per node, fanned out. The
	// bulk kernel (FloodLatenciesInto) settles every destination in one
	// Dijkstra, so the whole computation is O(n·Dijkstra) rather than the
	// O(n²·Dijkstra) a pairwise loop would cost; each worker reuses one
	// arrival buffer across its sources.
	rows := make([]float64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	ch := make(chan int, n)
	for i := range slots {
		ch <- i
	}
	close(ch)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			arrivals := make([]float64, o.NumSlots())
			for i := range ch {
				src := slots[i]
				o.FloodLatenciesInto(src, proc, arrivals)
				total := 0.0
				for _, dst := range slots {
					if dst == src {
						continue
					}
					d := arrivals[dst]
					if math.IsInf(d, 1) {
						errs[w] = fmt.Errorf("metrics: pair (%d,%d) unreachable", src, dst)
						return
					}
					total += d
				}
				rows[i] = total
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	sum := 0.0
	for _, v := range rows {
		sum += v
	}
	return sum / float64(n*n), nil
}

// alSampleRedrawRounds bounds the deterministic redraw loop of
// AverageLatencySampled: after the initial draw, up to this many
// replacement rounds re-sample the unreachable pairs before the remainder
// is skipped.
const alSampleRedrawRounds = 4

// AverageLatencySampled estimates eq. (3) from sample random ordered live
// pairs. Unreachable pairs do not abort the estimate: each is redrawn (from
// the same deterministic generator) for up to alSampleRedrawRounds rounds,
// and whatever still fails is skipped and reported in skipped — under heavy
// churn a partitioned overlay is a measurement condition, not an error. An
// error is returned only for an empty overlay, a missing generator, or a
// sample with no reachable pair at all. When every pair of the initial draw
// is reachable the result is bit-identical to the pre-redraw estimator.
func AverageLatencySampled(o *overlay.Overlay, proc overlay.ProcDelayFunc, sample int, r *rng.Rand) (al float64, skipped int, err error) {
	slots := o.AliveSlots()
	n := len(slots)
	if n == 0 {
		return 0, 0, fmt.Errorf("metrics: AverageLatency of empty overlay")
	}
	if sample <= 0 {
		return 0, 0, fmt.Errorf("metrics: non-positive AL sample size %d", sample)
	}
	if r == nil {
		return 0, 0, fmt.Errorf("metrics: sampled AverageLatency needs a generator")
	}
	draw := func(k int) []workload.Lookup {
		lookups := make([]workload.Lookup, k)
		for i := range lookups {
			lookups[i] = workload.Lookup{
				Src: slots[r.Intn(n)],
				Dst: slots[r.Intn(n)],
			}
		}
		return lookups
	}
	// Self-pairs contribute 0, exactly as in eq. (3).
	eval := func(l workload.Lookup) float64 {
		if l.Src == l.Dst {
			return 0
		}
		return o.FloodLatency(l.Src, l.Dst, proc)
	}
	mean, failed := MeanLookupLatency(draw(sample), eval)
	if failed == 0 {
		return mean, 0, nil
	}
	sum, got := 0.0, sample-failed
	if got > 0 {
		sum = mean * float64(got)
	}
	need := failed
	for round := 0; round < alSampleRedrawRounds && need > 0; round++ {
		mean, failed = MeanLookupLatency(draw(need), eval)
		if ok := need - failed; ok > 0 {
			sum += mean * float64(ok)
			got += ok
		}
		need = failed
	}
	if got == 0 {
		return 0, need, fmt.Errorf("metrics: no reachable pair in AL sample of %d after %d redraw rounds", sample, alSampleRedrawRounds)
	}
	return sum / float64(got), need, nil
}

// Counters tallies protocol activity for the overhead analysis (§4.3).
// One Counters value belongs to one single-threaded simulation engine, so
// plain integers suffice.
type Counters struct {
	// Probes is the number of probe cycles started (one per timer firing).
	Probes uint64
	// WalkMessages is the number of random-walk forwarding messages
	// (nhops per successful walk).
	WalkMessages uint64
	// MeasureMessages is the number of latency measurements to hypothetical
	// neighbors (the 2c of PROP-G, the 2m of PROP-O).
	MeasureMessages uint64
	// NotifyMessages is the number of neighbor-notification messages sent
	// after an executed exchange.
	NotifyMessages uint64
	// Exchanges is the number of executed peer-exchanges.
	Exchanges uint64
	// Rejected is the number of probe cycles whose Var <= MIN_VAR.
	Rejected uint64
	// WalkFailures is the number of random walks that got stuck early.
	WalkFailures uint64

	// The remaining counters exist only under fault injection
	// (internal/faults); they stay zero — and out of every fault-free metrics
	// stream — when no injector is attached.

	// Timeouts is the number of probe steps abandoned because a message was
	// lost and the retransmit timer fired.
	Timeouts uint64
	// Retries is the number of retransmissions sent after a timeout.
	Retries uint64
	// Evictions is the number of stale neighbor links dropped by liveness
	// eviction after a crashed peer stopped answering.
	Evictions uint64
	// DupsDropped is the number of duplicated protocol messages recognized
	// and discarded by their sequence guard.
	DupsDropped uint64
	// StaleTimers is the number of retransmit timers that fired after their
	// response had already arrived and were absorbed by the epoch guard.
	StaleTimers uint64
}

// Messages returns the total message count of the protocol so far.
func (c Counters) Messages() uint64 {
	return c.WalkMessages + c.MeasureMessages + c.NotifyMessages
}

// ProbeMessages returns the messages spent discovering and evaluating
// exchange opportunities (walk + latency measurement) — the quantity the
// paper's §4.3 model (nhop + 2c, nhop + 2m) counts. Notifications after an
// executed exchange are reconstruction cost, tallied separately.
func (c Counters) ProbeMessages() uint64 {
	return c.WalkMessages + c.MeasureMessages
}

// MessagesPerAdjustment returns the average probe-message cost of one
// adjustment step ("one step of adjustment" in §4.3), or 0 if none ran.
func (c Counters) MessagesPerAdjustment() float64 {
	if c.Probes == 0 {
		return 0
	}
	return float64(c.ProbeMessages()) / float64(c.Probes)
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Probes += other.Probes
	c.WalkMessages += other.WalkMessages
	c.MeasureMessages += other.MeasureMessages
	c.NotifyMessages += other.NotifyMessages
	c.Exchanges += other.Exchanges
	c.Rejected += other.Rejected
	c.WalkFailures += other.WalkFailures
	c.Timeouts += other.Timeouts
	c.Retries += other.Retries
	c.Evictions += other.Evictions
	c.DupsDropped += other.DupsDropped
	c.StaleTimers += other.StaleTimers
}
