package ltm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/audit"
	"repro/internal/event"
	"repro/internal/gnutella"
	"repro/internal/overlay"
	"repro/internal/rng"
)

func lineLat(a, b int) float64 { return math.Abs(float64(a - b)) }

func scrambled(t testing.TB, n int, seed uint64) (*overlay.Overlay, *rng.Rand) {
	t.Helper()
	r := rng.New(seed)
	hosts := r.Perm(n * 10)[:n]
	o, err := gnutella.Build(hosts, gnutella.DefaultConfig(), lineLat, r)
	if err != nil {
		t.Fatal(err)
	}
	return o, r
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{PeriodMS: 0, MinDegree: 2},
		{PeriodMS: 100, MinDegree: 0},
		{PeriodMS: 100, MinDegree: 2, MaxCutsPerRound: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := New(&overlay.Overlay{}, cfg, rng.New(1)); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
	if _, err := New(nil, DefaultConfig(), rng.New(1)); err == nil {
		t.Error("nil overlay accepted")
	}
}

func TestLTMReducesLinkLatency(t *testing.T) {
	o, r := scrambled(t, 200, 42)
	before := o.MeanLinkLatency()
	p, err := New(o, DefaultConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(30 * 60000)
	after := o.MeanLinkLatency()
	if p.Counters.Exchanges == 0 {
		t.Fatal("no topology modifications executed")
	}
	if after >= before*0.8 {
		t.Fatalf("LTM latency %.1f -> %.1f: insufficient improvement", before, after)
	}
}

func TestLTMKeepsConnectivity(t *testing.T) {
	f := func(seed uint64) bool {
		o, r := scrambled(t, 80, seed)
		cfg := DefaultConfig()
		cfg.PeriodMS = 1000
		p, err := New(o, cfg, r)
		if err != nil {
			return false
		}
		e := event.New()
		p.Start(e)
		e.RunUntil(30 * 1000)
		return o.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestLTMChangesDegrees(t *testing.T) {
	// The defining contrast with PROP-O: LTM rewires freely, so the degree
	// sequence is NOT preserved.
	o, r := scrambled(t, 150, 7)
	before := o.Logical.DegreeSequence()
	p, err := New(o, DefaultConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(20 * 60000)
	after := o.Logical.DegreeSequence()
	same := len(before) == len(after)
	if same {
		for i := range before {
			if before[i] != after[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("LTM preserved the degree sequence; expected free rewiring")
	}
}

func TestLTMRespectsMinDegree(t *testing.T) {
	o, r := scrambled(t, 100, 11)
	cfg := DefaultConfig()
	cfg.MinDegree = 3
	p, err := New(o, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(20 * 60000)
	for _, s := range o.AliveSlots() {
		if o.Degree(s) < 3 {
			t.Fatalf("slot %d degree %d below MinDegree", s, o.Degree(s))
		}
	}
}

func TestLTMOverheadCounted(t *testing.T) {
	o, r := scrambled(t, 100, 3)
	p, err := New(o, DefaultConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(5 * 60000)
	if p.Counters.Probes == 0 {
		t.Fatal("no detector rounds counted")
	}
	// TTL-2 flooding costs at least degree messages per round.
	if p.Counters.WalkMessages < p.Counters.Probes*4 {
		t.Fatalf("detector messages %d implausibly low for %d rounds",
			p.Counters.WalkMessages, p.Counters.Probes)
	}
}

func TestLTMSkipsDeadPeers(t *testing.T) {
	o, r := scrambled(t, 50, 5)
	cfg := DefaultConfig()
	cfg.PeriodMS = 1000
	p, err := New(o, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(1500)
	victim := o.AliveSlots()[0]
	if err := gnutella.Leave(o, victim, gnutella.DefaultConfig(), r); err != nil {
		t.Fatal(err)
	}
	// The dead peer's pending round must be a no-op, not a panic.
	e.RunUntil(60 * 1000)
	if !o.Connected() {
		t.Fatal("overlay disconnected")
	}
}

func TestTraceObservesEveryRewire(t *testing.T) {
	// The Trace hook must see exactly one RewireEvent per executed topology
	// modification, and the KindRewire stream routed through the auditor must
	// keep the overlay invariants LTM is allowed to touch: bijection and
	// connectivity hold, while degrees are free to drift (that freedom is
	// LTM's defining contrast with PROP-O).
	o, r := scrambled(t, 60, 21)
	p, err := New(o, DefaultConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	a := audit.New(1, 64)
	a.Register(audit.OverlayBijection(o), audit.OverlayConnected(o))
	cuts, adds := 0, 0
	p.Trace = func(ev RewireEvent) {
		if ev.Added {
			adds++
		} else {
			cuts++
		}
		val := 0.0
		if ev.Added {
			val = 1
		}
		a.Observe(audit.Record{
			At: float64(ev.At), Kind: audit.KindRewire, A: ev.U, B: ev.W, Val: val,
		})
	}
	e := event.New()
	a.AttachEngine(e)
	p.Start(e)
	e.RunUntil(10 * 60000)
	if uint64(cuts+adds) != p.Counters.Exchanges {
		t.Fatalf("trace saw %d cuts + %d adds, counters say %d modifications",
			cuts, adds, p.Counters.Exchanges)
	}
	if cuts == 0 || adds == 0 {
		t.Fatalf("test vacuous: cuts=%d adds=%d", cuts, adds)
	}
	a.CheckNow()
	if err := a.Err(); err != nil {
		t.Fatal(err)
	}
	if a.Events() != uint64(cuts+adds) {
		t.Fatalf("auditor recorded %d events, want %d", a.Events(), cuts+adds)
	}
}
