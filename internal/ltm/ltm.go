// Package ltm implements the paper's main unstructured-overlay baseline:
// Location-aware Topology Matching (Liu, Xiao, Liu, Ni, Zhang — IEEE TPDS
// 2005). Each peer periodically floods a TTL-2 detector; from the collected
// delay information it (a) cuts its most inefficient redundant logical
// links — direct links that a two-hop path undercuts — and (b) adds the
// closest two-hop peer as a new direct neighbor.
//
// LTM is "only applicable for Gnutella-like overlay networks where each
// peer can freely cut and add connections", and its free rewiring does NOT
// preserve node degrees — the exact property the paper contrasts PROP-O
// against in Fig. 7.
//
// Key types: Protocol and Config. See DESIGN.md §4 for the baseline
// reconstruction and §2 for the Fig. 7 comparison.
package ltm

import (
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/rng"
)

// Config parameterizes the LTM optimizer.
type Config struct {
	// PeriodMS is the detector flooding period per peer (aligned with
	// PROP's INIT_TIMER so overhead/latency comparisons are like-for-like).
	PeriodMS float64
	// MinDegree is the floor below which a peer refuses to cut links
	// (LTM's "will not cut if it would leave the peer poorly connected").
	MinDegree int
	// MaxCutsPerRound bounds how many redundant links one detector round
	// may cut.
	MaxCutsPerRound int
	// MaxAddsPerRound bounds how many shortcut links one round may add.
	MaxAddsPerRound int
}

// DefaultConfig mirrors the common LTM evaluation setup: each detector
// round cuts every redundant link it finds (up to the bound) but adds only
// the single closest shortcut — LTM's "cut most of the inefficient and
// redundant logical links". The asymmetry is what erodes high-degree peers,
// the behavior the PROP paper criticizes ("free modification of connections
// … impairs the natural feature of self-organizing overlay where powerful,
// reliable nodes … inherently have more connections").
func DefaultConfig() Config {
	return Config{PeriodMS: 60000, MinDegree: 3, MaxCutsPerRound: 10, MaxAddsPerRound: 5}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.PeriodMS <= 0:
		return fmt.Errorf("ltm: PeriodMS = %v, want > 0", c.PeriodMS)
	case c.MinDegree < 1:
		return fmt.Errorf("ltm: MinDegree = %d, want >= 1", c.MinDegree)
	case c.MaxCutsPerRound < 0 || c.MaxAddsPerRound < 0:
		return fmt.Errorf("ltm: negative per-round bounds")
	}
	return nil
}

// RewireEvent records one executed LTM link modification for tracing: a
// redundant-link cut or a shortcut add.
type RewireEvent struct {
	At    event.Time
	U, W  int
	Added bool // true for a shortcut add, false for a cut
}

// Protocol runs LTM over one overlay inside one event engine.
type Protocol struct {
	// O is the overlay being optimized.
	O *overlay.Overlay
	// Counters tallies detector message overhead.
	Counters metrics.Counters
	// Trace, if non-nil, receives every executed link cut and add — the
	// KindRewire stream of the audit trace recorder.
	Trace func(RewireEvent)

	cfg Config
	r   *rng.Rand
}

// New creates an LTM instance over o.
func New(o *overlay.Overlay, cfg Config, r *rng.Rand) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if o == nil {
		return nil, fmt.Errorf("ltm: nil overlay")
	}
	return &Protocol{O: o, cfg: cfg, r: r}, nil
}

// Start schedules every live peer's detector loop, staggered over one
// period.
func (p *Protocol) Start(e *event.Engine) {
	for _, slot := range p.O.AliveSlots() {
		slot := slot
		delay := event.Time(p.r.Float64() * p.cfg.PeriodMS)
		e.After(delay, func(en *event.Engine) { p.round(en, slot) })
	}
}

// round is one TTL-2 detector flood plus the cut/add reaction for peer u.
func (p *Protocol) round(e *event.Engine, u int) {
	if !p.O.Alive(u) {
		return
	}
	p.Counters.Probes++

	// Detector flood cost: one message per direct neighbor, then one per
	// two-hop forwarding (TTL 2).
	nbrs := p.O.Neighbors(u)
	p.Counters.WalkMessages += uint64(len(nbrs))
	// For every peer w reachable in two hops (via v), record the best
	// triangle bound: min over v of max(d(u,v), d(v,w)). A direct link u-w
	// is "inefficient and redundant" when it is the longest edge of such a
	// triangle — the two-hop path keeps the pair connected at no greater
	// per-edge delay, so LTM cuts the long direct edge. (Cutting on
	// d(u,v)+d(v,w) < d(u,w) would never fire: shortest-path latencies obey
	// the triangle inequality.)
	triBound := make(map[int]float64)
	for _, v := range nbrs {
		vn := p.O.Neighbors(v)
		p.Counters.WalkMessages += uint64(len(vn))
		duv := p.O.Dist(u, v)
		for _, w := range vn {
			if w == u || !p.O.Alive(w) {
				continue
			}
			bound := duv
			if dvw := p.O.Dist(v, w); dvw > bound {
				bound = dvw
			}
			if best, ok := triBound[w]; !ok || bound < best {
				triBound[w] = bound
			}
		}
	}

	cut := p.cutRedundant(e.Now(), u, nbrs, triBound)
	// Replace what was cut with the closest two-hop peers. The cutter stays
	// at roughly constant degree, but the far endpoints of the cut links —
	// disproportionately the hubs, whose many long-range links are exactly
	// the "inefficient" ones — are never compensated. That one-sidedness is
	// the hub erosion the PROP paper criticizes LTM for.
	adds := cut
	if adds == 0 {
		adds = 1 // bootstrap: a first shortcut seeds the triangles later rounds cut
	}
	if adds > p.cfg.MaxAddsPerRound {
		adds = p.cfg.MaxAddsPerRound
	}
	p.addShortcuts(e.Now(), u, triBound, adds, cut == 0)

	// Reschedule.
	e.After(event.Time(p.cfg.PeriodMS), func(en *event.Engine) { p.round(en, u) })
}

// cutRedundant removes up to MaxCutsPerRound direct links that are the
// longest edge of some overlay triangle, worst (largest direct delay)
// first, never dropping either endpoint below MinDegree.
func (p *Protocol) cutRedundant(at event.Time, u int, nbrs []int, triBound map[int]float64) int {
	type cand struct {
		w      int
		direct float64
	}
	var cuts []cand
	for _, w := range nbrs {
		direct := p.O.Dist(u, w)
		if bound, ok := triBound[w]; ok && direct >= bound && direct > 0 {
			cuts = append(cuts, cand{w: w, direct: direct})
		}
	}
	sort.Slice(cuts, func(i, j int) bool {
		if cuts[i].direct != cuts[j].direct {
			return cuts[i].direct > cuts[j].direct
		}
		return cuts[i].w < cuts[j].w
	})
	done := 0
	for _, c := range cuts {
		if done >= p.cfg.MaxCutsPerRound {
			break
		}
		if p.O.Degree(u) <= p.cfg.MinDegree || p.O.Degree(c.w) <= p.cfg.MinDegree {
			continue
		}
		if p.O.RemoveEdge(u, c.w) {
			p.Counters.NotifyMessages++ // teardown notification
			p.Counters.Exchanges++      // one topology modification
			done++
			if p.Trace != nil {
				p.Trace(RewireEvent{At: at, U: u, W: c.w})
			}
		}
	}
	return done
}

// addShortcuts connects u to its closest two-hop non-neighbors, up to
// count. When bootstrap is set (no cut happened this round) the single add
// must be closer than u's worst current link, so the overlay cannot densify
// without bound before any triangles exist.
func (p *Protocol) addShortcuts(at event.Time, u int, triBound map[int]float64, count int, bootstrap bool) {
	if count <= 0 {
		return
	}
	type cand struct {
		w int
		d float64
	}
	var adds []cand
	for w := range triBound {
		if p.O.Logical.HasEdge(u, w) {
			continue
		}
		adds = append(adds, cand{w: w, d: p.O.Dist(u, w)})
	}
	sort.Slice(adds, func(i, j int) bool {
		if adds[i].d != adds[j].d {
			return adds[i].d < adds[j].d
		}
		return adds[i].w < adds[j].w
	})
	if bootstrap {
		worst := 0.0
		for _, v := range p.O.Neighbors(u) {
			if d := p.O.Dist(u, v); d > worst {
				worst = d
			}
		}
		filtered := adds[:0]
		for _, a := range adds {
			if a.d < worst {
				filtered = append(filtered, a)
			}
		}
		adds = filtered
	}
	if len(adds) > count {
		adds = adds[:count]
	}
	for _, a := range adds {
		if err := p.O.AddEdge(u, a.w); err == nil {
			p.Counters.NotifyMessages++ // connection setup
			p.Counters.Exchanges++
			if p.Trace != nil {
				p.Trace(RewireEvent{At: at, U: u, W: a.w, Added: true})
			}
		}
	}
}
